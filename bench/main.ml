(* Bechamel micro-benchmarks: one per experiment (the operation whose cost
   drives that experiment's result), plus the kernel primitives.

   Run with: dune exec bench/main.exe *)

open Bechamel
open Toolkit

module Folder = Tacoma_core.Folder
module Briefcase = Tacoma_core.Briefcase
module Cabinet = Tacoma_core.Cabinet
module Kernel = Tacoma_core.Kernel
module Net = Netsim.Net
module Topology = Netsim.Topology

let elements n = List.init n (fun i -> Printf.sprintf "element-%06d-%s" i (String.make 32 'x'))

(* E1/E7: migration cost is dominated by briefcase serialisation *)
let bench_briefcase_serialize =
  let bc = Briefcase.create () in
  Folder.replace (Briefcase.folder bc "RESULTS") (elements 100);
  Test.make ~name:"e1/e7 briefcase serialize (100 x ~50B)"
    (Staged.stage (fun () -> ignore (Briefcase.serialize bc)))

let bench_briefcase_deserialize =
  let bc = Briefcase.create () in
  Folder.replace (Briefcase.folder bc "RESULTS") (elements 100);
  let wire = Briefcase.serialize bc in
  Test.make ~name:"e1/e7 briefcase deserialize"
    (Staged.stage (fun () -> ignore (Briefcase.deserialize wire)))

(* E2: each flooding step is a TScript evaluation *)
let bench_interp_eval =
  let code = "set s 0; foreach x {1 2 3 4 5 6 7 8} { set s [expr {$s + $x}] }" in
  Test.make ~name:"e2 tscript eval (8-iteration loop)"
    (Staged.stage (fun () ->
         let it = Tscript.Interp.create () in
         ignore (Tscript.Interp.eval it code)))

(* E3: the two membership structures *)
let bench_folder_contains =
  let f = Folder.of_list (elements 1024) in
  Test.make ~name:"e3 folder contains (1024, scan)"
    (Staged.stage (fun () -> ignore (Folder.contains f "absent")))

let bench_cabinet_contains =
  let c = Cabinet.create () in
  Cabinet.replace c "F" (elements 1024);
  Test.make ~name:"e3 cabinet contains (1024, hash)"
    (Staged.stage (fun () -> ignore (Cabinet.contains c "F" "absent")))

(* E4: cash validation *)
let bench_mint_validate =
  let mint = Cash.Mint.create ~secret:"bench" () in
  Test.make ~name:"e4 mint issue + validate"
    (Staged.stage (fun () ->
         let bill = Cash.Mint.issue mint ~amount:100 in
         ignore (Cash.Mint.validate_and_reissue mint bill)))

(* E5: a broker decision over a large candidate set *)
let bench_policy_choose =
  let rng = Tacoma_util.Rng.create 5L in
  let cands =
    List.init 64 (fun i ->
        {
          Broker.Policy.provider = Printf.sprintf "p%d" i;
          host = "h";
          capacity = float_of_int (1 + (i mod 4));
          load = float_of_int (i mod 7);
          report_age = 0.1;
        })
  in
  let rr = ref 0 in
  Test.make ~name:"e5 policy choose weighted (64 candidates)"
    (Staged.stage (fun () ->
         ignore (Broker.Policy.choose Broker.Policy.Weighted ~rng ~rr_counter:rr cands)))

(* E6: the rear guard's snapshot (deep copy + serialise) *)
let bench_guard_snapshot =
  let bc = Briefcase.create () in
  Folder.replace (Briefcase.folder bc "STATE") (elements 64);
  Test.make ~name:"e6 guard snapshot (copy + stash)"
    (Staged.stage (fun () ->
         let carrier = Briefcase.create () in
         Guard.Folder_stash.put carrier (Briefcase.copy bc)))

(* E7: a complete simulated 4-hop tcp journey, end to end *)
let bench_journey =
  Test.make ~name:"e7 full 4-hop tcp journey (whole sim)"
    (Staged.stage (fun () ->
         let net = Net.create (Topology.line 5) in
         let k = Kernel.create net in
         Kernel.register_native k "hopper" (fun ctx bc ->
             let left =
               Option.value ~default:0
                 (Option.bind (Briefcase.find_opt bc "LEFT") int_of_string_opt)
             in
             if left > 0 then begin
               Briefcase.set bc "LEFT" (string_of_int (left - 1));
               Kernel.migrate ctx.Kernel.kernel ~src:ctx.Kernel.site
                 ~dst:(ctx.Kernel.site + 1) ~contact:"hopper" ~transport:Kernel.Tcp bc
             end);
         let bc = Briefcase.create () in
         Briefcase.set bc "LEFT" "4";
         Kernel.launch k ~site:0 ~contact:"hopper" bc;
         Net.run net))

(* E8: the expert system over a day of readings *)
let bench_stormcast_predict =
  let field =
    Apps.Weather.generate ~rng:(Tacoma_util.Rng.create 3L) ~stations:4 ~hours:24 ()
  in
  let readings =
    Array.to_list field.Apps.Weather.readings |> List.concat_map Array.to_list
  in
  Test.make ~name:"e8 stormcast predict (96 readings)"
    (Staged.stage (fun () -> ignore (Apps.Stormcast.predict readings)))

(* interpreter-hot paths: the per-site CPU cost every agent activation pays.
   These three shapes dominate loop-heavy agents — condition re-evaluation,
   proc-call frames, and string/list growth — and are the paths the
   compiled-expr cache and lazy frames target. *)
let bench_interp_while_expr =
  let code =
    "set i 0; set s 0; while {$i < 1000} {set s [expr {$s + $i}]; incr i}; set s"
  in
  Test.make ~name:"interp while+expr loop (1000 iterations)"
    (Staged.stage (fun () ->
         let it = Tscript.Interp.create () in
         ignore (Tscript.Interp.eval it code)))

let bench_interp_proc_fanout =
  let code =
    "proc step {x} {expr {$x + 1}}; set s 0; set i 0; \
     while {$i < 500} {set s [step $s]; incr i}; set s"
  in
  Test.make ~name:"interp proc fan-out (500 calls)"
    (Staged.stage (fun () ->
         let it = Tscript.Interp.create () in
         ignore (Tscript.Interp.eval it code)))

let bench_interp_string_growth =
  let code =
    "set s {}; set l {}; set i 0; \
     while {$i < 200} {append s abcdefgh; lappend l $i; incr i}; \
     list [string length $s] [llength $l]"
  in
  Test.make ~name:"interp append/lappend growth (200 rounds)"
    (Staged.stage (fun () ->
         let it = Tscript.Interp.create () in
         ignore (Tscript.Interp.eval it code)))

(* language substrates added beyond the minimum: regex and arrays *)
let bench_regex_search =
  let re = Tscript.Regex.compile_exn "(\\w+)@(\\w+)" in
  let subject = "lorem ipsum dolor contact dag@cornell sit amet" in
  Test.make ~name:"tscript regexp search with captures"
    (Staged.stage (fun () -> ignore (Tscript.Regex.search re subject)))

let bench_interp_array =
  let code = "for {set i 0} {$i < 20} {incr i} {set a($i) $i}; array size a" in
  Test.make ~name:"tscript array fill (20 elements)"
    (Staged.stage (fun () ->
         let it = Tscript.Interp.create () in
         ignore (Tscript.Interp.eval it code)))

let bench_itinerary_plan =
  let net = Net.create (Topology.grid 5 5) in
  let k = Kernel.create net in
  let sites = List.init 24 (fun i -> i + 1) in
  Test.make ~name:"core itinerary plan (24 stops on a 5x5 grid)"
    (Staged.stage (fun () -> ignore (Tacoma_core.Itinerary.plan k ~from:0 sites)))

let bench_fuel_admission =
  let mint = Cash.Mint.create ~secret:"bench-fuel" () in
  Test.make ~name:"e4c fuel admission (grant + redeem)"
    (Staged.stage (fun () ->
         let bc = Briefcase.create () in
         Cash.Fuel.grant mint bc ~cents:5;
         let folder = Briefcase.folder bc Cash.Fuel.fuel_folder in
         match Folder.pop folder with
         | Some wire -> (
           match Cash.Ecu.of_wire wire with
           | Ok bill -> ignore (Cash.Mint.redeem mint bill)
           | Error _ -> ())
         | None -> ()))

(* kernel primitives *)
let bench_meet =
  let net = Net.create (Topology.line 1) in
  let k = Kernel.create net in
  Kernel.register_native k "echo" (fun _ bc -> Briefcase.set bc "OUT" "1");
  let bc = Briefcase.create () in
  Test.make ~name:"kernel meet (native, local)"
    (Staged.stage (fun () -> Kernel.launch k ~site:0 ~contact:"echo" bc; Net.run net))

let bench_engine =
  Test.make ~name:"netsim 1000 events through the queue"
    (Staged.stage (fun () ->
         let e = Netsim.Engine.create () in
         for i = 1 to 1000 do
           ignore (Netsim.Engine.schedule e ~after:(float_of_int i) ignore)
         done;
         Netsim.Engine.run e))

let bench_sha256 =
  let payload = String.make 1024 'h' in
  Test.make ~name:"util sha256 (1 KiB)"
    (Staged.stage (fun () -> ignore (Tacoma_util.Sha256.digest payload)))

(* E9: the cache's per-hop work — digest the CODE folder, publish, resolve *)
let bench_codecache_roundtrip =
  let module Codecache = Tacoma_core.Codecache in
  let code = [ String.make 4096 'c' ] in
  let cache = Codecache.create Codecache.default_config in
  Test.make ~name:"e9 codecache digest + insert + find (4 KiB)"
    (Staged.stage (fun () ->
         let dg = Codecache.digest code in
         ignore (Codecache.insert cache ~digest:dg code);
         ignore (Codecache.find_opt cache ~digest:dg)))

(* E9: the revisiting journey the experiment measures, cache on *)
let bench_cached_journey =
  Test.make ~name:"e9 8-hop revisiting tcp journey, cache on (whole sim)"
    (Staged.stage (fun () ->
         let net = Net.create (Topology.ring 4) in
         let config =
           { Kernel.default_config with cache = Some Kernel.default_cache_config }
         in
         let k = Kernel.create ~config net in
         Kernel.register_native k "hopper" (fun ctx bc ->
             match Folder.pop (Briefcase.folder bc "ITINERARY") with
             | None -> ()
             | Some next ->
               Kernel.migrate ctx.Kernel.kernel ~src:ctx.Kernel.site ~dst:(int_of_string next)
                 ~contact:"hopper" ~transport:Kernel.Tcp bc);
         let bc = Briefcase.create () in
         Folder.replace (Briefcase.folder bc "ITINERARY")
           [ "1"; "2"; "3"; "0"; "1"; "2"; "3"; "0" ];
         Briefcase.set bc Briefcase.code_folder (String.make 4096 'c');
         Kernel.launch k ~site:0 ~contact:"hopper" bc;
         Net.run net))

let all_benches =
    [
      bench_briefcase_serialize;
      bench_briefcase_deserialize;
      bench_interp_eval;
      bench_interp_while_expr;
      bench_interp_proc_fanout;
      bench_interp_string_growth;
      bench_folder_contains;
      bench_cabinet_contains;
      bench_mint_validate;
      bench_policy_choose;
      bench_guard_snapshot;
      bench_journey;
      bench_stormcast_predict;
      bench_regex_search;
      bench_interp_array;
      bench_itinerary_plan;
      bench_fuel_admission;
      bench_meet;
      bench_engine;
      bench_sha256;
      bench_codecache_roundtrip;
      bench_cached_journey;
    ]

(* machine-readable results: {"benchmark name": ns_per_run, ...} — consumed
   by CI (artifact per run) and by BENCH_interp.json's before/after record *)
let write_json path rows =
  let oc = open_out path in
  let escape s =
    String.concat ""
      (List.map
         (fun c ->
           match c with
           | '"' -> "\\\""
           | '\\' -> "\\\\"
           | c -> String.make 1 c)
         (List.init (String.length s) (String.get s)))
  in
  output_string oc "{\n";
  List.iteri
    (fun i (name, est) ->
      Printf.fprintf oc "  \"%s\": %.1f%s\n" (escape name) est
        (if i = List.length rows - 1 then "" else ","))
    rows;
  output_string oc "}\n";
  close_out oc

(* run one group of tests to completion and return (name, ns/run) rows *)
let measure cfg tests =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let raw = Benchmark.all cfg instances tests in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols_result ->
      match Analyze.OLS.estimates ols_result with
      | Some [ est ] -> rows := (name, est) :: !rows
      | Some _ | None -> ())
    results;
  !rows

let () =
  (* --quick: one short sample per benchmark — a CI smoke run proving every
     benchmarked path still executes, not a measurement *)
  let quick = Array.exists (( = ) "--quick") Sys.argv in
  let find_opt_arg key =
    let rec find = function
      | flag :: v :: _ when flag = key -> Some v
      | _ :: rest -> find rest
      | [] -> None
    in
    find (Array.to_list Sys.argv)
  in
  let json_out = find_opt_arg "--json" in
  (* --jobs N: one pool task per benchmark.  Each staged closure only
     touches state built for that benchmark, so samples can run
     concurrently; the result *structure* (names, row order after the sort)
     is identical to serial — only the timings themselves feel the sharing
     of cores, which is why CI measures with --jobs 1 and uses --jobs for
     smoke runs. *)
  let jobs =
    match find_opt_arg "--jobs" with
    | None -> 1
    | Some v -> ( match int_of_string_opt v with Some n when n >= 0 -> n | _ -> 1)
  in
  let quota = if quick then Time.millisecond 50. else Time.second 0.5 in
  let cfg = Benchmark.cfg ~limit:2000 ~quota ~kde:(Some 1000) () in
  let rows =
    if jobs = 1 then measure cfg (Test.make_grouped ~name:"tacoma" all_benches)
    else
      Tacoma_util.Pool.with_pool ~jobs (fun pool ->
          Tacoma_util.Pool.map pool
            (fun bench -> measure cfg (Test.make_grouped ~name:"tacoma" [ bench ]))
            all_benches)
      |> List.concat
  in
  let rows = List.sort compare rows in
  Printf.printf "%-50s | %15s\n" "benchmark" "ns/run";
  Printf.printf "%s\n" (String.make 70 '-');
  List.iter (fun (name, est) -> Printf.printf "%-50s | %15.1f\n" name est) rows;
  Option.iter (fun path -> write_json path rows) json_out

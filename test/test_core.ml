(* Tests for the TACOMA core: folders, briefcases, cabinets, the meet
   operation, system agents and migration over each transport. *)

module Folder = Tacoma_core.Folder
module Briefcase = Tacoma_core.Briefcase
module Cabinet = Tacoma_core.Cabinet
module Codec = Tacoma_core.Codec
module Kernel = Tacoma_core.Kernel
module Net = Netsim.Net
module Topology = Netsim.Topology
module Netstats = Netsim.Netstats

let check = Alcotest.check

let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* --- folder --- *)

let test_folder_stack () =
  let f = Folder.create () in
  Folder.push f "a";
  Folder.push f "b";
  check Alcotest.(option string) "peek" (Some "b") (Folder.peek f);
  check Alcotest.(option string) "pop lifo" (Some "b") (Folder.pop f);
  check Alcotest.(option string) "pop lifo 2" (Some "a") (Folder.pop f);
  check Alcotest.(option string) "empty" None (Folder.pop f)

let test_folder_queue () =
  let f = Folder.create () in
  Folder.enqueue f "a";
  Folder.enqueue f "b";
  Folder.enqueue f "c";
  check Alcotest.(option string) "fifo" (Some "a") (Folder.dequeue f);
  Folder.enqueue f "d";
  check Alcotest.(option string) "fifo 2" (Some "b") (Folder.dequeue f);
  check Alcotest.(list string) "remaining order" [ "c"; "d" ] (Folder.to_list f)

let test_folder_mixed_ends () =
  let f = Folder.of_list [ "m" ] in
  Folder.push f "front";
  Folder.enqueue f "back";
  check Alcotest.(list string) "order" [ "front"; "m"; "back" ] (Folder.to_list f)

let test_folder_bytes () =
  let f = Folder.create () in
  check Alcotest.int "empty" 0 (Folder.byte_size f);
  Folder.enqueue f "abc";
  Folder.enqueue f "de";
  check Alcotest.int "sum" 5 (Folder.byte_size f);
  ignore (Folder.pop f);
  check Alcotest.int "after pop" 2 (Folder.byte_size f)

let test_folder_copy_isolated () =
  let f = Folder.of_list [ "x" ] in
  let g = Folder.copy f in
  Folder.enqueue g "y";
  check Alcotest.(list string) "original untouched" [ "x" ] (Folder.to_list f);
  check Alcotest.(list string) "copy grew" [ "x"; "y" ] (Folder.to_list g)

let test_folder_misc () =
  let f = Folder.of_list [ "a"; "b"; "c" ] in
  Alcotest.(check bool) "contains" true (Folder.contains f "b");
  Alcotest.(check bool) "not contains" false (Folder.contains f "z");
  check Alcotest.(option string) "nth" (Some "c") (Folder.nth_opt f 2);
  check Alcotest.(option string) "nth out of range" None (Folder.nth_opt f 5);
  Folder.replace f [ "q" ];
  check Alcotest.(list string) "replace" [ "q" ] (Folder.to_list f);
  Folder.clear f;
  Alcotest.(check bool) "cleared" true (Folder.is_empty f)

let test_folder_queue_property =
  qtest "folder behaves as fifo queue"
    QCheck2.Gen.(list_size (0 -- 40) (string_size ~gen:printable (0 -- 6)))
    (fun xs ->
      let f = Folder.create () in
      List.iter (Folder.enqueue f) xs;
      let rec drain acc =
        match Folder.dequeue f with None -> List.rev acc | Some x -> drain (x :: acc)
      in
      drain [] = xs)

(* model-based: a random sequence of folder operations must agree with a
   plain-list reference model at every step *)
type folder_op = Push of string | Enqueue of string | Pop | Peek | Len | Contains of string

let folder_op_gen =
  let open QCheck2.Gen in
  let s = string_size ~gen:printable (0 -- 4) in
  oneof
    [
      map (fun x -> Push x) s;
      map (fun x -> Enqueue x) s;
      pure Pop;
      pure Peek;
      pure Len;
      map (fun x -> Contains x) s;
    ]

let test_folder_model =
  qtest ~count:300 "folder agrees with a list model"
    QCheck2.Gen.(list_size (0 -- 60) folder_op_gen)
    (fun ops ->
      let f = Folder.create () in
      let model = ref [] in
      List.for_all
        (fun op ->
          match op with
          | Push x ->
            Folder.push f x;
            model := x :: !model;
            true
          | Enqueue x ->
            Folder.enqueue f x;
            model := !model @ [ x ];
            true
          | Pop -> (
            let got = Folder.pop f in
            match !model with
            | [] -> got = None
            | x :: rest ->
              model := rest;
              got = Some x)
          | Peek -> (
            Folder.peek f = match !model with [] -> None | x :: _ -> Some x)
          | Len -> Folder.length f = List.length !model
          | Contains x -> Folder.contains f x = List.mem x !model)
        ops
      && Folder.to_list f = !model
      && Folder.byte_size f = List.fold_left (fun a s -> a + String.length s) 0 !model)

(* --- briefcase --- *)

let bc_gen =
  QCheck2.Gen.(
    list_size (0 -- 6)
      (pair (string_size ~gen:printable (1 -- 8))
         (list_size (0 -- 5) (string_size ~gen:(char_range '\x00' '\xff') (0 -- 16)))))

let bc_of_spec spec =
  let bc = Briefcase.create () in
  List.iter (fun (name, elems) -> Folder.replace (Briefcase.folder bc name) elems) spec;
  bc

let bc_equal a b =
  Briefcase.names a = Briefcase.names b
  && List.for_all
       (fun n -> Folder.to_list (Briefcase.folder a n) = Folder.to_list (Briefcase.folder b n))
       (Briefcase.names a)

let test_bc_serialize_roundtrip =
  qtest "serialize/deserialize roundtrip" bc_gen (fun spec ->
      let bc = bc_of_spec spec in
      bc_equal bc (Briefcase.deserialize (Briefcase.serialize bc)))

let test_bc_byte_size_exact =
  qtest "byte_size equals serialized length" bc_gen (fun spec ->
      let bc = bc_of_spec spec in
      Briefcase.byte_size bc = String.length (Briefcase.serialize bc))

let test_bc_basics () =
  let bc = Briefcase.create () in
  Briefcase.set bc "HOST" "site-1";
  check Alcotest.(option string) "get" (Some "site-1") (Briefcase.find_opt bc "HOST");
  Briefcase.set bc "HOST" "site-2";
  check Alcotest.(option string) "set replaces" (Some "site-2") (Briefcase.find_opt bc "HOST");
  check Alcotest.int "single element" 1 (Folder.length (Briefcase.folder bc "HOST"));
  Alcotest.(check bool) "mem" true (Briefcase.mem bc "HOST");
  Briefcase.remove bc "HOST";
  Alcotest.(check bool) "removed" false (Briefcase.mem bc "HOST");
  check Alcotest.(option string) "get missing" None (Briefcase.find_opt bc "HOST")

let test_bc_copy_deep () =
  let bc = Briefcase.create () in
  Briefcase.set bc "F" "1";
  let c = Briefcase.copy bc in
  Folder.enqueue (Briefcase.folder c "F") "2";
  check Alcotest.int "original unchanged" 1 (Folder.length (Briefcase.folder bc "F"));
  check Alcotest.int "copy changed" 2 (Folder.length (Briefcase.folder c "F"))

let test_bc_deserialize_corrupt () =
  Alcotest.check_raises "truncated" (Codec.Malformed "truncated length") (fun () ->
      ignore (Briefcase.deserialize "\x00\x00\x00\x05"))

let test_bc_deserialize_fuzz =
  qtest ~count:500 "deserialize never crashes with anything but Malformed"
    QCheck2.Gen.(string_size ~gen:(char_range '\x00' '\xff') (0 -- 64))
    (fun junk ->
      match Briefcase.deserialize junk with
      | _ -> true
      | exception Codec.Malformed _ -> true
      | exception _ -> false)

let test_bc_agent_in_folder () =
  (* paper §4: folders are typeless, so a folder can store a whole agent
     (code + briefcase) *)
  let inner = Briefcase.create () in
  Briefcase.set inner Briefcase.code_folder "log hello";
  let outer = Briefcase.create () in
  Folder.enqueue (Briefcase.folder outer "PARKED") (Briefcase.serialize inner);
  let wire = Briefcase.serialize outer in
  let back = Briefcase.deserialize wire in
  let parked = Option.get (Folder.peek (Briefcase.folder back "PARKED")) in
  let inner' = Briefcase.deserialize parked in
  check Alcotest.(option string) "agent recovered" (Some "log hello")
    (Briefcase.find_opt inner' Briefcase.code_folder)

(* --- cabinet --- *)

let test_cabinet_ops () =
  let c = Cabinet.create () in
  Cabinet.put c "F" "a";
  Cabinet.put c "F" "b";
  Cabinet.push c "F" "front";
  check Alcotest.(list string) "order" [ "front"; "a"; "b" ] (Cabinet.elements c "F");
  Alcotest.(check bool) "contains O(1)" true (Cabinet.contains c "F" "a");
  check Alcotest.(option string) "pop" (Some "front") (Cabinet.pop c "F");
  Alcotest.(check bool) "index updated" false (Cabinet.contains c "F" "front");
  Cabinet.remove_element c "F" "a";
  check Alcotest.(list string) "removed" [ "b" ] (Cabinet.elements c "F")

let test_cabinet_duplicate_elements () =
  let c = Cabinet.create () in
  Cabinet.put c "F" "x";
  Cabinet.put c "F" "x";
  ignore (Cabinet.pop c "F");
  Alcotest.(check bool) "multiset index keeps second copy" true (Cabinet.contains c "F" "x");
  ignore (Cabinet.pop c "F");
  Alcotest.(check bool) "now gone" false (Cabinet.contains c "F" "x")

let test_cabinet_kv () =
  let c = Cabinet.create () in
  Cabinet.set_kv c "CONF" ~key:"load" "0.5";
  Cabinet.set_kv c "CONF" ~key:"cap" "4";
  Cabinet.set_kv c "CONF" ~key:"load" "0.9";
  check Alcotest.(option string) "kv get" (Some "0.9") (Cabinet.find_kv_opt c "CONF" ~key:"load");
  check Alcotest.int "no duplicate keys" 2 (List.length (Cabinet.kv_bindings c "CONF"));
  check Alcotest.(option string) "missing key" None (Cabinet.find_kv_opt c "CONF" ~key:"zzz")

let test_cabinet_flush_recover () =
  let c = Cabinet.create () in
  Cabinet.put c "KEEP" "durable";
  Cabinet.flush c;
  Cabinet.put c "KEEP" "volatile";
  Cabinet.put c "LOST" "volatile2";
  let r = Cabinet.recover c in
  check Alcotest.(list string) "flushed survives" [ "durable" ] (Cabinet.elements r "KEEP");
  Alcotest.(check bool) "unflushed folder gone" false (Cabinet.folder_exists r "LOST");
  Alcotest.(check bool) "index rebuilt" true (Cabinet.contains r "KEEP" "durable")

let test_cabinet_recover_without_flush_empty () =
  let c = Cabinet.create () in
  Cabinet.put c "F" "x";
  let r = Cabinet.recover c in
  check Alcotest.(list string) "nothing survives" [] (Cabinet.elements r "F")

let test_cabinet_flush_folder () =
  let c = Cabinet.create () in
  Cabinet.put c "A" "1";
  Cabinet.put c "B" "2";
  Cabinet.flush_folder c "A";
  let r = Cabinet.recover c in
  Alcotest.(check bool) "A kept" true (Cabinet.folder_exists r "A");
  Alcotest.(check bool) "B lost" false (Cabinet.folder_exists r "B")

(* --- kernel: meets and system agents --- *)

let mk_kernel ?config ?(topo = Topology.line 3) () =
  let net = Net.create topo in
  let k = Kernel.create ?config net in
  (net, k)

let test_meet_native () =
  let net, k = mk_kernel () in
  let seen = ref None in
  Kernel.register_native k "greeter" (fun _ bc ->
      seen := Briefcase.find_opt bc "NAME";
      Briefcase.set bc "REPLY" "hello");
  let bc = Briefcase.create () in
  Briefcase.set bc "NAME" "world";
  Kernel.launch k ~site:0 ~contact:"greeter" bc;
  Net.run net;
  check Alcotest.(option string) "argument seen" (Some "world") !seen;
  check Alcotest.(option string) "reply written" (Some "hello") (Briefcase.find_opt bc "REPLY")

let test_meet_unknown_agent_dies () =
  let net, k = mk_kernel () in
  let reason = ref "" in
  Kernel.on_death k (fun ~site:_ ~agent:_ ~reason:r -> reason := r);
  Kernel.launch k ~site:0 ~contact:"missing" (Briefcase.create ());
  Net.run net;
  check Alcotest.int "death recorded" 1 (Kernel.deaths k);
  Alcotest.(check bool) "reason mentions meet" true (String.length !reason > 0)

let test_meet_script_agent () =
  let net, k = mk_kernel () in
  Kernel.install_script k "sq" ~code:"folder set RESULT [expr {[folder peek X] ** 2}]";
  let bc = Briefcase.create () in
  Briefcase.set bc "X" "9";
  Kernel.launch k ~site:1 ~contact:"sq" bc;
  Net.run net;
  check Alcotest.(option string) "script computed" (Some "81.0") (Briefcase.find_opt bc "RESULT")

let test_site_scoped_agent () =
  let net, k = mk_kernel () in
  Kernel.register_native k ~site:1 "local_svc" (fun _ bc -> Briefcase.set bc "OK" "1");
  Alcotest.(check bool) "exists at 1" true (Kernel.agent_exists k 1 "local_svc");
  Alcotest.(check bool) "absent at 0" false (Kernel.agent_exists k 0 "local_svc");
  Kernel.launch k ~site:0 ~contact:"local_svc" (Briefcase.create ());
  Net.run net;
  check Alcotest.int "death at wrong site" 1 (Kernel.deaths k)

let test_nested_meet () =
  let net, k = mk_kernel () in
  Kernel.register_native k "outer" (fun ctx bc ->
      Briefcase.set bc "TRAIL" "outer";
      Kernel.meet ctx "inner" bc);
  Kernel.register_native k "inner" (fun _ bc ->
      Briefcase.set bc "TRAIL" (Option.get (Briefcase.find_opt bc "TRAIL") ^ "+inner"));
  let bc = Briefcase.create () in
  Kernel.launch k ~site:0 ~contact:"outer" bc;
  Net.run net;
  check Alcotest.(option string) "nesting" (Some "outer+inner") (Briefcase.find_opt bc "TRAIL")

let test_script_error_catchable_by_caller () =
  let net, k = mk_kernel () in
  Kernel.install_script k "failing" ~code:"error boom";
  Kernel.install_script k "robust" ~code:"catch {meet failing} m; folder set SAW $m";
  let bc = Briefcase.create () in
  Kernel.launch k ~site:0 ~contact:"robust" bc;
  Net.run net;
  check Alcotest.int "no death" 0 (Kernel.deaths k);
  Alcotest.(check bool) "error message seen" true
    (match Briefcase.find_opt bc "SAW" with Some s -> String.length s > 0 | None -> false)

(* --- kernel: migration --- *)

let hop_code = {|
  folder put TRAIL [host]
  if {[folder size TRAIL] < 3} {
    set next ""
    foreach n [neighbors] {
      if {![folder contains TRAIL $n]} { set next $n; break }
    }
    folder set CODE [selfcode]
    jump $next
  } else {
    meet filer
  }
|}

let run_journey transport =
  let config = { Kernel.default_config with default_transport = transport } in
  let net, k = mk_kernel ~config ~topo:(Topology.line 3) () in
  let bc = Briefcase.create () in
  Briefcase.set bc Briefcase.code_folder hop_code;
  Kernel.launch k ~site:0 ~contact:"ag_script" bc;
  Net.run ~until:30.0 net;
  (net, k)

let test_migration_each_transport () =
  List.iter
    (fun tr ->
      let _, k = run_journey tr in
      let trail = Cabinet.elements (Kernel.cabinet k 2) "TRAIL" in
      check Alcotest.(list string)
        (Kernel.transport_name tr ^ " journey")
        [ "line-0"; "line-1"; "line-2" ] trail;
      check Alcotest.int "two migrations" 2 (Kernel.migrations k);
      check Alcotest.int "no deaths" 0 (Kernel.deaths k))
    [ Kernel.Rsh; Kernel.Tcp; Kernel.Horus ]

let test_transport_cost_ordering () =
  (* rsh must be slowest per hop (spawn), bytes: rsh > horus > tcp *)
  let bytes tr =
    let net, _ = run_journey tr in
    Netstats.bytes_sent (Net.stats net)
  in
  let rsh = bytes Kernel.Rsh and tcp = bytes Kernel.Tcp and horus = bytes Kernel.Horus in
  Alcotest.(check bool) "rsh > horus" true (rsh > horus);
  Alcotest.(check bool) "horus > tcp" true (horus > tcp)

let test_tcp_connection_reuse () =
  (* two journeys over the same links: second pays no handshake *)
  let config = { Kernel.default_config with default_transport = Kernel.Tcp } in
  let net, k = mk_kernel ~config ~topo:(Topology.line 2) () in
  let send_one () =
    let bc = Briefcase.create () in
    Briefcase.set bc Briefcase.code_folder "meet filer";
    Briefcase.set bc Briefcase.host_folder "line-1";
    Briefcase.set bc Briefcase.contact_folder "ag_script";
    Kernel.launch k ~site:0 ~contact:"rexec" bc
  in
  send_one ();
  Net.run ~until:5.0 net;
  let b1 = Netstats.bytes_sent (Net.stats net) in
  send_one ();
  Net.run ~until:10.0 net;
  let b2 = Netstats.bytes_sent (Net.stats net) - b1 in
  Alcotest.(check bool) "second trip cheaper" true (b2 < b1)

let test_horus_retransmits_through_downtime () =
  (* destination is down when the migration is sent; horus retries until the
     site restarts, so the agent eventually arrives *)
  let config =
    { Kernel.default_config with
      default_transport = Kernel.Horus;
      horus = { Kernel.default_config.horus with max_attempts = 8 } }
  in
  let net, k = mk_kernel ~config ~topo:(Topology.line 2) () in
  Netsim.Fault.crash_for net ~site:1 ~at:0.5 ~downtime:3.0;
  ignore
    (Net.schedule net ~after:1.0 (fun () ->
         let bc = Briefcase.create () in
         Briefcase.set bc Briefcase.code_folder "cabinet put ARRIVED yes";
         Briefcase.set bc Briefcase.host_folder "line-1";
         Briefcase.set bc Briefcase.contact_folder "ag_script";
         Kernel.launch k ~site:0 ~contact:"rexec" bc));
  Net.run ~until:30.0 net;
  check Alcotest.(list string) "arrived after restart" [ "yes" ]
    (Cabinet.elements (Kernel.cabinet k 1) "ARRIVED")

let test_horus_survives_lossy_network () =
  (* 30% message loss: every horus migration still lands (retransmission +
     duplicate suppression), tcp loses a chunk *)
  let run transport =
    let topo = Topology.line 2 in
    let net = Net.create ~loss_rate:0.3 topo in
    let config =
      { Kernel.default_config with
        default_transport = transport;
        horus = { Kernel.default_config.horus with max_attempts = 12; rto = 0.2 } }
    in
    let k = Kernel.create ~config net in
    let arrived = ref 0 in
    Kernel.register_native k "counter" (fun _ _ -> incr arrived);
    for i = 0 to 39 do
      ignore
        (Net.schedule net ~after:(0.1 *. float_of_int i) (fun () ->
             let bc = Briefcase.create () in
             Briefcase.set bc Briefcase.host_folder "line-1";
             Briefcase.set bc Briefcase.contact_folder "counter";
             Kernel.launch k ~site:0 ~contact:"rexec" bc))
    done;
    Net.run ~until:300.0 net;
    !arrived
  in
  check Alcotest.int "horus delivers every agent" 40 (run Kernel.Horus);
  let tcp = run Kernel.Tcp in
  Alcotest.(check bool) "tcp loses some" true (tcp < 40);
  Alcotest.(check bool) "tcp delivers some" true (tcp > 10)

let test_horus_delayed_ack_no_double_delivery () =
  (* a degraded link delays the ack far past the rto: horus retransmits the
     migration several times, the receiver's mid table suppresses every
     duplicate (while still acking it), and the agent activates exactly once *)
  let config =
    { Kernel.default_config with
      default_transport = Kernel.Horus;
      horus = { Kernel.default_config.horus with rto = 0.5; max_attempts = 10 } }
  in
  let net, k = mk_kernel ~config ~topo:(Topology.line 2) () in
  Net.set_link_degraded net 0 1 (Some (400.0, 1.0));
  let arrived = ref 0 in
  Kernel.register_native k "counter" (fun _ _ -> incr arrived);
  let bc = Briefcase.create () in
  Briefcase.set bc Briefcase.host_folder "line-1";
  Briefcase.set bc Briefcase.contact_folder "counter";
  Kernel.launch k ~site:0 ~contact:"rexec" bc;
  Net.run ~until:60.0 net;
  check Alcotest.int "agent activated exactly once" 1 !arrived;
  Alcotest.(check bool) "slow ack forced retransmissions" true
    (Obs.Metrics.counter (Kernel.metrics k) "horus.retransmits" >= 1);
  check Alcotest.int "no horus giveup" 0
    (Obs.Metrics.counter (Kernel.metrics k) "horus.giveups")

let test_tcp_loses_migration_to_down_site () =
  let config = { Kernel.default_config with default_transport = Kernel.Tcp } in
  let net, k = mk_kernel ~config ~topo:(Topology.line 2) () in
  Netsim.Fault.crash_for net ~site:1 ~at:0.5 ~downtime:3.0;
  ignore
    (Net.schedule net ~after:1.0 (fun () ->
         let bc = Briefcase.create () in
         Briefcase.set bc Briefcase.code_folder "cabinet put ARRIVED yes";
         Briefcase.set bc Briefcase.host_folder "line-1";
         Briefcase.set bc Briefcase.contact_folder "ag_script";
         Kernel.launch k ~site:0 ~contact:"rexec" bc));
  Net.run ~until:30.0 net;
  check Alcotest.(list string) "agent lost" []
    (Cabinet.elements (Kernel.cabinet k 1) "ARRIVED")

let test_kernel_horus_group_mode () =
  (* horus_group = true: the kernel maintains a group over all sites, the
     group view tracks crashes/restarts, and horus-transport retries to a
     known-dead site are abandoned early *)
  let config =
    { Kernel.default_config with
      horus = { Kernel.default_config.horus with group = true } }
  in
  let net = Net.create (Topology.full_mesh 4) in
  let k = Kernel.create ~config net in
  (match Kernel.horus_group k with
  | None -> Alcotest.fail "group not created"
  | Some g ->
    Net.run ~until:1.0 net;
    (match Horus.Group.view_at g 0 with
    | Some v -> check Alcotest.int "all sites in the group" 4 (Horus.View.size v)
    | None -> Alcotest.fail "no view");
    Netsim.Fault.crash_for net ~site:2 ~at:2.0 ~downtime:6.0;
    Net.run ~until:6.0 net;
    (match Horus.Group.view_at g 0 with
    | Some v -> Alcotest.(check bool) "crashed site left the view" false (Horus.View.mem v 2)
    | None -> Alcotest.fail "no view after crash");
    (* the kernel rejoins the group automatically on restart *)
    Net.run ~until:20.0 net;
    match Horus.Group.view_at g 0 with
    | Some v -> Alcotest.(check bool) "restarted site rejoined" true (Horus.View.mem v 2)
    | None -> Alcotest.fail "no view after restart")

let test_kernel_group_aborts_retries_to_dead_site () =
  let config =
    { Kernel.default_config with
      horus =
        { Kernel.default_config.horus with group = true; max_attempts = 50; rto = 1.0 } }
  in
  let net = Net.create ~trace:true (Topology.full_mesh 4) in
  let k = Kernel.create ~config net in
  Netsim.Fault.crash_at net ~site:1 ~at:0.0;
  ignore
    (Net.schedule net ~after:5.0 (fun () ->
         let bc = Briefcase.create () in
         Briefcase.set bc Briefcase.host_folder "mesh-1";
         Briefcase.set bc Briefcase.contact_folder "noop";
         Briefcase.set bc "TRANSPORT" "horus";
         Kernel.launch k ~site:0 ~contact:"rexec" bc));
  Net.run ~until:60.0 net;
  let gave_up =
    List.exists
      (fun e ->
        e.Netsim.Trace.kind = Netsim.Trace.Drop
        && String.length e.Netsim.Trace.detail > 5
        && String.fold_left
             (fun (acc, i) _ ->
               ( acc
                 || (i + 7 <= String.length e.Netsim.Trace.detail
                    && String.sub e.Netsim.Trace.detail i 7 = "gave up"),
                 i + 1 ))
             (false, 0) e.Netsim.Trace.detail
           |> fst)
      (Netsim.Trace.entries (Net.trace net))
  in
  Alcotest.(check bool) "abandoned quickly (not 50 retries)" true gave_up

(* --- kernel: crash semantics --- *)

let test_crash_kills_sleeping_activation () =
  let net, k = mk_kernel () in
  let resumed = ref false in
  Kernel.register_native k "sleeper" (fun ctx _ ->
      Kernel.sleep ctx 5.0;
      resumed := true);
  Kernel.launch k ~site:1 ~contact:"sleeper" (Briefcase.create ());
  Netsim.Fault.crash_at net ~site:1 ~at:1.0;
  Net.run ~until:20.0 net;
  Alcotest.(check bool) "not resumed" false !resumed;
  check Alcotest.int "death recorded" 1 (Kernel.deaths k)

let test_crash_then_restart_does_not_resurrect () =
  let net, k = mk_kernel () in
  let resumed = ref false in
  Kernel.register_native k "sleeper" (fun ctx _ ->
      Kernel.sleep ctx 5.0;
      resumed := true);
  Kernel.launch k ~site:1 ~contact:"sleeper" (Briefcase.create ());
  Netsim.Fault.crash_for net ~site:1 ~at:1.0 ~downtime:1.0;
  Net.run ~until:20.0 net;
  Alcotest.(check bool) "still not resumed after restart" false !resumed

let test_sleep_survives_when_no_crash () =
  let net, k = mk_kernel () in
  let resumed_at = ref 0.0 in
  Kernel.register_native k "sleeper" (fun ctx _ ->
      Kernel.sleep ctx 5.0;
      resumed_at := Kernel.now ctx.Kernel.kernel);
  Kernel.launch k ~site:1 ~contact:"sleeper" (Briefcase.create ());
  Net.run ~until:20.0 net;
  check (Alcotest.float 1e-6) "resumed on time" 5.0 !resumed_at;
  check Alcotest.int "completion" 1 (Kernel.completions k)

let test_cabinet_persistence_across_crash () =
  let net, k = mk_kernel () in
  let cab = Kernel.cabinet k 1 in
  Cabinet.put cab "DURABLE" "x";
  Cabinet.flush cab;
  Cabinet.put cab "EPHEMERAL" "y";
  Netsim.Fault.crash_for net ~site:1 ~at:1.0 ~downtime:1.0;
  Net.run ~until:5.0 net;
  let cab' = Kernel.cabinet k 1 in
  check Alcotest.(list string) "flushed data back" [ "x" ] (Cabinet.elements cab' "DURABLE");
  Alcotest.(check bool) "volatile gone" false (Cabinet.folder_exists cab' "EPHEMERAL");
  (* SITES reseeded for diffusion *)
  Alcotest.(check bool) "SITES reseeded" true
    (Cabinet.size cab' Briefcase.sites_folder > 0)

let test_step_limit_kills_runaway () =
  let config = { Kernel.default_config with step_limit = Some 1000 } in
  let net, k = mk_kernel ~config () in
  Kernel.install_script k "runaway" ~code:"while {1} {set x 1}";
  Kernel.launch k ~site:0 ~contact:"runaway" (Briefcase.create ());
  Net.run ~until:5.0 net;
  check Alcotest.int "killed" 1 (Kernel.deaths k)

let test_per_agent_activity () =
  let net, k = mk_kernel () in
  Kernel.register_native k "fine" (fun _ _ -> ());
  Kernel.install_script k "doomed" ~code:"error boom";
  Kernel.launch k ~site:0 ~contact:"fine" (Briefcase.create ());
  Kernel.launch k ~site:0 ~contact:"fine" (Briefcase.create ());
  Kernel.launch k ~site:0 ~contact:"doomed" (Briefcase.create ());
  Net.run net;
  let find name = List.assoc name (Kernel.activity k) in
  check Alcotest.int "fine ran twice" 2 (find "fine").Kernel.a_activations;
  check Alcotest.int "fine completed twice" 2 (find "fine").Kernel.a_completions;
  check Alcotest.int "fine never died" 0 (find "fine").Kernel.a_deaths;
  check Alcotest.int "doomed died once" 1 (find "doomed").Kernel.a_deaths;
  check Alcotest.int "doomed never completed" 0 (find "doomed").Kernel.a_completions

(* --- determinism: the reproducibility guarantee the experiments rely on --- *)

let test_whole_system_determinism () =
  (* an eventful run — diffusion, failures, retransmissions, script agents —
     must produce bit-identical statistics for identical seeds, and a
     different seed must diverge *)
  let run seed =
    let topo = Topology.grid 3 3 in
    let net = Net.create ~seed ~loss_rate:0.1 topo in
    let config = { Kernel.default_config with default_transport = Kernel.Horus } in
    let k = Kernel.create ~config net in
    Netsim.Fault.apply net
      (Netsim.Fault.poisson_plan
         ~rng:(Tacoma_util.Rng.create seed)
         ~sites:(Net.sites net) ~rate:0.01 ~mean_downtime:3.0 ~until:30.0);
    let bc = Briefcase.create () in
    Briefcase.set bc Briefcase.contact_folder "noop";
    Kernel.launch k ~site:0 ~contact:"diffusion" bc;
    Kernel.install_script k "wanderer"
      ~code:"folder put SITES [host]; set u [unvisited_neighbors]; if {[llength $u] > 0} { travel [lindex $u 0] }";
    Kernel.launch k ~site:4 ~contact:"wanderer" (Briefcase.create ());
    Net.run ~until:60.0 net;
    let stats = Net.stats net in
    ( Netsim.Netstats.messages_sent stats,
      Netsim.Netstats.bytes_sent stats,
      Netsim.Netstats.messages_dropped stats,
      Kernel.activations k,
      Kernel.migrations k,
      Kernel.deaths k )
  in
  let a = run 123L and b = run 123L and c = run 456L in
  Alcotest.(check bool) "identical seeds, identical runs" true (a = b);
  Alcotest.(check bool) "different seed diverges" true (a <> c)

(* --- prelude (standard agent library) --- *)

let test_prelude_travel () =
  let net, k = mk_kernel () in
  Kernel.install_script k "tourist"
    ~code:{|
      folder put TRAIL [host]
      if {[folder size TRAIL] < 3} {
        travel [lindex [unvisited_neighbors] 0]
      } else {
        meet filer
      }
      folder put SITES [host]
    |};
  (* note: the script records SITES after travelling, so unvisited_neighbors
     works off the briefcase SITES folder *)
  let bc = Briefcase.create () in
  Folder.replace (Briefcase.folder bc "SITES") [ "line-0" ];
  Kernel.launch k ~site:0 ~contact:"tourist" bc;
  Net.run ~until:30.0 net;
  check Alcotest.(list string) "travelled via prelude" [ "line-0"; "line-1"; "line-2" ]
    (Cabinet.elements (Kernel.cabinet k 2) "TRAIL");
  check Alcotest.int "no deaths" 0 (Kernel.deaths k)

let test_prelude_visited_and_notes () =
  let net, k = mk_kernel () in
  Kernel.install_script k "noter"
    ~code:{|
      if {![visited me]} {
        mark_visited me
        remember color blue
        folder set FIRST yes
      } else {
        folder set FIRST no
        folder set COLOR [recall color]
      }
    |};
  let bc1 = Briefcase.create () in
  Kernel.launch k ~site:1 ~contact:"noter" bc1;
  Net.run ~until:5.0 net;
  let bc2 = Briefcase.create () in
  Kernel.launch k ~site:1 ~contact:"noter" bc2;
  Net.run ~until:10.0 net;
  check Alcotest.(option string) "first run" (Some "yes") (Briefcase.find_opt bc1 "FIRST");
  check Alcotest.(option string) "second run sees the mark" (Some "no")
    (Briefcase.find_opt bc2 "FIRST");
  check Alcotest.(option string) "note recalled" (Some "blue") (Briefcase.find_opt bc2 "COLOR");
  (* remember flushes: the note survives a crash (the volatile VISITED mark
     does not — that asymmetry is the point of the two primitives) *)
  Netsim.Fault.crash_for net ~site:1 ~at:11.0 ~downtime:1.0;
  Net.run ~until:20.0 net;
  check Alcotest.(option string) "note survives crash" (Some "blue")
    (Cabinet.find_kv_opt (Kernel.cabinet k 1) "NOTES" ~key:"color");
  Alcotest.(check bool) "visited mark is volatile" false
    (Cabinet.contains (Kernel.cabinet k 1) "VISITED" "me")

let test_prelude_send_folder () =
  let net, k = mk_kernel () in
  Kernel.install_script k "shipper"
    ~code:{|
      carry CARGO one two three
      send_folder line-2 filer CARGO
    |};
  Kernel.launch k ~site:0 ~contact:"shipper" (Briefcase.create ());
  Net.run ~until:5.0 net;
  check Alcotest.(list string) "cargo filed remotely" [ "one"; "two"; "three" ]
    (Cabinet.elements (Kernel.cabinet k 2) "CARGO")

let test_prelude_disabled () =
  let config = { Kernel.default_config with prelude = "" } in
  let net, k = mk_kernel ~config () in
  Kernel.install_script k "needs-prelude" ~code:"travel line-1";
  Kernel.launch k ~site:0 ~contact:"needs-prelude" (Briefcase.create ());
  Net.run ~until:5.0 net;
  check Alcotest.int "travel unknown without prelude" 1 (Kernel.deaths k)

(* --- itinerary --- *)

module Itinerary = Tacoma_core.Itinerary

let test_itinerary_orders_by_latency () =
  (* on a line, visiting in graph order is optimal; a shuffled request must
     come back sorted by distance from the start *)
  let net = Net.create (Topology.line 6) in
  let k = Kernel.create net in
  check Alcotest.(list int) "nearest-neighbour order" [ 1; 2; 3; 4; 5 ]
    (Itinerary.plan k ~from:0 [ 4; 1; 5; 3; 2 ]);
  check Alcotest.(list int) "round trip ends home" [ 1; 2; 3; 0 ]
    (Itinerary.round_trip k ~from:0 [ 2; 3; 1 ])

let test_itinerary_beats_naive_order () =
  let net = Net.create (Topology.line 8) in
  let k = Kernel.create net in
  let wanted = [ 7; 1; 6; 2; 5; 3 ] in
  let planned = Itinerary.plan k ~from:0 wanted in
  Alcotest.(check bool) "planned tour at most the naive cost" true
    (Itinerary.tour_cost k ~from:0 planned <= Itinerary.tour_cost k ~from:0 wanted)

let test_itinerary_handles_unreachable () =
  let net = Net.create (Topology.line 4) in
  let k = Kernel.create net in
  Net.set_link_enabled net 2 3 false;
  let planned = Itinerary.plan k ~from:0 [ 3; 1; 2 ] in
  check Alcotest.(list int) "unreachable parked at the end" [ 1; 2; 3 ] planned;
  check (Alcotest.float 1e-9) "its cost is infinite" infinity
    (Itinerary.tour_cost k ~from:0 planned)

let test_itinerary_folder_roundtrip () =
  let net = Net.create (Topology.line 4) in
  let k = Kernel.create net in
  let f = Folder.create () in
  Itinerary.to_folder k f [ 2; 1; 3 ];
  check Alcotest.(list string) "names written" [ "line-2"; "line-1"; "line-3" ]
    (Folder.to_list f);
  check Alcotest.(list int) "parsed back" [ 2; 1; 3 ] (Itinerary.of_folder k f);
  Folder.enqueue f "atlantis";
  check Alcotest.(list int) "unknown names skipped" [ 2; 1; 3 ] (Itinerary.of_folder k f)

(* --- system agents --- *)

let test_courier_delivers_folder () =
  let net, k = mk_kernel () in
  let bc = Briefcase.create () in
  Folder.replace (Briefcase.folder bc "REPORT") [ "r1"; "r2" ];
  Briefcase.set bc Briefcase.host_folder "line-2";
  Briefcase.set bc Briefcase.contact_folder "filer";
  Briefcase.set bc "FOLDER" "REPORT";
  Kernel.launch k ~site:0 ~contact:"courier" bc;
  Net.run ~until:5.0 net;
  check Alcotest.(list string) "folder contents filed" [ "r1"; "r2" ]
    (Cabinet.elements (Kernel.cabinet k 2) "REPORT")

let test_courier_missing_folder_errors () =
  let net, k = mk_kernel () in
  let bc = Briefcase.create () in
  Briefcase.set bc Briefcase.host_folder "line-1";
  Kernel.launch k ~site:0 ~contact:"courier" bc;
  Net.run ~until:5.0 net;
  check Alcotest.int "death" 1 (Kernel.deaths k)

let test_diffusion_reaches_all_once () =
  let topo = Topology.grid 3 3 in
  let net = Net.create topo in
  let k = Kernel.create net in
  let visits = ref [] in
  Kernel.register_native k "mark" (fun ctx _ ->
      visits := ctx.Kernel.site :: !visits);
  let bc = Briefcase.create () in
  Briefcase.set bc Briefcase.contact_folder "mark";
  Kernel.launch k ~site:0 ~contact:"diffusion" bc;
  Net.run ~until:60.0 net;
  let sorted = List.sort_uniq compare !visits in
  check Alcotest.(list int) "every site exactly once" (List.init 9 Fun.id) sorted;
  check Alcotest.int "no duplicate executions" 9 (List.length !visits)

let test_diffusion_random_graphs =
  qtest ~count:25 "diffusion covers every random connected graph exactly once"
    QCheck2.Gen.(pair (int_range 3 14) (int_range 0 10_000))
    (fun (n, seed) ->
      let rng = Tacoma_util.Rng.create (Int64.of_int seed) in
      let topo = Netsim.Topology.random ~rng ~n ~p:0.3 () in
      let net = Net.create topo in
      let k = Kernel.create net in
      let visits = ref [] in
      Kernel.register_native k "mark" (fun ctx _ -> visits := ctx.Kernel.site :: !visits);
      let bc = Briefcase.create () in
      Briefcase.set bc Briefcase.contact_folder "mark";
      Kernel.launch k ~site:0 ~contact:"diffusion" bc;
      Net.run ~until:600.0 net;
      List.sort compare !visits = List.init n Fun.id)

let test_guarded_journeys_random_itineraries =
  qtest ~count:20 "guarded journeys complete on random itineraries (no faults)"
    QCheck2.Gen.(pair (list_size (1 -- 8) (int_range 0 5)) (int_range 0 1_000))
    (fun (itinerary, salt) ->
      let net = Net.create (Topology.full_mesh 6) in
      let k = Kernel.create net in
      let j =
        Guard.Escort.guarded_journey k
          ~id:(Printf.sprintf "prop-%d-%d" salt (Hashtbl.hash itinerary))
          ~itinerary
          ~work:(fun _ ~hop:_ _ -> ())
          (Briefcase.create ())
      in
      Net.run ~until:120.0 net;
      let s = Guard.Escort.stats j in
      s.Guard.Escort.completed && s.Guard.Escort.relaunches = 0
      && s.Guard.Escort.hops_done = List.length itinerary - 1)

let test_ag_shell_runs_all_code () =
  let net, k = mk_kernel () in
  let bc = Briefcase.create () in
  Folder.replace
    (Briefcase.folder bc Briefcase.code_folder)
    [ "folder put OUT 1"; "folder put OUT 2"; "folder put OUT 3" ];
  Kernel.launch k ~site:0 ~contact:"ag_shell" bc;
  Net.run net;
  check Alcotest.(list string) "all snippets ran" [ "1"; "2"; "3" ]
    (Folder.to_list (Briefcase.folder bc "OUT"))

let test_rexec_missing_host_errors () =
  let net, k = mk_kernel () in
  let bc = Briefcase.create () in
  Briefcase.set bc Briefcase.contact_folder "noop";
  Kernel.launch k ~site:0 ~contact:"rexec" bc;
  Net.run ~until:2.0 net;
  check Alcotest.int "death on missing HOST" 1 (Kernel.deaths k)

let test_rexec_unknown_host_errors () =
  let net, k = mk_kernel () in
  let bc = Briefcase.create () in
  Briefcase.set bc Briefcase.host_folder "atlantis";
  Briefcase.set bc Briefcase.contact_folder "noop";
  Kernel.launch k ~site:0 ~contact:"rexec" bc;
  Net.run ~until:2.0 net;
  check Alcotest.int "death on unknown host" 1 (Kernel.deaths k)

let test_dispatch_from_script () =
  let net, k = mk_kernel () in
  Kernel.install_script k "reporter"
    ~code:{|
      folder put REPORT "from [host]"
      dispatch line-2 filer
    |};
  Kernel.launch k ~site:0 ~contact:"reporter" (Briefcase.create ());
  Net.run ~until:5.0 net;
  check Alcotest.(list string) "report filed remotely" [ "from line-0" ]
    (Cabinet.elements (Kernel.cabinet k 2) "REPORT");
  check Alcotest.int "no deaths" 0 (Kernel.deaths k)

let test_dispatch_unknown_host_is_script_error () =
  let net, k = mk_kernel () in
  Kernel.install_script k "bad" ~code:"dispatch atlantis filer";
  Kernel.install_script k "careful" ~code:"catch {dispatch atlantis filer} m; folder set E $m";
  Kernel.launch k ~site:0 ~contact:"bad" (Briefcase.create ());
  let bc = Briefcase.create () in
  Kernel.launch k ~site:0 ~contact:"careful" bc;
  Net.run ~until:5.0 net;
  check Alcotest.int "uncaught error kills" 1 (Kernel.deaths k);
  Alcotest.(check bool) "catchable from script" true (Briefcase.find_opt bc "E" <> None)

let test_work_advances_time () =
  let net, k = mk_kernel () in
  Kernel.install_script k "worker" ~code:"work 2.5; cabinet put DONE [now]";
  Kernel.launch k ~site:0 ~contact:"worker" (Briefcase.create ());
  Net.run ~until:10.0 net;
  match Cabinet.elements (Kernel.cabinet k 0) "DONE" with
  | [ time ] ->
    Alcotest.(check bool) "time passed" true (float_of_string time >= 2.5)
  | _ -> Alcotest.fail "worker did not finish"

let () =
  Alcotest.run "core"
    [
      ( "folder",
        [
          Alcotest.test_case "stack" `Quick test_folder_stack;
          Alcotest.test_case "queue" `Quick test_folder_queue;
          Alcotest.test_case "mixed ends" `Quick test_folder_mixed_ends;
          Alcotest.test_case "byte accounting" `Quick test_folder_bytes;
          Alcotest.test_case "copy isolation" `Quick test_folder_copy_isolated;
          Alcotest.test_case "misc" `Quick test_folder_misc;
          test_folder_queue_property;
          test_folder_model;
        ] );
      ( "briefcase",
        [
          test_bc_serialize_roundtrip;
          test_bc_byte_size_exact;
          Alcotest.test_case "basics" `Quick test_bc_basics;
          Alcotest.test_case "deep copy" `Quick test_bc_copy_deep;
          Alcotest.test_case "corrupt input" `Quick test_bc_deserialize_corrupt;
          test_bc_deserialize_fuzz;
          Alcotest.test_case "agent stored in folder" `Quick test_bc_agent_in_folder;
        ] );
      ( "cabinet",
        [
          Alcotest.test_case "ops + index" `Quick test_cabinet_ops;
          Alcotest.test_case "duplicate elements" `Quick test_cabinet_duplicate_elements;
          Alcotest.test_case "key-value view" `Quick test_cabinet_kv;
          Alcotest.test_case "flush/recover" `Quick test_cabinet_flush_recover;
          Alcotest.test_case "recover without flush" `Quick test_cabinet_recover_without_flush_empty;
          Alcotest.test_case "flush one folder" `Quick test_cabinet_flush_folder;
        ] );
      ( "meet",
        [
          Alcotest.test_case "native" `Quick test_meet_native;
          Alcotest.test_case "unknown agent" `Quick test_meet_unknown_agent_dies;
          Alcotest.test_case "script agent" `Quick test_meet_script_agent;
          Alcotest.test_case "site-scoped agent" `Quick test_site_scoped_agent;
          Alcotest.test_case "nested meet" `Quick test_nested_meet;
          Alcotest.test_case "script error catchable" `Quick test_script_error_catchable_by_caller;
        ] );
      ( "migration",
        [
          Alcotest.test_case "journey on each transport" `Quick test_migration_each_transport;
          Alcotest.test_case "transport byte ordering" `Quick test_transport_cost_ordering;
          Alcotest.test_case "tcp connection reuse" `Quick test_tcp_connection_reuse;
          Alcotest.test_case "horus retransmission" `Quick test_horus_retransmits_through_downtime;
          Alcotest.test_case "tcp drops to down site" `Quick test_tcp_loses_migration_to_down_site;
          Alcotest.test_case "horus survives lossy links" `Quick test_horus_survives_lossy_network;
          Alcotest.test_case "horus delayed ack dedup" `Quick
            test_horus_delayed_ack_no_double_delivery;
        ] );
      ( "horus-group-mode",
        [
          Alcotest.test_case "group tracks membership" `Quick test_kernel_horus_group_mode;
          Alcotest.test_case "fast retry abort" `Quick
            test_kernel_group_aborts_retries_to_dead_site;
        ] );
      ( "crash-semantics",
        [
          Alcotest.test_case "crash kills sleeper" `Quick test_crash_kills_sleeping_activation;
          Alcotest.test_case "restart does not resurrect" `Quick
            test_crash_then_restart_does_not_resurrect;
          Alcotest.test_case "sleep resumes normally" `Quick test_sleep_survives_when_no_crash;
          Alcotest.test_case "cabinet persistence" `Quick test_cabinet_persistence_across_crash;
          Alcotest.test_case "step limit kills runaway" `Quick test_step_limit_kills_runaway;
        ] );
      ( "determinism",
        [ Alcotest.test_case "whole-system replay" `Quick test_whole_system_determinism ] );
      ( "observability",
        [ Alcotest.test_case "per-agent activity" `Quick test_per_agent_activity ] );
      ( "prelude",
        [
          Alcotest.test_case "travel" `Quick test_prelude_travel;
          Alcotest.test_case "visited + durable notes" `Quick test_prelude_visited_and_notes;
          Alcotest.test_case "send_folder" `Quick test_prelude_send_folder;
          Alcotest.test_case "disabled" `Quick test_prelude_disabled;
        ] );
      ( "itinerary",
        [
          Alcotest.test_case "orders by latency" `Quick test_itinerary_orders_by_latency;
          Alcotest.test_case "beats naive order" `Quick test_itinerary_beats_naive_order;
          Alcotest.test_case "unreachable sites" `Quick test_itinerary_handles_unreachable;
          Alcotest.test_case "folder roundtrip" `Quick test_itinerary_folder_roundtrip;
        ] );
      ( "system-agents",
        [
          Alcotest.test_case "courier" `Quick test_courier_delivers_folder;
          Alcotest.test_case "courier missing folder" `Quick test_courier_missing_folder_errors;
          Alcotest.test_case "diffusion covers graph once" `Quick test_diffusion_reaches_all_once;
          test_diffusion_random_graphs;
          test_guarded_journeys_random_itineraries;
          Alcotest.test_case "ag_shell" `Quick test_ag_shell_runs_all_code;
          Alcotest.test_case "rexec missing HOST" `Quick test_rexec_missing_host_errors;
          Alcotest.test_case "rexec unknown host" `Quick test_rexec_unknown_host_errors;
          Alcotest.test_case "work advances time" `Quick test_work_advances_time;
          Alcotest.test_case "dispatch from script" `Quick test_dispatch_from_script;
          Alcotest.test_case "dispatch bad host" `Quick test_dispatch_unknown_host_is_script_error;
        ] );
    ]

(* Tests for the content-addressed code cache: LRU mechanics, the
   hit/miss/fetch protocol over real migrations, volatility across site
   crashes (including guard relaunches), and determinism of the byte
   accounting. *)

module Codecache = Tacoma_core.Codecache
module Kernel = Tacoma_core.Kernel
module Briefcase = Tacoma_core.Briefcase
module Folder = Tacoma_core.Folder
module Escort = Guard.Escort
module Net = Netsim.Net
module Topology = Netsim.Topology
module Netstats = Netsim.Netstats
module Fault = Netsim.Fault
module Chaos = Netsim.Chaos

let check = Alcotest.check

(* --- cache mechanics (no network) --- *)

let test_digest_stable () =
  let d1 = Codecache.digest [ "a"; "bc" ] in
  check Alcotest.string "same elements, same digest" d1 (Codecache.digest [ "a"; "bc" ]);
  check Alcotest.bool "order matters" false (d1 = Codecache.digest [ "bc"; "a" ]);
  check Alcotest.bool "concatenation differs" false (d1 = Codecache.digest [ "abc" ])

let insert c elems =
  let dg = Codecache.digest elems in
  ignore (Codecache.insert c ~digest:dg elems);
  dg

let test_lru_eviction_order () =
  let evicted = ref [] in
  let c =
    Codecache.create
      ~on_evict:(fun ~digest ~bytes:_ -> evicted := digest :: !evicted)
      { Codecache.default_config with budget_bytes = 10 }
  in
  let da = insert c [ "aaaa" ] in
  let db = insert c [ "bbbb" ] in
  (* touch a so b is now the least recently used *)
  check Alcotest.bool "a resolves" true (Codecache.find_opt c ~digest:da <> None);
  let dc = insert c [ "cccc" ] in
  check Alcotest.(list string) "b evicted first" [ db ] (List.rev !evicted);
  check Alcotest.(list string) "MRU order c, a" [ dc; da ] (Codecache.digests c);
  let dd = insert c [ "dddddddd" ] in
  (* 8 bytes only fit alongside nothing else under a 10-byte budget *)
  check Alcotest.(list string) "a then c evicted" [ db; da; dc ] (List.rev !evicted);
  check Alcotest.(list string) "only d left" [ dd ] (Codecache.digests c);
  check Alcotest.int "bytes tracked" 8 (Codecache.bytes_used c)

let test_uncacheable_entry () =
  let c = Codecache.create { Codecache.default_config with budget_bytes = 4 } in
  let big = [ "0123456789" ] in
  check Alcotest.bool "over-budget entry refused" false
    (Codecache.insert c ~digest:(Codecache.digest big) big);
  check Alcotest.int "nothing cached" 0 (Codecache.entry_count c)

(* --- the protocol over real migrations --- *)

let code = String.concat "\n" (List.init 32 (fun i -> Printf.sprintf "# filler %d" i)) ^ "\nmeet filer"

let cached_config =
  { Kernel.default_config with cache = Some Kernel.default_cache_config }

let mk ?(config = cached_config) ?seed topo =
  let net = Net.create ?seed topo in
  let k = Kernel.create ~config net in
  (net, k)

let send_agent k =
  let bc = Briefcase.create () in
  Briefcase.set bc Briefcase.code_folder code;
  Briefcase.set bc Briefcase.host_folder "line-1";
  Briefcase.set bc Briefcase.contact_folder "ag_script";
  Kernel.launch k ~site:0 ~contact:"rexec" bc

let counters net =
  let m = Net.metrics net in
  ( Obs.Metrics.counter_total m "codecache.hits",
    Obs.Metrics.counter_total m "codecache.misses",
    Obs.Metrics.counter_total m "codecache.fetches" )

let test_miss_then_hit () =
  let net, k = mk (Topology.line 2) in
  send_agent k;
  Net.run ~until:20.0 net;
  check (Alcotest.triple Alcotest.int Alcotest.int Alcotest.int)
    "first arrival misses and fetches" (0, 1, 1) (counters net);
  send_agent k;
  Net.run ~until:40.0 net;
  check (Alcotest.triple Alcotest.int Alcotest.int Alcotest.int)
    "second arrival hits" (1, 1, 1) (counters net);
  check Alcotest.int "both agents ran to completion" 0 (Kernel.deaths k);
  check Alcotest.bool "substitution saved net bytes" true (Kernel.cache_saved_bytes k > 0);
  match Kernel.code_cache k 1 with
  | Some c -> check Alcotest.int "receiver holds the entry" 1 (Codecache.entry_count c)
  | None -> Alcotest.fail "cache not enabled"

let test_crash_clears_cache_and_refetches () =
  let net, k = mk (Topology.line 2) in
  send_agent k;
  Net.run ~until:20.0 net;
  Net.crash net 1;
  Net.restart net 1;
  (match Kernel.code_cache k 1 with
  | Some c -> check Alcotest.int "crash emptied the cache" 0 (Codecache.entry_count c)
  | None -> Alcotest.fail "cache not enabled");
  send_agent k;
  Net.run ~until:40.0 net;
  let hits, misses, fetches = counters net in
  check Alcotest.int "no stale hit after restart" 0 hits;
  check Alcotest.int "re-fetched" 2 misses;
  check Alcotest.int "two fetch round trips" 2 fetches;
  check Alcotest.int "no deaths" 0 (Kernel.deaths k)

let test_guard_relaunch_refetches () =
  (* a rear-guarded journey whose target site crashes mid-journey: the
     relaunched snapshot carries a code reference like any migration, and
     must resolve by re-fetching from the guard's site (the crash wiped the
     target's cache) *)
  let net, k = mk (Topology.full_mesh 5) in
  let payload = Briefcase.create () in
  Briefcase.set payload Briefcase.code_folder code;
  Fault.crash_for net ~site:2 ~at:0.0 ~downtime:6.0;
  let j =
    Escort.guarded_journey k
      ~config:
        {
          Escort.ack_timeout = 1.0;
          retry_period = 1.0;
          max_relaunch = 10;
          transport = Kernel.Tcp;
          durable = false;
        }
      ~id:"cc" ~itinerary:[ 0; 1; 2; 3 ] ~work:(fun _ ~hop:_ _ -> ()) payload
  in
  Net.run ~until:60.0 net;
  let s = Escort.stats j in
  check Alcotest.bool "completed despite crash" true s.Escort.completed;
  check Alcotest.bool "relaunched at least once" true (s.Escort.relaunches >= 1);
  let _, misses, fetches = counters net in
  check Alcotest.bool "every resolution fell back to a fetch" true (misses >= 3);
  check Alcotest.int "fetches match misses" misses fetches

(* --- fetch retry under partitions --- *)

let retry_config =
  { Kernel.default_config with
    cache = Some { Kernel.default_cache_config with fetch_timeout = 0.5 } }

let test_fetch_retry_through_partition () =
  (* the miss-path fetch request is dropped by a partition that opens just
     after the migration is sent; the bounded retry re-asks once the cut
     heals, so the held activation still runs *)
  let net, k = mk ~config:retry_config (Topology.line 2) in
  Chaos.apply net
    [ Chaos.Cut { links = [ (0, 1) ]; at = 0.001; duration = 0.3; label = "req" } ];
  send_agent k;
  Net.run ~until:20.0 net;
  let m = Net.metrics net in
  check Alcotest.int "one bounded retry" 1
    (Obs.Metrics.counter_total m "codecache.fetch_retries");
  check Alcotest.int "no fetch failure" 0
    (Obs.Metrics.counter_total m "codecache.fetch_failures");
  check Alcotest.int "held activation ran after the retry" 0 (Kernel.deaths k);
  let _, misses, fetches = counters net in
  check Alcotest.int "single miss" 1 misses;
  check Alcotest.int "single fetch round" 1 fetches

let test_fetch_exhaustion_is_code_fetch_death () =
  (* a partition outlasting every attempt: the fetch is abandoned and the
     loss is surfaced as a death of class "code-fetch" (which rear guards
     recover like any lost hop), not a hang *)
  let net, k = mk ~config:retry_config (Topology.line 2) in
  Chaos.apply net
    [ Chaos.Cut { links = [ (0, 1) ]; at = 0.001; duration = 5.0; label = "all" } ];
  send_agent k;
  Net.run ~until:20.0 net;
  let m = Net.metrics net in
  check Alcotest.int "retried before giving up" 1
    (Obs.Metrics.counter_total m "codecache.fetch_retries");
  check Alcotest.int "failure counted once" 1
    (Obs.Metrics.counter_total m "codecache.fetch_failures");
  check Alcotest.int "death carries the code-fetch class" 1
    (Obs.Metrics.counter m ~labels:[ ("class", "code-fetch") ] "kernel.deaths");
  check Alcotest.int "one death total" 1 (Kernel.deaths k)

(* --- determinism --- *)

let journey_stats ~cache () =
  let config = { Kernel.default_config with cache } in
  let net, k = mk ~config ~seed:42L (Topology.ring 4) in
  Kernel.register_native k "cc-hop" (fun ctx bc ->
      let t = ctx.Kernel.kernel in
      match Folder.pop (Briefcase.folder bc "ITINERARY") with
      | None -> ()
      | Some next ->
        Kernel.migrate t ~src:ctx.Kernel.site ~dst:(int_of_string next) ~contact:"cc-hop"
          ~transport:Kernel.Tcp bc);
  let bc = Briefcase.create () in
  Folder.replace (Briefcase.folder bc "ITINERARY") [ "1"; "2"; "3"; "0"; "1"; "2" ];
  Briefcase.set bc Briefcase.code_folder code;
  Kernel.launch k ~site:0 ~contact:"cc-hop" bc;
  Net.run ~until:60.0 net;
  let s = Net.stats net in
  (Netstats.messages_sent s, Netstats.bytes_sent s, Netstats.byte_hops s)

let test_replay_deterministic () =
  let stats = Alcotest.(triple int int int) in
  let warm = journey_stats ~cache:(Some Kernel.default_cache_config) () in
  check stats "cache on replays byte-identically" warm
    (journey_stats ~cache:(Some Kernel.default_cache_config) ());
  let cold = journey_stats ~cache:None () in
  check stats "cache off replays byte-identically" cold (journey_stats ~cache:None ());
  let _, warm_bytes, _ = warm and _, cold_bytes, _ = cold in
  check Alcotest.bool "revisiting journey ships fewer bytes warm" true (warm_bytes < cold_bytes)

let () =
  Alcotest.run "codecache"
    [
      ( "mechanics",
        [
          Alcotest.test_case "digest stability" `Quick test_digest_stable;
          Alcotest.test_case "lru eviction order" `Quick test_lru_eviction_order;
          Alcotest.test_case "uncacheable entry" `Quick test_uncacheable_entry;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "miss then hit" `Quick test_miss_then_hit;
          Alcotest.test_case "crash clears cache" `Quick test_crash_clears_cache_and_refetches;
          Alcotest.test_case "guard relaunch refetches" `Quick test_guard_relaunch_refetches;
          Alcotest.test_case "fetch retry through partition" `Quick
            test_fetch_retry_through_partition;
          Alcotest.test_case "fetch exhaustion is a code-fetch death" `Quick
            test_fetch_exhaustion_is_code_fetch_death;
        ] );
      ( "determinism",
        [ Alcotest.test_case "same-seed replay" `Quick test_replay_deterministic ] );
    ]

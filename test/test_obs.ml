(* Flight recorder: ring buffer, histogram math, metrics registry, JSON
   exporters, and end-to-end causal span propagation through the kernel. *)

module Kernel = Tacoma_core.Kernel
module Briefcase = Tacoma_core.Briefcase

(* ---- ring buffer ---------------------------------------------------------- *)

let test_ring_eviction_order () =
  let r = Obs.Ring.create 3 in
  List.iter (Obs.Ring.push r) [ 1; 2; 3; 4; 5 ];
  Alcotest.(check (list int)) "oldest evicted first" [ 3; 4; 5 ] (Obs.Ring.to_list r);
  Alcotest.(check int) "length capped" 3 (Obs.Ring.length r);
  Alcotest.(check int) "evicted count" 2 (Obs.Ring.evicted r);
  Obs.Ring.clear r;
  Alcotest.(check (list int)) "clear empties" [] (Obs.Ring.to_list r);
  Alcotest.(check int) "clear resets evicted" 0 (Obs.Ring.evicted r);
  Obs.Ring.push r 9;
  Alcotest.(check (list int)) "usable after clear" [ 9 ] (Obs.Ring.to_list r)

let test_ring_partial_fill () =
  let r = Obs.Ring.create 8 in
  List.iter (Obs.Ring.push r) [ 1; 2; 3 ];
  Alcotest.(check (list int)) "insertion order" [ 1; 2; 3 ] (Obs.Ring.to_list r);
  Alcotest.(check int) "nothing evicted" 0 (Obs.Ring.evicted r)

(* ---- histogram ------------------------------------------------------------ *)

let feq = Alcotest.float 1e-9

let test_hist_percentiles () =
  (* 4 equal buckets of 10 observations each: the percentile math is exact *)
  let h = Obs.Hist.create ~bounds:[| 10.0; 20.0; 30.0; 40.0 |] () in
  for i = 1 to 40 do
    Obs.Hist.observe h (float_of_int i)
  done;
  Alcotest.(check int) "count" 40 (Obs.Hist.count h);
  Alcotest.check feq "mean" 20.5 (Obs.Hist.mean h);
  Alcotest.check feq "min" 1.0 (Obs.Hist.min_value h);
  Alcotest.check feq "max" 40.0 (Obs.Hist.max_value h);
  Alcotest.check feq "p50 at bucket edge" 20.0 (Obs.Hist.percentile h 50.0);
  Alcotest.check feq "p90 interpolated" 36.0 (Obs.Hist.percentile h 90.0);
  Alcotest.check feq "p100 clamps to max" 40.0 (Obs.Hist.percentile h 100.0);
  (* rank 1 of 10 inside [min, 10] *)
  Alcotest.check feq "p0 near min" 1.9 (Obs.Hist.percentile h 0.0)

let test_hist_single_value () =
  let h = Obs.Hist.create () in
  Obs.Hist.observe h 0.25;
  List.iter
    (fun p ->
      Alcotest.check feq (Printf.sprintf "p%g is the value" p) 0.25 (Obs.Hist.percentile h p))
    [ 0.0; 50.0; 99.0; 100.0 ];
  Alcotest.check feq "empty histogram is 0" 0.0 (Obs.Hist.percentile (Obs.Hist.create ()) 50.0)

let test_hist_overflow_bucket () =
  let h = Obs.Hist.create ~bounds:[| 1.0 |] () in
  Obs.Hist.observe h 100.0;
  Obs.Hist.observe h 200.0;
  Alcotest.check feq "overflow p99 clamps to max" 200.0 (Obs.Hist.percentile h 99.0);
  Alcotest.(check int) "two buckets listed" 1 (List.length (Obs.Hist.buckets h))

(* ---- metrics registry ----------------------------------------------------- *)

let test_metrics_counters () =
  let m = Obs.Metrics.create () in
  Obs.Metrics.incr m "hits";
  Obs.Metrics.incr m ~by:4 "hits";
  Alcotest.(check int) "unlabelled counter" 5 (Obs.Metrics.counter m "hits");
  Obs.Metrics.incr m ~labels:[ ("site", "a"); ("op", "put") ] "ops";
  Obs.Metrics.incr m ~labels:[ ("op", "put"); ("site", "a") ] "ops";
  Obs.Metrics.incr m ~labels:[ ("op", "get"); ("site", "a") ] "ops";
  Alcotest.(check int) "label order canonicalised" 2
    (Obs.Metrics.counter m ~labels:[ ("site", "a"); ("op", "put") ] "ops");
  Alcotest.(check int) "total across label sets" 3 (Obs.Metrics.counter_total m "ops");
  Alcotest.(check int) "missing series is 0" 0 (Obs.Metrics.counter m "absent")

let test_metrics_kinds () =
  let m = Obs.Metrics.create () in
  Obs.Metrics.set_gauge m "depth" 3.5;
  Alcotest.(check (option (Alcotest.float 0.0))) "gauge readback" (Some 3.5)
    (Obs.Metrics.gauge m "depth");
  Obs.Metrics.observe m "lat" 0.5;
  Obs.Metrics.observe m "lat" 1.5;
  (match Obs.Metrics.histogram m "lat" with
  | Some h -> Alcotest.(check int) "histogram count" 2 (Obs.Hist.count h)
  | None -> Alcotest.fail "histogram series missing");
  Alcotest.check_raises "kind mismatch rejected"
    (Invalid_argument "Metrics: \"depth\" is not a counter") (fun () ->
      Obs.Metrics.incr m "depth")

(* ---- a minimal JSON parser (validity checking only) ----------------------- *)

exception Bad_json of string

let parse_json s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let fail msg = raise (Bad_json (Printf.sprintf "%s at %d" msg !pos)) in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some x when x = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word =
    String.iter expect word
  in
  let parse_string () =
    expect '"';
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
        advance ();
        match peek () with
        | Some ('"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't') ->
          advance ();
          go ()
        | Some 'u' ->
          advance ();
          for _ = 1 to 4 do
            match peek () with
            | Some ('0' .. '9' | 'a' .. 'f' | 'A' .. 'F') -> advance ()
            | _ -> fail "bad \\u escape"
          done;
          go ()
        | _ -> fail "bad escape")
      | Some c when Char.code c < 0x20 -> fail "control char in string"
      | Some _ ->
        advance ();
        go ()
    in
    go ()
  in
  let parse_number () =
    let num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    let start = !pos in
    while (match peek () with Some c -> num_char c | None -> false) do
      advance ()
    done;
    if !pos = start then fail "expected number";
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some _ -> ()
    | None -> fail "malformed number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then advance ()
      else begin
        let rec members () =
          skip_ws ();
          parse_string ();
          skip_ws ();
          expect ':';
          parse_value ();
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ()
          | Some '}' -> advance ()
          | _ -> fail "expected , or }"
        in
        members ()
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then advance ()
      else begin
        let rec elements () =
          parse_value ();
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            elements ()
          | Some ']' -> advance ()
          | _ -> fail "expected , or ]"
        in
        elements ()
      end
    | Some '"' -> parse_string ()
    | Some 't' -> literal "true"
    | Some 'f' -> literal "false"
    | Some 'n' -> literal "null"
    | Some _ -> parse_number ()
    | None -> fail "unexpected end"
  in
  parse_value ();
  skip_ws ();
  if !pos <> n then fail "trailing garbage"

(* ---- exporters ------------------------------------------------------------ *)

let fixed_events () =
  let tr = Obs.Tracer.create ~enabled:true () in
  let root = Obs.Tracer.start_span tr ~time:0.0 ~site:0 ~agent:"courier" "activate:courier" in
  Obs.Tracer.instant tr ~time:0.5 ~span:root ~cat:"net" ~site:0
    ~msg:"escaping: \"quotes\" \\ and\nnewline"
    ~attrs:[ ("dst", Obs.Event.I 1); ("ok", Obs.Event.B true); ("w", Obs.Event.F 0.25) ]
    "net.send";
  let child =
    Obs.Tracer.start_span tr ~time:1.0 ~parent:root ~site:1 ~agent:"filer" "meet:filer"
  in
  Obs.Tracer.end_span tr ~time:1.5 ~site:1 ~agent:"filer" child "meet:filer";
  Obs.Tracer.end_span tr ~time:2.0 ~site:0 ~agent:"courier" root "activate:courier";
  Obs.Tracer.events tr

let chrome_golden =
  "{\"traceEvents\":[\n\
   {\"name\":\"activate:courier\",\"cat\":\"agent\",\"ph\":\"B\",\"ts\":0,\"pid\":0,\"tid\":1,\"args\":{\"agent\":\"courier\",\"site\":0,\"trace\":1,\"span\":1}},\n\
   {\"name\":\"net.send\",\"cat\":\"net\",\"ph\":\"i\",\"s\":\"t\",\"ts\":500000,\"pid\":0,\"tid\":0,\"args\":{\"site\":0,\"trace\":1,\"span\":1,\"msg\":\"escaping: \\\"quotes\\\" \\\\ and\\nnewline\",\"dst\":1,\"ok\":true,\"w\":0.250000}},\n\
   {\"name\":\"meet:filer\",\"cat\":\"agent\",\"ph\":\"B\",\"ts\":1000000,\"pid\":1,\"tid\":2,\"args\":{\"agent\":\"filer\",\"site\":1,\"trace\":1,\"span\":2,\"parent\":1}},\n\
   {\"name\":\"meet:filer\",\"cat\":\"agent\",\"ph\":\"E\",\"ts\":1500000,\"pid\":1,\"tid\":2,\"args\":{\"agent\":\"filer\",\"site\":1,\"trace\":1,\"span\":2}},\n\
   {\"name\":\"activate:courier\",\"cat\":\"agent\",\"ph\":\"E\",\"ts\":2000000,\"pid\":0,\"tid\":1,\"args\":{\"agent\":\"courier\",\"site\":0,\"trace\":1,\"span\":1}}\n\
   ],\"displayTimeUnit\":\"ms\"}\n"

let test_chrome_export_golden () =
  let out = Obs.Export.chrome (fixed_events ()) in
  (match parse_json out with
  | () -> ()
  | exception Bad_json msg -> Alcotest.fail ("chrome output is not valid JSON: " ^ msg));
  Alcotest.(check string) "golden chrome output" chrome_golden out

let test_jsonl_export_valid () =
  let events = fixed_events () in
  let lines =
    String.split_on_char '\n' (Obs.Export.jsonl events) |> List.filter (fun l -> l <> "")
  in
  Alcotest.(check int) "one line per event" (List.length events) (List.length lines);
  List.iter
    (fun line ->
      match parse_json line with
      | () -> ()
      | exception Bad_json msg -> Alcotest.fail ("invalid JSONL line: " ^ msg))
    lines

(* ---- causal propagation through the kernel -------------------------------- *)

(* A native agent that hops along a line topology, one site per hop. *)
let install_hopper k ~hops =
  Kernel.register_native k "hopper" (fun ctx bc ->
      let h =
        match Option.bind (Briefcase.find_opt bc "H") int_of_string_opt with
        | Some h -> h
        | None -> 0
      in
      if h < hops then begin
        Briefcase.set bc "H" (string_of_int (h + 1));
        Kernel.migrate k ~src:ctx.Kernel.site ~dst:(ctx.Kernel.site + 1) ~contact:"hopper"
          ~transport:Kernel.Tcp (Briefcase.copy bc)
      end)

let begin_spans name events =
  List.filter
    (fun (e : Obs.Event.t) -> e.kind = Obs.Event.Begin && e.name = name)
    events

(* Each activation must be a child of the previous hop's activation and all
   hops must share one trace id. *)
let check_chain spans =
  (match spans with
  | [] -> Alcotest.fail "no spans"
  | (first : Obs.Event.t) :: rest ->
    Alcotest.(check int) "journey root has no parent" 0 first.parent_id;
    ignore
      (List.fold_left
         (fun (prev : Obs.Event.t) (e : Obs.Event.t) ->
           Alcotest.(check int)
             (Printf.sprintf "span %d parents to previous hop" e.span.Obs.Span.span_id)
             prev.span.Obs.Span.span_id e.parent_id;
           Alcotest.(check int) "same trace id" prev.span.Obs.Span.trace_id
             e.span.Obs.Span.trace_id;
           e)
         first rest))

let test_span_propagation_multihop () =
  let net = Netsim.Net.create ~trace:true (Netsim.Topology.line 4) in
  let k = Kernel.create net in
  install_hopper k ~hops:3;
  let bc = Briefcase.create () in
  Kernel.launch k ~site:0 ~contact:"hopper" bc;
  Netsim.Net.run ~until:60.0 net;
  Alcotest.(check int) "all four sites activated" 4 (Kernel.activations k);
  let spans = begin_spans "activate:hopper" (Netsim.Trace.events (Netsim.Net.trace net)) in
  Alcotest.(check int) "one activation span per hop" 4 (List.length spans);
  Alcotest.(check (list int)) "sites in journey order" [ 0; 1; 2; 3 ]
    (List.map (fun (e : Obs.Event.t) -> e.site) spans);
  check_chain spans

let test_span_propagation_guard_relaunch () =
  let net = Netsim.Net.create ~trace:true (Netsim.Topology.ring 4) in
  let k = Kernel.create net in
  let j =
    Guard.Escort.guarded_journey k
      ~config:{ Guard.Escort.default_config with ack_timeout = 2.0; retry_period = 2.0 }
      ~id:"t" ~itinerary:[ 0; 1; 2; 3 ]
      ~work:(fun _ ~hop:_ _ -> ())
      (Briefcase.create ())
  in
  (* the hop into site 2 is lost; the rear guard at site 1 must relaunch *)
  Netsim.Fault.crash_for net ~site:2 ~at:0.0 ~downtime:5.0;
  Netsim.Net.run ~until:120.0 net;
  let s = Guard.Escort.stats j in
  Alcotest.(check bool) "journey completed" true s.Guard.Escort.completed;
  Alcotest.(check bool) "at least one relaunch" true (s.Guard.Escort.relaunches >= 1);
  let events = Netsim.Trace.events (Netsim.Net.trace net) in
  let arrives = begin_spans "activate:escort-arrive:t" events in
  Alcotest.(check int) "four arrivals" 4 (List.length arrives);
  check_chain arrives;
  let relaunches =
    List.filter (fun (e : Obs.Event.t) -> e.name = "guard.relaunch") events
  in
  Alcotest.(check bool) "relaunch instants recorded" true (List.length relaunches >= 1);
  (* the relaunch instant is attributed to the same trace as the journey *)
  let journey_trace =
    match arrives with e :: _ -> e.span.Obs.Span.trace_id | [] -> assert false
  in
  List.iter
    (fun (e : Obs.Event.t) ->
      Alcotest.(check int) "relaunch joins journey trace" journey_trace
        e.span.Obs.Span.trace_id)
    relaunches;
  Alcotest.(check int) "guard.relaunches counter matches journey stats"
    s.Guard.Escort.relaunches
    (Obs.Metrics.counter (Netsim.Net.metrics net) "guard.relaunches")

let run_hopper ~trace () =
  let net = Netsim.Net.create ~trace (Netsim.Topology.line 4) in
  let k = Kernel.create net in
  install_hopper k ~hops:3;
  Kernel.launch k ~site:0 ~contact:"hopper" (Briefcase.create ());
  Netsim.Net.run ~until:60.0 net;
  (net, k)

let test_disabled_tracing_is_silent () =
  let net, k = run_hopper ~trace:false () in
  Alcotest.(check int) "no structured events" 0
    (List.length (Netsim.Trace.events (Netsim.Net.trace net)));
  Alcotest.(check int) "no legacy entries" 0
    (List.length (Netsim.Trace.entries (Netsim.Net.trace net)));
  Alcotest.(check int) "run still completed" 4 (Kernel.activations k);
  (* identical reruns: tracing off leaves the simulation fully deterministic *)
  let net2, _ = run_hopper ~trace:false () in
  Alcotest.(check int) "deterministic byte count"
    (Netsim.Netstats.bytes_sent (Netsim.Net.stats net))
    (Netsim.Netstats.bytes_sent (Netsim.Net.stats net2));
  (* the TRACE folder only travels while tracing is on, so a traced run
     ships strictly more bytes *)
  let net3, _ = run_hopper ~trace:true () in
  Alcotest.(check bool) "tracing adds briefcase bytes" true
    (Netsim.Netstats.bytes_sent (Netsim.Net.stats net3)
    > Netsim.Netstats.bytes_sent (Netsim.Net.stats net))

let test_kernel_metrics () =
  let net, k = run_hopper ~trace:false () in
  let m = Netsim.Net.metrics net in
  Alcotest.(check int) "activations counter" (Kernel.activations k)
    (Obs.Metrics.counter m "kernel.activations");
  Alcotest.(check int) "completions counter" (Kernel.completions k)
    (Obs.Metrics.counter m "kernel.completions");
  Alcotest.(check int) "migrations by transport" 3
    (Obs.Metrics.counter m ~labels:[ ("transport", "tcp") ] "kernel.migrations");
  Alcotest.(check bool) "network counters populated" true
    (Obs.Metrics.counter_total m "net.sent" >= 3)

(* A migrating TScript agent re-runs the same source at every site; the
   kernel's shared compile caches must turn the revisits into parse/expr
   cache hits, surfaced through the metrics registry (what `tacoma
   metrics` prints). *)
let test_interp_cache_metrics () =
  let code =
    {|
    folder put TRAIL [host]
    set i 0
    set acc 0
    while {$i < 10} {
      set acc [expr {$acc + $i}]
      incr i
    }
    if {[folder size TRAIL] < 4} {
      set next ""
      foreach n [neighbors] {
        if {![folder contains TRAIL $n]} { set next $n; break }
      }
      folder set CODE [selfcode]
      jump $next
    }
  |}
  in
  let net = Netsim.Net.create ~trace:false (Netsim.Topology.line 4) in
  let k = Kernel.create net in
  let bc = Briefcase.create () in
  Briefcase.set bc Briefcase.code_folder code;
  Kernel.launch k ~site:0 ~contact:"ag_script" bc;
  Netsim.Net.run ~until:60.0 net;
  let m = Netsim.Net.metrics net in
  Alcotest.(check int) "all four sites activated" 4 (Kernel.activations k);
  Alcotest.(check bool) "expr cache hits recorded" true
    (Obs.Metrics.counter m "tscript.expr_cache.hit" > 0);
  Alcotest.(check bool) "parse cache hits recorded" true
    (Obs.Metrics.counter m "tscript.parse_cache.hit" > 0);
  Alcotest.(check bool) "expressions compiled" true
    (Obs.Metrics.counter m "tscript.exprs_compiled" > 0);
  (* the cache bound is far above this workload: no evictions *)
  Alcotest.(check int) "no evictions" 0 (Obs.Metrics.counter m "tscript.expr_cache.evict")

let () =
  Alcotest.run "obs"
    [
      ( "ring",
        [
          Alcotest.test_case "eviction order" `Quick test_ring_eviction_order;
          Alcotest.test_case "partial fill" `Quick test_ring_partial_fill;
        ] );
      ( "hist",
        [
          Alcotest.test_case "percentiles" `Quick test_hist_percentiles;
          Alcotest.test_case "single value" `Quick test_hist_single_value;
          Alcotest.test_case "overflow bucket" `Quick test_hist_overflow_bucket;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "counters and labels" `Quick test_metrics_counters;
          Alcotest.test_case "gauges and histograms" `Quick test_metrics_kinds;
        ] );
      ( "export",
        [
          Alcotest.test_case "chrome golden + valid JSON" `Quick test_chrome_export_golden;
          Alcotest.test_case "jsonl valid" `Quick test_jsonl_export_valid;
        ] );
      ( "spans",
        [
          Alcotest.test_case "multi-hop propagation" `Quick test_span_propagation_multihop;
          Alcotest.test_case "guard relaunch propagation" `Quick
            test_span_propagation_guard_relaunch;
          Alcotest.test_case "disabled tracing silent" `Quick test_disabled_tracing_is_silent;
          Alcotest.test_case "kernel counters" `Quick test_kernel_metrics;
          Alcotest.test_case "interp cache counters" `Quick test_interp_cache_metrics;
        ] );
    ]

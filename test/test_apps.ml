(* Tests for the paper's §6 applications: the client/server baseline RPC,
   synthetic weather + the StormCast expert system in both architectures,
   and the agent-based mail system. *)

module Rpc = Baseline.Rpc
module Weather = Apps.Weather
module Stormcast = Apps.Stormcast
module Agentmail = Apps.Agentmail
module Kernel = Tacoma_core.Kernel
module Cabinet = Tacoma_core.Cabinet
module Net = Netsim.Net
module Topology = Netsim.Topology
module Rng = Tacoma_util.Rng

let check = Alcotest.check

(* --- baseline rpc --- *)

let test_rpc_roundtrip () =
  let net = Net.create (Topology.line 3) in
  ignore
    (Rpc.serve net ~site:2 ~service:"echo" (fun ~query -> [ query; String.uppercase_ascii query ]));
  let got = ref None in
  let c = Rpc.client net ~src:0 in
  Rpc.call c ~dst:2 ~service:"echo" ~query:"hej" ~on_reply:(fun rows ->
      got := Some rows);
  Net.run net;
  check Alcotest.(option (list string)) "reply" (Some [ "hej"; "HEJ" ]) !got

let test_rpc_two_services_one_site () =
  let net = Net.create (Topology.line 2) in
  ignore (Rpc.serve net ~site:1 ~service:"a" (fun ~query:_ -> [ "from-a" ]));
  ignore (Rpc.serve net ~site:1 ~service:"b" (fun ~query:_ -> [ "from-b" ]));
  let got = ref [] in
  let c = Rpc.client net ~src:0 in
  Rpc.call c ~dst:1 ~service:"a" ~query:"" ~on_reply:(fun r -> got := r @ !got);
  Rpc.call c ~dst:1 ~service:"b" ~query:"" ~on_reply:(fun r -> got := r @ !got);
  Net.run net;
  check Alcotest.(list string) "both served" [ "from-a"; "from-b" ] (List.sort compare !got)

let test_rpc_bytes_accounted () =
  let net = Net.create (Topology.line 2) in
  let stats = Rpc.serve net ~site:1 ~service:"big" (fun ~query:_ -> [ String.make 5000 'x' ]) in
  Rpc.call (Rpc.client net ~src:0) ~dst:1 ~service:"big" ~query:"q" ~on_reply:(fun _ -> ());
  Net.run net;
  check Alcotest.int "requests" 1 stats.Rpc.requests;
  Alcotest.(check bool) "response bytes include data" true (stats.Rpc.response_bytes > 5000);
  Alcotest.(check bool) "network saw the bytes" true
    (Netsim.Netstats.bytes_sent (Net.stats net) > 5000)

let test_rpc_lost_on_down_server () =
  let net = Net.create (Topology.line 2) in
  ignore (Rpc.serve net ~site:1 ~service:"s" (fun ~query:_ -> []));
  Net.crash net 1;
  let got = ref false in
  Rpc.call (Rpc.client net ~src:0) ~dst:1 ~service:"s" ~query:"" ~on_reply:(fun _ -> got := true);
  Net.run net;
  Alcotest.(check bool) "no reply from crashed server" false !got

(* --- weather --- *)

let field () = Weather.generate ~rng:(Rng.create 11L) ~stations:6 ~hours:48 ()

let test_weather_deterministic () =
  let a = field () and b = field () in
  check Alcotest.(list (pair int int)) "same storms" a.Weather.storm_hours b.Weather.storm_hours;
  Alcotest.(check bool) "same readings" true (a.Weather.readings = b.Weather.readings)

let test_weather_wire_roundtrip () =
  let f = field () in
  Array.iter
    (fun station ->
      Array.iter
        (fun r ->
          match Weather.of_wire (Weather.wire r) with
          | Ok r' ->
            Alcotest.(check bool) "station/hour preserved" true
              (r.Weather.station = r'.Weather.station && r.Weather.hour = r'.Weather.hour)
          | Error e -> Alcotest.failf "roundtrip: %s" e)
        station)
    f.Weather.readings

let test_weather_storms_depress_pressure () =
  let f = field () in
  let storm_ps = ref [] and calm_ps = ref [] in
  Array.iter
    (fun station ->
      Array.iter
        (fun (r : Weather.reading) ->
          if Weather.is_storm_truth f ~station:r.Weather.station ~hour:r.Weather.hour then
            storm_ps := r.Weather.pressure_hpa :: !storm_ps
          else calm_ps := r.Weather.pressure_hpa :: !calm_ps)
        station)
    f.Weather.readings;
  Alcotest.(check bool) "some storm hours exist" true (!storm_ps <> []);
  let mean l = List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l) in
  Alcotest.(check bool) "storms depress pressure" true (mean !storm_ps < mean !calm_ps -. 5.0)

(* --- stormcast --- *)

let stormcast_world () =
  let topo = Topology.star 6 in
  (* hub = prediction centre, spokes = sensors *)
  let net = Net.create topo in
  let k = Kernel.create net in
  let f = Weather.generate ~rng:(Rng.create 17L) ~stations:6 ~hours:48 ~storm_count:3 () in
  let sensors = [ 1; 2; 3; 4; 5; 6 ] in
  Stormcast.load_sensor_data k ~sites:sensors f;
  (net, k, f, sensors)

let test_agent_and_central_agree () =
  let net, k, f, sensors = stormcast_world () in
  let agent_out = ref None in
  Stormcast.run_agent_collector k ~sensor_sites:sensors ~centre:0 ~on_done:(fun o ->
      agent_out := Some o);
  Net.run ~until:120.0 net;
  let net2 = Net.create (Topology.star 6) in
  let cs_out = ref None in
  Stormcast.run_client_server net2 ~field:f ~sensor_sites:sensors ~centre:0
    ~on_done:(fun o -> cs_out := Some o);
  Net.run ~until:120.0 net2;
  match (!agent_out, !cs_out) with
  | Some a, Some c ->
    let norm o =
      List.sort compare
        (List.map (fun p -> (p.Stormcast.p_station, p.Stormcast.p_hour)) o.Stormcast.predictions)
    in
    check Alcotest.(list (pair int int)) "same predictions" (norm c) (norm a);
    Alcotest.(check bool) "agent moves fewer bytes" true (a.Stormcast.bytes_moved < c.Stormcast.bytes_moved);
    Alcotest.(check bool) "agent moves fewer readings" true
      (a.Stormcast.readings_moved < c.Stormcast.readings_moved)
  | _ -> Alcotest.fail "a run did not finish"

let test_predictions_catch_storms () =
  let net, k, f, sensors = stormcast_world () in
  let out = ref None in
  Stormcast.run_agent_collector k ~sensor_sites:sensors ~centre:0 ~on_done:(fun o ->
      out := Some o);
  Net.run ~until:120.0 net;
  match !out with
  | None -> Alcotest.fail "did not finish"
  | Some o ->
    let hit = ref 0.0 and fa = ref 0.0 in
    Stormcast.score f o.Stormcast.predictions ~hit_rate:hit ~false_alarm_rate:fa;
    Alcotest.(check bool) "hit rate decent" true (!hit > 0.5);
    Alcotest.(check bool) "false alarms bounded" true (!fa < 0.5)

let test_script_collector_matches_native () =
  (* the TScript collector is the native one transcribed; findings and
     predictions must be identical *)
  let run runner =
    let net, k, _, sensors = stormcast_world () in
    let out = ref None in
    runner k ~sensor_sites:sensors ~centre:0 ~on_done:(fun o -> out := Some o);
    Net.run ~until:300.0 net;
    Option.get !out
  in
  let native = run Stormcast.run_agent_collector in
  let script = run Stormcast.run_script_collector in
  let norm o =
    List.sort compare
      (List.map (fun p -> (p.Stormcast.p_station, p.Stormcast.p_hour)) o.Stormcast.predictions)
  in
  check Alcotest.(list (pair int int)) "same predictions" (norm native) (norm script);
  check Alcotest.int "same findings carried" native.Stormcast.readings_moved
    script.Stormcast.readings_moved;
  (* the script ships its own source each hop, so it costs a bit more *)
  Alcotest.(check bool) "script pays code shipping" true
    (script.Stormcast.bytes_moved > native.Stormcast.bytes_moved)

let test_monitor_agents_push () =
  let net, k, f, sensors = stormcast_world () in
  let finish =
    Stormcast.run_monitor_agents k ~field:f ~sensor_sites:sensors ~centre:0 ~hour_scale:1.0 ()
  in
  Net.run ~until:100.0 net;
  let out = finish () in
  (* every anomalous reading arrives, almost immediately *)
  let expected_alerts =
    Array.fold_left
      (fun acc station -> acc + Array.length (Array.of_list (List.filter Stormcast.anomalous (Array.to_list station))))
      0 f.Weather.readings
  in
  check Alcotest.int "every anomaly alerted" expected_alerts out.Stormcast.alerts;
  Alcotest.(check bool) "sub-second detection" true (out.Stormcast.mean_alert_latency < 0.1);
  Alcotest.(check bool) "alerts happened" true (out.Stormcast.alerts > 0);
  (* same anomalies as the collector sees -> same predictions *)
  let collector_out = ref None in
  let net2 = Net.create (Topology.star 6) in
  let k2 = Kernel.create net2 in
  Stormcast.load_sensor_data k2 ~sites:sensors f;
  Stormcast.run_agent_collector k2 ~sensor_sites:sensors ~centre:0 ~on_done:(fun o ->
      collector_out := Some o);
  Net.run ~until:100.0 net2;
  let norm ps =
    List.sort compare (List.map (fun p -> (p.Stormcast.p_station, p.Stormcast.p_hour)) ps)
  in
  check Alcotest.(list (pair int int)) "same predictions as collector"
    (norm (Option.get !collector_out).Stormcast.predictions)
    (norm out.Stormcast.push_predictions)

let test_quiet_field_no_predictions () =
  let topo = Topology.star 4 in
  let net = Net.create topo in
  let k = Kernel.create net in
  let f = Weather.generate ~rng:(Rng.create 5L) ~stations:4 ~hours:24 ~storm_count:0 () in
  let sensors = [ 1; 2; 3; 4 ] in
  Stormcast.load_sensor_data k ~sites:sensors f;
  let out = ref None in
  Stormcast.run_agent_collector k ~sensor_sites:sensors ~centre:0 ~on_done:(fun o ->
      out := Some o);
  Net.run ~until:120.0 net;
  match !out with
  | None -> Alcotest.fail "did not finish"
  | Some o -> check Alcotest.int "no storms predicted" 0 (List.length o.Stormcast.predictions)

(* --- agent mail --- *)

let mail_world () =
  let net = Net.create (Topology.full_mesh 4) in
  let k = Kernel.create net in
  Agentmail.setup k;
  Agentmail.register_user k ~user:"alice" ~home:0;
  Agentmail.register_user k ~user:"bob" ~home:1;
  Agentmail.register_user k ~user:"carol" ~home:2;
  (net, k)

let subjects msgs = List.map (fun m -> m.Agentmail.subject) msgs

let test_mail_delivery () =
  let net, k = mail_world () in
  Agentmail.send k ~src:0 ~from_user:"alice" ~to_user:"bob" ~subject:"hi" ~body:"hello bob";
  Net.run ~until:30.0 net;
  match Agentmail.mailbox k ~user:"bob" with
  | [ m ] ->
    check Alcotest.string "from" "alice" m.Agentmail.from_user;
    check Alcotest.string "subject" "hi" m.Agentmail.subject;
    check Alcotest.string "body" "hello bob" m.Agentmail.body
  | other -> Alcotest.failf "expected 1 message, got %d" (List.length other)

let test_mail_bounce () =
  let net, k = mail_world () in
  Agentmail.send k ~src:0 ~from_user:"alice" ~to_user:"nobody" ~subject:"void" ~body:"x";
  Net.run ~until:30.0 net;
  match Agentmail.mailbox k ~user:"alice" with
  | [ m ] ->
    check Alcotest.string "bounced subject" "bounced: void" m.Agentmail.subject;
    check Alcotest.string "postmaster" "postmaster" m.Agentmail.from_user
  | other -> Alcotest.failf "expected bounce, got %d messages" (List.length other)

let test_mail_forwarding () =
  let net, k = mail_world () in
  Agentmail.set_forward k ~user:"bob" ~to_user:"carol";
  Agentmail.send k ~src:0 ~from_user:"alice" ~to_user:"bob" ~subject:"fwd" ~body:"x";
  Net.run ~until:30.0 net;
  check Alcotest.int "bob keeps nothing" 0 (List.length (Agentmail.mailbox k ~user:"bob"));
  check Alcotest.(list string) "carol got it" [ "fwd" ]
    (subjects (Agentmail.mailbox k ~user:"carol"))

let test_mail_forward_cycle_dropped () =
  let net, k = mail_world () in
  Agentmail.set_forward k ~user:"bob" ~to_user:"carol";
  Agentmail.set_forward k ~user:"carol" ~to_user:"bob";
  Agentmail.send k ~src:0 ~from_user:"alice" ~to_user:"bob" ~subject:"loop" ~body:"x";
  Net.run ~until:60.0 net;
  (* hop bound breaks the cycle; nothing delivered, nothing diverges *)
  check Alcotest.int "bob empty" 0 (List.length (Agentmail.mailbox k ~user:"bob"));
  check Alcotest.int "carol empty" 0 (List.length (Agentmail.mailbox k ~user:"carol"))

let test_mail_vacation_once_per_sender () =
  let net, k = mail_world () in
  Agentmail.set_vacation k ~user:"bob" ~note:"away until spring";
  Agentmail.send k ~src:0 ~from_user:"alice" ~to_user:"bob" ~subject:"m1" ~body:"x";
  Agentmail.send k ~src:0 ~from_user:"alice" ~to_user:"bob" ~subject:"m2" ~body:"y";
  Agentmail.send k ~src:2 ~from_user:"carol" ~to_user:"bob" ~subject:"m3" ~body:"z";
  Net.run ~until:60.0 net;
  check Alcotest.int "bob got all three" 3 (List.length (Agentmail.mailbox k ~user:"bob"));
  let alice_auto =
    List.filter (fun m -> m.Agentmail.from_user = "bob") (Agentmail.mailbox k ~user:"alice")
  in
  check Alcotest.int "alice one auto-reply" 1 (List.length alice_auto);
  check Alcotest.int "carol one auto-reply" 1
    (List.length (Agentmail.mailbox k ~user:"carol"))

let test_mailing_list_fanout () =
  let net, k = mail_world () in
  Agentmail.make_list k ~name:"everyone" ~members:[ "alice"; "bob"; "carol" ];
  Agentmail.send k ~src:1 ~from_user:"bob" ~to_user:"everyone" ~subject:"ann" ~body:"news";
  Net.run ~until:60.0 net;
  List.iter
    (fun user ->
      check Alcotest.(list string) (user ^ " got the announcement") [ "ann" ]
        (subjects (Agentmail.mailbox k ~user)))
    [ "alice"; "bob"; "carol" ]

let test_mail_survives_transit_retry () =
  (* recipient's home down on first delivery attempt: with tcp transport the
     message agent is lost -- mail uses rexec, so this documents the loss
     mode; we then verify a later send gets through *)
  let net, k = mail_world () in
  Netsim.Fault.crash_for net ~site:1 ~at:0.0 ~downtime:2.0;
  Agentmail.send k ~src:0 ~from_user:"alice" ~to_user:"bob" ~subject:"early" ~body:"x";
  Net.run ~until:5.0 net;
  Agentmail.send k ~src:0 ~from_user:"alice" ~to_user:"bob" ~subject:"late" ~body:"y";
  Net.run ~until:30.0 net;
  check Alcotest.(list string) "late mail delivered after restart" [ "late" ]
    (subjects (Agentmail.mailbox k ~user:"bob"))

let () =
  Alcotest.run "apps"
    [
      ( "rpc",
        [
          Alcotest.test_case "roundtrip" `Quick test_rpc_roundtrip;
          Alcotest.test_case "two services" `Quick test_rpc_two_services_one_site;
          Alcotest.test_case "bytes accounted" `Quick test_rpc_bytes_accounted;
          Alcotest.test_case "down server" `Quick test_rpc_lost_on_down_server;
        ] );
      ( "weather",
        [
          Alcotest.test_case "deterministic" `Quick test_weather_deterministic;
          Alcotest.test_case "wire roundtrip" `Quick test_weather_wire_roundtrip;
          Alcotest.test_case "storm signature" `Quick test_weather_storms_depress_pressure;
        ] );
      ( "stormcast",
        [
          Alcotest.test_case "architectures agree, agent cheaper" `Quick
            test_agent_and_central_agree;
          Alcotest.test_case "storms detected" `Quick test_predictions_catch_storms;
          Alcotest.test_case "script collector = native" `Quick
            test_script_collector_matches_native;
          Alcotest.test_case "resident monitors push" `Quick test_monitor_agents_push;
          Alcotest.test_case "quiet field" `Quick test_quiet_field_no_predictions;
        ] );
      ( "mail",
        [
          Alcotest.test_case "delivery" `Quick test_mail_delivery;
          Alcotest.test_case "bounce" `Quick test_mail_bounce;
          Alcotest.test_case "forwarding" `Quick test_mail_forwarding;
          Alcotest.test_case "forward cycle" `Quick test_mail_forward_cycle_dropped;
          Alcotest.test_case "vacation auto-reply" `Quick test_mail_vacation_once_per_sender;
          Alcotest.test_case "mailing list" `Quick test_mailing_list_fanout;
          Alcotest.test_case "transit loss + retry" `Quick test_mail_survives_transit_retry;
        ] );
    ]

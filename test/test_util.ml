(* Tests for the shared substrate: PRNG, heap, SHA-256/HMAC, hex, stats, LRU. *)

module Rng = Tacoma_util.Rng
module Heap = Tacoma_util.Heap
module Sha256 = Tacoma_util.Sha256
module Hexutil = Tacoma_util.Hexutil
module Stats = Tacoma_util.Stats
module Lru = Tacoma_util.Lru

let check = Alcotest.check
let qtest ?(count = 300) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* --- rng --- *)

let test_rng_deterministic () =
  let a = Rng.create 7L and b = Rng.create 7L in
  for _ = 1 to 100 do
    check Alcotest.int64 "same seed, same stream" (Rng.int64 a) (Rng.int64 b)
  done

let test_rng_split_independent () =
  let a = Rng.create 7L in
  let child = Rng.split a in
  let next_parent = Rng.int64 a in
  let next_child = Rng.int64 child in
  Alcotest.(check bool) "split stream differs" true (next_parent <> next_child)

let test_rng_int_bounds () =
  let r = Rng.create 3L in
  for _ = 1 to 10_000 do
    let v = Rng.int r 17 in
    Alcotest.(check bool) "in [0,17)" true (v >= 0 && v < 17)
  done

let test_rng_float_bounds () =
  let r = Rng.create 4L in
  for _ = 1 to 10_000 do
    let v = Rng.float r in
    Alcotest.(check bool) "in [0,1)" true (v >= 0.0 && v < 1.0)
  done

let test_rng_uniformity () =
  (* coarse chi-square-ish check: each of 10 buckets within 30% of mean *)
  let r = Rng.create 99L in
  let buckets = Array.make 10 0 in
  let n = 100_000 in
  for _ = 1 to n do
    let b = Rng.int r 10 in
    buckets.(b) <- buckets.(b) + 1
  done;
  Array.iter
    (fun c ->
      Alcotest.(check bool) "bucket near uniform" true
        (float_of_int c > 0.7 *. float_of_int (n / 10)
        && float_of_int c < 1.3 *. float_of_int (n / 10)))
    buckets

let test_rng_exponential_mean () =
  let r = Rng.create 11L in
  let n = 50_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Rng.exponential r ~mean:2.0
  done;
  let mean = !sum /. float_of_int n in
  Alcotest.(check bool) "mean near 2.0" true (mean > 1.9 && mean < 2.1)

let test_rng_gaussian_moments () =
  let r = Rng.create 12L in
  let n = 50_000 in
  let xs = List.init n (fun _ -> Rng.gaussian r ~mu:5.0 ~sigma:3.0) in
  let mean = Stats.mean xs in
  let sd = Stats.stddev xs in
  Alcotest.(check bool) "mean near 5" true (Float.abs (mean -. 5.0) < 0.1);
  Alcotest.(check bool) "sd near 3" true (Float.abs (sd -. 3.0) < 0.1)

let test_rng_shuffle_permutes () =
  let r = Rng.create 5L in
  let arr = Array.init 50 Fun.id in
  Rng.shuffle r arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  check Alcotest.(array int) "same multiset" (Array.init 50 Fun.id) sorted

let test_rng_bytes_len () =
  let r = Rng.create 6L in
  check Alcotest.int "length" 33 (String.length (Rng.bytes r 33))

(* --- heap --- *)

let test_heap_sorts =
  qtest "heap pops in sorted order"
    QCheck2.Gen.(list int)
    (fun l ->
      let h = Heap.create ~cmp:compare in
      List.iter (Heap.push h) l;
      let rec drain acc =
        match Heap.pop h with None -> List.rev acc | Some x -> drain (x :: acc)
      in
      drain [] = List.sort compare l)

let test_heap_peek () =
  let h = Heap.create ~cmp:compare in
  Alcotest.(check (option int)) "empty peek" None (Heap.peek h);
  Heap.push h 5;
  Heap.push h 2;
  Heap.push h 9;
  Alcotest.(check (option int)) "peek min" (Some 2) (Heap.peek h);
  Alcotest.(check int) "length unchanged by peek" 3 (Heap.length h)

let test_heap_interleaved () =
  let h = Heap.create ~cmp:compare in
  Heap.push h 3;
  Heap.push h 1;
  Alcotest.(check (option int)) "pop 1" (Some 1) (Heap.pop h);
  Heap.push h 0;
  Heap.push h 2;
  Alcotest.(check (option int)) "pop 0" (Some 0) (Heap.pop h);
  Alcotest.(check (option int)) "pop 2" (Some 2) (Heap.pop h);
  Alcotest.(check (option int)) "pop 3" (Some 3) (Heap.pop h);
  Alcotest.(check (option int)) "empty" None (Heap.pop h)

let test_heap_clear () =
  let h = Heap.create ~cmp:compare in
  List.iter (Heap.push h) [ 4; 2; 7 ];
  Heap.clear h;
  Alcotest.(check bool) "empty after clear" true (Heap.is_empty h)

(* --- sha256 (FIPS 180-4 / RFC 4231 vectors) --- *)

let test_sha256_vectors () =
  let cases =
    [
      ("", "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
      ("abc", "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
      ( "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
        "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1" );
      ( String.make 1_000_000 'a',
        "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0" );
    ]
  in
  List.iter
    (fun (msg, want) -> check Alcotest.string "digest" want (Sha256.hex_digest msg))
    cases

let test_sha256_block_boundaries () =
  (* lengths around the 55/56/64-byte padding boundaries must not crash and
     must stay distinct *)
  let digests =
    List.map (fun n -> Sha256.hex_digest (String.make n 'x')) [ 54; 55; 56; 57; 63; 64; 65; 127; 128 ]
  in
  let uniq = List.sort_uniq compare digests in
  check Alcotest.int "all distinct" (List.length digests) (List.length uniq)

let test_hmac_vectors () =
  (* RFC 4231 test case 1 and 2 *)
  let key1 = String.make 20 '\x0b' in
  check Alcotest.string "rfc4231 tc1"
    "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
    (Sha256.hmac_hex ~key:key1 "Hi There");
  check Alcotest.string "rfc4231 tc2"
    "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
    (Sha256.hmac_hex ~key:"Jefe" "what do ya want for nothing?")

let test_hmac_long_key () =
  (* keys longer than the block size are hashed first; just check stability
     and key sensitivity *)
  let long_key = String.make 100 'k' in
  let a = Sha256.hmac_hex ~key:long_key "msg" in
  let b = Sha256.hmac_hex ~key:(long_key ^ "x") "msg" in
  Alcotest.(check bool) "key sensitive" true (a <> b)

(* --- hex --- *)

let test_hex_roundtrip =
  qtest "hex roundtrips all bytes"
    QCheck2.Gen.(string_size ~gen:(char_range '\x00' '\xff') (0 -- 64))
    (fun s -> Hexutil.decode (Hexutil.encode s) = s)

let test_hex_known () =
  check Alcotest.string "encode" "00ff10" (Hexutil.encode "\x00\xff\x10");
  check Alcotest.string "decode upper" "\xab" (Hexutil.decode "AB")

let test_hex_invalid () =
  Alcotest.check_raises "odd length" (Invalid_argument "Hexutil.decode: odd length") (fun () ->
      ignore (Hexutil.decode "abc"));
  Alcotest.(check bool) "is_hex rejects" false (Hexutil.is_hex "zz");
  Alcotest.(check bool) "is_hex accepts" true (Hexutil.is_hex "00ffAB")

(* --- lru --- *)

let test_lru_basic () =
  let c = Lru.create ~budget:3 () in
  Alcotest.(check bool) "add a" true (Lru.add c "a" 1);
  Alcotest.(check bool) "add b" true (Lru.add c "b" 2);
  Alcotest.(check (option int)) "find a" (Some 1) (Lru.find_opt c "a");
  Alcotest.(check (option int)) "find missing" None (Lru.find_opt c "z");
  Alcotest.(check int) "length" 2 (Lru.length c);
  Alcotest.(check bool) "mem" true (Lru.mem c "b");
  Lru.remove c "b";
  Alcotest.(check bool) "removed" false (Lru.mem c "b");
  Alcotest.(check int) "no evictions yet" 0 (Lru.evictions c)

let test_lru_evicts_least_recent () =
  let evicted = ref [] in
  let c = Lru.create ~on_evict:(fun k _ -> evicted := k :: !evicted) ~budget:3 () in
  List.iter (fun k -> ignore (Lru.add c k 0)) [ "a"; "b"; "c" ];
  (* touch "a" so "b" becomes the LRU entry *)
  ignore (Lru.find_opt c "a");
  ignore (Lru.add c "d" 0);
  Alcotest.(check (list string)) "b evicted first" [ "b" ] !evicted;
  Alcotest.(check bool) "a survived (refreshed)" true (Lru.mem c "a");
  ignore (Lru.add c "e" 0);
  Alcotest.(check (list string)) "then c" [ "c"; "b" ] !evicted;
  Alcotest.(check int) "eviction counter" 2 (Lru.evictions c);
  Alcotest.(check (list string)) "recency order" [ "e"; "d"; "a" ] (Lru.keys c)

let test_lru_replace_refreshes () =
  let c = Lru.create ~budget:2 () in
  ignore (Lru.add c "a" 1);
  ignore (Lru.add c "b" 2);
  (* re-adding "a" refreshes it, so the next eviction takes "b" *)
  ignore (Lru.add c "a" 10);
  ignore (Lru.add c "c" 3);
  Alcotest.(check (option int)) "replaced value" (Some 10) (Lru.find_opt c "a");
  Alcotest.(check bool) "b evicted" false (Lru.mem c "b");
  Alcotest.(check int) "length stays bounded" 2 (Lru.length c)

let test_lru_weighted () =
  let c = Lru.create ~weight:String.length ~budget:10 () in
  Alcotest.(check bool) "add small" true (Lru.add c 1 "aaaa");
  Alcotest.(check bool) "add small" true (Lru.add c 2 "bbbb");
  Alcotest.(check int) "used weight" 8 (Lru.used c);
  (* 5 more bytes forces key 1 (LRU) out: 4 + 5 <= 10 *)
  Alcotest.(check bool) "add evicting" true (Lru.add c 3 "ccccc");
  Alcotest.(check bool) "lru entry gone" false (Lru.mem c 1);
  Alcotest.(check int) "used after eviction" 9 (Lru.used c);
  (* a value that alone exceeds the budget is refused, cache untouched *)
  Alcotest.(check bool) "oversized refused" false (Lru.add c 4 (String.make 11 'x'));
  Alcotest.(check bool) "cache intact" true (Lru.mem c 3);
  Alcotest.(check int) "budget" 10 (Lru.budget c)

let test_lru_clear_keeps_eviction_count () =
  let c = Lru.create ~budget:1 () in
  ignore (Lru.add c "a" 0);
  ignore (Lru.add c "b" 0);
  Alcotest.(check int) "one eviction" 1 (Lru.evictions c);
  Lru.clear c;
  Alcotest.(check int) "empty" 0 (Lru.length c);
  Alcotest.(check int) "used resets" 0 (Lru.used c);
  Alcotest.(check int) "counter survives clear" 1 (Lru.evictions c);
  ignore (Lru.add c "c" 7);
  Alcotest.(check (option int)) "usable after clear" (Some 7) (Lru.find_opt c "c")

let test_lru_fold_order () =
  let c = Lru.create ~budget:4 () in
  List.iter (fun k -> ignore (Lru.add c k (Char.code k.[0]))) [ "a"; "b"; "c" ];
  ignore (Lru.find_opt c "b");
  let keys = Lru.fold (fun k _ acc -> k :: acc) c [] in
  (* fold runs most-recent-first, so the accumulated list is LRU-first *)
  Alcotest.(check (list string)) "fold order" [ "a"; "c"; "b" ] keys

let test_lru_model =
  (* model check against an association-list reference with the same
     refresh-on-hit, evict-LRU-on-overflow policy *)
  qtest ~count:200 "matches a reference LRU model"
    QCheck2.Gen.(list_size (0 -- 120) (pair (int_range 0 9) bool))
    (fun ops ->
      let budget = 4 in
      let c = Lru.create ~budget () in
      (* model: (key, value) list, most recent first *)
      let model = ref [] in
      List.for_all
        (fun (k, is_add) ->
          if is_add then begin
            ignore (Lru.add c k k);
            model := (k, k) :: List.remove_assoc k !model;
            if List.length !model > budget then
              model := List.filteri (fun i _ -> i < budget) !model
          end
          else begin
            (match List.assoc_opt k !model with
            | Some v -> model := (k, v) :: List.remove_assoc k !model
            | None -> ());
            ignore (Lru.find_opt c k)
          end;
          Lru.keys c = List.map fst !model)
        ops)

(* --- stats --- *)

let test_stats_basic () =
  check (Alcotest.float 1e-9) "mean" 2.5 (Stats.mean [ 1.0; 2.0; 3.0; 4.0 ]);
  check (Alcotest.float 1e-9) "empty mean" 0.0 (Stats.mean []);
  check (Alcotest.float 1e-9) "stddev" (sqrt 1.25) (Stats.stddev [ 1.0; 2.0; 3.0; 4.0 ]);
  check (Alcotest.float 1e-9) "p50" 2.0 (Stats.percentile 50.0 [ 3.0; 1.0; 2.0; 4.0 ]);
  check (Alcotest.float 1e-9) "p100" 4.0 (Stats.percentile 100.0 [ 3.0; 1.0; 2.0; 4.0 ])

let test_stats_acc_matches_batch =
  qtest "welford matches batch stats"
    QCheck2.Gen.(list_size (2 -- 50) (float_bound_inclusive 1000.0))
    (fun xs ->
      let acc = Stats.acc_create () in
      List.iter (Stats.acc_add acc) xs;
      Float.abs (Stats.acc_mean acc -. Stats.mean xs) < 1e-6
      && Float.abs (Stats.acc_stddev acc -. Stats.stddev xs) < 1e-6)

(* --- pool --- *)

module Pool = Tacoma_util.Pool

let test_pool_serial_inline () =
  (* jobs = 1 is the serial path: submit runs the thunk immediately, in
     submission order, on the calling domain. *)
  let order = ref [] in
  Pool.with_pool ~jobs:1 (fun p ->
      let fa = Pool.submit p (fun () -> order := "a" :: !order; 1) in
      let fb = Pool.submit p (fun () -> order := "b" :: !order; 2) in
      check Alcotest.(list string) "ran inline at submit" [ "a"; "b" ]
        (List.rev !order);
      check Alcotest.int "first result" 1 (Pool.await fa);
      check Alcotest.int "second result" 2 (Pool.await fb))

let test_pool_map_matches_list_map () =
  let xs = List.init 40 Fun.id in
  let f x = (x * x) + 3 in
  List.iter
    (fun jobs ->
      let got = Pool.with_pool ~jobs (fun p -> Pool.map p f xs) in
      check Alcotest.(list int)
        (Printf.sprintf "jobs=%d matches List.map" jobs)
        (List.map f xs) got)
    [ 1; 2; 4; 0 ]

let test_pool_order_beats_completion_order () =
  (* Force the first-submitted task to finish last: it spins until the
     second task (on the other worker) has run.  map must still return
     results in submission order. *)
  let second_done = Atomic.make false in
  let results =
    Pool.with_pool ~jobs:2 (fun p ->
        Pool.map p
          (fun i ->
            if i = 0 then (
              while not (Atomic.get second_done) do
                Domain.cpu_relax ()
              done;
              "slow")
            else (
              Atomic.set second_done true;
              "fast"))
          [ 0; 1 ])
  in
  check Alcotest.(list string) "submission order, not completion order"
    [ "slow"; "fast" ] results

exception Boom of int

let test_pool_exception_propagates () =
  Pool.with_pool ~jobs:2 (fun p ->
      let ok = Pool.submit p (fun () -> 41) in
      let bad = Pool.submit p (fun () -> raise (Boom 7)) in
      check Alcotest.int "healthy task unaffected" 41 (Pool.await ok);
      (match Pool.await bad with
      | _ -> Alcotest.fail "expected Boom"
      | exception Boom 7 -> ());
      (* a failed await leaves the pool usable, and re-awaiting re-raises *)
      (match Pool.await bad with
      | _ -> Alcotest.fail "expected Boom again"
      | exception Boom 7 -> ());
      check Alcotest.int "pool still serves tasks" 9
        (Pool.await (Pool.submit p (fun () -> 9))))

let test_pool_reuse_across_submissions () =
  Pool.with_pool ~jobs:3 (fun p ->
      let a = Pool.map p (fun x -> x + 1) [ 1; 2; 3 ] in
      let b = Pool.map p string_of_int a in
      check Alcotest.(list string) "second batch on same pool"
        [ "2"; "3"; "4" ] b)

let test_pool_create_validation () =
  (match Pool.create ~jobs:(-1) () with
  | _ -> Alcotest.fail "negative jobs should be rejected"
  | exception Invalid_argument _ -> ());
  let p = Pool.create ~jobs:0 () in
  Alcotest.(check bool) "jobs=0 resolves to >= 1" true (Pool.jobs p >= 1);
  Pool.shutdown p;
  Pool.shutdown p;
  match Pool.submit p (fun () -> ()) with
  | _ -> Alcotest.fail "submit after shutdown should be rejected"
  | exception Invalid_argument _ -> ()

let () =
  Alcotest.run "util"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "split independent" `Quick test_rng_split_independent;
          Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
          Alcotest.test_case "float bounds" `Quick test_rng_float_bounds;
          Alcotest.test_case "uniformity" `Slow test_rng_uniformity;
          Alcotest.test_case "exponential mean" `Slow test_rng_exponential_mean;
          Alcotest.test_case "gaussian moments" `Slow test_rng_gaussian_moments;
          Alcotest.test_case "shuffle permutes" `Quick test_rng_shuffle_permutes;
          Alcotest.test_case "bytes length" `Quick test_rng_bytes_len;
        ] );
      ( "heap",
        [
          test_heap_sorts;
          Alcotest.test_case "peek" `Quick test_heap_peek;
          Alcotest.test_case "interleaved" `Quick test_heap_interleaved;
          Alcotest.test_case "clear" `Quick test_heap_clear;
        ] );
      ( "sha256",
        [
          Alcotest.test_case "fips vectors" `Quick test_sha256_vectors;
          Alcotest.test_case "block boundaries" `Quick test_sha256_block_boundaries;
          Alcotest.test_case "hmac rfc4231" `Quick test_hmac_vectors;
          Alcotest.test_case "hmac long key" `Quick test_hmac_long_key;
        ] );
      ( "hex",
        [
          test_hex_roundtrip;
          Alcotest.test_case "known values" `Quick test_hex_known;
          Alcotest.test_case "invalid input" `Quick test_hex_invalid;
        ] );
      ( "lru",
        [
          Alcotest.test_case "basic" `Quick test_lru_basic;
          Alcotest.test_case "evicts least recent" `Quick test_lru_evicts_least_recent;
          Alcotest.test_case "replace refreshes" `Quick test_lru_replace_refreshes;
          Alcotest.test_case "weighted budget" `Quick test_lru_weighted;
          Alcotest.test_case "clear keeps counter" `Quick test_lru_clear_keeps_eviction_count;
          Alcotest.test_case "fold order" `Quick test_lru_fold_order;
          test_lru_model;
        ] );
      ( "stats",
        [
          Alcotest.test_case "basic" `Quick test_stats_basic;
          test_stats_acc_matches_batch;
        ] );
      ( "pool",
        [
          Alcotest.test_case "serial inline" `Quick test_pool_serial_inline;
          Alcotest.test_case "map matches List.map" `Quick test_pool_map_matches_list_map;
          Alcotest.test_case "submission order wins" `Quick
            test_pool_order_beats_completion_order;
          Alcotest.test_case "exception propagation" `Quick test_pool_exception_propagates;
          Alcotest.test_case "pool reuse" `Quick test_pool_reuse_across_submissions;
          Alcotest.test_case "create validation" `Quick test_pool_create_validation;
        ] );
    ]

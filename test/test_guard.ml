(* Tests for rear-guard fault tolerance (paper §5): journeys complete
   without failures, guards relaunch through crashes, guards terminate when
   released, cycles and fan-out work, and the unguarded baseline loses its
   computation. *)

module Escort = Guard.Escort
module Kernel = Tacoma_core.Kernel
module Briefcase = Tacoma_core.Briefcase
module Folder = Tacoma_core.Folder
module Net = Netsim.Net
module Topology = Netsim.Topology
module Fault = Netsim.Fault
module Chaos = Netsim.Chaos

let check = Alcotest.check

let mk ?(n = 5) () =
  let net = Net.create (Topology.full_mesh n) in
  let k = Kernel.create net in
  (net, k)

let trail_work visits ctx ~hop bc =
  ignore bc;
  visits := (hop, ctx.Kernel.site) :: !visits

let fast_config =
  {
    Escort.ack_timeout = 1.0;
    retry_period = 1.0;
    max_relaunch = 10;
    transport = Kernel.Tcp;
    durable = false;
  }

let test_journey_completes_without_failures () =
  let net, k = mk () in
  let visits = ref [] in
  let final_bc = ref None in
  let j =
    Escort.guarded_journey k ~config:fast_config ~id:"j1" ~itinerary:[ 0; 1; 2; 3 ]
      ~work:(fun ctx ~hop bc ->
        trail_work visits ctx ~hop bc;
        Folder.enqueue (Briefcase.folder bc "TRAIL") (string_of_int ctx.Kernel.site))
      ~on_complete:(fun bc -> final_bc := Some (Briefcase.copy bc))
      (Briefcase.create ())
  in
  Net.run ~until:60.0 net;
  let s = Escort.stats j in
  Alcotest.(check bool) "completed" true s.Escort.completed;
  check Alcotest.int "no relaunches needed" 0 s.Escort.relaunches;
  check Alcotest.(list (pair int int)) "hops in order"
    [ (0, 0); (1, 1); (2, 2); (3, 3) ]
    (List.rev !visits);
  match !final_bc with
  | Some bc ->
    check Alcotest.(list string) "briefcase accumulated state" [ "0"; "1"; "2"; "3" ]
      (Folder.to_list (Briefcase.folder bc "TRAIL"))
  | None -> Alcotest.fail "no completion briefcase"

let test_guard_relaunches_after_crash () =
  let net, k = mk () in
  let visits = ref [] in
  (* site 2 is down when the agent tries to hop there; it restarts later and
     the rear guard at site 1 relaunches the agent *)
  Fault.crash_for net ~site:2 ~at:0.0 ~downtime:6.0;
  let j =
    Escort.guarded_journey k ~config:fast_config ~id:"j2" ~itinerary:[ 0; 1; 2; 3 ]
      ~work:(trail_work visits) (Briefcase.create ())
  in
  Net.run ~until:120.0 net;
  let s = Escort.stats j in
  Alcotest.(check bool) "completed despite crash" true s.Escort.completed;
  Alcotest.(check bool) "guard relaunched" true (s.Escort.relaunches > 0);
  (* hop 2 ran exactly once in the end (seen-record suppressed duplicates) *)
  check Alcotest.int "hop 2 executed once" 1
    (List.length (List.filter (fun (h, _) -> h = 2) !visits))

let test_crash_during_work_recovers () =
  let net, k = mk () in
  let attempts = ref 0 in
  (* work at site 2 takes 5 s; the site crashes 1 s into the first attempt *)
  Fault.crash_for net ~site:2 ~at:3.0 ~downtime:4.0;
  let j =
    Escort.guarded_journey k
      ~config:{ fast_config with ack_timeout = 8.0 }
      ~id:"j3" ~itinerary:[ 0; 1; 2 ]
      ~work:(fun ctx ~hop _ ->
        if hop = 2 then begin
          incr attempts;
          Kernel.sleep ctx 5.0
        end)
      (Briefcase.create ())
  in
  Net.run ~until:200.0 net;
  let s = Escort.stats j in
  Alcotest.(check bool) "completed" true s.Escort.completed;
  Alcotest.(check bool) "work re-attempted" true (!attempts >= 2)

let test_unguarded_journey_lost_on_crash () =
  let net, k = mk () in
  Fault.crash_for net ~site:2 ~at:0.0 ~downtime:6.0;
  let j =
    Escort.unguarded_journey k ~id:"u1" ~itinerary:[ 0; 1; 2; 3 ]
      ~work:(fun _ ~hop:_ _ -> ())
      (Briefcase.create ())
  in
  Net.run ~until:120.0 net;
  let s = Escort.stats j in
  Alcotest.(check bool) "lost" false s.Escort.completed;
  check Alcotest.int "stopped at hop 1" 1 s.Escort.hops_done

let test_unguarded_journey_completes_without_failures () =
  let net, k = mk () in
  let j =
    Escort.unguarded_journey k ~id:"u2" ~itinerary:[ 0; 1; 2 ]
      ~work:(fun _ ~hop:_ _ -> ())
      (Briefcase.create ())
  in
  Net.run ~until:60.0 net;
  Alcotest.(check bool) "completed" true (Escort.stats j).Escort.completed

let test_cyclic_itinerary () =
  let net, k = mk ~n:3 () in
  let visits = ref [] in
  let j =
    Escort.guarded_journey k ~config:fast_config ~id:"cyc"
      ~itinerary:[ 0; 1; 2; 0; 1; 2 ] (* two full laps *)
      ~work:(trail_work visits) (Briefcase.create ())
  in
  Net.run ~until:120.0 net;
  Alcotest.(check bool) "cycle completed" true (Escort.stats j).Escort.completed;
  check Alcotest.int "six stops" 6 (List.length !visits);
  check Alcotest.(list int) "revisits allowed" [ 0; 1; 2; 0; 1; 2 ]
    (List.map snd (List.rev !visits))

let test_cycle_with_crash () =
  let net, k = mk ~n:3 () in
  Fault.crash_for net ~site:1 ~at:0.05 ~downtime:5.0;
  let j =
    Escort.guarded_journey k ~config:fast_config ~id:"cyc2" ~itinerary:[ 0; 1; 0; 1 ]
      ~work:(fun _ ~hop:_ _ -> ())
      (Briefcase.create ())
  in
  Net.run ~until:200.0 net;
  Alcotest.(check bool) "completed" true (Escort.stats j).Escort.completed

let test_fanout_all_branches () =
  let net, k = mk ~n:7 () in
  let all_done = ref false in
  let branches = [ [ 0; 1; 2 ]; [ 0; 3; 4 ]; [ 0; 5; 6 ] ] in
  let js =
    Escort.fanout k ~config:fast_config ~id:"fan" ~branches
      ~work:(fun _ ~hop:_ _ -> ())
      ~on_all_complete:(fun () -> all_done := true)
      (Briefcase.create ())
  in
  Net.run ~until:120.0 net;
  Alcotest.(check bool) "all branches complete" true !all_done;
  List.iter
    (fun j -> Alcotest.(check bool) "branch done" true (Escort.stats j).Escort.completed)
    js

let test_fanout_with_crash_still_completes () =
  let net, k = mk ~n:7 () in
  let all_done = ref false in
  Fault.crash_for net ~site:3 ~at:0.0 ~downtime:5.0;
  ignore
    (Escort.fanout k ~config:fast_config ~id:"fan2"
       ~branches:[ [ 0; 1; 2 ]; [ 0; 3; 4 ] ]
       ~work:(fun _ ~hop:_ _ -> ())
       ~on_all_complete:(fun () -> all_done := true)
       (Briefcase.create ()));
  Net.run ~until:200.0 net;
  Alcotest.(check bool) "fan-out survived branch crash" true !all_done

let test_guard_gives_up_after_max_relaunch () =
  let net, k = mk () in
  (* site 2 never comes back *)
  Fault.crash_at net ~site:2 ~at:0.0;
  let j =
    Escort.guarded_journey k
      ~config:{ fast_config with max_relaunch = 3 }
      ~id:"dead" ~itinerary:[ 0; 1; 2 ]
      ~work:(fun _ ~hop:_ _ -> ())
      (Briefcase.create ())
  in
  Net.run ~until:300.0 net;
  let s = Escort.stats j in
  Alcotest.(check bool) "not completed" false s.Escort.completed;
  check Alcotest.int "bounded relaunches" 3 s.Escort.relaunches

(* double failure: the guard's site AND the agent's site crash together.
   Plain guards die with their site; durable guards are resurrected from the
   flushed cabinet checkpoint when the site restarts. *)
let double_failure_run ~durable =
  let net, k = mk () in
  (* agent works at site 2 for 5s starting ~0s; crash the worker at t=2 and
     the guard's site (1) at t=2.5, both restart *)
  Fault.crash_for net ~site:2 ~at:2.0 ~downtime:4.0;
  Fault.crash_for net ~site:1 ~at:2.5 ~downtime:4.0;
  let j =
    Escort.guarded_journey k
      ~config:{ fast_config with ack_timeout = 8.0; durable }
      ~id:(Printf.sprintf "dbl-%b" durable)
      ~itinerary:[ 0; 1; 2 ]
      ~work:(fun ctx ~hop _ -> if hop = 2 then Kernel.sleep ctx 5.0)
      (Briefcase.create ())
  in
  Net.run ~until:300.0 net;
  Escort.stats j

let test_double_failure_loses_plain_guard () =
  let s = double_failure_run ~durable:false in
  Alcotest.(check bool) "plain guard lost with its site" false s.Escort.completed

let test_double_failure_survived_by_durable_guard () =
  let s = double_failure_run ~durable:true in
  Alcotest.(check bool) "durable guard resurrected and relaunched" true s.Escort.completed;
  Alcotest.(check bool) "via relaunch" true (s.Escort.relaunches > 0)

let test_durable_checkpoint_removed_on_release () =
  let net, k = mk () in
  let j =
    Escort.guarded_journey k
      ~config:{ fast_config with durable = true }
      ~id:"ckpt" ~itinerary:[ 0; 1; 2 ]
      ~work:(fun _ ~hop:_ _ -> ())
      (Briefcase.create ())
  in
  Net.run ~until:60.0 net;
  Alcotest.(check bool) "completed" true (Escort.stats j).Escort.completed;
  (* all checkpoints must be released: a later restart resurrects nothing *)
  List.iter
    (fun site ->
      check Alcotest.(list (pair string string)) "no leftover checkpoints" []
        (Tacoma_core.Cabinet.kv_bindings (Kernel.cabinet k site) "ESCORT-CKPT"))
    [ 0; 1 ];
  Fault.crash_for net ~site:1 ~at:70.0 ~downtime:1.0;
  Net.run ~until:100.0 net;
  check Alcotest.int "no ghost relaunches after restart" 0 (Escort.stats j).Escort.relaunches

let test_journey_straddles_healed_partition () =
  (* line 0-1-2-3: cutting (1,2) bisects the net exactly when the agent
     tries to hop across; migrations drop with the distinct "partition"
     reason and the rear guard retries until the cut heals *)
  let net = Net.create ~seed:11L (Topology.line 4) in
  let k = Kernel.create net in
  Chaos.apply net [ Chaos.Cut { links = [ (1, 2) ]; at = 3.5; duration = 8.0; label = "mid" } ];
  let j =
    Escort.guarded_journey k ~config:fast_config ~id:"straddle" ~itinerary:[ 0; 1; 2; 3 ]
      ~work:(fun ctx ~hop:_ _ -> Kernel.sleep ctx 2.0)
      (Briefcase.create ())
  in
  Net.run ~until:120.0 net;
  let s = Escort.stats j in
  Alcotest.(check bool) "completed across the healed partition" true s.Escort.completed;
  Alcotest.(check bool) "guard retried through the cut" true (s.Escort.relaunches >= 1);
  Alcotest.(check bool) "drops carry the partition reason" true
    (Obs.Metrics.counter (Net.metrics net) ~labels:[ ("reason", "partition") ] "net.drops"
    >= 1);
  check Alcotest.int "no duplicate completions" 0 s.Escort.duplicate_completions

let test_partition_delayed_release_resent () =
  (* hop 1's release is dropped by a short partition between site 1 and its
     guard at site 0; once the cut heals, the guard's relaunch reaches site 1,
     finds the flushed done-record and re-sends the release instead of
     re-running the finished hop — so the hop still executes exactly once *)
  let net = Net.create ~seed:12L (Topology.line 3) in
  let k = Kernel.create net in
  Chaos.apply net [ Chaos.Cut { links = [ (0, 1) ]; at = 0.9; duration = 1.2; label = "rel" } ];
  let completions = ref 0 in
  let hop1_runs = ref 0 in
  let j =
    Escort.guarded_journey k ~config:fast_config ~id:"resend" ~itinerary:[ 0; 1; 2 ]
      ~work:(fun ctx ~hop _ ->
        if hop = 1 then begin
          incr hop1_runs;
          Kernel.sleep ctx 1.0
        end;
        if hop = 2 then Kernel.sleep ctx 10.0)
      ~on_complete:(fun _ -> incr completions)
      (Briefcase.create ())
  in
  Net.run ~until:120.0 net;
  let s = Escort.stats j in
  Alcotest.(check bool) "completed" true s.Escort.completed;
  check Alcotest.int "on_complete exactly once" 1 !completions;
  check Alcotest.int "hop 1 executed once despite the relaunch" 1 !hop1_runs;
  check Alcotest.int "no duplicate completions" 0 s.Escort.duplicate_completions;
  Alcotest.(check bool) "guard relaunched while the release was lost" true
    (s.Escort.relaunches >= 1);
  Alcotest.(check bool) "release re-sent from the done-record" true
    (Obs.Metrics.counter (Kernel.metrics k) "guard.releases_resent" >= 1)

let test_duplicate_id_rejected () =
  let _, k = mk () in
  let work _ ~hop:_ _ = () in
  ignore
    (Escort.guarded_journey k ~config:fast_config ~id:"dup" ~itinerary:[ 0; 1 ] ~work
       (Briefcase.create ()));
  Alcotest.check_raises "duplicate id"
    (Invalid_argument "Escort.guarded_journey: duplicate journey id") (fun () ->
      ignore
        (Escort.guarded_journey k ~config:fast_config ~id:"dup" ~itinerary:[ 0; 1 ] ~work
           (Briefcase.create ())))

let test_single_site_itinerary () =
  let net, k = mk () in
  let completed_bc = ref None in
  let j =
    Escort.guarded_journey k ~config:fast_config ~id:"one" ~itinerary:[ 2 ]
      ~work:(fun _ ~hop:_ bc -> Briefcase.set bc "X" "done")
      ~on_complete:(fun bc -> completed_bc := Some (Briefcase.copy bc))
      (Briefcase.create ())
  in
  Net.run ~until:10.0 net;
  Alcotest.(check bool) "completed" true (Escort.stats j).Escort.completed;
  check Alcotest.int "no guards for single stop" 0 (Escort.stats j).Escort.guards_installed;
  match !completed_bc with
  | Some bc -> check Alcotest.(option string) "work ran" (Some "done") (Briefcase.find_opt bc "X")
  | None -> Alcotest.fail "no completion"

let () =
  Alcotest.run "guard"
    [
      ( "journeys",
        [
          Alcotest.test_case "completes cleanly" `Quick test_journey_completes_without_failures;
          Alcotest.test_case "single site" `Quick test_single_site_itinerary;
          Alcotest.test_case "duplicate id" `Quick test_duplicate_id_rejected;
          Alcotest.test_case "unguarded completes" `Quick
            test_unguarded_journey_completes_without_failures;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "relaunch after crash" `Quick test_guard_relaunches_after_crash;
          Alcotest.test_case "crash during work" `Quick test_crash_during_work_recovers;
          Alcotest.test_case "unguarded lost" `Quick test_unguarded_journey_lost_on_crash;
          Alcotest.test_case "gives up eventually" `Quick test_guard_gives_up_after_max_relaunch;
        ] );
      ( "hard-cases",
        [
          Alcotest.test_case "cyclic itinerary" `Quick test_cyclic_itinerary;
          Alcotest.test_case "cycle with crash" `Quick test_cycle_with_crash;
          Alcotest.test_case "fan-out" `Quick test_fanout_all_branches;
          Alcotest.test_case "fan-out with crash" `Quick test_fanout_with_crash_still_completes;
        ] );
      ( "partitions",
        [
          Alcotest.test_case "journey straddles healed partition" `Quick
            test_journey_straddles_healed_partition;
          Alcotest.test_case "partition-delayed release re-sent" `Quick
            test_partition_delayed_release_resent;
        ] );
      ( "durable-guards",
        [
          Alcotest.test_case "double failure kills plain guard" `Quick
            test_double_failure_loses_plain_guard;
          Alcotest.test_case "durable guard survives double failure" `Quick
            test_double_failure_survived_by_durable_guard;
          Alcotest.test_case "checkpoints cleaned on release" `Quick
            test_durable_checkpoint_removed_on_release;
        ] );
    ]

(* Tests for electronic cash (paper §3): mint, wallets, the validation
   agent's retire-and-reissue semantics, and the witnessed-audit protocol. *)

module Ecu = Cash.Ecu
module Mint = Cash.Mint
module Wallet = Cash.Wallet
module Validator = Cash.Validator
module Audit = Cash.Audit
module Kernel = Tacoma_core.Kernel
module Briefcase = Tacoma_core.Briefcase
module Folder = Tacoma_core.Folder
module Net = Netsim.Net
module Topology = Netsim.Topology

let check = Alcotest.check

let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let mint () = Mint.create ~secret:"the-mint-secret" ()

(* --- ecu --- *)

let test_ecu_wire_roundtrip () =
  let m = mint () in
  let e = Mint.issue m ~amount:250 in
  check Alcotest.(option string) "roundtrip" (Some (Ecu.wire e))
    (Result.to_option (Result.map Ecu.wire (Ecu.of_wire (Ecu.wire e))))

let test_ecu_malformed () =
  List.iter
    (fun w -> Alcotest.(check bool) w true (Result.is_error (Ecu.of_wire w)))
    [ ""; "abc"; "10:zz:aa"; "-5:00:00"; "0:00:00"; "10:0011"; "x:00:11:22" ]

(* --- mint --- *)

let test_issue_and_validate () =
  let m = mint () in
  let e = Mint.issue m ~amount:100 in
  Alcotest.(check bool) "signature valid" true (Mint.signature_valid m e);
  Alcotest.(check bool) "live" true (Mint.live m e);
  match Mint.validate_and_reissue m e with
  | Ok fresh ->
    check Alcotest.int "amount preserved" 100 fresh.Ecu.amount;
    Alcotest.(check bool) "new serial" true (fresh.Ecu.serial <> e.Ecu.serial);
    Alcotest.(check bool) "old bill retired" false (Mint.live m e);
    Alcotest.(check bool) "fresh bill live" true (Mint.live m fresh)
  | Error _ -> Alcotest.fail "validation of genuine bill failed"

let test_double_spend_detected () =
  let m = mint () in
  let e = Mint.issue m ~amount:100 in
  let copy = e in
  (match Mint.validate_and_reissue m e with Ok _ -> () | Error _ -> Alcotest.fail "first spend");
  match Mint.validate_and_reissue m copy with
  | Error Mint.Double_spent -> ()
  | Ok _ -> Alcotest.fail "copy accepted!"
  | Error Mint.Forged -> Alcotest.fail "wrong failure"

let test_forgery_detected () =
  let m = mint () in
  let e = Mint.issue m ~amount:100 in
  let forged = { e with Ecu.amount = 10_000 } in
  (match Mint.validate_and_reissue m forged with
  | Error Mint.Forged -> ()
  | Ok _ | Error Mint.Double_spent -> Alcotest.fail "forged amount accepted");
  (* home-made bill without the mint key *)
  let fake =
    { Ecu.amount = 500; serial = String.make 32 'a'; signature = String.make 64 'b' }
  in
  match Mint.validate_and_reissue m fake with
  | Error Mint.Forged -> ()
  | Ok _ | Error Mint.Double_spent -> Alcotest.fail "fake bill accepted"

let test_outstanding_conserved () =
  let m = mint () in
  let bills = List.init 10 (fun i -> Mint.issue m ~amount:((i + 1) * 10)) in
  let before = Mint.outstanding m in
  check Alcotest.int "sum issued" 550 before;
  List.iter
    (fun e ->
      match Mint.validate_and_reissue m e with
      | Ok _ -> ()
      | Error _ -> Alcotest.fail "reissue failed")
    bills;
  check Alcotest.int "reissue conserves value" before (Mint.outstanding m)

let test_split_and_merge () =
  let m = mint () in
  let e = Mint.issue m ~amount:100 in
  let before = Mint.outstanding m in
  (match Mint.split m e ~parts:[ 60; 30; 10 ] with
  | Ok parts ->
    check Alcotest.int "three bills" 3 (List.length parts);
    check Alcotest.int "value conserved" before (Mint.outstanding m);
    Alcotest.(check bool) "original retired" false (Mint.live m e);
    (match Mint.merge m parts with
    | Ok merged ->
      check Alcotest.int "merged amount" 100 merged.Ecu.amount;
      check Alcotest.int "value still conserved" before (Mint.outstanding m)
    | Error _ -> Alcotest.fail "merge failed")
  | Error _ -> Alcotest.fail "split failed");
  Alcotest.check_raises "bad parts" (Invalid_argument "Mint.split: parts must sum to the bill amount")
    (fun () -> ignore (Mint.split m (Mint.issue m ~amount:10) ~parts:[ 3; 3 ]))

let test_merge_atomic_on_bad_bill () =
  let m = mint () in
  let good = Mint.issue m ~amount:50 in
  let spent = Mint.issue m ~amount:50 in
  (match Mint.validate_and_reissue m spent with Ok _ -> () | Error _ -> assert false);
  (match Mint.merge m [ good; spent ] with
  | Error Mint.Double_spent -> ()
  | Ok _ | Error Mint.Forged -> Alcotest.fail "merge accepted a spent bill");
  Alcotest.(check bool) "good bill not retired by failed merge" true (Mint.live m good)

let test_merge_rejects_duplicates () =
  let m = mint () in
  let e = Mint.issue m ~amount:50 in
  match Mint.merge m [ e; e ] with
  | Error Mint.Double_spent -> ()
  | Ok _ | Error Mint.Forged -> Alcotest.fail "duplicate bills merged"

let test_two_mints_reject_each_other () =
  let m1 = mint () in
  let m2 = Mint.create ~secret:"another-secret" () in
  let e = Mint.issue m1 ~amount:100 in
  Alcotest.(check bool) "foreign bill invalid" false (Mint.signature_valid m2 e)

(* --- wallet --- *)

let test_wallet_exact_change =
  qtest "take_exact returns exactly the requested amount when possible"
    QCheck2.Gen.(
      pair (list_size (1 -- 8) (int_range 1 20)) (int_range 1 60))
    (fun (denoms, want) ->
      let m = mint () in
      let w = Wallet.create () in
      List.iter (fun a -> Wallet.add w (Mint.issue m ~amount:a)) denoms;
      let before = Wallet.balance w in
      match Wallet.take_exact w ~amount:want with
      | Some bills ->
        Ecu.total bills = want && Wallet.balance w = before - want
      | None ->
        (* verify no exact subset existed *)
        let rec subset_sums = function
          | [] -> [ 0 ]
          | d :: rest ->
            let s = subset_sums rest in
            s @ List.map (fun x -> x + d) s
        in
        Wallet.balance w = before && not (List.mem want (subset_sums denoms)))

let test_wallet_take_at_least () =
  let m = mint () in
  let w = Wallet.create () in
  List.iter (fun a -> Wallet.add w (Mint.issue m ~amount:a)) [ 7; 7; 7 ];
  (match Wallet.take_at_least w ~amount:10 with
  | Some bills -> Alcotest.(check bool) "covers amount" true (Ecu.total bills >= 10)
  | None -> Alcotest.fail "should cover");
  check Alcotest.(option (list int)) "insufficient funds" None
    (Option.map (List.map (fun b -> b.Ecu.amount)) (Wallet.take_at_least w ~amount:1000))

let test_wallet_folder_roundtrip () =
  let m = mint () in
  let w = Wallet.create () in
  List.iter (fun a -> Wallet.add w (Mint.issue m ~amount:a)) [ 5; 10 ];
  let f = Tacoma_core.Folder.create () in
  Wallet.to_folder w f;
  check Alcotest.int "wallet emptied" 0 (Wallet.balance w);
  let w2 = Wallet.of_folder f in
  check Alcotest.int "value moved" 15 (Wallet.balance w2);
  check Alcotest.int "folder drained" 0 (Tacoma_core.Folder.length f)

(* --- validator agent over the network --- *)

let mk_world () =
  let net = Net.create (Topology.line 3) in
  let k = Kernel.create net in
  let m = mint () in
  Validator.install k ~site:2 m;
  (net, k, m)

let test_validator_meet_protocol () =
  let net, k, m = mk_world () in
  let bill = Mint.issue m ~amount:75 in
  let bc = Briefcase.create () in
  Briefcase.set bc "OP" "validate";
  Folder.replace (Briefcase.folder bc "ECUS") [ Ecu.wire bill ];
  Kernel.launch k ~site:2 ~contact:"validator" bc;
  Net.run net;
  check Alcotest.(option string) "ok" (Some "ok") (Briefcase.find_opt bc "STATUS");
  match Folder.peek (Briefcase.folder bc "ECUS") with
  | Some w ->
    let fresh = Ecu.of_wire_exn w in
    Alcotest.(check bool) "reissued" true (fresh.Ecu.serial <> bill.Ecu.serial);
    Alcotest.(check bool) "old retired" false (Mint.live m bill)
  | None -> Alcotest.fail "no bill returned"

let test_remote_validation_roundtrip () =
  let net, k, m = mk_world () in
  let bill = Mint.issue m ~amount:30 in
  let result = ref None in
  ignore
    (Net.schedule net ~after:0.1 (fun () ->
         Validator.remote_validate k ~src:0 ~bank:2 [ bill ] ~on_reply:(fun r ->
             result := Some r)));
  Net.run ~until:10.0 net;
  match !result with
  | Some (Ok [ fresh ]) ->
    check Alcotest.int "amount" 30 fresh.Ecu.amount;
    Alcotest.(check bool) "reissued" true (fresh.Ecu.serial <> bill.Ecu.serial)
  | Some (Ok _) -> Alcotest.fail "wrong bill count"
  | Some (Error e) -> Alcotest.failf "rejected: %s" e
  | None -> Alcotest.fail "no reply"

let test_remote_validation_rejects_double_spend () =
  let net, k, m = mk_world () in
  let bill = Mint.issue m ~amount:30 in
  let r1 = ref None and r2 = ref None in
  ignore
    (Net.schedule net ~after:0.1 (fun () ->
         Validator.remote_validate k ~src:0 ~bank:2 [ bill ] ~on_reply:(fun r -> r1 := Some r)));
  ignore
    (Net.schedule net ~after:1.0 (fun () ->
         Validator.remote_validate k ~src:1 ~bank:2 [ bill ] ~on_reply:(fun r -> r2 := Some r)));
  Net.run ~until:10.0 net;
  (match !r1 with Some (Ok _) -> () | _ -> Alcotest.fail "first spend should pass");
  match !r2 with
  | Some (Error "double-spent") -> ()
  | Some (Error e) -> Alcotest.failf "wrong failure %s" e
  | Some (Ok _) -> Alcotest.fail "copy accepted"
  | None -> Alcotest.fail "no reply"

let test_validator_batch_with_duplicates_rejected () =
  let net, k, m = mk_world () in
  let bill = Mint.issue m ~amount:30 in
  let result = ref None in
  ignore
    (Net.schedule net ~after:0.1 (fun () ->
         Validator.remote_validate k ~src:0 ~bank:2 [ bill; bill ] ~on_reply:(fun r ->
             result := Some r)));
  Net.run ~until:10.0 net;
  (match !result with
  | Some (Error "double-spent") -> ()
  | _ -> Alcotest.fail "duplicate batch accepted");
  Alcotest.(check bool) "bill untouched by failed batch" true (Mint.live m bill)

(* --- fuel --- *)

module Fuel = Cash.Fuel

let fuel_world () =
  let net = Net.create (Topology.line 2) in
  let k = Kernel.create net in
  let m = mint () in
  Fuel.install k m ~steps_per_cent:100 ~courtesy:50;
  (net, k, m)

let runaway = "while {1} {set x 1}"

let test_fuel_bounds_runaway () =
  let net, k, m = fuel_world () in
  (* 2 cents = 50 + 200 steps; the run-away dies fast *)
  let bc = Briefcase.create () in
  Briefcase.set bc Briefcase.code_folder runaway;
  Fuel.grant m bc ~cents:2;
  Kernel.launch k ~site:0 ~contact:"ag_script" bc;
  Net.run ~until:5.0 net;
  check Alcotest.int "runaway killed" 1 (Kernel.deaths k)

let test_fuel_buys_proportional_work () =
  (* a loop that needs ~3 steps per iteration for 200 iterations: enough
     fuel completes, half of it does not *)
  let code = "for {set i 0} {$i < 200} {incr i} {set x $i}; cabinet put DONE yes" in
  let attempt cents =
    let net, k, m = fuel_world () in
    let bc = Briefcase.create () in
    Briefcase.set bc Briefcase.code_folder code;
    Fuel.grant m bc ~cents;
    Kernel.launch k ~site:0 ~contact:"ag_script" bc;
    Net.run ~until:5.0 net;
    Tacoma_core.Cabinet.elements (Kernel.cabinet k 0) "DONE" <> []
  in
  Alcotest.(check bool) "10 cents enough" true (attempt 10);
  Alcotest.(check bool) "2 cents not enough" false (attempt 2)

let test_fuel_counterfeit_worthless () =
  let net, k, m = fuel_world () in
  let bc = Briefcase.create () in
  Briefcase.set bc Briefcase.code_folder runaway;
  (* a copied (already-spent) bill and a home-made one *)
  let spent = Mint.issue m ~amount:100 in
  (match Mint.validate_and_reissue m spent with Ok _ -> () | Error _ -> assert false);
  Tacoma_core.Folder.enqueue (Briefcase.folder bc "FUEL") (Ecu.wire spent);
  Tacoma_core.Folder.enqueue (Briefcase.folder bc "FUEL")
    (Ecu.wire { Ecu.amount = 1000; serial = String.make 32 'a'; signature = String.make 64 'b' });
  Kernel.launch k ~site:0 ~contact:"ag_script" bc;
  Net.run ~until:5.0 net;
  check Alcotest.int "killed on courtesy budget" 1 (Kernel.deaths k)

let test_fuel_burned_leaves_circulation () =
  let net, k, m = fuel_world () in
  let bc = Briefcase.create () in
  Briefcase.set bc Briefcase.code_folder "set x 1";
  Fuel.grant m bc ~cents:5;
  let before = Mint.outstanding m in
  Kernel.launch k ~site:0 ~contact:"ag_script" bc;
  Net.run ~until:5.0 net;
  check Alcotest.int "fuel destroyed" (before - 5) (Mint.outstanding m);
  check Alcotest.int "agent completed" 1 (Kernel.completions k);
  check Alcotest.int "fuel folder drained" 0 (Fuel.balance bc)

let test_fuel_uninstall_restores_default () =
  let net, k, m = fuel_world () in
  Fuel.uninstall k;
  let bc = Briefcase.create () in
  Briefcase.set bc Briefcase.code_folder "for {set i 0} {$i < 200} {incr i} {set x $i}; cabinet put DONE yes";
  ignore m;
  Kernel.launch k ~site:0 ~contact:"ag_script" bc;
  Net.run ~until:5.0 net;
  Alcotest.(check bool) "default budget applies again" true
    (Tacoma_core.Cabinet.elements (Kernel.cabinet k 0) "DONE" <> [])

(* --- audit --- *)

let test_statement_signatures () =
  let s =
    Audit.sign ~key:"k1" ~tx:"t1" ~action:"pay" ~actor:"alice" ~amount:10 ~at:1.5
  in
  Alcotest.(check bool) "valid under key" true (Audit.statement_valid ~key:"k1" s);
  Alcotest.(check bool) "invalid under other key" false (Audit.statement_valid ~key:"k2" s);
  match Audit.statement_of_wire (Audit.statement_wire s) with
  | Ok s' -> Alcotest.(check bool) "wire roundtrip" true (s = s')
  | Error e -> Alcotest.failf "roundtrip: %s" e

let test_judge_verdicts () =
  let keys = [ ("alice", "ka"); ("bob", "kb") ] in
  let pay = Audit.sign ~key:"ka" ~tx:"t" ~action:"pay" ~actor:"alice" ~amount:5 ~at:1.0 in
  let serve = Audit.sign ~key:"kb" ~tx:"t" ~action:"serve" ~actor:"bob" ~amount:5 ~at:2.0 in
  let forged_serve =
    Audit.sign ~key:"wrong" ~tx:"t" ~action:"serve" ~actor:"bob" ~amount:5 ~at:2.0
  in
  let v log = Audit.judge ~keys ~log ~tx:"t" in
  check Alcotest.string "clean" "clean" (Audit.verdict_name (v [ pay; serve ]));
  check Alcotest.string "merchant cheated" "merchant-cheated" (Audit.verdict_name (v [ pay ]));
  check Alcotest.string "customer cheated" "customer-cheated" (Audit.verdict_name (v [ serve ]));
  check Alcotest.string "nothing" "no-transaction" (Audit.verdict_name (v []));
  check Alcotest.string "forged statement ignored" "merchant-cheated"
    (Audit.verdict_name (v [ pay; forged_serve ]))

let purchase_world () =
  let net = Net.create (Topology.full_mesh 4) in
  let k = Kernel.create net in
  let m = mint () in
  Validator.install k ~site:3 m;
  Audit.install_witness k ~site:2;
  Audit.install_court k ~site:2 ~keys:[ ("alice", "ka"); ("bob", "kb") ];
  (net, k, m)

let run_purchase ?(cust = Audit.Honest) ?(merch = Audit.Honest) ?bills () =
  let net, k, m = purchase_world () in
  let bills = match bills with Some b -> b m | None -> [ Mint.issue m ~amount:100 ] in
  let p =
    Audit.purchase k ~tx:"tx1" ~amount:100 ~bills ~customer:("alice", "ka", cust)
      ~merchant:("bob", "kb", merch) ~customer_site:0 ~merchant_site:1 ~witness_site:2
      ~bank_site:3
  in
  Net.run ~until:30.0 net;
  let verdict =
    Audit.judge
      ~keys:[ ("alice", "ka"); ("bob", "kb") ]
      ~log:(Audit.read_witness_log k ~site:2)
      ~tx:"tx1"
  in
  (p, verdict)

let test_purchase_honest () =
  let p, verdict = run_purchase () in
  Alcotest.(check bool) "merchant paid" true p.Audit.merchant_accepted;
  Alcotest.(check bool) "customer served" true p.Audit.customer_served;
  check Alcotest.string "clean verdict" "clean" (Audit.verdict_name verdict)

let test_purchase_cheating_merchant () =
  let p, verdict = run_purchase ~merch:Audit.Cheat () in
  Alcotest.(check bool) "merchant banked the money" true p.Audit.merchant_accepted;
  Alcotest.(check bool) "no service" false p.Audit.customer_served;
  check Alcotest.string "court catches merchant" "merchant-cheated" (Audit.verdict_name verdict)

let test_purchase_cheating_customer_double_spend () =
  (* the customer bypasses the witness and pays with an already-spent bill *)
  let p, verdict =
    run_purchase ~cust:Audit.Cheat
      ~bills:(fun m ->
        let b = Mint.issue m ~amount:100 in
        (match Mint.validate_and_reissue m b with Ok _ -> () | Error _ -> assert false);
        [ b ])
      ()
  in
  Alcotest.(check bool) "validator refused the copy" true p.Audit.merchant_rejected;
  Alcotest.(check bool) "no service rendered" false p.Audit.customer_served;
  check Alcotest.string "nothing provable happened" "no-transaction"
    (Audit.verdict_name verdict)

let test_court_agent_meet () =
  let net, k, m = purchase_world () in
  let bills = [ Mint.issue m ~amount:100 ] in
  ignore
    (Audit.purchase k ~tx:"tx9" ~amount:100 ~bills ~customer:("alice", "ka", Audit.Honest)
       ~merchant:("bob", "kb", Audit.Cheat) ~customer_site:0 ~merchant_site:1
       ~witness_site:2 ~bank_site:3);
  Net.run ~until:30.0 net;
  let bc = Briefcase.create () in
  Briefcase.set bc "TX" "tx9";
  Kernel.launch k ~site:2 ~contact:"court" bc;
  Net.run net;
  check Alcotest.(option string) "verdict folder" (Some "merchant-cheated")
    (Briefcase.find_opt bc "VERDICT")

let () =
  Alcotest.run "cash"
    [
      ( "ecu",
        [
          Alcotest.test_case "wire roundtrip" `Quick test_ecu_wire_roundtrip;
          Alcotest.test_case "malformed" `Quick test_ecu_malformed;
        ] );
      ( "mint",
        [
          Alcotest.test_case "issue + validate" `Quick test_issue_and_validate;
          Alcotest.test_case "double spend" `Quick test_double_spend_detected;
          Alcotest.test_case "forgery" `Quick test_forgery_detected;
          Alcotest.test_case "value conservation" `Quick test_outstanding_conserved;
          Alcotest.test_case "split/merge" `Quick test_split_and_merge;
          Alcotest.test_case "merge atomicity" `Quick test_merge_atomic_on_bad_bill;
          Alcotest.test_case "merge duplicates" `Quick test_merge_rejects_duplicates;
          Alcotest.test_case "foreign mint" `Quick test_two_mints_reject_each_other;
        ] );
      ( "wallet",
        [
          test_wallet_exact_change;
          Alcotest.test_case "take at least" `Quick test_wallet_take_at_least;
          Alcotest.test_case "folder roundtrip" `Quick test_wallet_folder_roundtrip;
        ] );
      ( "validator",
        [
          Alcotest.test_case "meet protocol" `Quick test_validator_meet_protocol;
          Alcotest.test_case "remote roundtrip" `Quick test_remote_validation_roundtrip;
          Alcotest.test_case "remote double spend" `Quick
            test_remote_validation_rejects_double_spend;
          Alcotest.test_case "duplicate batch" `Quick
            test_validator_batch_with_duplicates_rejected;
        ] );
      ( "fuel",
        [
          Alcotest.test_case "bounds a runaway" `Quick test_fuel_bounds_runaway;
          Alcotest.test_case "proportional work" `Quick test_fuel_buys_proportional_work;
          Alcotest.test_case "counterfeit worthless" `Quick test_fuel_counterfeit_worthless;
          Alcotest.test_case "burned fuel leaves circulation" `Quick
            test_fuel_burned_leaves_circulation;
          Alcotest.test_case "uninstall" `Quick test_fuel_uninstall_restores_default;
        ] );
      ( "audit",
        [
          Alcotest.test_case "statement signatures" `Quick test_statement_signatures;
          Alcotest.test_case "judge verdicts" `Quick test_judge_verdicts;
          Alcotest.test_case "honest purchase" `Quick test_purchase_honest;
          Alcotest.test_case "cheating merchant" `Quick test_purchase_cheating_merchant;
          Alcotest.test_case "cheating customer" `Quick
            test_purchase_cheating_customer_double_spend;
          Alcotest.test_case "court agent" `Quick test_court_agent_meet;
        ] );
    ]

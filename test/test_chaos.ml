(* Tests for the chaos-plan subsystem (deterministic generation, round-trip
   persistence, netsim injection semantics) and for the seeded invariant
   harness: a full workload survives many mixed chaos schedules with every
   machine-checked invariant intact. *)

module Chaos = Netsim.Chaos
module Net = Netsim.Net
module Topology = Netsim.Topology
module Message = Netsim.Message
module Rng = Tacoma_util.Rng
module H = Chaos_harness

let check = Alcotest.check

(* --- plan generation and persistence --- *)

let mixed_plan seed =
  let topo = Topology.line 4 in
  Chaos.mixed ~rng:(Rng.create seed) ~topo ~until:200.0 ()

let test_mixed_deterministic () =
  let p1 = mixed_plan 7L and p2 = mixed_plan 7L in
  Alcotest.(check bool) "nonempty" true (p1 <> []);
  check Alcotest.string "same plan" (Chaos.to_string p1) (Chaos.to_string p2);
  let p3 = mixed_plan 8L in
  Alcotest.(check bool) "different seed, different plan" true
    (Chaos.to_string p1 <> Chaos.to_string p3)

let test_plan_roundtrip () =
  let p = mixed_plan 13L in
  match Chaos.of_string (Chaos.to_string p) with
  | Error e -> Alcotest.fail ("round-trip: " ^ e)
  | Ok p' -> check Alcotest.string "round-trip" (Chaos.to_string p) (Chaos.to_string p')

let test_validate_rejects () =
  let topo = Topology.line 3 in
  let bad_site = [ Chaos.Crash { site = 99; at = 1.0; downtime = 1.0 } ] in
  let bad_link =
    [ Chaos.Cut { links = [ (0, 2) ]; at = 1.0; duration = 1.0; label = "x" } ]
  in
  let bad_rate =
    [ Chaos.Loss_burst { link = None; at = 1.0; duration = 1.0; rate = 1.0 } ]
  in
  Alcotest.(check bool) "bad site" true (Result.is_error (Chaos.validate topo bad_site));
  Alcotest.(check bool) "bad link" true (Result.is_error (Chaos.validate topo bad_link));
  Alcotest.(check bool) "bad rate" true (Result.is_error (Chaos.validate topo bad_rate));
  Alcotest.(check bool) "good plan" true
    (Result.is_ok (Chaos.validate (Topology.line 4) (mixed_plan 1L)))

let test_double_failure_window () =
  let plan =
    [
      Chaos.Crash { site = 1; at = 10.0; downtime = 5.0 };
      Chaos.Crash { site = 2; at = 12.0; downtime = 5.0 };
    ]
  in
  Alcotest.(check bool) "adjacent overlap" true
    (Chaos.double_failure_window plan [ 0; 1; 2 ]);
  Alcotest.(check bool) "non-adjacent overlap" false
    (Chaos.double_failure_window plan [ 1; 0; 2 ])

(* --- injection semantics --- *)

let probe_send net ~at ~got =
  ignore
    (Net.schedule net ~after:at (fun () ->
         Net.send net ~src:0 ~dst:1 ~size:100 (Message.Ping "probe")));
  ignore got

let test_cut_window () =
  let net = Net.create (Topology.line 2) in
  Chaos.apply net
    [ Chaos.Cut { links = [ (0, 1) ]; at = 1.0; duration = 2.0; label = "t" } ];
  let got = ref 0 in
  Net.set_handler net 1 ~key:"t" (fun _ -> incr got);
  probe_send net ~at:0.5 ~got;
  probe_send net ~at:2.0 ~got;
  probe_send net ~at:4.0 ~got;
  Net.run net;
  check Alcotest.int "two delivered" 2 !got;
  check Alcotest.int "partition drop counted" 1
    (Obs.Metrics.counter (Net.metrics net) ~labels:[ ("reason", "partition") ] "net.drops");
  check Alcotest.int "healed" 2
    (Obs.Metrics.counter (Net.metrics net) ~labels:[ ("kind", "cut") ] "chaos.injected"
    + Obs.Metrics.counter (Net.metrics net) ~labels:[ ("kind", "cut") ] "chaos.healed")

let test_overlapping_cuts_refcounted () =
  let net = Net.create (Topology.line 2) in
  Chaos.apply net
    [
      Chaos.Cut { links = [ (0, 1) ]; at = 1.0; duration = 4.0; label = "a" };
      Chaos.Cut { links = [ (0, 1) ]; at = 3.0; duration = 5.0; label = "b" };
    ];
  let got = ref 0 in
  Net.set_handler net 1 ~key:"t" (fun _ -> incr got);
  (* t=6: the first cut ended but the second still covers the link. *)
  probe_send net ~at:6.0 ~got;
  (* t=9: both windows closed; the link must be healed. *)
  probe_send net ~at:9.0 ~got;
  Net.run net;
  check Alcotest.int "only post-heal delivery" 1 !got

let test_loss_burst_window () =
  let net = Net.create ~seed:5L (Topology.line 2) in
  Chaos.apply net
    [ Chaos.Loss_burst { link = Some (0, 1); at = 1.0; duration = 2.0; rate = 0.999 } ];
  let got = ref 0 in
  Net.set_handler net 1 ~key:"t" (fun _ -> incr got);
  for i = 0 to 9 do
    probe_send net ~at:(1.1 +. (0.1 *. float_of_int i)) ~got
  done;
  probe_send net ~at:5.0 ~got;
  Net.run net;
  (* With the fixed seed every burst-window probe is lost; the post-window
     probe must get through because the override was removed. *)
  check Alcotest.int "post-burst delivery" 1 !got;
  check Alcotest.int "losses counted" 10
    (Obs.Metrics.counter (Net.metrics net) ~labels:[ ("reason", "loss") ] "net.drops")

let test_degrade_slows_link () =
  let net = Net.create (Topology.line 2) in
  Chaos.apply net
    [
      Chaos.Degrade
        { link = (0, 1); at = 1.0; duration = 10.0; latency = 10.0; bandwidth = 1.0 };
    ];
  let at = ref 0.0 in
  Net.set_handler net 1 ~key:"t" (fun _ -> at := Net.now net);
  ignore
    (Net.schedule net ~after:2.0 (fun () ->
         Net.send net ~src:0 ~dst:1 ~size:1000 (Message.Ping "x")));
  Net.run net;
  (* 5ms base latency x10 + 1000B at 1MB/s = 51ms *)
  check (Alcotest.float 1e-6) "degraded delivery time" 2.051 !at;
  (* after the window the link is restored *)
  Alcotest.(check (option (pair (float 1e-9) (float 1e-9))))
    "restored" None
    (Net.link_degraded net 0 1)

let test_crash_skip_accounting () =
  let net = Net.create (Topology.line 2) in
  Chaos.apply net
    [
      Chaos.Crash { site = 1; at = 1.0; downtime = 10.0 };
      Chaos.Crash { site = 1; at = 2.0; downtime = 1.0 };
    ];
  Net.run ~until:30.0 net;
  let m = Net.metrics net in
  check Alcotest.int "one injected" 1
    (Obs.Metrics.counter m ~labels:[ ("kind", "crash") ] "chaos.injected");
  check Alcotest.int "one skipped" 1
    (Obs.Metrics.counter m ~labels:[ ("kind", "crash") ] "chaos.skipped");
  (* the skipped crash's restart is skipped with it: the site restarts at
     t=11 from the first crash and stays up *)
  Alcotest.(check bool) "site back up" true (Net.site_up net 1)

(* --- the invariant harness --- *)

let test_harness_single_seed () =
  let v = H.run_seed ~seed:0 () in
  if not (H.passed v) then
    Alcotest.failf "violations: %s" (String.concat "; " v.H.v_violations);
  Alcotest.(check bool) "journeys accounted" true
    (v.H.v_completed + v.H.v_lost_attributed = v.H.v_journeys);
  Alcotest.(check bool) "bookings resolved" true
    (v.H.v_bookings_ok + v.H.v_bookings_failed = 4)

let test_harness_many_seeds () =
  (* The acceptance bar: >= 50 seeded mixed chaos schedules, all invariants
     intact.  Failures print the verdicts for diagnosis. *)
  let vs = H.run_sweep ~seeds:(List.init 50 (fun i -> i)) () in
  if not (H.all_passed vs) then
    Alcotest.failf "harness violations:@.%s"
      (String.concat "\n"
         (List.filter_map
            (fun v ->
              if H.passed v then None
              else Some (Format.asprintf "%a" H.pp_verdict v))
            vs));
  (* with guards on, chaos must not silently eat the fleet: across the
     sweep the overwhelming majority of journeys complete *)
  let total = List.fold_left (fun a v -> a + v.H.v_journeys) 0 vs in
  let completed = List.fold_left (fun a v -> a + v.H.v_completed) 0 vs in
  Alcotest.(check bool)
    (Printf.sprintf "guarded completion %d/%d >= 90%%" completed total)
    true
    (float_of_int completed >= 0.9 *. float_of_int total)

let test_harness_unguarded () =
  let config = { H.default_config with guarded = false } in
  let vs = H.run_sweep ~config ~seeds:[ 0; 1; 2; 3; 4 ] () in
  if not (H.all_passed vs) then
    Alcotest.failf "unguarded violations:@.%s"
      (String.concat "\n" (List.concat_map (fun v -> v.H.v_violations) vs))

let test_verdict_json () =
  let v = H.run_seed ~seed:3 () in
  let j = H.verdict_json v in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "has seed" true (contains j "\"seed\":3");
  Alcotest.(check bool) "has violations array" true (contains j "\"violations\":[")

let test_sweep_byte_identical_across_jobs () =
  (* the multicore determinism contract: fanning seeds out over worker
     domains must not change a single byte of the verdict stream (which
     embeds the netstats counters: msgs sent/dropped, bytes) *)
  let seeds = [ 0; 1; 2; 3 ] in
  let render jobs =
    H.run_sweep ~jobs ~seeds ()
    |> List.map H.verdict_json
    |> String.concat "\n"
  in
  let serial = render 1 in
  check Alcotest.string "jobs=4 matches jobs=1" serial (render 4);
  check Alcotest.string "jobs=0 (all cores) matches jobs=1" serial (render 0)

let () =
  Alcotest.run "chaos"
    [
      ( "plans",
        [
          Alcotest.test_case "mixed deterministic" `Quick test_mixed_deterministic;
          Alcotest.test_case "round-trip" `Quick test_plan_roundtrip;
          Alcotest.test_case "validate" `Quick test_validate_rejects;
          Alcotest.test_case "double-failure window" `Quick test_double_failure_window;
        ] );
      ( "injection",
        [
          Alcotest.test_case "cut window" `Quick test_cut_window;
          Alcotest.test_case "overlapping cuts" `Quick test_overlapping_cuts_refcounted;
          Alcotest.test_case "loss burst" `Quick test_loss_burst_window;
          Alcotest.test_case "degradation" `Quick test_degrade_slows_link;
          Alcotest.test_case "crash skip accounting" `Quick test_crash_skip_accounting;
        ] );
      ( "harness",
        [
          Alcotest.test_case "single seed" `Quick test_harness_single_seed;
          Alcotest.test_case "50 seeds" `Slow test_harness_many_seeds;
          Alcotest.test_case "unguarded baseline" `Quick test_harness_unguarded;
          Alcotest.test_case "verdict json" `Quick test_verdict_json;
          Alcotest.test_case "byte-identical across jobs" `Quick
            test_sweep_byte_identical_across_jobs;
        ] );
    ]

(* Tests for the discrete-event network simulator: engine ordering and
   cancellation, topology generators, routing, delivery semantics, failures
   and byte accounting. *)

module Engine = Netsim.Engine
module Topology = Netsim.Topology
module Net = Netsim.Net
module Message = Netsim.Message
module Netstats = Netsim.Netstats
module Fault = Netsim.Fault
module Trace = Netsim.Trace
module Rng = Tacoma_util.Rng

let check = Alcotest.check

let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* --- engine --- *)

let test_engine_time_order () =
  let e = Engine.create () in
  let log = ref [] in
  ignore (Engine.schedule e ~after:2.0 (fun () -> log := 2 :: !log));
  ignore (Engine.schedule e ~after:1.0 (fun () -> log := 1 :: !log));
  ignore (Engine.schedule e ~after:3.0 (fun () -> log := 3 :: !log));
  Engine.run e;
  check Alcotest.(list int) "fires in time order" [ 1; 2; 3 ] (List.rev !log);
  check (Alcotest.float 1e-9) "clock at last event" 3.0 (Engine.now e)

let test_engine_fifo_at_same_time () =
  let e = Engine.create () in
  let log = ref [] in
  for i = 1 to 5 do
    ignore (Engine.schedule e ~after:1.0 (fun () -> log := i :: !log))
  done;
  Engine.run e;
  check Alcotest.(list int) "same-time events keep scheduling order" [ 1; 2; 3; 4; 5 ]
    (List.rev !log)

let test_engine_cancel () =
  let e = Engine.create () in
  let fired = ref false in
  let timer = Engine.schedule e ~after:1.0 (fun () -> fired := true) in
  Engine.cancel timer;
  Engine.run e;
  Alcotest.(check bool) "cancelled event did not fire" false !fired;
  check Alcotest.int "no pending" 0 (Engine.pending e)

let test_engine_cancel_idempotent () =
  let e = Engine.create () in
  let timer = Engine.schedule e ~after:1.0 ignore in
  Engine.cancel timer;
  Engine.cancel timer;
  check Alcotest.int "pending consistent" 0 (Engine.pending e)

let test_engine_run_until () =
  let e = Engine.create () in
  let fired = ref [] in
  ignore (Engine.schedule e ~after:1.0 (fun () -> fired := 1 :: !fired));
  ignore (Engine.schedule e ~after:5.0 (fun () -> fired := 5 :: !fired));
  Engine.run ~until:2.0 e;
  check Alcotest.(list int) "only early event" [ 1 ] !fired;
  check (Alcotest.float 1e-9) "clock advanced to until" 2.0 (Engine.now e);
  Engine.run e;
  check Alcotest.(list int) "remaining fires" [ 5; 1 ] !fired

let test_engine_nested_schedule () =
  let e = Engine.create () in
  let log = ref [] in
  ignore
    (Engine.schedule e ~after:1.0 (fun () ->
         log := "a" :: !log;
         ignore (Engine.schedule e ~after:1.0 (fun () -> log := "b" :: !log))));
  Engine.run e;
  check Alcotest.(list string) "nested event ran" [ "a"; "b" ] (List.rev !log);
  check (Alcotest.float 1e-9) "time accumulated" 2.0 (Engine.now e)

let test_engine_negative_delay_clamped () =
  let e = Engine.create () in
  let fired = ref false in
  ignore (Engine.schedule e ~after:(-5.0) (fun () -> fired := true));
  Engine.run e;
  Alcotest.(check bool) "fired at now" true !fired;
  check (Alcotest.float 1e-9) "clock unchanged" 0.0 (Engine.now e)

let test_engine_run_until_skips_cancelled_head () =
  (* regression: a cancelled entry at the head of the queue used to slip
     past the [until] check and fire the next real event early *)
  let e = Engine.create () in
  let fired = ref [] in
  let early = Engine.schedule e ~after:1.0 (fun () -> fired := 1 :: !fired) in
  ignore (Engine.schedule e ~after:5.0 (fun () -> fired := 5 :: !fired));
  Engine.cancel early;
  Engine.run ~until:2.0 e;
  check Alcotest.(list int) "late event not fired early" [] !fired;
  check (Alcotest.float 1e-9) "clock stops at until" 2.0 (Engine.now e);
  Engine.run e;
  check Alcotest.(list int) "late event still fires" [ 5 ] !fired;
  check (Alcotest.float 1e-9) "clock at late event" 5.0 (Engine.now e)

let test_engine_compaction () =
  let metrics = Obs.Metrics.create () in
  let e = Engine.create ~metrics () in
  let log = ref [] in
  let timers =
    List.init 128 (fun i ->
        Engine.schedule e ~after:(float_of_int (i + 1)) (fun () ->
            log := i :: !log))
  in
  (* cancel the first 100: dead entries now outnumber live ones, which must
     trigger at least one heap rebuild *)
  List.iteri (fun i tm -> if i < 100 then Engine.cancel tm) timers;
  Alcotest.(check bool) "compacted" true (Engine.compactions e >= 1);
  check Alcotest.int "metrics counter mirrors accessor" (Engine.compactions e)
    (Obs.Metrics.counter metrics "engine.compactions");
  check Alcotest.int "live entries preserved" 28 (Engine.pending e);
  Engine.run e;
  check Alcotest.(list int) "survivors fire in time order"
    (List.init 28 (fun i -> i + 100))
    (List.rev !log)

let test_engine_no_compaction_below_floor () =
  (* small queues never compact: the size floor keeps the rebuild from
     thrashing on ordinary timer churn *)
  let e = Engine.create () in
  let timers = List.init 10 (fun i -> Engine.schedule e ~after:(float_of_int i) ignore) in
  List.iter Engine.cancel timers;
  check Alcotest.int "no rebuild below floor" 0 (Engine.compactions e);
  check Alcotest.int "nothing pending" 0 (Engine.pending e)

(* --- topology generators --- *)

let degree topo s = List.length (Topology.neighbors topo s)

let test_topo_ring () =
  let t = Topology.ring 6 in
  check Alcotest.int "sites" 6 (Topology.site_count t);
  List.iter (fun s -> check Alcotest.int "degree 2" 2 (degree t s)) (Topology.sites t)

let test_topo_ring_small () =
  let t = Topology.ring 1 in
  check Alcotest.int "singleton ok" 1 (Topology.site_count t);
  check Alcotest.int "no self loop" 0 (degree t 0);
  let t2 = Topology.ring 2 in
  check Alcotest.int "pair degree" 1 (degree t2 0)

let test_topo_star () =
  let t = Topology.star 5 in
  check Alcotest.int "hub degree" 5 (degree t 0);
  List.iter (fun s -> check Alcotest.int "spoke degree" 1 (degree t s)) [ 1; 2; 3; 4; 5 ]

let test_topo_grid () =
  let t = Topology.grid 3 4 in
  check Alcotest.int "sites" 12 (Topology.site_count t);
  check Alcotest.int "corner degree" 2 (degree t 0);
  check Alcotest.int "center degree" 4 (degree t 5)

let test_topo_full_mesh () =
  let t = Topology.full_mesh 5 in
  List.iter (fun s -> check Alcotest.int "degree n-1" 4 (degree t s)) (Topology.sites t)

let test_topo_line () =
  let t = Topology.line 4 in
  check Alcotest.int "end degree" 1 (degree t 0);
  check Alcotest.int "mid degree" 2 (degree t 1)

let test_topo_random_connected () =
  let rng = Rng.create 5L in
  let t = Topology.random ~rng ~n:20 ~p:0.05 () in
  (* spanning ring guarantees connectivity *)
  let net = Net.create t in
  List.iter
    (fun dst ->
      Alcotest.(check bool) "reachable" true (Option.is_some (Net.route net 0 dst)))
    (Topology.sites t)

let test_topo_wan_pair () =
  let t = Topology.wan_pair ~cluster:3 () in
  check Alcotest.int "six sites" 6 (Topology.site_count t);
  check Alcotest.string "names" "tromso-0" (Topology.site_name t 0);
  check Alcotest.string "names 2" "cornell-0" (Topology.site_name t 3);
  (* WAN link only between the cluster heads *)
  Alcotest.(check bool) "wan link" true (Topology.link t 0 3 <> None);
  Alcotest.(check bool) "no direct cross link" true (Topology.link t 1 4 = None);
  (* cross-cluster traffic is slower than intra-cluster *)
  let net = Net.create t in
  let lan = Option.get (Net.delivery_delay net 1 2 ~size:1000) in
  let wan = Option.get (Net.delivery_delay net 1 4 ~size:1000) in
  Alcotest.(check bool) "wan much slower" true (wan > 20.0 *. lan)

let test_topo_rejects_self_loop () =
  let t = Topology.create () in
  let a = Topology.add_site t ~name:"a" in
  Alcotest.check_raises "self loop" (Invalid_argument "Topology.add_link: self loop")
    (fun () -> Topology.add_link t a a ~latency:1.0 ~bandwidth:1.0)

let test_topo_site_names () =
  let t = Topology.create () in
  let a = Topology.add_site t ~name:"alpha" in
  let b = Topology.add_site t ~name:"beta" in
  check Alcotest.string "name a" "alpha" (Topology.site_name t a);
  check Alcotest.string "name b" "beta" (Topology.site_name t b)

(* --- delivery --- *)

let mk_net ?seed topo = Net.create ?seed topo

let test_delivery_basic () =
  let net = mk_net (Topology.line 2) in
  let got = ref None in
  Net.set_handler net 1 ~key:"t" (fun m -> got := Some m);
  Net.send net ~src:0 ~dst:1 ~size:1000 (Message.Ping "hi");
  Net.run net;
  match !got with
  | None -> Alcotest.fail "not delivered"
  | Some m ->
    check Alcotest.int "src" 0 m.Message.src;
    check Alcotest.int "size" 1000 m.Message.size;
    (match m.Message.payload with
    | Message.Ping s -> check Alcotest.string "payload" "hi" s
    | _ -> Alcotest.fail "wrong payload");
    (* 5ms latency + 1000B at 1MB/s = 1ms *)
    check (Alcotest.float 1e-6) "delivery time" 0.006 (Net.now net)

let test_delivery_multi_hop_time_and_bytes () =
  let net = mk_net (Topology.line 3) in
  let at = ref 0.0 in
  Net.set_handler net 2 ~key:"t" (fun _ -> at := Net.now net);
  Net.send net ~src:0 ~dst:2 ~size:1000 (Message.Ping "x");
  Net.run net;
  check (Alcotest.float 1e-6) "two hops" 0.012 !at;
  let stats = Net.stats net in
  check Alcotest.int "byte-hops" 2000 (Netstats.byte_hops stats);
  check Alcotest.int "bytes once" 1000 (Netstats.bytes_sent stats);
  check Alcotest.int "per-link charge" 1000 (Netstats.link_bytes stats 0 1);
  check Alcotest.int "per-link charge 2" 1000 (Netstats.link_bytes stats 1 2)

let test_delivery_local () =
  let net = mk_net (Topology.line 2) in
  let got = ref false in
  Net.set_handler net 0 ~key:"t" (fun _ -> got := true);
  Net.send net ~src:0 ~dst:0 ~size:50 (Message.Ping "self");
  Net.run net;
  Alcotest.(check bool) "local delivery" true !got;
  check Alcotest.int "no byte-hops for local" 0 (Netstats.byte_hops (Net.stats net))

let test_delivery_ordering_fifo_per_link () =
  let net = mk_net (Topology.line 2) in
  let order = ref [] in
  Net.set_handler net 1 ~key:"t" (fun m ->
      match m.Message.payload with
      | Message.Ping s -> order := s :: !order
      | _ -> ());
  Net.send net ~src:0 ~dst:1 ~size:10 (Message.Ping "a");
  Net.send net ~src:0 ~dst:1 ~size:10 (Message.Ping "b");
  Net.run net;
  check Alcotest.(list string) "fifo" [ "a"; "b" ] (List.rev !order)

let test_handler_multiplex () =
  let net = mk_net (Topology.line 2) in
  let hits = ref [] in
  Net.set_handler net 1 ~key:"x" (fun _ -> hits := "x" :: !hits);
  Net.set_handler net 1 ~key:"y" (fun _ -> hits := "y" :: !hits);
  Net.send net ~src:0 ~dst:1 ~size:1 (Message.Ping "p");
  Net.run net;
  check Alcotest.(list string) "both handlers" [ "x"; "y" ] (List.sort compare !hits);
  Net.clear_handler net 1 ~key:"x";
  hits := [];
  Net.send net ~src:0 ~dst:1 ~size:1 (Message.Ping "p");
  Net.run net;
  check Alcotest.(list string) "only y" [ "y" ] !hits

let test_handler_replace () =
  let net = mk_net (Topology.line 2) in
  let count = ref 0 in
  Net.set_handler net 1 ~key:"k" (fun _ -> count := !count + 1);
  Net.set_handler net 1 ~key:"k" (fun _ -> count := !count + 100);
  Net.send net ~src:0 ~dst:1 ~size:1 (Message.Ping "p");
  Net.run net;
  check Alcotest.int "replaced handler" 100 !count

(* --- failures --- *)

let test_crash_drops_delivery () =
  let net = mk_net (Topology.line 2) in
  let got = ref false in
  Net.set_handler net 1 ~key:"t" (fun _ -> got := true);
  Net.send net ~src:0 ~dst:1 ~size:10 (Message.Ping "x");
  (* crash before the in-flight message lands *)
  ignore (Net.schedule net ~after:0.001 (fun () -> Net.crash net 1));
  Net.run net;
  Alcotest.(check bool) "dropped" false !got;
  check Alcotest.int "drop counted" 1 (Netstats.messages_dropped (Net.stats net))

let test_send_from_down_site_noop () =
  let net = mk_net (Topology.line 2) in
  Net.crash net 0;
  Net.send net ~src:0 ~dst:1 ~size:10 (Message.Ping "x");
  Net.run net;
  check Alcotest.int "nothing sent" 0 (Netstats.messages_sent (Net.stats net))

let test_crash_restart_hooks () =
  let net = mk_net (Topology.line 2) in
  let log = ref [] in
  Net.on_crash net 1 (fun () -> log := "crash" :: !log);
  Net.on_restart net 1 (fun () -> log := "restart" :: !log);
  Net.crash net 1;
  Net.crash net 1 (* second crash is a no-op *);
  Net.restart net 1;
  Net.restart net 1;
  check Alcotest.(list string) "hooks once each" [ "crash"; "restart" ] (List.rev !log)

let test_routing_avoids_down_intermediate () =
  (* square: 0-1, 1-3, 0-2, 2-3; crash 1, messages 0->3 must go via 2 *)
  let t = Topology.create () in
  let s = Array.init 4 (fun i -> Topology.add_site t ~name:(string_of_int i)) in
  List.iter
    (fun (a, b) -> Topology.add_link t s.(a) s.(b) ~latency:0.005 ~bandwidth:1e6)
    [ (0, 1); (1, 3); (0, 2); (2, 3) ];
  let net = mk_net t in
  Net.crash net s.(1);
  (match Net.route net s.(0) s.(3) with
  | Some path -> check Alcotest.(list int) "via 2" [ s.(2); s.(3) ] path
  | None -> Alcotest.fail "no route");
  let got = ref false in
  Net.set_handler net s.(3) ~key:"t" (fun _ -> got := true);
  Net.send net ~src:s.(0) ~dst:s.(3) ~size:10 (Message.Ping "x");
  Net.run net;
  Alcotest.(check bool) "delivered around failure" true !got

let test_partition_blocks_and_heals () =
  let net = mk_net (Topology.line 2) in
  Net.set_link_enabled net 0 1 false;
  check Alcotest.(option (list int)) "no route" None (Net.route net 0 1);
  Net.send net ~src:0 ~dst:1 ~size:10 (Message.Ping "x");
  Net.run net;
  check Alcotest.int "dropped at partition" 1 (Netstats.messages_dropped (Net.stats net));
  Net.set_link_enabled net 0 1 true;
  let got = ref false in
  Net.set_handler net 1 ~key:"t" (fun _ -> got := true);
  Net.send net ~src:0 ~dst:1 ~size:10 (Message.Ping "x");
  Net.run net;
  Alcotest.(check bool) "healed" true !got

let test_link_contention_serializes () =
  (* two 1000B messages sent together on one 1 MB/s link: the second waits
     for the first to finish serialising (1 ms) *)
  let net = mk_net (Topology.line 2) in
  let times = ref [] in
  Net.set_handler net 1 ~key:"t" (fun _ -> times := Net.now net :: !times);
  Net.send net ~src:0 ~dst:1 ~size:1000 (Message.Ping "a");
  Net.send net ~src:0 ~dst:1 ~size:1000 (Message.Ping "b");
  Net.run net;
  match List.rev !times with
  | [ t1; t2 ] ->
    check (Alcotest.float 1e-9) "first at ser+lat" 0.006 t1;
    check (Alcotest.float 1e-9) "second queued behind first" 0.007 t2
  | other -> Alcotest.failf "expected 2 deliveries, got %d" (List.length other)

let test_contention_only_on_shared_links () =
  (* a hub fans out to two spokes: transfers on distinct links overlap *)
  let net = mk_net (Topology.star 2) in
  let times = ref [] in
  List.iter
    (fun s -> Net.set_handler net s ~key:"t" (fun _ -> times := Net.now net :: !times))
    [ 1; 2 ];
  Net.send net ~src:0 ~dst:1 ~size:1000 (Message.Ping "a");
  Net.send net ~src:0 ~dst:2 ~size:1000 (Message.Ping "b");
  Net.run net;
  match List.rev !times with
  | [ t1; t2 ] ->
    check (Alcotest.float 1e-9) "parallel 1" 0.006 t1;
    check (Alcotest.float 1e-9) "parallel 2" 0.006 t2
  | other -> Alcotest.failf "expected 2 deliveries, got %d" (List.length other)

let test_delivery_delay_matches_send () =
  let net = mk_net (Topology.line 3) in
  let predicted = Option.get (Net.delivery_delay net 0 2 ~size:500) in
  let at = ref 0.0 in
  Net.set_handler net 2 ~key:"t" (fun _ -> at := Net.now net);
  Net.send net ~src:0 ~dst:2 ~size:500 (Message.Ping "x");
  Net.run net;
  check (Alcotest.float 1e-9) "predicted = actual" predicted !at

let test_lossy_link_statistics () =
  let net = Net.create ~loss_rate:0.3 (Topology.line 2) in
  let got = ref 0 in
  Net.set_handler net 1 ~key:"t" (fun _ -> incr got);
  for _ = 1 to 1000 do
    Net.send net ~src:0 ~dst:1 ~size:10 (Message.Ping "x")
  done;
  Net.run net;
  Alcotest.(check bool) "roughly 70% delivered" true (!got > 620 && !got < 780);
  check Alcotest.int "drops + deliveries = sends" 1000
    (Netstats.messages_delivered (Net.stats net) + Netstats.messages_dropped (Net.stats net))

let test_loss_zero_by_default () =
  let net = Net.create (Topology.line 2) in
  let got = ref 0 in
  Net.set_handler net 1 ~key:"t" (fun _ -> incr got);
  for _ = 1 to 200 do
    Net.send net ~src:0 ~dst:1 ~size:10 (Message.Ping "x")
  done;
  Net.run net;
  check Alcotest.int "all delivered" 200 !got

let test_local_delivery_never_lost () =
  let net = Net.create ~loss_rate:0.9 (Topology.line 2) in
  let got = ref 0 in
  Net.set_handler net 0 ~key:"t" (fun _ -> incr got);
  for _ = 1 to 100 do
    Net.send net ~src:0 ~dst:0 ~size:10 (Message.Ping "x")
  done;
  Net.run net;
  check Alcotest.int "local immune to loss" 100 !got

(* --- fault plans --- *)

let test_poisson_plan_bounds () =
  let rng = Rng.create 8L in
  let plans = Fault.poisson_plan ~rng ~sites:[ 0; 1; 2 ] ~rate:0.1 ~mean_downtime:5.0 ~until:100.0 in
  Alcotest.(check bool) "some crashes planned" true (List.length plans > 0);
  List.iter
    (fun p ->
      Alcotest.(check bool) "time in range" true (p.Fault.at >= 0.0 && p.Fault.at < 100.0);
      Alcotest.(check bool) "positive downtime" true (p.Fault.downtime > 0.0))
    plans

let test_poisson_plan_no_overlap_per_site () =
  let rng = Rng.create 9L in
  let plans = Fault.poisson_plan ~rng ~sites:[ 0 ] ~rate:0.5 ~mean_downtime:3.0 ~until:200.0 in
  let rec no_overlap = function
    | a :: (b :: _ as rest) ->
      Alcotest.(check bool) "crash after previous restart" true
        (b.Fault.at >= a.Fault.at +. a.Fault.downtime);
      no_overlap rest
    | _ -> ()
  in
  no_overlap plans

let test_fault_apply () =
  let net = mk_net (Topology.line 2) in
  Fault.crash_for net ~site:1 ~at:1.0 ~downtime:2.0;
  Net.run ~until:0.5 net;
  Alcotest.(check bool) "up before" true (Net.site_up net 1);
  Net.run ~until:1.5 net;
  Alcotest.(check bool) "down during" false (Net.site_up net 1);
  Net.run ~until:4.0 net;
  Alcotest.(check bool) "up after" true (Net.site_up net 1)

let test_zero_rate_plan_empty () =
  let rng = Rng.create 1L in
  check Alcotest.int "no crashes at rate 0" 0
    (List.length (Fault.poisson_plan ~rng ~sites:[ 0; 1 ] ~rate:0.0 ~mean_downtime:1.0 ~until:10.0))

let test_route_cache_invalidated_by_restart () =
  (* routes computed while a site is down must be recomputed once it is
     back: the cache is generation-stamped *)
  let t = Topology.create () in
  let s = Array.init 4 (fun i -> Topology.add_site t ~name:(string_of_int i)) in
  (* short path 0-1-3 (2 hops), long path 0-2-3 via higher-latency links *)
  Topology.add_link t s.(0) s.(1) ~latency:0.001 ~bandwidth:1e6;
  Topology.add_link t s.(1) s.(3) ~latency:0.001 ~bandwidth:1e6;
  Topology.add_link t s.(0) s.(2) ~latency:0.010 ~bandwidth:1e6;
  Topology.add_link t s.(2) s.(3) ~latency:0.010 ~bandwidth:1e6;
  let net = mk_net t in
  check Alcotest.(option (list int)) "short path" (Some [ 1; 3 ]) (Net.route net 0 3);
  Net.crash net 1;
  check Alcotest.(option (list int)) "detour while 1 down" (Some [ 2; 3 ]) (Net.route net 0 3);
  Net.restart net 1;
  check Alcotest.(option (list int)) "short path restored" (Some [ 1; 3 ]) (Net.route net 0 3)

let test_route_cache_cleared_on_churn () =
  (* every generation bump must empty the cache eagerly, so a chaos run that
     churns links holds at most one generation of routes at a time instead
     of accreting stale rows forever *)
  let net = mk_net (Topology.ring 6) in
  let warm () =
    List.iter (fun dst -> ignore (Net.route net 0 dst)) [ 1; 2; 3; 4; 5 ];
    Alcotest.(check bool) "cache warmed" true (Net.route_cache_size net > 0)
  in
  warm ();
  Net.crash net 3;
  check Alcotest.int "crash clears cache" 0 (Net.route_cache_size net);
  warm ();
  Net.restart net 3;
  check Alcotest.int "restart clears cache" 0 (Net.route_cache_size net);
  warm ();
  Net.set_link_enabled net 0 1 false;
  check Alcotest.int "link cut clears cache" 0 (Net.route_cache_size net);
  warm ();
  Net.set_link_enabled net 0 1 false;
  Alcotest.(check bool) "no-op toggle keeps cache" true (Net.route_cache_size net > 0);
  Net.set_link_degraded net 1 2 (Some (2.0, 0.5));
  check Alcotest.int "degradation clears cache" 0 (Net.route_cache_size net);
  warm ()

(* --- chaos hooks: partition reasons, per-link loss, degradation --- *)

let drop_count net reason =
  Obs.Metrics.counter (Net.metrics net) ~labels:[ ("reason", reason) ] "net.drops"

let test_partition_drop_reason () =
  (* a cut link is a partition (the sites are alive); a down intermediate
     with every link enabled is plain no-route *)
  let net = mk_net (Topology.line 3) in
  Net.set_link_enabled net 1 2 false;
  Net.send net ~src:0 ~dst:2 ~size:10 (Message.Ping "x");
  Net.run net;
  check Alcotest.int "partition reason" 1 (drop_count net "partition");
  Net.set_link_enabled net 1 2 true;
  Net.crash net 1;
  Net.send net ~src:0 ~dst:2 ~size:10 (Message.Ping "x");
  Net.run net;
  check Alcotest.int "no-route reason" 1 (drop_count net "no-route");
  check Alcotest.int "still one partition drop" 1 (drop_count net "partition")

let test_partition_invalidates_route_cache () =
  (* a route cached before the cut must not carry messages across the
     disabled link; healing restores delivery *)
  let net = mk_net (Topology.line 3) in
  let got = ref 0 in
  Net.set_handler net 2 ~key:"t" (fun _ -> incr got);
  Net.send net ~src:0 ~dst:2 ~size:10 (Message.Ping "warm");
  Net.run net;
  check Alcotest.int "warm route delivers" 1 !got;
  Net.set_link_enabled net 1 2 false;
  Net.send net ~src:0 ~dst:2 ~size:10 (Message.Ping "cut");
  Net.run net;
  check Alcotest.int "cached route not reused across cut" 1 !got;
  check Alcotest.int "dropped as partition" 1 (drop_count net "partition");
  Net.set_link_enabled net 1 2 true;
  Net.send net ~src:0 ~dst:2 ~size:10 (Message.Ping "healed");
  Net.run net;
  check Alcotest.int "healed delivery" 2 !got

let test_fault_apply_idempotent () =
  (* two overlapping plans for one site: the second crash fires while the
     site is already down and is skipped together with its paired restart,
     so the first fault's downtime is not cut short *)
  let net = mk_net (Topology.line 2) in
  Fault.apply net
    [
      { Fault.site = 1; at = 1.0; downtime = 10.0 };
      { Fault.site = 1; at = 2.0; downtime = 1.0 };
    ];
  Net.run ~until:5.0 net;
  Alcotest.(check bool) "still down at t=5 (short restart skipped)" false
    (Net.site_up net 1);
  Net.run ~until:12.0 net;
  Alcotest.(check bool) "up after the first fault's downtime" true (Net.site_up net 1);
  check Alcotest.int "skip counted" 1
    (Obs.Metrics.counter (Net.metrics net) ~labels:[ ("site", "1") ]
       "fault.skipped_crashes")

let test_link_loss_override () =
  let net = Net.create ~seed:9L (Topology.line 2) in
  Net.set_link_loss net 0 1 (Some 0.999);
  let got = ref 0 in
  Net.set_handler net 1 ~key:"t" (fun _ -> incr got);
  for _ = 1 to 10 do
    Net.send net ~src:0 ~dst:1 ~size:10 (Message.Ping "x")
  done;
  Net.run net;
  check Alcotest.int "all lost under the override" 0 !got;
  check Alcotest.int "loss reason" 10 (drop_count net "loss");
  Net.set_link_loss net 0 1 None;
  Net.send net ~src:0 ~dst:1 ~size:10 (Message.Ping "x");
  Net.run net;
  check Alcotest.int "restored" 1 !got;
  Alcotest.check_raises "rate must be < 1"
    (Invalid_argument "Net.set_link_loss: rate must be in [0,1)") (fun () ->
      Net.set_link_loss net 0 1 (Some 1.0))

let test_degradation_slows_and_reroutes () =
  let t = Topology.create () in
  let s = Array.init 3 (fun i -> Topology.add_site t ~name:(string_of_int i)) in
  Topology.add_link t s.(0) s.(1) ~latency:0.005 ~bandwidth:1e6;
  Topology.add_link t s.(0) s.(2) ~latency:0.004 ~bandwidth:1e6;
  Topology.add_link t s.(2) s.(1) ~latency:0.004 ~bandwidth:1e6;
  let net = mk_net t in
  check Alcotest.(option (list int)) "direct link wins" (Some [ 1 ]) (Net.route net 0 1);
  Net.set_link_degraded net 0 1 (Some (10.0, 1.0));
  check Alcotest.(option (list int)) "reroutes around degraded link" (Some [ 2; 1 ])
    (Net.route net 0 1);
  Net.set_link_degraded net 0 1 None;
  check Alcotest.(option (list int)) "restored" (Some [ 1 ]) (Net.route net 0 1);
  Alcotest.check_raises "factors must be positive"
    (Invalid_argument "Net.set_link_degraded: factors must be positive") (fun () ->
      Net.set_link_degraded net 0 1 (Some (0.0, 1.0)))

(* --- trace --- *)

let test_trace_records () =
  let net = Net.create ~trace:true (Topology.line 2) in
  Net.send net ~src:0 ~dst:1 ~size:10 (Message.Ping "x");
  Net.run net;
  let entries = Trace.entries (Net.trace net) in
  Alcotest.(check bool) "send and deliver traced" true (List.length entries >= 2)

let test_trace_disabled_by_default () =
  let net = Net.create (Topology.line 2) in
  Net.send net ~src:0 ~dst:1 ~size:10 (Message.Ping "x");
  Net.run net;
  check Alcotest.int "no entries" 0 (List.length (Trace.entries (Net.trace net)))

(* --- property: routing optimality on random graphs --- *)

let test_route_is_shortest =
  qtest ~count:50 "dijkstra finds minimal hop latency on uniform-latency graphs"
    QCheck2.Gen.(pair (int_range 2 12) (int_range 0 1000))
    (fun (n, seed) ->
      let rng = Rng.create (Int64.of_int seed) in
      let topo = Topology.random ~rng ~n ~p:0.3 () in
      let net = Net.create topo in
      (* BFS hop count must match route length when all latencies equal *)
      let bfs src =
        let dist = Array.make n (-1) in
        dist.(src) <- 0;
        let q = Queue.create () in
        Queue.add src q;
        while not (Queue.is_empty q) do
          let u = Queue.pop q in
          List.iter
            (fun v ->
              if dist.(v) < 0 then begin
                dist.(v) <- dist.(u) + 1;
                Queue.add v q
              end)
            (Topology.neighbors topo u)
        done;
        dist
      in
      let dist = bfs 0 in
      List.for_all
        (fun dst ->
          match Net.route net 0 dst with
          | Some path -> List.length path = dist.(dst)
          | None -> dist.(dst) < 0)
        (Topology.sites topo))

let () =
  Alcotest.run "netsim"
    [
      ( "engine",
        [
          Alcotest.test_case "time order" `Quick test_engine_time_order;
          Alcotest.test_case "fifo at same time" `Quick test_engine_fifo_at_same_time;
          Alcotest.test_case "cancel" `Quick test_engine_cancel;
          Alcotest.test_case "cancel idempotent" `Quick test_engine_cancel_idempotent;
          Alcotest.test_case "run until" `Quick test_engine_run_until;
          Alcotest.test_case "nested schedule" `Quick test_engine_nested_schedule;
          Alcotest.test_case "negative delay" `Quick test_engine_negative_delay_clamped;
          Alcotest.test_case "run until skips cancelled head" `Quick
            test_engine_run_until_skips_cancelled_head;
          Alcotest.test_case "compaction sheds dead entries" `Quick test_engine_compaction;
          Alcotest.test_case "no compaction below floor" `Quick
            test_engine_no_compaction_below_floor;
        ] );
      ( "topology",
        [
          Alcotest.test_case "ring" `Quick test_topo_ring;
          Alcotest.test_case "tiny rings" `Quick test_topo_ring_small;
          Alcotest.test_case "star" `Quick test_topo_star;
          Alcotest.test_case "grid" `Quick test_topo_grid;
          Alcotest.test_case "full mesh" `Quick test_topo_full_mesh;
          Alcotest.test_case "line" `Quick test_topo_line;
          Alcotest.test_case "random connected" `Quick test_topo_random_connected;
          Alcotest.test_case "wan pair" `Quick test_topo_wan_pair;
          Alcotest.test_case "rejects self loops" `Quick test_topo_rejects_self_loop;
          Alcotest.test_case "site names" `Quick test_topo_site_names;
        ] );
      ( "delivery",
        [
          Alcotest.test_case "basic" `Quick test_delivery_basic;
          Alcotest.test_case "multi-hop time and bytes" `Quick test_delivery_multi_hop_time_and_bytes;
          Alcotest.test_case "local" `Quick test_delivery_local;
          Alcotest.test_case "per-link fifo" `Quick test_delivery_ordering_fifo_per_link;
          Alcotest.test_case "handler multiplex" `Quick test_handler_multiplex;
          Alcotest.test_case "handler replace" `Quick test_handler_replace;
          Alcotest.test_case "predicted delay" `Quick test_delivery_delay_matches_send;
          Alcotest.test_case "link contention" `Quick test_link_contention_serializes;
          Alcotest.test_case "no false contention" `Quick test_contention_only_on_shared_links;
          test_route_is_shortest;
        ] );
      ( "failures",
        [
          Alcotest.test_case "crash drops delivery" `Quick test_crash_drops_delivery;
          Alcotest.test_case "send from down site" `Quick test_send_from_down_site_noop;
          Alcotest.test_case "crash/restart hooks" `Quick test_crash_restart_hooks;
          Alcotest.test_case "routes avoid down sites" `Quick test_routing_avoids_down_intermediate;
          Alcotest.test_case "partition blocks and heals" `Quick test_partition_blocks_and_heals;
          Alcotest.test_case "route cache invalidation" `Quick
            test_route_cache_invalidated_by_restart;
          Alcotest.test_case "route cache cleared on churn" `Quick
            test_route_cache_cleared_on_churn;
          Alcotest.test_case "partition drop reason" `Quick test_partition_drop_reason;
          Alcotest.test_case "cut invalidates cached routes" `Quick
            test_partition_invalidates_route_cache;
        ] );
      ( "loss",
        [
          Alcotest.test_case "lossy statistics" `Quick test_lossy_link_statistics;
          Alcotest.test_case "zero by default" `Quick test_loss_zero_by_default;
          Alcotest.test_case "local immune" `Quick test_local_delivery_never_lost;
          Alcotest.test_case "per-link loss override" `Quick test_link_loss_override;
          Alcotest.test_case "degradation reroutes" `Quick
            test_degradation_slows_and_reroutes;
        ] );
      ( "faults",
        [
          Alcotest.test_case "poisson bounds" `Quick test_poisson_plan_bounds;
          Alcotest.test_case "no per-site overlap" `Quick test_poisson_plan_no_overlap_per_site;
          Alcotest.test_case "apply plan" `Quick test_fault_apply;
          Alcotest.test_case "apply is idempotent" `Quick test_fault_apply_idempotent;
          Alcotest.test_case "zero rate" `Quick test_zero_rate_plan_empty;
        ] );
      ( "trace",
        [
          Alcotest.test_case "records when enabled" `Quick test_trace_records;
          Alcotest.test_case "off by default" `Quick test_trace_disabled_by_default;
        ] );
    ]

(* Tests for the TScript language: values/lists, parser, expr, interpreter
   semantics, and resource metering. *)

module Interp = Tscript.Interp
module Value = Tscript.Value
module Parse = Tscript.Parse
module Strutil = Tscript.Strutil

let check = Alcotest.check

let qtest ?(count = 300) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let eval src =
  let it = Interp.create ~step_limit:5_000_000 () in
  Interp.eval it src

let ok src =
  match eval src with
  | Ok v -> v
  | Error e -> Alcotest.failf "script %S failed: %s" src e

let error src =
  match eval src with
  | Ok v -> Alcotest.failf "script %S unexpectedly returned %S" src v
  | Error e -> e

let expect_cases name cases =
  List.map
    (fun (src, want) ->
      Alcotest.test_case (if String.length src > 40 then String.sub src 0 40 else src) `Quick
        (fun () -> check Alcotest.string name want (ok src)))
    cases

(* --- value / list quoting --- *)

let test_list_roundtrip =
  qtest "of_list/to_list roundtrip"
    QCheck2.Gen.(list_size (0 -- 8) (string_size ~gen:printable (0 -- 12)))
    (fun l -> Value.to_list_exn (Value.of_list l) = l)

let test_list_roundtrip_binary =
  qtest "roundtrip with arbitrary bytes"
    QCheck2.Gen.(list_size (0 -- 6) (string_size ~gen:(char_range '\x01' '\xff') (0 -- 10)))
    (fun l -> Value.to_list_exn (Value.of_list l) = l)

let test_list_quoting () =
  check Alcotest.string "spaces braced" "{a b}" (Value.of_list [ "a b" ]);
  check Alcotest.string "empty braced" "{}" (Value.of_list [ "" ]);
  check Alcotest.(list string) "nested braces" [ "{a b}" ] (Value.to_list_exn "{{a b}}");
  check Alcotest.(list string) "quotes" [ "a b" ] (Value.to_list_exn "\"a b\"")

let test_list_malformed () =
  Alcotest.(check bool) "unbalanced brace" true (Result.is_error (Value.to_list "{a"));
  Alcotest.(check bool) "unbalanced quote" true (Result.is_error (Value.to_list "\"a"))

let test_truthy () =
  List.iter
    (fun (s, want) -> Alcotest.(check bool) s want (Value.truthy s))
    [
      ("1", true); ("0", false); ("true", true); ("false", false); ("", false);
      ("no", false); ("yes", true); ("0.0", false); ("2.5", true); ("banana", true);
    ]

let test_of_float () =
  check Alcotest.string "integral float" "2.0" (Value.of_float 2.0);
  check Alcotest.string "fraction" "2.5" (Value.of_float 2.5)

(* --- parser --- *)

let test_parse_comments () =
  check Alcotest.string "comment skipped" "2" (ok "# a comment\nset x 2");
  check Alcotest.string "hash mid-word not comment" "a#b" (ok "set x a#b")

let test_parse_continuation () =
  check Alcotest.string "backslash newline joins" "6" (ok "expr {1 + \\\n 2 + 3}")

let test_parse_nested_brackets () =
  check Alcotest.string "nested cmd subst" "9" (ok "expr {[expr {[expr {1+2}] * 3}]}")

let test_parse_escapes () =
  check Alcotest.string "newline escape" "a\nb" (ok {|set x "a\nb"|});
  check Alcotest.string "dollar escape" "$x" (ok {|set y 1; set z "\$x"|})

let test_parse_errors () =
  Alcotest.(check bool) "unterminated brace" true
    (Result.is_error (Parse.script_result "set x {a"));
  Alcotest.(check bool) "unterminated bracket" true
    (Result.is_error (Parse.script_result "set x [foo"));
  Alcotest.(check bool) "unterminated quote" true
    (Result.is_error (Parse.script_result "set x \"abc"))

let test_parse_empty () =
  check Alcotest.string "empty script" "" (ok "");
  check Alcotest.string "only separators" "" (ok " ;; \n\n ; ")

(* --- expr --- *)

let expr_cases =
  [
    ("expr {1 + 2 * 3}", "7");
    ("expr {(1 + 2) * 3}", "9");
    ("expr {2 ** 10}", "1024.0");
    ("expr {10 % 3}", "1");
    ("expr {1.5 + 1}", "2.5");
    ("expr {4 / 2}", "2");
    ("expr {5 > 3}", "1");
    ("expr {5 <= 3}", "0");
    ("expr {\"a\" < \"b\"}", "1");
    ("expr {1 == 1.0}", "1");
    ("expr {\"1\" eq \"1.0\"}", "0");
    ("expr {!0}", "1");
    ("expr {~0}", "-1");
    ("expr {1 && 0 || 1}", "1");
    ("expr {abs(-4)}", "4");
    ("expr {int(3.9)}", "3");
    ("expr {round(3.5)}", "4");
    ("expr {sqrt(16)}", "4.0");
    ("expr {max(1, 9, 4)}", "9");
    ("expr {min(2.5, 2)}", "2");
    ("expr {\"b\" in {a b c}}", "1");
    ("expr {\"z\" ni {a b c}}", "1");
    ("set x 4; expr {$x * $x}", "16");
    ("expr {[expr {2+2}] + 1}", "5");
    ("expr {1e3 + 1}", "1001.0");
    (* precedence ladder: ** over * over + over < over == over && over || *)
    ("expr {2 + 3 * 4 ** 2}", "50.0");
    ("expr {2 ** 3 ** 2}", "512.0");
    ("expr {10 - 4 - 3}", "3");
    ("expr {100 / 10 / 5}", "2");
    ("expr {1 + 2 < 4 == 1}", "1");
    ("expr {1 || 0 && 0}", "1");
    ("expr {(1 || 0) && 0}", "0");
    ("expr {1 + 1 == 2 && 2 + 2 == 4}", "1");
    (* ternary, including right associativity of the else arm *)
    ("expr {1 ? 2 : 3}", "2");
    ("expr {0 ? 2 : 3}", "3");
    ("expr {1 ? 0 : 1 ? 2 : 3}", "0");
    ("expr {0 ? 1 : 0 ? 2 : 3}", "3");
    ("set x 4; expr {$x > 3 ? \"big\" : \"small\"}", "big");
    ("expr {1 < 2 ? 10 + 1 : 20 + 2}", "11");
    (* int/float promotion and formatting round-trips *)
    ("expr {1 + 1.0}", "2.0");
    ("expr {1 / 2.0}", "0.5");
    ("expr {2.0 * 2}", "4.0");
    ("expr {5 % 3 + 0.5}", "2.5");
    ("expr {int(2.0) + 1}", "3");
    ("expr {1.0 == 1}", "1");
    ("expr {[expr {1.5 * 2}] + 0.5}", "3.5");
    ("expr {[expr {10 / 4.0}] * 4}", "10.0");
    ("expr {[expr {2.0}] == 2}", "1");
  ]

(* fuzz: random integer expression trees, rendered to expr syntax and
   evaluated against an OCaml reference with Tcl division semantics *)
type iexpr =
  | Lit of int
  | Add of iexpr * iexpr
  | Sub of iexpr * iexpr
  | Mul of iexpr * iexpr
  | Div of iexpr * iexpr
  | Mod of iexpr * iexpr
  | Neg of iexpr
  | Cmp of iexpr * iexpr (* < as 0/1 *)

let rec render = function
  | Lit n -> if n < 0 then Printf.sprintf "(0 - %d)" (-n) else string_of_int n
  | Add (a, b) -> Printf.sprintf "(%s + %s)" (render a) (render b)
  | Sub (a, b) -> Printf.sprintf "(%s - %s)" (render a) (render b)
  | Mul (a, b) -> Printf.sprintf "(%s * %s)" (render a) (render b)
  | Div (a, b) -> Printf.sprintf "(%s / %s)" (render a) (render b)
  | Mod (a, b) -> Printf.sprintf "(%s %% %s)" (render a) (render b)
  | Neg a -> Printf.sprintf "(- %s)" (render a)
  | Cmp (a, b) -> Printf.sprintf "(%s < %s)" (render a) (render b)

exception Ref_div_zero

let rec reference = function
  | Lit n -> n
  | Add (a, b) -> reference a + reference b
  | Sub (a, b) -> reference a - reference b
  | Mul (a, b) -> reference a * reference b
  | Div (a, b) ->
    let x = reference a and y = reference b in
    if y = 0 then raise Ref_div_zero
    else if (x < 0) <> (y < 0) && x mod y <> 0 then (x / y) - 1
    else x / y
  | Mod (a, b) ->
    let x = reference a and y = reference b in
    if y = 0 then raise Ref_div_zero
    else
      let m = x mod y in
      if m <> 0 && (m < 0) <> (y < 0) then m + y else m
  | Neg a -> -reference a
  | Cmp (a, b) -> if reference a < reference b then 1 else 0

let iexpr_gen =
  let open QCheck2.Gen in
  sized
  @@ fix (fun self n ->
         if n <= 0 then map (fun i -> Lit i) (int_range (-50) 50)
         else
           let sub = self (n / 2) in
           oneof
             [
               map (fun i -> Lit i) (int_range (-50) 50);
               map2 (fun a b -> Add (a, b)) sub sub;
               map2 (fun a b -> Sub (a, b)) sub sub;
               map2 (fun a b -> Mul (a, b)) sub sub;
               map2 (fun a b -> Div (a, b)) sub sub;
               map2 (fun a b -> Mod (a, b)) sub sub;
               map (fun a -> Neg a) sub;
               map2 (fun a b -> Cmp (a, b)) sub sub;
             ])

let test_expr_fuzz_vs_reference =
  qtest ~count:500 "random integer expressions match the reference evaluator" iexpr_gen
    (fun e ->
      let src = "expr {" ^ render e ^ "}" in
      match (reference e, eval src) with
      | expected, Ok got -> got = string_of_int expected
      | exception Ref_div_zero -> (
        match eval src with Error _ -> true | Ok _ -> false)
      | _, Error _ -> false)

let test_expr_division_by_zero () =
  let e = error "expr {1 / 0}" in
  Alcotest.(check bool) "error reported" true (String.length e > 0)

let test_expr_malformed () =
  List.iter
    (fun src -> ignore (error src))
    [ "expr {1 +}"; "expr {(1}"; "expr {foo(1)}"; "expr {$nope + 1}" ]

(* Short-circuit &&/||/?: must not evaluate the skipped arm's [cmd]
   operands — and must keep skipping when the same expression comes back
   from the compiled-expression cache (second evaluation in the same
   interpreter), since laziness lives in the AST, not the compiler. *)
let test_expr_short_circuit_effects () =
  let it = Interp.create () in
  let run src =
    match Interp.eval it src with
    | Ok v -> v
    | Error e -> Alcotest.failf "eval %S: %s" src e
  in
  ignore (run "proc bump {} {global n; incr n; return 1}");
  ignore (run "set n 0");
  (* cold path: first compile of each expression *)
  check Alcotest.string "|| skips rhs (cold)" "1" (run "expr {1 || [bump]}");
  check Alcotest.string "&& skips rhs (cold)" "0" (run "expr {0 && [bump]}");
  check Alcotest.string "?: skips else arm (cold)" "7" (run "expr {1 ? 7 : [bump]}");
  check Alcotest.string "?: skips then arm (cold)" "8" (run "expr {0 ? [bump] : 8}");
  check Alcotest.string "no side effects after cold pass" "0" (run "set n");
  (* cached-AST path: same sources again *)
  check Alcotest.string "|| skips rhs (cached)" "1" (run "expr {1 || [bump]}");
  check Alcotest.string "&& skips rhs (cached)" "0" (run "expr {0 && [bump]}");
  check Alcotest.string "?: skips else arm (cached)" "7" (run "expr {1 ? 7 : [bump]}");
  check Alcotest.string "?: skips then arm (cached)" "8" (run "expr {0 ? [bump] : 8}");
  check Alcotest.string "no side effects after cached pass" "0" (run "set n");
  let p = Interp.profile it in
  Alcotest.(check bool) "cached pass actually hit the expr cache" true
    (p.Interp.expr_hits >= 4);
  (* arms that must run do run, on both paths *)
  check Alcotest.string "|| evaluates rhs when needed" "1" (run "expr {0 || [bump]}");
  check Alcotest.string "&& evaluates rhs when needed" "1" (run "expr {1 && [bump]}");
  check Alcotest.string "both bumps happened" "2" (run "set n");
  check Alcotest.string "|| evaluates rhs (cached)" "1" (run "expr {0 || [bump]}");
  check Alcotest.string "bumped again through the cache" "3" (run "set n")

let test_profile_counters () =
  let it = Interp.create () in
  let run src =
    match Interp.eval it src with
    | Ok v -> v
    | Error e -> Alcotest.failf "eval %S: %s" src e
  in
  ignore (run "set i 0; while {$i < 10} {incr i}");
  let p = Interp.profile it in
  Alcotest.(check bool) "commands counted" true (p.Interp.commands > 10);
  Alcotest.(check bool) "loop condition compiled once" true (p.Interp.expr_misses >= 1);
  ignore (run "set i 0; while {$i < 10} {incr i}");
  let p2 = Interp.profile it in
  Alcotest.(check bool) "second run hits the parse cache" true
    (p2.Interp.parse_hits > p.Interp.parse_hits);
  Alcotest.(check bool) "second run hits the expr cache" true
    (p2.Interp.expr_hits > p.Interp.expr_hits);
  Alcotest.(check int) "second run compiles nothing new" p.Interp.expr_misses
    p2.Interp.expr_misses

(* A caches value shared between interpreters (the kernel does this per
   simulation) lets a second interpreter reuse everything the first one
   compiled. *)
let test_shared_caches_across_interpreters () =
  let caches = Interp.create_caches () in
  let script = "set total 0; set i 0; while {$i < 5} {incr total $i; incr i}; set total" in
  let run () =
    let it = Interp.create ~caches () in
    (match Interp.eval it script with
    | Ok v -> check Alcotest.string "loop result" "10" v
    | Error e -> Alcotest.failf "eval: %s" e);
    Interp.profile it
  in
  let first = run () in
  let second = run () in
  Alcotest.(check bool) "first interpreter compiles" true (first.Interp.expr_misses >= 1);
  Alcotest.(check int) "second interpreter compiles no expressions" 0
    second.Interp.expr_misses;
  Alcotest.(check int) "second interpreter parses nothing" 0 second.Interp.parse_misses;
  Alcotest.(check bool) "second interpreter hits the shared expr cache" true
    (second.Interp.expr_hits >= 1);
  Alcotest.(check bool) "second interpreter hits the shared parse cache" true
    (second.Interp.parse_hits >= 1)

let test_cache_eviction_counted () =
  let caches = Interp.create_caches ~parse_entries:4 ~expr_entries:2 () in
  let it = Interp.create ~caches () in
  for i = 1 to 8 do
    match Interp.eval it (Printf.sprintf "expr {%d + %d}" i i) with
    | Ok _ -> ()
    | Error e -> Alcotest.failf "eval: %s" e
  done;
  let p = Interp.profile it in
  Alcotest.(check bool) "expr evictions observed" true (p.Interp.expr_evictions > 0);
  Alcotest.(check bool) "parse evictions observed" true (p.Interp.parse_evictions > 0);
  (* evicted entries recompile cleanly *)
  match Interp.eval it "expr {1 + 1}" with
  | Ok v -> check Alcotest.string "recompiled after eviction" "2" v
  | Error e -> Alcotest.failf "eval after eviction: %s" e

(* --- interpreter semantics --- *)

let semantics_cases =
  [
    ("set x 5", "5");
    ("set x 5; set x", "5");
    ("set x a; set y b; set z $x$y", "ab");
    ("set x 1; incr x", "2");
    ("set x 1; incr x 10", "11");
    ("incr fresh", "1");
    ("proc two {} {return 2}; two", "2");
    ("proc id {v} {return $v}; id hello", "hello");
    ("proc d {a {b def}} {return $a-$b}; d 1", "1-def");
    ("proc d {a {b def}} {return $a-$b}; d 1 2", "1-2");
    ("proc v {args} {llength $args}; v a b c", "3");
    ("proc f {} {global g; set g 10}; set g 1; f; set g", "10");
    ("proc f {} {set g 10}; set g 1; f; set g", "1");
    ("set r {}; foreach {a b} {1 2 3 4} {lappend r $b$a}; set r", "21 43");
    ("set i 0; while {$i < 3} {incr i}; set i", "3");
    ("set r {}; for {set i 0} {$i<5} {incr i} {if {$i==2} continue; if {$i==4} break; lappend r $i}; set r",
      "0 1 3");
    ("catch {set novar}", "1");
    ("catch {expr {1+1}} out; set out", "2");
    ("proc f {} {error inner}; catch {f} m; set m", "inner");
    ("eval set x 7; set x", "7");
    ("string length hello", "5");
    ("string index hello end", "o");
    ("string range hello 1 3", "ell");
    ("string first ll hello", "2");
    ("string first zz hello", "-1");
    ("string repeat ab 3", "ababab");
    ("string reverse abc", "cba");
    ("string trimleft {  ab  }", "ab  ");
    ("string trimright {  ab  }", "  ab");
    ("string last l hello", "3");
    ("string last zz hello", "-1");
    ("append x a b c", "abc");
    ("set l {3 1 2}; lsort $l", "1 2 3");
    ("lsort -integer {10 9 2}", "2 9 10");
    ("lsort -unique {b a b a}", "a b");
    ("lindex {a b c} 1", "b");
    ("lindex {a b c} end", "c");
    (* out-of-range indices yield the empty string, not an engine crash *)
    ("lindex {a b c} 5", "");
    ("catch {lindex {a b} 9} r; set r", ""); (* no error to catch *)
    ("lsearch {a b c} b", "1");
    ("lsearch -exact {a* x} x", "1");
    ("lsearch {apple banana} b*", "1");
    ("linsert {a c} 1 b", "a b c");
    ("lreverse {1 2 3}", "3 2 1");
    ("lassign {1 2 3} a b; expr {$a + $b}", "3");
    ("lassign {1 2 3} a b", "3");
    ("concat {a b} {c} {} {d}", "a b c d");
    ("lrange {a b c d e} 1 3", "b c d");
    ("lrange {a b c d e} 2 end", "c d e");
    ("info exists nope", "0");
    ("set v 1; info exists v", "1");
    ("proc p {x} {return $x}; info args p", "x");
    ("if {0} {set a 1} elseif {0} {set a 2} else {set a 3}", "3");
    ("if {0} then {set a 1} else {set a 2}", "2");
    ("join [split 1:2:3 :] -", "1-2-3");
    ("llength [split {} :]", "1");
    ("switch b {a {set r 1} b {set r 2} default {set r 3}}", "2");
    ("switch z {a {set r 1} default {set r 3}}", "3");
    ("switch z {a {set r 1} b {set r 2}}", "");
    ("switch -glob ab7 {a*[0-9] {set r glob} default {set r no}}", "glob");
    ("switch b {a - b {set r fell} c {set r no}}", "fell");
    ("switch b a {set r 1} b {set r 2}", "2");
    ("string map {ab X c Y} abcab", "XYX");
    ("string map {a aa} aaa", "aaaaaa");
    ("lrepeat 3 a b", "a b a b a b");
    ("lrepeat 0 x", "");
    ("lmap x {1 2 3} {expr {$x * 2}}", "2 4 6");
    ("lmap {a b} {1 2 3 4} {expr {$a + $b}}", "3 7");
    ("lmap x {1 2 3 4} {if {$x == 2} continue; expr {$x}}", "1 3 4");
    ("set v 9; subst {v is $v and [expr {1+1}]}", "v is 9 and 2");
    (* arrays *)
    ("set a(x) 1; set a(y) 2; expr {$a(x) + $a(y)}", "3");
    ("set a(x) hello; set a(x)", "hello");
    ("set i 2; set a(2) yes; set a($i)", "yes");
    ("set i 2; set a(2) 10; expr {$a($i) * 2}", "20");
    ("set a(k1) 1; set a(k2) 2; array size a", "2");
    ("set a(k1) 1; set a(k2) 2; array names a", "k1 k2");
    ("set a(k1) 1; set a(zz) 2; array names a k*", "k1");
    ("array set a {x 1 y 2}; set a(y)", "2");
    ("set a(x) 1; array get a", "x 1");
    ("array exists a", "0");
    ("set a(x) 1; array exists a", "1");
    ("set s 5; array exists s", "0");
    ("set a(x) 1; info exists a(x)", "1");
    ("set a(x) 1; info exists a(y)", "0");
    ("set a(x) 1; info exists a", "1");
    ("set a(x) 1; unset a(x); array size a", "0");
    ("set a(x) 1; array unset a; array exists a", "0");
    ("set a(x) 1; incr a(x) 4", "5");
    ("lappend a(l) p q; set a(l)", "p q");
    ("append a(s) foo bar", "foobar");
    ("set a() empty-index; set a()", "empty-index");
    ("proc f {} {set a(x) local; array size a}; set a(x) 1; set a(y) 2; concat [f] [array size a]",
      "1 2");
    ("proc f {} {global a; set a(x)}; set a(x) fromglobal; f", "fromglobal");
  ]

let upvar_cases =
  [
    (* pass-by-name procs *)
    ("proc bump {vname} {upvar 1 $vname v; incr v}; set x 5; bump x; set x", "6");
    ("proc put2 {vname} {upvar $vname v; set v 2}; set y 0; put2 y; set y", "2");
    ("proc swap {an bn} {upvar 1 $an a $bn b; set tmp $a; set a $b; set b $tmp};\n\
      set p 1; set q 2; swap p q; list $p $q", "2 1");
    (* two levels up *)
    ("proc inner {} {upvar 2 top v; set v deep}; proc outer {} {inner};\n\
      set top shallow; outer; set top", "deep");
    (* #0 targets the globals from any depth *)
    ("proc f {} {upvar #0 g v; set v global-hit}; proc wrap {} {f}; set g x; wrap; set g",
      "global-hit");
    (* upvar'd arrays *)
    ("proc fill {aname} {upvar 1 $aname a; set a(k) filled}; fill arr; set arr(k)", "filled");
    (* uplevel evaluates in the caller's scope *)
    ("proc setter {} {uplevel 1 {set local 42}}; proc caller {} {setter; set local}; caller",
      "42");
    ("proc g {} {uplevel #0 {set gv 7}}; g; set gv", "7");
    ("set r [uplevel 1 expr 1 + 1]; set r", "2");
  ]

let regexp_cases =
  [
    ("regexp {ab+c} xabbbcy", "1");
    ("regexp {ab+c} xaby", "0");
    ("regexp {^ab} abc", "1");
    ("regexp {^bc} abc", "0");
    ("regexp {bc$} abc", "1");
    ("regexp {a.c} axc", "1");
    ("regexp {[0-9]+} {order 123 now} m; set m", "123");
    ("regexp {(\\w+)@(\\w+)} {mail dag@cornell today} all user dom; list $all $user $dom",
      "dag@cornell dag cornell");
    ("regexp {a|b} czb", "1");
    ("regexp {^(a|bc)+$} abcbca", "1");
    ("regexp {colou?r} color", "1");
    ("regexp {colou?r} colour", "1");
    ("regexp {^a{2,3}$} aa", "1");
    ("regexp {^a{2,3}$} aaaa", "0");
    ("regexp {^a{2}$} aa", "1");
    ("regexp {^\\d{3}-\\d{4}$} 555-1234", "1");
    ("regexp -nocase {hello} HeLLo", "1");
    ("regexp {[^xyz]} xxaz", "1");
    ("regexp {\\.} a.b", "1");
    ("regexp {\\.} ab", "0");
    ("regexp {(a)(b)?(c)} ac all g1 g2 g3; list $all $g1 $g2 $g3", "ac a {} c");
    ("regsub {o} foo 0", "f0o");
    ("regsub -all {o} foo 0", "f00");
    ("regsub -all {(\\w+)=(\\w+)} {a=1 b=2} {\\2:\\1}", "1:a 2:b");
    ("regsub -all {l+} {hello boll} L out; set out", "heLo boL");
    ("regsub -all {x*} abc -", "-a-b-c-");
    ("regsub {nope} abc X", "abc");
    ("set n [regsub -all {a} banana _ res]; list $n $res", "3 b_n_n_");
  ]

(* regex properties over the engine directly *)
module Regex = Tscript.Regex

let escape_for_regex s =
  String.concat ""
    (List.map
       (fun c ->
         match c with
         | '\\' | '.' | '*' | '+' | '?' | '[' | ']' | '(' | ')' | '{' | '}' | '^' | '$' | '|' ->
           Printf.sprintf "\\%c" c
         | c -> String.make 1 c)
       (List.init (String.length s) (String.get s)))

let test_regex_escaped_literal_matches_self =
  qtest ~count:300 "escaped literals match themselves"
    QCheck2.Gen.(string_size ~gen:printable (1 -- 12))
    (fun s ->
      match Regex.compile (escape_for_regex s) with
      | Ok re -> Regex.matches re s
      | Error _ -> false)

let test_regex_identity_replace =
  qtest ~count:300 "replacing every match with & is the identity"
    QCheck2.Gen.(string_size ~gen:(char_range 'a' 'e') (0 -- 20))
    (fun s ->
      match Regex.compile "[a-c]+" with
      | Error _ -> false
      | Ok re ->
        let out, _ = Regex.replace re ~all:true ~template:"&" s in
        out = s)

let test_regex_match_bounds =
  qtest ~count:300 "match bounds index the subject correctly"
    QCheck2.Gen.(string_size ~gen:(char_range 'a' 'f') (0 -- 24))
    (fun s ->
      match Regex.compile "b(c+)d" with
      | Error _ -> false
      | Ok re -> (
        match Regex.search re s with
        | None -> true
        | Some r ->
          let text, a, b = r.Regex.whole in
          a >= 0 && b <= String.length s && String.sub s a (b - a) = text
          && (match r.Regex.groups.(0) with
             | Some (g, ga, gb) -> String.sub s ga (gb - ga) = g && g <> "" && String.for_all (fun c -> c = 'c') g
             | None -> false)))

let test_regexp_malformed () =
  List.iter
    (fun src -> ignore (error src))
    [
      "regexp {(} x"; "regexp {[a-} x"; "regexp {a{3,1}} x"; "regexp {*} x";
      "regsub {(} x y";
    ]

let test_array_scalar_collision () =
  ignore (error "set s 5; set s(x) 1");
  ignore (error "set a(x) 1; set a 5");
  ignore (error "set a(x) 1; puts $a")

let scoping_cases =
  [
    (* locals do not leak out of procs *)
    ("proc f {} {set hidden 1}; f; info exists hidden", "0");
    (* arguments shadow globals *)
    ("set x global; proc f {x} {set x}; f arg", "arg");
    (* recursion keeps frames separate *)
    ("proc down {n} {if {$n == 0} {return 0}; set mine $n; down [expr {$n - 1}]; set mine};\n\
      down 3", "3");
    (* catch inside a proc traps errors from deeper procs *)
    ("proc deep {} {error bottom}; proc mid {} {deep}; proc top {} {catch {mid} e; set e}; top",
      "bottom");
    (* return propagates only one level *)
    ("proc inner {} {return early; set never 1}; proc outer {} {inner; return late}; outer",
      "late");
    (* break crosses eval but is caught by the loop *)
    ("set n 0; foreach x {1 2 3} {incr n; if {$x == 2} {eval break}}; set n", "2");
    (* proc redefinition replaces *)
    ("proc f {} {return a}; proc f {} {return b}; f", "b");
    (* variable traces of loops: foreach leaves the variable set *)
    ("foreach v {1 2 3} {}; set v", "3");
    (* nested command substitution inside braces is deferred *)
    ("proc f {} {return {[not evaluated]}}; f", "[not evaluated]");
    (* expr on proc results *)
    ("proc two {} {return 2}; expr {[two] ** [two]}", "4.0");
  ]

let test_unknown_command () =
  let e = error "definitely_not_a_command 1 2" in
  Alcotest.(check bool) "mentions name" true
    (Option.is_some
       (String.index_opt e 'd')
    && String.length e > 0)

let test_wrong_arity_message () =
  let e = error "proc f {a b} {}; f 1" in
  Alcotest.(check bool) "usage message" true
    (String.length e > 0
    && Option.is_some (String.index_opt e '#'))

let test_recursion_depth_limited () =
  let e = error "proc loop {} {loop}; loop" in
  Alcotest.(check bool) "depth error" true (String.length e > 0)

let test_break_outside_loop () = ignore (error "break")
let test_continue_outside_loop () = ignore (error "continue")

let test_return_at_toplevel () = check Alcotest.string "return value" "42" (ok "return 42")

let test_host_command () =
  let it = Interp.create () in
  Interp.register it "double" (fun _ args ->
      match args with
      | [ v ] -> (
        match Value.int_of v with
        | Some i -> Value.of_int (2 * i)
        | None -> raise (Interp.Error_exc "not a number"))
      | _ -> raise (Interp.Error_exc "wrong # args"));
  (match Interp.eval it "double 21" with
  | Ok v -> check Alcotest.string "host result" "42" v
  | Error e -> Alcotest.failf "host command failed: %s" e);
  (match Interp.eval it "catch {double x} m; set m" with
  | Ok v -> check Alcotest.string "host error catchable" "not a number" v
  | Error e -> Alcotest.failf "catch failed: %s" e);
  Interp.unregister it "double";
  match Interp.eval it "double 2" with
  | Ok _ -> Alcotest.fail "unregistered command still callable"
  | Error _ -> ()

let test_global_vars_api () =
  let it = Interp.create () in
  Interp.set_var it "x" "10";
  (match Interp.eval it "expr {$x + 1}" with
  | Ok v -> check Alcotest.string "var visible" "11" v
  | Error e -> Alcotest.failf "%s" e);
  check Alcotest.(option string) "get_var" (Some "10") (Interp.get_var_opt it "x");
  Interp.unset_var it "x";
  check Alcotest.(option string) "unset" None (Interp.get_var_opt it "x")

let test_output_capture () =
  let it = Interp.create () in
  ignore (Interp.eval it "puts one; puts -nonewline two");
  check Alcotest.string "output" "one\ntwo" (Interp.take_output it);
  check Alcotest.string "cleared" "" (Interp.take_output it)

let test_output_redirect () =
  let it = Interp.create () in
  let sink = Buffer.create 16 in
  Interp.set_output it (Buffer.add_string sink);
  ignore (Interp.eval it "puts routed");
  check Alcotest.string "redirected" "routed\n" (Buffer.contents sink);
  check Alcotest.string "internal buffer untouched" "" (Interp.take_output it)

let test_steps_counted () =
  let it = Interp.create () in
  ignore (Interp.eval it "set a 1; set b 2; set c 3");
  Alcotest.(check bool) "steps > 0" true (Interp.steps_used it >= 3)

let test_step_limit_aborts () =
  let it = Interp.create ~step_limit:50 () in
  match Interp.eval it "while {1} {set x 1}" with
  | exception Interp.Resource_exhausted -> ()
  | Ok _ | Error _ -> Alcotest.fail "expected Resource_exhausted"

let test_step_limit_not_catchable () =
  let it = Interp.create ~step_limit:50 () in
  match Interp.eval it "catch {while {1} {set x 1}}; set done 1" with
  | exception Interp.Resource_exhausted -> ()
  | Ok _ | Error _ -> Alcotest.fail "catch must not trap exhaustion"

let test_empty_loop_metered () =
  let it = Interp.create ~step_limit:200 () in
  match Interp.eval it "while {1} {}" with
  | exception Interp.Resource_exhausted -> ()
  | Ok _ | Error _ -> Alcotest.fail "empty loop must still consume budget"

let test_call_api () =
  let it = Interp.create () in
  ignore (Interp.eval it "proc add {a b} {expr {$a + $b}}");
  check Alcotest.string "call proc" "7" (Interp.call it "add" [ "3"; "4" ])

(* --- strutil --- *)

let test_glob () =
  List.iter
    (fun (p, s, want) ->
      Alcotest.(check bool) (p ^ " ~ " ^ s) want (Strutil.glob_match ~pattern:p s))
    [
      ("*", "", true); ("*", "abc", true); ("a*c", "abc", true); ("a*c", "ac", true);
      ("a*c", "abd", false); ("?", "a", true); ("?", "", false); ("a?c", "abc", true);
      ("[a-c]x", "bx", true); ("[a-c]x", "dx", false); ("\\*", "*", true); ("\\*", "a", false);
      ("a[bc]d", "acd", true); ("**a", "xxa", true);
    ]

let test_format_subset () =
  let fmt f args =
    match Strutil.format f args with Ok s -> s | Error e -> Alcotest.failf "format: %s" e
  in
  check Alcotest.string "width" "  7" (fmt "%3d" [ "7" ]);
  check Alcotest.string "zero pad" "007" (fmt "%03d" [ "7" ]);
  check Alcotest.string "neg zero pad" "-07" (fmt "%03d" [ "-7" ]);
  check Alcotest.string "left" "7  |" (fmt "%-3d|" [ "7" ]);
  check Alcotest.string "hex" "ff" (fmt "%x" [ "255" ]);
  check Alcotest.string "precision" "3.14" (fmt "%.2f" [ "3.14159" ]);
  check Alcotest.string "string prec" "ab" (fmt "%.2s" [ "abcd" ]);
  check Alcotest.string "percent" "100%" (fmt "100%%" []);
  Alcotest.(check bool) "missing arg is error" true (Result.is_error (Strutil.format "%d" []))

let () =
  Alcotest.run "tscript"
    [
      ( "values",
        [
          test_list_roundtrip;
          test_list_roundtrip_binary;
          Alcotest.test_case "quoting" `Quick test_list_quoting;
          Alcotest.test_case "malformed lists" `Quick test_list_malformed;
          Alcotest.test_case "truthiness" `Quick test_truthy;
          Alcotest.test_case "float rendering" `Quick test_of_float;
        ] );
      ( "parser",
        [
          Alcotest.test_case "comments" `Quick test_parse_comments;
          Alcotest.test_case "line continuation" `Quick test_parse_continuation;
          Alcotest.test_case "nested brackets" `Quick test_parse_nested_brackets;
          Alcotest.test_case "escapes" `Quick test_parse_escapes;
          Alcotest.test_case "errors" `Quick test_parse_errors;
          Alcotest.test_case "empty" `Quick test_parse_empty;
        ] );
      ("expr", expect_cases "expr" expr_cases
        @ [
            Alcotest.test_case "division by zero" `Quick test_expr_division_by_zero;
            Alcotest.test_case "malformed" `Quick test_expr_malformed;
            Alcotest.test_case "short-circuit side effects" `Quick
              test_expr_short_circuit_effects;
            test_expr_fuzz_vs_reference;
          ]);
      ("semantics", expect_cases "semantics" semantics_cases
        @ [
            Alcotest.test_case "unknown command" `Quick test_unknown_command;
            Alcotest.test_case "arity message" `Quick test_wrong_arity_message;
            Alcotest.test_case "recursion depth" `Quick test_recursion_depth_limited;
            Alcotest.test_case "break outside loop" `Quick test_break_outside_loop;
            Alcotest.test_case "continue outside loop" `Quick test_continue_outside_loop;
            Alcotest.test_case "toplevel return" `Quick test_return_at_toplevel;
            Alcotest.test_case "array/scalar collision" `Quick test_array_scalar_collision;
          ]);
      ("scoping", expect_cases "scoping" scoping_cases);
      ("upvar", expect_cases "upvar" upvar_cases);
      ("regexp", expect_cases "regexp" regexp_cases
        @ [
            Alcotest.test_case "malformed patterns" `Quick test_regexp_malformed;
            test_regex_escaped_literal_matches_self;
            test_regex_identity_replace;
            test_regex_match_bounds;
          ]);
      ( "host-api",
        [
          Alcotest.test_case "host command" `Quick test_host_command;
          Alcotest.test_case "global vars" `Quick test_global_vars_api;
          Alcotest.test_case "output capture" `Quick test_output_capture;
          Alcotest.test_case "output redirect" `Quick test_output_redirect;
          Alcotest.test_case "call" `Quick test_call_api;
        ] );
      ( "metering",
        [
          Alcotest.test_case "steps counted" `Quick test_steps_counted;
          Alcotest.test_case "limit aborts" `Quick test_step_limit_aborts;
          Alcotest.test_case "limit uncatchable" `Quick test_step_limit_not_catchable;
          Alcotest.test_case "empty loop metered" `Quick test_empty_loop_metered;
        ] );
      ( "caches",
        [
          Alcotest.test_case "profile counters" `Quick test_profile_counters;
          Alcotest.test_case "shared across interpreters" `Quick
            test_shared_caches_across_interpreters;
          Alcotest.test_case "evictions counted" `Quick test_cache_eviction_counted;
        ] );
      ( "strutil",
        [
          Alcotest.test_case "glob match" `Quick test_glob;
          Alcotest.test_case "format subset" `Quick test_format_subset;
        ] );
    ]

(* Shape tests for the experiment suite: each experiment's headline claim
   from the paper must hold on reduced-size runs, so a regression in any
   substrate that would flip a conclusion fails CI. *)

module E1 = Experiments.E1_bandwidth
module E2 = Experiments.E2_flooding
module E3 = Experiments.E3_folders
module E4 = Experiments.E4_cash
module E5 = Experiments.E5_broker
module E6 = Experiments.E6_guards
module E7 = Experiments.E7_transports
module E8 = Experiments.E8_apps
module E9 = Experiments.E9_codecache
module E10 = Experiments.E10_chaos

let check = Alcotest.check

let test_e1_shape () =
  let rows =
    E1.run
      ~params:
        { records = 400; record_bytes = 100; hops = 3; selectivities = [ 0.01; 0.5; 1.0 ] }
      ()
  in
  match rows with
  | [ low; mid; full ] ->
    Alcotest.(check bool) "agent wins big at 1%" true (low.E1.ratio > 10.0);
    Alcotest.(check bool) "agent still wins at 50%" true (mid.E1.ratio > 1.0);
    Alcotest.(check bool) "agent loses at 100% (code overhead)" true (full.E1.ratio < 1.05);
    Alcotest.(check bool) "monotone" true (low.E1.ratio > mid.E1.ratio && mid.E1.ratio > full.E1.ratio)
  | _ -> Alcotest.fail "unexpected row count"

let test_e1_wan_shape () =
  let rows = E1.run_wan ~selectivities:[ 0.01; 0.5 ] () in
  match rows with
  | [ low; mid ] ->
    Alcotest.(check bool) "agent much faster over the WAN at 1%" true
      (low.E1.agent_time *. 4.0 < low.E1.cs_time);
    Alcotest.(check bool) "still faster at 50%" true (mid.E1.agent_time < mid.E1.cs_time);
    Alcotest.(check bool) "byte ratio consistent with LAN run" true (low.E1.ratio > 10.0)
  | _ -> Alcotest.fail "unexpected row count"

let test_e2_shape () =
  let rows = E2.run () in
  List.iter
    (fun (r : E2.row) -> check Alcotest.int (r.E2.topology ^ " full coverage") r.E2.sites r.E2.coverage)
    rows;
  (* pair up naive/diffusion per topology *)
  let naive = List.filter (fun r -> r.E2.method_ = "naive") rows in
  let diff = List.filter (fun r -> r.E2.method_ = "diffusion") rows in
  List.iter2
    (fun (n : E2.row) (d : E2.row) ->
      check Alcotest.string "same topology" n.E2.topology d.E2.topology;
      check Alcotest.int "diffusion executes once per site" d.E2.sites d.E2.executions;
      Alcotest.(check bool) "naive explodes" true (n.E2.executions > 3 * d.E2.executions);
      Alcotest.(check bool) "naive moves more bytes" true (n.E2.byte_hops > d.E2.byte_hops))
    naive diff

let test_e3_shape () =
  let rows = E3.run ~sizes:[ 512; 4096 ] () in
  match rows with
  | [ small; large ] ->
    Alcotest.(check bool) "cabinet lookups beat folder scans" true
      (small.E3.lookup_speedup > 2.0);
    Alcotest.(check bool) "speedup grows with n" true
      (large.E3.lookup_speedup > small.E3.lookup_speedup);
    Alcotest.(check bool) "cabinets cost more to move (small)" true (small.E3.move_penalty > 1.0);
    Alcotest.(check bool) "cabinets cost more to move (large)" true (large.E3.move_penalty > 1.0)
  | _ -> Alcotest.fail "unexpected row count"

let test_e4a_shape () =
  let rows = E4.run_a ~purchases:200 ~attack_rates:[ 0.0; 0.2 ] () in
  match rows with
  | [ clean; attacked ] ->
    check Alcotest.int "no losses without attacks" 0 clean.E4.naive_loss;
    check Alcotest.int "validator never loses" 0 attacked.E4.validating_loss;
    Alcotest.(check bool) "naive merchant bleeds" true (attacked.E4.naive_loss > 0);
    Alcotest.(check bool) "every attack detected" true
      (attacked.E4.detected * 100 = attacked.E4.naive_loss)
  | _ -> Alcotest.fail "unexpected row count"

let test_e4b_shape () =
  let rows = E4.run_b ~trials:3 () in
  List.iter
    (fun (r : E4.row_b) ->
      check Alcotest.int
        (Printf.sprintf "court always right (%s/%s)" r.E4.customer r.E4.merchant)
        r.E4.trials r.E4.correct_verdicts)
    rows

let test_e4c_shape () =
  let rows = E4.run_c ~fuel_levels:[ 0; 10; 50 ] () in
  let damages = List.map (fun r -> r.E4.damage) rows in
  (match damages with
  | [ d0; d10; d50 ] ->
    Alcotest.(check bool) "damage grows with fuel" true (d0 < d10 && d10 < d50);
    (* proportionality: 5x the extra fuel, about 5x the extra damage *)
    let extra10 = d10 - d0 and extra50 = d50 - d0 in
    Alcotest.(check bool) "roughly linear" true
      (float_of_int extra50 /. float_of_int extra10 > 4.0
      && float_of_int extra50 /. float_of_int extra10 < 6.0)
  | _ -> Alcotest.fail "unexpected row count");
  List.iter
    (fun (r : E4.row_c) ->
      Alcotest.(check bool) "runaway never survives" false r.E4.survived)
    rows

let test_e5_shape () =
  let params =
    {
      E5.providers = [ 4.0; 2.0; 1.0; 1.0 ];
      jobs = 80;
      mean_interarrival = 0.3;
      work_per_job = 2.0;
      report_period = 0.25;
    }
  in
  let rows = E5.run ~params () in
  let find name = List.find (fun r -> r.E5.policy = name) rows in
  let random = find "random" and ll = find "least-loaded" in
  check Alcotest.int "all jobs complete (random)" 80 random.E5.jobs;
  check Alcotest.int "all jobs complete (ll)" 80 ll.E5.jobs;
  Alcotest.(check bool) "load-awareness wins on response time" true
    (ll.E5.mean_response < random.E5.mean_response);
  Alcotest.(check bool) "and on makespan" true (ll.E5.makespan <= random.E5.makespan)

let test_e6_shape () =
  let params =
    {
      E6.trials = 8;
      lambdas = [ 0.0; 0.02 ];
      work_per_hop = 1.0;
      mean_downtime = 8.0;
      horizon = 400.0;
    }
  in
  let rows = E6.run ~params () in
  List.iter
    (fun (r : E6.row) ->
      if r.E6.lambda = 0.0 then begin
        check Alcotest.int (r.E6.shape ^ " guarded all done") r.E6.trials r.E6.guarded_completed;
        check Alcotest.int (r.E6.shape ^ " unguarded all done") r.E6.trials
          r.E6.unguarded_completed
      end
      else begin
        Alcotest.(check bool)
          (r.E6.shape ^ " guards never lose to unguarded")
          true
          (r.E6.guarded_completed >= r.E6.unguarded_completed);
        Alcotest.(check bool) (r.E6.shape ^ " guards help somewhere") true
          (r.E6.guarded_completed > 0)
      end)
    rows;
  (* across all shapes at the high crash rate, guards must strictly win *)
  let high = List.filter (fun r -> r.E6.lambda > 0.0) rows in
  let g = List.fold_left (fun a r -> a + r.E6.guarded_completed) 0 high in
  let u = List.fold_left (fun a r -> a + r.E6.unguarded_completed) 0 high in
  Alcotest.(check bool) "guards strictly better overall" true (g > u)

let test_e7_shape () =
  let cost = E7.run_cost ~hops:3 ~payloads:[ 1024 ] () in
  let find name = List.find (fun r -> r.E7.transport = name) cost in
  let rsh = find "rsh" and tcp = find "tcp" and horus = find "horus" in
  Alcotest.(check bool) "rsh slowest" true
    (rsh.E7.journey_time > tcp.E7.journey_time && rsh.E7.journey_time > horus.E7.journey_time);
  Alcotest.(check bool) "rsh heaviest" true (rsh.E7.bytes > horus.E7.bytes);
  Alcotest.(check bool) "horus heavier than tcp" true (horus.E7.bytes > tcp.E7.bytes);
  let rel = E7.run_reliability ~trials:4 () in
  let findr name = List.find (fun r -> r.E7.r_transport = name) rel in
  check Alcotest.int "horus always delivers" 4 (findr "horus").E7.delivered;
  check Alcotest.int "tcp loses all" 0 (findr "tcp").E7.delivered;
  check Alcotest.int "rsh loses all" 0 (findr "rsh").E7.delivered

let test_e7c_shape () =
  let rows = E7.run_loss ~agents:30 ~loss_rates:[ 0.0; 0.3 ] () in
  let find tr p =
    List.find (fun r -> r.E7.l_transport = tr && r.E7.loss_rate = p) rows
  in
  check Alcotest.int "horus full delivery at 0" 30 (find "horus" 0.0).E7.arrived;
  check Alcotest.int "horus full delivery at 0.3" 30 (find "horus" 0.3).E7.arrived;
  Alcotest.(check bool) "tcp decays under loss" true ((find "tcp" 0.3).E7.arrived < 30);
  Alcotest.(check bool) "horus pays more bytes under loss" true
    ((find "horus" 0.3).E7.extra_bytes > (find "horus" 0.0).E7.extra_bytes)

let test_e8_shape () =
  let rows = E8.run_stormcast ~stations:5 ~hours:48 () in
  match rows with
  | [ agent; cs ] ->
    check Alcotest.string "agent row" "agent" agent.E8.architecture;
    Alcotest.(check bool) "identical accuracy" true
      (agent.E8.hit_rate = cs.E8.hit_rate
      && agent.E8.false_alarm_rate = cs.E8.false_alarm_rate);
    Alcotest.(check bool) "agent moves fewer bytes" true (agent.E8.bytes_moved < cs.E8.bytes_moved);
    Alcotest.(check bool) "agent moves far fewer readings" true
      (agent.E8.readings_moved * 4 < cs.E8.readings_moved)
  | _ -> Alcotest.fail "unexpected row count"

let test_e8c_shape () =
  let rows = E8.run_latency ~stations:5 ~hours:48 () in
  let find name = List.find (fun r -> r.E8.l_architecture = name) rows in
  let push = find "resident monitors (push)" in
  let tour = find "roaming collector (tour)" in
  check Alcotest.int "same detections" tour.E8.detections push.E8.detections;
  Alcotest.(check bool) "push detects orders of magnitude faster" true
    (push.E8.mean_detection_latency *. 100.0 < tour.E8.mean_detection_latency);
  Alcotest.(check bool) "both detected something" true (push.E8.detections > 0)

let test_e9_shape () =
  let rows = E9.run () in
  let find shape transport cached =
    List.find
      (fun r -> r.E9.shape = shape && r.E9.transport = transport && r.E9.cached = cached)
      rows
  in
  List.iter
    (fun transport ->
      let cold = find "revisit-4x3" transport false in
      let warm = find "revisit-4x3" transport true in
      Alcotest.(check bool)
        (transport ^ " warm revisits ship fewer bytes per hop")
        true
        (warm.E9.bytes_per_hop < cold.E9.bytes_per_hop);
      Alcotest.(check bool)
        (transport ^ " warm laps hit the cache")
        true (warm.E9.hits > warm.E9.misses);
      check Alcotest.int (transport ^ " cold runs never touch the cache") 0
        (cold.E9.hits + cold.E9.misses))
    [ "rsh"; "tcp"; "horus" ];
  (* all-first-visit ring: hits stay rare, fetches do the resolving *)
  let ring_warm = find "ring-8" "tcp" true in
  Alcotest.(check bool) "first visits miss" true (ring_warm.E9.misses >= ring_warm.E9.hits)

let test_e10_shape () =
  (* calm vs stormy cell: guards must not lose availability as partitions
     arrive, while the unguarded baseline must pay for them *)
  let rows = E10.run ~params:{ E10.seeds = 4; rates = [ 0.0; 0.05 ] } () in
  let calm = List.find (fun r -> r.E10.partition_rate = 0.0) rows in
  let stormy = List.find (fun r -> r.E10.partition_rate = 0.05) rows in
  Alcotest.(check bool) "guarded stays available under partitions" true
    (stormy.E10.guarded_frac >= 0.85);
  Alcotest.(check bool) "unguarded degrades" true
    (stormy.E10.unguarded_frac < calm.E10.unguarded_frac);
  Alcotest.(check bool) "guards beat the baseline when it matters" true
    (stormy.E10.guarded_frac > stormy.E10.unguarded_frac);
  Alcotest.(check bool) "availability is bought with relaunches" true
    (stormy.E10.mean_relaunches > calm.E10.mean_relaunches)

let test_registry_complete () =
  check Alcotest.int "ten experiments + ablations" 11 (List.length Experiments.Registry.all);
  List.iteri
    (fun i e ->
      if i < 10 then
        check Alcotest.string "ids in order" (Printf.sprintf "e%d" (i + 1))
          e.Experiments.Registry.id)
    Experiments.Registry.all;
  Alcotest.(check bool) "find works" true (Experiments.Registry.find "e4" <> None);
  Alcotest.(check bool) "find case-insensitive" true (Experiments.Registry.find "E4" <> None);
  Alcotest.(check bool) "unknown id" true (Experiments.Registry.find "e99" = None)

let test_ablation_a4_shape () =
  (* more shipped code, smaller advantage *)
  let rows = Experiments.Ablations.run_a4 () in
  let ratios = List.map (fun r -> r.Experiments.Ablations.ratio) rows in
  let rec decreasing = function
    | a :: (b :: _ as rest) -> a > b && decreasing rest
    | _ -> true
  in
  Alcotest.(check bool) "ratio strictly decreases with code size" true (decreasing ratios);
  Alcotest.(check bool) "still >1 at 16KB of code" true (List.nth ratios 3 > 1.0)

let test_ablation_a3_shape () =
  let rows = Experiments.Ablations.run_a3 () in
  let on = List.find (fun r -> r.Experiments.Ablations.group_on) rows in
  let off = List.find (fun r -> not r.Experiments.Ablations.group_on) rows in
  Alcotest.(check bool) "group costs background bytes" true
    (on.Experiments.Ablations.idle_bytes_per_s > 100.0
    && off.Experiments.Ablations.idle_bytes_per_s = 0.0);
  Alcotest.(check bool) "group aborts dead-site retries faster" true
    (on.Experiments.Ablations.abort_latency < off.Experiments.Ablations.abort_latency)

let test_ablation_a5_shape () =
  let rows = Experiments.Ablations.run_a5 ~chain_lengths:[ 0; 2; 4 ] () in
  List.iter
    (fun (r : Experiments.Ablations.a5_row) ->
      check Alcotest.int "hops equal overlay distance" r.Experiments.Ablations.chain_length
        r.Experiments.Ablations.broker_hops)
    rows;
  let lats = List.map (fun r -> r.Experiments.Ablations.lookup_latency) rows in
  let rec increasing = function
    | a :: (b :: _ as rest) -> a < b && increasing rest
    | _ -> true
  in
  Alcotest.(check bool) "latency grows with distance" true (increasing lats)

let test_e10_rows_identical_across_jobs () =
  (* the rate x guards x seed grid is flattened into one pool; regrouping
     must reproduce the serial rows exactly, floats and all *)
  let params = { E10.seeds = 2; rates = [ 0.0; 0.05 ] } in
  let serial = E10.run ~params ~jobs:1 () in
  let parallel = E10.run ~params ~jobs:4 () in
  Alcotest.(check bool) "grid fan-out reproduces serial rows" true (serial = parallel)

let test_registry_run_byte_identical_across_jobs () =
  (* parallel table regeneration must reproduce the serial byte stream:
     each task prints into a private buffer and buffers are emitted in
     entry order.  E3 is deliberately outside this check: its table reports
     host wall-clock times (Sys.time), which differ between any two runs,
     serial or parallel — the byte-identity contract covers
     simulation-derived output only. *)
  let entries = List.filter_map Experiments.Registry.find [ "e2"; "e4" ] in
  check Alcotest.int "both entries found" 2 (List.length entries);
  let render jobs =
    let buf = Buffer.create 4096 in
    let fmt = Format.formatter_of_buffer buf in
    Experiments.Registry.run ~jobs entries fmt;
    Format.pp_print_flush fmt ();
    Buffer.contents buf
  in
  let serial = render 1 in
  Alcotest.(check bool) "tables nonempty" true (String.length serial > 0);
  check Alcotest.string "jobs=4 matches jobs=1" serial (render 4)

let () =
  Alcotest.run "experiments"
    [
      ( "shapes",
        [
          Alcotest.test_case "e1 bandwidth" `Slow test_e1_shape;
          Alcotest.test_case "e1 wan" `Slow test_e1_wan_shape;
          Alcotest.test_case "e2 flooding" `Slow test_e2_shape;
          Alcotest.test_case "e3 folders" `Slow test_e3_shape;
          Alcotest.test_case "e4a validation" `Quick test_e4a_shape;
          Alcotest.test_case "e4b court" `Slow test_e4b_shape;
          Alcotest.test_case "e4c fuel" `Quick test_e4c_shape;
          Alcotest.test_case "e5 broker" `Slow test_e5_shape;
          Alcotest.test_case "e6 guards" `Slow test_e6_shape;
          Alcotest.test_case "e7 transports" `Slow test_e7_shape;
          Alcotest.test_case "e7c lossy links" `Slow test_e7c_shape;
          Alcotest.test_case "e8 stormcast" `Slow test_e8_shape;
          Alcotest.test_case "e8c detection latency" `Slow test_e8c_shape;
          Alcotest.test_case "e9 code cache" `Slow test_e9_shape;
          Alcotest.test_case "e10 chaos availability" `Slow test_e10_shape;
        ] );
      ( "ablations",
        [
          Alcotest.test_case "a3 horus group" `Slow test_ablation_a3_shape;
          Alcotest.test_case "a4 code size" `Slow test_ablation_a4_shape;
          Alcotest.test_case "a5 routed lookup" `Quick test_ablation_a5_shape;
        ] );
      ("registry", [ Alcotest.test_case "complete" `Quick test_registry_complete ]);
      ( "determinism",
        [
          Alcotest.test_case "e10 rows across jobs" `Slow
            test_e10_rows_identical_across_jobs;
          Alcotest.test_case "registry tables across jobs" `Slow
            test_registry_run_byte_identical_across_jobs;
        ] );
    ]

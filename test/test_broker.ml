(* Tests for the scheduling substrate (paper §4/§6): policies, matchmaker
   brokers, load monitors, queueing providers, tickets, and protected-agent
   brokering. *)

module Policy = Broker.Policy
module Matchmaker = Broker.Matchmaker
module Provider = Broker.Provider
module Ticket = Broker.Ticket
module Protect = Broker.Protect
module Kernel = Tacoma_core.Kernel
module Briefcase = Tacoma_core.Briefcase
module Net = Netsim.Net
module Topology = Netsim.Topology
module Rng = Tacoma_util.Rng

let check = Alcotest.check

(* --- policies --- *)

let cand ?(capacity = 1.0) ?(load = 0.0) provider =
  { Policy.provider; host = provider ^ "-host"; capacity; load; report_age = 0.0 }

let test_policy_least_loaded () =
  let cs = [ cand ~load:5.0 "a"; cand ~load:1.0 "b"; cand ~load:3.0 "c" ] in
  let rng = Rng.create 1L in
  match Policy.choose Policy.Least_loaded ~rng ~rr_counter:(ref 0) cs with
  | Some c -> check Alcotest.string "picks b" "b" c.Policy.provider
  | None -> Alcotest.fail "no choice"

let test_policy_weighted () =
  (* a: load 4 cap 8 -> 0.5 ; b: load 1 cap 1 -> 1.0 *)
  let cs = [ cand ~load:4.0 ~capacity:8.0 "a"; cand ~load:1.0 ~capacity:1.0 "b" ] in
  let rng = Rng.create 1L in
  match Policy.choose Policy.Weighted ~rng ~rr_counter:(ref 0) cs with
  | Some c -> check Alcotest.string "picks a" "a" c.Policy.provider
  | None -> Alcotest.fail "no choice"

let test_policy_round_robin_cycles () =
  let cs = [ cand "a"; cand "b"; cand "c" ] in
  let rng = Rng.create 1L in
  let counter = ref 0 in
  let picks =
    List.init 6 (fun _ ->
        (Option.get (Policy.choose Policy.Round_robin ~rng ~rr_counter:counter cs))
          .Policy.provider)
  in
  check Alcotest.(list string) "cycles" [ "a"; "b"; "c"; "a"; "b"; "c" ] picks

let test_policy_empty () =
  let rng = Rng.create 1L in
  List.iter
    (fun p ->
      check Alcotest.bool "none on empty" true
        (Policy.choose p ~rng ~rr_counter:(ref 0) [] = None))
    Policy.all

let test_policy_names_roundtrip () =
  List.iter
    (fun p ->
      check Alcotest.bool (Policy.name p) true (Policy.of_string (Policy.name p) = Some p))
    Policy.all

(* --- matchmaker + providers over the network --- *)

let mk_world ?(n = 5) () =
  let net = Net.create (Topology.full_mesh n) in
  let k = Kernel.create net in
  (net, k)

let test_register_and_lookup () =
  let net, k = mk_world () in
  let b = Matchmaker.install k ~site:0 ~name:"broker" () in
  let p1 = Provider.install k ~site:1 ~name:"p1" ~service:"compute" ~capacity:2.0 () in
  let p2 = Provider.install k ~site:2 ~name:"p2" ~service:"compute" ~capacity:1.0 () in
  let _ = Provider.install k ~site:3 ~name:"q" ~service:"storage" ~capacity:1.0 () in
  Matchmaker.register_provider b p1;
  Matchmaker.register_provider b p2;
  Net.run net;
  check Alcotest.int "two compute candidates" 2
    (List.length (Matchmaker.candidates b ~service:"compute"));
  check Alcotest.int "no storage registered here" 0
    (List.length (Matchmaker.candidates b ~service:"storage"));
  match Matchmaker.lookup b ~service:"compute" () with
  | Some c -> Alcotest.(check bool) "found" true (List.mem c.Policy.provider [ "p1"; "p2" ])
  | None -> Alcotest.fail "lookup failed"

let test_lookup_via_meet () =
  let net, k = mk_world () in
  let b = Matchmaker.install k ~site:0 ~name:"broker" () in
  let p = Provider.install k ~site:1 ~name:"p1" ~service:"compute" ~capacity:1.0 () in
  Matchmaker.register_provider b p;
  let bc = Briefcase.create () in
  Briefcase.set bc "OP" "lookup";
  Briefcase.set bc "SERVICE" "compute";
  Kernel.launch k ~site:0 ~contact:"broker" bc;
  Net.run net;
  check Alcotest.(option string) "status" (Some "ok") (Briefcase.find_opt bc "STATUS");
  check Alcotest.(option string) "provider" (Some "p1") (Briefcase.find_opt bc "PROVIDER");
  check Alcotest.(option string) "host" (Some "mesh-1") (Briefcase.find_opt bc "PROVIDER-HOST")

let test_lookup_no_provider () =
  let net, k = mk_world () in
  ignore (Matchmaker.install k ~site:0 ~name:"broker" ());
  let bc = Briefcase.create () in
  Briefcase.set bc "OP" "lookup";
  Briefcase.set bc "SERVICE" "nothing";
  Kernel.launch k ~site:0 ~contact:"broker" bc;
  Net.run net;
  check Alcotest.(option string) "status" (Some "no-provider") (Briefcase.find_opt bc "STATUS")

let test_lookup_policy_override_via_folder () =
  let net, k = mk_world () in
  let b = Matchmaker.install k ~site:0 ~name:"broker" ~policy:Policy.Least_loaded () in
  (* two providers with distinct loads: least-loaded picks p-light, but a
     POLICY folder can force round-robin for one request *)
  let heavy = Provider.install k ~site:1 ~name:"p-heavy" ~service:"compute" ~capacity:1.0 () in
  let light = Provider.install k ~site:2 ~name:"p-light" ~service:"compute" ~capacity:1.0 () in
  Matchmaker.register_provider b heavy;
  Matchmaker.register_provider b light;
  (* put load on p-heavy *)
  let bc = Briefcase.create () in
  Briefcase.set bc "WORK" "100.0";
  Kernel.launch k ~site:1 ~contact:"p-heavy" bc;
  Provider.start_load_monitor k heavy ~brokers:[ (0, "broker") ] ~period:0.2;
  Net.run ~until:1.0 net;
  (match Matchmaker.lookup b ~service:"compute" () with
  | Some c -> check Alcotest.string "default policy avoids load" "p-light" c.Policy.provider
  | None -> Alcotest.fail "no provider");
  let q = Briefcase.create () in
  Briefcase.set q "OP" "lookup";
  Briefcase.set q "SERVICE" "compute";
  Briefcase.set q "POLICY" "round-robin";
  Kernel.launch k ~site:0 ~contact:"broker" q;
  Net.run ~until:2.0 net;
  check Alcotest.(option string) "override honoured" (Some "ok") (Briefcase.find_opt q "STATUS");
  check Alcotest.(option string) "rr picks first alphabetically" (Some "p-heavy")
    (Briefcase.find_opt q "PROVIDER")

let test_load_monitor_updates_broker () =
  let net, k = mk_world () in
  let b = Matchmaker.install k ~site:0 ~name:"broker" () in
  let p = Provider.install k ~site:1 ~name:"p1" ~service:"compute" ~capacity:1.0 () in
  Provider.start_load_monitor k p ~brokers:[ (0, "broker") ] ~period:0.5;
  (* enqueue two jobs directly *)
  let submit () =
    let bc = Briefcase.create () in
    Briefcase.set bc "WORK" "100.0";
    Briefcase.set bc "JOB" "j";
    Kernel.launch k ~site:1 ~contact:"p1" bc
  in
  submit ();
  submit ();
  Net.run ~until:3.0 net;
  match Matchmaker.candidates b ~service:"compute" with
  | [ c ] -> Alcotest.(check bool) "load reported" true (c.Policy.load >= 2.0)
  | _ -> Alcotest.fail "provider not in broker db"

let test_broker_gossip_to_peer () =
  let net, k = mk_world () in
  let b0 = Matchmaker.install k ~site:0 ~name:"broker0" () in
  let b1 = Matchmaker.install k ~site:1 ~name:"broker1" () in
  Matchmaker.add_peer b0 (1, "broker1");
  let p = Provider.install k ~site:2 ~name:"p1" ~service:"compute" ~capacity:1.0 () in
  Provider.start_load_monitor k p ~brokers:[ (0, "broker0") ] ~period:0.5;
  Net.run ~until:2.0 net;
  check Alcotest.int "peer learned via gossip" 1
    (List.length (Matchmaker.candidates b1 ~service:"compute"))

let test_provider_serves_fifo_and_notifies () =
  let net, k = mk_world () in
  ignore (Provider.install k ~site:1 ~name:"p1" ~service:"compute" ~capacity:2.0 ());
  let done_jobs = ref [] in
  Kernel.register_native k ~site:0 "job-done" (fun ctx bc ->
      done_jobs :=
        (Option.get (Briefcase.find_opt bc "JOB"), Kernel.now ctx.Kernel.kernel) :: !done_jobs);
  let submit name work =
    let bc = Briefcase.create () in
    Briefcase.set bc "JOB" name;
    Briefcase.set bc "WORK" (string_of_float work);
    Briefcase.set bc "REPLY-HOST" "mesh-0";
    Briefcase.set bc "REPLY-AGENT" "job-done";
    Kernel.launch k ~site:1 ~contact:"p1" bc
  in
  submit "a" 2.0;
  submit "b" 2.0;
  Net.run ~until:10.0 net;
  match List.rev !done_jobs with
  | [ ("a", ta); ("b", tb) ] ->
    (* capacity 2.0 halves the nominal work: ~1s each, sequentially *)
    Alcotest.(check bool) "a at ~1s" true (ta > 0.9 && ta < 1.2);
    Alcotest.(check bool) "b at ~2s" true (tb > 1.9 && tb < 2.2)
  | other -> Alcotest.failf "unexpected completions (%d)" (List.length other)

let test_provider_stats () =
  let net, k = mk_world () in
  let p = Provider.install k ~site:1 ~name:"p1" ~service:"compute" ~capacity:1.0 () in
  let bc = Briefcase.create () in
  Briefcase.set bc "WORK" "1.5";
  Kernel.launch k ~site:1 ~contact:"p1" bc;
  Net.run ~until:10.0 net;
  check Alcotest.int "completed" 1 (Provider.completed p);
  check (Alcotest.float 1e-6) "busy time" 1.5 (Provider.busy_time p);
  check Alcotest.int "queue drained" 0 (Provider.queue_length p)

(* --- tickets --- *)

let test_ticket_verify_and_expiry () =
  let t = Ticket.issue ~key:"k" ~service:"s" ~job:"j" ~now:10.0 ~ttl:5.0 in
  Alcotest.(check bool) "valid now" true (Ticket.valid ~key:"k" ~now:12.0 t);
  Alcotest.(check bool) "expired" false (Ticket.valid ~key:"k" ~now:15.1 t);
  Alcotest.(check bool) "wrong key" false (Ticket.valid ~key:"x" ~now:12.0 t);
  match Ticket.of_wire (Ticket.wire t) with
  | Ok t' -> Alcotest.(check bool) "wire roundtrip" true (t = t')
  | Error e -> Alcotest.failf "roundtrip: %s" e

let test_provider_enforces_tickets () =
  let net, k = mk_world () in
  Ticket.install_agent k ~site:0 ~key:"tkey" ~ttl:60.0;
  let p =
    Provider.install k ~site:1 ~name:"p1" ~service:"compute" ~capacity:1.0
      ~ticket_key:"tkey" ()
  in
  (* without ticket: rejected *)
  let bc1 = Briefcase.create () in
  Briefcase.set bc1 "WORK" "1.0";
  Kernel.launch k ~site:1 ~contact:"p1" bc1;
  Net.run ~until:1.0 net;
  check Alcotest.int "rejected" 1 (Provider.rejected p);
  (* with ticket: served.  Get the ticket from the ticket agent first. *)
  let bc2 = Briefcase.create () in
  Briefcase.set bc2 "SERVICE" "compute";
  Briefcase.set bc2 "JOB" "j1";
  Kernel.launch k ~site:0 ~contact:"ticket" bc2;
  Net.run ~until:2.0 net;
  let tkt = Option.get (Briefcase.find_opt bc2 "TICKET") in
  let bc3 = Briefcase.create () in
  Briefcase.set bc3 "WORK" "1.0";
  Briefcase.set bc3 "TICKET" tkt;
  Kernel.launch k ~site:1 ~contact:"p1" bc3;
  Net.run ~until:10.0 net;
  check Alcotest.int "completed with ticket" 1 (Provider.completed p);
  (* ticket for the wrong service is refused *)
  let bc4 = Briefcase.create () in
  Briefcase.set bc4 "SERVICE" "other";
  Briefcase.set bc4 "JOB" "j2";
  Kernel.launch k ~site:0 ~contact:"ticket" bc4;
  Net.run ~until:11.0 net;
  let bc5 = Briefcase.create () in
  Briefcase.set bc5 "WORK" "1.0";
  Briefcase.set bc5 "TICKET" (Option.get (Briefcase.find_opt bc4 "TICKET"));
  Kernel.launch k ~site:1 ~contact:"p1" bc5;
  Net.run ~until:20.0 net;
  check Alcotest.int "wrong-service ticket rejected" 2 (Provider.rejected p)

let test_crashed_provider_ages_out () =
  let net, k = mk_world () in
  let b = Matchmaker.install k ~site:0 ~name:"broker" ~max_report_age:2.0 () in
  let p = Provider.install k ~site:1 ~name:"p1" ~service:"compute" ~capacity:1.0 () in
  Provider.start_load_monitor k p ~brokers:[ (0, "broker") ] ~period:0.5;
  Net.run ~until:2.0 net;
  Alcotest.(check bool) "visible while reporting" true
    (Matchmaker.lookup b ~service:"compute" () <> None);
  (* kill the provider's site: reports stop, entry goes stale *)
  Net.crash net 1;
  Net.run ~until:10.0 net;
  Alcotest.(check bool) "aged out after crash" true
    (Matchmaker.lookup b ~service:"compute" () = None);
  check Alcotest.(list string) "no stale services advertised" []
    (Matchmaker.services b)

(* --- routing overlay --- *)

module Routing = Broker.Routing

(* a chain of brokers b0 - b1 - b2; the provider is registered only at b2 *)
let routed_world () =
  let net = Net.create (Topology.full_mesh 4) in
  let k = Kernel.create net in
  let b0 = Matchmaker.install k ~site:0 ~name:"b0" () in
  let b1 = Matchmaker.install k ~site:1 ~name:"b1" () in
  let b2 = Matchmaker.install k ~site:2 ~name:"b2" () in
  let r = Routing.create k ~advert_period:0.5 () in
  Routing.add_broker r b0;
  Routing.add_broker r b1;
  Routing.add_broker r b2;
  Routing.connect r b0 b1;
  Routing.connect r b1 b2;
  let p = Provider.install k ~site:3 ~name:"far-prov" ~service:"compute" ~capacity:1.0 () in
  Matchmaker.register_provider b2 p;
  (net, k, r, b0, b1, b2)

let test_routing_tables_converge () =
  let net, _, r, b0, b1, _ = routed_world () in
  Net.run ~until:5.0 net;
  (match Routing.routes r b1 with
  | [ { Routing.service = "compute"; cost = 1; via = "b2" } ] -> ()
  | other -> Alcotest.failf "b1 table unexpected (%d entries)" (List.length other));
  match Routing.routes r b0 with
  | [ { Routing.service = "compute"; cost = 2; via = "b1" } ] -> ()
  | other -> Alcotest.failf "b0 table unexpected (%d entries)" (List.length other)

let test_routed_lookup_resolves_remotely () =
  let net, _, r, b0, _, _ = routed_world () in
  Net.run ~until:5.0 net;
  let result = ref None in
  Routing.routed_lookup r ~from:b0 ~service:"compute" ~on_reply:(fun x -> result := Some x);
  Net.run ~until:10.0 net;
  match !result with
  | Some (Ok (c, hops)) ->
    check Alcotest.string "provider" "far-prov" c.Policy.provider;
    check Alcotest.int "two broker hops" 2 hops
  | Some (Error e) -> Alcotest.failf "lookup failed: %s" e
  | None -> Alcotest.fail "no reply"

let test_routed_lookup_local_hit_zero_hops () =
  let net, _, r, _, _, b2 = routed_world () in
  Net.run ~until:5.0 net;
  let result = ref None in
  Routing.routed_lookup r ~from:b2 ~service:"compute" ~on_reply:(fun x -> result := Some x);
  Net.run ~until:10.0 net;
  match !result with
  | Some (Ok (_, hops)) -> check Alcotest.int "resolved locally" 0 hops
  | _ -> Alcotest.fail "no local resolution"

let test_routed_lookup_unknown_service () =
  let net, _, r, b0, _, _ = routed_world () in
  Net.run ~until:5.0 net;
  let result = ref None in
  Routing.routed_lookup r ~from:b0 ~service:"nothing" ~on_reply:(fun x -> result := Some x);
  Net.run ~until:10.0 net;
  match !result with
  | Some (Error "no-provider") -> ()
  | _ -> Alcotest.fail "expected no-provider"

let test_routes_expire_when_broker_dies () =
  let net, _, r, b0, _, _ = routed_world () in
  Net.run ~until:5.0 net;
  Alcotest.(check bool) "route present" true (Routing.routes r b0 <> []);
  (* kill the chain at b1: b0 stops hearing adverts and the route ages out *)
  Net.crash net 1;
  Net.run ~until:20.0 net;
  let result = ref None in
  Routing.routed_lookup r ~from:b0 ~service:"compute" ~on_reply:(fun x -> result := Some x);
  Net.run ~until:30.0 net;
  match !result with
  | Some (Error "no-provider") -> ()
  | Some (Ok _) -> Alcotest.fail "stale route used after expiry"
  | Some (Error e) -> Alcotest.failf "unexpected error %s" e
  | None -> Alcotest.fail "no reply"

(* --- protected agents --- *)

let test_protected_agent_brokering () =
  let net, k = mk_world () in
  let meetings = ref [] in
  Kernel.register_native k ~site:0 "secret-oracle" (fun _ bc ->
      meetings := Option.value ~default:"?" (Briefcase.find_opt bc "REQUESTER") :: !meetings);
  let pr =
    Protect.install k ~site:0 ~public_name:"oracle-broker" ~secret_name:"secret-oracle"
      ~policy:{ Protect.allowed = Some [ "alice"; "carol" ]; min_interval = 0.5 }
      ()
  in
  let request who =
    let bc = Briefcase.create () in
    Briefcase.set bc "REQUESTER" who;
    Kernel.launch k ~site:0 ~contact:"oracle-broker" bc
  in
  request "alice";
  request "bob";
  request "carol";
  Net.run ~until:10.0 net;
  check Alcotest.(list string) "only allowed requesters meet, in order" [ "alice"; "carol" ]
    (List.rev !meetings);
  check Alcotest.int "denied" 1 (Protect.denied pr);
  check Alcotest.int "forwarded" 2 (Protect.forwarded pr)

let test_protected_rate_limit_spacing () =
  let net, k = mk_world () in
  let times = ref [] in
  Kernel.register_native k ~site:0 "secret2" (fun ctx _ ->
      times := Kernel.now ctx.Kernel.kernel :: !times);
  ignore
    (Protect.install k ~site:0 ~public_name:"pb2" ~secret_name:"secret2"
       ~policy:{ Protect.allowed = None; min_interval = 1.0 }
       ());
  for _ = 1 to 3 do
    Kernel.launch k ~site:0 ~contact:"pb2" (Briefcase.create ())
  done;
  Net.run ~until:10.0 net;
  match List.rev !times with
  | [ t1; t2; t3 ] ->
    Alcotest.(check bool) "spaced by >= 1s" true (t2 -. t1 >= 1.0 && t3 -. t2 >= 1.0)
  | other -> Alcotest.failf "expected 3 meetings, got %d" (List.length other)

let () =
  Alcotest.run "broker"
    [
      ( "policy",
        [
          Alcotest.test_case "least loaded" `Quick test_policy_least_loaded;
          Alcotest.test_case "weighted" `Quick test_policy_weighted;
          Alcotest.test_case "round robin" `Quick test_policy_round_robin_cycles;
          Alcotest.test_case "empty" `Quick test_policy_empty;
          Alcotest.test_case "names" `Quick test_policy_names_roundtrip;
        ] );
      ( "matchmaker",
        [
          Alcotest.test_case "register + lookup" `Quick test_register_and_lookup;
          Alcotest.test_case "lookup via meet" `Quick test_lookup_via_meet;
          Alcotest.test_case "no provider" `Quick test_lookup_no_provider;
          Alcotest.test_case "per-request policy override" `Quick
            test_lookup_policy_override_via_folder;
          Alcotest.test_case "load monitor" `Quick test_load_monitor_updates_broker;
          Alcotest.test_case "peer gossip" `Quick test_broker_gossip_to_peer;
          Alcotest.test_case "crashed provider ages out" `Quick test_crashed_provider_ages_out;
        ] );
      ( "provider",
        [
          Alcotest.test_case "fifo + notify" `Quick test_provider_serves_fifo_and_notifies;
          Alcotest.test_case "stats" `Quick test_provider_stats;
        ] );
      ( "ticket",
        [
          Alcotest.test_case "verify + expiry" `Quick test_ticket_verify_and_expiry;
          Alcotest.test_case "provider enforcement" `Quick test_provider_enforces_tickets;
        ] );
      ( "routing",
        [
          Alcotest.test_case "tables converge" `Quick test_routing_tables_converge;
          Alcotest.test_case "remote resolution" `Quick test_routed_lookup_resolves_remotely;
          Alcotest.test_case "local hit" `Quick test_routed_lookup_local_hit_zero_hops;
          Alcotest.test_case "unknown service" `Quick test_routed_lookup_unknown_service;
          Alcotest.test_case "routes expire" `Quick test_routes_expire_when_broker_dies;
        ] );
      ( "protect",
        [
          Alcotest.test_case "brokering + allow-list" `Quick test_protected_agent_brokering;
          Alcotest.test_case "rate limiting" `Quick test_protected_rate_limit_spacing;
        ] );
    ]

module Kernel = Tacoma_core.Kernel
module Briefcase = Tacoma_core.Briefcase
module Cabinet = Tacoma_core.Cabinet
module Net = Netsim.Net

type config = {
  ack_timeout : float;
  retry_period : float;
  max_relaunch : int;
  transport : Kernel.transport;
  durable : bool;
}

let default_config =
  {
    ack_timeout = 5.0;
    retry_period = 3.0;
    max_relaunch = 8;
    transport = Kernel.Tcp;
    durable = false;
  }

type guard_state = { mutable released : bool; mutable attempts : int }

type journey = {
  kernel : Kernel.t;
  cfg : config;
  id : string;
  itinerary : Netsim.Site.id array;
  work : Kernel.ctx -> hop:int -> Briefcase.t -> unit;
  on_complete : (Briefcase.t -> unit) option;
  guards : (int, guard_state) Hashtbl.t; (* hop covered -> state *)
  pre_released : (int, unit) Hashtbl.t; (* releases that beat their guard *)
  mutable completed : bool;
  mutable relaunches : int;
  mutable hops_done : int;
  mutable guards_installed : int;
  mutable giveups : int;
  mutable completion_attempts : int;
}

type stats = {
  completed : bool;
  relaunches : int;
  hops_done : int;
  guards_installed : int;
  giveups : int;
  duplicate_completions : int;
}

let stats (j : journey) : stats =
  {
    completed = j.completed;
    relaunches = j.relaunches;
    hops_done = j.hops_done;
    guards_installed = j.guards_installed;
    giveups = j.giveups;
    duplicate_completions = max 0 (j.completion_attempts - 1);
  }

let arrive_agent j = "escort-arrive:" ^ j.id
let release_agent j = "escort-release:" ^ j.id
let guard_agent j = "escort-guard:" ^ j.id
let seen_folder = "ESCORT-SEEN"
let done_folder = "ESCORT-DONE"
let ckpt_folder = "ESCORT-CKPT"
let ckpt_key j hop = Printf.sprintf "%s:%d" j.id hop

let hop_of bc =
  match Option.bind (Briefcase.find_opt bc "ESCORT-HOP") int_of_string_opt with
  | Some h -> h
  | None -> raise (Kernel.Agent_error "escort: missing ESCORT-HOP")

let send_release j ~src ~hop =
  (* release the guard covering [hop]; it sits at itinerary[hop - 1] *)
  if hop > 0 then begin
    let guard_site = j.itinerary.(hop - 1) in
    let bc = Briefcase.create () in
    Briefcase.set bc "ESCORT-HOP" (string_of_int hop);
    Kernel.send_briefcase j.kernel ~src ~dst:guard_site ~contact:(release_agent j) bc
  end

let migrate_hop j ~src ~hop bc =
  let bc' = Briefcase.copy bc in
  Briefcase.set bc' "ESCORT-HOP" (string_of_int hop);
  Kernel.migrate j.kernel ~src ~dst:j.itinerary.(hop) ~contact:(arrive_agent j)
    ~transport:j.cfg.transport bc'

(* The rear guard: an activation at itinerary[hop-1] covering [hop].  It
   holds the post-work snapshot and resends it while unreleased. *)
let run_guard j ctx ~hop snapshot =
  let m = Kernel.metrics j.kernel in
  (* a release may beat its own guard here: partition-delayed releases can
     arrive while a durable guard is still being resurrected from disk.
     Honouring the recorded release stops the resurrected guard from
     relaunching a hop that already acknowledged. *)
  let st = { released = Hashtbl.mem j.pre_released hop; attempts = 0 } in
  if st.released then Obs.Metrics.incr m "guard.pre_releases";
  Hashtbl.replace j.guards hop st;
  j.guards_installed <- j.guards_installed + 1;
  Kernel.sleep ctx j.cfg.ack_timeout;
  let rec watch () =
    if (not st.released) && not j.completed then begin
      Obs.Metrics.incr m "guard.ack_timeouts";
      if st.attempts < j.cfg.max_relaunch then begin
        st.attempts <- st.attempts + 1;
        j.relaunches <- j.relaunches + 1;
        Obs.Metrics.incr m "guard.relaunches";
        (let tr = Kernel.recorder j.kernel in
         if Obs.Tracer.enabled tr then
           Obs.Tracer.instant tr ~time:(Kernel.now j.kernel)
             ?span:(Kernel.briefcase_span snapshot) ~cat:"guard" ~site:ctx.Kernel.site
             ~attrs:
               [
                 ("journey", Obs.Event.S j.id);
                 ("hop", Obs.Event.I hop);
                 ("attempt", Obs.Event.I st.attempts);
               ]
             "guard.relaunch");
        migrate_hop j ~src:ctx.Kernel.site ~hop snapshot;
        Kernel.sleep ctx (j.cfg.retry_period *. float_of_int st.attempts);
        watch ()
      end
      else begin
        Obs.Metrics.incr m "guard.giveups";
        j.giveups <- j.giveups + 1
        (* give up; the computation is lost unless another copy runs *)
      end
    end
  in
  watch ()

(* Arrival of the agent (original or relaunched) at itinerary[hop].

   Two site-local records dedup duplicate arrivals (relaunch racing the
   original or its ack):
   - the volatile seen-record marks the hop as *started*: a crash clears it,
     so a genuine relaunch after a crash redoes the hop;
   - the flushed done-record marks the hop as *finished* (work done, next
     guard installed, agent moved on): it survives a crash, so a relaunch
     arriving after the site recovered cannot re-execute a finished hop —
     instead the release is re-sent, which is exactly what the still-waiting
     guard is missing when its release was partition-delayed or lost. *)
let arrive j ctx bc =
  let hop = hop_of bc in
  let site = ctx.Kernel.site in
  let cab = Kernel.cabinet j.kernel site in
  let seen_key = Printf.sprintf "%s:%d" j.id hop in
  let m = Kernel.metrics j.kernel in
  if Cabinet.contains cab done_folder seen_key then begin
    Obs.Metrics.incr m "guard.releases_resent";
    send_release j ~src:site ~hop
  end
  else if Cabinet.contains cab seen_folder seen_key then
    (* started but not finished here: the original is still working at this
       site, so the duplicate is dropped and the guard keeps covering *)
    Obs.Metrics.incr m "guard.duplicate_arrivals"
  else begin
    Cabinet.put cab seen_folder seen_key;
    j.work ctx ~hop bc;
    j.hops_done <- max j.hops_done hop;
    let mark_done () =
      Cabinet.put cab done_folder seen_key;
      Cabinet.flush_folder cab done_folder
    in
    let last = hop = Array.length j.itinerary - 1 in
    if last then begin
      mark_done ();
      send_release j ~src:site ~hop;
      j.completion_attempts <- j.completion_attempts + 1;
      if j.completion_attempts > 1 then Obs.Metrics.incr m "guard.duplicate_completions";
      if not j.completed then begin
        j.completed <- true;
        match j.on_complete with None -> () | Some f -> f bc
      end
    end
    else begin
      (* post-work snapshot guards the next hop *)
      let snapshot = Briefcase.copy bc in
      let gbc = Briefcase.create () in
      Briefcase.set gbc "ESCORT-HOP" (string_of_int (hop + 1));
      (* present only while tracing: the guard activation then joins the
         journey's trace instead of starting an unrelated root *)
      (match Briefcase.find_opt bc Briefcase.trace_folder with
      | Some span -> Briefcase.set gbc Briefcase.trace_folder span
      | None -> ());
      Folder_stash.put gbc snapshot;
      if j.cfg.durable then begin
        (* checkpoint the guard to disk: if this site crashes and restarts,
           the guard is resurrected from the flushed cabinet — closing the
           guard-site-failure window the paper calls "complex" *)
        Cabinet.set_kv cab ckpt_folder ~key:(ckpt_key j (hop + 1)) (Briefcase.serialize gbc);
        Cabinet.flush_folder cab ckpt_folder
      end;
      Kernel.launch j.kernel ~site ~contact:(guard_agent j) gbc;
      send_release j ~src:site ~hop;
      migrate_hop j ~src:site ~hop:(hop + 1) bc;
      mark_done ()
    end
  end

let release j ctx bc =
  let hop = hop_of bc in
  (match Hashtbl.find_opt j.guards hop with
  | Some st -> st.released <- true
  | None ->
    (* guard already gone, or not yet (re)installed: remember the release so
       a guard resurrected after this point starts out released instead of
       relaunching a hop that already acknowledged *)
    Hashtbl.replace j.pre_released hop ());
  if j.cfg.durable then begin
    let cab = Kernel.cabinet j.kernel ctx.Kernel.site in
    Cabinet.remove_kv cab ckpt_folder ~key:(ckpt_key j hop);
    Cabinet.flush_folder cab ckpt_folder
  end

(* Resurrect checkpointed guards when a site comes back from a crash. *)
let recover_checkpoints (j : journey) site () =
  if not j.completed then begin
    let cab = Kernel.cabinet j.kernel site in
    let prefix = j.id ^ ":" in
    List.iter
      (fun (key, wire) ->
        if
          String.length key > String.length prefix
          && String.sub key 0 (String.length prefix) = prefix
        then
          match Briefcase.deserialize wire with
          | gbc -> Kernel.launch j.kernel ~site ~contact:(guard_agent j) gbc
          | exception Tacoma_core.Codec.Malformed _ -> ())
      (Cabinet.kv_bindings cab ckpt_folder)
  end

let register_agents j =
  Kernel.register_native j.kernel (arrive_agent j) (fun ctx bc -> arrive j ctx bc);
  Kernel.register_native j.kernel (release_agent j) (fun ctx bc -> release j ctx bc);
  Kernel.register_native j.kernel (guard_agent j) (fun ctx gbc ->
      let hop = hop_of gbc in
      let snapshot = Folder_stash.take gbc in
      run_guard j ctx ~hop snapshot);
  if j.cfg.durable then
    List.iter
      (fun site -> Net.on_restart (Kernel.net j.kernel) site (recover_checkpoints j site))
      (List.sort_uniq compare (Array.to_list j.itinerary))

let guarded_journey kernel ?(config = default_config) ~id ~itinerary ~work ?on_complete bc =
  if itinerary = [] then invalid_arg "Escort.guarded_journey: empty itinerary";
  if Kernel.agent_exists kernel (List.hd itinerary) ("escort-arrive:" ^ id) then
    invalid_arg "Escort.guarded_journey: duplicate journey id";
  let j =
    {
      kernel;
      cfg = config;
      id;
      itinerary = Array.of_list itinerary;
      work;
      on_complete;
      guards = Hashtbl.create 8;
      pre_released = Hashtbl.create 8;
      completed = false;
      relaunches = 0;
      hops_done = -1;
      guards_installed = 0;
      giveups = 0;
      completion_attempts = 0;
    }
  in
  register_agents j;
  let bc = Briefcase.copy bc in
  Briefcase.set bc "ESCORT-HOP" "0";
  Kernel.launch kernel ~site:j.itinerary.(0) ~contact:(arrive_agent j) bc;
  j

let unguarded_journey kernel ?(transport = Kernel.Tcp) ~id ~itinerary ~work ?on_complete bc =
  let config =
    {
      ack_timeout = infinity;
      retry_period = infinity;
      max_relaunch = 0;
      transport;
      durable = false;
    }
  in
  (* same machinery with guards that never fire; skip guard installation by
     using max_relaunch = 0 and a dedicated arrive handler *)
  if itinerary = [] then invalid_arg "Escort.unguarded_journey: empty itinerary";
  let j =
    {
      kernel;
      cfg = config;
      id;
      itinerary = Array.of_list itinerary;
      work;
      on_complete;
      guards = Hashtbl.create 1;
      pre_released = Hashtbl.create 1;
      completed = false;
      relaunches = 0;
      hops_done = -1;
      guards_installed = 0;
      giveups = 0;
      completion_attempts = 0;
    }
  in
  let arrive_name = arrive_agent j in
  let plain_arrive ctx bc =
    let hop = hop_of bc in
    j.work ctx ~hop bc;
    j.hops_done <- max j.hops_done hop;
    if hop = Array.length j.itinerary - 1 then begin
      j.completion_attempts <- j.completion_attempts + 1;
      if not j.completed then begin
        j.completed <- true;
        match j.on_complete with None -> () | Some f -> f bc
      end
    end
    else migrate_hop j ~src:ctx.Kernel.site ~hop:(hop + 1) bc
  in
  Kernel.register_native kernel arrive_name (fun ctx bc -> plain_arrive ctx bc);
  let bc = Briefcase.copy bc in
  Briefcase.set bc "ESCORT-HOP" "0";
  Kernel.launch kernel ~site:j.itinerary.(0) ~contact:arrive_name bc;
  j

let fanout kernel ?(config = default_config) ~id ~branches ~work ?on_all_complete bc =
  let total = List.length branches in
  let done_count = ref 0 in
  let fired = ref false in
  List.mapi
    (fun i branch ->
      guarded_journey kernel ~config
        ~id:(Printf.sprintf "%s.%d" id i)
        ~itinerary:branch ~work
        ~on_complete:(fun _ ->
          incr done_count;
          if !done_count = total && not !fired then begin
            fired := true;
            match on_all_complete with None -> () | Some f -> f ()
          end)
        (Briefcase.copy bc))
    branches

(* Stashing one briefcase inside another — the paper's observation that
   folders are typeless, so they can hold whole agents.  Rear guards carry
   their snapshot this way. *)

module Briefcase = Tacoma_core.Briefcase

let folder_name = "SNAPSHOT"

let put bc snapshot = Briefcase.set bc folder_name (Briefcase.serialize snapshot)

let take bc =
  match Briefcase.find_opt bc folder_name with
  | Some wire -> Briefcase.deserialize wire
  | None -> raise (Tacoma_core.Kernel.Agent_error "escort guard: missing SNAPSHOT")

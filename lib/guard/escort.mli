(** Rear-guard fault tolerance (paper §5).

    "The solutions we have studied involve leaving a rear guard agent behind
    whenever execution moves from one site to another.  This rear guard is
    responsible for (i) launching a new agent should a failure cause an
    agent to vanish and (ii) terminating itself when its function is no
    longer necessary."

    Protocol implemented here, for an agent following an itinerary
    [s0; s1; ...; sn]:

    - after finishing its work at [sk], the agent installs a rear guard at
      [sk] holding a {e snapshot} (the briefcase as of that moment plus the
      hop number), then migrates on;
    - the guard covers the transfer to and the work at [s(k+1)]: it is
      released by a message sent from [s(k+1)] when the agent has finished
      working there and installed the next guard;
    - if the release does not arrive in time, the guard relaunches the
      agent from its snapshot (redoing hop [k+1]), retrying with backoff up
      to a bound;
    - duplicate arrivals (relaunch racing the original or its ack) are
      suppressed by two site-local records keyed by (journey, hop): a
      {e volatile} seen-record marking the hop as started — a crash clears
      it, so a genuine relaunch after a crash is accepted — and a
      {e flushed} done-record marking it as finished, which survives
      crashes.  A duplicate arriving at a site whose done-record covers the
      hop re-sends the release instead of re-executing: a guard whose
      release was partition-delayed or lost is thereby re-acknowledged the
      first time it relaunches, and a finished hop is never redone.
      Completion is deduplicated the same way ([on_complete] fires at most
      once even under relaunch races; violations would surface in the
      [guard.duplicate_completions] metric and {!stats}).  Releases that
      arrive {e before} their guard (possible when a durable guard is being
      resurrected while a delayed release is in flight) are remembered and
      honoured at installation.  The paper's two hard cases are covered:
      {e cycles}, because the records and guards are keyed by hop index,
      not by site; and {e fan-out}, because journeys compose (see
      {!fanout}).

    Known window (the paper calls the details "complex"): if [sk] crashes
    after releasing its predecessor and before [s(k+1)] finishes, the hop in
    flight is unguarded; simultaneous failure of the agent's site and its
    guard's site loses the computation.  E6 measures exactly this. *)

type config = {
  ack_timeout : float;   (** guard patience before first relaunch *)
  retry_period : float;  (** pause between relaunch attempts *)
  max_relaunch : int;
  transport : Tacoma_core.Kernel.transport;
  durable : bool;
  (** checkpoint each guard's snapshot to the site cabinet (flushed): when
      the guard's own site crashes and restarts, the guard is resurrected
      from disk and resumes watching.  This closes the guard-site-failure
      window of the plain protocol — an extension beyond the paper's
      prototype, in the direction its §5 sketches. *)
}

val default_config : config

type journey

type stats = {
  completed : bool;
  relaunches : int;
  hops_done : int;       (** highest hop whose work finished *)
  guards_installed : int;
  giveups : int;         (** guards that exhausted [max_relaunch] *)
  duplicate_completions : int;
      (** times the final hop's work ran beyond the first — 0 unless the
          at-most-once machinery is broken (checked by the chaos harness) *)
}

val stats : journey -> stats

val guarded_journey :
  Tacoma_core.Kernel.t ->
  ?config:config ->
  id:string ->
  itinerary:Netsim.Site.id list ->
  work:(Tacoma_core.Kernel.ctx -> hop:int -> Tacoma_core.Briefcase.t -> unit) ->
  ?on_complete:(Tacoma_core.Briefcase.t -> unit) ->
  Tacoma_core.Briefcase.t ->
  journey
(** Launch a guarded agent computation.  [work] runs at every itinerary
    stop (it may sleep via {!Tacoma_core.Kernel.sleep}); [on_complete] fires
    at most once, at the final site.  The itinerary may revisit sites.
    @raise Invalid_argument on an empty itinerary or duplicate [id]. *)

val unguarded_journey :
  Tacoma_core.Kernel.t ->
  ?transport:Tacoma_core.Kernel.transport ->
  id:string ->
  itinerary:Netsim.Site.id list ->
  work:(Tacoma_core.Kernel.ctx -> hop:int -> Tacoma_core.Briefcase.t -> unit) ->
  ?on_complete:(Tacoma_core.Briefcase.t -> unit) ->
  Tacoma_core.Briefcase.t ->
  journey
(** The §5 baseline: same computation, no guards; any crash under the agent
    silently kills it. *)

val fanout :
  Tacoma_core.Kernel.t ->
  ?config:config ->
  id:string ->
  branches:Netsim.Site.id list list ->
  work:(Tacoma_core.Kernel.ctx -> hop:int -> Tacoma_core.Briefcase.t -> unit) ->
  ?on_all_complete:(unit -> unit) ->
  Tacoma_core.Briefcase.t ->
  journey list
(** Clone-and-fan-out: one guarded journey per branch, plus a completion
    counter so the caller learns when {e all} branches are done — the
    paper's fan-out termination problem. *)

module Kernel = Tacoma_core.Kernel
module Briefcase = Tacoma_core.Briefcase
module Folder = Tacoma_core.Folder

type policy = { allowed : string list option; min_interval : float }

type t = {
  kernel : Kernel.t;
  psite : Netsim.Site.id;
  secret_name : string;
  policy : policy;
  (* the queue itself is a briefcase folder holding serialised requester
     briefcases — the paper's point about typeless folders *)
  queue : Briefcase.t;
  mutable draining : bool;
  mutable forwarded_count : int;
  mutable denied_count : int;
}

let queue_folder = "MEETING-REQUESTS"

let pending t = Folder.length (Briefcase.folder t.queue queue_folder)
let forwarded t = t.forwarded_count
let denied t = t.denied_count

let allowed t requester =
  match t.policy.allowed with
  | None -> true
  | Some names -> List.mem requester names

(* Drain loop: forward one queued request to the protected agent every
   min_interval seconds, inside its own activation. *)
let rec drain t ctx =
  match Folder.pop (Briefcase.folder t.queue queue_folder) with
  | None -> t.draining <- false
  | Some wire ->
    (match Briefcase.deserialize wire with
    | request ->
      t.forwarded_count <- t.forwarded_count + 1;
      Kernel.meet ctx t.secret_name request
    | exception Tacoma_core.Codec.Malformed _ -> ());
    if t.policy.min_interval > 0.0 then Kernel.sleep ctx t.policy.min_interval;
    drain t ctx

let install kernel ~site ~public_name ~secret_name ~policy () =
  let t =
    {
      kernel;
      psite = site;
      secret_name;
      policy;
      queue = Briefcase.create ();
      draining = false;
      forwarded_count = 0;
      denied_count = 0;
    }
  in
  let drain_agent = "protect-drain:" ^ public_name in
  Kernel.register_native kernel ~site drain_agent (fun ctx _ -> drain t ctx);
  Kernel.register_native kernel ~site public_name (fun _ bc ->
      let requester = Option.value ~default:"" (Briefcase.find_opt bc "REQUESTER") in
      if not (allowed t requester) then begin
        t.denied_count <- t.denied_count + 1;
        Briefcase.set bc "STATUS" "denied"
      end
      else begin
        Folder.enqueue (Briefcase.folder t.queue queue_folder) (Briefcase.serialize bc);
        Briefcase.set bc "STATUS" "queued";
        if not t.draining then begin
          t.draining <- true;
          Kernel.launch kernel ~site:t.psite ~contact:drain_agent (Briefcase.create ())
        end
      end);
  t

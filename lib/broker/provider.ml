module Kernel = Tacoma_core.Kernel
module Briefcase = Tacoma_core.Briefcase
module Cabinet = Tacoma_core.Cabinet

type job = { work : float; reply : (string * string) option; job_id : string }

type t = {
  pname : string;
  pservice : string;
  pcapacity : float;
  psite : Netsim.Site.id;
  queue : job Queue.t;
  mutable running : bool;
  mutable completed : int;
  mutable rejected : int;
  mutable busy : float;
}

let name t = t.pname
let service t = t.pservice
let capacity t = t.pcapacity
let site t = t.psite
let queue_length t = Queue.length t.queue + if t.running then 1 else 0
let completed t = t.completed
let rejected t = t.rejected
let busy_time t = t.busy

let publish_load kernel t =
  Cabinet.set_kv (Kernel.cabinet kernel t.psite) "LOAD" ~key:("queue:" ^ t.pname)
    (string_of_int (queue_length t))

let notify kernel t job status =
  match job.reply with
  | None -> ()
  | Some (host, agent) -> (
    match Kernel.site_named kernel host with
    | None -> ()
    | Some dst ->
      let out = Briefcase.create () in
      Briefcase.set out "JOB" job.job_id;
      Briefcase.set out "STATUS" status;
      Briefcase.set out "PROVIDER" t.pname;
      Kernel.send_briefcase kernel ~src:t.psite ~dst ~contact:agent out)

(* Serve jobs one at a time inside a dedicated activation; new arrivals while
   busy just extend the queue that the running activation drains. *)
let rec serve_loop kernel t ctx =
  match Queue.take_opt t.queue with
  | None ->
    t.running <- false;
    publish_load kernel t
  | Some job ->
    publish_load kernel t;
    let duration = job.work /. Float.max 0.001 t.pcapacity in
    Kernel.sleep ctx duration;
    t.busy <- t.busy +. duration;
    t.completed <- t.completed + 1;
    notify kernel t job "done";
    serve_loop kernel t ctx

let install kernel ~site ~name ~service ~capacity ?ticket_key () =
  let t =
    {
      pname = name;
      pservice = service;
      pcapacity = capacity;
      psite = site;
      queue = Queue.create ();
      running = false;
      completed = 0;
      rejected = 0;
      busy = 0.0;
    }
  in
  Kernel.register_native kernel ~site name (fun ctx bc ->
      let ticket_ok =
        match ticket_key with
        | None -> true
        | Some key -> (
          match Option.map Ticket.of_wire (Briefcase.find_opt bc "TICKET") with
          | Some (Ok tk) ->
            Ticket.valid ~key ~now:(Kernel.now ctx.Kernel.kernel) tk
            && tk.Ticket.service = t.pservice
          | Some (Error _) | None -> false)
      in
      if not ticket_ok then begin
        t.rejected <- t.rejected + 1;
        Briefcase.set bc "STATUS" "rejected"
      end
      else begin
        let work =
          match Option.bind (Briefcase.find_opt bc "WORK") float_of_string_opt with
          | Some w when w > 0.0 -> w
          | Some _ | None -> 1.0
        in
        let reply =
          match (Briefcase.find_opt bc "REPLY-HOST", Briefcase.find_opt bc "REPLY-AGENT") with
          | Some h, Some a -> Some (h, a)
          | _ -> None
        in
        let job_id = Option.value ~default:"job" (Briefcase.find_opt bc "JOB") in
        Queue.add { work; reply; job_id } t.queue;
        Briefcase.set bc "STATUS" "queued";
        publish_load kernel t;
        if not t.running then begin
          t.running <- true;
          (* the serving loop runs as its own activation so the submitting
             agent is not blocked behind the whole queue *)
          Kernel.register_native kernel ~site ("serve-loop:" ^ t.pname) (fun ctx _ ->
              serve_loop kernel t ctx);
          Kernel.launch kernel ~site ~contact:("serve-loop:" ^ t.pname) (Briefcase.create ())
        end
      end);
  publish_load kernel t;
  t

let start_load_monitor kernel t ~brokers ~period =
  let loop_agent = "loadmon:" ^ t.pname in
  Kernel.register_native kernel loop_agent (fun ctx _ ->
      let rec loop () =
        if Netsim.Net.site_up (Kernel.net kernel) t.psite then begin
          List.iter
            (fun (broker_site, broker_agent) ->
              let out = Briefcase.create () in
              Briefcase.set out "OP" "report";
              Briefcase.set out "PROVIDER" t.pname;
              Briefcase.set out "SERVICE" t.pservice;
              Briefcase.set out "HOST" (Kernel.site_name kernel t.psite);
              Briefcase.set out "CAPACITY" (string_of_float t.pcapacity);
              Briefcase.set out "LOAD" (string_of_int (queue_length t));
              Kernel.send_briefcase kernel ~src:t.psite ~dst:broker_site
                ~contact:broker_agent out)
            brokers;
          Kernel.sleep ctx period;
          loop ()
        end
      in
      loop ());
  Kernel.launch kernel ~site:t.psite ~contact:loop_agent (Briefcase.create ())

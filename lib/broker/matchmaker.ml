module Kernel = Tacoma_core.Kernel
module Briefcase = Tacoma_core.Briefcase

type entry = {
  provider : string;
  service : string;
  host : string;
  capacity : float;
  mutable load : float;
  mutable reported_at : float;
}

type t = {
  kernel : Kernel.t;
  bsite : Netsim.Site.id;
  bname : string;
  default_policy : Policy.t;
  max_report_age : float option;
  entries : (string, entry) Hashtbl.t; (* provider name -> entry *)
  mutable peers : (Netsim.Site.id * string) list;
  rng : Tacoma_util.Rng.t;
  rr_counter : int ref;
  mutable lookup_count : int;
  mutable report_count : int;
}

let site t = t.bsite
let agent_name t = t.bname
let lookups t = t.lookup_count
let reports t = t.report_count

let upsert t ~provider ~service ~host ~capacity ~load =
  let now = Kernel.now t.kernel in
  match Hashtbl.find_opt t.entries provider with
  | Some e ->
    e.load <- load;
    e.reported_at <- now
  | None ->
    Hashtbl.replace t.entries provider
      { provider; service; host; capacity; load; reported_at = now }

let fresh t ~now e =
  match t.max_report_age with
  | None -> true
  | Some max_age -> now -. e.reported_at <= max_age

let candidates t ~service =
  let now = Kernel.now t.kernel in
  Hashtbl.fold
    (fun _ e acc ->
      if e.service = service && fresh t ~now e then
        {
          Policy.provider = e.provider;
          host = e.host;
          capacity = e.capacity;
          load = e.load;
          report_age = now -. e.reported_at;
        }
        :: acc
      else acc)
    t.entries []
  |> List.sort (fun a b -> compare a.Policy.provider b.Policy.provider)

let services t =
  let now = Kernel.now t.kernel in
  Hashtbl.fold (fun _ e acc -> if fresh t ~now e then e.service :: acc else acc) t.entries []
  |> List.sort_uniq compare

let lookup t ~service ?(exclude = []) ?policy () =
  t.lookup_count <- t.lookup_count + 1;
  let pol = Option.value ~default:t.default_policy policy in
  let cands =
    match exclude with
    | [] -> candidates t ~service
    | _ ->
      List.filter
        (fun c -> not (List.mem c.Policy.provider exclude))
        (candidates t ~service)
  in
  let choice = Policy.choose pol ~rng:t.rng ~rr_counter:t.rr_counter cands in
  let m = Kernel.metrics t.kernel in
  (match choice with
  | Some c ->
    Obs.Metrics.incr m ~labels:[ ("policy", Policy.name pol) ] "broker.decisions";
    (* how stale was the load report the decision was based on? *)
    Obs.Metrics.observe m "broker.report_staleness_s" c.Policy.report_age
  | None -> Obs.Metrics.incr m "broker.no_provider");
  choice

let forward_to_peers t bc =
  List.iter
    (fun (peer_site, peer_agent) ->
      let copy = Briefcase.copy bc in
      Briefcase.set copy "GOSSIP" "1";
      Kernel.send_briefcase t.kernel ~src:t.bsite ~dst:peer_site ~contact:peer_agent copy)
    t.peers

let handle t bc =
  match Option.value ~default:"lookup" (Briefcase.find_opt bc "OP") with
  | "register" | "report" -> (
    t.report_count <- t.report_count + 1;
    Obs.Metrics.incr (Kernel.metrics t.kernel) "broker.reports";
    match
      ( Briefcase.find_opt bc "PROVIDER",
        Briefcase.find_opt bc "SERVICE",
        Briefcase.find_opt bc "HOST" )
    with
    | Some provider, Some service, Some host ->
      let capacity =
        Option.value ~default:1.0 (Option.bind (Briefcase.find_opt bc "CAPACITY") float_of_string_opt)
      in
      let load =
        Option.value ~default:0.0 (Option.bind (Briefcase.find_opt bc "LOAD") float_of_string_opt)
      in
      upsert t ~provider ~service ~host ~capacity ~load;
      (* one-hop gossip: only originals travel to peers *)
      if not (Briefcase.mem bc "GOSSIP") then forward_to_peers t bc
    | _ -> raise (Kernel.Agent_error "broker: report needs PROVIDER/SERVICE/HOST"))
  | "lookup" -> (
    match Briefcase.find_opt bc "SERVICE" with
    | None -> raise (Kernel.Agent_error "broker: lookup needs SERVICE")
    | Some service ->
      let policy = Option.bind (Briefcase.find_opt bc "POLICY") Policy.of_string in
      let exclude =
        match Briefcase.find_opt bc "EXCLUDE" with
        | None | Some "" -> []
        | Some s -> String.split_on_char ',' s
      in
      (match lookup t ~service ~exclude ?policy () with
      | Some c ->
        Briefcase.set bc "PROVIDER" c.Policy.provider;
        Briefcase.set bc "PROVIDER-HOST" c.Policy.host;
        Briefcase.set bc "STATUS" "ok"
      | None -> Briefcase.set bc "STATUS" "no-provider");
      (* remote clients cannot see the in-place mutation a meet relies on:
         when the lookup names a reply agent, ship the answer back *)
      (match (Briefcase.find_opt bc "REPLY-HOST", Briefcase.find_opt bc "REPLY-AGENT") with
      | Some host, Some agent -> (
        match Kernel.site_named t.kernel host with
        | None -> ()
        | Some dst ->
          Kernel.send_briefcase t.kernel ~src:t.bsite ~dst ~contact:agent
            (Briefcase.copy bc))
      | _ -> ()))
  | op -> raise (Kernel.Agent_error (Printf.sprintf "broker: unknown op %S" op))

let install kernel ~site ~name ?(policy = Policy.Least_loaded) ?max_report_age () =
  let t =
    {
      kernel;
      bsite = site;
      bname = name;
      default_policy = policy;
      max_report_age;
      entries = Hashtbl.create 16;
      peers = [];
      rng = Tacoma_util.Rng.split (Kernel.rng kernel);
      rr_counter = ref 0;
      lookup_count = 0;
      report_count = 0;
    }
  in
  Kernel.register_native kernel ~site name (fun _ bc -> handle t bc);
  t

let add_peer t peer = t.peers <- peer :: t.peers

let register_provider t p =
  upsert t ~provider:(Provider.name p) ~service:(Provider.service p)
    ~host:(Kernel.site_name t.kernel (Provider.site p))
    ~capacity:(Provider.capacity p)
    ~load:(float_of_int (Provider.queue_length p))

module Kernel = Tacoma_core.Kernel
module Briefcase = Tacoma_core.Briefcase
module Sha256 = Tacoma_util.Sha256

type t = { service : string; job : string; expires : float; signature : string }

let payload ~service ~job ~expires = Printf.sprintf "tkt|%s|%s|%.6f" service job expires

let issue ~key ~service ~job ~now ~ttl =
  let expires = now +. ttl in
  { service; job; expires; signature = Sha256.hmac_hex ~key (payload ~service ~job ~expires) }

let valid ~key ~now t =
  now <= t.expires
  && String.equal t.signature
       (Sha256.hmac_hex ~key (payload ~service:t.service ~job:t.job ~expires:t.expires))

let wire t = Printf.sprintf "%s|%s|%.6f|%s" t.service t.job t.expires t.signature

let of_wire w =
  match String.split_on_char '|' w with
  | [ service; job; expires; signature ] -> (
    match float_of_string_opt expires with
    | Some expires -> Ok { service; job; expires; signature }
    | None -> Error "bad expiry")
  | _ -> Error "expected four fields"

let install_agent kernel ~site ~key ~ttl =
  Kernel.register_native kernel ~site "ticket" (fun ctx bc ->
      match (Briefcase.find_opt bc "SERVICE", Briefcase.find_opt bc "JOB") with
      | Some service, Some job ->
        let now = Kernel.now ctx.Kernel.kernel in
        Briefcase.set bc "TICKET" (wire (issue ~key ~service ~job ~now ~ttl))
      | _ -> raise (Kernel.Agent_error "ticket: missing SERVICE or JOB folder"))

(** Broker agents (paper §4): well-known-name matchmakers holding a database
    of service providers and their load/capacity reports.

    An agent that requires a service consults a broker to identify which
    agents provide it.  Brokers also "communicate among themselves": peer
    brokers forward load reports to each other, so a client can ask any
    broker in the federation.

    Meet protocol, dispatched on the [OP] folder:
    - ["register"]: [PROVIDER], [SERVICE], [HOST], [CAPACITY]
    - ["report"]:   same folders plus [LOAD] (sent by load monitors)
    - ["lookup"]:   [SERVICE] (and optionally [POLICY], and [EXCLUDE] — a
      comma-separated list of provider names to skip, used by clients
      failing over from an unreachable provider); the broker answers in
      [PROVIDER] and [PROVIDER-HOST], or [STATUS] = ["no-provider"].  When
      the lookup briefcase names [REPLY-HOST]/[REPLY-AGENT], the answered
      briefcase is additionally sent back there, so lookups also work
      remotely (see {!Booking}). *)

type t

val install :
  Tacoma_core.Kernel.t ->
  site:Netsim.Site.id ->
  name:string ->
  ?policy:Policy.t ->
  ?max_report_age:float ->
  unit ->
  t
(** Registers the broker agent under [name] (a "well known" name).  The
    default policy is [Least_loaded]; lookups may override per-request with
    a [POLICY] folder.  With [max_report_age], providers whose last report
    (or registration) is older are excluded from lookups — a crashed
    provider silently ages out of the database once its load monitor stops
    reporting. *)

val add_peer : t -> Netsim.Site.id * string -> unit
(** Peer brokers receive a copy of every report this broker gets directly
    (one-hop gossip; forwarded reports are not re-forwarded). *)

val register_provider : t -> Provider.t -> unit
(** Local-convenience registration (same effect as a ["register"] meet). *)

val lookup :
  t ->
  service:string ->
  ?exclude:string list ->
  ?policy:Policy.t ->
  unit ->
  Policy.candidate option
(** Direct query against this broker's current database.  [exclude] names
    providers to skip — a client that timed out on a provider retries the
    lookup with it excluded. *)

val candidates : t -> service:string -> Policy.candidate list

(** [services t] lists the distinct service names with at least one
    registered provider. *)
val services : t -> string list

val site : t -> Netsim.Site.id
val agent_name : t -> string
val lookups : t -> int
val reports : t -> int

module Kernel = Tacoma_core.Kernel
module Briefcase = Tacoma_core.Briefcase
module Net = Netsim.Net

type outcome = Booked of { provider : string; attempts : int } | Failed of { attempts : int }

type t = {
  kernel : Kernel.t;
  id : string;
  service : string;
  client : Netsim.Site.id;
  broker_site : Netsim.Site.id;
  broker_name : string;
  work : float;
  timeout : float;
  max_attempts : int;
  policy : Policy.t option;
  on_done : (outcome -> unit) option;
  mutable attempt : int;
  mutable excluded : string list;
  mutable current_provider : string option;
  mutable result : outcome option;
}

let reply_agent t = "booking-reply:" ^ t.id
let result t = t.result
let attempts t = t.attempt

let finish t outcome =
  if t.result = None then begin
    t.result <- Some outcome;
    let m = Kernel.metrics t.kernel in
    (match outcome with
    | Booked _ -> Obs.Metrics.incr m "broker.bookings_ok"
    | Failed _ -> Obs.Metrics.incr m "broker.booking_failures");
    match t.on_done with None -> () | Some f -> f outcome
  end

let send_to_broker t bc =
  Kernel.send_briefcase t.kernel ~src:t.client ~dst:t.broker_site ~contact:t.broker_name bc

let rec start_attempt t =
  if t.result = None then begin
    t.attempt <- t.attempt + 1;
    if t.attempt > t.max_attempts then finish t (Failed { attempts = t.max_attempts })
    else begin
      let this_attempt = t.attempt in
      t.current_provider <- None;
      let bc = Briefcase.create () in
      Briefcase.set bc "OP" "lookup";
      Briefcase.set bc "SERVICE" t.service;
      (match t.policy with
      | Some p -> Briefcase.set bc "POLICY" (Policy.name p)
      | None -> ());
      if t.excluded <> [] then Briefcase.set bc "EXCLUDE" (String.concat "," t.excluded);
      Briefcase.set bc "REPLY-HOST" (Kernel.site_name t.kernel t.client);
      Briefcase.set bc "REPLY-AGENT" (reply_agent t);
      send_to_broker t bc;
      (* the end-to-end timer: whether the lookup, the job submission or the
         provider's completion notice is lost or stranded behind a
         partition, the attempt expires as a whole and the next one excludes
         the provider that failed us *)
      ignore
        (Net.schedule (Kernel.net t.kernel) ~after:t.timeout (fun () ->
             if t.result = None && t.attempt = this_attempt then begin
               let m = Kernel.metrics t.kernel in
               Obs.Metrics.incr m "broker.failovers";
               (match t.current_provider with
               | Some p when not (List.mem p t.excluded) -> t.excluded <- p :: t.excluded
               | Some _ | None -> ());
               start_attempt t
             end))
    end
  end

let handle_reply t bc =
  if t.result = None then begin
    match Briefcase.find_opt bc "OP" with
    | Some "lookup" -> (
      (* the broker's answer: submit the job to the chosen provider *)
      match
        ( Briefcase.find_opt bc "STATUS",
          Briefcase.find_opt bc "PROVIDER",
          Option.bind (Briefcase.find_opt bc "PROVIDER-HOST") (Kernel.site_named t.kernel)
        )
      with
      | Some "ok", Some provider, Some psite ->
        t.current_provider <- Some provider;
        let job = Briefcase.create () in
        Briefcase.set job "JOB" (Printf.sprintf "%s#%d" t.id t.attempt);
        Briefcase.set job "WORK" (string_of_float t.work);
        Briefcase.set job "REPLY-HOST" (Kernel.site_name t.kernel t.client);
        Briefcase.set job "REPLY-AGENT" (reply_agent t);
        Kernel.send_briefcase t.kernel ~src:t.client ~dst:psite ~contact:provider job
      | _ ->
        (* no provider right now: leave the attempt timer running; load
           reports may refresh the database before it expires *)
        ())
    | Some _ | None -> (
      (* a provider's completion notice *)
      match Briefcase.find_opt bc "STATUS" with
      | Some "done" ->
        let provider =
          match Briefcase.find_opt bc "PROVIDER" with
          | Some p -> p
          | None -> Option.value ~default:"?" t.current_provider
        in
        finish t (Booked { provider; attempts = t.attempt })
      | _ -> ())
  end
  else if Briefcase.find_opt bc "STATUS" = Some "done" then
    (* a booking that failed over can still be fulfilled late by the
       abandoned provider: the work then ran twice.  Surface it. *)
    Obs.Metrics.incr (Kernel.metrics t.kernel) "broker.duplicate_fulfillments"

let book kernel ~client ~broker:(broker_site, broker_name) ~service ?(work = 1.0)
    ?policy ?(timeout = 10.0) ?(max_attempts = 3) ?on_done ~id () =
  let t =
    {
      kernel;
      id;
      service;
      client;
      broker_site;
      broker_name;
      work;
      timeout;
      max_attempts;
      policy;
      on_done;
      attempt = 0;
      excluded = [];
      current_provider = None;
      result = None;
    }
  in
  Obs.Metrics.incr (Kernel.metrics kernel) "broker.bookings";
  Kernel.register_native kernel ~site:t.client (reply_agent t) (fun _ bc ->
      handle_reply t bc);
  start_attempt t;
  t

module Kernel = Tacoma_core.Kernel
module Briefcase = Tacoma_core.Briefcase
module Folder = Tacoma_core.Folder
module Net = Netsim.Net

type route = { service : string; cost : int; via : string }

type entry = { mutable cost : int; mutable via : string; mutable refreshed : float }

type node = {
  broker : Matchmaker.t;
  mutable peers : node list;
  table : (string, entry) Hashtbl.t; (* remote services *)
}

type t = {
  kernel : Kernel.t;
  advert_period : float;
  max_cost : int;
  expiry : float;
  nodes : (string, node) Hashtbl.t; (* broker agent name -> node *)
  mutable query_counter : int;
}

let create kernel ?(advert_period = 1.0) ?(max_cost = 16) ?(expiry = 3.0) () =
  {
    kernel;
    advert_period;
    max_cost;
    expiry = expiry *. advert_period;
    nodes = Hashtbl.create 8;
    query_counter = 0;
  }

let route_agent_name broker = "route:" ^ Matchmaker.agent_name broker
let node_exn t name = Hashtbl.find t.nodes name

let routes t broker =
  match Hashtbl.find_opt t.nodes (Matchmaker.agent_name broker) with
  | None -> []
  | Some node ->
    Hashtbl.fold
      (fun service e acc -> { service; cost = e.cost; via = e.via } :: acc)
      node.table []
    |> List.sort compare

(* services this node can reach, with costs: local providers cost 0,
   remote ones their table cost (if still fresh) *)
let reachable t node =
  let now = Kernel.now t.kernel in
  let acc = Hashtbl.create 8 in
  List.iter
    (fun service -> Hashtbl.replace acc service 0)
    (Matchmaker.services node.broker);
  Hashtbl.iter
    (fun service e ->
      if now -. e.refreshed <= t.expiry && e.cost < t.max_cost then
        match Hashtbl.find_opt acc service with
        | Some c when c <= e.cost -> ()
        | Some _ | None -> Hashtbl.replace acc service e.cost)
    node.table;
  Hashtbl.fold (fun s c acc -> (s, c) :: acc) acc []

let send_to_broker t ~src dst_broker ~contact bc =
  Kernel.send_briefcase t.kernel ~src ~dst:(Matchmaker.site dst_broker) ~contact bc

let advertise t node =
  let entries = reachable t node in
  let wire = List.map (fun (s, c) -> Printf.sprintf "%s:%d" s c) entries in
  List.iter
    (fun peer ->
      let bc = Briefcase.create () in
      Briefcase.set bc "OP" "advert";
      Briefcase.set bc "FROM" (Matchmaker.agent_name node.broker);
      Folder.replace (Briefcase.folder bc "SERVICES") wire;
      send_to_broker t ~src:(Matchmaker.site node.broker) peer.broker
        ~contact:(route_agent_name peer.broker) bc)
    node.peers

let handle_advert t node bc =
  let from = Option.value ~default:"?" (Briefcase.find_opt bc "FROM") in
  let now = Kernel.now t.kernel in
  Folder.iter
    (fun line ->
      match String.rindex_opt line ':' with
      | None -> ()
      | Some i -> (
        let service = String.sub line 0 i in
        match int_of_string_opt (String.sub line (i + 1) (String.length line - i - 1)) with
        | None -> ()
        | Some cost ->
          let cost = cost + 1 in
          if cost <= t.max_cost then begin
            match Hashtbl.find_opt node.table service with
            | Some e ->
              (* adopt cheaper routes, refresh the current one, and accept
                 cost increases from our own next hop (route decay) *)
              if cost < e.cost || e.via = from then begin
                e.cost <- cost;
                e.via <- from;
                e.refreshed <- now
              end
            | None -> Hashtbl.replace node.table service { cost; via = from; refreshed = now }
          end))
    (Briefcase.folder bc "SERVICES")

let reply_error t ~src bc msg =
  match (Briefcase.find_opt bc "REPLY-HOST", Briefcase.find_opt bc "REPLY-AGENT") with
  | Some host, Some agent -> (
    match Kernel.site_named t.kernel host with
    | Some dst ->
      let out = Briefcase.create () in
      Briefcase.set out "QUERY" (Option.value ~default:"" (Briefcase.find_opt bc "QUERY"));
      Briefcase.set out "STATUS" msg;
      Kernel.send_briefcase t.kernel ~src ~dst ~contact:agent out
    | None -> ())
  | _ -> ()

let handle_query t node bc =
  let src = Matchmaker.site node.broker in
  match Briefcase.find_opt bc "SERVICE" with
  | None -> reply_error t ~src bc "malformed-query"
  | Some service -> (
    let hops =
      Option.value ~default:0 (Option.bind (Briefcase.find_opt bc "HOPS") int_of_string_opt)
    in
    match Matchmaker.lookup node.broker ~service () with
    | Some c -> (
      (* resolved here: answer the requester directly *)
      match (Briefcase.find_opt bc "REPLY-HOST", Briefcase.find_opt bc "REPLY-AGENT") with
      | Some host, Some agent -> (
        match Kernel.site_named t.kernel host with
        | Some dst ->
          let out = Briefcase.create () in
          Briefcase.set out "QUERY" (Option.value ~default:"" (Briefcase.find_opt bc "QUERY"));
          Briefcase.set out "STATUS" "ok";
          Briefcase.set out "PROVIDER" c.Policy.provider;
          Briefcase.set out "PROVIDER-HOST" c.Policy.host;
          Briefcase.set out "CAPACITY" (string_of_float c.Policy.capacity);
          Briefcase.set out "LOAD" (string_of_float c.Policy.load);
          Briefcase.set out "HOPS" (string_of_int hops);
          Kernel.send_briefcase t.kernel ~src ~dst ~contact:agent out
        | None -> ())
      | _ -> ())
    | None -> (
      (* forward along the gradient *)
      if hops >= t.max_cost then reply_error t ~src bc "ttl-exhausted"
      else
        let now = Kernel.now t.kernel in
        match Hashtbl.find_opt node.table service with
        | Some e when now -. e.refreshed <= t.expiry -> (
          match Hashtbl.find_opt t.nodes e.via with
          | Some via_node ->
            Briefcase.set bc "HOPS" (string_of_int (hops + 1));
            send_to_broker t ~src via_node.broker
              ~contact:(route_agent_name via_node.broker) bc
          | None -> reply_error t ~src bc "no-provider")
        | Some _ | None -> reply_error t ~src bc "no-provider"))

let rec advert_loop t node ctx =
  if Net.site_up (Kernel.net t.kernel) (Matchmaker.site node.broker) then begin
    advertise t node;
    Kernel.sleep ctx t.advert_period;
    advert_loop t node ctx
  end

let add_broker t broker =
  let name = Matchmaker.agent_name broker in
  if Hashtbl.mem t.nodes name then invalid_arg "Routing.add_broker: already registered";
  let node = { broker; peers = []; table = Hashtbl.create 16 } in
  Hashtbl.replace t.nodes name node;
  Kernel.register_native t.kernel ~site:(Matchmaker.site broker) (route_agent_name broker)
    (fun _ bc ->
      match Option.value ~default:"query" (Briefcase.find_opt bc "OP") with
      | "advert" -> handle_advert t node bc
      | "query" -> handle_query t node bc
      | other -> raise (Kernel.Agent_error ("route: unknown op " ^ other)));
  let loop_name = "route-loop:" ^ name in
  Kernel.register_native t.kernel ~site:(Matchmaker.site broker) loop_name (fun ctx _ ->
      advert_loop t node ctx);
  Kernel.launch t.kernel ~site:(Matchmaker.site broker) ~contact:loop_name
    (Briefcase.create ())

let connect t a b =
  let na = node_exn t (Matchmaker.agent_name a) in
  let nb = node_exn t (Matchmaker.agent_name b) in
  if not (List.memq nb na.peers) then na.peers <- nb :: na.peers;
  if not (List.memq na nb.peers) then nb.peers <- na :: nb.peers

let routed_lookup t ~from ~service ~on_reply =
  t.query_counter <- t.query_counter + 1;
  let qid = Printf.sprintf "rq-%d" t.query_counter in
  let src = Matchmaker.site from in
  let reply_agent = "route-reply:" ^ qid in
  let fired = ref false in
  Kernel.register_native t.kernel ~site:src reply_agent (fun _ bc ->
      if not !fired then begin
        fired := true;
        match Briefcase.find_opt bc "STATUS" with
        | Some "ok" ->
          let candidate =
            {
              Policy.provider = Option.value ~default:"?" (Briefcase.find_opt bc "PROVIDER");
              host = Option.value ~default:"?" (Briefcase.find_opt bc "PROVIDER-HOST");
              capacity =
                Option.value ~default:1.0
                  (Option.bind (Briefcase.find_opt bc "CAPACITY") float_of_string_opt);
              load =
                Option.value ~default:0.0
                  (Option.bind (Briefcase.find_opt bc "LOAD") float_of_string_opt);
              report_age = 0.0;
            }
          in
          let hops =
            Option.value ~default:0 (Option.bind (Briefcase.find_opt bc "HOPS") int_of_string_opt)
          in
          on_reply (Ok (candidate, hops))
        | Some err -> on_reply (Error err)
        | None -> on_reply (Error "malformed-reply")
      end);
  let bc = Briefcase.create () in
  Briefcase.set bc "OP" "query";
  Briefcase.set bc "QUERY" qid;
  Briefcase.set bc "SERVICE" service;
  Briefcase.set bc "HOPS" "0";
  Briefcase.set bc "REPLY-HOST" (Kernel.site_name t.kernel src);
  Briefcase.set bc "REPLY-AGENT" reply_agent;
  Kernel.send_briefcase t.kernel ~src ~dst:src ~contact:(route_agent_name from) bc

(** Timeout-and-failover booking: the client side of the broker protocol,
    hardened against partitions.

    The paper's broker (§4) only answers lookups; what happens when the
    chosen provider is unreachable is the client's problem.  This module
    makes the end-to-end path survive that: a booking asks the matchmaker
    for a provider (remotely, via the reply-to extension of the lookup op),
    submits the job, and watches an end-to-end timer.  If {e anything} on
    the path — lookup, submission, execution, completion notice — fails to
    come back within [timeout], the attempt is abandoned, the chosen
    provider is added to the exclusion list, and the lookup is retried
    against an alternate provider, up to [max_attempts].

    Counted in the metrics registry: [broker.bookings],
    [broker.bookings_ok], [broker.booking_failures], [broker.failovers] and
    [broker.duplicate_fulfillments] (an abandoned provider completing
    late — the at-most-once caveat of timeout-based failover). *)

type t

type outcome =
  | Booked of { provider : string; attempts : int }
  | Failed of { attempts : int }

val book :
  Tacoma_core.Kernel.t ->
  client:Netsim.Site.id ->
  broker:Netsim.Site.id * string ->
  service:string ->
  ?work:float ->
  ?policy:Policy.t ->
  ?timeout:float ->
  ?max_attempts:int ->
  ?on_done:(outcome -> unit) ->
  id:string ->
  unit ->
  t
(** Start a booking from site [client] against the matchmaker at [broker].
    [work] is the job duration handed to the provider (default 1.0s);
    [timeout] (default 10s) bounds each attempt end-to-end; [on_done] fires
    exactly once.  [id] must be unique per kernel. *)

val result : t -> outcome option
(** [None] while still in flight. *)

val attempts : t -> int

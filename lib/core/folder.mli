(** Folders (paper §2): "a list of elements, each of which is an
    uninterpreted sequence of bits.  Because it is a list, it can be treated
    as a stack or a queue."

    Unlike files, folders must be cheap to move between sites, so the
    representation is a plain list with no index structures; {!Cabinet}
    folders trade that mobility for indexed access. *)

type t

val create : unit -> t
val of_list : string list -> t
val to_list : t -> string list
(** Head (stack top / queue front) first. *)

val copy : t -> t
val length : t -> int
val is_empty : t -> bool

(** {1 Stack discipline} *)

val push : t -> string -> unit
(** Add at the head. *)

val pop : t -> string option
(** Remove from the head. *)

val peek : t -> string option

(** {1 Queue discipline} *)

val enqueue : t -> string -> unit
(** Add at the tail. *)

val dequeue : t -> string option
(** Remove from the head (same end [pop] uses). *)

(** {1 Whole-folder operations} *)

val clear : t -> unit
val replace : t -> string list -> unit

val nth_opt : t -> int -> string option
(** Stdlib naming convention shared with {!Briefcase} and {!Cabinet}:
    [*_opt] returns an option. *)

val nth : t -> int -> string option
  [@@deprecated "use Folder.nth_opt (same behaviour); nth goes away next release"]

val contains : t -> string -> bool
(** Linear scan — folders are unindexed by design. *)

val iter : (string -> unit) -> t -> unit
val fold : ('a -> string -> 'a) -> 'a -> t -> 'a

val byte_size : t -> int
(** Sum of element sizes; the basis of transfer-cost accounting. *)

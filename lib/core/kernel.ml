module Net = Netsim.Net
module Engine = Netsim.Engine
module Rng = Tacoma_util.Rng

type transport = Rsh | Tcp | Horus

let transport_of_string s =
  match String.lowercase_ascii s with
  | "rsh" -> Some Rsh
  | "tcp" -> Some Tcp
  | "horus" -> Some Horus
  | _ -> None

let transport_name = function Rsh -> "rsh" | Tcp -> "tcp" | Horus -> "horus"

type rsh_config = { spawn_delay : float; extra_bytes : int }
type tcp_config = { handshake_bytes : int; extra_bytes : int }

type horus_config = {
  extra_bytes : int;
  ack_bytes : int;
  rto : float;
  max_attempts : int;
  group : bool;
}

type cache_config = Codecache.config = {
  budget_bytes : int;
  request_bytes : int;
  reply_overhead_bytes : int;
  fetch_timeout : float;
  fetch_attempts : int;
}

type config = {
  default_transport : transport;
  step_limit : int option;
  prelude : string;
  migration_overhead : int;
  rsh : rsh_config;
  tcp : tcp_config;
  horus : horus_config;
  cache : cache_config option;
}

(* The rsh numbers model spawning a fresh interpreter per hop (fork/exec +
   login) as the first TACOMA prototype did; tcp models a cached connection
   with a 3-way handshake on first use; horus adds acks and retransmission. *)
let default_rsh_config = { spawn_delay = 0.25; extra_bytes = 1024 }
let default_tcp_config = { handshake_bytes = 192; extra_bytes = 64 }

let default_horus_config =
  { extra_bytes = 256; ack_bytes = 64; rto = 1.0; max_attempts = 5; group = false }

let default_cache_config = Codecache.default_config

let default_config =
  {
    default_transport = Tcp;
    step_limit = Some 2_000_000;
    prelude = Prelude.standard;
    migration_overhead = 128;
    rsh = default_rsh_config;
    tcp = default_tcp_config;
    horus = default_horus_config;
    cache = None;
  }

exception Agent_error of string
exception Aborted of string

type place = { mutable epoch : int; mutable cab : Cabinet.t }

type ack_state = {
  mutable attempts : int;
  ack_src : int;
  ack_dst : int;
  ack_size : int;
  ack_payload : Netsim.Message.payload;
  mutable ack_timer : Engine.timer option;
}

type pending_fetch = {
  pf_site : int;
  pf_epoch : int;
  pf_contact : string;
  pf_bc : Briefcase.t;
  pf_digest : string;
  pf_span : Obs.Span.ctx;
  mutable pf_timer : Engine.timer option;
  mutable pf_attempts : int;
}

type t = {
  net : Net.t;
  cfg : config;
  places : place array;
  caches : Codecache.t array; (* empty unless cfg.cache = Some _ *)
  interp_caches : Tscript.Interp.caches;
      (* compile caches shared by every per-activation interpreter: an
         agent's script and loop expressions are compiled once per
         simulation, not once per activation *)
  pending_fetches : (int, pending_fetch) Hashtbl.t;
  mutable fetch_counter : int;
  mutable cache_saved_bytes : int;
  global_natives : (string, native) Hashtbl.t;
  site_natives : (int * string, native) Hashtbl.t;
  global_scripts : (string, string) Hashtbl.t;
  site_scripts : (int * string, string) Hashtbl.t;
  name_to_site : (string, int) Hashtbl.t;
  connections : (int * int, unit) Hashtbl.t;
  pending_acks : (int, ack_state) Hashtbl.t;
  mutable mid_counter : int;
  mutable id_counter : int;
  rng : Rng.t;
  mutable stat_migrations : int;
  mutable stat_activations : int;
  mutable stat_deaths : int;
  mutable stat_completions : int;
  mutable death_hooks : (site:Netsim.Site.id -> agent:string -> reason:string -> unit) list;
  mutable complete_hooks : (site:Netsim.Site.id -> agent:string -> unit) list;
  mutable group : Horus.Group.t option;
  mutable step_policy : (Briefcase.t -> int option) option;
  activity_tbl : (string, activity_cell) Hashtbl.t;
}

and activity_cell = {
  mutable c_activations : int;
  mutable c_completions : int;
  mutable c_deaths : int;
}

and ctx = { kernel : t; site : Netsim.Site.id; self : string }
and native = ctx -> Briefcase.t -> unit

type Netsim.Message.payload +=
  | Migration of { mid : int; contact : string; bc_wire : string; needs_ack : bool }
  | Migration_ack of { mid : int }
  | Code_fetch of { fid : int; digest : string }
  | Code_fetch_reply of { fid : int; code : string list option }

type _ Effect.t += Sleep_eff : float -> unit Effect.t

let net t = t.net
let config t = t.cfg
let now t = Net.now t.net
let rng t = t.rng
let site_named t name = Hashtbl.find_opt t.name_to_site name
let site_name t site = Netsim.Topology.site_name (Net.topology t.net) site
let cabinet t site = t.places.(site).cab

let neighbor_names t site = List.map (site_name t) (Net.neighbors t.net site)

let trace t kind detail = Netsim.Trace.add (Net.trace t.net) ~time:(now t) kind detail

(* ---- flight recorder ----------------------------------------------------- *)

let recorder t = Net.recorder t.net
let metrics t = Net.metrics t.net

let fresh_id t =
  t.id_counter <- t.id_counter + 1;
  t.id_counter

(* The span context an agent carries rides in the briefcase's system TRACE
   folder, so it survives serialisation and migration like any other state.
   It is only ever written while tracing is on: with the recorder off the
   briefcase (and hence every wire size) is byte-identical. *)
let briefcase_span bc =
  Option.bind (Briefcase.find_opt bc Briefcase.trace_folder) Obs.Span.of_string

let set_briefcase_span bc ctx =
  Briefcase.set bc Briefcase.trace_folder (Obs.Span.to_string ctx)

let reason_of_exn = function
  | Agent_error m -> "agent error: " ^ m
  | Aborted m -> "aborted: " ^ m
  | Tscript.Interp.Resource_exhausted -> "resource exhausted"
  | e -> "exception: " ^ Printexc.to_string e

(* label-safe death classification for the kernel.deaths counter *)
let reason_class_of_exn = function
  | Agent_error _ -> "agent-error"
  | Aborted _ -> "aborted"
  | Tscript.Interp.Resource_exhausted -> "resource-exhausted"
  | _ -> "exception"

(* ---- agent registry ------------------------------------------------------ *)

let register_native t ?site name fn =
  match site with
  | None -> Hashtbl.replace t.global_natives name fn
  | Some s -> Hashtbl.replace t.site_natives (s, name) fn

let install_script t ?site name ~code =
  match site with
  | None -> Hashtbl.replace t.global_scripts name code
  | Some s -> Hashtbl.replace t.site_scripts (s, name) code

type resolved = Rnative of native | Rscript of string

let resolve t site name =
  match Hashtbl.find_opt t.site_natives (site, name) with
  | Some fn -> Some (Rnative fn)
  | None -> (
    match Hashtbl.find_opt t.global_natives name with
    | Some fn -> Some (Rnative fn)
    | None -> (
      match Hashtbl.find_opt t.site_scripts (site, name) with
      | Some code -> Some (Rscript code)
      | None -> (
        match Hashtbl.find_opt t.global_scripts name with
        | Some code -> Some (Rscript code)
        | None -> None)))

let agent_exists t site name = Option.is_some (resolve t site name)

(* ---- script execution ----------------------------------------------------- *)

let sleep (_ : ctx) dur = Effect.perform (Sleep_eff dur)

let transmit t ~src ~dst ~size payload = Net.send t.net ~src ~dst ~size payload

let send_briefcase t ~src ~dst ~contact bc =
  let wire = Briefcase.serialize bc in
  transmit t ~src ~dst
    ~size:(String.length wire + t.cfg.migration_overhead)
    (Migration { mid = 0; contact; bc_wire = wire; needs_ack = false })

(* [meet_inner] is the bare dispatch; [meet] wraps it in a child span so
   nested meets show up as a tree under their activation.  [run_activation]
   calls [meet_inner] directly — the activation span already names the
   contact. *)
let rec meet_inner ctx name bc =
  match resolve ctx.kernel ctx.site name with
  | None -> raise (Agent_error (Printf.sprintf "meet: no agent %S at %s" name (site_name ctx.kernel ctx.site)))
  | Some (Rnative fn) -> fn { ctx with self = name } bc
  | Some (Rscript code) -> run_code { ctx with self = name } ~code bc

and meet ctx name bc =
  let t = ctx.kernel in
  Obs.Metrics.incr (metrics t) "kernel.meets";
  let tr = recorder t in
  if not (Obs.Tracer.enabled tr) then meet_inner ctx name bc
  else begin
    let span_name = "meet:" ^ name in
    let span =
      Obs.Tracer.start_span tr ~time:(now t) ?parent:(briefcase_span bc) ~site:ctx.site
        ~agent:name span_name
    in
    (* the callee sees itself as the live span; restore the caller's context
       afterwards so sibling meets parent correctly *)
    let saved = Briefcase.find_opt bc Briefcase.trace_folder in
    set_briefcase_span bc span;
    let restore () =
      match saved with
      | Some s -> Briefcase.set bc Briefcase.trace_folder s
      | None -> Briefcase.remove bc Briefcase.trace_folder
    in
    match meet_inner ctx name bc with
    | () ->
      restore ();
      Obs.Tracer.end_span tr ~time:(now t) ~site:ctx.site ~agent:name span span_name
    | exception e ->
      restore ();
      Obs.Tracer.end_span tr ~time:(now t) ~site:ctx.site ~agent:name
        ~attrs:[ ("error", Obs.Event.S (reason_of_exn e)) ]
        span span_name;
      raise e
  end

and run_code ctx ~code bc =
  let t = ctx.kernel in
  let step_limit =
    match t.step_policy with
    | Some policy -> (
      match policy bc with Some budget -> Some budget | None -> t.cfg.step_limit)
    | None -> t.cfg.step_limit
  in
  let it = Tscript.Interp.create ?step_limit ~caches:t.interp_caches () in
  let host =
    {
      Bindings.site_name = (fun () -> site_name t ctx.site);
      self = (fun () -> ctx.self);
      now = (fun () -> now t);
      neighbors = (fun () -> neighbor_names t ctx.site);
      meet =
        (fun name ->
          try meet ctx name bc
          with Agent_error msg -> raise (Tscript.Interp.Error_exc msg));
      sleep = (fun d -> sleep ctx d);
      log = (fun msg -> trace t Netsim.Trace.Agent (Printf.sprintf "%s@%s: %s" ctx.self (site_name t ctx.site) msg));
      random_int = (fun n -> Rng.int t.rng n);
      cabinet = cabinet t ctx.site;
      code = (fun () -> code);
      dispatch =
        (fun ~host ~contact ->
          match site_named t host with
          | Some dst -> send_briefcase t ~src:ctx.site ~dst ~contact (Briefcase.copy bc)
          | None ->
            raise
              (Tscript.Interp.Error_exc (Printf.sprintf "dispatch: unknown host %S" host)));
    }
  in
  Bindings.install host bc it;
  (if t.cfg.prelude <> "" then
     match Tscript.Interp.eval it t.cfg.prelude with
     | Ok _ -> ()
     | Error msg -> raise (Agent_error (Printf.sprintf "prelude: %s" msg)));
  let sim0 = now t in
  let wall0 = Sys.time () in
  (* the interpreter's shape counters feed per-agent histograms; recorded on
     every exit path (including Resource_exhausted and effect aborts) *)
  let observe_profile () =
    let m = metrics t in
    let labels = [ ("agent", ctx.self) ] in
    Obs.Metrics.incr m ~labels "interp.runs";
    Obs.Metrics.observe m ~labels "interp.steps" (float_of_int (Tscript.Interp.steps_used it));
    Obs.Metrics.observe m ~labels "interp.sim_s" (now t -. sim0);
    Obs.Metrics.observe m ~labels "interp.wall_s" (Sys.time () -. wall0);
    let p = Tscript.Interp.profile it in
    Obs.Metrics.observe m ~labels "interp.proc_calls" (float_of_int p.Tscript.Interp.proc_calls);
    Obs.Metrics.observe m ~labels "interp.proc_depth" (float_of_int p.Tscript.Interp.max_depth);
    (* unlabeled cache-effectiveness counters over the shared compile
       caches; [expr_misses] doubles as the compiled-expression count *)
    Obs.Metrics.incr m ~by:p.Tscript.Interp.parse_hits "tscript.parse_cache.hit";
    Obs.Metrics.incr m ~by:p.Tscript.Interp.parse_misses "tscript.parse_cache.miss";
    Obs.Metrics.incr m ~by:p.Tscript.Interp.parse_evictions "tscript.parse_cache.evict";
    Obs.Metrics.incr m ~by:p.Tscript.Interp.expr_hits "tscript.expr_cache.hit";
    Obs.Metrics.incr m ~by:p.Tscript.Interp.expr_misses "tscript.expr_cache.miss";
    Obs.Metrics.incr m ~by:p.Tscript.Interp.expr_evictions "tscript.expr_cache.evict";
    Obs.Metrics.incr m ~by:p.Tscript.Interp.expr_misses "tscript.exprs_compiled"
  in
  match Tscript.Interp.eval it code with
  | Ok _ -> observe_profile ()
  | Error msg ->
    observe_profile ();
    raise (Agent_error (Printf.sprintf "%s: %s" ctx.self msg))
  | exception e ->
    observe_profile ();
    raise e

(* ---- activations ----------------------------------------------------------- *)

let activity_cell t agent =
  match Hashtbl.find_opt t.activity_tbl agent with
  | Some c -> c
  | None ->
    let c = { c_activations = 0; c_completions = 0; c_deaths = 0 } in
    Hashtbl.replace t.activity_tbl agent c;
    c

let run_hooks_death t ~cls ~site ~agent ~reason =
  t.stat_deaths <- t.stat_deaths + 1;
  (activity_cell t agent).c_deaths <- (activity_cell t agent).c_deaths + 1;
  Obs.Metrics.incr (metrics t) ~labels:[ ("class", cls) ] "kernel.deaths";
  trace t Netsim.Trace.Agent (Printf.sprintf "death of %s@%s: %s" agent (site_name t site) reason);
  List.iter (fun h -> h ~site ~agent ~reason) (List.rev t.death_hooks)

let run_hooks_complete t ~site ~agent =
  t.stat_completions <- t.stat_completions + 1;
  (activity_cell t agent).c_completions <- (activity_cell t agent).c_completions + 1;
  Obs.Metrics.incr (metrics t) "kernel.completions";
  List.iter (fun h -> h ~site ~agent) (List.rev t.complete_hooks)

let run_activation t ~site ~contact bc =
  t.stat_activations <- t.stat_activations + 1;
  (activity_cell t contact).c_activations <- (activity_cell t contact).c_activations + 1;
  Obs.Metrics.incr (metrics t) "kernel.activations";
  let ctx = { kernel = t; site; self = contact } in
  let tr = recorder t in
  (* the activation span parents to whatever span dispatched this briefcase
     (carried in its TRACE folder across the wire), stitching the hops of a
     journey — and of a guard relaunch — into one causal tree *)
  let span =
    if not (Obs.Tracer.enabled tr) then Obs.Span.null
    else begin
      let span =
        Obs.Tracer.start_span tr ~time:(now t) ?parent:(briefcase_span bc) ~site ~agent:contact
          ("activate:" ^ contact)
      in
      set_briefcase_span bc span;
      span
    end
  in
  let open Effect.Deep in
  match_with
    (fun () -> meet_inner ctx contact bc)
    ()
    {
      retc =
        (fun () ->
          if Obs.Tracer.enabled tr then
            Obs.Tracer.end_span tr ~time:(now t) ~site ~agent:contact span
              ("activate:" ^ contact);
          run_hooks_complete t ~site ~agent:contact);
      exnc =
        (fun e ->
          if Obs.Tracer.enabled tr then
            Obs.Tracer.end_span tr ~time:(now t) ~site ~agent:contact
              ~attrs:[ ("error", Obs.Event.S (reason_of_exn e)) ]
              span ("activate:" ^ contact);
          run_hooks_death t ~cls:(reason_class_of_exn e) ~site ~agent:contact
            ~reason:(reason_of_exn e));
      effc =
        (fun (type b) (eff : b Effect.t) ->
          match eff with
          | Sleep_eff dur ->
            Some
              (fun (k : (b, unit) continuation) ->
                let epoch = t.places.(site).epoch in
                ignore
                  (Net.schedule t.net ~after:dur (fun () ->
                       if Net.site_up t.net site && t.places.(site).epoch = epoch then
                         continue k ()
                       else discontinue k (Aborted "site crashed"))))
          | _ -> None);
    }

let launch t ~site ~contact bc =
  ignore
    (Net.schedule t.net ~after:0.0 (fun () ->
         if Net.site_up t.net site then run_activation t ~site ~contact bc))

(* ---- migration -------------------------------------------------------------- *)


let rec horus_retry t st mid =
  (* abort early when the kernel group's view already excludes the target *)
  let believed_dead =
    match t.group with
    | None -> false
    | Some g -> (
      match Horus.Group.view_at g st.ack_src with
      | Some v -> not (Horus.View.mem v st.ack_dst)
      | None -> false)
  in
  if st.attempts >= t.cfg.horus.max_attempts || believed_dead then begin
    Hashtbl.remove t.pending_acks mid;
    Obs.Metrics.incr (metrics t) "horus.giveups";
    trace t Netsim.Trace.Drop
      (Printf.sprintf "horus rexec %d to site-%d gave up after %d attempts" mid st.ack_dst
         st.attempts)
  end
  else begin
    st.attempts <- st.attempts + 1;
    if st.attempts > 1 then Obs.Metrics.incr (metrics t) "horus.retransmits";
    if Net.site_up t.net st.ack_src then
      transmit t ~src:st.ack_src ~dst:st.ack_dst ~size:st.ack_size st.ack_payload;
    st.ack_timer <-
      Some
        (Net.schedule t.net ~after:(t.cfg.horus.rto *. float_of_int st.attempts) (fun () ->
             if Hashtbl.mem t.pending_acks mid then horus_retry t st mid))
  end

(* ---- content-addressed code cache (see Codecache) --------------------------- *)

let cache_enabled t = Array.length t.caches > 0
let code_cache t site = if cache_enabled t then Some t.caches.(site) else None

(* Net wire bytes the substitution has avoided so far: bytes stripped from
   migrations, minus everything the fallback fetch protocol cost. *)
let add_cache_saved t delta =
  t.cache_saved_bytes <- t.cache_saved_bytes + delta;
  Obs.Metrics.set_gauge (metrics t) "codecache.bytes_saved"
    (float_of_int t.cache_saved_bytes)

(* Wire contribution of one briefcase folder: encoded name + element list. *)
let folder_wire_bytes name elems = Codec.encoded_size name + Codecache.wire_bytes elems

(* The sender side of the cache: replace the CODE payload with its digest
   and publish the entry in this site's cache, which also serves fallback
   fetches.  Ships in full when the cache is off, CODE is empty, or the
   entry alone exceeds the budget (then nobody could ever resolve it). *)
let serialize_for_wire t ~src bc =
  if not (cache_enabled t) then Briefcase.serialize bc
  else
    match Briefcase.folder_opt bc Briefcase.code_folder with
    | None -> Briefcase.serialize bc
    | Some f when Folder.is_empty f -> Briefcase.serialize bc
    | Some f ->
      let elems = Folder.to_list f in
      let dg = Codecache.digest elems in
      if not (Codecache.insert t.caches.(src) ~digest:dg elems) then
        Briefcase.serialize bc
      else begin
        let bc' = Briefcase.copy bc in
        Briefcase.remove bc' Briefcase.code_folder;
        Briefcase.set bc' Briefcase.code_ref_folder dg;
        add_cache_saved t
          (folder_wire_bytes Briefcase.code_folder elems
          - folder_wire_bytes Briefcase.code_ref_folder [ dg ]);
        Briefcase.serialize bc'
      end

let end_fetch_span t pf ?error () =
  let tr = recorder t in
  if Obs.Tracer.enabled tr then
    Obs.Tracer.end_span tr ~time:(now t) ~site:pf.pf_site ~agent:pf.pf_contact
      ?attrs:(Option.map (fun e -> [ ("error", Obs.Event.S e) ]) error)
      pf.pf_span "codecache.fetch"

(* Receiver side, miss path: hold the activation, ask the sending site for
   the code (one extra round trip, byte-accounted like any message), and
   give up after the configured timeout — the loss then shows up as a
   death of class ["code-fetch"], which rear guards recover like any other
   lost hop. *)
let begin_fetch t ~site ~src ~contact ~digest ~ccfg bc =
  let fid = t.fetch_counter in
  t.fetch_counter <- fid + 1;
  let tr = recorder t in
  let span =
    if not (Obs.Tracer.enabled tr) then Obs.Span.null
    else
      Obs.Tracer.start_span tr ~time:(now t) ?parent:(briefcase_span bc) ~site ~agent:contact
        ~attrs:[ ("digest", Obs.Event.S digest); ("src", Obs.Event.I src) ]
        "codecache.fetch"
  in
  let pf =
    {
      pf_site = site;
      pf_epoch = t.places.(site).epoch;
      pf_contact = contact;
      pf_bc = bc;
      pf_digest = digest;
      pf_span = span;
      pf_timer = None;
      pf_attempts = 1;
    }
  in
  Hashtbl.replace t.pending_fetches fid pf;
  Obs.Metrics.incr (metrics t) "codecache.fetches";
  let send_request () =
    add_cache_saved t (-ccfg.request_bytes);
    transmit t ~src:site ~dst:src ~size:ccfg.request_bytes (Code_fetch { fid; digest })
  in
  send_request ();
  let rec arm () =
    pf.pf_timer <-
      Some
        (Net.schedule t.net ~after:ccfg.fetch_timeout (fun () ->
             if Hashtbl.mem t.pending_fetches fid then begin
               let alive = Net.site_up t.net site && t.places.(site).epoch = pf.pf_epoch in
               if alive && pf.pf_attempts < ccfg.fetch_attempts then begin
                 (* bounded retry: the request or reply may have been lost to
                    a partition or loss burst rather than a dead source *)
                 pf.pf_attempts <- pf.pf_attempts + 1;
                 Obs.Metrics.incr (metrics t) "codecache.fetch_retries";
                 send_request ();
                 arm ()
               end
               else begin
                 Hashtbl.remove t.pending_fetches fid;
                 Obs.Metrics.incr (metrics t) "codecache.fetch_failures";
                 end_fetch_span t pf ~error:"timeout" ();
                 if alive then
                   run_hooks_death t ~cls:"code-fetch" ~site ~agent:contact
                     ~reason:
                       (Printf.sprintf "code fetch timed out (digest %s)"
                          (String.sub digest 0 (min 12 (String.length digest))))
               end
             end))
  in
  arm ()

(* Every migration lands here after deserialisation: resolve a code
   reference against this place's cache, or fall back to a fetch. *)
let accept_briefcase t ~site ~src ~contact bc =
  match Briefcase.find_opt bc Briefcase.code_ref_folder with
  | None -> run_activation t ~site ~contact bc
  | Some dg -> (
    Briefcase.remove bc Briefcase.code_ref_folder;
    match t.cfg.cache with
    | None ->
      (* a reference arrived at a kernel without a cache: nothing can
         resolve it, which is a configuration error, not data *)
      run_hooks_death t ~cls:"code-fetch" ~site ~agent:contact
        ~reason:"briefcase carries a code reference but no cache is configured"
    | Some ccfg -> (
      match Codecache.find_opt t.caches.(site) ~digest:dg with
      | Some elems ->
        Obs.Metrics.incr (metrics t) "codecache.hits";
        Folder.replace (Briefcase.folder bc Briefcase.code_folder) elems;
        run_activation t ~site ~contact bc
      | None ->
        Obs.Metrics.incr (metrics t) "codecache.misses";
        begin_fetch t ~site ~src ~contact ~digest:dg ~ccfg bc))

(* ---- migration -------------------------------------------------------------- *)

let migrate t ~src ~dst ~contact ~transport bc =
  t.stat_migrations <- t.stat_migrations + 1;
  Obs.Metrics.incr (metrics t)
    ~labels:[ ("transport", transport_name transport) ]
    "kernel.migrations";
  let wire = serialize_for_wire t ~src bc in
  let base = String.length wire + t.cfg.migration_overhead in
  (let tr = recorder t in
   if Obs.Tracer.enabled tr then
     Obs.Tracer.instant tr ~time:(now t) ?span:(briefcase_span bc) ~cat:"kernel" ~site:src
       ~agent:contact
       ~msg:
         (Printf.sprintf "rexec %s: %s -> %s contact=%s (%d bytes)" (transport_name transport)
            (site_name t src) (site_name t dst) contact base)
       ~attrs:
         [
           ("dst", Obs.Event.I dst);
           ("transport", Obs.Event.S (transport_name transport));
           ("bytes", Obs.Event.I base);
         ]
       "kernel.migrate");
  match transport with
  | Rsh ->
    (* a fresh interpreter is spawned remotely before the agent can move *)
    ignore
      (Net.schedule t.net ~after:t.cfg.rsh.spawn_delay (fun () ->
           if Net.site_up t.net src then
             transmit t ~src ~dst
               ~size:(base + t.cfg.rsh.extra_bytes)
               (Migration { mid = 0; contact; bc_wire = wire; needs_ack = false })))
  | Tcp ->
    let fresh = not (Hashtbl.mem t.connections (src, dst)) in
    if fresh then Hashtbl.replace t.connections (src, dst) ();
    let size = base + t.cfg.tcp.extra_bytes + (if fresh then t.cfg.tcp.handshake_bytes else 0) in
    transmit t ~src ~dst ~size (Migration { mid = 0; contact; bc_wire = wire; needs_ack = false })
  | Horus ->
    let mid = t.mid_counter in
    t.mid_counter <- mid + 1;
    let payload = Migration { mid; contact; bc_wire = wire; needs_ack = true } in
    let st =
      {
        attempts = 0;
        ack_src = src;
        ack_dst = dst;
        ack_size = base + t.cfg.horus.extra_bytes;
        ack_payload = payload;
        ack_timer = None;
      }
    in
    Hashtbl.replace t.pending_acks mid st;
    horus_retry t st mid


(* ---- incoming messages ------------------------------------------------------- *)

let seen_mid_window = 4096

let handle_message t site seen (msg : Netsim.Message.t) =
  match msg.payload with
  | Migration { mid; contact; bc_wire; needs_ack } ->
    let duplicate = needs_ack && Hashtbl.mem seen mid in
    if needs_ack then begin
      (* ack even duplicates: the first ack may have been lost *)
      transmit t ~src:site ~dst:msg.src ~size:t.cfg.horus.ack_bytes (Migration_ack { mid });
      if Hashtbl.length seen > seen_mid_window then Hashtbl.reset seen;
      Hashtbl.replace seen mid ()
    end;
    if not duplicate then begin
      match Briefcase.deserialize bc_wire with
      | bc -> accept_briefcase t ~site ~src:msg.src ~contact bc
      | exception Codec.Malformed reason ->
        run_hooks_death t ~cls:"corrupt-briefcase" ~site ~agent:contact
          ~reason:("corrupt briefcase: " ^ reason)
    end
  | Migration_ack { mid } -> (
    match Hashtbl.find_opt t.pending_acks mid with
    | Some st ->
      (match st.ack_timer with Some timer -> Engine.cancel timer | None -> ());
      Hashtbl.remove t.pending_acks mid
    | None -> ())
  | Code_fetch { fid; digest } ->
    (* serve from this site's cache; a negative reply still costs framing *)
    let ccfg =
      match t.cfg.cache with Some c -> c | None -> default_cache_config
    in
    let code =
      if cache_enabled t then Codecache.find_opt t.caches.(site) ~digest else None
    in
    let size =
      ccfg.reply_overhead_bytes
      + (match code with Some elems -> Codecache.wire_bytes elems | None -> 0)
    in
    (match code with
    | Some _ -> Obs.Metrics.incr (metrics t) "codecache.fetch_serves"
    | None -> ());
    add_cache_saved t (-size);
    transmit t ~src:site ~dst:msg.src ~size (Code_fetch_reply { fid; code })
  | Code_fetch_reply { fid; code } -> (
    match Hashtbl.find_opt t.pending_fetches fid with
    | None -> () (* already timed out, or the site crashed meanwhile *)
    | Some pf ->
      Hashtbl.remove t.pending_fetches fid;
      (match pf.pf_timer with Some timer -> Engine.cancel timer | None -> ());
      if t.places.(pf.pf_site).epoch = pf.pf_epoch && Net.site_up t.net pf.pf_site then begin
        match code with
        | Some elems ->
          if cache_enabled t then
            ignore (Codecache.insert t.caches.(pf.pf_site) ~digest:pf.pf_digest elems);
          Folder.replace (Briefcase.folder pf.pf_bc Briefcase.code_folder) elems;
          end_fetch_span t pf ();
          run_activation t ~site:pf.pf_site ~contact:pf.pf_contact pf.pf_bc
        | None ->
          Obs.Metrics.incr (metrics t) "codecache.fetch_failures";
          end_fetch_span t pf ~error:"not-found" ();
          run_hooks_death t ~cls:"code-fetch" ~site:pf.pf_site ~agent:pf.pf_contact
            ~reason:"code fetch failed: source no longer holds the entry"
      end)
  | _ -> ()

(* ---- system agents (paper §2 and §6) ------------------------------------------ *)

let get_folder_exn bc name what =
  match Briefcase.find_opt bc name with
  | Some v -> v
  | None -> raise (Agent_error (Printf.sprintf "%s: missing %s folder" what name))

let rexec_agent ctx bc =
  let t = ctx.kernel in
  let host = get_folder_exn bc Briefcase.host_folder "rexec" in
  let contact = get_folder_exn bc Briefcase.contact_folder "rexec" in
  let dst =
    match site_named t host with
    | Some s -> s
    | None -> raise (Agent_error (Printf.sprintf "rexec: unknown host %S" host))
  in
  let transport =
    match Briefcase.find_opt bc "TRANSPORT" with
    | None -> t.cfg.default_transport
    | Some s -> (
      match transport_of_string s with
      | Some tr -> tr
      | None -> raise (Agent_error (Printf.sprintf "rexec: unknown transport %S" s)))
  in
  migrate t ~src:ctx.site ~dst ~contact ~transport (Briefcase.copy bc)

let ag_script_agent ctx bc =
  match Folder.pop (Briefcase.folder bc Briefcase.code_folder) with
  | Some code -> run_code ctx ~code bc
  | None -> raise (Agent_error "ag_script: empty CODE folder")

let ag_shell_agent ctx bc =
  (* drain CODE, executing each element in order, like a shell session *)
  let folder = Briefcase.folder bc Briefcase.code_folder in
  let rec go () =
    match Folder.pop folder with
    | None -> ()
    | Some code ->
      run_code ctx ~code bc;
      go ()
  in
  go ()

let courier_agent ctx bc =
  let t = ctx.kernel in
  let host = get_folder_exn bc Briefcase.host_folder "courier" in
  let contact = get_folder_exn bc Briefcase.contact_folder "courier" in
  let fname = get_folder_exn bc "FOLDER" "courier" in
  let dst =
    match site_named t host with
    | Some s -> s
    | None -> raise (Agent_error (Printf.sprintf "courier: unknown host %S" host))
  in
  let out = Briefcase.create () in
  Folder.replace (Briefcase.folder out fname) (Folder.to_list (Briefcase.folder bc fname));
  Briefcase.set out "FOLDER" fname;
  Briefcase.set out "FROM" (site_name t ctx.site);
  send_briefcase t ~src:ctx.site ~dst ~contact out

let diffusion_agent ctx bc =
  let t = ctx.kernel in
  let contact = get_folder_exn bc Briefcase.contact_folder "diffusion" in
  (* §2's flooding refinement: record the visit in a site-local folder and
     terminate instead of re-executing when clones arrive over two paths of
     a cyclic graph.  The tag defaults to the contact name so independent
     diffusions do not block each other. *)
  let tag = Option.value ~default:contact (Briefcase.find_opt bc "DIFFUSION-ID") in
  let cab = cabinet t ctx.site in
  if not (Cabinet.contains cab "DIFFUSED" tag) then begin
    Cabinet.put cab "DIFFUSED" tag;
    (* execute the specified agent locally *)
    meet ctx contact bc;
    let here = site_name t ctx.site in
    let visited = Briefcase.folder bc Briefcase.sites_folder in
    if not (Folder.contains visited here) then Folder.enqueue visited here;
    (* clone to the set difference of the site-local SITES folder and the
       briefcase SITES folder (paper §2) *)
    let local_sites = Cabinet.elements (cabinet t ctx.site) Briefcase.sites_folder in
    let targets = List.filter (fun s -> not (Folder.contains visited s)) local_sites in
    (* pre-mark all targets so sibling clones do not re-flood each other *)
    List.iter (fun s -> Folder.enqueue visited s) targets;
    let transport =
      match Option.bind (Briefcase.find_opt bc "TRANSPORT") transport_of_string with
      | Some tr -> tr
      | None -> t.cfg.default_transport
    in
    List.iter
      (fun sname ->
        match site_named t sname with
        | Some dst ->
          migrate t ~src:ctx.site ~dst ~contact:"diffusion" ~transport (Briefcase.copy bc)
        | None -> ())
      targets
  end

let filer_agent ctx bc =
  (* deposit every folder's elements into same-named cabinet folders; the
     standard recipient for courier transfers and agent mail *)
  let cab = cabinet ctx.kernel ctx.site in
  List.iter
    (fun name ->
      if name <> "FOLDER" && name <> "FROM" && name <> Briefcase.contact_folder
         && name <> Briefcase.host_folder && name <> Briefcase.trace_folder then
        Folder.iter (fun e -> Cabinet.put cab name e) (Briefcase.folder bc name))
    (Briefcase.names bc)

let install_system_agents t =
  register_native t "rexec" rexec_agent;
  register_native t "ag_script" ag_script_agent;
  register_native t "ag_shell" ag_shell_agent;
  register_native t "courier" courier_agent;
  register_native t "diffusion" diffusion_agent;
  register_native t "filer" filer_agent;
  register_native t "noop" (fun _ _ -> ())

(* ---- place lifecycle ------------------------------------------------------------ *)

let seed_sites_folder t site =
  Cabinet.replace (cabinet t site) Briefcase.sites_folder (neighbor_names t site)

let arm_site t site =
  let seen = Hashtbl.create 32 in
  Net.set_handler t.net site ~key:"tacoma" (handle_message t site seen)

let create ?(config = default_config) net =
  let topo = Net.topology net in
  let n = Netsim.Topology.site_count topo in
  let caches =
    match config.cache with
    | None -> [||]
    | Some c ->
      let on_evict ~digest:_ ~bytes:_ =
        Obs.Metrics.incr (Net.metrics net) "codecache.evictions"
      in
      Array.init n (fun _ -> Codecache.create ~on_evict c)
  in
  let t =
    {
      net;
      cfg = config;
      places = Array.init n (fun _ -> { epoch = 0; cab = Cabinet.create () });
      caches;
      interp_caches = Tscript.Interp.create_caches ();
      pending_fetches = Hashtbl.create 32;
      fetch_counter = 1;
      cache_saved_bytes = 0;
      global_natives = Hashtbl.create 32;
      site_natives = Hashtbl.create 32;
      global_scripts = Hashtbl.create 32;
      site_scripts = Hashtbl.create 32;
      name_to_site = Hashtbl.create n;
      connections = Hashtbl.create 32;
      pending_acks = Hashtbl.create 32;
      mid_counter = 1;
      id_counter = 0;
      rng = Rng.split (Net.rng net);
      stat_migrations = 0;
      stat_activations = 0;
      stat_deaths = 0;
      stat_completions = 0;
      death_hooks = [];
      complete_hooks = [];
      group = None;
      step_policy = None;
      activity_tbl = Hashtbl.create 32;
    }
  in
  List.iter
    (fun site -> Hashtbl.replace t.name_to_site (Netsim.Topology.site_name topo site) site)
    (Netsim.Topology.sites topo);
  install_system_agents t;
  List.iter
    (fun site ->
      arm_site t site;
      seed_sites_folder t site;
      Net.on_crash net site (fun () ->
          (* volatile kernel state tied to this site dies with it *)
          Hashtbl.iter
            (fun (a, b) () -> if a = site || b = site then Hashtbl.remove t.connections (a, b))
            (Hashtbl.copy t.connections);
          if cache_enabled t then Codecache.clear t.caches.(site);
          Hashtbl.iter
            (fun fid pf ->
              if pf.pf_site = site then begin
                Hashtbl.remove t.pending_fetches fid;
                (match pf.pf_timer with Some timer -> Engine.cancel timer | None -> ());
                end_fetch_span t pf ~error:"site-crash" ()
              end)
            (Hashtbl.copy t.pending_fetches));
      Net.on_restart net site (fun () ->
          let place = t.places.(site) in
          place.epoch <- place.epoch + 1;
          place.cab <- Cabinet.recover place.cab;
          seed_sites_folder t site;
          arm_site t site;
          match t.group with Some g -> Horus.Group.rejoin g site | None -> ()))
    (Netsim.Topology.sites topo);
  if config.horus.group then
    t.group <- Some (Horus.Group.create net ~name:"tacoma" ~members:(Netsim.Topology.sites topo));
  t

(* ---- stats ------------------------------------------------------------------------ *)

let cache_saved_bytes t = t.cache_saved_bytes
let migrations t = t.stat_migrations
let activations t = t.stat_activations
let deaths t = t.stat_deaths
let completions t = t.stat_completions
type agent_activity = { a_activations : int; a_completions : int; a_deaths : int }

let activity t =
  Hashtbl.fold
    (fun name c acc ->
      ( name,
        {
          a_activations = c.c_activations;
          a_completions = c.c_completions;
          a_deaths = c.c_deaths;
        } )
      :: acc)
    t.activity_tbl []
  |> List.sort compare

let set_step_policy t p = t.step_policy <- p
let on_death t h = t.death_hooks <- h :: t.death_hooks
let on_complete t h = t.complete_hooks <- h :: t.complete_hooks
let horus_group t = t.group

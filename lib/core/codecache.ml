type config = {
  budget_bytes : int;
  request_bytes : int;
  reply_overhead_bytes : int;
  fetch_timeout : float;
  fetch_attempts : int;
}

let default_config =
  {
    budget_bytes = 256 * 1024;
    request_bytes = 96;
    reply_overhead_bytes = 32;
    fetch_timeout = 10.0;
    fetch_attempts = 2;
  }

module Lru = Tacoma_util.Lru

(* The store is a byte-weighted LRU: the generic discipline lives in
   Tacoma_util.Lru, this module only fixes the weight (payload bytes) and
   the digest/wire-size conventions. *)
type t = { cfg : config; store : (string, string list) Lru.t }

let payload_bytes elems =
  List.fold_left (fun acc e -> acc + String.length e) 0 elems

let create ?(on_evict = fun ~digest:_ ~bytes:_ -> ()) cfg =
  let store =
    Lru.create
      ~on_evict:(fun digest elems ->
        on_evict ~digest ~bytes:(payload_bytes elems))
      ~weight:payload_bytes ~budget:cfg.budget_bytes ()
  in
  { cfg; store }

let wire_bytes elems =
  (* mirrors Codec.encode_strings: 4-byte count, then each length-prefixed
     element *)
  List.fold_left (fun acc e -> acc + Codec.encoded_size e) 4 elems

let digest elems =
  let buf = Buffer.create 256 in
  Codec.encode_strings buf elems;
  Tacoma_util.Sha256.hex_digest (Buffer.contents buf)

let insert t ~digest elems =
  match Lru.find_opt t.store digest with
  | Some _ -> true (* find_opt already refreshed recency *)
  | None -> Lru.add t.store digest elems

let find_opt t ~digest = Lru.find_opt t.store digest
let mem t ~digest = Lru.mem t.store digest
let clear t = Lru.clear t.store
let bytes_used t = Lru.used t.store
let entry_count t = Lru.length t.store
let digests t = Lru.keys t.store

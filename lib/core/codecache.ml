type config = {
  budget_bytes : int;
  request_bytes : int;
  reply_overhead_bytes : int;
  fetch_timeout : float;
}

let default_config =
  {
    budget_bytes = 256 * 1024;
    request_bytes = 96;
    reply_overhead_bytes = 32;
    fetch_timeout = 10.0;
  }

(* Recency is a monotonic stamp per entry; eviction scans for the minimum.
   The table holds one entry per distinct agent program, so the scan is
   over a handful of entries — simpler than an intrusive list and just as
   deterministic. *)
type entry = { elems : string list; e_bytes : int; mutable stamp : int }

type t = {
  cfg : config;
  tbl : (string, entry) Hashtbl.t;
  on_evict : digest:string -> bytes:int -> unit;
  mutable used : int;
  mutable tick : int;
}

let create ?(on_evict = fun ~digest:_ ~bytes:_ -> ()) cfg =
  { cfg; tbl = Hashtbl.create 16; on_evict; used = 0; tick = 0 }

let wire_bytes elems =
  (* mirrors Codec.encode_strings: 4-byte count, then each length-prefixed
     element *)
  List.fold_left (fun acc e -> acc + Codec.encoded_size e) 4 elems

let digest elems =
  let buf = Buffer.create 256 in
  Codec.encode_strings buf elems;
  Tacoma_util.Sha256.hex_digest (Buffer.contents buf)

let touch t e =
  t.tick <- t.tick + 1;
  e.stamp <- t.tick

let evict_lru t =
  let victim =
    Hashtbl.fold
      (fun dg e acc ->
        match acc with
        | Some (_, best) when best.stamp <= e.stamp -> acc
        | _ -> Some (dg, e))
      t.tbl None
  in
  match victim with
  | None -> ()
  | Some (dg, e) ->
    Hashtbl.remove t.tbl dg;
    t.used <- t.used - e.e_bytes;
    t.on_evict ~digest:dg ~bytes:e.e_bytes

let insert t ~digest elems =
  match Hashtbl.find_opt t.tbl digest with
  | Some e ->
    touch t e;
    true
  | None ->
    let bytes = List.fold_left (fun acc e -> acc + String.length e) 0 elems in
    if bytes > t.cfg.budget_bytes then false
    else begin
      while t.used + bytes > t.cfg.budget_bytes do
        evict_lru t
      done;
      let e = { elems; e_bytes = bytes; stamp = 0 } in
      touch t e;
      Hashtbl.replace t.tbl digest e;
      t.used <- t.used + bytes;
      true
    end

let find_opt t ~digest =
  match Hashtbl.find_opt t.tbl digest with
  | None -> None
  | Some e ->
    touch t e;
    Some e.elems

let mem t ~digest = Hashtbl.mem t.tbl digest

let clear t =
  Hashtbl.reset t.tbl;
  t.used <- 0

let bytes_used t = t.used
let entry_count t = Hashtbl.length t.tbl

let digests t =
  Hashtbl.fold (fun dg e acc -> (e.stamp, dg) :: acc) t.tbl []
  |> List.sort (fun (a, _) (b, _) -> compare b a)
  |> List.map snd

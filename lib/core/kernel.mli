(** The TACOMA kernel: one place per site, the [meet] operation, and
    restart-style agent migration over the simulated network.

    Execution model (faithful to the paper):
    - an {e agent} is a named piece of code — a native OCaml handler or a
      TScript source — installed at a place or carried in a CODE folder;
    - [meet] executes the named agent {e at the current site} with a
      briefcase as its argument list; the caller resumes when the target
      terminates the meet;
    - migration is performed by meeting the [rexec] system agent
      ({!Sysagents}), which ships the briefcase (including CODE) to the
      HOST site and executes the CONTACT agent there — the source-side
      computation simply ends, and the persistent state travels in the
      briefcase;
    - long-running behaviour (simulated compute, rear-guard timers) uses
      {!sleep}, implemented with OCaml effects so that a whole meet stack
      suspends and a site crash kills suspended activations. *)

type t

type transport = Rsh | Tcp | Horus
(** The three [rexec] implementations of paper §6: spawn-per-hop [rsh],
    connection-caching [Tcp], and reliable (ack + retransmit, failure-
    detecting) [Horus]. *)

val transport_of_string : string -> transport option
val transport_name : transport -> string

(** {1 Configuration}

    Per-transport knobs live in their own sub-records, so a caller tweaks
    one transport with a nested functional update and [default_config]
    supplies everything else:
    {[
      { Kernel.default_config with
        horus = { Kernel.default_config.horus with max_attempts = 8 } }
    ]} *)

type rsh_config = {
  spawn_delay : float; (** remote interpreter spawn cost, seconds *)
  extra_bytes : int;   (** per-hop overhead beyond the briefcase *)
}

type tcp_config = {
  handshake_bytes : int; (** first use of a (src,dst) connection *)
  extra_bytes : int;
}

type horus_config = {
  extra_bytes : int;
  ack_bytes : int;
  rto : float;        (** retransmission timeout, seconds *)
  max_attempts : int;
  group : bool;       (** maintain the kernel-wide Horus group *)
}

type cache_config = Codecache.config = {
  budget_bytes : int;
  request_bytes : int;
  reply_overhead_bytes : int;
  fetch_timeout : float;
  fetch_attempts : int;
}
(** Re-exported so callers configure the cache without importing
    {!Codecache}. *)

type config = {
  default_transport : transport;
  step_limit : int option;     (** per-activation interpreter budget *)
  prelude : string;            (** TScript evaluated before every script
                                   agent (default {!Prelude.standard};
                                   [""] disables) *)
  migration_overhead : int;    (** framing bytes added to every migration *)
  rsh : rsh_config;
  tcp : tcp_config;
  horus : horus_config;
  cache : cache_config option;
      (** [Some _] enables the per-site content-addressed code cache: the
          CODE folder ships as a digest, resolved from the receiving
          place's cache or fetched back from the sender on a miss
          ({!Codecache}).  [None] (the default) ships code in full on
          every hop, byte-identical to kernels predating the cache. *)
}

val default_rsh_config : rsh_config
val default_tcp_config : tcp_config
val default_horus_config : horus_config

val default_cache_config : cache_config
(** = {!Codecache.default_config}; [default_config.cache] is still [None] —
    opting in is explicit. *)

val default_config : config

exception Agent_error of string
(** Protocol-level failure of an agent (missing folder, unknown agent,
    script error).  Propagates up the meet chain; a script-level [catch]
    in a calling agent traps it. *)

exception Aborted of string
(** The activation was killed from outside (site crash). *)

type ctx = { kernel : t; site : Netsim.Site.id; self : string }
(** Execution context handed to native agents. *)

type native = ctx -> Briefcase.t -> unit
(** Native agents mutate the briefcase in place; the mutated briefcase is
    what the caller of [meet] observes afterwards. *)

val create : ?config:config -> Netsim.Net.t -> t
(** Builds a place on every site, installs the {!Sysagents} system agents,
    and arms crash/restart hooks (a restarted place recovers only the
    flushed part of its cabinet). *)

val net : t -> Netsim.Net.t
val config : t -> config
val now : t -> float
val rng : t -> Tacoma_util.Rng.t

val fresh_id : t -> int
(** A per-kernel id fountain (1, 2, 3, …) for protocol-level unique names
    (e.g. one-shot reply agents).  Deliberately {e not} a process-wide
    counter: concurrent simulations in a {!Tacoma_util.Pool} sweep must
    each see the same id sequence they would see alone, or generated names
    (and thus message byte counts) would depend on scheduling. *)

(** {1 Flight recorder}

    The kernel records into the network's shared recorder and metrics
    registry ({!Netsim.Net.recorder} / {!Netsim.Net.metrics}): activation
    and meet spans, migration instants, per-agent interpreter profiles, and
    counters for activations / completions / deaths-by-class / migrations-
    by-transport.  Span context travels in the briefcase's
    {!Briefcase.trace_folder}, so a journey's hops — including guard
    relaunches, which re-ship a snapshot briefcase — form one causal
    tree. *)

val recorder : t -> Obs.Tracer.t
val metrics : t -> Obs.Metrics.t

val briefcase_span : Briefcase.t -> Obs.Span.ctx option
(** The span context the briefcase currently carries, if any. *)

(** {1 Sites} *)

val site_named : t -> string -> Netsim.Site.id option
val site_name : t -> Netsim.Site.id -> string
val cabinet : t -> Netsim.Site.id -> Cabinet.t
(** The site's file cabinet.  After a crash this is a fresh recovery. *)

val neighbor_names : t -> Netsim.Site.id -> string list

(** {1 Agents} *)

val register_native : t -> ?site:Netsim.Site.id -> string -> native -> unit
(** Without [site], available at every place (system-agent style),
    including places rebuilt after a crash. *)

val install_script : t -> ?site:Netsim.Site.id -> string -> code:string -> unit
(** Install a TScript agent under a well-known name. *)

val agent_exists : t -> Netsim.Site.id -> string -> bool

(** {1 Execution} *)

val meet : ctx -> string -> Briefcase.t -> unit
(** The meet operation.  Executes the named agent at [ctx.site],
    synchronously.  When tracing is on, the callee runs under a child span
    of whatever span the briefcase carried.  @raise Agent_error if the
    agent is unknown. *)

val launch : t -> site:Netsim.Site.id -> contact:string -> Briefcase.t -> unit
(** Start a fresh top-level activation (scheduled immediately).  Launching
    at a down site is a silent no-op. *)

val sleep : ctx -> float -> unit
(** Suspend the current activation for simulated seconds.  Only callable
    from inside an activation.  @raise Aborted when the site crashes while
    suspended. *)

val run_code : ctx -> code:string -> Briefcase.t -> unit
(** Execute TScript source as the current agent (used by [ag_script] and
    installed script agents).  @raise Agent_error on script errors. *)

val set_step_policy : t -> (Briefcase.t -> int option) option -> unit
(** Admission policy for script activations: called with the incoming
    briefcase, it returns the interpreter step budget ([None] = fall back
    to [config.step_limit]).  This is the hook the electronic-cash fuel
    scheme plugs into (paper §3: "charging for services would limit
    possible damage by a run-away agent") — see [Cash.Fuel]. *)

val migrate :
  t ->
  src:Netsim.Site.id ->
  dst:Netsim.Site.id ->
  contact:string ->
  transport:transport ->
  Briefcase.t ->
  unit
(** Ship a copy of the briefcase to [dst] and execute [contact] there.
    Asynchronous; cost and reliability depend on [transport]. *)

(** {1 Messaging below rexec}

    Used by substrate libraries (brokers, guards) that need raw kernel
    messaging with byte accounting but not code shipping. *)

val send_briefcase :
  t -> src:Netsim.Site.id -> dst:Netsim.Site.id -> contact:string -> Briefcase.t -> unit
(** One-way: deliver the briefcase to [contact] at [dst] over the plain
    network (no spawn cost, no handshake, no ack). *)

(** {1 Code cache} *)

val code_cache : t -> Netsim.Site.id -> Codecache.t option
(** The site's cache when [config.cache] is set.  Volatile: cleared by the
    kernel's crash hook, so a restarted place re-fetches. *)

val cache_saved_bytes : t -> int
(** Net wire bytes avoided by digest substitution so far: bytes stripped
    from migrations minus the full cost of every fallback fetch exchange.
    Mirrored in the ["codecache.bytes_saved"] gauge. *)

(** {1 Introspection} *)

val migrations : t -> int
val activations : t -> int
val deaths : t -> int
val completions : t -> int

type agent_activity = {
  a_activations : int;
  a_completions : int;
  a_deaths : int;
}

val activity : t -> (string * agent_activity) list
(** Per-agent-name accounting across the whole run, sorted by name. *)

val on_death : t -> (site:Netsim.Site.id -> agent:string -> reason:string -> unit) -> unit
val on_complete : t -> (site:Netsim.Site.id -> agent:string -> unit) -> unit

val horus_group : t -> Horus.Group.t option
(** The kernel-wide group when [config.horus.group] is set. *)

type t = (string, Folder.t) Hashtbl.t

let host_folder = "HOST"
let contact_folder = "CONTACT"
let code_folder = "CODE"
let code_ref_folder = "CODE-REF"
let sites_folder = "SITES"
let trace_folder = "TRACE"

let create () : t = Hashtbl.create 8

let folder t name =
  match Hashtbl.find_opt t name with
  | Some f -> f
  | None ->
    let f = Folder.create () in
    Hashtbl.replace t name f;
    f

let folder_opt t name = Hashtbl.find_opt t name
let mem t name = Hashtbl.mem t name
let remove t name = Hashtbl.remove t name
let names t = List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) t [])

let copy t =
  let c = Hashtbl.create (Hashtbl.length t) in
  Hashtbl.iter (fun name f -> Hashtbl.replace c name (Folder.copy f)) t;
  c

let clear t = Hashtbl.reset t

let set t name v = Folder.replace (folder t name) [ v ]
let find_opt t name = Option.bind (folder_opt t name) Folder.peek

let get t name =
  match find_opt t name with Some v -> v | None -> raise Not_found

let get_exn = get

let byte_size t =
  (* mirrors [serialize]: 4-byte folder count, then per folder the encoded
     name and encoded element list *)
  Hashtbl.fold
    (fun name f acc ->
      acc + Codec.encoded_size name + 4
      + Folder.fold (fun a e -> a + Codec.encoded_size e) 0 f)
    t 4

(* 4-byte folder count, then folders in name order for deterministic wires *)
let serialize t =
  let names_sorted = names t in
  let buf = Buffer.create 256 in
  Codec.encode_u32 buf (List.length names_sorted);
  List.iter
    (fun name ->
      Codec.encode_string buf name;
      Codec.encode_strings buf (Folder.to_list (folder t name)))
    names_sorted;
  Buffer.contents buf

let deserialize s =
  let r = Codec.reader s in
  let t = create () in
  let n = Codec.read_u32 r in
  for _ = 1 to n do
    let name = Codec.read_string r in
    let elems = Codec.read_strings r in
    Folder.replace (folder t name) elems
  done;
  t

let pp fmt t =
  Format.fprintf fmt "@[<v>";
  List.iter
    (fun name ->
      Format.fprintf fmt "%s: [%s]@," name
        (String.concat "; " (List.map (Printf.sprintf "%S") (Folder.to_list (folder t name)))))
    (names t);
  Format.fprintf fmt "@]"

module Interp = Tscript.Interp
module Value = Tscript.Value

type host = {
  site_name : unit -> string;
  self : unit -> string;
  now : unit -> float;
  neighbors : unit -> string list;
  meet : string -> unit;
  sleep : float -> unit;
  log : string -> unit;
  random_int : int -> int;
  cabinet : Cabinet.t;
  code : unit -> string;
  dispatch : host:string -> contact:string -> unit;
}

let err fmt = Printf.ksprintf (fun m -> raise (Interp.Error_exc m)) fmt

let float_arg what s =
  match Value.float_of s with
  | Some f -> f
  | None -> err "expected number for %s, got %S" what s

let int_arg what s =
  match Value.int_of s with
  | Some i -> i
  | None -> err "expected integer for %s, got %S" what s

let install_folder_cmd bc it =
  Interp.register it "folder" (fun _ args ->
      match args with
      | [ "put"; name; v ] ->
        Folder.enqueue (Briefcase.folder bc name) v;
        ""
      | [ "push"; name; v ] ->
        Folder.push (Briefcase.folder bc name) v;
        ""
      | [ "pop"; name ] -> (
        match Folder.pop (Briefcase.folder bc name) with
        | Some v -> v
        | None -> err "folder pop: %S is empty" name)
      | [ "trypop"; name ] ->
        Option.value ~default:"" (Folder.pop (Briefcase.folder bc name))
      | [ "peek"; name ] ->
        Option.value ~default:"" (Folder.peek (Briefcase.folder bc name))
      | [ "list"; name ] -> Value.of_list (Folder.to_list (Briefcase.folder bc name))
      | "set" :: name :: elems ->
        Folder.replace (Briefcase.folder bc name) elems;
        ""
      | [ "setlist"; name; l ] ->
        Folder.replace (Briefcase.folder bc name) (Value.to_list_exn l);
        ""
      | [ "size"; name ] -> Value.of_int (Folder.length (Briefcase.folder bc name))
      | [ "exists"; name ] -> Value.of_bool (Briefcase.mem bc name)
      | [ "clear"; name ] ->
        Folder.clear (Briefcase.folder bc name);
        ""
      | [ "remove"; name ] ->
        Briefcase.remove bc name;
        ""
      | [ "contains"; name; v ] ->
        Value.of_bool (Folder.contains (Briefcase.folder bc name) v)
      | [ "names" ] -> Value.of_list (Briefcase.names bc)
      | _ -> err "folder: unknown subcommand or wrong # args")

let install_cabinet_cmd host it =
  let cab = host.cabinet in
  Interp.register it "cabinet" (fun _ args ->
      match args with
      | [ "put"; name; v ] ->
        Cabinet.put cab name v;
        ""
      | [ "push"; name; v ] ->
        Cabinet.push cab name v;
        ""
      | [ "pop"; name ] -> (
        match Cabinet.pop cab name with
        | Some v -> v
        | None -> err "cabinet pop: %S is empty" name)
      | [ "trypop"; name ] -> Option.value ~default:"" (Cabinet.pop cab name)
      | [ "peek"; name ] -> Option.value ~default:"" (Cabinet.peek cab name)
      | [ "list"; name ] -> Value.of_list (Cabinet.elements cab name)
      | "set" :: name :: elems ->
        Cabinet.replace cab name elems;
        ""
      | [ "size"; name ] -> Value.of_int (Cabinet.size cab name)
      | [ "exists"; name ] -> Value.of_bool (Cabinet.folder_exists cab name)
      | [ "clear"; name ] ->
        Cabinet.replace cab name [];
        ""
      | [ "contains"; name; v ] -> Value.of_bool (Cabinet.contains cab name v)
      | [ "remove"; name; v ] ->
        Cabinet.remove_element cab name v;
        ""
      | [ "names" ] -> Value.of_list (Cabinet.folder_names cab)
      | [ "kvset"; name; k; v ] ->
        Cabinet.set_kv cab name ~key:k v;
        ""
      | [ "kvget"; name; k ] -> Option.value ~default:"" (Cabinet.find_kv_opt cab name ~key:k)
      | [ "flush" ] ->
        Cabinet.flush cab;
        ""
      | [ "flush"; name ] ->
        Cabinet.flush_folder cab name;
        ""
      | _ -> err "cabinet: unknown subcommand or wrong # args")

let install host bc it =
  install_folder_cmd bc it;
  install_cabinet_cmd host it;

  Interp.register it "meet" (fun _ args ->
      match args with
      | [ agent ] ->
        host.meet agent;
        ""
      | _ -> err "wrong # args: should be \"meet agent\"");

  Interp.register it "jump" (fun _ args ->
      match args with
      | [ site ] | [ site; _ ] ->
        let contact = match args with [ _; c ] -> c | _ -> "ag_script" in
        Briefcase.set bc Briefcase.host_folder site;
        Briefcase.set bc Briefcase.contact_folder contact;
        host.meet "rexec";
        ""
      | _ -> err "wrong # args: should be \"jump site ?contact?\"");

  Interp.register it "selfcode" (fun _ _ -> host.code ());

  Interp.register it "dispatch" (fun _ args ->
      match args with
      | [ site; contact ] ->
        host.dispatch ~host:site ~contact;
        ""
      | _ -> err "wrong # args: should be \"dispatch site agent\"");

  Interp.register it "host" (fun _ _ -> host.site_name ());
  Interp.register it "self" (fun _ _ -> host.self ());
  Interp.register it "now" (fun _ _ -> Value.of_float (host.now ()));
  Interp.register it "neighbors" (fun _ _ -> Value.of_list (host.neighbors ()));

  Interp.register it "work" (fun _ args ->
      match args with
      | [ d ] ->
        host.sleep (float_arg "duration" d);
        ""
      | _ -> err "wrong # args: should be \"work seconds\"");

  Interp.register it "log" (fun _ args ->
      host.log (String.concat " " args);
      "");

  Interp.register it "random" (fun _ args ->
      match args with
      | [ n ] ->
        let n = int_arg "bound" n in
        if n <= 0 then err "random: bound must be positive";
        Value.of_int (host.random_int n)
      | _ -> err "wrong # args: should be \"random bound\"")

(* Head-first list with a tail pointer emulated by keeping both ends:
   elements before [back] reversed.  Classic two-list queue, which also
   serves stack use at the front. *)
type t = {
  mutable front : string list; (* head first *)
  mutable back : string list;  (* tail first *)
  mutable len : int;
  mutable bytes : int;
}

let create () = { front = []; back = []; len = 0; bytes = 0 }

let of_list l =
  { front = l; back = []; len = List.length l; bytes = List.fold_left (fun a s -> a + String.length s) 0 l }

let normalize t =
  if t.front = [] && t.back <> [] then begin
    t.front <- List.rev t.back;
    t.back <- []
  end

let to_list t = t.front @ List.rev t.back
let copy t = { front = t.front; back = t.back; len = t.len; bytes = t.bytes }
let length t = t.len
let is_empty t = t.len = 0

let push t x =
  t.front <- x :: t.front;
  t.len <- t.len + 1;
  t.bytes <- t.bytes + String.length x

let pop t =
  normalize t;
  match t.front with
  | [] -> None
  | x :: rest ->
    t.front <- rest;
    t.len <- t.len - 1;
    t.bytes <- t.bytes - String.length x;
    Some x

let peek t =
  normalize t;
  match t.front with [] -> None | x :: _ -> Some x

let enqueue t x =
  t.back <- x :: t.back;
  t.len <- t.len + 1;
  t.bytes <- t.bytes + String.length x

let dequeue = pop

let clear t =
  t.front <- [];
  t.back <- [];
  t.len <- 0;
  t.bytes <- 0

let replace t l =
  clear t;
  t.front <- l;
  t.len <- List.length l;
  t.bytes <- List.fold_left (fun a s -> a + String.length s) 0 l

let nth_opt t i = if i < 0 || i >= t.len then None else List.nth_opt (to_list t) i
let nth = nth_opt
let contains t x = List.mem x t.front || List.mem x t.back
let iter f t = List.iter f (to_list t)
let fold f init t = List.fold_left f init (to_list t)
let byte_size t = t.bytes

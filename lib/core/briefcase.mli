(** Briefcases (paper §2): the named-folder collection that accompanies an
    agent so "its future actions can depend on its past ones".

    A briefcase is also the argument list of a {e meet}: "the specified
    briefcase is analogous to an argument list (with each folder containing
    the value of one argument)". *)

type t

(** Conventional folder names from the paper: ["HOST"] (destination site for
    [rexec]), ["CONTACT"] (agent to execute there), ["CODE"] (agent source
    text), ["SITES"] (visited sites, for [diffusion]). *)

val host_folder : string

val contact_folder : string

val code_folder : string

val code_ref_folder : string
(** System folder replacing [code_folder] on the wire when the kernel's
    content-addressed code cache is enabled: it carries the CODE payload's
    digest instead of the payload itself ({!Codecache}).  Resolved — and
    removed — by the receiving place before the activation runs, so agents
    never observe it. *)

val sites_folder : string

val trace_folder : string
(** System folder carrying the flight-recorder span context ("tN.sM")
    across migrations, so a journey's activations form one causal tree.
    Written only while tracing is enabled — with the recorder off the
    briefcase wire image is untouched. *)

val create : unit -> t

val folder : t -> string -> Folder.t
(** The named folder, created empty on first access. *)

val folder_opt : t -> string -> Folder.t option
val mem : t -> string -> bool
val remove : t -> string -> unit
val names : t -> string list
(** Sorted. *)

val copy : t -> t
(** Deep copy: cloning an agent must not alias its folders. *)

val clear : t -> unit

(** {1 Single-value convenience}

    Many protocol folders hold exactly one element (HOST, CONTACT ...). *)

val set : t -> string -> string -> unit
(** Replace the folder's contents with one element. *)

val find_opt : t -> string -> string option
(** Head element of the folder, if any.  (Stdlib naming convention shared
    with {!Folder} and {!Cabinet}: [find_opt] returns an option, [get]
    raises.) *)

val get : t -> string -> string
(** @raise Not_found when the folder is absent or empty. *)

val get_exn : t -> string -> string
  [@@deprecated "use Briefcase.get (same behaviour); get_exn goes away next release"]

(** {1 Wire format} *)

val byte_size : t -> int
(** Exact serialised size: what migration costs on the network. *)

val serialize : t -> string
val deserialize : string -> t
(** @raise Codec.Malformed on corrupt input. *)

val pp : Format.formatter -> t -> unit

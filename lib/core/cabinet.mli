(** File cabinets (paper §2): groups of site-local folders.

    "File cabinets support the same operations as briefcases, but ... since
    it is rare to move a file cabinet from site to site, file cabinets can
    be implemented using techniques that optimize access times even if this
    increases the cost of moving."

    Concretely, every cabinet folder carries a hash index over its elements
    (so [contains] is O(1) where {!Folder.contains} is a scan), plus a
    key-value view for record-style use.  Cabinets also model the paper's
    persistence remark — "file cabinets can be flushed to disk when
    permanence is required": {!flush} checkpoints current contents, and
    after a site crash the kernel rebuilds the place's cabinet from the
    last checkpoint only. *)

type t

val create : unit -> t

(** {1 Folder operations (briefcase-compatible)} *)

val put : t -> string -> string -> unit
(** Append an element to the named folder (created on demand). *)

val push : t -> string -> string -> unit
val pop : t -> string -> string option
val peek : t -> string -> string option

val find_opt : t -> string -> string option
(** Head element of the named folder ([peek] under the stdlib naming
    convention shared with {!Briefcase} and {!Folder}: [find_opt] returns
    an option, [get] raises). *)

val get : t -> string -> string
(** @raise Not_found when the folder is absent or empty. *)

val elements : t -> string -> string list
val replace : t -> string -> string list -> unit
val remove_folder : t -> string -> unit
val folder_names : t -> string list
val folder_exists : t -> string -> bool
val size : t -> string -> int

val contains : t -> string -> string -> bool
(** [contains t fname elem] — O(1) via the folder's index. *)

val remove_element : t -> string -> string -> unit
(** Remove all occurrences of an element from the folder. *)

(** {1 Record (key/value) view}

    Elements of the form [key=value]; [set_kv] replaces the binding. *)

val set_kv : t -> string -> key:string -> string -> unit
val find_kv_opt : t -> string -> key:string -> string option
val remove_kv : t -> string -> key:string -> unit
val kv_bindings : t -> string -> (string * string) list

val get_kv : t -> string -> key:string -> string option
  [@@deprecated "use Cabinet.find_kv_opt (same behaviour); get_kv goes away next release"]

(** {1 Persistence} *)

val flush : t -> unit
(** Checkpoint everything to the (simulated) disk image. *)

val flush_folder : t -> string -> unit

val recover : t -> t
(** The cabinet as rebuilt after a crash: last checkpoint only.  The
    returned cabinet's disk image equals its contents. *)

val flushed_bytes : t -> int
(** Size of the disk image, for cost accounting. *)

val byte_size : t -> int
(** In-memory contents size (sum of element bytes). *)

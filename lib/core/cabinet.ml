(* Each folder keeps its elements in order plus a multiset index for O(1)
   membership — the "optimize access times" trade of the paper. *)
type cfolder = {
  mutable elems : string list; (* head first *)
  index : (string, int) Hashtbl.t; (* element -> multiplicity *)
}

type t = {
  folders : (string, cfolder) Hashtbl.t;
  mutable disk : (string * string list) list; (* checkpoint image *)
}

let create () = { folders = Hashtbl.create 16; disk = [] }

let cfolder t name =
  match Hashtbl.find_opt t.folders name with
  | Some f -> f
  | None ->
    let f = { elems = []; index = Hashtbl.create 8 } in
    Hashtbl.replace t.folders name f;
    f

let index_add f e =
  Hashtbl.replace f.index e (1 + Option.value ~default:0 (Hashtbl.find_opt f.index e))

let index_remove f e =
  match Hashtbl.find_opt f.index e with
  | None -> ()
  | Some 1 -> Hashtbl.remove f.index e
  | Some n -> Hashtbl.replace f.index e (n - 1)

let put t name e =
  let f = cfolder t name in
  f.elems <- f.elems @ [ e ];
  index_add f e

let push t name e =
  let f = cfolder t name in
  f.elems <- e :: f.elems;
  index_add f e

let pop t name =
  match Hashtbl.find_opt t.folders name with
  | None -> None
  | Some f -> (
    match f.elems with
    | [] -> None
    | e :: rest ->
      f.elems <- rest;
      index_remove f e;
      Some e)

let peek t name =
  match Hashtbl.find_opt t.folders name with
  | None -> None
  | Some f -> ( match f.elems with [] -> None | e :: _ -> Some e)

let find_opt = peek

let get t name =
  match peek t name with Some v -> v | None -> raise Not_found

let elements t name =
  match Hashtbl.find_opt t.folders name with None -> [] | Some f -> f.elems

let replace t name elems =
  let f = cfolder t name in
  f.elems <- elems;
  Hashtbl.reset f.index;
  List.iter (index_add f) elems

let remove_folder t name = Hashtbl.remove t.folders name

let folder_names t =
  List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) t.folders [])

let folder_exists t name = Hashtbl.mem t.folders name
let size t name = List.length (elements t name)

let contains t name e =
  match Hashtbl.find_opt t.folders name with
  | None -> false
  | Some f -> Hashtbl.mem f.index e

let remove_element t name e =
  match Hashtbl.find_opt t.folders name with
  | None -> ()
  | Some f ->
    f.elems <- List.filter (fun x -> x <> e) f.elems;
    Hashtbl.remove f.index e

(* key=value records *)

let kv_split e =
  match String.index_opt e '=' with
  | None -> None
  | Some i -> Some (String.sub e 0 i, String.sub e (i + 1) (String.length e - i - 1))

let set_kv t name ~key v =
  let f = cfolder t name in
  let keep e = match kv_split e with Some (k, _) -> k <> key | None -> true in
  let removed = List.filter (fun e -> not (keep e)) f.elems in
  List.iter (index_remove f) removed;
  f.elems <- List.filter keep f.elems @ [ key ^ "=" ^ v ];
  index_add f (key ^ "=" ^ v)

let remove_kv t name ~key =
  match Hashtbl.find_opt t.folders name with
  | None -> ()
  | Some f ->
    let keep e = match kv_split e with Some (k, _) -> k <> key | None -> true in
    let removed = List.filter (fun e -> not (keep e)) f.elems in
    List.iter (index_remove f) removed;
    f.elems <- List.filter keep f.elems

let find_kv_opt t name ~key =
  let rec find = function
    | [] -> None
    | e :: rest -> (
      match kv_split e with Some (k, v) when k = key -> Some v | _ -> find rest)
  in
  find (elements t name)

let get_kv = find_kv_opt

let kv_bindings t name = List.filter_map kv_split (elements t name)

(* persistence *)

let flush t =
  t.disk <- Hashtbl.fold (fun name f acc -> (name, f.elems) :: acc) t.folders []

let flush_folder t name =
  let others = List.filter (fun (n, _) -> n <> name) t.disk in
  t.disk <- (name, elements t name) :: others

let recover t =
  let fresh = create () in
  List.iter (fun (name, elems) -> replace fresh name elems) t.disk;
  fresh.disk <- t.disk;
  fresh

let flushed_bytes t =
  List.fold_left
    (fun acc (name, elems) ->
      acc + String.length name + List.fold_left (fun a e -> a + String.length e) 0 elems)
    0 t.disk

let byte_size t =
  Hashtbl.fold
    (fun name f acc ->
      acc + String.length name + List.fold_left (fun a e -> a + String.length e) 0 f.elems)
    t.folders 0

(** Per-site content-addressed code cache (the Gavalas-style migration
    optimisation).

    TACOMA migration is restart-style: the CODE folder travels on every
    [rexec] hop, so an n-hop journey pays the code transfer n times even
    when it revisits sites.  With a cache installed
    ([Kernel.config.cache = Some _]), the sender replaces the CODE folder's
    payload on the wire with its content digest and publishes the entry in
    its own site's cache; the receiving place resolves the digest from its
    cache (a {e hit}: no code bytes moved), or pays one extra simulated
    round trip to fetch the code from the sending site (a {e miss}), then
    installs the entry for the next visitor.

    Caches are {e volatile}: a site crash clears the cache (the kernel does
    this from its crash hook), so agents arriving after a restart — guard
    relaunches included — re-fetch correctly rather than resolving against
    state the crash destroyed.

    Entries are evicted least-recently-used to keep each site under a byte
    budget.  An entry larger than the whole budget is uncacheable: the
    kernel then ships the code in full, exactly as without a cache. *)

type config = {
  budget_bytes : int;  (** per-site LRU byte budget over cached code bytes *)
  request_bytes : int; (** simulated wire size of a fetch request *)
  reply_overhead_bytes : int;
      (** framing added to the code bytes on a fetch reply *)
  fetch_timeout : float;
      (** seconds before a pending fetch attempt expires *)
  fetch_attempts : int;
      (** bounded retry: total request transmissions (each re-paying
          [request_bytes] and waiting [fetch_timeout]) before the fetch is
          abandoned and the delayed activation dies (class ["code-fetch"]).
          1 means no retry.  Retries are counted under
          [codecache.fetch_retries]; only the final failure counts under
          [codecache.fetch_failures]. *)
}

val default_config : config
(** 256 KiB budget, 96 B requests, 32 B reply framing, 10 s timeout,
    2 attempts. *)

type t
(** One cache per place.  Purely local bookkeeping: no RNG draws, no
    scheduling — cache operations never perturb the simulation clock. *)

val create : ?on_evict:(digest:string -> bytes:int -> unit) -> config -> t
(** [on_evict] is called once per evicted entry (the kernel feeds the
    flight recorder's eviction counter with it). *)

val digest : string list -> string
(** Content address of a CODE folder: lowercase-hex SHA-256 over the
    canonical (length-prefixed) encoding of the element list.  Two folders
    with the same elements in the same order share an address. *)

val insert : t -> digest:string -> string list -> bool
(** Install (or refresh) an entry, evicting least-recently-used entries as
    needed.  Returns [false] — and caches nothing — when the entry alone
    exceeds the budget. *)

val find_opt : t -> digest:string -> string list option
(** Resolve a digest, refreshing its recency.  [None] on a miss. *)

val mem : t -> digest:string -> bool
(** Membership without refreshing recency. *)

val clear : t -> unit
(** Drop every entry (site crash: the cache is volatile). *)

val bytes_used : t -> int
val entry_count : t -> int

val digests : t -> string list
(** Most-recently-used first — the reverse of eviction order. *)

val wire_bytes : string list -> int
(** Encoded size of the element list as a briefcase folder body ships it;
    the basis of the bytes-saved accounting. *)

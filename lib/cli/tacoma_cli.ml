module Kernel = Tacoma_core.Kernel

let transport_conv =
  let parse s =
    match Kernel.transport_of_string s with
    | Some t -> Ok t
    | None -> Error (`Msg (Printf.sprintf "unknown transport %S (expected rsh, tcp or horus)" s))
  in
  let print ppf t = Format.pp_print_string ppf (Kernel.transport_name t) in
  Cmdliner.Arg.conv ~docv:"TRANSPORT" (parse, print)

let transport_term =
  let open Cmdliner in
  Arg.(value
       & opt (some transport_conv) None
       & info [ "transport" ] ~docv:"TRANSPORT"
           ~doc:"Default rexec transport: rsh, tcp or horus.")

type topology_kind = Ring | Line | Star | Mesh | Grid

let topology_conv =
  Cmdliner.Arg.enum
    [ ("ring", Ring); ("line", Line); ("star", Star); ("mesh", Mesh); ("grid", Grid) ]

let build_topology kind n =
  match kind with
  | Ring -> Netsim.Topology.ring n
  | Line -> Netsim.Topology.line n
  | Star -> Netsim.Topology.star n
  | Mesh -> Netsim.Topology.full_mesh n
  | Grid ->
    (* smallest square covering at least n sites (a plain sqrt truncation
       would silently shrink "-n 8" to a 2x2 grid) *)
    let side = max 1 (int_of_float (ceil (sqrt (float_of_int n)))) in
    Netsim.Topology.grid side side

let cache_term =
  let open Cmdliner in
  let enabled =
    Arg.(value & flag
         & info [ "code-cache" ]
             ~doc:"Enable the per-site content-addressed code cache (CODE ships as a digest).")
  in
  let budget =
    Arg.(value
         & opt (some int) None
         & info [ "code-cache-budget" ] ~docv:"BYTES"
             ~doc:"Per-site cache byte budget; implies $(b,--code-cache).")
  in
  let combine enabled budget =
    match (enabled, budget) with
    | false, None -> None
    | _, Some b -> Some { Kernel.default_cache_config with budget_bytes = b }
    | true, None -> Some Kernel.default_cache_config
  in
  Term.(const combine $ enabled $ budget)

let chaos_plan_conv =
  let parse path =
    match In_channel.with_open_bin path In_channel.input_all with
    | exception Sys_error e -> Error (`Msg e)
    | contents -> (
      match Netsim.Chaos.of_string contents with
      | Ok plan -> Ok plan
      | Error e -> Error (`Msg (Printf.sprintf "%s: %s" path e)))
  in
  let print ppf plan =
    Format.fprintf ppf "<%d chaos events>" (List.length plan)
  in
  Cmdliner.Arg.conv ~docv:"PLAN" (parse, print)

let jobs_conv =
  let parse s =
    match int_of_string_opt s with
    | Some n when n >= 0 -> Ok n
    | Some _ -> Error (`Msg "job count must be >= 0 (0 = one worker per core)")
    | None -> Error (`Msg (Printf.sprintf "invalid job count %S" s))
  in
  Cmdliner.Arg.conv ~docv:"N" (parse, Format.pp_print_int)

let jobs_term =
  let open Cmdliner in
  Arg.(value
       & opt jobs_conv 1
       & info [ "j"; "jobs" ] ~docv:"N"
           ~doc:
             "Worker domains for independent-simulation sweeps.  1 (the default) is the \
              serial path; 0 means one per core.  Results are byte-identical for every \
              value.")

let apply_config ?transport ?cache (base : Kernel.config) =
  let base =
    match transport with None -> base | Some t -> { base with default_transport = t }
  in
  match cache with None -> base | Some c -> { base with cache = Some c }

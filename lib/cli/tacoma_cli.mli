(** Cmdliner building blocks shared by the [tacoma] tool and experiment
    drivers, so every entry point parses transports, topologies and cache
    options the same way (and error messages list the same alternatives). *)

val transport_conv : Tacoma_core.Kernel.transport Cmdliner.Arg.conv
(** Parses with {!Tacoma_core.Kernel.transport_of_string} (case-
    insensitive); prints with {!Tacoma_core.Kernel.transport_name}. *)

val transport_term : Tacoma_core.Kernel.transport option Cmdliner.Term.t
(** [--transport rsh|tcp|horus]; [None] means the kernel default. *)

type topology_kind = Ring | Line | Star | Mesh | Grid

val topology_conv : topology_kind Cmdliner.Arg.conv

val build_topology : topology_kind -> int -> Netsim.Topology.t
(** [Grid] builds the smallest square covering at least [n] sites. *)

val cache_term : Tacoma_core.Kernel.cache_config option Cmdliner.Term.t
(** [--code-cache] enables the content-addressed code cache with
    {!Tacoma_core.Kernel.default_cache_config}; [--code-cache-budget BYTES]
    overrides the per-site LRU budget (and implies [--code-cache]). *)

val jobs_term : int Cmdliner.Term.t
(** [--jobs N] (also [-j]): worker-domain count for sweep fan-out, handed
    to {!Tacoma_util.Pool}.  Default [1] (serial); [0] means
    [Domain.recommended_domain_count ()]. *)

val chaos_plan_conv : Netsim.Chaos.plan Cmdliner.Arg.conv
(** A chaos-plan file (the {!Netsim.Chaos.to_string} line format): the
    argument is a path, parsed with {!Netsim.Chaos.of_string} so replay
    errors name the offending line. *)

val apply_config :
  ?transport:Tacoma_core.Kernel.transport ->
  ?cache:Tacoma_core.Kernel.cache_config ->
  Tacoma_core.Kernel.config ->
  Tacoma_core.Kernel.config
(** Functional update helper threading the optional CLI choices into a
    base config. *)

module Kernel = Tacoma_core.Kernel
module Briefcase = Tacoma_core.Briefcase
module Cabinet = Tacoma_core.Cabinet
module Value = Tscript.Value

type message = {
  from_user : string;
  to_user : string;
  subject : string;
  body : string;
  sent_at : float;
}

let wire m =
  Value.of_list [ m.from_user; m.to_user; m.subject; m.body; Printf.sprintf "%.6f" m.sent_at ]

let of_wire w =
  match Value.to_list w with
  | Ok [ from_user; to_user; subject; body; sent_at ] -> (
    match float_of_string_opt sent_at with
    | Some sent_at -> Ok { from_user; to_user; subject; body; sent_at }
    | None -> Error "bad timestamp")
  | Ok _ -> Error "expected five fields"
  | Error e -> Error e

let dir_folder = "MAILDIR"
let list_folder = "MAILLIST"
let forward_folder = "FORWARD"
let vacation_folder = "VACATION"
let vacation_sent_folder = "VACATION-SENT"
let mailbox_folder user = "MAILBOX:" ^ user
let max_hops = 8

let all_sites kernel = Netsim.Net.sites (Kernel.net kernel)

(* Mail configuration is durable state (like /etc/aliases): every write is
   flushed so it survives a site crash and restart. *)
let set_kv_durable kernel site folder ~key value =
  let cab = Kernel.cabinet kernel site in
  Cabinet.set_kv cab folder ~key value;
  Cabinet.flush_folder cab folder

let register_user kernel ~user ~home =
  let home_name = Kernel.site_name kernel home in
  List.iter
    (fun site -> set_kv_durable kernel site dir_folder ~key:user home_name)
    (all_sites kernel)

let make_list kernel ~name ~members =
  List.iter
    (fun site -> set_kv_durable kernel site list_folder ~key:name (Value.of_list members))
    (all_sites kernel)

let set_forward kernel ~user ~to_user =
  List.iter
    (fun site -> set_kv_durable kernel site forward_folder ~key:user to_user)
    (all_sites kernel)

let set_vacation kernel ~user ~note =
  List.iter
    (fun site -> set_kv_durable kernel site vacation_folder ~key:user note)
    (all_sites kernel)

let dispatch kernel ~src msg ~hops =
  let bc = Briefcase.create () in
  Briefcase.set bc "MSG" (wire msg);
  Briefcase.set bc "HOPS" (string_of_int hops);
  (* the message agent starts its journey locally *)
  Kernel.launch kernel ~site:src ~contact:"mail" bc

let setup kernel =
  Kernel.register_native kernel "mail" (fun ctx bc ->
      let k = ctx.Kernel.kernel in
      let site = ctx.Kernel.site in
      let cab = Kernel.cabinet k site in
      let msg =
        match Option.map of_wire (Briefcase.find_opt bc "MSG") with
        | Some (Ok m) -> m
        | Some (Error e) -> raise (Kernel.Agent_error ("mail: corrupt message: " ^ e))
        | None -> raise (Kernel.Agent_error "mail: missing MSG folder")
      in
      let hops =
        Option.value ~default:0 (Option.bind (Briefcase.find_opt bc "HOPS") int_of_string_opt)
      in
      let resend ~to_user =
        dispatch k ~src:site { msg with to_user } ~hops:(hops + 1)
      in
      if hops > max_hops then () (* mail loop: drop *)
      else
        match Cabinet.find_kv_opt cab list_folder ~key:msg.to_user with
        | Some members ->
          (* mailing list: the agent clones per member *)
          List.iter (fun m -> resend ~to_user:m) (Value.to_list_exn members)
        | None -> (
          match Cabinet.find_kv_opt cab dir_folder ~key:msg.to_user with
          | None ->
            (* unknown recipient: bounce to the sender, unless that would loop *)
            if Cabinet.find_kv_opt cab dir_folder ~key:msg.from_user <> None then
              dispatch k ~src:site
                {
                  from_user = "postmaster";
                  to_user = msg.from_user;
                  subject = "bounced: " ^ msg.subject;
                  body = "no such user " ^ msg.to_user;
                  sent_at = Kernel.now k;
                }
                ~hops:(hops + 1)
          | Some home_name ->
            let home = Option.get (Kernel.site_named k home_name) in
            if home <> site then begin
              (* travel to the recipient's home *)
              Briefcase.set bc "HOPS" (string_of_int hops);
              Briefcase.set bc Briefcase.host_folder home_name;
              Briefcase.set bc Briefcase.contact_folder "mail";
              Kernel.meet ctx "rexec" bc
            end
            else
              match Cabinet.find_kv_opt cab forward_folder ~key:msg.to_user with
              | Some target when target <> msg.to_user -> resend ~to_user:target
              | Some _ | None ->
                Cabinet.put cab (mailbox_folder msg.to_user) (wire msg);
                (* delivered mail is durable *)
                Cabinet.flush_folder cab (mailbox_folder msg.to_user);
                (* vacation auto-reply, once per sender, never to replies *)
                (match Cabinet.find_kv_opt cab vacation_folder ~key:msg.to_user with
                | Some note
                  when msg.from_user <> "postmaster"
                       && (not
                             (Cabinet.contains cab
                                (vacation_sent_folder ^ ":" ^ msg.to_user)
                                msg.from_user))
                       && not (String.length msg.subject >= 9
                              && String.sub msg.subject 0 9 = "vacation:") ->
                  Cabinet.put cab (vacation_sent_folder ^ ":" ^ msg.to_user) msg.from_user;
                  dispatch k ~src:site
                    {
                      from_user = msg.to_user;
                      to_user = msg.from_user;
                      subject = "vacation: " ^ msg.subject;
                      body = note;
                      sent_at = Kernel.now k;
                    }
                    ~hops:(hops + 1)
                | Some _ | None -> ())))

let send kernel ~src ~from_user ~to_user ~subject ~body =
  dispatch kernel ~src
    { from_user; to_user; subject; body; sent_at = Kernel.now kernel }
    ~hops:0

let mailbox kernel ~user =
  (* find the user's home from any directory replica *)
  match all_sites kernel with
  | [] -> []
  | site0 :: _ -> (
    match Cabinet.find_kv_opt (Kernel.cabinet kernel site0) dir_folder ~key:user with
    | None -> []
    | Some home_name -> (
      match Kernel.site_named kernel home_name with
      | None -> []
      | Some home ->
        List.filter_map
          (fun w -> Result.to_option (of_wire w))
          (Cabinet.elements (Kernel.cabinet kernel home) (mailbox_folder user))))

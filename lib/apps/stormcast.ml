module Kernel = Tacoma_core.Kernel
module Briefcase = Tacoma_core.Briefcase
module Folder = Tacoma_core.Folder
module Cabinet = Tacoma_core.Cabinet
module Net = Netsim.Net

type prediction = { p_station : int; p_hour : int; severity : float }

(* --- expert system ---------------------------------------------------------- *)

let anomalous (r : Weather.reading) = r.pressure_hpa < 998.0 || r.wind_ms > 13.0

let predict readings =
  (* index by station and hour for the windowed rules *)
  let by_key = Hashtbl.create 64 in
  List.iter (fun (r : Weather.reading) -> Hashtbl.replace by_key (r.station, r.hour) r) readings;
  let anomalous_stations_at hour =
    Hashtbl.fold
      (fun (s, h) r acc -> if h = hour && anomalous r then s :: acc else acc)
      by_key []
  in
  Hashtbl.fold
    (fun (station, hour) (r : Weather.reading) acc ->
      let severity = ref 0.0 in
      (* deep pressure trough *)
      if r.pressure_hpa < 985.0 then severity := !severity +. 0.5
      else if r.pressure_hpa < 998.0 then severity := !severity +. 0.25;
      (* wind surge *)
      if r.wind_ms > 18.0 then severity := !severity +. 0.4
      else if r.wind_ms > 13.0 then severity := !severity +. 0.2;
      (* rapid pressure fall versus the previous hour at this station *)
      (match Hashtbl.find_opt by_key (station, hour - 1) with
      | Some (prev : Weather.reading) ->
        if r.pressure_hpa -. prev.pressure_hpa < -8.0 then severity := !severity +. 0.3
      | None -> ());
      (* corroboration by another station in the same hour *)
      if List.exists (fun s -> s <> station) (anomalous_stations_at hour) then
        severity := !severity +. 0.2;
      if !severity >= 0.6 then { p_station = station; p_hour = hour; severity = !severity } :: acc
      else acc)
    by_key []

let score field predictions ~hit_rate ~false_alarm_rate =
  let truth = field.Weather.storm_hours in
  let predicted = List.map (fun p -> (p.p_station, p.p_hour)) predictions in
  let hits = List.filter (fun k -> List.mem k truth) predicted in
  hit_rate :=
    (if truth = [] then 1.0
     else float_of_int (List.length (List.sort_uniq compare hits))
          /. float_of_int (List.length (List.sort_uniq compare truth)));
  false_alarm_rate :=
    (if predicted = [] then 0.0
     else
       float_of_int (List.length predicted - List.length hits)
       /. float_of_int (List.length predicted))

(* --- deployments -------------------------------------------------------------- *)

type outcome = {
  predictions : prediction list;
  bytes_moved : int;
  finished_at : float;
  readings_moved : int;
}

let readings_folder = "READINGS"

let load_sensor_data kernel ~sites field =
  List.iteri
    (fun station site ->
      let cab = Kernel.cabinet kernel site in
      Cabinet.replace cab readings_folder
        (Array.to_list (Array.map Weather.wire field.Weather.readings.(station))))
    sites

let parse_readings elems =
  List.filter_map (fun w -> Result.to_option (Weather.of_wire w)) elems

let register_centre kernel ~start_bytes ~on_done =
  Kernel.register_native kernel "stormcast-centre" (fun ctx bc ->
      let findings = parse_readings (Folder.to_list (Briefcase.folder bc "FINDINGS")) in
      let predictions = predict findings in
      let k = ctx.Kernel.kernel in
      on_done
        {
          predictions;
          bytes_moved =
            Netsim.Netstats.bytes_sent (Net.stats (Kernel.net k)) - start_bytes;
          finished_at = Kernel.now k;
          readings_moved = List.length findings;
        })

let run_agent_collector kernel ~sensor_sites ~centre ~on_done =
  let net = Kernel.net kernel in
  let start_bytes = Netsim.Netstats.bytes_sent (Net.stats net) in
  let centre_host = Kernel.site_name kernel centre in

  register_centre kernel ~start_bytes ~on_done;

  Kernel.register_native kernel "stormcast-collector" (fun ctx bc ->
      let cab = Kernel.cabinet ctx.Kernel.kernel ctx.Kernel.site in
      (* filter at the data: only anomalous readings enter the briefcase *)
      let local = parse_readings (Cabinet.elements cab readings_folder) in
      let findings = Briefcase.folder bc "FINDINGS" in
      List.iter
        (fun r -> if anomalous r then Folder.enqueue findings (Weather.wire r))
        local;
      let itinerary = Briefcase.folder bc "ITINERARY" in
      let next, contact =
        match Folder.pop itinerary with
        | Some site_name -> (site_name, "stormcast-collector")
        | None -> (centre_host, "stormcast-centre")
      in
      Briefcase.set bc Briefcase.host_folder next;
      Briefcase.set bc Briefcase.contact_folder contact;
      Kernel.meet ctx "rexec" bc);

  match sensor_sites with
  | [] -> invalid_arg "Stormcast.run_agent_collector: no sensor sites"
  | first :: rest ->
    let bc = Briefcase.create () in
    Folder.replace (Briefcase.folder bc "ITINERARY")
      (List.map (Kernel.site_name kernel) rest);
    Kernel.launch kernel ~site:first ~contact:"stormcast-collector" bc

(* The same collector as a TScript agent: the anomaly rule from [anomalous]
   transcribed into the agent language, the itinerary carried in a folder,
   and the source re-shipped with [selfcode] at every hop. *)
let collector_script = {|
  foreach r [cabinet list READINGS] {
    lassign [split $r ,] st hr temp pres wind
    if {$pres < 998.0 || $wind > 13.0} { folder put FINDINGS $r }
  }
  if {[folder size ITINERARY] > 0} {
    set next [folder pop ITINERARY]
    folder set CODE [selfcode]
    jump $next
  } else {
    folder clear CODE
    folder set HOST [folder peek CENTRE]
    folder set CONTACT stormcast-centre
    meet rexec
  }
|}

let run_script_collector kernel ~sensor_sites ~centre ~on_done =
  let net = Kernel.net kernel in
  let start_bytes = Netsim.Netstats.bytes_sent (Net.stats net) in
  register_centre kernel ~start_bytes ~on_done;
  match sensor_sites with
  | [] -> invalid_arg "Stormcast.run_script_collector: no sensor sites"
  | first :: rest ->
    let bc = Briefcase.create () in
    Briefcase.set bc Briefcase.code_folder collector_script;
    Briefcase.set bc "CENTRE" (Kernel.site_name kernel centre);
    Folder.replace (Briefcase.folder bc "ITINERARY")
      (List.map (Kernel.site_name kernel) rest);
    Kernel.launch kernel ~site:first ~contact:"ag_script" bc

(* --- resident monitor agents (push) ------------------------------------------ *)

type push_outcome = {
  alerts : int;
  mean_alert_latency : float;
  push_bytes : int;
  push_predictions : prediction list;
}

let run_monitor_agents kernel ~field ~sensor_sites ~centre ~hour_scale () =
  let net = Kernel.net kernel in
  let start_bytes = Netsim.Netstats.bytes_sent (Net.stats net) in
  let received = ref [] (* (reading, latency) *) in
  Kernel.register_native kernel ~site:centre "stormcast-alert-sink" (fun ctx bc ->
      let k = ctx.Kernel.kernel in
      match
        ( Option.bind (Briefcase.find_opt bc "READING") (fun w -> Result.to_option (Weather.of_wire w)),
          Option.bind (Briefcase.find_opt bc "PRODUCED-AT") float_of_string_opt )
      with
      | Some r, Some produced_at ->
        received := (r, Kernel.now k -. produced_at) :: !received
      | _ -> ());
  let centre_name = Kernel.site_name kernel centre in
  List.iteri
    (fun station site ->
      let readings = field.Weather.readings.(station) in
      let monitor_name = Printf.sprintf "stormcast-monitor-%d" station in
      Kernel.register_native kernel ~site monitor_name (fun ctx _ ->
          let k = ctx.Kernel.kernel in
          Array.iter
            (fun (r : Weather.reading) ->
              (* wait for this hour's reading to be produced *)
              Kernel.sleep ctx hour_scale;
              if anomalous r then begin
                let out = Briefcase.create () in
                Briefcase.set out "READING" (Weather.wire r);
                Briefcase.set out "PRODUCED-AT" (Printf.sprintf "%.6f" (Kernel.now k));
                ignore centre_name;
                Kernel.send_briefcase k ~src:ctx.Kernel.site ~dst:centre
                  ~contact:"stormcast-alert-sink" out
              end)
            readings);
      Kernel.launch kernel ~site ~contact:monitor_name (Briefcase.create ()))
    sensor_sites;
  (* the caller drives the network, then collects the outcome *)
  fun () ->
    let readings = List.map fst !received in
    {
      alerts = List.length !received;
      mean_alert_latency =
        (match !received with
        | [] -> 0.0
        | rs ->
          List.fold_left (fun acc (_, l) -> acc +. l) 0.0 rs /. float_of_int (List.length rs));
      push_bytes = Netsim.Netstats.bytes_sent (Net.stats net) - start_bytes;
      push_predictions = predict readings;
    }

let run_client_server net ~field ~sensor_sites ~centre ~on_done =
  let start_bytes = Netsim.Netstats.bytes_sent (Net.stats net) in
  List.iteri
    (fun station site ->
      ignore
        (Baseline.Rpc.serve net ~site ~service:"stormcast" (fun ~query:_ ->
             Array.to_list (Array.map Weather.wire field.Weather.readings.(station)))))
    sensor_sites;
  let collected = ref [] in
  let remaining = ref (List.length sensor_sites) in
  let finish () =
    let readings = parse_readings !collected in
    (* the centre filters locally, then predicts — same rules, same data *)
    let predictions = predict (List.filter anomalous readings) in
    on_done
      {
        predictions;
        bytes_moved = Netsim.Netstats.bytes_sent (Net.stats net) - start_bytes;
        finished_at = Net.now net;
        readings_moved = List.length readings;
      }
  in
  let rpc = Baseline.Rpc.client net ~src:centre in
  List.iter
    (fun site ->
      Baseline.Rpc.call rpc ~dst:site ~service:"stormcast" ~query:"all"
        ~on_reply:(fun rows ->
          collected := rows @ !collected;
          decr remaining;
          if !remaining = 0 then finish ()))
    sensor_sites

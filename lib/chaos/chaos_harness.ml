module Rng = Tacoma_util.Rng
module Topology = Netsim.Topology
module Net = Netsim.Net
module Site = Netsim.Site
module Chaos = Netsim.Chaos
module Netstats = Netsim.Netstats
module Kernel = Tacoma_core.Kernel
module Briefcase = Tacoma_core.Briefcase
module Escort = Guard.Escort
module Matchmaker = Broker.Matchmaker
module Provider = Broker.Provider
module Booking = Broker.Booking
module Mint = Cash.Mint
module Audit = Cash.Audit
module Validator = Cash.Validator
module Ecu = Cash.Ecu

type config = {
  sites : int;
  link_prob : float;
  journeys : int;
  hops : int;
  work_per_hop : float;
  bookings : int;
  booking_work : float;
  booking_timeout : float;
  booking_attempts : int;
  purchases : int;
  purchase_amount : int;
  horizon : float;
  drain : float;
  guarded : bool;
  guard : Escort.config;
  profile : Chaos.profile;
}

let default_config =
  {
    sites = 10;
    link_prob = 0.35;
    journeys = 6;
    hops = 5;
    work_per_hop = 0.8;
    bookings = 4;
    booking_work = 1.5;
    booking_timeout = 8.0;
    booking_attempts = 3;
    purchases = 3;
    purchase_amount = 500;
    horizon = 300.0;
    drain = 600.0;
    guarded = true;
    guard =
      {
        Escort.default_config with
        ack_timeout = 4.0;
        retry_period = 2.0;
        max_relaunch = 6;
        durable = true;
      };
    profile = Chaos.default_profile;
  }

type verdict = {
  v_seed : int;
  v_guarded : bool;
  v_events : (string * int) list;
  v_journeys : int;
  v_completed : int;
  v_lost_attributed : int;
  v_relaunches : int;
  v_giveups : int;
  v_bookings_ok : int;
  v_bookings_failed : int;
  v_failovers : int;
  v_duplicate_fulfillments : int;
  v_cash_minted : int;
  v_cash_banked : int;
  v_msgs_sent : int;
  v_msgs_dropped : int;
  v_bytes_sent : int;
  v_violations : string list;
}

let passed v = v.v_violations = []

(* ------------------------------------------------------------------ *)
(* Loss attribution                                                    *)

type probe = {
  jid : string;
  itinerary : Site.id list;
  start : float;
  mutable completions : int;
  mutable journey : Escort.journey option;
}

let overlap (a, b) (c, d) = a <= d && c <= b

(* Windows of every non-crash chaos event: anything that can delay or drop
   a message (cut, loss burst, degradation). *)
let disturbance_windows plan =
  List.filter_map
    (function
      | Chaos.Crash _ -> None
      | Chaos.Cut { at; duration; _ } -> Some (at, at +. duration)
      | Chaos.Loss_burst { at; duration; _ } -> Some (at, at +. duration)
      | Chaos.Degrade { at; duration; _ } -> Some (at, at +. duration))
    plan

(* Is the loss of a guarded journey attributable to the chaos plan?  The
   rear-guard protocol only loses a computation when a guard dies while the
   hop it covers cannot make progress.  We over-approximate from the plan:

   - a guard gave up (relaunch budget exhausted — recorded, not silent);
   - the paper's double-failure window: adjacent itinerary sites down at
     once;
   - the first site crashed around launch time (hop 0 has no guard yet);
   - a crash of an itinerary site (killing its guard) overlapped either a
     crash of another itinerary site or any cut/loss/degrade window (the
     covered hop's traffic may have been lost exactly while unguarded).

   Anything else must be recoverable, and an incomplete journey is a
   violation. *)
let loss_attributable plan p ~work ~giveups =
  giveups > 0
  || Chaos.double_failure_window plan p.itinerary
  ||
  let cw = Chaos.crash_windows plan in
  let cw_of s = List.filter_map (fun (s', w) -> if s' = s then Some w else None) cw in
  let disturbed = disturbance_windows plan in
  let launch_hit =
    match p.itinerary with
    | s0 :: _ ->
      List.exists (fun w -> overlap w (p.start, p.start +. work +. 5.0)) (cw_of s0)
    | [] -> false
  in
  launch_hit
  || List.exists
       (fun s ->
         List.exists
           (fun w ->
             List.exists (overlap w) disturbed
             || List.exists
                  (fun s' -> s' <> s && List.exists (overlap w) (cw_of s'))
                  p.itinerary)
           (cw_of s))
       p.itinerary

(* ------------------------------------------------------------------ *)
(* One seeded run                                                      *)

(* Independent split streams, in a fixed order: topology, chaos plan,
   workload placement.  Changing one knob never reshuffles the others. *)
let streams seed =
  let master = Rng.create (Int64.of_int (0x51ded + seed)) in
  let topo_rng = Rng.split master in
  let plan_rng = Rng.split master in
  let wl_rng = Rng.split master in
  (topo_rng, plan_rng, wl_rng)

let plan_of_seed ?(config = default_config) ~seed () =
  let topo_rng, plan_rng, _ = streams seed in
  let topo = Topology.random ~rng:topo_rng ~n:config.sites ~p:config.link_prob () in
  Chaos.mixed ~rng:plan_rng ~topo ~profile:config.profile ~until:config.horizon ()

let run_seed ?(config = default_config) ?plan ~seed () =
  let cfg = config in
  let hops = max 2 (min cfg.hops cfg.sites) in
  let topo_rng, plan_rng, wl_rng = streams seed in
  let topo = Topology.random ~rng:topo_rng ~n:cfg.sites ~p:cfg.link_prob () in
  let net = Net.create ~seed:(Int64.of_int (0xca05 + seed)) ~trace:true topo in
  let k = Kernel.create net in
  let m = Net.metrics net in
  let plan =
    match plan with
    | Some p -> p
    | None -> Chaos.mixed ~rng:plan_rng ~topo ~profile:cfg.profile ~until:cfg.horizon ()
  in
  Chaos.apply net plan;
  let violations = ref [] in
  let violate fmt =
    Printf.ksprintf (fun s -> violations := s :: !violations) fmt
  in
  let sites_arr = Array.of_list (Topology.sites topo) in
  let pick_site () = sites_arr.(Rng.int wl_rng (Array.length sites_arr)) in
  (* --- guarded journeys ------------------------------------------- *)
  (* Live bilocation detector: the work body registers the journey in
     [active] for the duration of its sleep; a second concurrent execution
     anywhere is the "briefcase at two sites at once" violation.  The
     finally-handler runs even when a site crash aborts the sleep, so a
     killed agent never leaves a stale entry. *)
  let active : (string, Site.id) Hashtbl.t = Hashtbl.create 16 in
  let probes =
    List.init cfg.journeys (fun i ->
        let arr = Array.copy sites_arr in
        Rng.shuffle wl_rng arr;
        let itinerary = Array.to_list (Array.sub arr 0 hops) in
        let start =
          cfg.horizon *. 0.5 *. float_of_int i /. float_of_int (max 1 cfg.journeys)
        in
        { jid = Printf.sprintf "j%d" i; itinerary; start; completions = 0; journey = None })
  in
  List.iter
    (fun p ->
      let work ctx ~hop _bc =
        (match Hashtbl.find_opt active p.jid with
        | Some other ->
          violate "bilocation: journey %s working at site %d while active at site %d (hop %d)"
            p.jid ctx.Kernel.site other hop
        | None -> ());
        Hashtbl.replace active p.jid ctx.Kernel.site;
        Fun.protect
          ~finally:(fun () -> Hashtbl.remove active p.jid)
          (fun () -> Kernel.sleep ctx cfg.work_per_hop)
      in
      let on_complete _bc = p.completions <- p.completions + 1 in
      ignore
        (Net.schedule net ~after:p.start (fun () ->
             let bc = Briefcase.create () in
             let j =
               if cfg.guarded then
                 Escort.guarded_journey k ~config:cfg.guard ~id:p.jid
                   ~itinerary:p.itinerary ~work ~on_complete bc
               else
                 Escort.unguarded_journey k ~transport:cfg.guard.Escort.transport
                   ~id:p.jid ~itinerary:p.itinerary ~work ~on_complete bc
             in
             p.journey <- Some j)))
    probes;
  (* --- broker bookings -------------------------------------------- *)
  let broker_site = pick_site () in
  let mm = Matchmaker.install k ~site:broker_site ~name:"broker" () in
  for i = 0 to min 3 cfg.sites - 1 do
    let site = pick_site () in
    let p =
      Provider.install k ~site
        ~name:(Printf.sprintf "prov%d" i)
        ~service:"compute"
        ~capacity:(1.0 +. (float_of_int i *. 0.5))
        ()
    in
    Matchmaker.register_provider mm p;
    Provider.start_load_monitor k p ~brokers:[ (broker_site, "broker") ] ~period:7.0
  done;
  let bookings =
    List.init cfg.bookings (fun i ->
        let client = pick_site () in
        let start =
          cfg.horizon *. 0.5
          *. (0.1 +. (float_of_int i /. float_of_int (max 1 cfg.bookings)))
        in
        let cell = ref None in
        ignore
          (Net.schedule net ~after:start (fun () ->
               cell :=
                 Some
                   (Booking.book k ~client
                      ~broker:(broker_site, "broker")
                      ~service:"compute" ~work:cfg.booking_work
                      ~timeout:cfg.booking_timeout
                      ~max_attempts:cfg.booking_attempts
                      ~id:(Printf.sprintf "bk%d" i) ())));
        cell)
  in
  (* --- electronic cash -------------------------------------------- *)
  let mint = Mint.create ~seed:(Int64.of_int (0x0ca5 + seed)) ~secret:"chaos-harness" () in
  let bank_site = pick_site () in
  let witness_site = pick_site () in
  Validator.install k ~site:bank_site mint;
  Audit.install_witness k ~site:witness_site;
  let minted = ref 0 in
  let purchases =
    List.init cfg.purchases (fun i ->
        let customer_site = pick_site () in
        let merchant_site = pick_site () in
        let bills = [ Mint.issue mint ~amount:cfg.purchase_amount ] in
        minted := !minted + cfg.purchase_amount;
        let start =
          cfg.horizon *. 0.5
          *. (0.2 +. (float_of_int i /. float_of_int (max 1 cfg.purchases)))
        in
        let cell = ref None in
        ignore
          (Net.schedule net ~after:start (fun () ->
               let tx = Printf.sprintf "tx%d" i in
               cell :=
                 Some
                   (Audit.purchase k ~tx ~amount:cfg.purchase_amount ~bills
                      ~customer:("cust-" ^ tx, "ck-" ^ tx, Audit.Honest)
                      ~merchant:("merch-" ^ tx, "mk-" ^ tx, Audit.Honest)
                      ~customer_site ~merchant_site ~witness_site ~bank_site)));
        cell)
  in
  (* --- drive ------------------------------------------------------- *)
  Net.run ~until:(cfg.horizon +. cfg.drain) net;
  (* --- invariants -------------------------------------------------- *)
  let crash_count =
    List.length (List.filter (function Chaos.Crash _ -> true | _ -> false) plan)
  in
  let completed = ref 0
  and lost_attributed = ref 0
  and relaunches = ref 0
  and giveups = ref 0 in
  List.iter
    (fun p ->
      match p.journey with
      | None -> violate "journey %s never started" p.jid
      | Some j ->
        let st = Escort.stats j in
        if p.completions > 1 then
          violate "journey %s completed %d times" p.jid p.completions;
        if st.Escort.duplicate_completions > 0 then
          violate "journey %s final hop executed %d extra times" p.jid
            st.Escort.duplicate_completions;
        (* Each of the (hops-1) guards relaunches at most max_relaunch
           times; a durable guard resurrected after its site restarts may
           start a fresh budget, bounded by the plan's crash count. *)
        let bound =
          cfg.guard.Escort.max_relaunch
          * (List.length p.itinerary - 1)
          * (if cfg.guard.Escort.durable then 1 + crash_count else 1)
        in
        if cfg.guarded && st.Escort.relaunches > bound then
          violate "journey %s relaunched %d times (bound %d)" p.jid
            st.Escort.relaunches bound;
        relaunches := !relaunches + st.Escort.relaunches;
        giveups := !giveups + st.Escort.giveups;
        if p.completions = 1 then incr completed
        else if cfg.guarded then
          if loss_attributable plan p ~work:cfg.work_per_hop ~giveups:st.Escort.giveups
          then incr lost_attributed
          else violate "journey %s lost without attributable chaos cause" p.jid)
    probes;
  let bookings_ok = ref 0 and bookings_failed = ref 0 in
  List.iteri
    (fun i cell ->
      match !cell with
      | None -> violate "booking bk%d never started" i
      | Some b -> (
        match Booking.result b with
        | None -> violate "booking bk%d unresolved after drain" i
        | Some (Booking.Booked _) -> incr bookings_ok
        | Some (Booking.Failed _) -> incr bookings_failed))
    bookings;
  let serial_owner : (string, string) Hashtbl.t = Hashtbl.create 16 in
  let banked = ref 0 in
  List.iteri
    (fun i cell ->
      match !cell with
      | None -> violate "purchase tx%d never started" i
      | Some (p : Audit.purchase) ->
        if p.Audit.merchant_accepted && p.Audit.merchant_rejected then
          violate "purchase %s both accepted and rejected" p.Audit.p_tx;
        banked := !banked + Ecu.total p.Audit.merchant_bills;
        List.iter
          (fun (b : Ecu.t) ->
            (match Hashtbl.find_opt serial_owner b.Ecu.serial with
            | Some tx' ->
              violate "cash serial %s banked by both %s and %s" b.Ecu.serial tx'
                p.Audit.p_tx
            | None -> ());
            Hashtbl.replace serial_owner b.Ecu.serial p.Audit.p_tx)
          p.Audit.merchant_bills)
    purchases;
  if !banked > !minted then
    violate "cash conservation: banked %d > minted %d" !banked !minted;
  let injected = Obs.Metrics.counter_total m "chaos.injected" in
  let skipped = Obs.Metrics.counter_total m "chaos.skipped" in
  if injected + skipped <> List.length plan then
    violate "chaos accounting: injected %d + skipped %d <> plan size %d" injected
      skipped (List.length plan);
  let stats = Net.stats net in
  let sent = Netstats.messages_sent stats in
  let delivered = Netstats.messages_delivered stats in
  let dropped = Netstats.messages_dropped stats in
  (* No-route and partition drops happen at send time, before the message
     counts as sent; only in-transit fates (delivery, loss, dead receiver)
     consume a recorded send.  The slack is messages still in flight. *)
  let drops reason = Obs.Metrics.counter m ~labels:[ ("reason", reason) ] "net.drops" in
  let in_transit_drops = drops "loss" + drops "site-down" in
  if delivered + in_transit_drops > sent then
    violate "netstats: delivered %d + in-transit drops %d > sent %d" delivered
      in_transit_drops sent;
  if drops "loss" + drops "site-down" + drops "no-route" + drops "partition" <> dropped
  then
    violate "netstats: drop reasons don't sum to %d total drops" dropped;
  {
    v_seed = seed;
    v_guarded = cfg.guarded;
    v_events = Chaos.counts plan;
    v_journeys = cfg.journeys;
    v_completed = !completed;
    v_lost_attributed = !lost_attributed;
    v_relaunches = !relaunches;
    v_giveups = !giveups;
    v_bookings_ok = !bookings_ok;
    v_bookings_failed = !bookings_failed;
    v_failovers = Obs.Metrics.counter_total m "broker.failovers";
    v_duplicate_fulfillments = Obs.Metrics.counter_total m "broker.duplicate_fulfillments";
    v_cash_minted = !minted;
    v_cash_banked = !banked;
    v_msgs_sent = sent;
    v_msgs_dropped = dropped;
    v_bytes_sent = Netstats.bytes_sent stats;
    v_violations = List.rev !violations;
  }

(* One pool task per seed.  Safe because [run_seed] is self-contained: the
   topology, net (with engine, metrics registry and tracer), kernel (with
   its interpreter cache pair), mint and every workload object are built
   inside the call from seed-derived streams — nothing mutable crosses
   seeds, so any interleaving of tasks produces the same verdicts as the
   serial loop, byte for byte. *)
let run_sweep ?config ?plan ?(jobs = 1) ~seeds () =
  Tacoma_util.Pool.with_pool ~jobs (fun pool ->
      Tacoma_util.Pool.map pool (fun seed -> run_seed ?config ?plan ~seed ()) seeds)

let all_passed vs = List.for_all passed vs

(* ------------------------------------------------------------------ *)
(* Reporting                                                           *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let verdict_json v =
  let b = Buffer.create 512 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  add "{\"seed\":%d,\"passed\":%b,\"guarded\":%b," v.v_seed (passed v) v.v_guarded;
  add "\"events\":{%s},"
    (String.concat ","
       (List.map (fun (k, n) -> Printf.sprintf "\"%s\":%d" k n) v.v_events));
  add "\"journeys\":%d,\"completed\":%d,\"lost_attributed\":%d," v.v_journeys
    v.v_completed v.v_lost_attributed;
  add "\"relaunches\":%d,\"giveups\":%d," v.v_relaunches v.v_giveups;
  add "\"bookings_ok\":%d,\"bookings_failed\":%d,\"failovers\":%d," v.v_bookings_ok
    v.v_bookings_failed v.v_failovers;
  add "\"duplicate_fulfillments\":%d," v.v_duplicate_fulfillments;
  add "\"cash_minted\":%d,\"cash_banked\":%d," v.v_cash_minted v.v_cash_banked;
  add "\"msgs_sent\":%d,\"msgs_dropped\":%d,\"bytes_sent\":%d," v.v_msgs_sent
    v.v_msgs_dropped v.v_bytes_sent;
  add "\"violations\":[%s]}"
    (String.concat ","
       (List.map (fun s -> "\"" ^ json_escape s ^ "\"") v.v_violations));
  Buffer.contents b

let pp_verdict ppf v =
  Format.fprintf ppf "seed %d: %s — %d/%d journeys, %d relaunches, %d giveups, %d/%d bookings"
    v.v_seed
    (if passed v then "ok" else "VIOLATIONS")
    v.v_completed v.v_journeys v.v_relaunches v.v_giveups v.v_bookings_ok
    (v.v_bookings_ok + v.v_bookings_failed);
  List.iter (fun s -> Format.fprintf ppf "@.  violation: %s" s) v.v_violations

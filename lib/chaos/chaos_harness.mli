(** Seeded invariant harness: a full TACOMA workload (guarded journeys,
    broker bookings, electronic-cash purchases) driven under a deterministic
    {!Netsim.Chaos} schedule, with machine-checked invariants per run.

    Each seed deterministically derives a random topology, a mixed chaos
    plan and a workload placement from independent split RNG streams, runs
    the simulation past a drain period, and checks:

    - every guarded journey completes {e exactly once}, or its loss is
      attributable to the chaos plan (a recorded guard give-up, the paper's
      double-failure window, a launch-time crash of the unguarded first
      hop, or a guard-site crash concurrent with other chaos);
    - no briefcase is ever at two sites at once (live bilocation detector
      around the per-hop work);
    - relaunch counts stay within the per-guard budget;
    - every booking resolves to an outcome; none hangs;
    - cash is conserved: no serial banked twice, banked value never exceeds
      minted value, no purchase both accepted and rejected;
    - chaos/metric accounting is consistent ([chaos.injected] +
      [chaos.skipped] equals the plan size; delivered + dropped never
      exceeds sent).

    The harness is what the chaos-smoke CI job and experiment E10 run. *)

type config = {
  sites : int;
  link_prob : float;       (** {!Netsim.Topology.random} edge probability *)
  journeys : int;
  hops : int;              (** itinerary length (clamped to [sites]) *)
  work_per_hop : float;
  bookings : int;
  booking_work : float;
  booking_timeout : float;
  booking_attempts : int;
  purchases : int;
  purchase_amount : int;
  horizon : float;         (** chaos plan covers [0, horizon) *)
  drain : float;           (** quiet time after the horizon so guards and
                               timers resolve before invariants are read *)
  guarded : bool;          (** rear guards on (the protocol under test) or
                               off (the lossy baseline) *)
  guard : Guard.Escort.config;
  profile : Netsim.Chaos.profile;
}

val default_config : config

type verdict = {
  v_seed : int;
  v_guarded : bool;
  v_events : (string * int) list;  (** chaos plan composition, by kind *)
  v_journeys : int;
  v_completed : int;
  v_lost_attributed : int;
  v_relaunches : int;
  v_giveups : int;
  v_bookings_ok : int;
  v_bookings_failed : int;
  v_failovers : int;
  v_duplicate_fulfillments : int;
  v_cash_minted : int;
  v_cash_banked : int;
  v_msgs_sent : int;
  v_msgs_dropped : int;
  v_bytes_sent : int;
  v_violations : string list;  (** empty iff every invariant held *)
}

val passed : verdict -> bool

val plan_of_seed : ?config:config -> seed:int -> unit -> Netsim.Chaos.plan
(** Exactly the chaos plan {!run_seed} would generate for this seed and
    config — for dumping, editing and replaying. *)

val run_seed : ?config:config -> ?plan:Netsim.Chaos.plan -> seed:int -> unit -> verdict
(** Build, run and check one seeded chaos run.  Same seed and config —
    same verdict, bit for bit.  [plan] replays a stored schedule instead of
    generating one (the topology and workload still derive from [seed]). *)

val run_sweep :
  ?config:config -> ?plan:Netsim.Chaos.plan -> ?jobs:int -> seeds:int list -> unit -> verdict list
(** Run every seed and return verdicts in seed-list order.  [jobs]
    (default [1] = the plain serial loop; [0] = all cores) fans seeds out
    over a {!Tacoma_util.Pool}, one task per seed.  Each task builds its
    own kernel, net, metrics registry, tracer and interpreter caches, so
    the verdict list is byte-identical for every [jobs] value.  [plan]
    replays one stored schedule for {e every} seed, as in {!run_seed}. *)

val all_passed : verdict list -> bool

val verdict_json : verdict -> string
(** One JSON object per verdict (the CI artifact format). *)

val pp_verdict : Format.formatter -> verdict -> unit

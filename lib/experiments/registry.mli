(** The experiment index: every table the harness can regenerate, keyed by
    the experiment ids used in DESIGN.md and EXPERIMENTS.md. *)

type entry = {
  id : string;           (** e.g. ["e1"] *)
  title : string;
  paper_claim : string;  (** the paper section and claim it reproduces *)
  print : Format.formatter -> unit;
}

val all : entry list
val find : string -> entry option

val run : ?jobs:int -> entry list -> Format.formatter -> unit
(** Regenerate the given tables in order.  [jobs] (default 1; [0] = all
    cores) runs one {!Tacoma_util.Pool} task per experiment, each printing
    into a private buffer; buffers are flushed to the formatter in entry
    order, so the output is byte-identical to the serial run. *)

val run_all : ?jobs:int -> Format.formatter -> unit

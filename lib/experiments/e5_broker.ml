module Kernel = Tacoma_core.Kernel
module Briefcase = Tacoma_core.Briefcase
module Net = Netsim.Net
module Topology = Netsim.Topology
module Rng = Tacoma_util.Rng
module Stats = Tacoma_util.Stats
module Policy = Broker.Policy
module Matchmaker = Broker.Matchmaker
module Provider = Broker.Provider

type row = {
  policy : string;
  jobs : int;
  makespan : float;
  mean_response : float;
  p95_response : float;
  imbalance : float;
}

type params = {
  providers : float list;
  jobs : int;
  mean_interarrival : float;
  work_per_job : float;
  report_period : float;
}

let default_params =
  {
    providers = [ 4.0; 3.0; 2.0; 2.0; 1.0; 1.0; 1.0; 1.0 ];
    jobs = 200;
    mean_interarrival = 0.24;
    work_per_job = 3.0;
    report_period = 0.25;
  }

let run_policy p policy =
  let m = List.length p.providers in
  let net = Net.create (Topology.star m) in
  let k = Kernel.create net in
  let hub = 0 in
  let b = Matchmaker.install k ~site:hub ~name:"broker" ~policy () in
  let providers =
    List.mapi
      (fun i capacity ->
        let prov =
          Provider.install k ~site:(i + 1)
            ~name:(Printf.sprintf "prov-%d" i)
            ~service:"compute" ~capacity ()
        in
        Matchmaker.register_provider b prov;
        Provider.start_load_monitor k prov ~brokers:[ (hub, "broker") ]
          ~period:p.report_period;
        prov)
      p.providers
  in
  (* job completions come back to the hub *)
  let submit_times = Hashtbl.create 64 in
  let responses = ref [] in
  let last_completion = ref 0.0 in
  Kernel.register_native k ~site:hub "job-back" (fun ctx bc ->
      match Briefcase.find_opt bc "JOB" with
      | Some job -> (
        match Hashtbl.find_opt submit_times job with
        | Some t0 ->
          let now = Kernel.now ctx.Kernel.kernel in
          responses := (now -. t0) :: !responses;
          last_completion := max !last_completion now
        | None -> ())
      | None -> ());
  (* Poisson job arrivals at the hub: consult the broker, submit remotely *)
  let arrival_rng = Rng.create 2024L in
  let t = ref 0.0 in
  for i = 0 to p.jobs - 1 do
    t := !t +. Rng.exponential arrival_rng ~mean:p.mean_interarrival;
    let job = Printf.sprintf "job-%d" i in
    ignore
      (Net.schedule net ~after:!t (fun () ->
           match Matchmaker.lookup b ~service:"compute" () with
           | None -> ()
           | Some c ->
             (match Kernel.site_named k c.Policy.host with
             | None -> ()
             | Some dst ->
               Hashtbl.replace submit_times job (Net.now net);
               let bc = Briefcase.create () in
               Briefcase.set bc "JOB" job;
               Briefcase.set bc "WORK" (string_of_float p.work_per_job);
               Briefcase.set bc "REPLY-HOST" (Kernel.site_name k hub);
               Briefcase.set bc "REPLY-AGENT" "job-back";
               Kernel.send_briefcase k ~src:hub ~dst ~contact:c.Policy.provider bc)))
  done;
  Net.run ~until:36_000.0 net;
  let busy_per_cap =
    List.map (fun prov -> Provider.busy_time prov /. Provider.capacity prov) providers
  in
  let mean_bpc = Stats.mean busy_per_cap in
  {
    policy = Policy.name policy;
    jobs = List.length !responses;
    makespan = !last_completion;
    mean_response = Stats.mean !responses;
    p95_response = Stats.percentile 95.0 !responses;
    imbalance = (if mean_bpc = 0.0 then 0.0 else Stats.stddev busy_per_cap /. mean_bpc);
  }

let run ?(params = default_params) () = List.map (run_policy params) Policy.all

let print_table fmt =
  let rows = run () in
  Table.render fmt
    ~title:
      (Printf.sprintf
         "E5 broker scheduling: %d jobs over %d heterogeneous providers (stale load reports every %.2fs)"
         default_params.jobs
         (List.length default_params.providers)
         default_params.report_period)
    ~header:[ "policy"; "completed"; "makespan s"; "mean resp s"; "p95 resp s"; "imbalance" ]
    (List.map
       (fun r ->
         [
           Table.S r.policy;
           Table.I r.jobs;
           Table.F2 r.makespan;
           Table.F2 r.mean_response;
           Table.F2 r.p95_response;
           Table.F2 r.imbalance;
         ])
       rows)

module Kernel = Tacoma_core.Kernel
module Briefcase = Tacoma_core.Briefcase
module Folder = Tacoma_core.Folder
module Cabinet = Tacoma_core.Cabinet
module Net = Netsim.Net
module Topology = Netsim.Topology
module Fault = Netsim.Fault
module Rng = Tacoma_util.Rng
module Stats = Tacoma_util.Stats
module Escort = Guard.Escort

type a1_row = { period : string; mean_response : float; p95_response : float }

type a2_row = {
  ack_timeout : float;
  durable : bool;
  completed : int;
  trials : int;
  relaunches : float;
  mean_time : float;
}

type a3_row = { group_on : bool; idle_bytes_per_s : float; abort_latency : float }
type a4_row = { code_bytes : int; ratio : float }

(* --- A1: how stale may load reports be? ------------------------------------- *)

let run_a1 () =
  let base = E5_broker.default_params in
  List.map
    (fun (label, period) ->
      let params = { base with E5_broker.report_period = period } in
      let rows = E5_broker.run ~params () in
      let ll = List.find (fun r -> r.E5_broker.policy = "least-loaded") rows in
      {
        period = label;
        mean_response = ll.E5_broker.mean_response;
        p95_response = ll.E5_broker.p95_response;
      })
    [
      ("0.1s", 0.1);
      ("0.5s", 0.5);
      ("2s", 2.0);
      ("8s", 8.0);
      ("once", 1.0e9); (* a single report at startup, never refreshed *)
    ]

(* --- A2: guard patience and durability --------------------------------------- *)

let a2_trials = 25
let a2_lambda = 0.03

let run_a2 () =
  let sites = 6 in
  let horizon = 600.0 in
  let rng = Rng.create 31337L in
  let plans =
    List.init a2_trials (fun _ ->
        Fault.poisson_plan ~rng ~sites:(List.init sites Fun.id) ~rate:a2_lambda
          ~mean_downtime:12.0 ~until:horizon)
  in
  let run_config ~ack_timeout ~durable =
    let completed = ref 0 and relaunches = ref 0 and times = ref [] in
    List.iteri
      (fun trial plan ->
        let net = Net.create (Topology.full_mesh sites) in
        let k = Kernel.create net in
        Fault.apply net plan;
        let config =
          {
            Escort.ack_timeout;
            retry_period = 3.0;
            max_relaunch = 30;
            transport = Kernel.Tcp;
            durable;
          }
        in
        let finished_at = ref nan in
        let j =
          Escort.guarded_journey k ~config
            ~id:(Printf.sprintf "a2-%f-%b-%d" ack_timeout durable trial)
            ~itinerary:[ 0; 1; 2; 3; 4; 5 ]
            ~work:(fun ctx ~hop:_ _ -> Kernel.sleep ctx 1.0)
            ~on_complete:(fun _ -> finished_at := Net.now net)
            (Briefcase.create ())
        in
        Net.run ~until:horizon net;
        let s = Escort.stats j in
        if s.Escort.completed then begin
          incr completed;
          times := !finished_at :: !times
        end;
        relaunches := !relaunches + s.Escort.relaunches)
      plans;
    {
      ack_timeout;
      durable;
      completed = !completed;
      trials = a2_trials;
      relaunches = float_of_int !relaunches /. float_of_int a2_trials;
      mean_time = Stats.mean !times;
    }
  in
  List.concat_map
    (fun ack_timeout ->
      [ run_config ~ack_timeout ~durable:false; run_config ~ack_timeout ~durable:true ])
    [ 2.0; 4.0; 8.0; 16.0 ]

(* --- A3: the kernel-wide Horus group ------------------------------------------ *)

let run_a3 () =
  List.map
    (fun group_on ->
      (* idle background cost *)
      let net = Net.create (Topology.full_mesh 8) in
      let config =
        { Kernel.default_config with
          horus = { Kernel.default_config.horus with group = group_on } }
      in
      let _k = Kernel.create ~config net in
      Net.run ~until:60.0 net;
      let idle_bytes_per_s =
        float_of_int (Netsim.Netstats.bytes_sent (Net.stats net)) /. 60.0
      in
      (* abort latency: migrate (horus transport) into a permanently dead
         site; the "gave up" trace entry marks when retries stop *)
      let net2 = Net.create ~trace:true (Topology.full_mesh 8) in
      let k2 = Kernel.create ~config net2 in
      Fault.crash_at net2 ~site:1 ~at:0.0;
      ignore
        (Net.schedule net2 ~after:5.0 (fun () ->
             let bc = Briefcase.create () in
             Briefcase.set bc Briefcase.code_folder "meet noop";
             Briefcase.set bc Briefcase.host_folder (Kernel.site_name k2 1);
             Briefcase.set bc Briefcase.contact_folder "ag_script";
             Briefcase.set bc "TRANSPORT" "horus";
             Kernel.launch k2 ~site:0 ~contact:"rexec" bc));
      Net.run ~until:120.0 net2;
      let gave_up_at =
        List.fold_left
          (fun acc e ->
            let has_sub hay needle =
              let nh = String.length hay and nn = String.length needle in
              let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
              nn = 0 || go 0
            in
            if e.Netsim.Trace.kind = Netsim.Trace.Drop
               && has_sub e.Netsim.Trace.detail "gave up"
            then Some e.Netsim.Trace.time
            else acc)
          None
          (Netsim.Trace.entries (Net.trace net2))
      in
      {
        group_on;
        idle_bytes_per_s;
        abort_latency =
          (match gave_up_at with Some t -> t -. 5.0 | None -> nan);
      })
    [ false; true ]

(* --- A4: how much code can the agent afford to carry? -------------------------- *)

let a4_selectivity = 0.05

let collector_with_padding pad =
  Printf.sprintf {|
  # ballast: %s
  foreach r [cabinet list DATA] {
    if {[string match {HIT*} $r]} { folder put RESULTS $r }
  }
  folder clear CODE
  folder set HOST [folder peek HOME]
  folder set CONTACT e1-home
  meet rexec
|}
    (String.make pad 'x')

let run_a4_one ~code_pad =
  let p = E1_bandwidth.default_params in
  let topo = Topology.line (p.E1_bandwidth.hops + 1) in
  let net = Net.create topo in
  let k =
    Kernel.create ~config:{ Kernel.default_config with step_limit = Some 50_000_000 } net
  in
  let client = 0 and data_site = p.E1_bandwidth.hops in
  let matching =
    int_of_float (Float.round (a4_selectivity *. float_of_int p.E1_bandwidth.records))
  in
  let rows =
    List.init p.E1_bandwidth.records (fun i ->
        let tag = if i < matching then "HIT" else "MIS" in
        let body = Printf.sprintf "%s-%06d-" tag i in
        body ^ String.make (max 0 (p.E1_bandwidth.record_bytes - String.length body)) 'd')
  in
  Cabinet.replace (Kernel.cabinet k data_site) "DATA" rows;
  let finished = ref false in
  Kernel.register_native k ~site:client "e1-home" (fun _ _ -> finished := true);
  let bc = Briefcase.create () in
  Briefcase.set bc Briefcase.code_folder (collector_with_padding code_pad);
  Briefcase.set bc "HOME" (Kernel.site_name k client);
  Briefcase.set bc Briefcase.host_folder (Kernel.site_name k data_site);
  Briefcase.set bc Briefcase.contact_folder "ag_script";
  Kernel.launch k ~site:client ~contact:"rexec" bc;
  Net.run ~until:3600.0 net;
  assert !finished;
  Netsim.Netstats.byte_hops (Net.stats net)

let run_a4 () =
  let p = E1_bandwidth.default_params in
  let cs_bytes =
    let rows =
      E1_bandwidth.run
        ~params:{ p with E1_bandwidth.selectivities = [ a4_selectivity ] }
        ()
    in
    (List.hd rows).E1_bandwidth.cs_bytes
  in
  List.map
    (fun code_pad ->
      let agent_bytes = run_a4_one ~code_pad in
      { code_bytes = code_pad; ratio = float_of_int cs_bytes /. float_of_int agent_bytes })
    [ 0; 1024; 4096; 16384; 65536 ]

(* --- A5: service routing across a broker overlay ------------------------------- *)

type a5_row = { chain_length : int; broker_hops : int; lookup_latency : float }

let run_a5 ?(chain_lengths = [ 0; 1; 2; 4; 8 ]) () =
  List.map
    (fun chain ->
      (* chain+1 broker sites in a line, provider at the far end's site *)
      let nsites = chain + 2 in
      let net = Net.create (Topology.line nsites) in
      let k = Kernel.create net in
      let brokers =
        List.init (chain + 1) (fun i ->
            Broker.Matchmaker.install k ~site:i ~name:(Printf.sprintf "b%d" i) ())
      in
      let r = Broker.Routing.create k ~advert_period:0.25 () in
      List.iter (Broker.Routing.add_broker r) brokers;
      let rec connect = function
        | a :: (b :: _ as rest) ->
          Broker.Routing.connect r a b;
          connect rest
        | _ -> ()
      in
      connect brokers;
      let far = List.nth brokers chain in
      let prov =
        Broker.Provider.install k ~site:(nsites - 1) ~name:"far-prov" ~service:"compute"
          ~capacity:1.0 ()
      in
      Broker.Matchmaker.register_provider far prov;
      (* let the distance-vector tables converge *)
      Net.run ~until:(2.0 +. (0.5 *. float_of_int chain)) net;
      let asked_at = Net.now net in
      let result = ref None in
      Broker.Routing.routed_lookup r ~from:(List.hd brokers) ~service:"compute"
        ~on_reply:(fun x -> result := Some (x, Net.now net));
      Net.run ~until:(asked_at +. 30.0) net;
      match !result with
      | Some (Ok (_, hops), at) ->
        { chain_length = chain; broker_hops = hops; lookup_latency = at -. asked_at }
      | Some (Error e, _) -> failwith ("A5: lookup failed: " ^ e)
      | None -> failwith "A5: no reply")
    chain_lengths

(* --- rendering ------------------------------------------------------------------ *)

let print_table fmt =
  Table.render fmt
    ~title:"A1 ablation: broker (least-loaded) vs load-report staleness"
    ~header:[ "report period"; "mean resp s"; "p95 resp s" ]
    (List.map
       (fun r -> [ Table.S r.period; Table.F2 r.mean_response; Table.F2 r.p95_response ])
       (run_a1 ()));
  Table.render fmt
    ~title:
      (Printf.sprintf "A2 ablation: guard patience and durability (line-6, lambda=%.3f)"
         a2_lambda)
    ~header:[ "ack timeout"; "durable"; "completed"; "relaunches/trial"; "mean time s" ]
    (List.map
       (fun r ->
         [
           Table.F2 r.ack_timeout;
           Table.S (if r.durable then "yes" else "no");
           Table.S (Printf.sprintf "%d/%d" r.completed r.trials);
           Table.F2 r.relaunches;
           Table.F2 r.mean_time;
         ])
       (run_a2 ()));
  Table.render fmt
    ~title:"A3 ablation: kernel-wide Horus group — background cost vs fast failure detection"
    ~header:[ "group"; "idle bytes/s (8 sites)"; "retry-abort latency s" ]
    (List.map
       (fun r ->
         [
           Table.S (if r.group_on then "on" else "off");
           Table.F2 r.idle_bytes_per_s;
           Table.F2 r.abort_latency;
         ])
       (run_a3 ()));
  Table.render fmt
    ~title:
      (Printf.sprintf "A4 ablation: E1 advantage vs shipped code size (selectivity %.2f)"
         a4_selectivity)
    ~header:[ "extra code B"; "c-s/agent" ]
    (List.map (fun r -> [ Table.I r.code_bytes; Table.F2 r.ratio ]) (run_a4 ()));
  Table.render fmt
    ~title:"A5 broker routing overlay: resolving a service L brokers away"
    ~header:[ "overlay distance"; "query hops"; "lookup latency s" ]
    (List.map
       (fun r -> [ Table.I r.chain_length; Table.I r.broker_hops; Table.F r.lookup_latency ])
       (run_a5 ()))

type entry = {
  id : string;
  title : string;
  paper_claim : string;
  print : Format.formatter -> unit;
}

let all =
  [
    {
      id = "e1";
      title = "bandwidth: agent filtering vs client/server raw pull";
      paper_claim = "S1: agents conserve bandwidth by filtering at the data";
      print = E1_bandwidth.print_table;
    };
    {
      id = "e2";
      title = "flooding: naive cloning vs diffusion with visited folders";
      paper_claim = "S2: site-local folders bound the agent population";
      print = E2_flooding.print_table;
    };
    {
      id = "e3";
      title = "folders vs cabinets: mobility/access trade";
      paper_claim = "S2: folders move cheaply, cabinets access cheaply";
      print = E3_folders.print_table;
    };
    {
      id = "e4";
      title = "electronic cash: validation and audits";
      paper_claim = "S3: validation foils double spending; audits catch cheaters";
      print = E4_cash.print_table;
    };
    {
      id = "e5";
      title = "broker scheduling by load and capacity";
      paper_claim = "S4: brokers distribute requests by load and capacity";
      print = E5_broker.print_table;
    };
    {
      id = "e6";
      title = "rear guards under site crashes";
      paper_claim = "S5: rear guards let computations survive failures";
      print = E6_guards.print_table;
    };
    {
      id = "e7";
      title = "rexec transports: rsh vs tcp vs horus";
      paper_claim = "S6: the three rexec implementations trade cost and reliability";
      print = E7_transports.print_table;
    };
    {
      id = "e8";
      title = "applications: StormCast and agent mail";
      paper_claim = "S6: the metaphor carries real distributed applications";
      print = E8_apps.print_table;
    };
    {
      id = "e9";
      title = "content-addressed code cache vs cold code shipping";
      paper_claim =
        "S6: restart-style rexec re-ships code every hop; caching code at sites cuts the per-hop byte cost on revisiting itineraries";
      print = E9_codecache.print_table;
    };
    {
      id = "e10";
      title = "availability under chaos: partitions, loss and degradation";
      paper_claim =
        "S5/S7: rear guards keep computations available across the full failure surface, not just crashes";
      print = (fun fmt -> E10_chaos.print_table fmt);
    };
    {
      id = "abl";
      title = "ablations: report staleness, guard tuning, horus group, code size";
      paper_claim = "design-choice probes behind E1/E5/E6/E7";
      print = Ablations.print_table;
    };
  ]

let find id = List.find_opt (fun e -> e.id = String.lowercase_ascii id) all

(* One pool task per experiment.  Every experiment builds its own nets and
   kernels, so tables can regenerate concurrently; each task prints into a
   private [Buffer] and the buffers are emitted in registry order, so
   worker interleaving can never corrupt or reorder the tables.  [jobs = 1]
   prints straight into [fmt] — exactly the old serial path. *)
let run ?(jobs = 1) entries fmt =
  if jobs = 1 then List.iter (fun e -> e.print fmt) entries
  else begin
    let outputs =
      Tacoma_util.Pool.with_pool ~jobs (fun pool ->
          Tacoma_util.Pool.map pool
            (fun e ->
              let buf = Buffer.create 4096 in
              let bfmt = Format.formatter_of_buffer buf in
              e.print bfmt;
              Format.pp_print_flush bfmt ();
              Buffer.contents buf)
            entries)
    in
    List.iter (Format.pp_print_string fmt) outputs
  end

let run_all ?jobs fmt = run ?jobs all fmt

module H = Chaos_harness
module Chaos = Netsim.Chaos

type row = {
  partition_rate : float;
  seeds : int;
  guarded_frac : float;
  unguarded_frac : float;
  mean_relaunches : float;
  giveups : int;
  guarded_bytes : int;
  unguarded_bytes : int;
}

type params = { seeds : int; rates : float list }

let default_params = { seeds = 6; rates = [ 0.0; 0.005; 0.01; 0.025; 0.05 ] }

(* The whole rate × {guards on, off} × seed grid is one flat task list on
   one pool: a 5-rate, 6-seed sweep is 60 independent simulations, and
   flattening keeps all workers busy across rate boundaries.  Cells are
   regrouped in grid order afterwards, so the rows (and the printed table)
   are byte-identical to the serial nested loops. *)
let run ?(params = default_params) ?(jobs = 1) () =
  let seeds = List.init params.seeds (fun i -> 1000 + i) in
  let config ~rate ~guarded =
    let profile =
      { Chaos.default_profile with bisection_rate = rate; mean_partition = 15.0 }
    in
    { H.default_config with profile; guarded }
  in
  let cells =
    List.concat_map
      (fun rate ->
        List.concat_map
          (fun guarded -> List.map (fun seed -> (rate, guarded, seed)) seeds)
          [ true; false ])
      params.rates
  in
  let verdicts =
    Tacoma_util.Pool.with_pool ~jobs (fun pool ->
        Tacoma_util.Pool.map pool
          (fun (rate, guarded, seed) -> H.run_seed ~config:(config ~rate ~guarded) ~seed ())
          cells)
  in
  let by_cell = List.combine cells verdicts in
  let sweep ~rate ~guarded =
    List.filter_map
      (fun ((r, g, _), v) -> if r = rate && g = guarded then Some v else None)
      by_cell
  in
  List.map
    (fun rate ->
      let g = sweep ~rate ~guarded:true in
      let u = sweep ~rate ~guarded:false in
      let total vs f = List.fold_left (fun a v -> a + f v) 0 vs in
      let frac vs =
        float_of_int (total vs (fun v -> v.H.v_completed))
        /. float_of_int (total vs (fun v -> v.H.v_journeys))
      in
      let runs = List.length g in
      {
        partition_rate = rate;
        seeds = params.seeds;
        guarded_frac = frac g;
        unguarded_frac = frac u;
        mean_relaunches =
          float_of_int (total g (fun v -> v.H.v_relaunches)) /. float_of_int runs;
        giveups = total g (fun v -> v.H.v_giveups);
        guarded_bytes = total g (fun v -> v.H.v_bytes_sent) / runs;
        unguarded_bytes = total u (fun v -> v.H.v_bytes_sent) / runs;
      })
    params.rates

let print_table ?jobs fmt =
  let rows = run ?jobs () in
  Table.render fmt
    ~title:
      (Printf.sprintf
         "E10 availability under chaos: bisection-rate sweep, guards on/off (%d seeds/cell, identical chaos plans)"
         default_params.seeds)
    ~header:
      [
        "partition rate"; "guarded"; "unguarded"; "relaunches/run"; "giveups";
        "guarded bytes"; "unguarded bytes"; "byte overhead";
      ]
    (List.map
       (fun r ->
         [
           Table.F r.partition_rate;
           Table.Pct r.guarded_frac;
           Table.Pct r.unguarded_frac;
           Table.F2 r.mean_relaunches;
           Table.I r.giveups;
           Table.I r.guarded_bytes;
           Table.I r.unguarded_bytes;
           Table.Pct
             (float_of_int (r.guarded_bytes - r.unguarded_bytes)
             /. float_of_int (max 1 r.unguarded_bytes));
         ])
       rows)

module Kernel = Tacoma_core.Kernel
module Briefcase = Tacoma_core.Briefcase
module Folder = Tacoma_core.Folder
module Net = Netsim.Net
module Topology = Netsim.Topology
module Fault = Netsim.Fault

type cost_row = { transport : string; payload : int; journey_time : float; bytes : int }
type reliability_row = { r_transport : string; trials : int; delivered : int }

let transports = [ Kernel.Rsh; Kernel.Tcp; Kernel.Horus ]

(* hop agent: counts down HOPS-LEFT, moving one site right each time *)
let install_hopper k ~on_done =
  Kernel.register_native k "e7-hop" (fun ctx bc ->
      let t = ctx.Kernel.kernel in
      let left =
        Option.value ~default:0 (Option.bind (Briefcase.find_opt bc "HOPS-LEFT") int_of_string_opt)
      in
      if left = 0 then on_done (Kernel.now t)
      else begin
        Briefcase.set bc "HOPS-LEFT" (string_of_int (left - 1));
        let next = ctx.Kernel.site + 1 in
        Kernel.migrate t ~src:ctx.Kernel.site ~dst:next ~contact:"e7-hop"
          ~transport:
            (Option.get (Kernel.transport_of_string (Option.get (Briefcase.find_opt bc "TRANSPORT"))))
          bc
      end)

let run_cost_one ~hops ~payload transport =
  let net = Net.create (Topology.line (hops + 1)) in
  let k = Kernel.create net in
  let finished = ref None in
  install_hopper k ~on_done:(fun t -> finished := Some t);
  let bc = Briefcase.create () in
  Briefcase.set bc "HOPS-LEFT" (string_of_int hops);
  Briefcase.set bc "TRANSPORT" (Kernel.transport_name transport);
  Folder.replace (Briefcase.folder bc "PAYLOAD") [ String.make payload 'p' ];
  Kernel.launch k ~site:0 ~contact:"e7-hop" bc;
  Net.run ~until:600.0 net;
  match !finished with
  | Some t ->
    {
      transport = Kernel.transport_name transport;
      payload;
      journey_time = t;
      bytes = Netsim.Netstats.bytes_sent (Net.stats net);
    }
  | None -> failwith "E7: cost journey did not finish"

let run_cost ?(hops = 4) ?(payloads = [ 256; 4096; 65536 ]) () =
  List.concat_map
    (fun payload -> List.map (run_cost_one ~hops ~payload) transports)
    payloads

let run_reliability_one ~trial transport =
  let net = Net.create (Topology.line 2) in
  let config =
    { Kernel.default_config with
      horus = { Kernel.default_config.horus with max_attempts = 10 } }
  in
  let k = Kernel.create ~config net in
  let delivered = ref false in
  install_hopper k ~on_done:(fun _ -> delivered := true);
  (* the destination is down when the migration goes out, back soon after *)
  let downtime = 2.0 +. (0.5 *. float_of_int (trial mod 5)) in
  Fault.crash_for net ~site:1 ~at:0.1 ~downtime;
  ignore
    (Net.schedule net ~after:0.5 (fun () ->
         let bc = Briefcase.create () in
         Briefcase.set bc "HOPS-LEFT" "1";
         Briefcase.set bc "TRANSPORT" (Kernel.transport_name transport);
         Kernel.launch k ~site:0 ~contact:"e7-hop" bc));
  Net.run ~until:120.0 net;
  !delivered

let run_reliability ?(trials = 10) () =
  List.map
    (fun transport ->
      let delivered = ref 0 in
      for trial = 1 to trials do
        if run_reliability_one ~trial transport then incr delivered
      done;
      { r_transport = Kernel.transport_name transport; trials; delivered = !delivered })
    transports

type loss_row = {
  l_transport : string;
  loss_rate : float;
  sent : int;
  arrived : int;
  extra_bytes : float;
}

let run_loss ?(agents = 50) ?(loss_rates = [ 0.0; 0.1; 0.3 ]) () =
  let run transport loss_rate =
    let net = Net.create ~loss_rate (Topology.line 2) in
    let config =
      {
        Kernel.default_config with
        default_transport = transport;
        horus = { Kernel.default_config.horus with max_attempts = 15; rto = 0.2 };
      }
    in
    let k = Kernel.create ~config net in
    let arrived = ref 0 in
    Kernel.register_native k "e7c-counter" (fun _ _ -> incr arrived);
    for i = 0 to agents - 1 do
      ignore
        (Net.schedule net ~after:(0.05 *. float_of_int i) (fun () ->
             let bc = Briefcase.create () in
             Briefcase.set bc Briefcase.host_folder "line-1";
             Briefcase.set bc Briefcase.contact_folder "e7c-counter";
             Kernel.launch k ~site:0 ~contact:"rexec" bc))
    done;
    Net.run ~until:600.0 net;
    (!arrived, Netsim.Netstats.bytes_sent (Net.stats net))
  in
  let baseline_arrived, baseline_bytes = run Kernel.Tcp 0.0 in
  let per_agent_baseline = float_of_int baseline_bytes /. float_of_int baseline_arrived in
  List.concat_map
    (fun loss_rate ->
      List.map
        (fun transport ->
          let arrived, bytes = run transport loss_rate in
          {
            l_transport = Kernel.transport_name transport;
            loss_rate;
            sent = agents;
            arrived;
            extra_bytes =
              (if arrived = 0 then nan
               else (float_of_int bytes /. float_of_int arrived) /. per_agent_baseline);
          })
        transports)
    loss_rates

let print_table fmt =
  let cost = run_cost () in
  Table.render fmt ~title:"E7a rexec transports: 4-hop journey cost by payload size"
    ~header:[ "transport"; "payload B"; "journey s"; "bytes" ]
    (List.map
       (fun r ->
         [ Table.S r.transport; Table.I r.payload; Table.F r.journey_time; Table.I r.bytes ])
       cost);
  let rel = run_reliability () in
  Table.render fmt
    ~title:"E7b rexec transports: migration into a site that is down (restarts 2-4.5s later)"
    ~header:[ "transport"; "trials"; "delivered" ]
    (List.map
       (fun r -> [ Table.S r.r_transport; Table.I r.trials; Table.I r.delivered ])
       rel);
  let loss = run_loss () in
  Table.render fmt
    ~title:"E7c rexec transports under message loss (50 agents, 1 hop)"
    ~header:[ "transport"; "loss rate"; "arrived"; "bytes/agent vs tcp@0" ]
    (List.map
       (fun r ->
         [
           Table.S r.l_transport;
           Table.F2 r.loss_rate;
           Table.S (Printf.sprintf "%d/%d" r.arrived r.sent);
           Table.F2 r.extra_bytes;
         ])
       loss)

(* E9: the content-addressed code cache against cold code shipping.

   Restart-style migration re-ships the CODE folder on every rexec hop.
   With the cache on, only the first arrival at a site pays for code: later
   hops ship a digest and resolve it locally (or fetch once on a miss).
   Three itinerary shapes probe the three cache regimes: a ring of first
   visits (every hop is a miss plus a fetch — the worst case), a star where
   the hub warms after the first bounce, and a small ring lapped three
   times where laps two and three run entirely warm. *)

module Kernel = Tacoma_core.Kernel
module Briefcase = Tacoma_core.Briefcase
module Folder = Tacoma_core.Folder
module Net = Netsim.Net
module Topology = Netsim.Topology

type row = {
  shape : string;
  transport : string;
  cached : bool;
  hops : int;
  bytes_per_hop : float;
  s_per_hop : float;
  hits : int;
  misses : int;
  saved_bytes : int;
}

let transports = [ Kernel.Rsh; Kernel.Tcp; Kernel.Horus ]

(* ~4 KiB of agent text: big enough that code dominates the briefcase, the
   regime the optimisation targets *)
let code_payload = String.concat "\n" (List.init 64 (fun i -> Printf.sprintf "proc step_%02d {x} { return [expr {$x + %d}] }" i i))

type shape = { s_name : string; topology : Topology.t; itinerary : int list }

let shapes () =
  [
    (* 8 distinct sites: no revisit, the cache can only lose (every site
       misses and fetches once) *)
    { s_name = "ring-8"; topology = Topology.ring 8; itinerary = [ 1; 2; 3; 4; 5; 6; 7; 0 ] };
    (* hub-and-spoke sweep: the hub is revisited after every spoke *)
    { s_name = "star-4"; topology = Topology.star 5; itinerary = [ 1; 0; 2; 0; 3; 0; 4; 0 ] };
    (* 4-site ring lapped three times: 12 hops, 8 of them revisits *)
    {
      s_name = "revisit-4x3";
      topology = Topology.ring 4;
      itinerary = [ 1; 2; 3; 0; 1; 2; 3; 0; 1; 2; 3; 0 ];
    };
  ]

let run_one ~shape ~transport ~cached =
  let net = Net.create shape.topology in
  let config =
    {
      Kernel.default_config with
      default_transport = transport;
      (* fast horus retries so lossless runs are not dominated by rto *)
      horus = { Kernel.default_config.horus with max_attempts = 10; rto = 0.2 };
      cache = (if cached then Some Kernel.default_cache_config else None);
    }
  in
  let k = Kernel.create ~config net in
  let finished = ref None in
  Kernel.register_native k "e9-hop" (fun ctx bc ->
      let t = ctx.Kernel.kernel in
      match Folder.pop (Briefcase.folder bc "ITINERARY") with
      | None -> finished := Some (Kernel.now t)
      | Some next ->
        Kernel.migrate t ~src:ctx.Kernel.site ~dst:(int_of_string next) ~contact:"e9-hop"
          ~transport bc);
  let bc = Briefcase.create () in
  Folder.replace (Briefcase.folder bc "ITINERARY") (List.map string_of_int shape.itinerary);
  Briefcase.set bc Briefcase.code_folder code_payload;
  Kernel.launch k ~site:0 ~contact:"e9-hop" bc;
  Net.run ~until:600.0 net;
  let journey_time =
    match !finished with
    | Some t -> t
    | None -> failwith (Printf.sprintf "E9: %s journey did not finish" shape.s_name)
  in
  let hops = List.length shape.itinerary in
  let m = Net.metrics net in
  {
    shape = shape.s_name;
    transport = Kernel.transport_name transport;
    cached;
    hops;
    bytes_per_hop =
      float_of_int (Netsim.Netstats.bytes_sent (Net.stats net)) /. float_of_int hops;
    s_per_hop = journey_time /. float_of_int hops;
    hits = Obs.Metrics.counter_total m "codecache.hits";
    misses = Obs.Metrics.counter_total m "codecache.misses";
    saved_bytes = Kernel.cache_saved_bytes k;
  }

let run () =
  List.concat_map
    (fun shape ->
      List.concat_map
        (fun transport ->
          [ run_one ~shape ~transport ~cached:false; run_one ~shape ~transport ~cached:true ])
        transports)
    (shapes ())

let print_table fmt =
  let rows = run () in
  Table.render fmt
    ~title:
      "E9 code cache: bytes and latency per hop, cold shipping vs content-addressed cache"
    ~header:
      [ "shape"; "transport"; "cache"; "hops"; "bytes/hop"; "s/hop"; "hits"; "misses"; "saved B" ]
    (List.map
       (fun r ->
         [
           Table.S r.shape;
           Table.S r.transport;
           Table.S (if r.cached then "on" else "off");
           Table.I r.hops;
           Table.F2 r.bytes_per_hop;
           Table.F r.s_per_hop;
           Table.I r.hits;
           Table.I r.misses;
           Table.I r.saved_bytes;
         ])
       rows)

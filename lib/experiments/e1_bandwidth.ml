module Kernel = Tacoma_core.Kernel
module Briefcase = Tacoma_core.Briefcase
module Folder = Tacoma_core.Folder
module Cabinet = Tacoma_core.Cabinet
module Net = Netsim.Net
module Topology = Netsim.Topology

type row = {
  selectivity : float;
  agent_bytes : int;
  cs_bytes : int;
  ratio : float;
  agent_time : float;
  cs_time : float;
}

type params = {
  records : int;
  record_bytes : int;
  hops : int;
  selectivities : float list;
}

let default_params =
  {
    records = 1000;
    record_bytes = 100;
    hops = 3;
    selectivities = [ 0.001; 0.01; 0.05; 0.1; 0.3; 0.5; 0.8; 1.0 ];
  }

(* Rows are "HIT..." or "MIS...", padded to record_bytes; the first
   [selectivity * records] rows match, which makes byte counts exact. *)
let dataset p ~selectivity =
  let matching = int_of_float (Float.round (selectivity *. float_of_int p.records)) in
  List.init p.records (fun i ->
      let tag = if i < matching then "HIT" else "MIS" in
      let body = Printf.sprintf "%s-%06d-" tag i in
      body ^ String.make (max 0 (p.record_bytes - String.length body)) 'd')

(* The collector really is a TScript agent: its source is what ships in the
   CODE folder, so code-transfer overhead is charged honestly. *)
let collector_script = {|
  foreach r [cabinet list DATA] {
    if {[string match {HIT*} $r]} { folder put RESULTS $r }
  }
  folder clear CODE
  folder set HOST [folder peek HOME]
  folder set CONTACT e1-home
  meet rexec
|}

let run_agent p ~selectivity =
  let topo = Topology.line (p.hops + 1) in
  let net = Net.create topo in
  let k =
    Kernel.create
      ~config:{ Kernel.default_config with step_limit = Some 50_000_000 }
      net
  in
  let client = 0 and data_site = p.hops in
  Cabinet.replace (Kernel.cabinet k data_site) "DATA" (dataset p ~selectivity);
  let finished = ref None in
  Kernel.register_native k ~site:client "e1-home" (fun ctx bc ->
      finished :=
        Some (Kernel.now ctx.Kernel.kernel, Folder.length (Briefcase.folder bc "RESULTS")));
  let bc = Briefcase.create () in
  Briefcase.set bc Briefcase.code_folder collector_script;
  Briefcase.set bc "HOME" (Kernel.site_name k client);
  Briefcase.set bc Briefcase.host_folder (Kernel.site_name k data_site);
  Briefcase.set bc Briefcase.contact_folder "ag_script";
  Kernel.launch k ~site:client ~contact:"rexec" bc;
  Net.run ~until:3600.0 net;
  match !finished with
  | Some (time, _) -> (Netsim.Netstats.byte_hops (Net.stats net), time)
  | None -> failwith "E1: agent run did not finish"

let run_client_server p ~selectivity =
  let topo = Topology.line (p.hops + 1) in
  let net = Net.create topo in
  let client = 0 and data_site = p.hops in
  let rows = dataset p ~selectivity in
  ignore (Baseline.Rpc.serve net ~site:data_site ~service:"scan" (fun ~query:_ -> rows));
  let finished = ref None in
  let rpc = Baseline.Rpc.client net ~src:client in
  Baseline.Rpc.call rpc ~dst:data_site ~service:"scan" ~query:"HIT*"
    ~on_reply:(fun received ->
      (* the client filters locally, after the raw transfer *)
      let matches = List.filter (fun r -> String.length r >= 3 && String.sub r 0 3 = "HIT") received in
      ignore matches;
      finished := Some (Net.now net));
  Net.run ~until:3600.0 net;
  match !finished with
  | Some time -> (Netsim.Netstats.byte_hops (Net.stats net), time)
  | None -> failwith "E1: client/server run did not finish"

(* the Tromsø–Cornell variant: same workload, WAN-pair topology *)
let wan_topo () = Topology.wan_pair ~cluster:3 ()
let wan_client = 1 (* tromso-1 *)
let wan_data = 4 (* cornell-1: the route crosses both LANs and the WAN *)

let run_wan_agent p ~selectivity =
  let net = Net.create (wan_topo ()) in
  let k =
    Kernel.create ~config:{ Kernel.default_config with step_limit = Some 50_000_000 } net
  in
  Cabinet.replace (Kernel.cabinet k wan_data) "DATA" (dataset p ~selectivity);
  let finished = ref None in
  Kernel.register_native k ~site:wan_client "e1-home" (fun ctx _ ->
      finished := Some (Kernel.now ctx.Kernel.kernel));
  let bc = Briefcase.create () in
  Briefcase.set bc Briefcase.code_folder collector_script;
  Briefcase.set bc "HOME" (Kernel.site_name k wan_client);
  Briefcase.set bc Briefcase.host_folder (Kernel.site_name k wan_data);
  Briefcase.set bc Briefcase.contact_folder "ag_script";
  Kernel.launch k ~site:wan_client ~contact:"rexec" bc;
  Net.run ~until:3600.0 net;
  match !finished with
  | Some time -> (Netsim.Netstats.byte_hops (Net.stats net), time)
  | None -> failwith "E1-wan: agent run did not finish"

let run_wan_cs p ~selectivity =
  let net = Net.create (wan_topo ()) in
  let rows = dataset p ~selectivity in
  ignore (Baseline.Rpc.serve net ~site:wan_data ~service:"scan" (fun ~query:_ -> rows));
  let finished = ref None in
  let rpc = Baseline.Rpc.client net ~src:wan_client in
  Baseline.Rpc.call rpc ~dst:wan_data ~service:"scan" ~query:"HIT*"
    ~on_reply:(fun _ -> finished := Some (Net.now net));
  Net.run ~until:3600.0 net;
  match !finished with
  | Some time -> (Netsim.Netstats.byte_hops (Net.stats net), time)
  | None -> failwith "E1-wan: client/server run did not finish"

let run_wan ?(selectivities = [ 0.01; 0.1; 0.5 ]) () =
  let p = { default_params with selectivities } in
  List.map
    (fun selectivity ->
      let agent_bytes, agent_time = run_wan_agent p ~selectivity in
      let cs_bytes, cs_time = run_wan_cs p ~selectivity in
      {
        selectivity;
        agent_bytes;
        cs_bytes;
        ratio = float_of_int cs_bytes /. float_of_int (max 1 agent_bytes);
        agent_time;
        cs_time;
      })
    selectivities

let run ?(params = default_params) () =
  List.map
    (fun selectivity ->
      let agent_bytes, agent_time = run_agent params ~selectivity in
      let cs_bytes, cs_time = run_client_server params ~selectivity in
      {
        selectivity;
        agent_bytes;
        cs_bytes;
        ratio = float_of_int cs_bytes /. float_of_int (max 1 agent_bytes);
        agent_time;
        cs_time;
      })
    params.selectivities

let print_table fmt =
  let rows = run () in
  Table.render fmt
    ~title:
      (Printf.sprintf "E1 bandwidth: agent filter-at-data vs client/server raw pull (%d x %dB, %d hops)"
         default_params.records default_params.record_bytes default_params.hops)
    ~header:
      [ "selectivity"; "agent byte-hops"; "c/s byte-hops"; "c-s/agent"; "agent s"; "c/s s" ]
    (List.map
       (fun r ->
         [
           Table.F r.selectivity;
           Table.I r.agent_bytes;
           Table.I r.cs_bytes;
           Table.F2 r.ratio;
           Table.F2 r.agent_time;
           Table.F2 r.cs_time;
         ])
       rows);
  let wan = run_wan () in
  Table.render fmt
    ~title:
      "E1-wan: the same query across the paper's Tromso-Cornell shape (64 KB/s trans-Atlantic link)"
    ~header:
      [ "selectivity"; "agent byte-hops"; "c/s byte-hops"; "c-s/agent"; "agent s"; "c/s s" ]
    (List.map
       (fun r ->
         [
           Table.F r.selectivity;
           Table.I r.agent_bytes;
           Table.I r.cs_bytes;
           Table.F2 r.ratio;
           Table.F2 r.agent_time;
           Table.F2 r.cs_time;
         ])
       wan)

(** E10 — availability under chaos (paper §5/§7: "available systems" on
    unreliable wide-area networks).

    Claim: rear guards keep mobile computations available not just under
    site crashes (E6) but under the full failure surface — partitions,
    loss bursts, degradations — at a bounded byte overhead.

    Workload: the chaos harness's full mix (guarded journeys, broker
    bookings, cash purchases) under {!Netsim.Chaos.mixed} plans whose
    bisection (clean partition) rate sweeps upward, guards on vs off over
    identical chaos plans.

    Expected shape: guarded completion stays near 100% while unguarded
    completion degrades as the partition rate rises; relaunches and the
    guard byte overhead grow with the rate — availability is bought with
    retransmitted briefcases. *)

type row = {
  partition_rate : float;  (** bisection events per second, net-wide *)
  seeds : int;
  guarded_frac : float;    (** completed fraction of guarded journeys *)
  unguarded_frac : float;
  mean_relaunches : float; (** per guarded run *)
  giveups : int;           (** guards that exhausted their budget, total *)
  guarded_bytes : int;     (** mean wire bytes per guarded run *)
  unguarded_bytes : int;
}

type params = { seeds : int; rates : float list }

val default_params : params
val run : ?params:params -> ?jobs:int -> unit -> row list
(** [jobs] (default 1, [0] = all cores) fans the whole
    rate × guards-on/off × seed grid out over one {!Tacoma_util.Pool} —
    every cell is an independent simulation — and regroups the verdicts in
    grid order, so the rows are identical for every [jobs] value. *)

val print_table : ?jobs:int -> Format.formatter -> unit

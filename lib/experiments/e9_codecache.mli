(** E9: content-addressed code cache vs cold code shipping, per transport
    and itinerary shape (ring of first visits, hub-and-spoke, revisiting
    laps). *)

type row = {
  shape : string;
  transport : string;
  cached : bool;
  hops : int;
  bytes_per_hop : float;
  s_per_hop : float;
  hits : int;
  misses : int;
  saved_bytes : int;
}

val run : unit -> row list
val print_table : Format.formatter -> unit

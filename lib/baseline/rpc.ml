module Net = Netsim.Net

type Netsim.Message.payload +=
  | Request of { rid : int; service : string; query : string; reply_to : Netsim.Site.id }
  | Response of { rid : int; data : string list }

let request_overhead = 96
let response_overhead = 96

type stats = { mutable requests : int; mutable response_bytes : int }

(* All call state lives in the client handle — request ids and the pending
   table are per-client, never process-wide, so concurrent simulations in a
   pool sweep can't collide on rids or dispatch each other's callbacks. *)
type client = {
  net : Net.t;
  src : Netsim.Site.id;
  mutable next_rid : int;
  pending : (int, string list -> unit) Hashtbl.t;
}

let data_bytes rows = List.fold_left (fun acc r -> acc + String.length r) 0 rows

let serve net ~site ~service handler =
  let stats = { requests = 0; response_bytes = 0 } in
  Net.set_handler net site ~key:("rpc:" ^ service) (fun msg ->
      match msg.Netsim.Message.payload with
      | Request { rid; service = s; query; reply_to } when s = service ->
        stats.requests <- stats.requests + 1;
        let rows = handler ~query in
        let size = response_overhead + data_bytes rows in
        stats.response_bytes <- stats.response_bytes + size;
        Net.send net ~src:site ~dst:reply_to ~size (Response { rid; data = rows })
      | Request _ | Response _ | _ -> ());
  stats

let client net ~src =
  let c = { net; src; next_rid = 0; pending = Hashtbl.create 16 } in
  Net.set_handler net src ~key:"rpc-client" (fun msg ->
      match msg.Netsim.Message.payload with
      | Response { rid; data } -> (
        match Hashtbl.find_opt c.pending rid with
        | Some k ->
          Hashtbl.remove c.pending rid;
          k data
        | None -> ())
      | Request _ | _ -> ());
  c

let call c ~dst ~service ~query ~on_reply =
  c.next_rid <- c.next_rid + 1;
  let rid = c.next_rid in
  Hashtbl.replace c.pending rid on_reply;
  Net.send c.net ~src:c.src ~dst
    ~size:(request_overhead + String.length query)
    (Request { rid; service; query; reply_to = c.src })

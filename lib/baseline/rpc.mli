(** The traditional architecture the paper argues against (§1): "a client at
    one site that communicates with servers at other sites", where "raw data
    may have to be sent from one site to another" because the client gets
    its cycles at a different site than its data.

    A server exposes a named service function; a client calls it and gets
    the full result rows on the wire.  Request/response sizes are charged to
    the network exactly like agent traffic, so the two architectures are
    directly comparable in E1/E8. *)

type stats = { mutable requests : int; mutable response_bytes : int }

val serve :
  Netsim.Net.t ->
  site:Netsim.Site.id ->
  service:string ->
  (query:string -> string list) ->
  stats
(** Install a service handler.  Several services can share a site. *)

type client
(** A calling endpoint at one site.  Request ids and the pending-reply
    table live in the handle — deliberately not module-global, so
    simulations running concurrently on a {!Tacoma_util.Pool} never share
    call state.  One client per (net, site): creating a second replaces
    the first's reply handler. *)

val client : Netsim.Net.t -> src:Netsim.Site.id -> client

val call :
  client ->
  dst:Netsim.Site.id ->
  service:string ->
  query:string ->
  on_reply:(string list -> unit) ->
  unit
(** Fire a request; [on_reply] runs when the response lands.  Lost requests
    or responses (site down, partition) simply never reply — clients needing
    timeouts arm their own. *)

val request_overhead : int
val response_overhead : int

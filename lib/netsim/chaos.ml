module Rng = Tacoma_util.Rng

type link = Site.id * Site.id

type event =
  | Crash of { site : Site.id; at : float; downtime : float }
  | Cut of { links : link list; at : float; duration : float; label : string }
  | Loss_burst of { link : link option; at : float; duration : float; rate : float }
  | Degrade of {
      link : link;
      at : float;
      duration : float;
      latency : float;
      bandwidth : float;
    }

type plan = event list

let at_of = function
  | Crash { at; _ } | Cut { at; _ } | Loss_burst { at; _ } | Degrade { at; _ } -> at

let kind_of = function
  | Crash _ -> "crash"
  | Cut _ -> "cut"
  | Loss_burst _ -> "loss"
  | Degrade _ -> "degrade"

let sort plan = List.stable_sort (fun a b -> compare (at_of a) (at_of b)) plan
let counts plan =
  List.fold_left
    (fun acc e ->
      let k = kind_of e in
      match List.assoc_opt k acc with
      | Some n -> (k, n + 1) :: List.remove_assoc k acc
      | None -> (k, 1) :: acc)
    [] plan
  |> List.sort compare

(* Crash windows per site, for attributing losses to double-failure
   intervals: a guarded computation can only vanish silently when its site
   and its guard's site are down at overlapping times. *)
let crash_windows plan =
  List.filter_map
    (function
      | Crash { site; at; downtime } -> Some (site, (at, at +. downtime))
      | Cut _ | Loss_burst _ | Degrade _ -> None)
    plan

let windows_overlap (a1, a2) (b1, b2) = a1 < b2 && b1 < a2

let double_failure_window plan sites =
  let windows = crash_windows plan in
  let of_site s = List.filter_map (fun (s', w) -> if s' = s then Some w else None) windows in
  let rec adjacent = function
    | a :: (b :: _ as rest) ->
      List.exists (fun wa -> List.exists (windows_overlap wa) (of_site b)) (of_site a)
      || adjacent rest
    | [ _ ] | [] -> false
  in
  adjacent sites

(* ---- generators ------------------------------------------------------------ *)

let arrivals rng ~rate ~until =
  if rate <= 0.0 then []
  else begin
    let rec go acc time =
      let time = time +. Rng.exponential rng ~mean:(1.0 /. rate) in
      if time >= until then List.rev acc else go (time :: acc) time
    in
    go [] 0.0
  end

let links_of topo =
  let acc = ref [] in
  Topology.iter_links topo (fun a b _ -> acc := (a, b) :: !acc);
  Array.of_list (List.rev !acc)

let of_fault_plan fault_plan =
  List.map
    (fun { Fault.site; at; downtime } -> Crash { site; at; downtime })
    fault_plan

let crashes ~rng ~sites ~rate ~mean_downtime ~until =
  of_fault_plan (Fault.poisson_plan ~rng ~sites ~rate ~mean_downtime ~until)

let flapping ~rng ~topo ~rate ~mean_downtime ~until =
  let links = links_of topo in
  if Array.length links = 0 then []
  else
    List.map
      (fun at ->
        let link = Rng.pick rng links in
        let duration = Rng.exponential rng ~mean:mean_downtime in
        Cut { links = [ link ]; at; duration; label = "flap" })
      (arrivals rng ~rate ~until)

(* A clean bisection: every site lands on a random side of a cut and all
   crossing links go down together.  Sides are redrawn until both are
   non-empty (n >= 2 guarantees termination). *)
let random_cut rng topo =
  let n = Topology.site_count topo in
  let side = Array.make n false in
  let ok () =
    let t = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 side in
    t > 0 && t < n
  in
  let rec draw () =
    for i = 0 to n - 1 do
      side.(i) <- Rng.bool rng
    done;
    if not (ok ()) then draw ()
  in
  if n < 2 then []
  else begin
    draw ();
    let crossing = ref [] in
    Topology.iter_links topo (fun a b _ ->
        if side.(a) <> side.(b) then crossing := (a, b) :: !crossing);
    List.rev !crossing
  end

let bisections ~rng ~topo ~rate ~mean_downtime ~until =
  List.filter_map
    (fun at ->
      let links = random_cut rng topo in
      let duration = Rng.exponential rng ~mean:mean_downtime in
      if links = [] then None else Some (Cut { links; at; duration; label = "bisection" }))
    (arrivals rng ~rate ~until)

let loss_bursts ~rng ~topo ~rate ~mean_duration ~loss ~until =
  let links = links_of topo in
  List.map
    (fun at ->
      let link =
        if Array.length links = 0 || Rng.bool rng then None else Some (Rng.pick rng links)
      in
      let duration = Rng.exponential rng ~mean:mean_duration in
      Loss_burst { link; at; duration; rate = loss })
    (arrivals rng ~rate ~until)

let degradations ~rng ~topo ~rate ~mean_duration ~latency_factor ~bandwidth_factor ~until =
  let links = links_of topo in
  if Array.length links = 0 then []
  else
    List.map
      (fun at ->
        let link = Rng.pick rng links in
        let duration = Rng.exponential rng ~mean:mean_duration in
        Degrade
          { link; at; duration; latency = latency_factor; bandwidth = bandwidth_factor })
      (arrivals rng ~rate ~until)

type profile = {
  crash_rate : float;
  mean_downtime : float;
  bisection_rate : float;
  mean_partition : float;
  flap_rate : float;
  mean_flap : float;
  loss_burst_rate : float;
  mean_loss_burst : float;
  burst_loss : float;
  degrade_rate : float;
  mean_degrade : float;
  latency_factor : float;
  bandwidth_factor : float;
}

let default_profile =
  {
    crash_rate = 1.0 /. 300.0;
    mean_downtime = 10.0;
    bisection_rate = 1.0 /. 200.0;
    mean_partition = 8.0;
    flap_rate = 1.0 /. 120.0;
    mean_flap = 4.0;
    loss_burst_rate = 1.0 /. 150.0;
    mean_loss_burst = 6.0;
    burst_loss = 0.4;
    degrade_rate = 1.0 /. 150.0;
    mean_degrade = 8.0;
    latency_factor = 8.0;
    bandwidth_factor = 0.2;
  }

let mixed ~rng ~topo ?(profile = default_profile) ~until () =
  (* one split per fault class, in a fixed order, so tuning one rate never
     perturbs the schedules of the others *)
  let crash_rng = Rng.split rng in
  let bisect_rng = Rng.split rng in
  let flap_rng = Rng.split rng in
  let loss_rng = Rng.split rng in
  let degrade_rng = Rng.split rng in
  let p = profile in
  sort
    (crashes ~rng:crash_rng ~sites:(Topology.sites topo) ~rate:p.crash_rate
       ~mean_downtime:p.mean_downtime ~until
    @ bisections ~rng:bisect_rng ~topo ~rate:p.bisection_rate
        ~mean_downtime:p.mean_partition ~until
    @ flapping ~rng:flap_rng ~topo ~rate:p.flap_rate ~mean_downtime:p.mean_flap ~until
    @ loss_bursts ~rng:loss_rng ~topo ~rate:p.loss_burst_rate
        ~mean_duration:p.mean_loss_burst ~loss:p.burst_loss ~until
    @ degradations ~rng:degrade_rng ~topo ~rate:p.degrade_rate
        ~mean_duration:p.mean_degrade ~latency_factor:p.latency_factor
        ~bandwidth_factor:p.bandwidth_factor ~until)

(* ---- validation ------------------------------------------------------------ *)

let validate topo plan =
  let n = Topology.site_count topo in
  let check_link (a, b) =
    match Topology.link topo a b with
    | Some _ -> Ok ()
    | None -> Error (Printf.sprintf "no such link %d-%d" a b)
  in
  let check_event e =
    let time_ok at duration =
      if at < 0.0 then Error "negative event time"
      else if duration < 0.0 then Error "negative duration"
      else Ok ()
    in
    match e with
    | Crash { site; at; downtime } ->
      if site < 0 || site >= n then Error (Printf.sprintf "no such site %d" site)
      else time_ok at downtime
    | Cut { links; at; duration; _ } ->
      if links = [] then Error "empty cut"
      else
        List.fold_left
          (fun acc l -> Result.bind acc (fun () -> check_link l))
          (time_ok at duration) links
    | Loss_burst { link; at; duration; rate } ->
      if rate < 0.0 || rate >= 1.0 then Error "loss rate must be in [0,1)"
      else
        Result.bind (time_ok at duration) (fun () ->
            match link with None -> Ok () | Some l -> check_link l)
    | Degrade { link; at; duration; latency; bandwidth } ->
      if latency <= 0.0 || bandwidth <= 0.0 then Error "factors must be positive"
      else Result.bind (time_ok at duration) (fun () -> check_link link)
  in
  List.fold_left (fun acc e -> Result.bind acc (fun () -> check_event e)) (Ok ()) plan

(* ---- application ----------------------------------------------------------- *)

(* Windows of different events may overlap on the same link.  Each effect is
   therefore tracked as a stack of active contributions per link: a cut is
   healed only when its last contributing window closes, overlapping loss
   windows combine to the worst (highest) rate, overlapping degradations to
   the slowest factors. *)
type applier = {
  net : Net.t;
  cut_refs : (int * int, int) Hashtbl.t;
  link_losses : (int * int, float list) Hashtbl.t;
  mutable global_losses : float list;
  degrades : (int * int, (float * float) list) Hashtbl.t;
}

let norm (a, b) = if a < b then (a, b) else (b, a)

let emit ap kind ~attrs =
  let m = Net.metrics ap.net in
  Obs.Metrics.incr m ~labels:[ ("kind", kind) ] "chaos.injected";
  let tr = Net.recorder ap.net in
  if Obs.Tracer.enabled tr then
    Obs.Tracer.instant tr ~time:(Net.now ap.net) ~cat:"chaos" ~attrs ("chaos." ^ kind)

let emit_heal ap kind =
  Obs.Metrics.incr (Net.metrics ap.net) ~labels:[ ("kind", kind) ] "chaos.healed";
  let tr = Net.recorder ap.net in
  if Obs.Tracer.enabled tr then
    Obs.Tracer.instant tr ~time:(Net.now ap.net) ~cat:"chaos" ("chaos.heal." ^ kind)

let cut_link ap l =
  let k = norm l in
  let refs = Option.value ~default:0 (Hashtbl.find_opt ap.cut_refs k) in
  Hashtbl.replace ap.cut_refs k (refs + 1);
  if refs = 0 then Net.set_link_enabled ap.net (fst k) (snd k) false

let heal_link ap l =
  let k = norm l in
  match Hashtbl.find_opt ap.cut_refs k with
  | None -> ()
  | Some refs ->
    if refs <= 1 then begin
      Hashtbl.remove ap.cut_refs k;
      Net.set_link_enabled ap.net (fst k) (snd k) true
    end
    else Hashtbl.replace ap.cut_refs k (refs - 1)

let remove_once x xs =
  let rec go = function
    | [] -> []
    | y :: rest -> if y = x then rest else y :: go rest
  in
  go xs

let apply_link_loss ap l =
  let k = norm l in
  match Hashtbl.find_opt ap.link_losses k with
  | None | Some [] -> Net.set_link_loss ap.net (fst k) (snd k) None
  | Some rates ->
    Net.set_link_loss ap.net (fst k) (snd k) (Some (List.fold_left Float.max 0.0 rates))

let apply_global_loss ap =
  match ap.global_losses with
  | [] -> Net.set_loss_override ap.net None
  | rates -> Net.set_loss_override ap.net (Some (List.fold_left Float.max 0.0 rates))

let apply_degrade ap l =
  let k = norm l in
  match Hashtbl.find_opt ap.degrades k with
  | None | Some [] -> Net.set_link_degraded ap.net (fst k) (snd k) None
  | Some factors ->
    let worst =
      List.fold_left
        (fun (lat, bw) (lat', bw') -> (Float.max lat lat', Float.min bw bw'))
        (1.0, 1.0) factors
    in
    Net.set_link_degraded ap.net (fst k) (snd k) (Some worst)

let link_attr (a, b) = Obs.Event.S (Printf.sprintf "%d-%d" a b)

let fire ap = function
  | Crash { site; downtime; _ } ->
    if Net.site_up ap.net site then begin
      emit ap "crash"
        ~attrs:[ ("site", Obs.Event.I site); ("downtime", Obs.Event.F downtime) ];
      Net.crash ap.net site;
      ignore
        (Net.schedule ap.net ~after:downtime (fun () ->
             emit_heal ap "crash";
             Net.restart ap.net site))
    end
    else
      Obs.Metrics.incr (Net.metrics ap.net) ~labels:[ ("kind", "crash") ] "chaos.skipped"
  | Cut { links; duration; label; _ } ->
    emit ap "cut"
      ~attrs:[ ("label", Obs.Event.S label); ("links", Obs.Event.I (List.length links)) ];
    List.iter (cut_link ap) links;
    ignore
      (Net.schedule ap.net ~after:duration (fun () ->
           emit_heal ap "cut";
           List.iter (heal_link ap) links))
  | Loss_burst { link; duration; rate; _ } -> (
    match link with
    | None ->
      emit ap "loss" ~attrs:[ ("rate", Obs.Event.F rate) ];
      ap.global_losses <- rate :: ap.global_losses;
      apply_global_loss ap;
      ignore
        (Net.schedule ap.net ~after:duration (fun () ->
             emit_heal ap "loss";
             ap.global_losses <- remove_once rate ap.global_losses;
             apply_global_loss ap))
    | Some l ->
      let k = norm l in
      emit ap "loss" ~attrs:[ ("rate", Obs.Event.F rate); ("link", link_attr k) ];
      Hashtbl.replace ap.link_losses k
        (rate :: Option.value ~default:[] (Hashtbl.find_opt ap.link_losses k));
      apply_link_loss ap k;
      ignore
        (Net.schedule ap.net ~after:duration (fun () ->
             emit_heal ap "loss";
             Hashtbl.replace ap.link_losses k
               (remove_once rate (Option.value ~default:[] (Hashtbl.find_opt ap.link_losses k)));
             apply_link_loss ap k)))
  | Degrade { link; duration; latency; bandwidth; _ } ->
    let k = norm link in
    emit ap "degrade"
      ~attrs:
        [
          ("link", link_attr k);
          ("latency", Obs.Event.F latency);
          ("bandwidth", Obs.Event.F bandwidth);
        ];
    Hashtbl.replace ap.degrades k
      ((latency, bandwidth) :: Option.value ~default:[] (Hashtbl.find_opt ap.degrades k));
    apply_degrade ap k;
    ignore
      (Net.schedule ap.net ~after:duration (fun () ->
           emit_heal ap "degrade";
           Hashtbl.replace ap.degrades k
             (remove_once (latency, bandwidth)
                (Option.value ~default:[] (Hashtbl.find_opt ap.degrades k)));
           apply_degrade ap k))

let apply net plan =
  (match validate (Net.topology net) plan with
  | Ok () -> ()
  | Error e -> invalid_arg ("Chaos.apply: " ^ e));
  let ap =
    {
      net;
      cut_refs = Hashtbl.create 16;
      link_losses = Hashtbl.create 16;
      global_losses = [];
      degrades = Hashtbl.create 16;
    }
  in
  List.iter
    (fun ev ->
      ignore (Engine.schedule_at (Net.engine net) ~at:(at_of ev) (fun () -> fire ap ev)))
    plan

(* ---- serialization --------------------------------------------------------- *)

let link_str (a, b) = Printf.sprintf "%d-%d" a b

let link_of_str s =
  match String.split_on_char '-' s with
  | [ a; b ] -> (
    match (int_of_string_opt a, int_of_string_opt b) with
    | Some a, Some b -> Ok (a, b)
    | _ -> Error (Printf.sprintf "bad link %S" s))
  | _ -> Error (Printf.sprintf "bad link %S" s)

let event_to_string = function
  | Crash { site; at; downtime } ->
    Printf.sprintf "crash site=%d at=%.17g down=%.17g" site at downtime
  | Cut { links; at; duration; label } ->
    Printf.sprintf "cut at=%.17g dur=%.17g label=%s links=%s" at duration label
      (String.concat "," (List.map link_str links))
  | Loss_burst { link; at; duration; rate } ->
    Printf.sprintf "loss at=%.17g dur=%.17g rate=%.17g link=%s" at duration rate
      (match link with None -> "*" | Some l -> link_str l)
  | Degrade { link; at; duration; latency; bandwidth } ->
    Printf.sprintf "degrade at=%.17g dur=%.17g lat=%.17g bw=%.17g link=%s" at duration
      latency bandwidth (link_str link)

let to_string plan =
  String.concat "" (List.map (fun e -> event_to_string e ^ "\n") plan)

let parse_fields line =
  List.filter_map
    (fun tok ->
      if tok = "" then None
      else
        match String.index_opt tok '=' with
        | None -> Some (tok, "")
        | Some i ->
          Some (String.sub tok 0 i, String.sub tok (i + 1) (String.length tok - i - 1)))
    (String.split_on_char ' ' line)

let field fields name =
  match List.assoc_opt name fields with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing field %s" name)

let float_field fields name =
  Result.bind (field fields name) (fun v ->
      match float_of_string_opt v with
      | Some f -> Ok f
      | None -> Error (Printf.sprintf "bad float %s=%S" name v))

let int_field fields name =
  Result.bind (field fields name) (fun v ->
      match int_of_string_opt v with
      | Some i -> Ok i
      | None -> Error (Printf.sprintf "bad int %s=%S" name v))

let ( let* ) = Result.bind

let event_of_string line =
  let fields = parse_fields line in
  match fields with
  | ("crash", _) :: rest ->
    let* site = int_field rest "site" in
    let* at = float_field rest "at" in
    let* downtime = float_field rest "down" in
    Ok (Crash { site; at; downtime })
  | ("cut", _) :: rest ->
    let* at = float_field rest "at" in
    let* duration = float_field rest "dur" in
    let* label = field rest "label" in
    let* links_s = field rest "links" in
    let* links =
      List.fold_left
        (fun acc s ->
          let* acc = acc in
          let* l = link_of_str s in
          Ok (l :: acc))
        (Ok [])
        (String.split_on_char ',' links_s)
    in
    Ok (Cut { links = List.rev links; at; duration; label })
  | ("loss", _) :: rest ->
    let* at = float_field rest "at" in
    let* duration = float_field rest "dur" in
    let* rate = float_field rest "rate" in
    let* link_s = field rest "link" in
    let* link =
      if link_s = "*" then Ok None
      else
        let* l = link_of_str link_s in
        Ok (Some l)
    in
    Ok (Loss_burst { link; at; duration; rate })
  | ("degrade", _) :: rest ->
    let* at = float_field rest "at" in
    let* duration = float_field rest "dur" in
    let* latency = float_field rest "lat" in
    let* bandwidth = float_field rest "bw" in
    let* link_s = field rest "link" in
    let* link = link_of_str link_s in
    Ok (Degrade { link; at; duration; latency; bandwidth })
  | (kind, _) :: _ -> Error (Printf.sprintf "unknown event kind %S" kind)
  | [] -> Error "empty event"

let of_string s =
  let lines = String.split_on_char '\n' s in
  let rec go acc n = function
    | [] -> Ok (List.rev acc)
    | line :: rest ->
      let line = String.trim line in
      if line = "" || String.length line > 0 && line.[0] = '#' then go acc (n + 1) rest
      else begin
        match event_of_string line with
        | Ok e -> go (e :: acc) (n + 1) rest
        | Error e -> Error (Printf.sprintf "line %d: %s" n e)
      end
  in
  go [] 1 lines

let pp fmt plan =
  List.iter (fun e -> Format.fprintf fmt "%s@." (event_to_string e)) plan

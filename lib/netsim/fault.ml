module Rng = Tacoma_util.Rng

let crash_at net ~site ~at =
  ignore (Engine.schedule_at (Net.engine net) ~at (fun () -> Net.crash net site))

let restart_at net ~site ~at =
  ignore (Engine.schedule_at (Net.engine net) ~at (fun () -> Net.restart net site))

let crash_for net ~site ~at ~downtime =
  crash_at net ~site ~at;
  restart_at net ~site ~at:(at +. downtime)

type plan = { site : Site.id; at : float; downtime : float }

let poisson_plan ~rng ~sites ~rate ~mean_downtime ~until =
  if rate <= 0.0 then []
  else
    List.concat_map
      (fun site ->
        let stream = Rng.split rng in
        let rec gen acc time =
          let time = time +. Rng.exponential stream ~mean:(1.0 /. rate) in
          if time >= until then List.rev acc
          else
            let downtime = Rng.exponential stream ~mean:mean_downtime in
            (* next crash can only happen after the site is back up *)
            gen ({ site; at = time; downtime } :: acc) (time +. downtime)
        in
        gen [] 0.0)
      sites

let apply net plans =
  List.iter
    (fun { site; at; downtime } ->
      ignore
        (Engine.schedule_at (Net.engine net) ~at (fun () ->
             (* explicit idempotence: a crash aimed at a site that is already
                down is skipped together with its paired restart, so it cannot
                cut short the downtime of the fault that got there first *)
             if Net.site_up net site then begin
               Net.crash net site;
               ignore
                 (Engine.schedule (Net.engine net) ~after:downtime (fun () ->
                      Net.restart net site))
             end
             else
               Obs.Metrics.incr (Net.metrics net)
                 ~labels:[ ("site", string_of_int site) ]
                 "fault.skipped_crashes")))
    plans

type kind = Send | Deliver | Drop | Crash | Restart | Agent | Note

type entry = { time : float; kind : kind; detail : string }

type t = Obs.Tracer.t

let create ?(enabled = false) () = Obs.Tracer.create ~enabled ()
let tracer t = t
let enable t b = Obs.Tracer.set_enabled t b
let enabled t = Obs.Tracer.enabled t

let kind_name = function
  | Send -> "net.send"
  | Deliver -> "net.deliver"
  | Drop -> "net.drop"
  | Crash -> "net.crash"
  | Restart -> "net.restart"
  | Agent -> "agent"
  | Note -> "note"

let kind_of_name = function
  | "net.send" -> Send
  | "net.deliver" -> Deliver
  | "net.drop" -> Drop
  | "net.crash" -> Crash
  | "net.restart" -> Restart
  | "note" -> Note
  | _ -> Agent

let cat_of = function
  | Send | Deliver | Drop | Crash | Restart -> "net"
  | Agent -> "kernel"
  | Note -> "note"

let add t ~time kind detail =
  if Obs.Tracer.enabled t then
    Obs.Tracer.instant t ~time ~cat:(cat_of kind) ~msg:detail (kind_name kind)

let events t = Obs.Tracer.events t

(* the legacy flat view: derive a detail string when the event was recorded
   structurally (attrs but no msg) *)
let entry_of_event (e : Obs.Event.t) =
  let detail =
    if e.msg <> "" then e.msg
    else
      String.concat " "
        ((if e.agent = "" then [] else [ e.agent ])
        @ List.map
            (fun (k, v) -> Printf.sprintf "%s=%s" k (Obs.Event.attr_to_string v))
            e.attrs)
  in
  { time = e.time; kind = kind_of_name e.name; detail }

let entries t = List.map entry_of_event (events t)
let clear t = Obs.Tracer.clear t

let short_kind = function
  | Send -> "send"
  | Deliver -> "deliver"
  | Drop -> "drop"
  | Crash -> "crash"
  | Restart -> "restart"
  | Agent -> "agent"
  | Note -> "note"

let pp_entry fmt e =
  Format.fprintf fmt "[%10.4f] %-8s %s" e.time (short_kind e.kind) e.detail

let dump fmt t = Obs.Export.pp_events fmt (events t)

(** Failure injection plans over a {!Net.t}.

    The rear-guard experiments (paper §5) sweep a crash rate; this module
    turns a rate into scheduled crash/restart events so that runs with and
    without rear guards see the *same* failure schedule. *)

val crash_at : Net.t -> site:Site.id -> at:float -> unit
val restart_at : Net.t -> site:Site.id -> at:float -> unit

val crash_for : Net.t -> site:Site.id -> at:float -> downtime:float -> unit
(** Crash at [at], restart at [at +. downtime]. *)

type plan = { site : Site.id; at : float; downtime : float }

val poisson_plan :
  rng:Tacoma_util.Rng.t ->
  sites:Site.id list ->
  rate:float ->
  mean_downtime:float ->
  until:float ->
  plan list
(** For each site, crash events arrive as a Poisson process with [rate]
    crashes per second and exponentially distributed downtime.  Pure: the
    plan can be inspected, stored and replayed against several networks. *)

val apply : Net.t -> plan list -> unit
(** Schedule every event of [plans] on the network's engine.  Idempotence
    is explicit: when a crash event fires for a site that is {e already
    down} (plans for the same site may overlap once several plans are
    combined), the event is skipped — counted under the
    [fault.skipped_crashes] metric — {e together with its paired restart},
    so an overlapping fault cannot cut short the downtime of the fault that
    crashed the site first.  Within a single {!poisson_plan} no two events
    of one site overlap, so applying one plan never skips. *)

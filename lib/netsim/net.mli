(** The simulated network: topology + event engine + failure state.

    Semantics:
    - messages follow the lowest-latency route between sites, are charged on
      every link of the route, and move store-and-forward: at each link the
      message waits for the link to free up (FIFO contention), serialises at
      the link bandwidth, then propagates for the link latency;
    - a message whose destination is down at delivery time, or that has no
      route (partition, crashed intermediates), is dropped silently — upper
      layers implement their own timeouts, exactly as real transports must;
    - a crashed site loses its handler and volatile state; [on_crash] hooks
      let upper layers model that loss. *)

type t

val create : ?seed:int64 -> ?trace:bool -> ?loss_rate:float -> Topology.t -> t
(** [loss_rate] (default 0.0) is the probability that any remote message is
    lost in transit — drawn deterministically from the network's seeded RNG.
    Local (same-site) deliveries are never lost. *)

val engine : t -> Engine.t
val topology : t -> Topology.t
val now : t -> float
val rng : t -> Tacoma_util.Rng.t
(** The root RNG stream for this network; split it rather than draw from it
    directly in long-lived components. *)

val stats : t -> Netstats.t
val trace : t -> Trace.t

(** The structured flight recorder behind [trace]: every layer (kernel,
    broker, guard, horus) records spans and instants here.  Enabled
    together with [trace]. *)
val recorder : t -> Obs.Tracer.t

(** The simulation-wide metrics registry (always on): per-link bytes and
    queue waits, drops by reason, plus whatever upper layers register. *)
val metrics : t -> Obs.Metrics.t
val sites : t -> Site.id list
val neighbors : t -> Site.id -> Site.id list

(** {1 Messaging} *)

val set_handler : t -> Site.id -> key:string -> (Message.t -> unit) -> unit
(** Several protocol layers coexist on one site (TACOMA kernel, Horus,
    baseline RPC); each registers under its own [key] and filters messages
    by payload constructor.  Re-registering a key replaces that handler.
    All handlers are dropped when the site crashes. *)

val clear_handler : t -> Site.id -> key:string -> unit

val send : t -> src:Site.id -> dst:Site.id -> size:int -> Message.payload -> unit
(** Sending from a down site is a silent no-op (the sender cannot exist).
    [dst = src] delivers locally after a negligible fixed delay with no
    byte charge. *)

val route : t -> Site.id -> Site.id -> Site.id list option
(** The current route, as the list of sites after the source (so its length
    is the hop count).  [None] when unreachable. *)

val delivery_delay : t -> Site.id -> Site.id -> size:int -> float option
(** What [send] would charge right now on an idle network (contention from
    in-flight messages adds to this). *)

(** {1 Failures} *)

val site_up : t -> Site.id -> bool
val crash : t -> Site.id -> unit
val restart : t -> Site.id -> unit
val on_crash : t -> Site.id -> (unit -> unit) -> unit
val on_restart : t -> Site.id -> (unit -> unit) -> unit

val set_link_enabled : t -> Site.id -> Site.id -> bool -> unit
(** Disable/enable a link, modelling partitions. *)

(** {1 Convenience} *)

val run : ?until:float -> t -> unit
val schedule : t -> after:float -> (unit -> unit) -> Engine.timer

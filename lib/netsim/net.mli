(** The simulated network: topology + event engine + failure state.

    Semantics:
    - messages follow the lowest-latency route between sites, are charged on
      every link of the route, and move store-and-forward: at each link the
      message waits for the link to free up (FIFO contention), serialises at
      the link bandwidth, then propagates for the link latency;
    - a message whose destination is down at delivery time, or that has no
      route (partition, crashed intermediates), is dropped silently — upper
      layers implement their own timeouts, exactly as real transports must;
    - a crashed site loses its handler and volatile state; [on_crash] hooks
      let upper layers model that loss. *)

type t

val create : ?seed:int64 -> ?trace:bool -> ?loss_rate:float -> Topology.t -> t
(** [loss_rate] (default 0.0) is the probability that any remote message is
    lost in transit — drawn deterministically from the network's seeded RNG.
    Local (same-site) deliveries are never lost. *)

val engine : t -> Engine.t
val topology : t -> Topology.t
val now : t -> float
val rng : t -> Tacoma_util.Rng.t
(** The root RNG stream for this network; split it rather than draw from it
    directly in long-lived components. *)

val stats : t -> Netstats.t
val trace : t -> Trace.t

(** The structured flight recorder behind [trace]: every layer (kernel,
    broker, guard, horus) records spans and instants here.  Enabled
    together with [trace]. *)
val recorder : t -> Obs.Tracer.t

(** The simulation-wide metrics registry (always on): per-link bytes and
    queue waits, drops by reason, plus whatever upper layers register. *)
val metrics : t -> Obs.Metrics.t
val sites : t -> Site.id list
val neighbors : t -> Site.id -> Site.id list

(** {1 Messaging} *)

val set_handler : t -> Site.id -> key:string -> (Message.t -> unit) -> unit
(** Several protocol layers coexist on one site (TACOMA kernel, Horus,
    baseline RPC); each registers under its own [key] and filters messages
    by payload constructor.  Re-registering a key replaces that handler.
    All handlers are dropped when the site crashes. *)

val clear_handler : t -> Site.id -> key:string -> unit

val send : t -> src:Site.id -> dst:Site.id -> size:int -> Message.payload -> unit
(** Sending from a down site is a silent no-op (the sender cannot exist).
    [dst = src] delivers locally after a negligible fixed delay with no
    byte charge. *)

val route : t -> Site.id -> Site.id -> Site.id list option
(** The current route, as the list of sites after the source (so its length
    is the hop count).  [None] when unreachable. *)

val delivery_delay : t -> Site.id -> Site.id -> size:int -> float option
(** What [send] would charge right now on an idle network (contention from
    in-flight messages adds to this). *)

val route_cache_size : t -> int
(** Number of per-source rows currently in the route cache.  Bounded by the
    site count: every reachability change (crash, restart, partition,
    degradation) clears the cache eagerly rather than leaving stale rows to
    be overwritten on re-lookup. *)

(** {1 Failures} *)

val site_up : t -> Site.id -> bool
val crash : t -> Site.id -> unit
val restart : t -> Site.id -> unit
val on_crash : t -> Site.id -> (unit -> unit) -> unit
val on_restart : t -> Site.id -> (unit -> unit) -> unit

val set_link_enabled : t -> Site.id -> Site.id -> bool -> unit
(** Disable/enable a link, modelling partitions.  Messages whose only routes
    crossed disabled links are dropped under reason ["partition"] in the
    metrics registry (vs ["no-route"] for genuine unreachability,
    ["site-down"] for a dead destination and ["loss"] for random loss).
    @raise Invalid_argument if the topology has no such link. *)

val link_enabled : t -> Site.id -> Site.id -> bool

(** {1 Chaos hooks}

    Deterministic degraded-network windows, driven by {!Chaos} plans but
    usable directly.  All of them are orthogonal to the topology: clearing
    them restores the pristine link parameters. *)

val set_link_loss : t -> Site.id -> Site.id -> float option -> unit
(** Extra loss probability applied to every message crossing this link, on
    top of the net-wide rate; [None] clears it.  Losses on distinct links
    compound independently along a route.
    @raise Invalid_argument on a rate outside [0,1) or a missing link. *)

val link_loss : t -> Site.id -> Site.id -> float option

val set_loss_override : t -> float option -> unit
(** Temporarily replace the net-wide [loss_rate] (a global loss burst);
    [None] restores the rate given at creation. *)

val loss_override : t -> float option

val set_link_degraded : t -> Site.id -> Site.id -> (float * float) option -> unit
(** [(latency_mult, bandwidth_mult)] scaling the link's parameters for
    routing, serialisation and propagation — e.g. [(10., 0.1)] makes a link
    ten times slower both ways.  Degradation changes lowest-latency routes,
    so in-flight route caches are invalidated.  [None] restores the link.
    @raise Invalid_argument on non-positive factors or a missing link. *)

val link_degraded : t -> Site.id -> Site.id -> (float * float) option

(** {1 Convenience} *)

val run : ?until:float -> t -> unit
val schedule : t -> after:float -> (unit -> unit) -> Engine.timer

(** Chronological event trace — now a thin view over the structured flight
    recorder ([Obs.Tracer]).  The old flat-string API is kept for existing
    call sites and tests: [add] records a structured instant event whose
    [msg] is the detail string, and [entries] projects the structured
    stream back into [{time; kind; detail}] rows.  New instrumentation
    should record through [tracer] (or [Net.recorder]) directly. *)

type kind =
  | Send
  | Deliver
  | Drop
  | Crash
  | Restart
  | Agent  (** agent-level events recorded by upper layers *)
  | Note

type entry = { time : float; kind : kind; detail : string }

type t

val create : ?enabled:bool -> unit -> t

val tracer : t -> Obs.Tracer.t
(** The underlying flight recorder: structured events, span allocation. *)

val enable : t -> bool -> unit
val enabled : t -> bool

val add : t -> time:float -> kind -> string -> unit
(** No-op while disabled.  Records a structured instant event named after
    [kind] with the detail as [msg]. *)

val entries : t -> entry list
(** Oldest first.  Structured span events project to [Agent] entries;
    events named ["net.*"] map back onto their network [kind]. *)

val events : t -> Obs.Event.t list
(** The full structured stream, oldest first. *)

val clear : t -> unit
val kind_name : kind -> string
val pp_entry : Format.formatter -> entry -> unit
val dump : Format.formatter -> t -> unit

type timer = { mutable live : bool; mutable on_cancel : unit -> unit }

type event = { time : float; seq : int; fire : unit -> unit; handle : timer }

type t = {
  mutable clock : float;
  mutable next_seq : int;
  queue : event Tacoma_util.Heap.t;
  mutable live_count : int;
  mutable compaction_count : int;
  metrics : Obs.Metrics.t option;
}

let compare_event a b =
  let c = compare a.time b.time in
  if c <> 0 then c else compare a.seq b.seq

let create ?metrics () =
  {
    clock = 0.0;
    next_seq = 0;
    queue = Tacoma_util.Heap.create ~cmp:compare_event;
    live_count = 0;
    compaction_count = 0;
    metrics;
  }

let now t = t.clock

(* Cancelled events stay in the heap until popped; under heavy cancellation
   (guard timeout timers, booking deadlines) they can come to dominate it.
   Once dead entries outnumber live ones, rebuild the heap from the live
   entries.  Rebuilding never changes pop order: the (time, seq) ordering is
   total, so any heap over the same live set pops identically. *)
let compaction_threshold = 64

let maybe_compact t =
  let len = Tacoma_util.Heap.length t.queue in
  if len >= compaction_threshold && len - t.live_count > len / 2 then begin
    let live =
      List.filter (fun ev -> ev.handle.live) (Tacoma_util.Heap.to_list t.queue)
    in
    Tacoma_util.Heap.clear t.queue;
    List.iter (Tacoma_util.Heap.push t.queue) live;
    t.compaction_count <- t.compaction_count + 1;
    match t.metrics with
    | Some m -> Obs.Metrics.incr m "engine.compactions"
    | None -> ()
  end

let schedule_at t ~at fire =
  let at = max at t.clock in
  let handle = { live = true; on_cancel = (fun () -> ()) } in
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  t.live_count <- t.live_count + 1;
  handle.on_cancel <-
    (fun () ->
      t.live_count <- t.live_count - 1;
      maybe_compact t);
  Tacoma_util.Heap.push t.queue { time = at; seq; fire; handle };
  handle

let schedule t ~after fire = schedule_at t ~at:(t.clock +. max 0.0 after) fire

let cancel handle =
  if handle.live then begin
    handle.live <- false;
    handle.on_cancel ()
  end

let rec step t =
  match Tacoma_util.Heap.pop t.queue with
  | None -> false
  | Some ev ->
    if ev.handle.live then begin
      ev.handle.live <- false;
      t.live_count <- t.live_count - 1;
      t.clock <- ev.time;
      ev.fire ();
      true
    end
    else step t (* cancelled entry: skip without advancing the clock *)

(* The next *live* event, discarding dead entries from the top.  [run
   ~until] must look through cancelled heads: deciding on the raw head time
   would let [step] skip past it and fire a live event beyond [until]. *)
let rec peek_live t =
  match Tacoma_util.Heap.peek t.queue with
  | Some ev when not ev.handle.live ->
    ignore (Tacoma_util.Heap.pop t.queue);
    peek_live t
  | other -> other

let run ?until t =
  match until with
  | None -> while step t do () done
  | Some stop ->
    let continue = ref true in
    while !continue do
      match peek_live t with
      | Some ev when ev.time <= stop -> if not (step t) then continue := false
      | Some _ | None ->
        t.clock <- max t.clock stop;
        continue := false
    done

let pending t = t.live_count
let compactions t = t.compaction_count

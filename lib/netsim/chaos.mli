(** Deterministic chaos plans: composable failure schedules over a {!Net.t}.

    Generalises {!Fault} (crash/restart only) to the full failure surface the
    netsim models: link partitions ({!event.Cut} — clean bisections or
    flapping single links), time-windowed loss elevation
    ({!event.Loss_burst}, per-link or net-wide) and link degradation
    ({!event.Degrade}, latency/bandwidth multipliers).

    Plans are {e pure data}: generated from split RNG streams, inspectable,
    storable ({!to_string}/{!of_string}) and replayable against several
    networks — the chaos analogue of {!Fault.poisson_plan}'s determinism
    guarantee.  Every injected event is emitted as a tracer instant
    (category ["chaos"]) and counted in the metrics registry
    ([chaos.injected] / [chaos.healed] / [chaos.skipped], labelled by
    kind). *)

type link = Site.id * Site.id

type event =
  | Crash of { site : Site.id; at : float; downtime : float }
      (** crash at [at], restart at [at +. downtime]; skipped (and counted
          under [chaos.skipped]) when the site is already down, together
          with its paired restart *)
  | Cut of { links : link list; at : float; duration : float; label : string }
      (** disable every listed link for the window; overlapping cuts of the
          same link are reference-counted, so a link heals only when the
          last window covering it closes *)
  | Loss_burst of { link : link option; at : float; duration : float; rate : float }
      (** elevate loss to [rate] for the window, on one link or ([None])
          net-wide; overlapping bursts combine to the worst rate *)
  | Degrade of {
      link : link;
      at : float;
      duration : float;
      latency : float;  (** latency multiplier, >= 1.0 slows the link *)
      bandwidth : float;  (** bandwidth multiplier, <= 1.0 slows the link *)
    }

type plan = event list

val kind_of : event -> string
(** ["crash"], ["cut"], ["loss"] or ["degrade"] — the metric label. *)

val at_of : event -> float
val sort : plan -> plan

val counts : plan -> (string * int) list
(** Events per kind, sorted by kind name. *)

val crash_windows : plan -> (Site.id * (float * float)) list

val double_failure_window : plan -> Site.id list -> bool
(** [double_failure_window plan itinerary] is true when some {e adjacent}
    pair of the itinerary has overlapping crash windows — the rear-guard
    protocol's unavoidable loss case (agent site and guard site down at
    once, paper §5). *)

(** {1 Generators}

    All pure; they only draw from the given [rng]. *)

val of_fault_plan : Fault.plan list -> plan

val crashes :
  rng:Tacoma_util.Rng.t ->
  sites:Site.id list ->
  rate:float ->
  mean_downtime:float ->
  until:float ->
  plan
(** Per-site Poisson crash/restart schedule — {!Fault.poisson_plan} lifted
    to chaos events. *)

val flapping :
  rng:Tacoma_util.Rng.t ->
  topo:Topology.t ->
  rate:float ->
  mean_downtime:float ->
  until:float ->
  plan
(** Single random links go down for exponential windows, arriving as a
    net-wide Poisson process with [rate]. *)

val bisections :
  rng:Tacoma_util.Rng.t ->
  topo:Topology.t ->
  rate:float ->
  mean_downtime:float ->
  until:float ->
  plan
(** Clean partitions: each event draws a random proper site cut and takes
    down every crossing link for the window. *)

val loss_bursts :
  rng:Tacoma_util.Rng.t ->
  topo:Topology.t ->
  rate:float ->
  mean_duration:float ->
  loss:float ->
  until:float ->
  plan
(** Loss windows at [loss] probability; each burst hits either one random
    link or the whole net (even odds). *)

val degradations :
  rng:Tacoma_util.Rng.t ->
  topo:Topology.t ->
  rate:float ->
  mean_duration:float ->
  latency_factor:float ->
  bandwidth_factor:float ->
  until:float ->
  plan

(** Rates for {!mixed}: crashes are per site per second, everything else is
    net-wide. *)
type profile = {
  crash_rate : float;
  mean_downtime : float;
  bisection_rate : float;
  mean_partition : float;
  flap_rate : float;
  mean_flap : float;
  loss_burst_rate : float;
  mean_loss_burst : float;
  burst_loss : float;
  degrade_rate : float;
  mean_degrade : float;
  latency_factor : float;
  bandwidth_factor : float;
}

val default_profile : profile

val mixed :
  rng:Tacoma_util.Rng.t ->
  topo:Topology.t ->
  ?profile:profile ->
  until:float ->
  unit ->
  plan
(** All five fault classes combined, each drawn from its own split of [rng]
    (in a fixed order, so tuning one rate never perturbs the others'
    schedules), merged and sorted by time. *)

(** {1 Application} *)

val validate : Topology.t -> plan -> (unit, string) result

val apply : Net.t -> plan -> unit
(** Schedule every event (and the end of its window) on the network's
    engine.  Overlapping windows compose as documented per {!event} case.
    @raise Invalid_argument when {!validate} rejects the plan. *)

(** {1 Persistence}

    A plan serialises to one line per event — stable enough to check into a
    repo, diff, or replay from the [tacoma chaos] CLI. *)

val to_string : plan -> string
val of_string : string -> (plan, string) result
val pp : Format.formatter -> plan -> unit

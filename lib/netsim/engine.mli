(** Discrete-event simulation core.

    A single logical clock and a priority queue of callbacks.  Everything in
    the reproduction — message delivery, agent execution delays, failures,
    heartbeats — is an event on this queue, which is what makes whole-system
    runs deterministic. *)

type t

type timer
(** Handle for a scheduled event, used to cancel pending timeouts. *)

val create : ?metrics:Obs.Metrics.t -> unit -> t
(** [metrics], when given, receives the [engine.compactions] counter (see
    {!compactions}). *)

val now : t -> float
(** Current simulated time in seconds. *)

val schedule : t -> after:float -> (unit -> unit) -> timer
(** [schedule t ~after f] runs [f] at [now t +. after].  Negative delays are
    clamped to zero.  Events scheduled for the same instant fire in
    scheduling order. *)

val schedule_at : t -> at:float -> (unit -> unit) -> timer
(** Absolute-time variant.  Times before [now] fire immediately (at [now]). *)

val cancel : timer -> unit
(** Cancelling an already-fired or cancelled timer is a no-op. *)

val step : t -> bool
(** Run the next event.  [false] if the queue was empty. *)

val run : ?until:float -> t -> unit
(** Drain the queue; with [until], stop once the next {e live} event lies
    beyond that time (the clock is then advanced to [until]).  Cancelled
    entries at the head of the queue are discarded, never counted as the
    next event. *)

val pending : t -> int
(** Number of not-yet-fired, not-cancelled events. *)

val compactions : t -> int
(** How many times the queue has been rebuilt to shed cancelled entries.
    Compaction triggers when dead entries outnumber live ones (past a small
    size floor) and never changes the firing order. *)

module Rng = Tacoma_util.Rng

type site_state = {
  mutable up : bool;
  mutable handlers : (string * (Message.t -> unit)) list;
  mutable crash_hooks : (unit -> unit) list;
  mutable restart_hooks : (unit -> unit) list;
}

type t = {
  engine : Engine.t;
  topo : Topology.t;
  rng : Rng.t;
  loss_rng : Rng.t;
  loss_rate : float;
  stats : Netstats.t;
  trace : Trace.t;
  metrics : Obs.Metrics.t;
  site_states : site_state array;
  disabled_links : (int * int, unit) Hashtbl.t;
  link_loss : (int * int, float) Hashtbl.t; (* chaos: extra per-link loss *)
  link_degrade : (int * int, float * float) Hashtbl.t;
      (* chaos: (latency multiplier, bandwidth multiplier) per link *)
  mutable loss_override : float option; (* chaos: window replacing loss_rate *)
  link_busy_until : (int * int, float) Hashtbl.t; (* FIFO serialisation per link *)
  mutable generation : int; (* bumped on any reachability change *)
  route_cache : (int, (float * int list) option array * int) Hashtbl.t;
      (* src -> (per-dst delay/path, generation) *)
}

let create ?(seed = 42L) ?(trace = false) ?(loss_rate = 0.0) topo =
  if loss_rate < 0.0 || loss_rate >= 1.0 then invalid_arg "Net.create: loss_rate must be in [0,1)";
  let n = Topology.site_count topo in
  let rng = Rng.create seed in
  let metrics = Obs.Metrics.create () in
  {
    engine = Engine.create ~metrics ();
    topo;
    loss_rng = Rng.split rng;
    loss_rate;
    rng;
    stats = Netstats.create ();
    trace = Trace.create ~enabled:trace ();
    metrics;
    site_states =
      Array.init n (fun _ ->
          { up = true; handlers = []; crash_hooks = []; restart_hooks = [] });
    disabled_links = Hashtbl.create 8;
    link_loss = Hashtbl.create 8;
    link_degrade = Hashtbl.create 8;
    loss_override = None;
    link_busy_until = Hashtbl.create 64;
    generation = 0;
    route_cache = Hashtbl.create 16;
  }

let engine t = t.engine
let topology t = t.topo
let now t = Engine.now t.engine
let rng t = t.rng
let stats t = t.stats
let trace t = t.trace
let recorder t = Trace.tracer t.trace
let metrics t = t.metrics
let sites t = Topology.sites t.topo
let neighbors t s = Topology.neighbors t.topo s

let state t s =
  if s < 0 || s >= Array.length t.site_states then invalid_arg "Net: unknown site";
  t.site_states.(s)

let set_handler t s ~key h =
  let st = state t s in
  st.handlers <- (key, h) :: List.remove_assoc key st.handlers

let clear_handler t s ~key =
  let st = state t s in
  st.handlers <- List.remove_assoc key st.handlers
let site_up t s = (state t s).up

let key a b = if a < b then (a, b) else (b, a)

(* Any reachability change invalidates every cached route at once.  Clear
   the rows eagerly: stale-generation rows would otherwise sit in the table
   until the same source happens to route again, so a long chaos run that
   churns links grows the cache without bound. *)
let bump_generation t =
  t.generation <- t.generation + 1;
  Hashtbl.reset t.route_cache

let route_cache_size t = Hashtbl.length t.route_cache

let link_enabled t a b = not (Hashtbl.mem t.disabled_links (key a b))

(* Chaos degradation windows scale a link's parameters without touching the
   topology itself: latency is multiplied, bandwidth is multiplied (a factor
   below 1.0 slows the link down). *)
let effective_latency t a b (l : Topology.link) =
  match Hashtbl.find_opt t.link_degrade (key a b) with
  | None -> l.latency
  | Some (lm, _) -> l.latency *. lm

let effective_bandwidth t a b (l : Topology.link) =
  match Hashtbl.find_opt t.link_degrade (key a b) with
  | None -> l.bandwidth
  | Some (_, bm) -> l.bandwidth *. bm

(* Dijkstra over latency, skipping disabled links.  A down site may be
   reached (it can be a message destination — liveness is re-checked at
   delivery time so in-flight messages race with crashes as on a real
   network) but must not forward traffic: we never relax the edges of a
   down vertex other than the source. *)
let dijkstra t src =
  let n = Topology.site_count t.topo in
  let dist = Array.make n infinity in
  let prev = Array.make n (-1) in
  let visited = Array.make n false in
  dist.(src) <- 0.0;
  let heap = Tacoma_util.Heap.create ~cmp:(fun (a, _) (b, _) -> compare a b) in
  Tacoma_util.Heap.push heap (0.0, src);
  let rec loop () =
    match Tacoma_util.Heap.pop heap with
    | None -> ()
    | Some (d, u) ->
      if not visited.(u) then begin
        visited.(u) <- true;
        if (state t u).up || u = src then
          List.iter
            (fun v ->
              if link_enabled t u v then
                match Topology.link t.topo u v with
                | None -> ()
                | Some l ->
                  let nd = d +. effective_latency t u v l in
                  if nd < dist.(v) then begin
                    dist.(v) <- nd;
                    prev.(v) <- u;
                    Tacoma_util.Heap.push heap (nd, v)
                  end)
            (Topology.neighbors t.topo u)
      end;
      loop ()
  in
  loop ();
  let path_to dst =
    if dist.(dst) = infinity then None
    else begin
      let rec build acc v = if v = src then acc else build (v :: acc) prev.(v) in
      Some (dist.(dst), build [] dst)
    end
  in
  Array.init n path_to

let routes_from t src =
  match Hashtbl.find_opt t.route_cache src with
  | Some (arr, gen) when gen = t.generation -> arr
  | Some _ | None ->
    let arr = dijkstra t src in
    Hashtbl.replace t.route_cache src (arr, t.generation);
    arr

let route t src dst =
  if src = dst then Some []
  else match (routes_from t src).(dst) with None -> None | Some (_, path) -> Some path

let local_delivery_delay = 0.0001

let path_delay t ~size src path =
  (* idle-network bound: per link, latency + serialisation *)
  let rec go acc prev_site = function
    | [] -> acc
    | hop :: rest ->
      let l =
        match Topology.link t.topo prev_site hop with
        | Some l -> l
        | None -> assert false
      in
      go
        (acc
        +. effective_latency t prev_site hop l
        +. (float_of_int size /. effective_bandwidth t prev_site hop l))
        hop rest
  in
  go 0.0 src path

(* Store-and-forward with FIFO link contention: at each link the message
   first waits until the link has drained earlier traffic, occupies it for
   the serialisation time, then propagates for the latency.  Returns the
   absolute arrival time and updates the links' busy horizons. *)
let link_label a b =
  let a, b = if a < b then (a, b) else (b, a) in
  Printf.sprintf "%d-%d" a b

let reserve_path t ~size src path =
  let now = Engine.now t.engine in
  let rec go arrival prev_site = function
    | [] -> arrival
    | hop :: rest ->
      let l =
        match Topology.link t.topo prev_site hop with
        | Some l -> l
        | None -> assert false
      in
      let k = key prev_site hop in
      let free_at = Option.value ~default:0.0 (Hashtbl.find_opt t.link_busy_until k) in
      let start_tx = Float.max arrival free_at in
      (* queue depth at this link, in seconds of backlog ahead of us *)
      Obs.Metrics.observe t.metrics
        ~labels:[ ("link", link_label prev_site hop) ]
        "net.link.wait_s" (start_tx -. arrival);
      let tx_done = start_tx +. (float_of_int size /. effective_bandwidth t prev_site hop l) in
      Hashtbl.replace t.link_busy_until k tx_done;
      go (tx_done +. effective_latency t prev_site hop l) hop rest
  in
  go now src path

(* The probability that a message following [path] is lost.  With no chaos
   overrides this is exactly [loss_rate]; a global override window replaces
   it, and per-link elevations compound along the route (independent loss on
   every crossed link). *)
let path_loss_prob t src path =
  let base = match t.loss_override with Some r -> r | None -> t.loss_rate in
  if Hashtbl.length t.link_loss = 0 then base
  else begin
    let survive = ref (1.0 -. base) in
    let prev = ref src in
    List.iter
      (fun hop ->
        (match Hashtbl.find_opt t.link_loss (key !prev hop) with
        | Some r -> survive := !survive *. (1.0 -. r)
        | None -> ());
        prev := hop)
      path;
    1.0 -. !survive
  end

(* When a route lookup fails, distinguish an administrative partition from
   genuine unreachability: rerun reachability ignoring disabled links (down
   sites still do not forward).  If the destination would be reachable, the
   drop is attributable to the partition. *)
let reachable_ignoring_partition t src dst =
  let n = Topology.site_count t.topo in
  let visited = Array.make n false in
  let q = Queue.create () in
  visited.(src) <- true;
  Queue.add src q;
  let found = ref false in
  while (not !found) && not (Queue.is_empty q) do
    let u = Queue.take q in
    if u = dst then found := true
    else if (state t u).up || u = src then
      List.iter
        (fun v ->
          if not visited.(v) then begin
            visited.(v) <- true;
            Queue.add v q
          end)
        (Topology.neighbors t.topo u)
  done;
  !found

let delivery_delay t src dst ~size =
  if src = dst then Some local_delivery_delay
  else
    match route t src dst with
    | None -> None
    | Some path -> Some (path_delay t ~size src path)

let deliver t (msg : Message.t) =
  let st = state t msg.dst in
  let tr = recorder t in
  if st.up then begin
    Netstats.record_delivery t.stats;
    Obs.Metrics.incr t.metrics "net.delivered";
    Obs.Metrics.observe t.metrics "net.delivery_latency_s" (now t -. msg.sent_at);
    if Obs.Tracer.enabled tr then
      Obs.Tracer.instant tr ~time:(now t) ~cat:"net" ~site:msg.dst
        ~attrs:
          [
            ("src", Obs.Event.I msg.src);
            ("bytes", Obs.Event.I msg.size);
            ("latency", Obs.Event.F (now t -. msg.sent_at));
          ]
        "net.deliver";
    List.iter (fun (_, h) -> h msg) (List.rev st.handlers)
  end
  else begin
    Netstats.record_drop t.stats;
    Obs.Metrics.incr t.metrics ~labels:[ ("reason", "site-down") ] "net.drops";
    if Obs.Tracer.enabled tr then
      Obs.Tracer.instant tr ~time:(now t) ~cat:"net" ~site:msg.dst
        ~msg:(Printf.sprintf "site-%d down, dropped %d bytes from site-%d" msg.dst msg.size msg.src)
        ~attrs:[ ("reason", Obs.Event.S "site-down") ]
        "net.drop"
  end

let send t ~src ~dst ~size payload =
  if size < 0 then invalid_arg "Net.send: negative size";
  let tr = recorder t in
  if site_up t src then begin
    if src = dst then begin
      Netstats.record_send t.stats ~bytes:size ~hops:0;
      Obs.Metrics.incr t.metrics "net.sent";
      let msg =
        { Message.src; dst; size; payload; sent_at = now t; hops = 0 }
      in
      ignore (Engine.schedule t.engine ~after:local_delivery_delay (fun () -> deliver t msg))
    end
    else
      match route t src dst with
      | None ->
        let reason =
          if Hashtbl.length t.disabled_links > 0 && reachable_ignoring_partition t src dst then
            "partition"
          else "no-route"
        in
        Netstats.record_drop t.stats;
        Obs.Metrics.incr t.metrics ~labels:[ ("reason", reason) ] "net.drops";
        if Obs.Tracer.enabled tr then
          Obs.Tracer.instant tr ~time:(now t) ~cat:"net" ~site:src
            ~msg:(Printf.sprintf "%s site-%d -> site-%d (%d bytes)" reason src dst size)
            ~attrs:[ ("reason", Obs.Event.S reason); ("dst", Obs.Event.I dst) ]
            "net.drop"
      | Some path ->
        let hops = List.length path in
        Netstats.record_send t.stats ~bytes:size ~hops;
        Obs.Metrics.incr t.metrics "net.sent";
        Obs.Metrics.observe t.metrics "net.msg_hops" (float_of_int hops);
        let rec charge prev_site = function
          | [] -> ()
          | hop :: rest ->
            Netstats.record_link_bytes t.stats prev_site hop size;
            Obs.Metrics.incr t.metrics
              ~labels:[ ("link", link_label prev_site hop) ]
              ~by:size "net.link.bytes";
            charge hop rest
        in
        charge src path;
        if Obs.Tracer.enabled tr then
          Obs.Tracer.instant tr ~time:(now t) ~cat:"net" ~site:src
            ~attrs:
              [
                ("dst", Obs.Event.I dst);
                ("bytes", Obs.Event.I size);
                ("hops", Obs.Event.I hops);
              ]
            "net.send";
        let arrival = reserve_path t ~size src path in
        let loss_prob = path_loss_prob t src path in
        if loss_prob > 0.0 && Rng.float t.loss_rng < loss_prob then begin
          (* lost in transit: the bytes were spent, nothing arrives *)
          ignore
            (Engine.schedule_at t.engine ~at:arrival (fun () ->
                 Netstats.record_drop t.stats;
                 Obs.Metrics.incr t.metrics ~labels:[ ("reason", "loss") ] "net.drops";
                 if Obs.Tracer.enabled tr then
                   Obs.Tracer.instant tr ~time:(now t) ~cat:"net" ~site:src
                     ~msg:
                       (Printf.sprintf "lost in transit site-%d -> site-%d (%d bytes)" src
                          dst size)
                     ~attrs:[ ("reason", Obs.Event.S "loss"); ("dst", Obs.Event.I dst) ]
                     "net.drop"))
        end
        else begin
          let msg = { Message.src; dst; size; payload; sent_at = now t; hops } in
          ignore (Engine.schedule_at t.engine ~at:arrival (fun () -> deliver t msg))
        end
  end

let crash t s =
  let st = state t s in
  if st.up then begin
    st.up <- false;
    st.handlers <- [];
    bump_generation t;
    Obs.Metrics.incr t.metrics "net.crashes";
    Trace.add t.trace ~time:(now t) Trace.Crash (Printf.sprintf "site-%d" s);
    List.iter (fun hook -> hook ()) (List.rev st.crash_hooks)
  end

let restart t s =
  let st = state t s in
  if not st.up then begin
    st.up <- true;
    bump_generation t;
    Obs.Metrics.incr t.metrics "net.restarts";
    Trace.add t.trace ~time:(now t) Trace.Restart (Printf.sprintf "site-%d" s);
    List.iter (fun hook -> hook ()) (List.rev st.restart_hooks)
  end

let on_crash t s hook =
  let st = state t s in
  st.crash_hooks <- hook :: st.crash_hooks

let on_restart t s hook =
  let st = state t s in
  st.restart_hooks <- hook :: st.restart_hooks

let set_link_enabled t a b enabled =
  (match Topology.link t.topo a b with
  | None -> invalid_arg "Net.set_link_enabled: no such link"
  | Some _ -> ());
  let k = key a b in
  let changed =
    if enabled then Hashtbl.mem t.disabled_links k
    else not (Hashtbl.mem t.disabled_links k)
  in
  if changed then begin
    if enabled then Hashtbl.remove t.disabled_links k else Hashtbl.replace t.disabled_links k ();
    bump_generation t
  end

let require_link t a b what =
  match Topology.link t.topo a b with
  | None -> invalid_arg (what ^ ": no such link")
  | Some _ -> ()

let set_link_loss t a b rate =
  require_link t a b "Net.set_link_loss";
  match rate with
  | None -> Hashtbl.remove t.link_loss (key a b)
  | Some r ->
    if r < 0.0 || r >= 1.0 then invalid_arg "Net.set_link_loss: rate must be in [0,1)";
    Hashtbl.replace t.link_loss (key a b) r

let link_loss t a b = Hashtbl.find_opt t.link_loss (key a b)

let set_loss_override t rate =
  (match rate with
  | Some r when r < 0.0 || r >= 1.0 ->
    invalid_arg "Net.set_loss_override: rate must be in [0,1)"
  | Some _ | None -> ());
  t.loss_override <- rate

let loss_override t = t.loss_override

let set_link_degraded t a b factors =
  require_link t a b "Net.set_link_degraded";
  let k = key a b in
  (match factors with
  | None -> Hashtbl.remove t.link_degrade k
  | Some (lm, bm) ->
    if lm <= 0.0 || bm <= 0.0 then
      invalid_arg "Net.set_link_degraded: factors must be positive";
    Hashtbl.replace t.link_degrade k (lm, bm));
  (* degraded latency changes lowest-latency routes *)
  bump_generation t

let link_degraded t a b = Hashtbl.find_opt t.link_degrade (key a b)

let run ?until t = Engine.run ?until t.engine
let schedule t ~after f = Engine.schedule t.engine ~after f

(** The [expr] sublanguage: arithmetic, comparison, boolean and ternary
    expressions.

    Like Tcl, [expr] performs its own [$var] and [\[cmd\]] substitution —
    that is why [if {$x > 0} ...] works even though braces suppress
    substitution — so evaluation takes the two substitution callbacks from
    the interpreter.

    Compilation is split from evaluation: {!compile} does the lexing and
    parsing once, producing an immutable {!ast} whose variable and command
    references stay late-bound; {!eval_ast} walks it against the current
    scope.  The interpreter caches compiled expressions keyed by source
    string, so loop conditions and [expr] bodies pay the parser only once.

    [&&], [||] and [?:] are lazy: the skipped operand is never evaluated,
    so a side-effecting [\[cmd\]] in the untaken arm does not run. *)

exception Error of string

type num = Int of int | Float of float | Str of string

type ast
(** A compiled expression: immutable pure data, safe to cache and share
    between interpreter instances. *)

val compile : string -> ast
(** Lex and parse an expression source once.  Unknown functions and arity
    mistakes are rejected here, at compile time.
    @raise Error on syntax errors. *)

val eval_ast :
  lookup:(string -> string) ->
  eval_cmd:(string -> string) ->
  ast ->
  string
(** Evaluate a compiled expression to its string rendering.
    @raise Error on type errors (caught by the interpreter and turned into
    a script-level error). *)

val eval_ast_bool :
  lookup:(string -> string) ->
  eval_cmd:(string -> string) ->
  ast ->
  bool
(** Truth-value fast path: skips rendering the result to a string —
    the common case for [if]/[while]/[for] conditions. *)

val eval :
  lookup:(string -> string) ->
  eval_cmd:(string -> string) ->
  string ->
  string
(** [compile] + [eval_ast] in one shot, no caching. *)

val eval_bool :
  lookup:(string -> string) ->
  eval_cmd:(string -> string) ->
  string ->
  bool

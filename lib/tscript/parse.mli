(** Recursive-descent parser from script source to {!Ast.script}.

    Grammar (a faithful subset of Tcl's dodekalogue):
    - commands are separated by newlines or [;];
    - a [#] at command position starts a comment to end of line;
    - words are separated by spaces/tabs and are brace-quoted literals,
      double-quoted fragment strings, or bare fragment strings;
    - [$name], [${name}] and [\[script\]] substitute inside quotes and bare
      words but not inside braces;
    - backslash escapes the usual characters (n, t, r, backslash, dollar,
      brackets, quotes, braces, semicolon) and backslash-newline is a line
      continuation that becomes a space. *)

exception Syntax_error of string

val script : string -> 'fn Ast.script
(** @raise Syntax_error on unbalanced constructs.  The result carries
    empty inline-cache slots, hence the polymorphism. *)

val script_result : string -> ('fn Ast.script, string) result

val fragments : string -> 'fn Ast.fragment list
(** Parse a whole string as substitution fragments (no word splitting, no
    command terminators) — the engine of the [subst] command.
    @raise Syntax_error on unbalanced constructs. *)

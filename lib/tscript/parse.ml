exception Syntax_error of string

type state = { src : string; mutable pos : int }

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None
let advance st = st.pos <- st.pos + 1

let fail msg = raise (Syntax_error msg)

let is_word_space c = c = ' ' || c = '\t'
let is_command_end c = c = '\n' || c = ';'

let unescape_char c =
  match c with 'n' -> "\n" | 't' -> "\t" | 'r' -> "\r" | '\n' -> " " | other -> String.make 1 other

(* Variable names: alphanumerics plus underscore, or {anything}; a bare
   name may be followed by an array index in parentheses, which is itself
   substituted ($a($i)). *)
let parse_varname st ~parse_index =
  match peek st with
  | Some '{' ->
    advance st;
    let start = st.pos in
    let rec go () =
      match peek st with
      | None -> fail "unterminated ${ variable"
      | Some '}' ->
        let name = String.sub st.src start (st.pos - start) in
        advance st;
        Ast.Var name
      | Some _ ->
        advance st;
        go ()
    in
    go ()
  | Some _ | None -> (
    let start = st.pos in
    let rec go () =
      match peek st with
      | Some ('a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_') ->
        advance st;
        go ()
      | Some _ | None -> ()
    in
    go ();
    if st.pos = start then fail "bare $ with no variable name";
    let name = String.sub st.src start (st.pos - start) in
    match peek st with
    | Some '(' ->
      advance st;
      let index = parse_index st in
      (match peek st with
      | Some ')' -> advance st
      | Some _ | None -> fail "unterminated array index");
      Ast.VarElem (name, index)
    | Some _ | None -> Ast.Var name)

(* Brace-quoted word: verbatim content with nested balanced braces;
   backslash protects a following brace character from counting. *)
let parse_braced st =
  advance st (* opening { *);
  let buf = Buffer.create 32 in
  let depth = ref 1 in
  let rec go () =
    match peek st with
    | None -> fail "unterminated { brace"
    | Some '\\' when st.pos + 1 < String.length st.src ->
      (* braces preserve backslash pairs verbatim, with Tcl's one exception:
         backslash-newline is a line continuation even inside braces *)
      advance st;
      if st.src.[st.pos] = '\n' then Buffer.add_char buf ' '
      else begin
        Buffer.add_char buf '\\';
        Buffer.add_char buf st.src.[st.pos]
      end;
      advance st;
      go ()
    | Some '{' ->
      incr depth;
      Buffer.add_char buf '{';
      advance st;
      go ()
    | Some '}' ->
      decr depth;
      advance st;
      if !depth > 0 then begin
        Buffer.add_char buf '}';
        go ()
      end
    | Some c ->
      Buffer.add_char buf c;
      advance st;
      go ()
  in
  go ();
  Buffer.contents buf

(* Fragments shared by quoted and bare words.  [stop] decides which raw
   character terminates the word (the terminator is not consumed). *)
let rec parse_fragments st ~stop =
  let frags = ref [] in
  let buf = Buffer.create 32 in
  let flush_lit () =
    if Buffer.length buf > 0 then begin
      frags := Ast.Lit (Buffer.contents buf) :: !frags;
      Buffer.clear buf
    end
  in
  let rec go () =
    match peek st with
    | None -> ()
    | Some c when stop c -> ()
    | Some '\\' ->
      advance st;
      (match peek st with
      | None -> Buffer.add_char buf '\\'
      | Some e ->
        Buffer.add_string buf (unescape_char e);
        advance st);
      go ()
    | Some '$' ->
      advance st;
      flush_lit ();
      frags :=
        parse_varname st ~parse_index:(fun st -> parse_fragments st ~stop:(fun c -> c = ')'))
        :: !frags;
      go ()
    | Some '[' ->
      advance st;
      flush_lit ();
      let sub = parse_script st ~in_bracket:true in
      frags := Ast.Cmd sub :: !frags;
      go ()
    | Some c ->
      Buffer.add_char buf c;
      advance st;
      go ()
  in
  go ();
  flush_lit ();
  List.rev !frags

and parse_quoted st =
  advance st (* opening double quote *);
  let frags = parse_fragments st ~stop:(fun c -> c = '"') in
  (match peek st with
  | Some '"' -> advance st
  | Some _ | None -> fail "unterminated quoted word");
  frags

(* One command: list of words.  Assumes leading spaces skipped.  Stops
   before the command terminator. *)
and parse_command st ~in_bracket =
  let words = ref [] in
  let rec go () =
    (* skip intra-command spaces *)
    while (match peek st with Some c when is_word_space c -> true | _ -> false) do
      advance st
    done;
    match peek st with
    | None -> ()
    | Some ']' when in_bracket -> ()
    | Some c when is_command_end c -> ()
    | Some '{' ->
      words := Ast.Braced (parse_braced st) :: !words;
      go ()
    | Some '"' ->
      words := Ast.Frags (parse_quoted st) :: !words;
      go ()
    | Some _ ->
      let frags =
        parse_fragments st ~stop:(fun c ->
            is_word_space c || is_command_end c || (in_bracket && c = ']'))
      in
      words := Ast.Frags frags :: !words;
      go ()
  in
  go ();
  List.rev !words

and parse_script st ~in_bracket =
  let commands = ref [] in
  let rec go () =
    (* skip whitespace and command separators *)
    let rec skip () =
      match peek st with
      | Some c when is_word_space c || is_command_end c ->
        advance st;
        skip ()
      | Some _ | None -> ()
    in
    skip ();
    match peek st with
    | None -> if in_bracket then fail "unterminated [ bracket"
    | Some ']' when in_bracket -> advance st
    | Some '#' ->
      (* comment to end of line *)
      let rec eat () =
        match peek st with
        | Some '\n' | None -> ()
        | Some '\\' when st.pos + 1 < String.length st.src ->
          advance st;
          advance st;
          eat ()
        | Some _ ->
          advance st;
          eat ()
      in
      eat ();
      go ()
    | Some _ ->
      let words = parse_command st ~in_bracket in
      if words <> [] then commands := Ast.command words :: !commands;
      go ()
  in
  go ();
  List.rev !commands

let script src =
  let st = { src; pos = 0 } in
  let result = parse_script st ~in_bracket:false in
  result

let fragments src =
  let st = { src; pos = 0 } in
  parse_fragments st ~stop:(fun _ -> false)

let script_result src =
  match script src with
  | s -> Ok s
  | exception Syntax_error msg -> Error msg

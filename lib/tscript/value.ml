let int_of s = int_of_string_opt (String.trim s)

let float_of s =
  match float_of_string_opt (String.trim s) with
  | Some f -> Some f
  | None -> Option.map float_of_int (int_of s)

let truthy s =
  match String.lowercase_ascii (String.trim s) with
  | "" | "0" | "false" | "no" | "off" -> false
  | "1" | "true" | "yes" | "on" -> true
  | other -> (
    match float_of_string_opt other with Some f -> f <> 0.0 | None -> true)

let of_bool b = if b then "1" else "0"

(* loop counters and list indices render the same small integers over and
   over; share one immutable string per value instead of re-allocating *)
let small_ints = Array.init 1024 string_of_int
let of_int i = if i >= 0 && i < 1024 then Array.unsafe_get small_ints i else string_of_int i

let of_float f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else
    let s = Printf.sprintf "%.12g" f in
    s

(* An element needs quoting if it is empty or contains list metacharacters. *)
let needs_quoting s =
  s = ""
  || String.exists
       (fun c ->
         match c with
         | ' ' | '\t' | '\n' | '\r' | ';' | '"' | '\\' | '{' | '}' | '[' | ']' | '$' -> true
         | _ -> false)
       s

let braces_balanced s =
  let depth = ref 0 in
  let ok = ref true in
  String.iter
    (fun c ->
      if c = '{' then incr depth
      else if c = '}' then begin
        decr depth;
        if !depth < 0 then ok := false
      end)
    s;
  !ok && !depth = 0

let backslash_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | ' ' | ';' | '"' | '\\' | '{' | '}' | '[' | ']' | '$' ->
        Buffer.add_char b '\\';
        Buffer.add_char b c
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | _ -> Buffer.add_char b c)
    s;
  Buffer.contents b

let quote_element s =
  if not (needs_quoting s) then s
    (* backslashes inside braces would be re-interpreted as escape pairs on
       reparse, so only brace-quote backslash-free strings *)
  else if braces_balanced s && not (String.contains s '\\') then "{" ^ s ^ "}"
  else backslash_escape s

let of_list elems = String.concat " " (List.map quote_element elems)

exception Bad of string

let to_list_aux s =
  let n = String.length s in
  let out = ref [] in
  let buf = Buffer.create 16 in
  let i = ref 0 in
  let is_space c = c = ' ' || c = '\t' || c = '\n' || c = '\r' in
  let flush_word started = if started then out := Buffer.contents buf :: !out in
  let unescape c =
    match c with 'n' -> '\n' | 't' -> '\t' | 'r' -> '\r' | other -> other
  in
  while !i < n do
    (* skip leading whitespace *)
    while !i < n && is_space s.[!i] do
      incr i
    done;
    if !i < n then begin
      Buffer.clear buf;
      if s.[!i] = '{' then begin
        let depth = ref 1 in
        incr i;
        while !i < n && !depth > 0 do
          let c = s.[!i] in
          if c = '\\' && !i + 1 < n then begin
            Buffer.add_char buf c;
            Buffer.add_char buf s.[!i + 1];
            i := !i + 2
          end
          else begin
            if c = '{' then incr depth else if c = '}' then decr depth;
            if !depth > 0 then Buffer.add_char buf c;
            incr i
          end
        done;
        if !depth > 0 then raise (Bad "unbalanced braces in list");
        if !i < n && not (is_space s.[!i]) then raise (Bad "junk after closing brace");
        out := Buffer.contents buf :: !out
      end
      else if s.[!i] = '"' then begin
        incr i;
        let closed = ref false in
        while !i < n && not !closed do
          let c = s.[!i] in
          if c = '\\' && !i + 1 < n then begin
            Buffer.add_char buf (unescape s.[!i + 1]);
            i := !i + 2
          end
          else if c = '"' then begin
            closed := true;
            incr i
          end
          else begin
            Buffer.add_char buf c;
            incr i
          end
        done;
        if not !closed then raise (Bad "unbalanced quotes in list");
        out := Buffer.contents buf :: !out
      end
      else begin
        let stop = ref false in
        while !i < n && not !stop do
          let c = s.[!i] in
          if is_space c then stop := true
          else if c = '\\' && !i + 1 < n then begin
            Buffer.add_char buf (unescape s.[!i + 1]);
            i := !i + 2
          end
          else begin
            Buffer.add_char buf c;
            incr i
          end
        done;
        flush_word true
      end
    end
  done;
  List.rev !out

let to_list s = try Ok (to_list_aux s) with Bad msg -> Error msg

let to_list_exn s =
  match to_list s with Ok l -> l | Error msg -> invalid_arg ("Value.to_list_exn: " ^ msg)

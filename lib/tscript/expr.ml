exception Error of string

type num = Int of int | Float of float | Str of string

let fail msg = raise (Error msg)

(* --- lexer ------------------------------------------------------------ *)

type token =
  | Tnum of num
  | Tstr of string
  | Tvar of string
  | Tcmd of string
  | Tident of string (* function name *)
  | Top of string
  | Tlparen
  | Trparen
  | Tcomma
  | Teof

type lexer = { src : string; mutable pos : int; mutable tok : token }

let is_digit c = c >= '0' && c <= '9'
let is_ident_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || is_digit c || c = '_'

let rec next_token lx =
  let n = String.length lx.src in
  while lx.pos < n && (lx.src.[lx.pos] = ' ' || lx.src.[lx.pos] = '\t' || lx.src.[lx.pos] = '\n') do
    lx.pos <- lx.pos + 1
  done;
  if lx.pos >= n then Teof
  else
    let c = lx.src.[lx.pos] in
    if is_digit c || (c = '.' && lx.pos + 1 < n && is_digit lx.src.[lx.pos + 1]) then begin
      let start = lx.pos in
      let seen_dot = ref false and seen_exp = ref false in
      let continue = ref true in
      while !continue && lx.pos < n do
        let d = lx.src.[lx.pos] in
        if is_digit d then lx.pos <- lx.pos + 1
        else if d = '.' && not !seen_dot && not !seen_exp then begin
          seen_dot := true;
          lx.pos <- lx.pos + 1
        end
        else if (d = 'e' || d = 'E') && not !seen_exp && lx.pos + 1 < n
                && (is_digit lx.src.[lx.pos + 1]
                   || ((lx.src.[lx.pos + 1] = '+' || lx.src.[lx.pos + 1] = '-')
                      && lx.pos + 2 < n && is_digit lx.src.[lx.pos + 2])) then begin
          seen_exp := true;
          lx.pos <- lx.pos + (if is_digit lx.src.[lx.pos + 1] then 1 else 2)
        end
        else continue := false
      done;
      let text = String.sub lx.src start (lx.pos - start) in
      if !seen_dot || !seen_exp then Tnum (Float (float_of_string text))
      else
        match int_of_string_opt text with
        | Some i -> Tnum (Int i)
        | None -> Tnum (Float (float_of_string text))
    end
    else if c = '$' then begin
      lx.pos <- lx.pos + 1;
      if lx.pos < n && lx.src.[lx.pos] = '{' then begin
        let start = lx.pos + 1 in
        let close = String.index_from_opt lx.src start '}' in
        match close with
        | None -> fail "unterminated ${ in expression"
        | Some e ->
          lx.pos <- e + 1;
          Tvar (String.sub lx.src start (e - start))
      end
      else begin
        let start = lx.pos in
        while lx.pos < n && is_ident_char lx.src.[lx.pos] do
          lx.pos <- lx.pos + 1
        done;
        if lx.pos = start then fail "bare $ in expression";
        let name = String.sub lx.src start (lx.pos - start) in
        (* array element: pass "name(raw index)" through to the lookup,
           which substitutes the index in the caller's scope *)
        if lx.pos < n && lx.src.[lx.pos] = '(' then begin
          let istart = lx.pos in
          let depth = ref 0 in
          let continue = ref true in
          while !continue && lx.pos < n do
            (match lx.src.[lx.pos] with
            | '(' -> incr depth
            | ')' -> decr depth
            | _ -> ());
            lx.pos <- lx.pos + 1;
            if !depth = 0 then continue := false
          done;
          if !depth > 0 then fail "unterminated array index in expression";
          Tvar (name ^ String.sub lx.src istart (lx.pos - istart))
        end
        else Tvar name
      end
    end
    else if c = '[' then begin
      (* balanced bracket scan; the interpreter evaluates the inside *)
      let start = lx.pos + 1 in
      let depth = ref 1 in
      lx.pos <- lx.pos + 1;
      while lx.pos < n && !depth > 0 do
        (match lx.src.[lx.pos] with
        | '[' -> incr depth
        | ']' -> decr depth
        | _ -> ());
        lx.pos <- lx.pos + 1
      done;
      if !depth > 0 then fail "unterminated [ in expression";
      Tcmd (String.sub lx.src start (lx.pos - 1 - start))
    end
    else if c = '"' || c = '{' then begin
      let close_char = if c = '"' then '"' else '}' in
      let buf = Buffer.create 16 in
      lx.pos <- lx.pos + 1;
      let depth = ref 1 in
      let finished = ref false in
      while lx.pos < n && not !finished do
        let d = lx.src.[lx.pos] in
        if c = '{' && d = '{' then begin
          incr depth;
          Buffer.add_char buf d;
          lx.pos <- lx.pos + 1
        end
        else if d = close_char then begin
          decr depth;
          if !depth = 0 then begin
            finished := true;
            lx.pos <- lx.pos + 1
          end
          else begin
            Buffer.add_char buf d;
            lx.pos <- lx.pos + 1
          end
        end
        else begin
          Buffer.add_char buf d;
          lx.pos <- lx.pos + 1
        end
      done;
      if not !finished then fail "unterminated string in expression";
      Tstr (Buffer.contents buf)
    end
    else if is_ident_char c then begin
      let start = lx.pos in
      while lx.pos < n && is_ident_char lx.src.[lx.pos] do
        lx.pos <- lx.pos + 1
      done;
      let name = String.sub lx.src start (lx.pos - start) in
      match name with
      | "eq" | "ne" | "in" | "ni" -> Top name
      | _ -> Tident name
    end
    else begin
      let two =
        if lx.pos + 1 < n then Some (String.sub lx.src lx.pos 2) else None
      in
      match two with
      | Some (("==" | "!=" | "<=" | ">=" | "&&" | "||" | "**") as op) ->
        lx.pos <- lx.pos + 2;
        Top op
      | Some _ | None -> (
        match c with
        | '+' | '-' | '*' | '/' | '%' | '<' | '>' | '!' | '~' | '?' | ':' ->
          lx.pos <- lx.pos + 1;
          Top (String.make 1 c)
        | '(' ->
          lx.pos <- lx.pos + 1;
          Tlparen
        | ')' ->
          lx.pos <- lx.pos + 1;
          Trparen
        | ',' ->
          lx.pos <- lx.pos + 1;
          Tcomma
        | _ -> fail (Printf.sprintf "unexpected character %C in expression" c))
    end

and advance lx = lx.tok <- next_token lx

(* --- numeric coercions ------------------------------------------------- *)

let as_num v =
  match v with
  | Int _ | Float _ -> v
  | Str s -> (
    match Value.int_of s with
    | Some i -> Int i
    | None -> (
      match Value.float_of s with
      | Some f -> Float f
      | None -> fail (Printf.sprintf "expected number, got %S" s)))

let as_float v =
  match as_num v with Int i -> float_of_int i | Float f -> f | Str _ -> assert false

let as_int v =
  match as_num v with
  | Int i -> i
  | Float f -> int_of_float f
  | Str _ -> assert false

let truthy_num v =
  match v with
  | Int i -> i <> 0
  | Float f -> f <> 0.0
  | Str s -> Value.truthy s

let num_to_string = function
  | Int i -> Value.of_int i
  | Float f -> Value.of_float f
  | Str s -> s

(* numeric binop with int preservation; nested matches keep the hot
   int/int case free of tuple and float boxing *)
let arith fi ff a b =
  match as_num a with
  | Int x -> (
    match as_num b with
    | Int y -> Int (fi x y)
    | Float y -> Float (ff (float_of_int x) y)
    | Str _ -> assert false)
  | Float x -> (
    match as_num b with
    | Int y -> Float (ff x (float_of_int y))
    | Float y -> Float (ff x y)
    | Str _ -> assert false)
  | Str _ -> assert false

(* string operand → numeric representation if it parses, itself otherwise *)
let norm v =
  match v with
  | Int _ | Float _ -> v
  | Str s -> (
    match Value.int_of s with
    | Some i -> Int i
    | None -> ( match Value.float_of s with Some f -> Float f | None -> v))

let compare_vals a b =
  (* numeric comparison when both sides parse as numbers, else string *)
  match norm a with
  | Int x -> (
    match norm b with
    | Int y -> Int.compare x y
    | Float y -> Float.compare (float_of_int x) y
    | Str s -> compare (num_to_string a) s)
  | Float x -> (
    match norm b with
    | Int y -> Float.compare x (float_of_int y)
    | Float y -> Float.compare x y
    | Str s -> compare (num_to_string a) s)
  | Str sa -> (
    match norm b with
    | Int _ | Float _ -> compare sa (num_to_string b)
    | Str sb -> compare sa sb)

(* --- compiled form ------------------------------------------------------ *)

(* Compilation separates the one-time work (lexing, parsing, constant
   recognition) from the per-evaluation work (variable/command lookup and
   arithmetic).  The tree is immutable pure data, so a compiled expression
   can be cached — per interpreter or shared across the interpreters of a
   site — and re-evaluated with late-bound lookups, exactly like the
   source string but without the lexer in the loop. *)
(* operators are resolved to opcodes at compile time: evaluation dispatches
   on an immediate tag instead of re-matching the operator string *)
type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | Pow
  | Lt
  | Le
  | Gt
  | Ge
  | EqNum
  | NeNum
  | StrEq
  | StrNe
  | InList
  | NiList

let binop_of_string = function
  | "+" -> Add
  | "-" -> Sub
  | "*" -> Mul
  | "/" -> Div
  | "%" -> Mod
  | "**" -> Pow
  | "<" -> Lt
  | "<=" -> Le
  | ">" -> Gt
  | ">=" -> Ge
  | "==" -> EqNum
  | "!=" -> NeNum
  | "eq" -> StrEq
  | "ne" -> StrNe
  | "in" -> InList
  | "ni" -> NiList
  | op -> fail (Printf.sprintf "unknown operator %s" op)

type ast =
  | Const of num
  | Var of string (* "$name" or "name(raw index)"; resolved via lookup *)
  | Cmd of string (* "[script]"; resolved via eval_cmd *)
  | Not of ast
  | Neg of ast
  | Pos of ast
  | BitNot of ast
  | Bin of binop * ast * ast (* strict arithmetic/comparison operator *)
  | And of ast * ast (* lazy: rhs untouched when lhs is false *)
  | Or of ast * ast (* lazy: rhs untouched when lhs is true *)
  | Ternary of ast * ast * ast (* lazy: only the chosen arm evaluates *)
  | Call of string * ast list

(* --- parser (source -> ast) -------------------------------------------- *)

type pctx = { lx : lexer }

let rec parse_primary ctx =
  match ctx.lx.tok with
  | Tnum v ->
    advance ctx.lx;
    Const v
  | Tstr s ->
    advance ctx.lx;
    Const (Str s)
  | Tvar name ->
    advance ctx.lx;
    Var name
  | Tcmd script ->
    advance ctx.lx;
    Cmd script
  | Tlparen ->
    advance ctx.lx;
    let v = parse_ternary ctx in
    (match ctx.lx.tok with
    | Trparen -> advance ctx.lx
    | _ -> fail "expected )");
    v
  | Top "-" ->
    advance ctx.lx;
    Neg (parse_unary ctx)
  | Top "+" ->
    advance ctx.lx;
    Pos (parse_unary ctx)
  | Top "!" ->
    advance ctx.lx;
    Not (parse_unary ctx)
  | Top "~" ->
    advance ctx.lx;
    BitNot (parse_unary ctx)
  | Tident name ->
    advance ctx.lx;
    parse_call ctx name
  | Top op -> fail (Printf.sprintf "unexpected operator %s" op)
  | Trparen -> fail "unexpected )"
  | Tcomma -> fail "unexpected ,"
  | Teof -> fail "unexpected end of expression"

and parse_unary ctx = parse_primary ctx

and parse_call ctx name =
  match name with
  (* bare boolean words, with or without call syntax *)
  | "true" | "yes" | "on" ->
    skip_bool_args ctx;
    Const (Int 1)
  | "false" | "no" | "off" ->
    skip_bool_args ctx;
    Const (Int 0)
  | _ ->
    let args =
      match ctx.lx.tok with
      | Tlparen ->
        advance ctx.lx;
        if ctx.lx.tok = Trparen then begin
          advance ctx.lx;
          []
        end
        else begin
          let rec go acc =
            let v = parse_ternary ctx in
            match ctx.lx.tok with
            | Tcomma ->
              advance ctx.lx;
              go (v :: acc)
            | Trparen ->
              advance ctx.lx;
              List.rev (v :: acc)
            | _ -> fail "expected , or ) in function call"
          in
          go []
        end
      | _ -> []
    in
    (* arity is known at compile time; reject unknown functions here so the
       error surfaces on first evaluation, cached or not *)
    check_known name (List.length args);
    Call (name, args)

and skip_bool_args ctx =
  match ctx.lx.tok with
  | Tlparen ->
    advance ctx.lx;
    let rec go () =
      let _ = parse_ternary ctx in
      match ctx.lx.tok with
      | Tcomma ->
        advance ctx.lx;
        go ()
      | Trparen -> advance ctx.lx
      | _ -> fail "expected , or ) in function call"
    in
    if ctx.lx.tok = Trparen then advance ctx.lx else go ()
  | _ -> ()

and check_known name arity =
  let ok =
    match (name, arity) with
    | ("abs" | "int" | "round" | "floor" | "ceil" | "double" | "sqrt"), 1 -> true
    | ("exp" | "log" | "log10" | "sin" | "cos" | "tan"), 1 -> true
    | ("pow" | "fmod"), 2 -> true
    | ("min" | "max"), n when n >= 1 -> true
    | _ -> false
  in
  if not ok then fail (Printf.sprintf "unknown function %s/%d" name arity)

and parse_pow ctx =
  let base = parse_unary ctx in
  match ctx.lx.tok with
  | Top "**" ->
    advance ctx.lx;
    (* right-associative *)
    Bin (Pow, base, parse_pow ctx)
  | _ -> base

and parse_mul ctx =
  let rec go acc =
    match ctx.lx.tok with
    | Top (("*" | "/" | "%") as op) ->
      advance ctx.lx;
      go (Bin (binop_of_string op, acc, parse_pow ctx))
    | _ -> acc
  in
  go (parse_pow ctx)

and parse_add ctx =
  let rec go acc =
    match ctx.lx.tok with
    | Top (("+" | "-") as op) ->
      advance ctx.lx;
      go (Bin (binop_of_string op, acc, parse_mul ctx))
    | _ -> acc
  in
  go (parse_mul ctx)

and parse_cmp ctx =
  let rec go acc =
    match ctx.lx.tok with
    | Top (("<" | "<=" | ">" | ">=") as op) ->
      advance ctx.lx;
      go (Bin (binop_of_string op, acc, parse_add ctx))
    | _ -> acc
  in
  go (parse_add ctx)

and parse_eq ctx =
  let rec go acc =
    match ctx.lx.tok with
    | Top (("==" | "!=" | "eq" | "ne" | "in" | "ni") as op) ->
      advance ctx.lx;
      go (Bin (binop_of_string op, acc, parse_cmp ctx))
    | _ -> acc
  in
  go (parse_cmp ctx)

and parse_and ctx =
  let acc = parse_eq ctx in
  match ctx.lx.tok with
  | Top "&&" ->
    advance ctx.lx;
    And (acc, parse_and ctx)
  | _ -> acc

and parse_or ctx =
  let acc = parse_and ctx in
  match ctx.lx.tok with
  | Top "||" ->
    advance ctx.lx;
    Or (acc, parse_or ctx)
  | _ -> acc

and parse_ternary ctx =
  let cond = parse_or ctx in
  match ctx.lx.tok with
  | Top "?" ->
    advance ctx.lx;
    let then_ = parse_ternary ctx in
    (match ctx.lx.tok with
    | Top ":" -> advance ctx.lx
    | _ -> fail "expected : in ?: expression");
    (* right-associative: the else arm may itself be a ternary *)
    Ternary (cond, then_, parse_ternary ctx)
  | _ -> cond

let compile src =
  let lx = { src; pos = 0; tok = Teof } in
  advance lx;
  let ctx = { lx } in
  let ast = parse_ternary ctx in
  (match ctx.lx.tok with
  | Teof -> ()
  | _ -> fail "trailing characters in expression");
  ast

(* --- evaluator (ast -> num) --------------------------------------------- *)

let list_membership opname want a b =
  let elem = num_to_string a in
  match Value.to_list (num_to_string b) with
  | Error msg -> fail (Printf.sprintf "%s: %s" opname msg)
  | Ok l ->
    let mem = List.mem elem l in
    Int (if mem = want then 1 else 0)

let apply_bin op a b =
  match op with
  | Add -> arith ( + ) ( +. ) a b
  | Sub -> arith ( - ) ( -. ) a b
  | Mul -> arith ( * ) ( *. ) a b
  | Div -> (
    match as_num a with
    | Int x -> (
      match as_num b with
      | Int 0 -> fail "division by zero"
      | Int y ->
        (* Tcl floors integer division toward negative infinity *)
        let q = if (x < 0) <> (y < 0) && x mod y <> 0 then (x / y) - 1 else x / y in
        Int q
      | Float y -> Float (float_of_int x /. y)
      | Str _ -> assert false)
    | Float x -> (
      match as_num b with
      | Int y -> Float (x /. float_of_int y)
      | Float y -> Float (x /. y)
      | Str _ -> assert false)
    | Str _ -> assert false)
  | Mod ->
    let x = as_int a and y = as_int b in
    if y = 0 then fail "modulo by zero";
    let m = x mod y in
    let m = if m <> 0 && (m < 0) <> (y < 0) then m + y else m in
    Int m
  | Pow -> Float (Float.pow (as_float a) (as_float b))
  | Lt -> Int (if compare_vals a b < 0 then 1 else 0)
  | Le -> Int (if compare_vals a b <= 0 then 1 else 0)
  | Gt -> Int (if compare_vals a b > 0 then 1 else 0)
  | Ge -> Int (if compare_vals a b >= 0 then 1 else 0)
  | EqNum -> Int (if compare_vals a b = 0 then 1 else 0)
  | NeNum -> Int (if compare_vals a b <> 0 then 1 else 0)
  | StrEq -> Int (if String.equal (num_to_string a) (num_to_string b) then 1 else 0)
  | StrNe -> Int (if String.equal (num_to_string a) (num_to_string b) then 0 else 1)
  | InList -> list_membership "in" true a b
  | NiList -> list_membership "ni" false a b

let apply_fn name args =
  match (name, args) with
  | "abs", [ v ] -> (
    match as_num v with
    | Int i -> Int (abs i)
    | Float f -> Float (Float.abs f)
    | Str _ -> assert false)
  | "int", [ v ] -> Int (as_int v)
  | "round", [ v ] -> Int (int_of_float (Float.round (as_float v)))
  | "floor", [ v ] -> Float (Float.floor (as_float v))
  | "ceil", [ v ] -> Float (Float.ceil (as_float v))
  | "double", [ v ] -> Float (as_float v)
  | "sqrt", [ v ] -> Float (sqrt (as_float v))
  | "exp", [ v ] -> Float (exp (as_float v))
  | "log", [ v ] -> Float (log (as_float v))
  | "log10", [ v ] -> Float (log10 (as_float v))
  | "sin", [ v ] -> Float (sin (as_float v))
  | "cos", [ v ] -> Float (cos (as_float v))
  | "tan", [ v ] -> Float (tan (as_float v))
  | "pow", [ a; b ] -> Float (Float.pow (as_float a) (as_float b))
  | "fmod", [ a; b ] -> Float (Float.rem (as_float a) (as_float b))
  | "min", (_ :: _ as vs) ->
    List.fold_left (fun acc v -> if compare_vals v acc < 0 then v else acc) (List.hd vs) vs
  | "max", (_ :: _ as vs) ->
    List.fold_left (fun acc v -> if compare_vals v acc > 0 then v else acc) (List.hd vs) vs
  | _ -> fail (Printf.sprintf "unknown function %s/%d" name (List.length args))

let rec eval_node ~lookup ~eval_cmd node =
  match node with
  | Const v -> v
  | Var name -> Str (lookup name)
  | Cmd script -> Str (eval_cmd script)
  | Not a -> Int (if truthy_num (eval_node ~lookup ~eval_cmd a) then 0 else 1)
  | Neg a -> (
    match as_num (eval_node ~lookup ~eval_cmd a) with
    | Int i -> Int (-i)
    | Float f -> Float (-.f)
    | Str _ -> assert false)
  | Pos a -> as_num (eval_node ~lookup ~eval_cmd a)
  | BitNot a -> Int (lnot (as_int (eval_node ~lookup ~eval_cmd a)))
  | Bin (op, a, b) ->
    (* strict, left-to-right *)
    let va = eval_node ~lookup ~eval_cmd a in
    let vb = eval_node ~lookup ~eval_cmd b in
    apply_bin op va vb
  | And (a, b) ->
    if not (truthy_num (eval_node ~lookup ~eval_cmd a)) then Int 0
    else Int (if truthy_num (eval_node ~lookup ~eval_cmd b) then 1 else 0)
  | Or (a, b) ->
    if truthy_num (eval_node ~lookup ~eval_cmd a) then Int 1
    else Int (if truthy_num (eval_node ~lookup ~eval_cmd b) then 1 else 0)
  | Ternary (c, a, b) ->
    if truthy_num (eval_node ~lookup ~eval_cmd c) then eval_node ~lookup ~eval_cmd a
    else eval_node ~lookup ~eval_cmd b
  | Call (name, args) ->
    apply_fn name (List.map (eval_node ~lookup ~eval_cmd) args)

let eval_ast ~lookup ~eval_cmd ast = num_to_string (eval_node ~lookup ~eval_cmd ast)
let eval_ast_bool ~lookup ~eval_cmd ast = truthy_num (eval_node ~lookup ~eval_cmd ast)

(* one-shot conveniences: compile + evaluate, no cache *)
let eval ~lookup ~eval_cmd src = eval_ast ~lookup ~eval_cmd (compile src)
let eval_bool ~lookup ~eval_cmd src = eval_ast_bool ~lookup ~eval_cmd (compile src)

(* The AST is parametric over the interpreter's command-function type so
   each command node can carry a monomorphic inline cache (the interpreter
   instantiates ['fn] with its own function type; the parser never touches
   the slot).  See {!command} for the cache discipline. *)

type 'fn fragment =
  | Lit of string
  | Var of string
  | VarElem of string * 'fn fragment list
  | Cmd of 'fn script

and 'fn word = Braced of string | Frags of 'fn fragment list

and 'fn command = {
  words : 'fn word list;
  (* Inline command cache: the resolved command function, valid only for
     the interpreter [c_id] while its command table is at [c_epoch].
     Cached ASTs are shared between interpreters, so both stamps are
     checked before the slot is trusted. *)
  mutable c_id : int;
  mutable c_epoch : int;
  mutable c_fn : 'fn option;
}

and 'fn script = 'fn command list

let command words = { words; c_id = -1; c_epoch = -1; c_fn = None }

let rec pp_fragment fmt = function
  | Lit s -> Format.fprintf fmt "Lit(%S)" s
  | Var v -> Format.fprintf fmt "Var(%s)" v
  | VarElem (v, idx) ->
    Format.fprintf fmt "VarElem(%s, [%a])" v
      (Format.pp_print_list ~pp_sep:(fun f () -> Format.fprintf f "; ") pp_fragment)
      idx
  | Cmd s -> Format.fprintf fmt "Cmd(%a)" pp_script s

and pp_word fmt = function
  | Braced s -> Format.fprintf fmt "Braced(%S)" s
  | Frags fs ->
    Format.fprintf fmt "Frags[%a]"
      (Format.pp_print_list ~pp_sep:(fun f () -> Format.fprintf f "; ") pp_fragment)
      fs

and pp_command fmt cmd =
  Format.fprintf fmt "(%a)"
    (Format.pp_print_list ~pp_sep:(fun f () -> Format.fprintf f " ") pp_word)
    cmd.words

and pp_script fmt script =
  Format.pp_print_list ~pp_sep:(fun f () -> Format.fprintf f ";@ ") pp_command fmt script

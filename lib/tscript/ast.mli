(** Parsed form of a TScript script.

    A script is a list of commands; a command is a list of words; a word is
    either a brace-quoted literal (no substitution — how Tcl defers
    evaluation of bodies) or a sequence of fragments that are substituted
    and concatenated at evaluation time.

    The types are parametric over ['fn], the interpreter's command-function
    type: each command node carries an inline cache of its resolved command
    function (see {!command}), and parametrising keeps this module free of
    a dependency on the interpreter.  The parser always leaves the cache
    empty, so parsed scripts are polymorphic in ['fn]. *)

type 'fn fragment =
  | Lit of string        (** literal text *)
  | Var of string        (** [$name] or [${name}] *)
  | VarElem of string * 'fn fragment list
      (** [$name(index)] — a Tcl array element; the index is itself a
          fragment sequence, so [$a($i)] works *)
  | Cmd of 'fn script    (** [\[...\]] command substitution *)

and 'fn word =
  | Braced of string     (** [{...}]: verbatim, one word *)
  | Frags of 'fn fragment list

and 'fn command = {
  words : 'fn word list;
  mutable c_id : int;
      (** interpreter uid the cached function belongs to; [-1] = empty *)
  mutable c_epoch : int;
      (** that interpreter's command-table epoch at fill time *)
  mutable c_fn : 'fn option;
      (** the resolved command function, trusted only when both stamps
          match the evaluating interpreter *)
}

and 'fn script = 'fn command list

val command : 'fn word list -> 'fn command
(** Build a command node with an empty cache slot. *)

val pp_script : Format.formatter -> 'fn script -> unit
(** Debug printer. *)

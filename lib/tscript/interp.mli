(** The TScript interpreter.

    One interpreter instance is the "place where agents execute" of the
    paper (§6): each simulated site runs one.  Agent code arrives as source
    text (in a CODE folder), is parsed here, and runs against the commands
    the host has registered — the TACOMA primitives ([meet], folder access,
    migration) are host commands, not language features, exactly as in the
    Tcl prototype.

    Resource metering: every command execution consumes one step; when the
    step budget is exhausted the run aborts with {!Resource_exhausted},
    which deliberately cannot be caught by the script's own [catch] — this
    is the enforcement hook for the paper's §3 observation that charging
    for service limits the damage a run-away agent can do. *)

type t

exception Error_exc of string
(** A script-level error ([error], bad arguments, unknown command...).
    Caught by the script's [catch] and by {!eval}. *)

exception Return_exc of string
exception Break_exc
exception Continue_exc
(** Control-flow signals; leaking past their construct is an error. *)

exception Resource_exhausted
(** Step budget used up.  Not catchable from inside the script. *)

(** {1 Compile caches}

    Parsing (script text → AST) and expression compilation (expr source →
    {!Expr.ast}) are memoised in bounded LRU caches.  A [caches] value can
    be shared between interpreter instances: the kernel creates one per
    simulation and threads it through every per-activation interpreter, so
    an agent's loop condition is compiled once per site, not once per
    activation.

    Sharing is only safe {e within} one simulation.  A [caches] value is
    mutable (LRU state, inline command caches, the interpreter-uid
    fountain), so it must never be shared across simulations running
    concurrently on a {!Tacoma_util.Pool} — each pool task creates its own
    kernel and therefore its own cache pair. *)

type caches

val create_caches : ?parse_entries:int -> ?expr_entries:int -> unit -> caches
(** Both bounds default to 512 entries; least-recently-used entries are
    evicted one at a time when a bound is exceeded. *)

val create : ?step_limit:int -> ?max_depth:int -> ?caches:caches -> unit -> t
(** [step_limit] defaults to unlimited; [max_depth] (proc-call nesting)
    defaults to 256.  [caches] defaults to a fresh private pair — pass a
    shared value to reuse compiled code across interpreters.  The standard
    command set is pre-installed. *)

(** {1 Evaluation} *)

val eval : t -> string -> (string, string) result
(** Evaluate a script; [Ok result-of-last-command] or [Error message].
    [return] at top level yields its value.  {!Resource_exhausted} is NOT
    caught here — the host decides what an aborted agent means. *)

val eval_exn : t -> string -> string
(** @raise Error_exc instead of returning [Error]. *)

val call : t -> string -> string list -> string
(** [call t cmd args] invokes a command or proc directly from the host.
    @raise Error_exc on script errors. *)

(** {1 Host commands} *)

val register : t -> string -> (t -> string list -> string) -> unit
(** Host commands may raise {!Error_exc} to signal script-visible errors.
    Registering over an existing name replaces it. *)

val unregister : t -> string -> unit
val has_command : t -> string -> bool
val command_names : t -> string list

(** {1 Variables (global scope)} *)

val set_var : t -> string -> string -> unit
val get_var_opt : t -> string -> string option
val unset_var : t -> string -> unit

(** {1 Output}

    [puts] appends to an internal buffer by default; hosts can redirect. *)

val set_output : t -> (string -> unit) -> unit
val take_output : t -> string
(** Return and clear the buffered output. *)

(** {1 Metering} *)

val steps_used : t -> int
val set_step_limit : t -> int option -> unit
val step_limit : t -> int option
val reset_steps : t -> unit

val charge : t -> int -> unit
(** Host commands use this to bill extra steps for expensive operations.
    @raise Resource_exhausted when the budget runs out. *)

(** {1 Profiling}

    Cheap always-on counters, read after a run by the kernel's flight
    recorder ({!steps_used} is the billing view; these are the shape). *)

type profile = {
  commands : int;   (** command executions (same granularity as steps) *)
  proc_calls : int; (** user proc invocations *)
  max_depth : int;  (** deepest proc nesting reached *)
  parse_hits : int; (** script parse-cache hits by this interpreter *)
  parse_misses : int;      (** scripts parsed (cache misses) *)
  parse_evictions : int;   (** parse-cache evictions this interpreter caused *)
  expr_hits : int;         (** compiled-expression cache hits *)
  expr_misses : int;
      (** expression compilations — i.e. the number of distinct-at-the-time
          expressions this interpreter had to compile *)
  expr_evictions : int;    (** expr-cache evictions this interpreter caused *)
}

val profile : t -> profile

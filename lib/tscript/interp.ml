exception Error_exc of string
exception Return_exc of string
exception Break_exc
exception Continue_exc
exception Resource_exhausted

module Lru = Tacoma_util.Lru

type command_fn = t -> string list -> string

(* AST nodes instantiated with this interpreter's command type, so inline
   command caches hold the resolved functions directly *)
and script = command_fn Ast.script

(* Compiled-code caches: parsed scripts and compiled expressions, keyed by
   source string, LRU-bounded.  Parsed ASTs carry per-node inline caches
   but those validate against the evaluating interpreter, so a cache may be
   private to one interpreter (the default) or shared by every interpreter
   a site creates — the kernel shares one per simulation, which is what
   lets the second activation of an agent skip the parser entirely. *)
and caches = {
  parsed : (string, script) Lru.t;
  exprs : (string, Expr.ast) Lru.t;
  mutable next_uid : int;
      (* uid fountain for the interpreters sharing this cache pair; lives
         here (not in a global) so concurrent simulations — each with its
         own caches — stay deterministic and race-free *)
}

and t = {
  uid : int; (* distinguishes interpreters sharing cached ASTs *)
  commands : (string, command_fn) Hashtbl.t;
  mutable cmd_epoch : int;
      (* bumped by register/unregister so stale inline caches are refused *)
  proc_bodies : (string, string * string) Hashtbl.t; (* name -> params, body (introspection) *)
  globals : (string, string) Hashtbl.t;
  global_arrays : (string, (string, string) Hashtbl.t) Hashtbl.t;
  mutable frames : frame list; (* innermost first; [] means global scope *)
  mutable steps : int;
  mutable limit : int option;
  mutable depth : int;
  max_depth : int;
  mutable prof_commands : int;
  mutable prof_proc_calls : int;
  mutable prof_max_depth : int;
  mutable prof_parse_hits : int;
  mutable prof_parse_misses : int;
  mutable prof_parse_evictions : int;
  mutable prof_expr_hits : int;
  mutable prof_expr_misses : int;
  mutable prof_expr_evictions : int;
  caches : caches;
  (* 1-entry memos over the shared caches, validated by physical equality
     of the source string: a loop re-evaluating the same word of a cached
     AST skips even the cache's hash lookup *)
  mutable memo_parse : (string * script) option;
  mutable memo_expr : (string * Expr.ast) option;
  (* the two expr callbacks close only over [t]; allocated once here
     instead of once per expression evaluation *)
  mutable expr_lookup_fn : string -> string;
  mutable expr_eval_cmd_fn : string -> string;
  out_buf : Buffer.t;
  mutable output : string -> unit;
}

(* Only [vars] is allocated up front: most proc frames never touch arrays,
   [global] links or [upvar] aliases, so those three tables materialise on
   first write.  This cuts a frame from four hashtable allocations to one. *)
and frame = {
  vars : (string, string) Hashtbl.t;
  mutable arrays : (string, (string, string) Hashtbl.t) Hashtbl.t option;
  mutable linked_globals : (string, unit) Hashtbl.t option;
  mutable upvars : (string, frame option * string) Hashtbl.t option;
      (* local alias -> (target frame, None = global scope; target name) *)
}

let err fmt = Printf.ksprintf (fun msg -> raise (Error_exc msg)) fmt

let default_cache_entries = 512

let create_caches ?(parse_entries = default_cache_entries)
    ?(expr_entries = default_cache_entries) () =
  {
    parsed = Lru.create ~budget:parse_entries ();
    exprs = Lru.create ~budget:expr_entries ();
    next_uid = 0;
  }

(* ---- variables -------------------------------------------------------- *)

(* scope resolution: a name in a frame may be linked to the globals
   ([global]) or aliased into another frame ([upvar]); chase the links.
   The lazy tables make the common case (neither [global] nor [upvar]
   used) two pointer tests with no hashtable probe. *)
let rec resolve_scope scope name =
  match scope with
  | None -> (None, name)
  | Some f -> (
    match f.linked_globals with
    | Some lg when Hashtbl.mem lg name -> (None, name)
    | Some _ | None -> (
      match f.upvars with
      | None -> (scope, name)
      | Some uv -> (
        match Hashtbl.find_opt uv name with
        | Some (target, oname) -> resolve_scope target oname
        | None -> (scope, name))))

let current_scope t = match t.frames with [] -> None | f :: _ -> Some f
let resolve_name t name = resolve_scope (current_scope t) name
let scope_vars t = function None -> t.globals | Some f -> f.vars

(* read path: never forces the frame's array table into existence *)
let scope_arrays_opt t = function
  | None -> Some t.global_arrays
  | Some f -> f.arrays

(* write path: materialises the table on first use *)
let scope_arrays_rw t = function
  | None -> t.global_arrays
  | Some f -> (
    match f.arrays with
    | Some h -> h
    | None ->
      let h = Hashtbl.create 4 in
      f.arrays <- Some h;
      h)

let frame_linked_globals f =
  match f.linked_globals with
  | Some h -> h
  | None ->
    let h = Hashtbl.create 4 in
    f.linked_globals <- Some h;
    h

let frame_upvars f =
  match f.upvars with
  | Some h -> h
  | None ->
    let h = Hashtbl.create 4 in
    f.upvars <- Some h;
    h

let resolved_vars t name =
  let scope, n = resolve_name t name in
  (scope_vars t scope, n)

let resolved_arrays_opt t name =
  let scope, n = resolve_name t name in
  (scope_arrays_opt t scope, n)

let resolved_arrays_rw t name =
  let scope, n = resolve_name t name in
  (scope_arrays_rw t scope, n)

(* The accessors below special-case the two overwhelmingly common shapes —
   global scope, and a frame with no [global]/[upvar] links — so a plain
   variable read or write is one hashtable probe with no intermediate
   tuples.  (A [match a, b with] scrutinee compiles without building the
   tuple.)  The general resolver only runs when links exist. *)

let array_exists t name =
  match t.frames with
  | [] -> Hashtbl.length t.global_arrays <> 0 && Hashtbl.mem t.global_arrays name
  | f :: _ -> (
    match (f.linked_globals, f.upvars) with
    | None, None -> ( match f.arrays with None -> false | Some a -> Hashtbl.mem a name)
    | _ -> (
      match resolved_arrays_opt t name with
      | Some tbl, n -> Hashtbl.mem tbl n
      | None, _ -> false))

let get_var_opt t name =
  match t.frames with
  | [] -> Hashtbl.find_opt t.globals name
  | f :: _ -> (
    match (f.linked_globals, f.upvars) with
    | None, None -> Hashtbl.find_opt f.vars name
    | _ ->
      let tbl, n = resolved_vars t name in
      Hashtbl.find_opt tbl n)

let get_var t name =
  match get_var_opt t name with
  | Some v -> v
  | None ->
    if array_exists t name then err "can't read %S: variable is array" name
    else err "can't read %S: no such variable" name

let set_var t name v =
  if array_exists t name then err "can't set %S: variable is array" name;
  match t.frames with
  | [] -> Hashtbl.replace t.globals name v
  | f :: _ -> (
    match (f.linked_globals, f.upvars) with
    | None, None -> Hashtbl.replace f.vars name v
    | _ ->
      let tbl, n = resolved_vars t name in
      Hashtbl.replace tbl n v)

let unset_var t name =
  let vtbl, vn = resolved_vars t name in
  Hashtbl.remove vtbl vn;
  match resolved_arrays_opt t name with
  | Some atbl, an -> Hashtbl.remove atbl an
  | None, _ -> ()

(* ---- array elements ----------------------------------------------------- *)

let get_elem_opt t name index =
  match resolved_arrays_opt t name with
  | Some tbl, n ->
    Option.bind (Hashtbl.find_opt tbl n) (fun arr -> Hashtbl.find_opt arr index)
  | None, _ -> None

let get_elem t name index =
  match get_elem_opt t name index with
  | Some v -> v
  | None -> err "can't read %S(%s): no such element" name index

let set_elem t name index v =
  let vtbl, vn = resolved_vars t name in
  if Hashtbl.mem vtbl vn then err "can't set %S(%s): variable isn't array" name index;
  let tbl, n = resolved_arrays_rw t name in
  let arr =
    match Hashtbl.find_opt tbl n with
    | Some arr -> arr
    | None ->
      let arr = Hashtbl.create 8 in
      Hashtbl.replace tbl n arr;
      arr
  in
  Hashtbl.replace arr index v

let unset_elem t name index =
  match resolved_arrays_opt t name with
  | Some tbl, n -> (
    match Hashtbl.find_opt tbl n with
    | Some arr -> Hashtbl.remove arr index
    | None -> ())
  | None, _ -> ()

(* "name(index)" in a fully-substituted word (set a($i) v arrives here as
   "a(5)"); the index may contain anything except a leading '(' split *)
let split_array_ref s =
  let n = String.length s in
  if n >= 3 && s.[n - 1] = ')' then
    match String.index_opt s '(' with
    | Some i when i > 0 && i < n - 1 -> Some (String.sub s 0 i, String.sub s (i + 1) (n - i - 2))
    | Some i when i > 0 -> Some (String.sub s 0 i, "")
    | _ -> None
  else None

(* generic reference access for commands like set/incr/append/lappend *)
let get_ref_opt t name =
  match split_array_ref name with
  | Some (a, i) -> get_elem_opt t a i
  | None -> get_var_opt t name

let get_ref t name =
  match split_array_ref name with
  | Some (a, i) -> get_elem t a i
  | None -> get_var t name

let set_ref t name v =
  match split_array_ref name with
  | Some (a, i) -> set_elem t a i v
  | None -> set_var t name v

let unset_ref t name =
  match split_array_ref name with
  | Some (a, i) -> unset_elem t a i
  | None -> unset_var t name

(* ---- metering ---------------------------------------------------------- *)

let charge t n =
  t.steps <- t.steps + n;
  match t.limit with
  | Some l when t.steps > l -> raise Resource_exhausted
  | Some _ | None -> ()

let steps_used t = t.steps
let set_step_limit t l = t.limit <- l
let step_limit t = t.limit
let reset_steps t = t.steps <- 0

(* ---- parsing and expression compilation, cached ------------------------ *)

let parse t src =
  match t.memo_parse with
  | Some (s, ast) when s == src ->
    t.prof_parse_hits <- t.prof_parse_hits + 1;
    ast
  | _ -> (
    match Lru.find_opt t.caches.parsed src with
    | Some ast ->
      t.prof_parse_hits <- t.prof_parse_hits + 1;
      t.memo_parse <- Some (src, ast);
      ast
    | None -> (
      t.prof_parse_misses <- t.prof_parse_misses + 1;
      match Parse.script_result src with
      | Error msg -> err "syntax error: %s" msg
      | Ok ast ->
        let e0 = Lru.evictions t.caches.parsed in
        ignore (Lru.add t.caches.parsed src ast);
        t.prof_parse_evictions <-
          t.prof_parse_evictions + (Lru.evictions t.caches.parsed - e0);
        t.memo_parse <- Some (src, ast);
        ast))

(* failed compiles are not cached: the error must re-raise on every
   evaluation, and error paths are never hot *)
let compile_expr t src =
  match t.memo_expr with
  | Some (s, ast) when s == src ->
    t.prof_expr_hits <- t.prof_expr_hits + 1;
    ast
  | _ -> (
    match Lru.find_opt t.caches.exprs src with
    | Some ast ->
      t.prof_expr_hits <- t.prof_expr_hits + 1;
      t.memo_expr <- Some (src, ast);
      ast
    | None ->
      t.prof_expr_misses <- t.prof_expr_misses + 1;
      let ast = try Expr.compile src with Expr.Error msg -> err "expr: %s" msg in
      let e0 = Lru.evictions t.caches.exprs in
      ignore (Lru.add t.caches.exprs src ast);
      t.prof_expr_evictions <- t.prof_expr_evictions + (Lru.evictions t.caches.exprs - e0);
      t.memo_expr <- Some (src, ast);
      ast)

(* ---- evaluation -------------------------------------------------------- *)

let rec eval_word t word =
  match word with
  | Ast.Braced s -> s
  | Ast.Frags [ frag ] -> eval_fragment t frag
  | Ast.Frags frags -> String.concat "" (List.map (eval_fragment t) frags)

and eval_fragment t frag =
  match frag with
  | Ast.Lit s -> s
  | Ast.Var name -> get_var t name
  | Ast.VarElem (name, [ frag ]) -> get_elem t name (eval_fragment t frag)
  | Ast.VarElem (name, index_frags) ->
    get_elem t name (String.concat "" (List.map (eval_fragment t) index_frags))
  | Ast.Cmd script -> eval_ast t script

and eval_command t cmd =
  match cmd.Ast.words with
  | [] -> ""
  | name_word :: arg_words -> (
    charge t 1;
    t.prof_commands <- t.prof_commands + 1;
    (* inline command cache: when this interpreter resolved this node
       before and no command has been (un)registered since, skip the name
       substitution and the table lookup *)
    match cmd.Ast.c_fn with
    | Some fn when cmd.Ast.c_id = t.uid && cmd.Ast.c_epoch = t.cmd_epoch ->
      fn t (eval_args t arg_words)
    | _ -> (
      let name = eval_word t name_word in
      let args = eval_args t arg_words in
      match Hashtbl.find_opt t.commands name with
      | Some fn ->
        (* only a literal name resolves to the same command every time *)
        (match name_word with
        | Ast.Braced _ | Ast.Frags [ Ast.Lit _ ] ->
          cmd.Ast.c_fn <- Some fn;
          cmd.Ast.c_id <- t.uid;
          cmd.Ast.c_epoch <- t.cmd_epoch
        | _ -> ());
        fn t args
      | None -> err "invalid command name %S" name))

(* left-to-right argument evaluation, arity-specialised so the common 1-3
   argument commands build their list without a [List.map] closure *)
and eval_args t arg_words =
  match arg_words with
  | [] -> []
  | [ a ] -> [ eval_word t a ]
  | [ a; b ] ->
    let va = eval_word t a in
    let vb = eval_word t b in
    [ va; vb ]
  | [ a; b; c ] ->
    let va = eval_word t a in
    let vb = eval_word t b in
    let vc = eval_word t c in
    [ va; vb; vc ]
  | a :: rest ->
    let va = eval_word t a in
    va :: eval_args t rest

and dispatch t name args =
  match Hashtbl.find_opt t.commands name with
  | Some fn -> fn t args
  | None -> err "invalid command name %S" name

and eval_ast t script =
  match script with
  | [] -> ""
  | [ cmd ] -> eval_command t cmd
  | cmd :: rest ->
    ignore (eval_command t cmd);
    eval_ast t rest

and eval_string t src = eval_ast t (parse t src)

(* expr needs variable and command substitution from the current scope.
   Expressions are charged one step each: loop conditions must consume
   budget even when the loop body is empty, or a run-away agent could spin
   for free. *)
and subst_string t s =
  match Parse.fragments s with
  | [ frag ] -> eval_fragment t frag
  | frags -> String.concat "" (List.map (eval_fragment t) frags)
  | exception Parse.Syntax_error msg -> err "substitution: %s" msg

(* expr hands back array references as "name(raw index)"; the raw index
   still needs a round of substitution ($a($i)) *)
and expr_lookup t n =
  match split_array_ref n with
  | Some (name, raw_index) -> get_elem t name (subst_string t raw_index)
  | None -> get_var t n

and eval_expr_value t src =
  charge t 1;
  let ast = compile_expr t src in
  try Expr.eval_ast ~lookup:t.expr_lookup_fn ~eval_cmd:t.expr_eval_cmd_fn ast
  with Expr.Error msg -> err "expr: %s" msg

and eval_expr_bool t src =
  charge t 1;
  let ast = compile_expr t src in
  try Expr.eval_ast_bool ~lookup:t.expr_lookup_fn ~eval_cmd:t.expr_eval_cmd_fn ast
  with Expr.Error msg -> err "expr: %s" msg

(* loop bodies hoist compilation out of the iteration: the condition is
   compiled once, then only charged and evaluated per pass *)
and eval_expr_bool_ast t ast =
  charge t 1;
  try Expr.eval_ast_bool ~lookup:t.expr_lookup_fn ~eval_cmd:t.expr_eval_cmd_fn ast
  with Expr.Error msg -> err "expr: %s" msg

let eval t src =
  match eval_string t src with
  | v -> Ok v
  | exception Error_exc msg -> Error msg
  | exception Return_exc v -> Ok v
  | exception Break_exc -> Error "invoked \"break\" outside of a loop"
  | exception Continue_exc -> Error "invoked \"continue\" outside of a loop"

let eval_exn t src =
  match eval t src with Ok v -> v | Error msg -> raise (Error_exc msg)

let call t name args = dispatch t name args

(* ---- host command API --------------------------------------------------- *)

let register t name fn =
  t.cmd_epoch <- t.cmd_epoch + 1;
  Hashtbl.replace t.commands name fn

let unregister t name =
  t.cmd_epoch <- t.cmd_epoch + 1;
  Hashtbl.remove t.commands name;
  Hashtbl.remove t.proc_bodies name

let has_command t name = Hashtbl.mem t.commands name
let command_names t = Hashtbl.fold (fun k _ acc -> k :: acc) t.commands []

let set_output t fn = t.output <- fn

let take_output t =
  let s = Buffer.contents t.out_buf in
  Buffer.clear t.out_buf;
  s

(* ---- procs -------------------------------------------------------------- *)

type param = Required of string | Optional of string * string | Rest

let parse_params spec =
  let items = Value.to_list_exn spec in
  let n = List.length items in
  List.mapi
    (fun i item ->
      if item = "args" && i = n - 1 then Rest
      else
        match Value.to_list_exn item with
        | [ name ] -> Required name
        | [ name; default ] -> Optional (name, default)
        | _ -> err "bad parameter specifier %S" item)
    items

let usage_of_params name params =
  let render = function
    | Required n -> n
    | Optional (n, _) -> "?" ^ n ^ "?"
    | Rest -> "?arg ...?"
  in
  String.concat " " (name :: List.map render params)

let bind_params name params args =
  let frame = { vars = Hashtbl.create 8; arrays = None; linked_globals = None; upvars = None } in
  let wrong () = err "wrong # args: should be %S" (usage_of_params name params) in
  let rec go params args =
    match (params, args) with
    | [], [] -> ()
    | [], _ :: _ -> wrong ()
    | [ Rest ], rest -> Hashtbl.replace frame.vars "args" (Value.of_list rest)
    | Rest :: _, _ -> err "args must be the last parameter"
    | Required n :: ps, a :: rest ->
      Hashtbl.replace frame.vars n a;
      go ps rest
    | Required _ :: _, [] -> wrong ()
    | Optional (n, d) :: ps, [] ->
      Hashtbl.replace frame.vars n d;
      go ps []
    | Optional (n, _) :: ps, a :: rest ->
      Hashtbl.replace frame.vars n a;
      go ps rest
  in
  go params args;
  frame

let define_proc t name param_spec body =
  let params = parse_params param_spec in
  Hashtbl.replace t.proc_bodies name (param_spec, body);
  register t name (fun t args ->
      if t.depth >= t.max_depth then err "too many nested proc calls (max %d)" t.max_depth;
      let frame = bind_params name params args in
      t.frames <- frame :: t.frames;
      t.depth <- t.depth + 1;
      t.prof_proc_calls <- t.prof_proc_calls + 1;
      if t.depth > t.prof_max_depth then t.prof_max_depth <- t.depth;
      let restore () =
        t.frames <- List.tl t.frames;
        t.depth <- t.depth - 1
      in
      match eval_string t body with
      | v ->
        restore ();
        v
      | exception Return_exc v ->
        restore ();
        v
      | exception e ->
        restore ();
        raise e)

(* ---- builtin commands ---------------------------------------------------- *)

(* List.nth would leak a bare [Failure "nth"] OCaml exception on an
   out-of-range index; surface a proper script-level error instead *)
let nth ~cmd args i =
  match List.nth_opt args i with
  | Some v -> v
  | None -> err "wrong # args: %S: index %d out of range" cmd i

let int_arg what s =
  match Value.int_of s with Some i -> i | None -> err "expected integer for %s, got %S" what s

(* Tcl index syntax: N, end, end-N *)
let index_arg ~len s =
  let s = String.trim s in
  if s = "end" then len - 1
  else if String.length s > 4 && String.sub s 0 4 = "end-" then
    len - 1 - int_arg "index" (String.sub s 4 (String.length s - 4))
  else int_arg "index" s

let install_core t0 =
  let reg name fn = register t0 name fn in

  reg "set" (fun t args ->
      match args with
      | [ name ] -> get_ref t name
      | [ name; v ] ->
        set_ref t name v;
        v
      | _ -> err "wrong # args: should be \"set varName ?newValue?\"");

  reg "unset" (fun t args ->
      match args with
      | [] -> err "wrong # args: should be \"unset varName ?varName ...?\""
      | names ->
        List.iter (unset_ref t) names;
        "");

  reg "incr" (fun t args ->
      match args with
      | [ name ] | [ name; _ ] ->
        let delta = match args with [ _; d ] -> int_arg "increment" d | _ -> 1 in
        let cur =
          match get_ref_opt t name with
          | None -> 0
          | Some v -> int_arg "variable value" v
        in
        let v = Value.of_int (cur + delta) in
        set_ref t name v;
        v
      | _ -> err "wrong # args: should be \"incr varName ?increment?\"");

  reg "global" (fun t args ->
      (match t.frames with
      | [] -> ()
      | frame :: _ ->
        let lg = frame_linked_globals frame in
        List.iter (fun n -> Hashtbl.replace lg n ()) args);
      "");

  reg "upvar" (fun t args ->
      (* upvar ?level? otherVar myVar ?otherVar myVar ...? *)
      let parse_level s =
        if s = "#0" then Some `Global
        else match int_of_string_opt s with Some n when n >= 0 -> Some (`Up n) | _ -> None
      in
      let level, pairs =
        match args with
        | lvl :: rest when parse_level lvl <> None && List.length rest mod 2 = 0 && rest <> [] ->
          (Option.get (parse_level lvl), rest)
        | _ -> (`Up 1, args)
      in
      if pairs = [] || List.length pairs mod 2 <> 0 then
        err "wrong # args: should be \"upvar ?level? otherVar localVar ?...?\"";
      let target =
        match level with
        | `Global -> None
        | `Up n -> (
          (* frames.(0) is the current frame; n frames up *)
          let rec go frames n =
            match (frames, n) with
            | _, 0 -> ( match frames with [] -> None | f :: _ -> Some f)
            | [], _ -> None
            | _ :: rest, n -> go rest (n - 1)
          in
          match t.frames with [] -> None | _ :: rest -> go rest (n - 1))
      in
      (match t.frames with
      | [] -> err "upvar: no enclosing frame"
      | frame :: _ ->
        let uv = frame_upvars frame in
        let rec link = function
          | other :: local :: rest ->
            Hashtbl.replace uv local (target, other);
            link rest
          | [] -> ()
          | [ _ ] -> err "upvar: unbalanced variable pairs"
        in
        link pairs);
      "");

  reg "uplevel" (fun t args ->
      let parse_level s =
        if s = "#0" then Some `Global
        else match int_of_string_opt s with Some n when n >= 1 -> Some (`Up n) | _ -> None
      in
      let level, script_parts =
        match args with
        | lvl :: (_ :: _ as rest) when parse_level lvl <> None ->
          (Option.get (parse_level lvl), rest)
        | _ -> (`Up 1, args)
      in
      if script_parts = [] then err "wrong # args: should be \"uplevel ?level? script\"";
      let saved = t.frames in
      (match level with
      | `Global -> t.frames <- []
      | `Up n ->
        let rec drop frames n =
          if n = 0 then frames else match frames with [] -> [] | _ :: rest -> drop rest (n - 1)
        in
        t.frames <- drop t.frames n);
      let restore () = t.frames <- saved in
      (match eval_string t (String.concat " " script_parts) with
      | v ->
        restore ();
        v
      | exception e ->
        restore ();
        raise e));

  reg "proc" (fun t args ->
      match args with
      | [ name; params; body ] ->
        define_proc t name params body;
        ""
      | _ -> err "wrong # args: should be \"proc name args body\"");

  reg "return" (fun _ args ->
      match args with
      | [] -> raise (Return_exc "")
      | [ v ] -> raise (Return_exc v)
      | _ -> err "wrong # args: should be \"return ?value?\"");

  reg "break" (fun _ _ -> raise Break_exc);
  reg "continue" (fun _ _ -> raise Continue_exc);

  reg "error" (fun _ args ->
      match args with
      | [ msg ] -> raise (Error_exc msg)
      | _ -> err "wrong # args: should be \"error message\"");

  reg "catch" (fun t args ->
      match args with
      | [ script ] | [ script; _ ] -> (
        let set_result v =
          match args with [ _; var ] -> set_var t var v | _ -> ()
        in
        match eval_string t script with
        | v ->
          set_result v;
          "0"
        | exception Error_exc msg ->
          set_result msg;
          "1"
        | exception Return_exc v ->
          set_result v;
          "2")
      | _ -> err "wrong # args: should be \"catch script ?resultVarName?\"");

  reg "eval" (fun t args -> eval_string t (String.concat " " args));

  reg "expr" (fun t args ->
      (* single-argument form hits the compiled-expr cache without the
         String.concat round-trip — the idiomatic [expr {...}] case *)
      match args with
      | [ src ] -> eval_expr_value t src
      | _ -> eval_expr_value t (String.concat " " args));

  reg "if" (fun t args ->
      let rec go args =
        match args with
        | cond :: rest -> (
          let rest = match rest with "then" :: r -> r | r -> r in
          match rest with
          | body :: rest ->
            if eval_expr_bool t cond then eval_string t body
            else branch rest
          | [] -> err "wrong # args: no script following condition")
        | [] -> err "wrong # args: should be \"if cond ?then? body ...\""
      and branch rest =
        match rest with
        | [] -> ""
        | [ "else"; body ] -> eval_string t body
        | [ body ] -> eval_string t body
        | "elseif" :: rest -> go rest
        | _ -> err "expected \"elseif\" or \"else\" clause"
      in
      go args);

  reg "while" (fun t args ->
      match args with
      | [ cond; body ] ->
        (* compile the condition and parse the body once, outside the
           iteration; each pass still charges one step for the test *)
        let cond_ast = compile_expr t cond in
        let body_ast = parse t body in
        let rec loop () =
          if eval_expr_bool_ast t cond_ast then begin
            (try ignore (eval_ast t body_ast) with Continue_exc -> ());
            loop ()
          end
        in
        (try loop () with Break_exc -> ());
        ""
      | _ -> err "wrong # args: should be \"while test command\"");

  reg "for" (fun t args ->
      match args with
      | [ init; cond; next; body ] ->
        ignore (eval_string t init);
        let cond_ast = compile_expr t cond in
        let body_ast = parse t body in
        let next_ast = parse t next in
        let rec loop () =
          if eval_expr_bool_ast t cond_ast then begin
            (try ignore (eval_ast t body_ast) with Continue_exc -> ());
            ignore (eval_ast t next_ast);
            loop ()
          end
        in
        (try loop () with Break_exc -> ());
        ""
      | _ -> err "wrong # args: should be \"for start test next command\"");

  reg "foreach" (fun t args ->
      match args with
      | [ varspec; listval; body ] ->
        let vars = Value.to_list_exn varspec in
        let vars = if vars = [] then err "foreach: empty variable list" else vars in
        let items = Value.to_list_exn listval in
        let nvars = List.length vars in
        let rec loop items =
          match items with
          | [] -> ()
          | _ ->
            let rec bind vs items =
              match vs with
              | [] -> items
              | v :: vrest -> (
                match items with
                | [] ->
                  set_var t v "";
                  bind vrest []
                | x :: irest ->
                  set_var t v x;
                  bind vrest irest)
            in
            let rest = bind vars items in
            ignore nvars;
            (try ignore (eval_string t body) with Continue_exc -> ());
            loop rest
        in
        (try loop items with Break_exc -> ());
        ""
      | _ -> err "wrong # args: should be \"foreach varList list body\"");

  reg "array" (fun t args ->
      let find_array name =
        match resolved_arrays_opt t name with
        | Some tbl, n -> Hashtbl.find_opt tbl n
        | None, _ -> None
      in
      match args with
      | [ "exists"; name ] -> Value.of_bool (array_exists t name)
      | [ "size"; name ] -> (
        match find_array name with
        | Some arr -> Value.of_int (Hashtbl.length arr)
        | None -> "0")
      | [ "names"; name ] | [ "names"; name; _ ] -> (
        let pattern = match args with [ _; _; p ] -> Some p | _ -> None in
        match find_array name with
        | None -> ""
        | Some arr ->
          Hashtbl.fold (fun k _ acc -> k :: acc) arr []
          |> List.filter (fun k ->
                 match pattern with
                 | None -> true
                 | Some p -> Strutil.glob_match ~pattern:p k)
          |> List.sort compare |> Value.of_list)
      | [ "get"; name ] -> (
        match find_array name with
        | None -> ""
        | Some arr ->
          Hashtbl.fold (fun k v acc -> (k, v) :: acc) arr []
          |> List.sort compare
          |> List.concat_map (fun (k, v) -> [ k; v ])
          |> Value.of_list)
      | [ "set"; name; kvlist ] ->
        let rec go = function
          | [] -> ()
          | [ _ ] -> err "array set: list must have an even number of elements"
          | k :: v :: rest ->
            set_elem t name k v;
            go rest
        in
        go (Value.to_list_exn kvlist);
        ""
      | [ "unset"; name ] ->
        (match resolved_arrays_opt t name with
        | Some tbl, n -> Hashtbl.remove tbl n
        | None, _ -> ());
        ""
      | [ "unset"; name; key ] ->
        unset_elem t name key;
        ""
      | _ -> err "unsupported array subcommand or wrong # args");

  reg "switch" (fun t args ->
      (* switch ?-exact|-glob? string {pattern body ...} or inline pairs;
         a body of "-" falls through to the next body *)
      let glob, rest =
        match args with
        | "-glob" :: rest -> (true, rest)
        | "-exact" :: rest -> (false, rest)
        | "--" :: rest -> (false, rest)
        | rest -> (false, rest)
      in
      let subject, pairs =
        match rest with
        | [ subject; block ] -> (subject, Value.to_list_exn block)
        | subject :: (_ :: _ as inline) -> (subject, inline)
        | _ -> err "wrong # args: should be \"switch ?options? string pattern body ...\""
      in
      let rec to_pairs = function
        | [] -> []
        | [ _ ] -> err "switch: extra pattern with no body"
        | p :: b :: rest -> (p, b) :: to_pairs rest
      in
      let pairs = to_pairs pairs in
      let matches p =
        p = "default" || if glob then Strutil.glob_match ~pattern:p subject else p = subject
      in
      let rec fire = function
        | [] -> ""
        | (p, body) :: rest ->
          if matches p then
            (* fall through "-" bodies to the next real body *)
            let rec body_of b rest =
              if b = "-" then
                match rest with
                | (_, b') :: rest' -> body_of b' rest'
                | [] -> err "switch: no body to fall through to"
              else b
            in
            eval_string t (body_of body rest)
          else fire rest
      in
      fire pairs);

  reg "subst" (fun t args ->
      match args with
      | [ s ] -> (
        match Parse.fragments s with
        | frags -> String.concat "" (List.map (eval_fragment t) frags)
        | exception Parse.Syntax_error msg -> err "subst: %s" msg)
      | _ -> err "wrong # args: should be \"subst string\"");

  reg "puts" (fun t args ->
      match args with
      | [ s ] ->
        t.output (s ^ "\n");
        ""
      | [ "-nonewline"; s ] ->
        t.output s;
        ""
      | _ -> err "wrong # args: should be \"puts ?-nonewline? string\"");

  reg "info" (fun t args ->
      match args with
      | [ "exists"; name ] ->
        Value.of_bool
          (Option.is_some (get_ref_opt t name)
          || (split_array_ref name = None && array_exists t name))
      | [ "commands" ] -> Value.of_list (List.sort compare (command_names t))
      | [ "procs" ] ->
        Value.of_list
          (List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) t.proc_bodies []))
      | [ "body"; name ] -> (
        match Hashtbl.find_opt t.proc_bodies name with
        | Some (_, body) -> body
        | None -> err "%S isn't a procedure" name)
      | [ "args"; name ] -> (
        match Hashtbl.find_opt t.proc_bodies name with
        | Some (params, _) -> params
        | None -> err "%S isn't a procedure" name)
      | [ "level" ] -> Value.of_int (List.length t.frames)
      | _ -> err "unsupported info subcommand")

let install_strings t0 =
  let reg name fn = register t0 name fn in

  reg "string" (fun _ args ->
      match args with
      | "length" :: [ s ] -> Value.of_int (String.length s)
      | "index" :: [ s; i ] ->
        let len = String.length s in
        let i = index_arg ~len i in
        if i < 0 || i >= len then "" else String.make 1 s.[i]
      | "range" :: [ s; first; last ] ->
        let len = String.length s in
        let first = max 0 (index_arg ~len first) in
        let last = min (len - 1) (index_arg ~len last) in
        if first > last then "" else String.sub s first (last - first + 1)
      | "tolower" :: [ s ] -> String.lowercase_ascii s
      | "toupper" :: [ s ] -> String.uppercase_ascii s
      | "trim" :: [ s ] -> String.trim s
      | "trimleft" :: [ s ] ->
        let n = String.length s in
        let rec skip i = if i < n && (s.[i] = ' ' || s.[i] = '\t' || s.[i] = '\n' || s.[i] = '\r') then skip (i + 1) else i in
        let i = skip 0 in
        String.sub s i (n - i)
      | "trimright" :: [ s ] ->
        let rec skip i = if i > 0 && (s.[i - 1] = ' ' || s.[i - 1] = '\t' || s.[i - 1] = '\n' || s.[i - 1] = '\r') then skip (i - 1) else i in
        String.sub s 0 (skip (String.length s))
      | "last" :: [ needle; hay ] -> (
        if needle = "" then "-1"
        else
          let nl = String.length needle and hl = String.length hay in
          let rec go i =
            if i < 0 then -1 else if String.sub hay i nl = needle then i else go (i - 1)
          in
          Value.of_int (go (hl - nl)))
      | "equal" :: [ a; b ] -> Value.of_bool (String.equal a b)
      | "compare" :: [ a; b ] -> Value.of_int (compare a b)
      | "first" :: [ needle; hay ] -> (
        if needle = "" then "-1"
        else
          let nl = String.length needle and hl = String.length hay in
          let rec go i =
            if i + nl > hl then -1
            else if String.sub hay i nl = needle then i
            else go (i + 1)
          in
          Value.of_int (go 0))
      | "match" :: [ pattern; s ] -> Value.of_bool (Strutil.glob_match ~pattern s)
      | "repeat" :: [ s; n ] ->
        let n = int_arg "count" n in
        if n <= 0 then ""
        else begin
          let b = Buffer.create (String.length s * n) in
          for _ = 1 to n do
            Buffer.add_string b s
          done;
          Buffer.contents b
        end
      | "reverse" :: [ s ] ->
        String.init (String.length s) (fun i -> s.[String.length s - 1 - i])
      | "map" :: [ mapping; s ] ->
        (* longest-first, left-to-right, single pass (Tcl semantics) *)
        let rec to_pairs = function
          | [] -> []
          | [ _ ] -> err "string map: unbalanced mapping list"
          | k :: v :: rest -> (k, v) :: to_pairs rest
        in
        let pairs = to_pairs (Value.to_list_exn mapping) in
        let buf = Buffer.create (String.length s) in
        let n = String.length s in
        let rec go i =
          if i < n then begin
            let matched =
              List.find_opt
                (fun (k, _) ->
                  k <> ""
                  && String.length k <= n - i
                  && String.sub s i (String.length k) = k)
                pairs
            in
            match matched with
            | Some (k, v) ->
              Buffer.add_string buf v;
              go (i + String.length k)
            | None ->
              Buffer.add_char buf s.[i];
              go (i + 1)
          end
        in
        go 0;
        Buffer.contents buf
      | sub :: _ -> err "unsupported string subcommand %S or wrong # args" sub
      | [] -> err "wrong # args: should be \"string subcommand ...\"");

  reg "append" (fun t args ->
      match args with
      | name :: parts ->
        let cur = Option.value ~default:"" (get_ref_opt t name) in
        let v = cur ^ String.concat "" parts in
        set_ref t name v;
        v
      | [] -> err "wrong # args: should be \"append varName ?value ...?\"");

  reg "format" (fun _ args ->
      match args with
      | fmt :: rest -> (
        match Strutil.format fmt rest with Ok s -> s | Error e -> err "format: %s" e)
      | [] -> err "wrong # args: should be \"format formatString ?arg ...?\"");

  reg "split" (fun _ args ->
      match args with
      | [ s ] -> Value.of_list (Strutil.split s ~on:" \t\n")
      | [ s; on ] -> Value.of_list (Strutil.split s ~on)
      | _ -> err "wrong # args: should be \"split string ?splitChars?\"");

  reg "join" (fun _ args ->
      match args with
      | [ l ] -> String.concat " " (Value.to_list_exn l)
      | [ l; sep ] -> String.concat sep (Value.to_list_exn l)
      | _ -> err "wrong # args: should be \"join list ?joinString?\"");

  reg "regexp" (fun t args ->
      let nocase, args =
        match args with
        | "-nocase" :: rest -> (true, rest)
        | "--" :: rest -> (false, rest)
        | rest -> (false, rest)
      in
      match args with
      | pattern :: subject :: vars -> (
        let re =
          match Regex.compile ~nocase pattern with
          | Ok re -> re
          | Error msg -> err "regexp: %s" msg
        in
        match Regex.search re subject with
        | None -> "0"
        | Some r ->
          let whole, _, _ = r.Regex.whole in
          List.iteri
            (fun i var ->
              let text =
                if i = 0 then whole
                else if i - 1 < Array.length r.Regex.groups then
                  match r.Regex.groups.(i - 1) with
                  | Some (g, _, _) -> g
                  | None -> ""
                else ""
              in
              set_ref t var text)
            vars;
          "1")
      | _ -> err "wrong # args: should be \"regexp ?-nocase? exp string ?matchVar ...?\"");

  reg "regsub" (fun t args ->
      let rec opts all nocase = function
        | "-all" :: rest -> opts true nocase rest
        | "-nocase" :: rest -> opts all true rest
        | "--" :: rest -> (all, nocase, rest)
        | rest -> (all, nocase, rest)
      in
      let all, nocase, args = opts false false args in
      match args with
      | [ pattern; subject; template ] | [ pattern; subject; template; _ ] -> (
        let re =
          match Regex.compile ~nocase pattern with
          | Ok re -> re
          | Error msg -> err "regsub: %s" msg
        in
        let result, count = Regex.replace re ~all ~template subject in
        match args with
        | [ _; _; _; var ] ->
          set_ref t var result;
          Value.of_int count
        | _ -> result)
      | _ ->
        err "wrong # args: should be \"regsub ?-all? ?-nocase? exp string subSpec ?varName?\"")

let install_lists t0 =
  let reg name fn = register t0 name fn in

  reg "list" (fun _ args -> Value.of_list args);

  reg "llength" (fun _ args ->
      match args with
      | [ l ] -> Value.of_int (List.length (Value.to_list_exn l))
      | _ -> err "wrong # args: should be \"llength list\"");

  reg "lindex" (fun _ args ->
      match args with
      | [ l ] -> l
      | [ l; i ] ->
        let items = Value.to_list_exn l in
        let len = List.length items in
        let i = index_arg ~len i in
        if i < 0 || i >= len then "" else nth ~cmd:"lindex" items i
      | _ -> err "wrong # args: should be \"lindex list ?index?\"");

  reg "lappend" (fun t args ->
      match args with
      | name :: items ->
        let cur = Option.value ~default:"" (get_ref_opt t name) in
        let l = Value.to_list_exn cur @ items in
        let v = Value.of_list l in
        set_ref t name v;
        v
      | [] -> err "wrong # args: should be \"lappend varName ?value ...?\"");

  reg "lrange" (fun _ args ->
      match args with
      | [ l; first; last ] ->
        let items = Value.to_list_exn l in
        let len = List.length items in
        let first = max 0 (index_arg ~len first) in
        let last = min (len - 1) (index_arg ~len last) in
        if first > last then ""
        else Value.of_list (List.filteri (fun i _ -> i >= first && i <= last) items)
      | _ -> err "wrong # args: should be \"lrange list first last\"");

  reg "lsort" (fun _ args ->
      let rec split_opts opts args =
        match args with
        | [ l ] -> (List.rev opts, l)
        | opt :: rest when String.length opt > 0 && opt.[0] = '-' -> split_opts (opt :: opts) rest
        | _ -> err "wrong # args: should be \"lsort ?options? list\""
      in
      let opts, l = split_opts [] args in
      let items = Value.to_list_exn l in
      let numeric = List.mem "-integer" opts || List.mem "-real" opts in
      let cmp a b =
        if numeric then
          let fa =
            match Value.float_of a with Some f -> f | None -> err "expected number, got %S" a
          in
          let fb =
            match Value.float_of b with Some f -> f | None -> err "expected number, got %S" b
          in
          compare fa fb
        else compare a b
      in
      let cmp = if List.mem "-decreasing" opts then fun a b -> cmp b a else cmp in
      let sorted = List.stable_sort cmp items in
      let sorted =
        if List.mem "-unique" opts then
          List.rev
            (List.fold_left (fun acc x -> match acc with y :: _ when cmp x y = 0 -> acc | _ -> x :: acc) [] sorted)
        else sorted
      in
      Value.of_list sorted);

  reg "lsearch" (fun _ args ->
      let glob, l, pat =
        match args with
        | [ "-exact"; l; p ] -> (false, l, p)
        | [ "-glob"; l; p ] -> (true, l, p)
        | [ l; p ] -> (true, l, p) (* Tcl defaults to glob matching *)
        | _ -> err "wrong # args: should be \"lsearch ?mode? list pattern\""
      in
      let items = Value.to_list_exn l in
      let matches x = if glob then Strutil.glob_match ~pattern:pat x else String.equal pat x in
      let rec go i = function
        | [] -> -1
        | x :: rest -> if matches x then i else go (i + 1) rest
      in
      Value.of_int (go 0 items));

  reg "linsert" (fun _ args ->
      match args with
      | l :: i :: (_ :: _ as items) ->
        let cur = Value.to_list_exn l in
        let len = List.length cur in
        let i = max 0 (min len (index_arg ~len:(len + 1) i)) in
        let before = List.filteri (fun j _ -> j < i) cur in
        let after = List.filteri (fun j _ -> j >= i) cur in
        Value.of_list (before @ items @ after)
      | _ -> err "wrong # args: should be \"linsert list index element ?element ...?\"");

  reg "lreverse" (fun _ args ->
      match args with
      | [ l ] -> Value.of_list (List.rev (Value.to_list_exn l))
      | _ -> err "wrong # args: should be \"lreverse list\"");

  reg "lassign" (fun t args ->
      match args with
      | l :: (_ :: _ as names) ->
        let items = Value.to_list_exn l in
        let rec go names items =
          match names with
          | [] -> Value.of_list items
          | n :: nrest -> (
            match items with
            | [] ->
              set_var t n "";
              go nrest []
            | x :: irest ->
              set_var t n x;
              go nrest irest)
        in
        go names items
      | _ -> err "wrong # args: should be \"lassign list varName ?varName ...?\"");

  reg "concat" (fun _ args ->
      Value.of_list (List.concat_map Value.to_list_exn args));

  reg "lrepeat" (fun _ args ->
      match args with
      | count :: (_ :: _ as items) ->
        let n = int_arg "count" count in
        if n < 0 then err "lrepeat: negative count";
        Value.of_list (List.concat (List.init n (fun _ -> items)))
      | _ -> err "wrong # args: should be \"lrepeat count ?value ...?\"");

  reg "lmap" (fun t args ->
      match args with
      | [ varspec; listval; body ] ->
        let vars = Value.to_list_exn varspec in
        if vars = [] then err "lmap: empty variable list";
        let items = Value.to_list_exn listval in
        let out = ref [] in
        let rec loop items =
          match items with
          | [] -> ()
          | _ ->
            let rec bind vs items =
              match vs with
              | [] -> items
              | v :: vrest -> (
                match items with
                | [] ->
                  set_var t v "";
                  bind vrest []
                | x :: irest ->
                  set_var t v x;
                  bind vrest irest)
            in
            let rest = bind vars items in
            (try out := eval_string t body :: !out with Continue_exc -> ());
            loop rest
        in
        (try loop items with Break_exc -> ());
        Value.of_list (List.rev !out)
      | _ -> err "wrong # args: should be \"lmap varList list body\"")

let create ?step_limit ?(max_depth = 256) ?caches () =
  let caches =
    match caches with Some c -> c | None -> create_caches ()
  in
  caches.next_uid <- caches.next_uid + 1;
  let t =
    {
      uid = caches.next_uid;
      cmd_epoch = 0;
      commands = Hashtbl.create 64;
      proc_bodies = Hashtbl.create 16;
      globals = Hashtbl.create 32;
      global_arrays = Hashtbl.create 8;
      frames = [];
      steps = 0;
      limit = step_limit;
      depth = 0;
      max_depth;
      prof_commands = 0;
      prof_proc_calls = 0;
      prof_max_depth = 0;
      prof_parse_hits = 0;
      prof_parse_misses = 0;
      prof_parse_evictions = 0;
      prof_expr_hits = 0;
      prof_expr_misses = 0;
      prof_expr_evictions = 0;
      caches;
      memo_parse = None;
      memo_expr = None;
      expr_lookup_fn = Fun.id;
      expr_eval_cmd_fn = Fun.id;
      out_buf = Buffer.create 256;
      output = ignore;
    }
  in
  t.expr_lookup_fn <- (fun name -> expr_lookup t name);
  t.expr_eval_cmd_fn <- (fun s -> eval_string t s);
  t.output <- (fun s -> Buffer.add_string t.out_buf s);
  install_core t;
  install_strings t;
  install_lists t;
  t

(* ---- profiling ---------------------------------------------------------- *)

(* Defined last: the [commands]/[max_depth] field names would otherwise
   shadow the interpreter record's own fields for the code above. *)
type profile = {
  commands : int;
  proc_calls : int;
  max_depth : int;
  parse_hits : int;
  parse_misses : int;
  parse_evictions : int;
  expr_hits : int;
  expr_misses : int;
      (** also the number of expressions this interpreter compiled *)
  expr_evictions : int;
}

let profile t =
  {
    commands = t.prof_commands;
    proc_calls = t.prof_proc_calls;
    max_depth = t.prof_max_depth;
    parse_hits = t.prof_parse_hits;
    parse_misses = t.prof_parse_misses;
    parse_evictions = t.prof_parse_evictions;
    expr_hits = t.prof_expr_hits;
    expr_misses = t.prof_expr_misses;
    expr_evictions = t.prof_expr_evictions;
  }

exception Error_exc of string
exception Return_exc of string
exception Break_exc
exception Continue_exc
exception Resource_exhausted

type command_fn = t -> string list -> string

and t = {
  commands : (string, command_fn) Hashtbl.t;
  proc_bodies : (string, string * string) Hashtbl.t; (* name -> params, body (introspection) *)
  globals : (string, string) Hashtbl.t;
  global_arrays : (string, (string, string) Hashtbl.t) Hashtbl.t;
  mutable frames : frame list; (* innermost first; [] means global scope *)
  mutable steps : int;
  mutable limit : int option;
  mutable depth : int;
  max_depth : int;
  mutable prof_commands : int;
  mutable prof_proc_calls : int;
  mutable prof_max_depth : int;
  parse_cache : (string, Ast.script) Hashtbl.t;
  out_buf : Buffer.t;
  mutable output : string -> unit;
}

and frame = {
  vars : (string, string) Hashtbl.t;
  arrays : (string, (string, string) Hashtbl.t) Hashtbl.t;
  linked_globals : (string, unit) Hashtbl.t;
  upvars : (string, frame option * string) Hashtbl.t;
      (* local alias -> (target frame, None = global scope; target name) *)
}

let err fmt = Printf.ksprintf (fun msg -> raise (Error_exc msg)) fmt

(* ---- variables -------------------------------------------------------- *)

(* scope resolution: a name in a frame may be linked to the globals
   ([global]) or aliased into another frame ([upvar]); chase the links *)
let rec resolve_scope scope name =
  match scope with
  | None -> (None, name)
  | Some f ->
    if Hashtbl.mem f.linked_globals name then (None, name)
    else (
      match Hashtbl.find_opt f.upvars name with
      | Some (target, oname) -> resolve_scope target oname
      | None -> (scope, name))

let current_scope t = match t.frames with [] -> None | f :: _ -> Some f
let resolve_name t name = resolve_scope (current_scope t) name
let scope_vars t = function None -> t.globals | Some f -> f.vars
let scope_arrays t = function None -> t.global_arrays | Some f -> f.arrays

let resolved_vars t name =
  let scope, n = resolve_name t name in
  (scope_vars t scope, n)

let resolved_arrays t name =
  let scope, n = resolve_name t name in
  (scope_arrays t scope, n)

let array_exists t name =
  let tbl, n = resolved_arrays t name in
  Hashtbl.mem tbl n

let get_var_opt t name =
  let tbl, n = resolved_vars t name in
  Hashtbl.find_opt tbl n

let get_var t name =
  match get_var_opt t name with
  | Some v -> v
  | None ->
    if array_exists t name then err "can't read %S: variable is array" name
    else err "can't read %S: no such variable" name

let set_var t name v =
  if array_exists t name then err "can't set %S: variable is array" name;
  let tbl, n = resolved_vars t name in
  Hashtbl.replace tbl n v

let unset_var t name =
  let vtbl, vn = resolved_vars t name in
  Hashtbl.remove vtbl vn;
  let atbl, an = resolved_arrays t name in
  Hashtbl.remove atbl an

(* ---- array elements ----------------------------------------------------- *)

let get_elem_opt t name index =
  let tbl, n = resolved_arrays t name in
  Option.bind (Hashtbl.find_opt tbl n) (fun arr -> Hashtbl.find_opt arr index)

let get_elem t name index =
  match get_elem_opt t name index with
  | Some v -> v
  | None -> err "can't read %S(%s): no such element" name index

let set_elem t name index v =
  let vtbl, vn = resolved_vars t name in
  if Hashtbl.mem vtbl vn then err "can't set %S(%s): variable isn't array" name index;
  let tbl, n = resolved_arrays t name in
  let arr =
    match Hashtbl.find_opt tbl n with
    | Some arr -> arr
    | None ->
      let arr = Hashtbl.create 8 in
      Hashtbl.replace tbl n arr;
      arr
  in
  Hashtbl.replace arr index v

let unset_elem t name index =
  let tbl, n = resolved_arrays t name in
  match Hashtbl.find_opt tbl n with
  | Some arr -> Hashtbl.remove arr index
  | None -> ()

(* "name(index)" in a fully-substituted word (set a($i) v arrives here as
   "a(5)"); the index may contain anything except a leading '(' split *)
let split_array_ref s =
  let n = String.length s in
  if n >= 3 && s.[n - 1] = ')' then
    match String.index_opt s '(' with
    | Some i when i > 0 && i < n - 1 -> Some (String.sub s 0 i, String.sub s (i + 1) (n - i - 2))
    | Some i when i > 0 -> Some (String.sub s 0 i, "")
    | _ -> None
  else None

(* generic reference access for commands like set/incr/append/lappend *)
let get_ref_opt t name =
  match split_array_ref name with
  | Some (a, i) -> get_elem_opt t a i
  | None -> get_var_opt t name

let get_ref t name =
  match split_array_ref name with
  | Some (a, i) -> get_elem t a i
  | None -> get_var t name

let set_ref t name v =
  match split_array_ref name with
  | Some (a, i) -> set_elem t a i v
  | None -> set_var t name v

let unset_ref t name =
  match split_array_ref name with
  | Some (a, i) -> unset_elem t a i
  | None -> unset_var t name

(* ---- metering ---------------------------------------------------------- *)

let charge t n =
  t.steps <- t.steps + n;
  match t.limit with
  | Some l when t.steps > l -> raise Resource_exhausted
  | Some _ | None -> ()

let steps_used t = t.steps
let set_step_limit t l = t.limit <- l
let step_limit t = t.limit
let reset_steps t = t.steps <- 0

(* ---- parsing with cache ------------------------------------------------ *)

let parse t src =
  match Hashtbl.find_opt t.parse_cache src with
  | Some ast -> ast
  | None -> (
    match Parse.script_result src with
    | Error msg -> err "syntax error: %s" msg
    | Ok ast ->
      if Hashtbl.length t.parse_cache > 512 then Hashtbl.reset t.parse_cache;
      Hashtbl.replace t.parse_cache src ast;
      ast)

(* ---- evaluation -------------------------------------------------------- *)

let rec eval_word t word =
  match word with
  | Ast.Braced s -> s
  | Ast.Frags [ frag ] -> eval_fragment t frag
  | Ast.Frags frags -> String.concat "" (List.map (eval_fragment t) frags)

and eval_fragment t frag =
  match frag with
  | Ast.Lit s -> s
  | Ast.Var name -> get_var t name
  | Ast.VarElem (name, index_frags) ->
    get_elem t name (String.concat "" (List.map (eval_fragment t) index_frags))
  | Ast.Cmd script -> eval_ast t script

and eval_command t words =
  match words with
  | [] -> ""
  | name_word :: arg_words ->
    charge t 1;
    t.prof_commands <- t.prof_commands + 1;
    let name = eval_word t name_word in
    let args = List.map (eval_word t) arg_words in
    dispatch t name args

and dispatch t name args =
  match Hashtbl.find_opt t.commands name with
  | Some fn -> fn t args
  | None -> err "invalid command name %S" name

and eval_ast t script =
  List.fold_left (fun _ cmd -> eval_command t cmd) "" script

and eval_string t src = eval_ast t (parse t src)

(* expr needs variable and command substitution from the current scope.
   Expressions are charged one step each: loop conditions must consume
   budget even when the loop body is empty, or a run-away agent could spin
   for free. *)
and subst_string t s =
  match Parse.fragments s with
  | frags -> String.concat "" (List.map (eval_fragment t) frags)
  | exception Parse.Syntax_error msg -> err "substitution: %s" msg

(* expr hands back array references as "name(raw index)"; the raw index
   still needs a round of substitution ($a($i)) *)
and expr_lookup t n =
  match split_array_ref n with
  | Some (name, raw_index) -> get_elem t name (subst_string t raw_index)
  | None -> get_var t n

and eval_expr_value t src =
  charge t 1;
  try Expr.eval ~lookup:(expr_lookup t) ~eval_cmd:(fun s -> eval_string t s) src
  with Expr.Error msg -> err "expr: %s" msg

and eval_expr_bool t src =
  charge t 1;
  try Expr.eval_bool ~lookup:(expr_lookup t) ~eval_cmd:(fun s -> eval_string t s) src
  with Expr.Error msg -> err "expr: %s" msg

let eval t src =
  match eval_string t src with
  | v -> Ok v
  | exception Error_exc msg -> Error msg
  | exception Return_exc v -> Ok v
  | exception Break_exc -> Error "invoked \"break\" outside of a loop"
  | exception Continue_exc -> Error "invoked \"continue\" outside of a loop"

let eval_exn t src =
  match eval t src with Ok v -> v | Error msg -> raise (Error_exc msg)

let call t name args = dispatch t name args

(* ---- host command API --------------------------------------------------- *)

let register t name fn = Hashtbl.replace t.commands name fn

let unregister t name =
  Hashtbl.remove t.commands name;
  Hashtbl.remove t.proc_bodies name

let has_command t name = Hashtbl.mem t.commands name
let command_names t = Hashtbl.fold (fun k _ acc -> k :: acc) t.commands []

let set_output t fn = t.output <- fn

let take_output t =
  let s = Buffer.contents t.out_buf in
  Buffer.clear t.out_buf;
  s

(* ---- procs -------------------------------------------------------------- *)

type param = Required of string | Optional of string * string | Rest

let parse_params spec =
  let items = Value.to_list_exn spec in
  let n = List.length items in
  List.mapi
    (fun i item ->
      if item = "args" && i = n - 1 then Rest
      else
        match Value.to_list_exn item with
        | [ name ] -> Required name
        | [ name; default ] -> Optional (name, default)
        | _ -> err "bad parameter specifier %S" item)
    items

let usage_of_params name params =
  let render = function
    | Required n -> n
    | Optional (n, _) -> "?" ^ n ^ "?"
    | Rest -> "?arg ...?"
  in
  String.concat " " (name :: List.map render params)

let bind_params name params args =
  let frame =
    {
      vars = Hashtbl.create 8;
      arrays = Hashtbl.create 4;
      linked_globals = Hashtbl.create 4;
      upvars = Hashtbl.create 4;
    }
  in
  let wrong () = err "wrong # args: should be %S" (usage_of_params name params) in
  let rec go params args =
    match (params, args) with
    | [], [] -> ()
    | [], _ :: _ -> wrong ()
    | [ Rest ], rest -> Hashtbl.replace frame.vars "args" (Value.of_list rest)
    | Rest :: _, _ -> err "args must be the last parameter"
    | Required n :: ps, a :: rest ->
      Hashtbl.replace frame.vars n a;
      go ps rest
    | Required _ :: _, [] -> wrong ()
    | Optional (n, d) :: ps, [] ->
      Hashtbl.replace frame.vars n d;
      go ps []
    | Optional (n, _) :: ps, a :: rest ->
      Hashtbl.replace frame.vars n a;
      go ps rest
  in
  go params args;
  frame

let define_proc t name param_spec body =
  let params = parse_params param_spec in
  Hashtbl.replace t.proc_bodies name (param_spec, body);
  register t name (fun t args ->
      if t.depth >= t.max_depth then err "too many nested proc calls (max %d)" t.max_depth;
      let frame = bind_params name params args in
      t.frames <- frame :: t.frames;
      t.depth <- t.depth + 1;
      t.prof_proc_calls <- t.prof_proc_calls + 1;
      if t.depth > t.prof_max_depth then t.prof_max_depth <- t.depth;
      let restore () =
        t.frames <- List.tl t.frames;
        t.depth <- t.depth - 1
      in
      match eval_string t body with
      | v ->
        restore ();
        v
      | exception Return_exc v ->
        restore ();
        v
      | exception e ->
        restore ();
        raise e)

(* ---- builtin commands ---------------------------------------------------- *)

let nth args i = List.nth args i

let int_arg what s =
  match Value.int_of s with Some i -> i | None -> err "expected integer for %s, got %S" what s

(* Tcl index syntax: N, end, end-N *)
let index_arg ~len s =
  let s = String.trim s in
  if s = "end" then len - 1
  else if String.length s > 4 && String.sub s 0 4 = "end-" then
    len - 1 - int_arg "index" (String.sub s 4 (String.length s - 4))
  else int_arg "index" s

let install_core t0 =
  let reg name fn = register t0 name fn in

  reg "set" (fun t args ->
      match args with
      | [ name ] -> get_ref t name
      | [ name; v ] ->
        set_ref t name v;
        v
      | _ -> err "wrong # args: should be \"set varName ?newValue?\"");

  reg "unset" (fun t args ->
      match args with
      | [] -> err "wrong # args: should be \"unset varName ?varName ...?\""
      | names ->
        List.iter (unset_ref t) names;
        "");

  reg "incr" (fun t args ->
      match args with
      | [ name ] | [ name; _ ] ->
        let delta = match args with [ _; d ] -> int_arg "increment" d | _ -> 1 in
        let cur =
          match get_ref_opt t name with
          | None -> 0
          | Some v -> int_arg "variable value" v
        in
        let v = Value.of_int (cur + delta) in
        set_ref t name v;
        v
      | _ -> err "wrong # args: should be \"incr varName ?increment?\"");

  reg "global" (fun t args ->
      (match t.frames with
      | [] -> ()
      | frame :: _ -> List.iter (fun n -> Hashtbl.replace frame.linked_globals n ()) args);
      "");

  reg "upvar" (fun t args ->
      (* upvar ?level? otherVar myVar ?otherVar myVar ...? *)
      let parse_level s =
        if s = "#0" then Some `Global
        else match int_of_string_opt s with Some n when n >= 0 -> Some (`Up n) | _ -> None
      in
      let level, pairs =
        match args with
        | lvl :: rest when parse_level lvl <> None && List.length rest mod 2 = 0 && rest <> [] ->
          (Option.get (parse_level lvl), rest)
        | _ -> (`Up 1, args)
      in
      if pairs = [] || List.length pairs mod 2 <> 0 then
        err "wrong # args: should be \"upvar ?level? otherVar localVar ?...?\"";
      let target =
        match level with
        | `Global -> None
        | `Up n -> (
          (* frames.(0) is the current frame; n frames up *)
          let rec go frames n =
            match (frames, n) with
            | _, 0 -> ( match frames with [] -> None | f :: _ -> Some f)
            | [], _ -> None
            | _ :: rest, n -> go rest (n - 1)
          in
          match t.frames with [] -> None | _ :: rest -> go rest (n - 1))
      in
      (match t.frames with
      | [] -> err "upvar: no enclosing frame"
      | frame :: _ ->
        let rec link = function
          | other :: local :: rest ->
            Hashtbl.replace frame.upvars local (target, other);
            link rest
          | [] -> ()
          | [ _ ] -> err "upvar: unbalanced variable pairs"
        in
        link pairs);
      "");

  reg "uplevel" (fun t args ->
      let parse_level s =
        if s = "#0" then Some `Global
        else match int_of_string_opt s with Some n when n >= 1 -> Some (`Up n) | _ -> None
      in
      let level, script_parts =
        match args with
        | lvl :: (_ :: _ as rest) when parse_level lvl <> None ->
          (Option.get (parse_level lvl), rest)
        | _ -> (`Up 1, args)
      in
      if script_parts = [] then err "wrong # args: should be \"uplevel ?level? script\"";
      let saved = t.frames in
      (match level with
      | `Global -> t.frames <- []
      | `Up n ->
        let rec drop frames n =
          if n = 0 then frames else match frames with [] -> [] | _ :: rest -> drop rest (n - 1)
        in
        t.frames <- drop t.frames n);
      let restore () = t.frames <- saved in
      (match eval_string t (String.concat " " script_parts) with
      | v ->
        restore ();
        v
      | exception e ->
        restore ();
        raise e));

  reg "proc" (fun t args ->
      match args with
      | [ name; params; body ] ->
        define_proc t name params body;
        ""
      | _ -> err "wrong # args: should be \"proc name args body\"");

  reg "return" (fun _ args ->
      match args with
      | [] -> raise (Return_exc "")
      | [ v ] -> raise (Return_exc v)
      | _ -> err "wrong # args: should be \"return ?value?\"");

  reg "break" (fun _ _ -> raise Break_exc);
  reg "continue" (fun _ _ -> raise Continue_exc);

  reg "error" (fun _ args ->
      match args with
      | [ msg ] -> raise (Error_exc msg)
      | _ -> err "wrong # args: should be \"error message\"");

  reg "catch" (fun t args ->
      match args with
      | [ script ] | [ script; _ ] -> (
        let set_result v =
          match args with [ _; var ] -> set_var t var v | _ -> ()
        in
        match eval_string t script with
        | v ->
          set_result v;
          "0"
        | exception Error_exc msg ->
          set_result msg;
          "1"
        | exception Return_exc v ->
          set_result v;
          "2")
      | _ -> err "wrong # args: should be \"catch script ?resultVarName?\"");

  reg "eval" (fun t args -> eval_string t (String.concat " " args));

  reg "expr" (fun t args -> eval_expr_value t (String.concat " " args));

  reg "if" (fun t args ->
      let rec go args =
        match args with
        | cond :: rest -> (
          let rest = match rest with "then" :: r -> r | r -> r in
          match rest with
          | body :: rest ->
            if eval_expr_bool t cond then eval_string t body
            else branch rest
          | [] -> err "wrong # args: no script following condition")
        | [] -> err "wrong # args: should be \"if cond ?then? body ...\""
      and branch rest =
        match rest with
        | [] -> ""
        | [ "else"; body ] -> eval_string t body
        | [ body ] -> eval_string t body
        | "elseif" :: rest -> go rest
        | _ -> err "expected \"elseif\" or \"else\" clause"
      in
      go args);

  reg "while" (fun t args ->
      match args with
      | [ cond; body ] ->
        let rec loop () =
          if eval_expr_bool t cond then begin
            (try ignore (eval_string t body) with Continue_exc -> ());
            loop ()
          end
        in
        (try loop () with Break_exc -> ());
        ""
      | _ -> err "wrong # args: should be \"while test command\"");

  reg "for" (fun t args ->
      match args with
      | [ init; cond; next; body ] ->
        ignore (eval_string t init);
        let rec loop () =
          if eval_expr_bool t cond then begin
            (try ignore (eval_string t body) with Continue_exc -> ());
            ignore (eval_string t next);
            loop ()
          end
        in
        (try loop () with Break_exc -> ());
        ""
      | _ -> err "wrong # args: should be \"for start test next command\"");

  reg "foreach" (fun t args ->
      match args with
      | [ varspec; listval; body ] ->
        let vars = Value.to_list_exn varspec in
        let vars = if vars = [] then err "foreach: empty variable list" else vars in
        let items = Value.to_list_exn listval in
        let nvars = List.length vars in
        let rec loop items =
          match items with
          | [] -> ()
          | _ ->
            let rec bind vs items =
              match vs with
              | [] -> items
              | v :: vrest -> (
                match items with
                | [] ->
                  set_var t v "";
                  bind vrest []
                | x :: irest ->
                  set_var t v x;
                  bind vrest irest)
            in
            let rest = bind vars items in
            ignore nvars;
            (try ignore (eval_string t body) with Continue_exc -> ());
            loop rest
        in
        (try loop items with Break_exc -> ());
        ""
      | _ -> err "wrong # args: should be \"foreach varList list body\"");

  reg "array" (fun t args ->
      match args with
      | [ "exists"; name ] -> Value.of_bool (array_exists t name)
      | [ "size"; name ] -> (
        let tbl, n = resolved_arrays t name in
        match Hashtbl.find_opt tbl n with
        | Some arr -> Value.of_int (Hashtbl.length arr)
        | None -> "0")
      | [ "names"; name ] | [ "names"; name; _ ] -> (
        let pattern = match args with [ _; _; p ] -> Some p | _ -> None in
        let tbl, n = resolved_arrays t name in
        match Hashtbl.find_opt tbl n with
        | None -> ""
        | Some arr ->
          Hashtbl.fold (fun k _ acc -> k :: acc) arr []
          |> List.filter (fun k ->
                 match pattern with
                 | None -> true
                 | Some p -> Strutil.glob_match ~pattern:p k)
          |> List.sort compare |> Value.of_list)
      | [ "get"; name ] -> (
        let tbl, n = resolved_arrays t name in
        match Hashtbl.find_opt tbl n with
        | None -> ""
        | Some arr ->
          Hashtbl.fold (fun k v acc -> (k, v) :: acc) arr []
          |> List.sort compare
          |> List.concat_map (fun (k, v) -> [ k; v ])
          |> Value.of_list)
      | [ "set"; name; kvlist ] ->
        let rec go = function
          | [] -> ()
          | [ _ ] -> err "array set: list must have an even number of elements"
          | k :: v :: rest ->
            set_elem t name k v;
            go rest
        in
        go (Value.to_list_exn kvlist);
        ""
      | [ "unset"; name ] ->
        let tbl, n = resolved_arrays t name in
        Hashtbl.remove tbl n;
        ""
      | [ "unset"; name; key ] ->
        unset_elem t name key;
        ""
      | _ -> err "unsupported array subcommand or wrong # args");

  reg "switch" (fun t args ->
      (* switch ?-exact|-glob? string {pattern body ...} or inline pairs;
         a body of "-" falls through to the next body *)
      let glob, rest =
        match args with
        | "-glob" :: rest -> (true, rest)
        | "-exact" :: rest -> (false, rest)
        | "--" :: rest -> (false, rest)
        | rest -> (false, rest)
      in
      let subject, pairs =
        match rest with
        | [ subject; block ] -> (subject, Value.to_list_exn block)
        | subject :: (_ :: _ as inline) -> (subject, inline)
        | _ -> err "wrong # args: should be \"switch ?options? string pattern body ...\""
      in
      let rec to_pairs = function
        | [] -> []
        | [ _ ] -> err "switch: extra pattern with no body"
        | p :: b :: rest -> (p, b) :: to_pairs rest
      in
      let pairs = to_pairs pairs in
      let matches p =
        p = "default" || if glob then Strutil.glob_match ~pattern:p subject else p = subject
      in
      let rec fire = function
        | [] -> ""
        | (p, body) :: rest ->
          if matches p then
            (* fall through "-" bodies to the next real body *)
            let rec body_of b rest =
              if b = "-" then
                match rest with
                | (_, b') :: rest' -> body_of b' rest'
                | [] -> err "switch: no body to fall through to"
              else b
            in
            eval_string t (body_of body rest)
          else fire rest
      in
      fire pairs);

  reg "subst" (fun t args ->
      match args with
      | [ s ] -> (
        match Parse.fragments s with
        | frags -> String.concat "" (List.map (eval_fragment t) frags)
        | exception Parse.Syntax_error msg -> err "subst: %s" msg)
      | _ -> err "wrong # args: should be \"subst string\"");

  reg "puts" (fun t args ->
      match args with
      | [ s ] ->
        t.output (s ^ "\n");
        ""
      | [ "-nonewline"; s ] ->
        t.output s;
        ""
      | _ -> err "wrong # args: should be \"puts ?-nonewline? string\"");

  reg "info" (fun t args ->
      match args with
      | [ "exists"; name ] ->
        Value.of_bool
          (Option.is_some (get_ref_opt t name)
          || (split_array_ref name = None && array_exists t name))
      | [ "commands" ] -> Value.of_list (List.sort compare (command_names t))
      | [ "procs" ] ->
        Value.of_list
          (List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) t.proc_bodies []))
      | [ "body"; name ] -> (
        match Hashtbl.find_opt t.proc_bodies name with
        | Some (_, body) -> body
        | None -> err "%S isn't a procedure" name)
      | [ "args"; name ] -> (
        match Hashtbl.find_opt t.proc_bodies name with
        | Some (params, _) -> params
        | None -> err "%S isn't a procedure" name)
      | [ "level" ] -> Value.of_int (List.length t.frames)
      | _ -> err "unsupported info subcommand")

let install_strings t0 =
  let reg name fn = register t0 name fn in

  reg "string" (fun _ args ->
      match args with
      | "length" :: [ s ] -> Value.of_int (String.length s)
      | "index" :: [ s; i ] ->
        let len = String.length s in
        let i = index_arg ~len i in
        if i < 0 || i >= len then "" else String.make 1 s.[i]
      | "range" :: [ s; first; last ] ->
        let len = String.length s in
        let first = max 0 (index_arg ~len first) in
        let last = min (len - 1) (index_arg ~len last) in
        if first > last then "" else String.sub s first (last - first + 1)
      | "tolower" :: [ s ] -> String.lowercase_ascii s
      | "toupper" :: [ s ] -> String.uppercase_ascii s
      | "trim" :: [ s ] -> String.trim s
      | "trimleft" :: [ s ] ->
        let n = String.length s in
        let rec skip i = if i < n && (s.[i] = ' ' || s.[i] = '\t' || s.[i] = '\n' || s.[i] = '\r') then skip (i + 1) else i in
        let i = skip 0 in
        String.sub s i (n - i)
      | "trimright" :: [ s ] ->
        let rec skip i = if i > 0 && (s.[i - 1] = ' ' || s.[i - 1] = '\t' || s.[i - 1] = '\n' || s.[i - 1] = '\r') then skip (i - 1) else i in
        String.sub s 0 (skip (String.length s))
      | "last" :: [ needle; hay ] -> (
        if needle = "" then "-1"
        else
          let nl = String.length needle and hl = String.length hay in
          let rec go i =
            if i < 0 then -1 else if String.sub hay i nl = needle then i else go (i - 1)
          in
          Value.of_int (go (hl - nl)))
      | "equal" :: [ a; b ] -> Value.of_bool (String.equal a b)
      | "compare" :: [ a; b ] -> Value.of_int (compare a b)
      | "first" :: [ needle; hay ] -> (
        if needle = "" then "-1"
        else
          let nl = String.length needle and hl = String.length hay in
          let rec go i =
            if i + nl > hl then -1
            else if String.sub hay i nl = needle then i
            else go (i + 1)
          in
          Value.of_int (go 0))
      | "match" :: [ pattern; s ] -> Value.of_bool (Strutil.glob_match ~pattern s)
      | "repeat" :: [ s; n ] ->
        let n = int_arg "count" n in
        if n <= 0 then ""
        else begin
          let b = Buffer.create (String.length s * n) in
          for _ = 1 to n do
            Buffer.add_string b s
          done;
          Buffer.contents b
        end
      | "reverse" :: [ s ] ->
        String.init (String.length s) (fun i -> s.[String.length s - 1 - i])
      | "map" :: [ mapping; s ] ->
        (* longest-first, left-to-right, single pass (Tcl semantics) *)
        let rec to_pairs = function
          | [] -> []
          | [ _ ] -> err "string map: unbalanced mapping list"
          | k :: v :: rest -> (k, v) :: to_pairs rest
        in
        let pairs = to_pairs (Value.to_list_exn mapping) in
        let buf = Buffer.create (String.length s) in
        let n = String.length s in
        let rec go i =
          if i < n then begin
            let matched =
              List.find_opt
                (fun (k, _) ->
                  k <> ""
                  && String.length k <= n - i
                  && String.sub s i (String.length k) = k)
                pairs
            in
            match matched with
            | Some (k, v) ->
              Buffer.add_string buf v;
              go (i + String.length k)
            | None ->
              Buffer.add_char buf s.[i];
              go (i + 1)
          end
        in
        go 0;
        Buffer.contents buf
      | sub :: _ -> err "unsupported string subcommand %S or wrong # args" sub
      | [] -> err "wrong # args: should be \"string subcommand ...\"");

  reg "append" (fun t args ->
      match args with
      | name :: parts ->
        let cur = Option.value ~default:"" (get_ref_opt t name) in
        let v = cur ^ String.concat "" parts in
        set_ref t name v;
        v
      | [] -> err "wrong # args: should be \"append varName ?value ...?\"");

  reg "format" (fun _ args ->
      match args with
      | fmt :: rest -> (
        match Strutil.format fmt rest with Ok s -> s | Error e -> err "format: %s" e)
      | [] -> err "wrong # args: should be \"format formatString ?arg ...?\"");

  reg "split" (fun _ args ->
      match args with
      | [ s ] -> Value.of_list (Strutil.split s ~on:" \t\n")
      | [ s; on ] -> Value.of_list (Strutil.split s ~on)
      | _ -> err "wrong # args: should be \"split string ?splitChars?\"");

  reg "join" (fun _ args ->
      match args with
      | [ l ] -> String.concat " " (Value.to_list_exn l)
      | [ l; sep ] -> String.concat sep (Value.to_list_exn l)
      | _ -> err "wrong # args: should be \"join list ?joinString?\"");

  reg "regexp" (fun t args ->
      let nocase, args =
        match args with
        | "-nocase" :: rest -> (true, rest)
        | "--" :: rest -> (false, rest)
        | rest -> (false, rest)
      in
      match args with
      | pattern :: subject :: vars -> (
        let re =
          match Regex.compile ~nocase pattern with
          | Ok re -> re
          | Error msg -> err "regexp: %s" msg
        in
        match Regex.search re subject with
        | None -> "0"
        | Some r ->
          let whole, _, _ = r.Regex.whole in
          List.iteri
            (fun i var ->
              let text =
                if i = 0 then whole
                else if i - 1 < Array.length r.Regex.groups then
                  match r.Regex.groups.(i - 1) with
                  | Some (g, _, _) -> g
                  | None -> ""
                else ""
              in
              set_ref t var text)
            vars;
          "1")
      | _ -> err "wrong # args: should be \"regexp ?-nocase? exp string ?matchVar ...?\"");

  reg "regsub" (fun t args ->
      let rec opts all nocase = function
        | "-all" :: rest -> opts true nocase rest
        | "-nocase" :: rest -> opts all true rest
        | "--" :: rest -> (all, nocase, rest)
        | rest -> (all, nocase, rest)
      in
      let all, nocase, args = opts false false args in
      match args with
      | [ pattern; subject; template ] | [ pattern; subject; template; _ ] -> (
        let re =
          match Regex.compile ~nocase pattern with
          | Ok re -> re
          | Error msg -> err "regsub: %s" msg
        in
        let result, count = Regex.replace re ~all ~template subject in
        match args with
        | [ _; _; _; var ] ->
          set_ref t var result;
          Value.of_int count
        | _ -> result)
      | _ ->
        err "wrong # args: should be \"regsub ?-all? ?-nocase? exp string subSpec ?varName?\"")

let install_lists t0 =
  let reg name fn = register t0 name fn in

  reg "list" (fun _ args -> Value.of_list args);

  reg "llength" (fun _ args ->
      match args with
      | [ l ] -> Value.of_int (List.length (Value.to_list_exn l))
      | _ -> err "wrong # args: should be \"llength list\"");

  reg "lindex" (fun _ args ->
      match args with
      | [ l ] -> l
      | [ l; i ] ->
        let items = Value.to_list_exn l in
        let len = List.length items in
        let i = index_arg ~len i in
        if i < 0 || i >= len then "" else nth items i
      | _ -> err "wrong # args: should be \"lindex list ?index?\"");

  reg "lappend" (fun t args ->
      match args with
      | name :: items ->
        let cur = Option.value ~default:"" (get_ref_opt t name) in
        let l = Value.to_list_exn cur @ items in
        let v = Value.of_list l in
        set_ref t name v;
        v
      | [] -> err "wrong # args: should be \"lappend varName ?value ...?\"");

  reg "lrange" (fun _ args ->
      match args with
      | [ l; first; last ] ->
        let items = Value.to_list_exn l in
        let len = List.length items in
        let first = max 0 (index_arg ~len first) in
        let last = min (len - 1) (index_arg ~len last) in
        if first > last then ""
        else Value.of_list (List.filteri (fun i _ -> i >= first && i <= last) items)
      | _ -> err "wrong # args: should be \"lrange list first last\"");

  reg "lsort" (fun _ args ->
      let rec split_opts opts args =
        match args with
        | [ l ] -> (List.rev opts, l)
        | opt :: rest when String.length opt > 0 && opt.[0] = '-' -> split_opts (opt :: opts) rest
        | _ -> err "wrong # args: should be \"lsort ?options? list\""
      in
      let opts, l = split_opts [] args in
      let items = Value.to_list_exn l in
      let numeric = List.mem "-integer" opts || List.mem "-real" opts in
      let cmp a b =
        if numeric then
          let fa =
            match Value.float_of a with Some f -> f | None -> err "expected number, got %S" a
          in
          let fb =
            match Value.float_of b with Some f -> f | None -> err "expected number, got %S" b
          in
          compare fa fb
        else compare a b
      in
      let cmp = if List.mem "-decreasing" opts then fun a b -> cmp b a else cmp in
      let sorted = List.stable_sort cmp items in
      let sorted =
        if List.mem "-unique" opts then
          List.rev
            (List.fold_left (fun acc x -> match acc with y :: _ when cmp x y = 0 -> acc | _ -> x :: acc) [] sorted)
        else sorted
      in
      Value.of_list sorted);

  reg "lsearch" (fun _ args ->
      let glob, l, pat =
        match args with
        | [ "-exact"; l; p ] -> (false, l, p)
        | [ "-glob"; l; p ] -> (true, l, p)
        | [ l; p ] -> (true, l, p) (* Tcl defaults to glob matching *)
        | _ -> err "wrong # args: should be \"lsearch ?mode? list pattern\""
      in
      let items = Value.to_list_exn l in
      let matches x = if glob then Strutil.glob_match ~pattern:pat x else String.equal pat x in
      let rec go i = function
        | [] -> -1
        | x :: rest -> if matches x then i else go (i + 1) rest
      in
      Value.of_int (go 0 items));

  reg "linsert" (fun _ args ->
      match args with
      | l :: i :: (_ :: _ as items) ->
        let cur = Value.to_list_exn l in
        let len = List.length cur in
        let i = max 0 (min len (index_arg ~len:(len + 1) i)) in
        let before = List.filteri (fun j _ -> j < i) cur in
        let after = List.filteri (fun j _ -> j >= i) cur in
        Value.of_list (before @ items @ after)
      | _ -> err "wrong # args: should be \"linsert list index element ?element ...?\"");

  reg "lreverse" (fun _ args ->
      match args with
      | [ l ] -> Value.of_list (List.rev (Value.to_list_exn l))
      | _ -> err "wrong # args: should be \"lreverse list\"");

  reg "lassign" (fun t args ->
      match args with
      | l :: (_ :: _ as names) ->
        let items = Value.to_list_exn l in
        let rec go names items =
          match names with
          | [] -> Value.of_list items
          | n :: nrest -> (
            match items with
            | [] ->
              set_var t n "";
              go nrest []
            | x :: irest ->
              set_var t n x;
              go nrest irest)
        in
        go names items
      | _ -> err "wrong # args: should be \"lassign list varName ?varName ...?\"");

  reg "concat" (fun _ args ->
      Value.of_list (List.concat_map Value.to_list_exn args));

  reg "lrepeat" (fun _ args ->
      match args with
      | count :: (_ :: _ as items) ->
        let n = int_arg "count" count in
        if n < 0 then err "lrepeat: negative count";
        Value.of_list (List.concat (List.init n (fun _ -> items)))
      | _ -> err "wrong # args: should be \"lrepeat count ?value ...?\"");

  reg "lmap" (fun t args ->
      match args with
      | [ varspec; listval; body ] ->
        let vars = Value.to_list_exn varspec in
        if vars = [] then err "lmap: empty variable list";
        let items = Value.to_list_exn listval in
        let out = ref [] in
        let rec loop items =
          match items with
          | [] -> ()
          | _ ->
            let rec bind vs items =
              match vs with
              | [] -> items
              | v :: vrest -> (
                match items with
                | [] ->
                  set_var t v "";
                  bind vrest []
                | x :: irest ->
                  set_var t v x;
                  bind vrest irest)
            in
            let rest = bind vars items in
            (try out := eval_string t body :: !out with Continue_exc -> ());
            loop rest
        in
        (try loop items with Break_exc -> ());
        Value.of_list (List.rev !out)
      | _ -> err "wrong # args: should be \"lmap varList list body\"")

let create ?step_limit ?(max_depth = 256) () =
  let t =
    {
      commands = Hashtbl.create 64;
      proc_bodies = Hashtbl.create 16;
      globals = Hashtbl.create 32;
      global_arrays = Hashtbl.create 8;
      frames = [];
      steps = 0;
      limit = step_limit;
      depth = 0;
      max_depth;
      prof_commands = 0;
      prof_proc_calls = 0;
      prof_max_depth = 0;
      parse_cache = Hashtbl.create 64;
      out_buf = Buffer.create 256;
      output = ignore;
    }
  in
  t.output <- (fun s -> Buffer.add_string t.out_buf s);
  install_core t;
  install_strings t;
  install_lists t;
  t

(* ---- profiling ---------------------------------------------------------- *)

(* Defined last: the [commands]/[max_depth] field names would otherwise
   shadow the interpreter record's own fields for the code above. *)
type profile = { commands : int; proc_calls : int; max_depth : int }

let profile t =
  { commands = t.prof_commands; proc_calls = t.prof_proc_calls; max_depth = t.prof_max_depth }

module Net = Netsim.Net
module Engine = Netsim.Engine

type config = { hb_interval : float; fail_timeout : float; payload_overhead : int }

let default_config = { hb_interval = 0.5; fail_timeout = 2.0; payload_overhead = 48 }

type body =
  | Data of { sender : int; seq : int; data : string }
  | OrderReq of { sender : int; data : string }
  | Ordered of { gseq : int; sender : int; data : string }
  | Heartbeat of { from : int }
  | ViewMsg of { view : View.t }
  | JoinReq of { site : int }
  | StateMsg of { view : View.t; state : string; next_gseq : int }

type Netsim.Message.payload += Hmsg of { group : string; body : body }

type member = {
  site : int;
  mutable view : View.t;
  mutable alive : bool;
  mutable send_seq : int;
  next_from : (int, int) Hashtbl.t;
  holdback : (int * int, string) Hashtbl.t;
  mutable gseq_next : int;
  ghold : (int, int * string) Hashtbl.t;
  mutable gseq_counter : int; (* used while coordinator *)
  last_heard : (int, float) Hashtbl.t;
  mutable deliver_cb : (sender:int -> string -> unit) option;
  mutable view_cb : (View.t -> unit) option;
  mutable state_provider : (unit -> string) option;
  mutable state_cb : (string -> unit) option;
  mutable tick_timer : Engine.timer option;
}

type t = {
  net : Net.t;
  gname : string;
  config : config;
  endpoints : (int, member) Hashtbl.t;
  mutable latest_view : View.t;
}

let name t = t.gname
let handler_key t = "horus:" ^ t.gname

let endpoint t site = Hashtbl.find_opt t.endpoints site

let view_at t site =
  match endpoint t site with
  | Some m when m.alive -> Some m.view
  | Some _ | None -> None

let member_sites t =
  Hashtbl.fold (fun site m acc -> if m.alive then site :: acc else acc) t.endpoints []
  |> List.sort compare

let on_deliver t site cb =
  match endpoint t site with
  | Some m -> m.deliver_cb <- Some (fun ~sender data -> cb ~sender data)
  | None -> invalid_arg "Group.on_deliver: not a member"

let on_view t site cb =
  match endpoint t site with
  | Some m -> m.view_cb <- Some cb
  | None -> invalid_arg "Group.on_view: not a member"

let set_state_provider t site f =
  match endpoint t site with
  | Some m -> m.state_provider <- Some f
  | None -> invalid_arg "Group.set_state_provider: not a member"

let on_state t site cb =
  match endpoint t site with
  | Some m -> m.state_cb <- Some cb
  | None -> invalid_arg "Group.on_state: not a member"

let send_body t ~src ~dst ~extra body =
  Net.send t.net ~src ~dst ~size:(t.config.payload_overhead + extra)
    (Hmsg { group = t.gname; body })

(* --- delivery machinery -------------------------------------------------- *)

let deliver m ~sender data =
  match m.deliver_cb with None -> () | Some cb -> cb ~sender data

(* FIFO per-sender: deliver in-sequence, hold back gaps. *)
let handle_data m ~sender ~seq data =
  let expected = Option.value ~default:0 (Hashtbl.find_opt m.next_from sender) in
  if seq < expected then () (* duplicate *)
  else begin
    Hashtbl.replace m.holdback (sender, seq) data;
    let rec flush n =
      match Hashtbl.find_opt m.holdback (sender, n) with
      | None -> Hashtbl.replace m.next_from sender n
      | Some d ->
        Hashtbl.remove m.holdback (sender, n);
        deliver m ~sender d;
        flush (n + 1)
    in
    flush expected
  end

(* Total order: deliver in global-sequence order.  Note: across coordinator
   failures the order is best-effort — real Horus runs a flush protocol on
   view change; our experiments only require agreement under stable views. *)
let handle_ordered m ~gseq ~sender data =
  if gseq < m.gseq_next then ()
  else begin
    Hashtbl.replace m.ghold gseq (sender, data);
    let rec flush n =
      match Hashtbl.find_opt m.ghold n with
      | None -> m.gseq_next <- n
      | Some (s, d) ->
        Hashtbl.remove m.ghold n;
        deliver m ~sender:s d;
        flush (n + 1)
    in
    flush m.gseq_next
  end

let adopt_view t m view =
  if view.View.id > m.view.View.id then begin
    Obs.Metrics.incr (Net.metrics t.net) ~labels:[ ("group", t.gname) ] "horus.view_changes";
    m.view <- view;
    if view.View.id > t.latest_view.View.id then t.latest_view <- view;
    (* forget suspicion state for departed members *)
    Hashtbl.reset m.last_heard;
    List.iter (fun s -> Hashtbl.replace m.last_heard s (Net.now t.net)) view.View.members;
    match m.view_cb with None -> () | Some cb -> cb view
  end

let broadcast_view t m view =
  List.iter
    (fun dst -> if dst <> m.site then send_body t ~src:m.site ~dst ~extra:(8 * View.size view) (ViewMsg { view }))
    view.View.members

(* --- heartbeating and failure detection ---------------------------------- *)

(* All-to-all heartbeating.  Every member heartbeats every other member and
   tracks last-heard times; a member installs a new view excluding its
   suspects exactly when it would be the coordinator of that view — i.e.
   the lowest-ranked live member acts, which handles the coordinator and
   its successors dying together.  Competing installs are resolved by view
   id (adopt_view keeps the highest). *)
let rec tick t m =
  if m.alive && Net.site_up t.net m.site then begin
    let now = Net.now t.net in
    List.iter
      (fun dst ->
        if dst <> m.site then begin
          Obs.Metrics.incr (Net.metrics t.net) ~labels:[ ("group", t.gname) ] "horus.heartbeats";
          send_body t ~src:m.site ~dst ~extra:0 (Heartbeat { from = m.site })
        end)
      m.view.View.members;
    let suspected =
      List.filter
        (fun s ->
          s <> m.site
          && now -. Option.value ~default:now (Hashtbl.find_opt m.last_heard s)
             > t.config.fail_timeout)
        m.view.View.members
    in
    if suspected <> [] then begin
      let view = List.fold_left View.without m.view suspected in
      if View.coordinator view = Some m.site then begin
        Netsim.Trace.add (Net.trace t.net) ~time:now Netsim.Trace.Note
          (Printf.sprintf "horus %s: site-%d suspects {%s}, installs view %d" t.gname m.site
             (String.concat "," (List.map string_of_int suspected))
             view.View.id);
        adopt_view t m view;
        broadcast_view t m view
      end
    end;
    m.tick_timer <-
      Some (Net.schedule t.net ~after:t.config.hb_interval (fun () -> tick t m))
  end

(* --- incoming message handling ------------------------------------------- *)

let handle t m (msg : Netsim.Message.t) =
  match msg.payload with
  | Hmsg { group; body } when group = t.gname && m.alive ->
    Hashtbl.replace m.last_heard msg.src (Net.now t.net);
    (match body with
    | Data { sender; seq; data } -> handle_data m ~sender ~seq data
    | Ordered { gseq; sender; data } -> handle_ordered m ~gseq ~sender data
    | OrderReq { sender; data } ->
      (* only the coordinator sequences *)
      if View.coordinator m.view = Some m.site then begin
        let gseq = m.gseq_counter in
        m.gseq_counter <- gseq + 1;
        List.iter
          (fun dst ->
            send_body t ~src:m.site ~dst ~extra:(String.length data)
              (Ordered { gseq; sender; data }))
          m.view.View.members
      end
    | Heartbeat { from = _ } -> ()
    | ViewMsg { view } -> adopt_view t m view
    | JoinReq { site } ->
      if View.coordinator m.view = Some m.site && not (View.mem m.view site) then begin
        let view = View.with_member m.view site in
        adopt_view t m view;
        broadcast_view t m view;
        let state =
          match m.state_provider with None -> "" | Some f -> f ()
        in
        send_body t ~src:m.site ~dst:site ~extra:(String.length state)
          (StateMsg { view; state; next_gseq = m.gseq_counter })
      end
    | StateMsg { view; state; next_gseq } ->
      Hashtbl.reset m.next_from;
      Hashtbl.reset m.holdback;
      Hashtbl.reset m.ghold;
      m.gseq_next <- next_gseq;
      m.gseq_counter <- next_gseq;
      adopt_view t m view;
      (match m.state_cb with None -> () | Some cb -> cb state))
  | Hmsg _ | _ -> ()

let arm_endpoint t m =
  m.alive <- true;
  Net.set_handler t.net m.site ~key:(handler_key t) (fun msg -> handle t m msg);
  (match m.tick_timer with Some timer -> Engine.cancel timer | None -> ());
  m.tick_timer <- Some (Net.schedule t.net ~after:t.config.hb_interval (fun () -> tick t m))

let make_member t site view =
  let m =
    {
      site;
      view;
      alive = false;
      send_seq = 0;
      next_from = Hashtbl.create 8;
      holdback = Hashtbl.create 8;
      gseq_next = 0;
      ghold = Hashtbl.create 8;
      gseq_counter = 0;
      last_heard = Hashtbl.create 8;
      deliver_cb = None;
      view_cb = None;
      state_provider = None;
      state_cb = None;
      tick_timer = None;
    }
  in
  Hashtbl.replace t.endpoints site m;
  Net.on_crash t.net site (fun () ->
      m.alive <- false;
      match m.tick_timer with
      | Some timer ->
        Engine.cancel timer;
        m.tick_timer <- None
      | None -> ());
  m

let create ?(config = default_config) net ~name ~members =
  if members = [] then invalid_arg "Group.create: empty membership";
  List.iter
    (fun s -> if not (Net.site_up net s) then invalid_arg "Group.create: member is down")
    members;
  let view = View.make ~id:1 ~members in
  let t = { net; gname = name; config; endpoints = Hashtbl.create 8; latest_view = view } in
  List.iter
    (fun site ->
      let m = make_member t site view in
      arm_endpoint t m;
      List.iter (fun s -> Hashtbl.replace m.last_heard s (Net.now net)) members)
    members;
  t

let mcast t ~from ?(total = false) data =
  match endpoint t from with
  | Some m when m.alive && Net.site_up t.net from ->
    if total then begin
      match View.coordinator m.view with
      | Some c ->
        send_body t ~src:from ~dst:c ~extra:(String.length data) (OrderReq { sender = from; data })
      | None -> ()
    end
    else begin
      let seq = m.send_seq in
      m.send_seq <- seq + 1;
      List.iter
        (fun dst ->
          send_body t ~src:from ~dst ~extra:(String.length data)
            (Data { sender = from; seq; data }))
        m.view.View.members
    end
  | Some _ | None -> ()

let rejoin t site =
  if Net.site_up t.net site then begin
    let m =
      match endpoint t site with
      | Some m -> m
      | None -> make_member t site (View.make ~id:0 ~members:[ site ])
    in
    (* stale identity: wipe per-stream state, it will be refreshed by the
       coordinator's StateMsg *)
    Hashtbl.reset m.next_from;
    Hashtbl.reset m.holdback;
    Hashtbl.reset m.ghold;
    m.view <- View.make ~id:0 ~members:[ site ];
    arm_endpoint t m;
    (* a single JoinReq can be lost, or the believed coordinator can itself
       be down: retry until admitted, falling back to a singleton view if
       nobody answers *)
    let admitted () = m.view.View.id > 0 && View.mem m.view site in
    let singleton () =
      adopt_view t m (View.make ~id:(t.latest_view.View.id + 1) ~members:[ site ])
    in
    let max_join_attempts = 10 in
    let rec try_join attempts =
      if m.alive && Net.site_up t.net site && not (admitted ()) then begin
        if attempts >= max_join_attempts then singleton ()
        else begin
          (match View.coordinator t.latest_view with
          | Some c when c <> site -> send_body t ~src:site ~dst:c ~extra:0 (JoinReq { site })
          | Some _ | None -> singleton ());
          ignore
            (Net.schedule t.net ~after:(2.0 *. t.config.hb_interval) (fun () ->
                 try_join (attempts + 1)))
        end
      end
    in
    try_join 0
  end

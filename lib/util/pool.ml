(* Fixed-size domain pool with a FIFO task queue.

   The queue is a plain [Queue.t] under one mutex/condvar pair; workers
   block on [work_available] and drain remaining tasks before exiting on
   shutdown.  Results travel through per-future cells with their own
   mutex/condvar, so completion order never reorders results: [map] awaits
   futures in submission order.

   [jobs <= 1] spawns no domains at all — [submit] runs the thunk inline,
   so the serial path is exactly a [List.map] over the tasks, with no
   scheduling, locking or allocation differences for callers to reason
   about. *)

type task = unit -> unit

type t = {
  jobs : int;
  lock : Mutex.t;
  work_available : Condition.t;
  tasks : task Queue.t;
  mutable stopping : bool;
  mutable workers : unit Domain.t list;
}

type 'a cell = Pending | Done of 'a | Failed of exn * Printexc.raw_backtrace

type 'a future = {
  flock : Mutex.t;
  fdone : Condition.t;
  mutable cell : 'a cell;
}

let resolve_jobs jobs =
  if jobs < 0 then invalid_arg "Pool.create: jobs must be >= 0"
  else if jobs = 0 then Domain.recommended_domain_count ()
  else jobs

let rec worker_loop t =
  Mutex.lock t.lock;
  let rec next () =
    match Queue.take_opt t.tasks with
    | Some task -> Some task
    | None ->
      if t.stopping then None
      else begin
        Condition.wait t.work_available t.lock;
        next ()
      end
  in
  let task = next () in
  Mutex.unlock t.lock;
  match task with
  | None -> ()
  | Some task ->
    task ();
    worker_loop t

let create ?(jobs = 1) () =
  let jobs = resolve_jobs jobs in
  let t =
    {
      jobs;
      lock = Mutex.create ();
      work_available = Condition.create ();
      tasks = Queue.create ();
      stopping = false;
      workers = [];
    }
  in
  if jobs > 1 then
    t.workers <- List.init jobs (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let jobs t = t.jobs

let submit t f =
  let fut = { flock = Mutex.create (); fdone = Condition.create (); cell = Pending } in
  let run () =
    let outcome =
      match f () with
      | v -> Done v
      | exception e -> Failed (e, Printexc.get_raw_backtrace ())
    in
    Mutex.lock fut.flock;
    fut.cell <- outcome;
    Condition.broadcast fut.fdone;
    Mutex.unlock fut.flock
  in
  if t.jobs <= 1 then begin
    if t.stopping then invalid_arg "Pool.submit: pool is shut down";
    run ()
  end
  else begin
    Mutex.lock t.lock;
    let stopped = t.stopping in
    if not stopped then begin
      Queue.add run t.tasks;
      Condition.signal t.work_available
    end;
    Mutex.unlock t.lock;
    if stopped then invalid_arg "Pool.submit: pool is shut down"
  end;
  fut

let await fut =
  Mutex.lock fut.flock;
  let rec wait () =
    match fut.cell with
    | Pending ->
      Condition.wait fut.fdone fut.flock;
      wait ()
    | Done v ->
      Mutex.unlock fut.flock;
      v
    | Failed (e, bt) ->
      Mutex.unlock fut.flock;
      Printexc.raise_with_backtrace e bt
  in
  wait ()

let map t f xs =
  let futures = List.map (fun x -> submit t (fun () -> f x)) xs in
  List.map await futures

let shutdown t =
  Mutex.lock t.lock;
  t.stopping <- true;
  Condition.broadcast t.work_available;
  Mutex.unlock t.lock;
  List.iter Domain.join t.workers;
  t.workers <- []

let with_pool ?jobs f =
  let t = create ?jobs () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

(** Bounded LRU cache with O(1) lookup, insert and eviction.

    The cache holds at most [budget] total weight; each value weighs
    [weight v] (default 1, making [budget] a plain entry-count bound).
    Inserting past the budget evicts least-recently-used entries one at a
    time — never a wholesale dump — so a hot working set survives a single
    cold insert.  Used for the interpreter's parse and compiled-expression
    caches and for the per-site code cache's byte-budgeted store. *)

type ('k, 'v) t

val create :
  ?on_evict:('k -> 'v -> unit) ->
  ?weight:('v -> int) ->
  budget:int ->
  unit ->
  ('k, 'v) t
(** [on_evict] fires for each entry pushed out by an insert (not for
    {!clear} or {!remove}).  [weight] is sampled when a value is added.
    @raise Invalid_argument if [budget <= 0]. *)

val find_opt : ('k, 'v) t -> 'k -> 'v option
(** Lookup; a hit refreshes the entry's recency. *)

val mem : ('k, 'v) t -> 'k -> bool
(** Membership test without refreshing recency. *)

val add : ('k, 'v) t -> 'k -> 'v -> bool
(** Insert or replace, refreshing recency and evicting LRU entries until
    the budget holds.  Returns [false] (and stores nothing) only when the
    value alone outweighs the whole budget. *)

val remove : ('k, 'v) t -> 'k -> unit
val clear : ('k, 'v) t -> unit

val length : ('k, 'v) t -> int
val used : ('k, 'v) t -> int
(** Total stored weight. *)

val budget : ('k, 'v) t -> int

val evictions : ('k, 'v) t -> int
(** Cumulative evictions since creation (survives {!clear}). *)

val keys : ('k, 'v) t -> 'k list
(** Keys in recency order, most recently used first. *)

val fold : ('k -> 'v -> 'acc -> 'acc) -> ('k, 'v) t -> 'acc -> 'acc
(** Fold in recency order, most recently used first. *)

(** Work-queue domain pool for embarrassingly-parallel simulation sweeps.

    A pool owns a fixed set of worker domains pulling thunks from a FIFO
    queue (one mutex/condvar pair).  Results come back through futures, so
    {!map} always returns results in {e submission} order regardless of
    completion order — the property the byte-identical sweep contract rests
    on.  A task that raises has its exception (and backtrace) captured and
    re-raised at {!await} in the submitting domain.

    {b The determinism contract.}  Tasks must not share mutable simulation
    state: each task builds its own kernel, net, metrics registry, tracer
    and interpreter cache pair.  Every per-simulation value in this
    codebase already satisfies that (seeded split RNG streams, per-net
    registries, per-kernel id fountains, per-caches interpreter uids); a
    sweep task is safe exactly when it only touches values it created.
    Under that discipline [jobs = 4] produces byte-identical output to
    [jobs = 1].

    With [jobs <= 1] (the default) no domains are spawned and {!submit}
    runs the thunk inline — the serial path is literally today's
    [List.map]. *)

type t

type 'a future

val create : ?jobs:int -> unit -> t
(** [jobs] defaults to [1] (serial, no domains).  [0] means
    [Domain.recommended_domain_count ()].
    @raise Invalid_argument on negative [jobs]. *)

val jobs : t -> int
(** The resolved worker count ([>= 1]). *)

val submit : t -> (unit -> 'a) -> 'a future
(** Enqueue a task (or run it inline when [jobs <= 1]).  Tasks started
    after {!shutdown} raise [Invalid_argument]. *)

val await : 'a future -> 'a
(** Block until the task finishes; re-raises the task's exception with its
    original backtrace if it failed.  Awaiting twice is fine. *)

val map : t -> ('a -> 'b) -> 'a list -> 'b list
(** [map t f xs] submits [f x] for every element, then awaits in
    submission order: the result list lines up with [xs] exactly as
    [List.map f xs] would, whatever order workers finish in. *)

val shutdown : t -> unit
(** Stop accepting tasks, drain the queue, join the workers.  Idempotent. *)

val with_pool : ?jobs:int -> (t -> 'a) -> 'a
(** [with_pool ~jobs f] runs [f] over a fresh pool and always shuts it
    down, even when [f] raises. *)

(* Bounded LRU cache: hashtable + intrusive doubly-linked recency list.
   Generalises the eviction discipline of the per-site code cache: entries
   carry a weight (default 1, i.e. a plain entry count bound), the total
   weight is kept at or below [budget], and inserts push out the least
   recently used entries.  O(1) per operation, no scans. *)

type ('k, 'v) node = {
  key : 'k;
  mutable value : 'v;
  mutable w : int;
  mutable prev : ('k, 'v) node option; (* towards most recent *)
  mutable next : ('k, 'v) node option; (* towards least recent *)
}

type ('k, 'v) t = {
  tbl : ('k, ('k, 'v) node) Hashtbl.t;
  budget : int;
  weight : 'v -> int;
  on_evict : 'k -> 'v -> unit;
  mutable head : ('k, 'v) node option; (* most recent *)
  mutable tail : ('k, 'v) node option; (* least recent *)
  mutable used : int;
  mutable evictions : int;
}

let create ?(on_evict = fun _ _ -> ()) ?(weight = fun _ -> 1) ~budget () =
  if budget <= 0 then invalid_arg "Lru.create: budget must be positive";
  {
    tbl = Hashtbl.create 64;
    budget;
    weight;
    on_evict;
    head = None;
    tail = None;
    used = 0;
    evictions = 0;
  }

let unlink t n =
  (match n.prev with Some p -> p.next <- n.next | None -> t.head <- n.next);
  (match n.next with Some s -> s.prev <- n.prev | None -> t.tail <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front t n =
  n.next <- t.head;
  n.prev <- None;
  (match t.head with Some h -> h.prev <- Some n | None -> t.tail <- Some n);
  t.head <- Some n

let touch t n =
  match n.prev with
  | None -> () (* already most recent *)
  | Some _ ->
    unlink t n;
    push_front t n

let evict_lru t =
  match t.tail with
  | None -> ()
  | Some n ->
    unlink t n;
    Hashtbl.remove t.tbl n.key;
    t.used <- t.used - n.w;
    t.evictions <- t.evictions + 1;
    t.on_evict n.key n.value

let find_opt t k =
  match Hashtbl.find_opt t.tbl k with
  | None -> None
  | Some n ->
    touch t n;
    Some n.value

let mem t k = Hashtbl.mem t.tbl k

let add t k v =
  let w = t.weight v in
  match Hashtbl.find_opt t.tbl k with
  | Some n ->
    t.used <- t.used - n.w + w;
    n.value <- v;
    n.w <- w;
    touch t n;
    (* replacing with a heavier value may push the total over budget *)
    while t.used > t.budget && t.tail != Some n do
      evict_lru t
    done;
    true
  | None ->
    if w > t.budget then false
    else begin
      while t.used + w > t.budget do
        evict_lru t
      done;
      let n = { key = k; value = v; w; prev = None; next = None } in
      push_front t n;
      Hashtbl.replace t.tbl k n;
      t.used <- t.used + w;
      true
    end

let remove t k =
  match Hashtbl.find_opt t.tbl k with
  | None -> ()
  | Some n ->
    unlink t n;
    Hashtbl.remove t.tbl k;
    t.used <- t.used - n.w

let clear t =
  Hashtbl.reset t.tbl;
  t.head <- None;
  t.tail <- None;
  t.used <- 0

let length t = Hashtbl.length t.tbl
let used t = t.used
let budget t = t.budget
let evictions t = t.evictions

let keys t =
  (* most recent first *)
  let rec go acc = function
    | None -> List.rev acc
    | Some n -> go (n.key :: acc) n.next
  in
  go [] t.head

let fold f t init =
  let rec go acc = function
    | None -> acc
    | Some n -> go (f n.key n.value acc) n.next
  in
  go init t.head

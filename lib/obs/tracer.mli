(** The flight recorder proper: a bounded ring of structured events plus
    span-id allocation.

    Cost discipline: every recording function is a no-op while the tracer
    is disabled, and [start_span] returns [Span.null] without allocating
    ids.  Call sites that would build attribute lists or format strings
    must guard with [enabled] so the disabled path allocates nothing —
    tracing off must leave a simulation byte-identical. *)

type t

val create : ?capacity:int -> ?enabled:bool -> unit -> t
(** [capacity] (default 65536) bounds the event ring; the oldest events are
    evicted beyond it.  [enabled] defaults to [false]. *)

val enabled : t -> bool
val set_enabled : t -> bool -> unit

val start_span :
  t ->
  time:float ->
  ?parent:Span.ctx ->
  ?site:int ->
  ?agent:string ->
  ?msg:string ->
  ?attrs:Event.attrs ->
  string ->
  Span.ctx
(** Opens a span and records a [Begin] event.  With [parent], the new span
    joins the parent's trace and records the causal edge; without, a fresh
    trace id is allocated (a new root).  Returns [Span.null] when
    disabled. *)

val end_span :
  t ->
  time:float ->
  ?site:int ->
  ?agent:string ->
  ?attrs:Event.attrs ->
  Span.ctx ->
  string ->
  unit
(** Records the [End] event for [ctx].  No-op when disabled or when [ctx]
    is [Span.null] (a span begun while tracing was off). *)

val instant :
  t ->
  time:float ->
  ?span:Span.ctx ->
  ?cat:string ->
  ?site:int ->
  ?agent:string ->
  ?msg:string ->
  ?attrs:Event.attrs ->
  string ->
  unit
(** Records a point event, optionally attributed to a live span. *)

val events : t -> Event.t list
(** Oldest first. *)

val length : t -> int
val evicted : t -> int
val clear : t -> unit

type ctx = { trace_id : int; span_id : int }

let null = { trace_id = 0; span_id = 0 }
let is_null c = c.span_id = 0

let to_string c = Printf.sprintf "t%d.s%d" c.trace_id c.span_id

let of_string s =
  match String.index_opt s '.' with
  | Some dot
    when String.length s > dot + 2 && s.[0] = 't' && s.[dot + 1] = 's' -> (
    match
      ( int_of_string_opt (String.sub s 1 (dot - 1)),
        int_of_string_opt (String.sub s (dot + 2) (String.length s - dot - 2)) )
    with
    | Some trace_id, Some span_id when trace_id > 0 && span_id > 0 ->
      Some { trace_id; span_id }
    | _ -> None)
  | _ -> None

let pp fmt c = Format.pp_print_string fmt (to_string c)

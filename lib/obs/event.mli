(** One structured flight-recorder event.  Replaces the old flat-string
    trace entry: every event carries site, agent, span identity and typed
    attributes, so a dumped trace can be reloaded and the causal tree of a
    run reconstructed. *)

type attr = S of string | I of int | F of float | B of bool
type attrs = (string * attr) list

type kind =
  | Begin  (** a span opened (activation, meet) *)
  | End  (** the matching span closed *)
  | Instant  (** a point event (send, drop, migrate, relaunch, ...) *)

type t = {
  seq : int;  (** monotonic sequence number, breaks time ties *)
  time : float;  (** simulated seconds *)
  kind : kind;
  name : string;  (** e.g. ["activate:ag_script"], ["net.send"] *)
  cat : string;  (** subsystem: ["net"], ["kernel"], ["agent"], ... *)
  site : int;  (** [-1] when not site-bound *)
  agent : string;  (** [""] when not agent-bound *)
  span : Span.ctx;  (** [Span.null] for unattributed events *)
  parent_id : int;  (** parent span id, [0] for roots / instants *)
  msg : string;  (** human-readable detail, [""] when attrs suffice *)
  attrs : attrs;
}

val attr_to_string : attr -> string
val pp : Format.formatter -> t -> unit

(* Hand-rolled JSON emission: the dependency footprint stays zero and the
   output is deterministic byte-for-byte (golden-tested). *)

let add_json_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let add_json_float buf f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Buffer.add_string buf (Printf.sprintf "%.0f" f)
  else Buffer.add_string buf (Printf.sprintf "%.6f" f)

let add_attr buf (v : Event.attr) =
  match v with
  | Event.S s -> add_json_string buf s
  | Event.I i -> Buffer.add_string buf (string_of_int i)
  | Event.F f -> add_json_float buf f
  | Event.B b -> Buffer.add_string buf (if b then "true" else "false")

let kind_name = function
  | Event.Begin -> "begin"
  | Event.End -> "end"
  | Event.Instant -> "instant"

let add_event buf (e : Event.t) =
  Buffer.add_string buf "{\"seq\":";
  Buffer.add_string buf (string_of_int e.seq);
  Buffer.add_string buf ",\"t\":";
  add_json_float buf e.time;
  Buffer.add_string buf ",\"kind\":";
  add_json_string buf (kind_name e.kind);
  Buffer.add_string buf ",\"name\":";
  add_json_string buf e.name;
  if e.cat <> "" then begin
    Buffer.add_string buf ",\"cat\":";
    add_json_string buf e.cat
  end;
  if e.site >= 0 then begin
    Buffer.add_string buf ",\"site\":";
    Buffer.add_string buf (string_of_int e.site)
  end;
  if e.agent <> "" then begin
    Buffer.add_string buf ",\"agent\":";
    add_json_string buf e.agent
  end;
  if not (Span.is_null e.span) then begin
    Buffer.add_string buf (Printf.sprintf ",\"trace\":%d,\"span\":%d" e.span.Span.trace_id e.span.Span.span_id);
    if e.parent_id <> 0 then
      Buffer.add_string buf (Printf.sprintf ",\"parent\":%d" e.parent_id)
  end;
  if e.msg <> "" then begin
    Buffer.add_string buf ",\"msg\":";
    add_json_string buf e.msg
  end;
  if e.attrs <> [] then begin
    Buffer.add_string buf ",\"attrs\":{";
    let first = ref true in
    List.iter
      (fun (k, v) ->
        if not !first then Buffer.add_char buf ',';
        first := false;
        add_json_string buf k;
        Buffer.add_char buf ':';
        add_attr buf v)
      e.attrs
  end;
  if e.attrs <> [] then Buffer.add_char buf '}';
  Buffer.add_char buf '}'

let json_of_event e =
  let buf = Buffer.create 128 in
  add_event buf e;
  Buffer.contents buf

let jsonl events =
  let buf = Buffer.create 4096 in
  List.iter
    (fun e ->
      add_event buf e;
      Buffer.add_char buf '\n')
    events;
  Buffer.contents buf

(* --- Chrome trace-event format ------------------------------------------- *)

let usec t = t *. 1e6

let add_chrome_event buf (e : Event.t) =
  let ph, tid =
    match e.kind with
    | Event.Begin -> ("B", e.span.Span.span_id)
    | Event.End -> ("E", e.span.Span.span_id)
    | Event.Instant -> ("i", 0)
  in
  Buffer.add_string buf "{\"name\":";
  add_json_string buf e.name;
  Buffer.add_string buf ",\"cat\":";
  add_json_string buf (if e.cat = "" then "agent" else e.cat);
  Buffer.add_string buf (Printf.sprintf ",\"ph\":%S" ph);
  if e.kind = Event.Instant then Buffer.add_string buf ",\"s\":\"t\"";
  Buffer.add_string buf ",\"ts\":";
  add_json_float buf (usec e.time);
  Buffer.add_string buf (Printf.sprintf ",\"pid\":%d,\"tid\":%d" (max 0 e.site) tid);
  Buffer.add_string buf ",\"args\":{";
  let first = ref true in
  let arg k add_v =
    if not !first then Buffer.add_char buf ',';
    first := false;
    add_json_string buf k;
    Buffer.add_char buf ':';
    add_v ()
  in
  if e.agent <> "" then arg "agent" (fun () -> add_json_string buf e.agent);
  if e.site >= 0 then arg "site" (fun () -> Buffer.add_string buf (string_of_int e.site));
  if not (Span.is_null e.span) then begin
    arg "trace" (fun () -> Buffer.add_string buf (string_of_int e.span.Span.trace_id));
    arg "span" (fun () -> Buffer.add_string buf (string_of_int e.span.Span.span_id));
    if e.parent_id <> 0 then
      arg "parent" (fun () -> Buffer.add_string buf (string_of_int e.parent_id))
  end;
  if e.msg <> "" then arg "msg" (fun () -> add_json_string buf e.msg);
  List.iter (fun (k, v) -> arg k (fun () -> add_attr buf v)) e.attrs;
  Buffer.add_string buf "}}"

let chrome events =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"traceEvents\":[\n";
  let first = ref true in
  List.iter
    (fun e ->
      if not !first then Buffer.add_string buf ",\n";
      first := false;
      add_chrome_event buf e)
    events;
  Buffer.add_string buf "\n],\"displayTimeUnit\":\"ms\"}\n";
  Buffer.contents buf

let pp_events fmt events =
  List.iter (fun e -> Format.fprintf fmt "%a@." Event.pp e) events

let write_file path contents =
  let oc = open_out_bin path in
  output_string oc contents;
  close_out oc

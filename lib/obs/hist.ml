type t = {
  bounds : float array; (* strictly increasing upper bounds *)
  counts : int array; (* length = Array.length bounds + 1 (overflow) *)
  mutable count : int;
  mutable sum : float;
  mutable min_v : float;
  mutable max_v : float;
}

let default_bounds =
  (* 1e-6 .. ~1.7e7 by factors of 4: 23 buckets *)
  Array.init 23 (fun i -> 1e-6 *. (4.0 ** float_of_int i))

let create ?(bounds = default_bounds) () =
  Array.iteri
    (fun i b ->
      if i > 0 && b <= bounds.(i - 1) then
        invalid_arg "Hist.create: bounds must be strictly increasing")
    bounds;
  {
    bounds;
    counts = Array.make (Array.length bounds + 1) 0;
    count = 0;
    sum = 0.0;
    min_v = infinity;
    max_v = neg_infinity;
  }

let bucket_index t x =
  (* first bucket whose upper bound admits x; linear scan is fine for a
     couple dozen buckets and keeps the hot path branch-predictable *)
  let n = Array.length t.bounds in
  let rec go i = if i >= n then n else if x <= t.bounds.(i) then i else go (i + 1) in
  go 0

let observe t x =
  t.counts.(bucket_index t x) <- t.counts.(bucket_index t x) + 1;
  t.count <- t.count + 1;
  t.sum <- t.sum +. x;
  if x < t.min_v then t.min_v <- x;
  if x > t.max_v then t.max_v <- x

let count t = t.count
let sum t = t.sum
let mean t = if t.count = 0 then 0.0 else t.sum /. float_of_int t.count
let min_value t = if t.count = 0 then 0.0 else t.min_v
let max_value t = if t.count = 0 then 0.0 else t.max_v

let percentile t p =
  if t.count = 0 then 0.0
  else begin
    let p = Float.max 0.0 (Float.min 100.0 p) in
    let rank = int_of_float (ceil (p /. 100.0 *. float_of_int t.count)) in
    let rank = max 1 (min t.count rank) in
    let n = Array.length t.bounds in
    let rec find i cum =
      if i > n then (n, cum) (* unreachable: cum reaches count by overflow *)
      else
        let cum' = cum + t.counts.(i) in
        if cum' >= rank then (i, cum) else find (i + 1) cum'
    in
    let i, below = find 0 0 in
    let lo = if i = 0 then t.min_v else t.bounds.(i - 1) in
    let hi = if i >= n then t.max_v else Float.min t.bounds.(i) t.max_v in
    let lo = Float.max lo t.min_v and hi = Float.min hi t.max_v in
    if t.counts.(i) = 0 || hi <= lo then Float.min hi t.max_v
    else begin
      (* linear interpolation by rank position inside the bucket *)
      let frac = float_of_int (rank - below) /. float_of_int t.counts.(i) in
      lo +. (frac *. (hi -. lo))
    end
  end

let buckets t =
  let out = ref [] in
  let n = Array.length t.bounds in
  for i = n downto 0 do
    if t.counts.(i) > 0 then
      let bound = if i = n then infinity else t.bounds.(i) in
      out := (bound, t.counts.(i)) :: !out
  done;
  !out

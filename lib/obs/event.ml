type attr = S of string | I of int | F of float | B of bool
type attrs = (string * attr) list

type kind = Begin | End | Instant

type t = {
  seq : int;
  time : float;
  kind : kind;
  name : string;
  cat : string;
  site : int;
  agent : string;
  span : Span.ctx;
  parent_id : int;
  msg : string;
  attrs : attrs;
}

let attr_to_string = function
  | S s -> s
  | I i -> string_of_int i
  | F f -> Printf.sprintf "%g" f
  | B b -> string_of_bool b

let kind_mark = function Begin -> "B" | End -> "E" | Instant -> "."

let pp fmt e =
  Format.fprintf fmt "[%10.4f] %s %-20s" e.time (kind_mark e.kind) e.name;
  if e.site >= 0 then Format.fprintf fmt " site-%d" e.site;
  if e.agent <> "" then Format.fprintf fmt " %s" e.agent;
  if not (Span.is_null e.span) then begin
    Format.fprintf fmt " %a" Span.pp e.span;
    if e.parent_id <> 0 then Format.fprintf fmt "<-s%d" e.parent_id
  end;
  if e.msg <> "" then Format.fprintf fmt " %s" e.msg;
  List.iter
    (fun (k, v) -> Format.fprintf fmt " %s=%s" k (attr_to_string v))
    e.attrs

type t = {
  mutable enabled : bool;
  ring : Event.t Ring.t;
  mutable next_trace : int;
  mutable next_span : int;
  mutable seq : int;
}

let create ?(capacity = 65536) ?(enabled = false) () =
  { enabled; ring = Ring.create capacity; next_trace = 1; next_span = 1; seq = 0 }

let enabled t = t.enabled
let set_enabled t b = t.enabled <- b

let record t ~time ~kind ~name ~cat ~site ~agent ~span ~parent_id ~msg ~attrs =
  let seq = t.seq in
  t.seq <- seq + 1;
  Ring.push t.ring
    { Event.seq; time; kind; name; cat; site; agent; span; parent_id; msg; attrs }

let start_span t ~time ?parent ?(site = -1) ?(agent = "") ?(msg = "") ?(attrs = []) name =
  if not t.enabled then Span.null
  else begin
    let span_id = t.next_span in
    t.next_span <- span_id + 1;
    let trace_id, parent_id =
      match parent with
      | Some p when not (Span.is_null p) -> (p.Span.trace_id, p.Span.span_id)
      | Some _ | None ->
        let tid = t.next_trace in
        t.next_trace <- tid + 1;
        (tid, 0)
    in
    let span = { Span.trace_id; span_id } in
    record t ~time ~kind:Event.Begin ~name ~cat:"agent" ~site ~agent ~span ~parent_id
      ~msg ~attrs;
    span
  end

let end_span t ~time ?(site = -1) ?(agent = "") ?(attrs = []) span name =
  if t.enabled && not (Span.is_null span) then
    record t ~time ~kind:Event.End ~name ~cat:"agent" ~site ~agent ~span ~parent_id:0
      ~msg:"" ~attrs

let instant t ~time ?(span = Span.null) ?(cat = "") ?(site = -1) ?(agent = "")
    ?(msg = "") ?(attrs = []) name =
  if t.enabled then
    record t ~time ~kind:Event.Instant ~name ~cat ~site ~agent ~span ~parent_id:0 ~msg
      ~attrs

let events t = Ring.to_list t.ring
let length t = Ring.length t.ring
let evicted t = Ring.evicted t.ring

let clear t =
  Ring.clear t.ring;
  t.next_trace <- 1;
  t.next_span <- 1;
  t.seq <- 0

(** Fixed-bucket histogram with exact count/sum/min/max and interpolated
    percentiles — the measurement primitive behind hop latencies, queue
    waits and interpreter step distributions. *)

type t

val create : ?bounds:float array -> unit -> t
(** [bounds] are the strictly-increasing upper bounds of the finite
    buckets; an implicit overflow bucket catches the rest.  The default is
    exponential from 1e-6 to ~1e7 (factor 4), which spans microsecond link
    waits to multi-day simulated runs.  Raises [Invalid_argument] when
    bounds are not strictly increasing. *)

val observe : t -> float -> unit
val count : t -> int
val sum : t -> float
val mean : t -> float
val min_value : t -> float
(** 0 when empty. *)

val max_value : t -> float
(** 0 when empty. *)

val percentile : t -> float -> float
(** [percentile t p] for [p] in [0..100]: the nearest-rank value, linearly
    interpolated inside its bucket.  Clamped to the observed [min]/[max],
    so [percentile t 0 = min] and [percentile t 100 = max].  0 when
    empty. *)

val buckets : t -> (float * int) list
(** [(upper_bound, count)] per finite bucket, plus [(infinity, n)] for the
    overflow bucket; only non-empty buckets are listed. *)

(** Bounded ring buffer: O(1) push, oldest element evicted when full.  The
    flight recorder stores its event stream here so a long simulation keeps
    a fixed memory footprint and the most recent history. *)

type 'a t

val create : int -> 'a t
(** [create capacity] — raises [Invalid_argument] when [capacity <= 0]. *)

val capacity : 'a t -> int
val length : 'a t -> int

val push : 'a t -> 'a -> unit
(** Appends; evicts the oldest element when the buffer is full. *)

val evicted : 'a t -> int
(** How many elements have been pushed out since creation (or [clear]). *)

val to_list : 'a t -> 'a list
(** Oldest first. *)

val iter : ('a -> unit) -> 'a t -> unit
(** Oldest first. *)

val clear : 'a t -> unit

(** Metrics registry: counters, gauges and histograms keyed by
    (name x labels).  Always on — recording is a hashtable update and never
    perturbs the simulation (no RNG draws, no scheduling).

    A name is bound to one instrument kind; mixing kinds under one name
    raises [Invalid_argument] (it is a programming error, not data). *)

type t

type labels = (string * string) list
(** Label order is irrelevant: labels are sorted on lookup. *)

val create : unit -> t

val incr : t -> ?labels:labels -> ?by:int -> string -> unit
(** Counter increment ([by] defaults to 1). *)

val set_gauge : t -> ?labels:labels -> string -> float -> unit
val observe : t -> ?labels:labels -> string -> float -> unit

val counter : t -> ?labels:labels -> string -> int
(** 0 when the series does not exist. *)

val gauge : t -> ?labels:labels -> string -> float option
val histogram : t -> ?labels:labels -> string -> Hist.t option

val counter_total : t -> string -> int
(** Sum of a counter across all label sets. *)

val reset : t -> unit

type value = Counter of int | Gauge of float | Histogram of Hist.t

val fold : (name:string -> labels:labels -> value -> 'a -> 'a) -> t -> 'a -> 'a
(** Deterministic order: sorted by (name, labels). *)

val pp : Format.formatter -> t -> unit
(** Text dump in a prometheus-flavoured format, one series per line. *)

type labels = (string * string) list

type instrument =
  | ICounter of int ref
  | IGauge of float ref
  | IHist of Hist.t

type t = { series : (string * labels, instrument) Hashtbl.t }

let create () = { series = Hashtbl.create 64 }

let canon labels =
  match labels with
  | [] | [ _ ] -> labels
  | _ -> List.sort compare labels

let find_or_add t name labels make =
  let key = (name, canon labels) in
  match Hashtbl.find_opt t.series key with
  | Some inst -> inst
  | None ->
    let inst = make () in
    Hashtbl.replace t.series key inst;
    inst

let kind_error name what =
  invalid_arg (Printf.sprintf "Metrics: %S is not a %s" name what)

let incr t ?(labels = []) ?(by = 1) name =
  match find_or_add t name labels (fun () -> ICounter (ref 0)) with
  | ICounter r -> r := !r + by
  | IGauge _ | IHist _ -> kind_error name "counter"

let set_gauge t ?(labels = []) name v =
  match find_or_add t name labels (fun () -> IGauge (ref 0.0)) with
  | IGauge r -> r := v
  | ICounter _ | IHist _ -> kind_error name "gauge"

let observe t ?(labels = []) name v =
  match find_or_add t name labels (fun () -> IHist (Hist.create ())) with
  | IHist h -> Hist.observe h v
  | ICounter _ | IGauge _ -> kind_error name "histogram"

let find t name labels = Hashtbl.find_opt t.series (name, canon labels)

let counter t ?(labels = []) name =
  match find t name labels with
  | Some (ICounter r) -> !r
  | Some _ -> kind_error name "counter"
  | None -> 0

let gauge t ?(labels = []) name =
  match find t name labels with
  | Some (IGauge r) -> Some !r
  | Some _ -> kind_error name "gauge"
  | None -> None

let histogram t ?(labels = []) name =
  match find t name labels with
  | Some (IHist h) -> Some h
  | Some _ -> kind_error name "histogram"
  | None -> None

let counter_total t name =
  Hashtbl.fold
    (fun (n, _) inst acc ->
      match inst with ICounter r when n = name -> acc + !r | _ -> acc)
    t.series 0

let reset t = Hashtbl.reset t.series

type value = Counter of int | Gauge of float | Histogram of Hist.t

let fold f t init =
  let rows =
    Hashtbl.fold
      (fun (name, labels) inst acc ->
        let v =
          match inst with
          | ICounter r -> Counter !r
          | IGauge r -> Gauge !r
          | IHist h -> Histogram h
        in
        (name, labels, v) :: acc)
      t.series []
    |> List.sort (fun (n1, l1, _) (n2, l2, _) -> compare (n1, l1) (n2, l2))
  in
  List.fold_left (fun acc (name, labels, v) -> f ~name ~labels v acc) init rows

let pp_labels fmt = function
  | [] -> ()
  | labels ->
    Format.fprintf fmt "{%s}"
      (String.concat ","
         (List.map (fun (k, v) -> Printf.sprintf "%s=%S" k v) labels))

let pp fmt t =
  fold
    (fun ~name ~labels v () ->
      match v with
      | Counter n -> Format.fprintf fmt "%s%a %d@." name pp_labels labels n
      | Gauge g -> Format.fprintf fmt "%s%a %g@." name pp_labels labels g
      | Histogram h ->
        Format.fprintf fmt
          "%s%a count=%d sum=%g min=%g p50=%g p90=%g p99=%g max=%g@." name
          pp_labels labels (Hist.count h) (Hist.sum h) (Hist.min_value h)
          (Hist.percentile h 50.0) (Hist.percentile h 90.0)
          (Hist.percentile h 99.0) (Hist.max_value h))
    t ()

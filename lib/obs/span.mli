(** Span context: the (trace-id, span-id) pair an agent carries in the
    system TRACE folder of its briefcase.  Migrations copy the briefcase,
    so the context propagates causally: the activation at the destination
    parents itself to the span that was live when the agent dispatched. *)

type ctx = { trace_id : int; span_id : int }

val null : ctx
(** [{trace_id = 0; span_id = 0}] — what the tracer hands out while
    disabled.  Never recorded. *)

val is_null : ctx -> bool

val to_string : ctx -> string
(** Wire form carried in the briefcase, e.g. ["t3.s17"]. *)

val of_string : string -> ctx option
(** Inverse of [to_string]; [None] on malformed input. *)

val pp : Format.formatter -> ctx -> unit

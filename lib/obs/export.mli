(** Exporters for the flight recorder.

    - [jsonl]: one JSON object per event, newline-separated — greppable and
      streamable.
    - [chrome]: the Chrome trace-event (catapult) array format; load the
      file at chrome://tracing or https://ui.perfetto.dev.  Spans map to
      B/E duration events with [pid] = site and [tid] = span id; the span /
      parent / trace ids travel in [args], so the causal tree of a journey
      is reconstructible from the file alone. *)

val json_of_event : Event.t -> string
(** One self-contained JSON object (no trailing newline). *)

val jsonl : Event.t list -> string
val chrome : Event.t list -> string

val pp_events : Format.formatter -> Event.t list -> unit
(** Human-readable dump, one event per line. *)

val write_file : string -> string -> unit
(** [write_file path contents] *)

type 'a t = {
  buf : 'a option array;
  mutable start : int; (* index of the oldest element *)
  mutable len : int;
  mutable evicted : int;
}

let create capacity =
  if capacity <= 0 then invalid_arg "Ring.create: capacity must be positive";
  { buf = Array.make capacity None; start = 0; len = 0; evicted = 0 }

let capacity t = Array.length t.buf
let length t = t.len
let evicted t = t.evicted

let push t x =
  let cap = Array.length t.buf in
  if t.len = cap then begin
    (* overwrite the oldest slot and advance the window *)
    t.buf.(t.start) <- Some x;
    t.start <- (t.start + 1) mod cap;
    t.evicted <- t.evicted + 1
  end
  else begin
    t.buf.((t.start + t.len) mod cap) <- Some x;
    t.len <- t.len + 1
  end

let iter f t =
  let cap = Array.length t.buf in
  for i = 0 to t.len - 1 do
    match t.buf.((t.start + i) mod cap) with
    | Some x -> f x
    | None -> assert false
  done

let to_list t =
  let acc = ref [] in
  iter (fun x -> acc := x :: !acc) t;
  List.rev !acc

let clear t =
  Array.fill t.buf 0 (Array.length t.buf) None;
  t.start <- 0;
  t.len <- 0;
  t.evicted <- 0

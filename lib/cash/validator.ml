module Kernel = Tacoma_core.Kernel
module Briefcase = Tacoma_core.Briefcase
module Folder = Tacoma_core.Folder

let agent_name = "validator"

let read_ecus bc =
  Folder.fold
    (fun acc elem -> match Ecu.of_wire elem with Ok e -> e :: acc | Error _ -> acc)
    []
    (Briefcase.folder bc "ECUS")
  |> List.rev

let write_result bc result =
  let folder = Briefcase.folder bc "ECUS" in
  Folder.clear folder;
  match result with
  | Ok fresh ->
    Briefcase.set bc "STATUS" "ok";
    List.iter (Folder.enqueue folder) (Ecu.wire_list fresh)
  | Error failure -> Briefcase.set bc "STATUS" failure

let perform metrics mint bc =
  let ecus = read_ecus bc in
  let op = Option.value ~default:"validate" (Briefcase.find_opt bc "OP") in
  let result =
    match (op, ecus) with
    | "validate", es ->
      (* all-or-nothing: verify the whole batch (including duplicates of
         one bill inside the batch) before retiring anything, so a thief
         cannot launder a mixed batch *)
      let serials = List.map (fun e -> e.Ecu.serial) es in
      if List.length (List.sort_uniq compare serials) <> List.length serials then
        Error (Mint.failure_name Mint.Double_spent)
      else (
        match
          List.find_map
            (fun e ->
              if not (Mint.signature_valid mint e) then Some Mint.Forged
              else if not (Mint.live mint e) then Some Mint.Double_spent
              else None)
            es
        with
        | Some failure -> Error (Mint.failure_name failure)
        | None ->
          Ok
            (List.map
               (fun e ->
                 match Mint.validate_and_reissue mint e with
                 | Ok fresh -> fresh
                 | Error _ -> assert false (* just verified live *))
               es))
    | "split", [ e ] -> (
      let parts =
        List.filter_map int_of_string_opt (Folder.to_list (Briefcase.folder bc "PARTS"))
      in
      match Mint.split mint e ~parts with
      | Ok fresh -> Ok fresh
      | Error failure -> Error (Mint.failure_name failure)
      | exception Invalid_argument msg -> Error msg)
    | "split", _ -> Error "split expects exactly one bill"
    | "merge", (_ :: _ as es) -> (
      match Mint.merge mint es with
      | Ok fresh -> Ok [ fresh ]
      | Error failure -> Error (Mint.failure_name failure))
    | "merge", [] -> Error "merge expects at least one bill"
    | other, _ -> Error (Printf.sprintf "unknown operation %S" other)
  in
  Obs.Metrics.incr metrics ~labels:[ ("op", op) ] "cash.validations";
  (match result with
  | Ok _ -> ()
  | Error failure -> Obs.Metrics.incr metrics ~labels:[ ("reason", failure) ] "cash.rejections");
  write_result bc result

let install kernel ~site mint =
  let metrics = Kernel.metrics kernel in
  Kernel.register_native kernel ~site agent_name (fun _ bc -> perform metrics mint bc);
  (* remote endpoint: perform, then send the briefcase back to the named
     reply agent at the requesting site *)
  Kernel.register_native kernel ~site "validator_rpc" (fun ctx bc ->
      perform metrics mint bc;
      match (Briefcase.find_opt bc "REPLY-HOST", Briefcase.find_opt bc "REPLY-AGENT") with
      | Some host, Some reply_agent -> (
        match Kernel.site_named ctx.Kernel.kernel host with
        | Some dst ->
          Kernel.send_briefcase ctx.Kernel.kernel ~src:ctx.Kernel.site ~dst
            ~contact:reply_agent bc
        | None -> raise (Kernel.Agent_error "validator_rpc: unknown REPLY-HOST"))
      | _ -> raise (Kernel.Agent_error "validator_rpc: missing reply address"))

let remote_validate kernel ~src ~bank ecus ~on_reply =
  (* per-kernel ids: a process-wide counter would make the reply-agent name
     (serialised into the briefcase, so part of the byte accounting) depend
     on whatever other simulations ran first in this process *)
  let reply_agent = Printf.sprintf "cash-reply-%d" (Kernel.fresh_id kernel) in
  let fired = ref false in
  Kernel.register_native kernel ~site:src reply_agent (fun _ bc ->
      if not !fired then begin
        fired := true;
        match Briefcase.find_opt bc "STATUS" with
        | Some "ok" -> on_reply (Ok (read_ecus bc))
        | Some failure -> on_reply (Error failure)
        | None -> on_reply (Error "missing status")
      end);
  let bc = Briefcase.create () in
  Briefcase.set bc "OP" "validate";
  Folder.replace (Briefcase.folder bc "ECUS") (Ecu.wire_list ecus);
  Briefcase.set bc "REPLY-HOST" (Kernel.site_name kernel src);
  Briefcase.set bc "REPLY-AGENT" reply_agent;
  Kernel.send_briefcase kernel ~src ~dst:bank ~contact:"validator_rpc" bc

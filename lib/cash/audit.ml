module Kernel = Tacoma_core.Kernel
module Briefcase = Tacoma_core.Briefcase
module Folder = Tacoma_core.Folder
module Cabinet = Tacoma_core.Cabinet
module Sha256 = Tacoma_util.Sha256

type statement = {
  tx : string;
  action : string;
  actor : string;
  amount : int;
  at : float;
  signature : string;
}

let payload ~tx ~action ~actor ~amount ~at =
  Printf.sprintf "%s|%s|%s|%d|%.6f" tx action actor amount at

let sign ~key ~tx ~action ~actor ~amount ~at =
  {
    tx;
    action;
    actor;
    amount;
    at;
    signature = Sha256.hmac_hex ~key (payload ~tx ~action ~actor ~amount ~at);
  }

let statement_valid ~key s =
  String.equal s.signature
    (Sha256.hmac_hex ~key
       (payload ~tx:s.tx ~action:s.action ~actor:s.actor ~amount:s.amount ~at:s.at))

let statement_wire s =
  Printf.sprintf "%s|%s|%s|%d|%.6f|%s" s.tx s.action s.actor s.amount s.at s.signature

let statement_of_wire w =
  match String.split_on_char '|' w with
  | [ tx; action; actor; amount; at; signature ] -> (
    match (int_of_string_opt amount, float_of_string_opt at) with
    | Some amount, Some at -> Ok { tx; action; actor; amount; at; signature }
    | _ -> Error "bad numeric field")
  | _ -> Error "expected six fields"

(* --- court ----------------------------------------------------------------- *)

type verdict = Clean | Merchant_cheated | Customer_cheated | No_transaction

let verdict_name = function
  | Clean -> "clean"
  | Merchant_cheated -> "merchant-cheated"
  | Customer_cheated -> "customer-cheated"
  | No_transaction -> "no-transaction"

let judge ~keys ~log ~tx =
  let valid s =
    match List.assoc_opt s.actor keys with
    | Some key -> statement_valid ~key s
    | None -> false
  in
  let for_tx = List.filter (fun s -> s.tx = tx && valid s) log in
  let has action = List.exists (fun s -> s.action = action) for_tx in
  match (has "pay", has "serve") with
  | true, true -> Clean
  | true, false -> Merchant_cheated
  | false, true -> Customer_cheated
  | false, false -> No_transaction

(* --- witness and court agents ------------------------------------------------ *)

let witness_log_folder = "WITNESS-LOG"

let install_witness kernel ~site =
  Kernel.register_native kernel ~site "witness" (fun ctx bc ->
      let cab = Kernel.cabinet ctx.Kernel.kernel ctx.Kernel.site in
      (match Briefcase.find_opt bc "STMT" with
      | Some stmt -> Cabinet.put cab witness_log_folder stmt
      | None -> ());
      match (Briefcase.find_opt bc "FORWARD-HOST", Briefcase.find_opt bc "FORWARD-AGENT") with
      | Some host, Some agent -> (
        match Kernel.site_named ctx.Kernel.kernel host with
        | Some dst ->
          Kernel.send_briefcase ctx.Kernel.kernel ~src:ctx.Kernel.site ~dst ~contact:agent bc
        | None -> raise (Kernel.Agent_error "witness: unknown FORWARD-HOST"))
      | _ -> () (* log-only deposit *))

let read_witness_log kernel ~site =
  List.filter_map
    (fun w -> Result.to_option (statement_of_wire w))
    (Cabinet.elements (Kernel.cabinet kernel site) witness_log_folder)

let install_court kernel ~site ~keys =
  Kernel.register_native kernel ~site "court" (fun ctx bc ->
      match Briefcase.find_opt bc "TX" with
      | None -> raise (Kernel.Agent_error "court: missing TX folder")
      | Some tx ->
        let log = read_witness_log ctx.Kernel.kernel ~site:ctx.Kernel.site in
        Briefcase.set bc "VERDICT" (verdict_name (judge ~keys ~log ~tx)))

(* --- purchase choreography ----------------------------------------------------- *)

type behavior = Honest | Cheat

type purchase = {
  p_tx : string;
  mutable merchant_accepted : bool;
  mutable merchant_rejected : bool;
  mutable customer_served : bool;
  mutable merchant_bills : Ecu.t list;
}

let purchase kernel ~tx ~amount ~bills ~customer:(cname, ckey, cbehavior)
    ~merchant:(mname, mkey, mbehavior) ~customer_site ~merchant_site ~witness_site
    ~bank_site =
  let p =
    {
      p_tx = tx;
      merchant_accepted = false;
      merchant_rejected = false;
      customer_served = false;
      merchant_bills = [];
    }
  in
  let customer_host = Kernel.site_name kernel customer_site in
  let merchant_host = Kernel.site_name kernel merchant_site in
  let cust_agent = "cust-" ^ tx and merch_agent = "merch-" ^ tx in

  (* customer end: records that the service arrived *)
  Kernel.register_native kernel ~site:customer_site cust_agent (fun _ bc ->
      if Briefcase.mem bc "SERVICE" then p.customer_served <- true);

  (* merchant end: validate the cash with the bank, then serve (or not) *)
  Kernel.register_native kernel ~site:merchant_site merch_agent (fun ctx bc ->
      let k = ctx.Kernel.kernel in
      let ecus =
        Folder.fold
          (fun acc e -> match Ecu.of_wire e with Ok ecu -> ecu :: acc | Error _ -> acc)
          []
          (Briefcase.folder bc "PAYMENT")
        |> List.rev
      in
      Validator.remote_validate k ~src:merchant_site ~bank:bank_site ecus
        ~on_reply:(fun result ->
          match result with
          | Error _ -> p.merchant_rejected <- true
          | Ok fresh ->
            p.merchant_accepted <- true;
            p.merchant_bills <- fresh;
            (match mbehavior with
            | Cheat -> () (* bank the money, never serve *)
            | Honest ->
              let stmt =
                sign ~key:mkey ~tx ~action:"serve" ~actor:mname ~amount
                  ~at:(Kernel.now k)
              in
              let out = Briefcase.create () in
              Briefcase.set out "STMT" (statement_wire stmt);
              Briefcase.set out "SERVICE" ("receipt-for-" ^ tx);
              Briefcase.set out "FORWARD-HOST" customer_host;
              Briefcase.set out "FORWARD-AGENT" cust_agent;
              Kernel.send_briefcase k ~src:merchant_site ~dst:witness_site
                ~contact:"witness" out)));

  (* customer kicks things off *)
  let out = Briefcase.create () in
  Folder.replace (Briefcase.folder out "PAYMENT") (Ecu.wire_list bills);
  let stmt = sign ~key:ckey ~tx ~action:"pay" ~actor:cname ~amount ~at:(Kernel.now kernel) in
  Briefcase.set out "STMT" (statement_wire stmt);
  Briefcase.set out "FORWARD-HOST" merchant_host;
  Briefcase.set out "FORWARD-AGENT" merch_agent;
  (match cbehavior with
  | Honest ->
    (* route the payment through the witness, as the protocol requires *)
    Kernel.send_briefcase kernel ~src:customer_site ~dst:witness_site ~contact:"witness" out
  | Cheat ->
    (* bypass the witness: the payment is unprovable, and typically made
       with already-spent bills in the hope the merchant serves first *)
    Kernel.send_briefcase kernel ~src:customer_site ~dst:merchant_site ~contact:merch_agent
      out);
  p

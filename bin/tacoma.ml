(* The tacoma command-line tool: run experiments, run ad-hoc agent scripts
   on a simulated network, inspect flight-recorder output, and show a traced
   demo journey. *)

let fmt = Format.std_formatter

(* --- shared pieces --------------------------------------------------------- *)

(* transport/topology/cache parsing lives in Tacoma_cli so experiment
   drivers and this tool stay in sync *)

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  s

let write_trace_out net = function
  | None -> ()
  | Some path ->
    Obs.Export.write_file path (Obs.Export.chrome (Netsim.Trace.events (Netsim.Net.trace net)));
    Format.fprintf fmt "chrome trace written to %s (open in about:tracing or ui.perfetto.dev)@."
      path

let launch_script k code =
  let bc = Tacoma_core.Briefcase.create () in
  Tacoma_core.Briefcase.set bc Tacoma_core.Briefcase.code_folder code;
  Tacoma_core.Kernel.launch k ~site:0 ~contact:"ag_script" bc

(* --- exp: regenerate experiment tables ------------------------------------ *)

let exp_cmd =
  let run jobs ids =
    match ids with
    | [] ->
      Format.fprintf fmt "Available experiments:@.";
      List.iter
        (fun e ->
          Format.fprintf fmt "  %-4s %s@.       claim: %s@." e.Experiments.Registry.id
            e.Experiments.Registry.title e.Experiments.Registry.paper_claim)
        Experiments.Registry.all;
      `Ok ()
    | [ "all" ] ->
      Experiments.Registry.run_all ~jobs fmt;
      `Ok ()
    | ids -> (
      match
        List.find_opt (fun id -> Experiments.Registry.find id = None) ids
      with
      | Some bad -> `Error (false, Printf.sprintf "unknown experiment %S (try `tacoma exp')" bad)
      | None ->
        let entries = List.filter_map Experiments.Registry.find ids in
        Experiments.Registry.run ~jobs entries fmt;
        `Ok ())
  in
  let open Cmdliner in
  let ids = Arg.(value & pos_all string [] & info [] ~docv:"ID" ~doc:"Experiment ids (e1..e10, abl) or 'all'.") in
  Cmd.v
    (Cmd.info "exp" ~doc:"Regenerate experiment tables (no arguments lists them).")
    Term.(ret (const run $ Tacoma_cli.jobs_term $ ids))

(* --- run: execute a TScript agent on a simulated network ------------------- *)

let common_topology_args =
  let open Cmdliner in
  let topology =
    Arg.(value
         & opt Tacoma_cli.topology_conv Tacoma_cli.Ring
         & info [ "t"; "topology" ] ~doc:"ring|line|star|mesh|grid")
  in
  let n = Arg.(value & opt int 8 & info [ "n"; "sites" ] ~doc:"Number of sites.") in
  (topology, n)

let run_simulation ~topology ~n ~trace ?transport ?cache code =
  let net = Netsim.Net.create ~trace (Tacoma_cli.build_topology topology n) in
  let config =
    Tacoma_cli.apply_config ?transport ?cache Tacoma_core.Kernel.default_config
  in
  let k = Tacoma_core.Kernel.create ~config net in
  launch_script k code;
  Netsim.Net.run ~until:3600.0 net;
  (net, k)

let pp_cache_stats k =
  match (Tacoma_core.Kernel.config k).Tacoma_core.Kernel.cache with
  | None -> ()
  | Some _ ->
    let used, entries =
      List.fold_left
        (fun (ub, ec) site ->
          match Tacoma_core.Kernel.code_cache k site with
          | Some c ->
            (ub + Tacoma_core.Codecache.bytes_used c, ec + Tacoma_core.Codecache.entry_count c)
          | None -> (ub, ec))
        (0, 0)
        (Netsim.Net.sites (Tacoma_core.Kernel.net k))
    in
    Format.fprintf fmt "code cache: %d entries, %d bytes cached, %d wire bytes saved@." entries
      used
      (Tacoma_core.Kernel.cache_saved_bytes k)

let run_script_cmd =
  let run topology n transport cache code_file trace trace_out =
    let code = read_file code_file in
    let net, k =
      run_simulation ~topology ~n ~trace:(trace || trace_out <> None) ?transport ?cache code
    in
    Format.fprintf fmt
      "done at t=%.4fs: %d activations, %d migrations, %d completions, %d deaths@."
      (Netsim.Net.now net)
      (Tacoma_core.Kernel.activations k)
      (Tacoma_core.Kernel.migrations k)
      (Tacoma_core.Kernel.completions k)
      (Tacoma_core.Kernel.deaths k);
    Format.fprintf fmt "network: %d messages, %d bytes, %d byte-hops@."
      (Netsim.Netstats.messages_sent (Netsim.Net.stats net))
      (Netsim.Netstats.bytes_sent (Netsim.Net.stats net))
      (Netsim.Netstats.byte_hops (Netsim.Net.stats net));
    pp_cache_stats k;
    List.iter
      (fun (name, a) ->
        Format.fprintf fmt "agent %-24s activations=%d completions=%d deaths=%d@." name
          a.Tacoma_core.Kernel.a_activations a.Tacoma_core.Kernel.a_completions
          a.Tacoma_core.Kernel.a_deaths)
      (Tacoma_core.Kernel.activity k);
    if trace then Netsim.Trace.dump fmt (Netsim.Net.trace net);
    write_trace_out net trace_out
  in
  let open Cmdliner in
  let topology, n = common_topology_args in
  let code = Arg.(required & pos 0 (some file) None & info [] ~docv:"SCRIPT") in
  let trace = Arg.(value & flag & info [ "trace" ] ~doc:"Dump the event trace.") in
  let trace_out =
    Arg.(value & opt (some string) None
         & info [ "trace-out" ] ~docv:"FILE"
             ~doc:"Record the run and write a Chrome trace-event JSON file.")
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:"Launch a TScript agent (from a file) at site 0 of a simulated network.")
    Term.(const run $ topology $ n $ Tacoma_cli.transport_term $ Tacoma_cli.cache_term $ code
          $ trace $ trace_out)

(* --- trace: run a script with the flight recorder on ----------------------- *)

let trace_cmd =
  let run topology n code_file format out =
    let code = read_file code_file in
    let net, _k = run_simulation ~topology ~n ~trace:true code in
    let events = Netsim.Trace.events (Netsim.Net.trace net) in
    let contents =
      match format with `Jsonl -> Obs.Export.jsonl events | `Chrome -> Obs.Export.chrome events
    in
    match out with
    | None -> print_string contents
    | Some path ->
      Obs.Export.write_file path contents;
      Format.fprintf fmt "%d events written to %s@." (List.length events) path
  in
  let open Cmdliner in
  let topology, n = common_topology_args in
  let code = Arg.(required & pos 0 (some file) None & info [] ~docv:"SCRIPT") in
  let format =
    Arg.(value
         & opt (enum [ ("jsonl", `Jsonl); ("chrome", `Chrome) ]) `Jsonl
         & info [ "f"; "format" ] ~doc:"Output format: jsonl (one event per line) or chrome.")
  in
  let out = Arg.(value & opt (some string) None & info [ "o"; "out" ] ~docv:"FILE") in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Run a TScript agent with the flight recorder on and dump structured events.")
    Term.(const run $ topology $ n $ code $ format $ out)

(* --- metrics: run a script and dump the metrics registry ------------------- *)

let metrics_cmd =
  let run topology n transport cache code_file =
    let code = read_file code_file in
    let net, k = run_simulation ~topology ~n ~trace:false ?transport ?cache code in
    Obs.Metrics.pp fmt (Netsim.Net.metrics net);
    pp_cache_stats k
  in
  let open Cmdliner in
  let topology, n = common_topology_args in
  let code = Arg.(required & pos 0 (some file) None & info [] ~docv:"SCRIPT") in
  Cmd.v
    (Cmd.info "metrics"
       ~doc:"Run a TScript agent and print the kernel/network metrics registry.")
    Term.(const run $ topology $ n $ Tacoma_cli.transport_term $ Tacoma_cli.cache_term $ code)

(* --- chaos: seeded invariant harness --------------------------------------- *)

let chaos_cmd =
  let run seeds seed sites horizon unguarded profile_partition jobs json json_out dump plan =
    let module H = Chaos_harness in
    let config =
      {
        H.default_config with
        sites;
        horizon;
        guarded = not unguarded;
        profile =
          (match profile_partition with
          | None -> H.default_config.H.profile
          | Some r -> { H.default_config.H.profile with Netsim.Chaos.bisection_rate = r });
      }
    in
    let seed_list = match seed with Some s -> [ s ] | None -> List.init seeds Fun.id in
    match dump with
    | Some path ->
      let s = match seed_list with s :: _ -> s | [] -> 0 in
      let p = H.plan_of_seed ~config ~seed:s () in
      Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_string oc (Netsim.Chaos.to_string p));
      Format.fprintf fmt "%d chaos events for seed %d written to %s@." (List.length p) s
        path;
      `Ok ()
    | None ->
      let verdicts = H.run_sweep ~config ?plan ~jobs ~seeds:seed_list () in
      if json then List.iter (fun v -> print_endline (H.verdict_json v)) verdicts
      else List.iter (fun v -> Format.fprintf fmt "%a@." H.pp_verdict v) verdicts;
      (match json_out with
      | None -> ()
      | Some path ->
        Out_channel.with_open_bin path (fun oc ->
            List.iter
              (fun v ->
                Out_channel.output_string oc (H.verdict_json v);
                Out_channel.output_char oc '\n')
              verdicts);
        Format.fprintf fmt "%d verdicts written to %s@." (List.length verdicts) path);
      if H.all_passed verdicts then `Ok ()
      else
        `Error
          ( false,
            Printf.sprintf "%d of %d seeds violated invariants"
              (List.length (List.filter (fun v -> not (H.passed v)) verdicts))
              (List.length verdicts) )
  in
  let open Cmdliner in
  let seeds =
    Arg.(value & opt int 10
         & info [ "seeds" ] ~docv:"N" ~doc:"Run seeds 0..N-1 (ignored with $(b,--seed)).")
  in
  let seed =
    Arg.(value & opt (some int) None & info [ "seed" ] ~docv:"SEED" ~doc:"Run one seed.")
  in
  let sites = Arg.(value & opt int 10 & info [ "n"; "sites" ] ~doc:"Number of sites.") in
  let horizon =
    Arg.(value & opt float 300.0
         & info [ "horizon" ] ~docv:"SECONDS" ~doc:"Chaos injection window (sim time).")
  in
  let unguarded =
    Arg.(value & flag
         & info [ "unguarded" ] ~doc:"Run journeys without rear guards (lossy baseline).")
  in
  let partition_rate =
    Arg.(value & opt (some float) None
         & info [ "partition-rate" ] ~docv:"RATE"
             ~doc:"Override the profile's bisection (clean partition) rate per second.")
  in
  let json = Arg.(value & flag & info [ "json" ] ~doc:"Print one JSON verdict per line.") in
  let json_out =
    Arg.(value & opt (some string) None
         & info [ "json-out" ] ~docv:"FILE" ~doc:"Also write JSON verdicts to FILE.")
  in
  let dump =
    Arg.(value & opt (some string) None
         & info [ "dump" ] ~docv:"FILE"
             ~doc:"Write the seed's generated chaos plan to FILE and exit (no run).")
  in
  let plan =
    Arg.(value & opt (some Tacoma_cli.chaos_plan_conv) None
         & info [ "plan" ] ~docv:"FILE"
             ~doc:"Replay a stored chaos plan instead of generating one per seed.")
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Run the seeded chaos invariant harness: guarded journeys, bookings and cash \
          purchases under deterministic partition/loss/crash/degradation schedules.  \
          Exits non-zero if any invariant is violated.")
    Term.(ret
            (const run $ seeds $ seed $ sites $ horizon $ unguarded $ partition_rate
            $ Tacoma_cli.jobs_term $ json $ json_out $ dump $ plan))

(* --- demo: a traced journey ------------------------------------------------ *)

let demo_cmd =
  let run trace_out =
    let code = {|
      log "hello from [host]"
      folder put TRAIL [host]
      if {[folder size TRAIL] < 4} {
        set next ""
        foreach n [neighbors] {
          if {![folder contains TRAIL $n]} { set next $n; break }
        }
        folder set CODE [selfcode]
        jump $next
      } else {
        log "journey complete, filing trail"
        meet filer
      }
    |} in
    let net = Netsim.Net.create ~trace:true (Netsim.Topology.ring 4) in
    let k = Tacoma_core.Kernel.create net in
    launch_script k code;
    (* a rear-guarded journey through the same ring, with site 2 down when
       the agent first heads there: the hop is lost, the rear guard times
       out and relaunches the snapshot, and the trace shows the relaunch
       joining the same causal tree *)
    let visits = ref [] in
    let j =
      Guard.Escort.guarded_journey k
        ~config:{ Guard.Escort.default_config with ack_timeout = 2.0; retry_period = 2.0 }
        ~id:"demo" ~itinerary:[ 0; 1; 2; 3 ]
        ~work:(fun _ctx ~hop _bc -> visits := hop :: !visits)
        (Tacoma_core.Briefcase.create ())
    in
    Netsim.Fault.crash_for net ~site:2 ~at:0.0 ~downtime:5.0;
    Netsim.Net.run ~until:60.0 net;
    Netsim.Trace.dump fmt (Netsim.Net.trace net);
    List.iter
      (fun site ->
        let trail =
          Tacoma_core.Cabinet.elements (Tacoma_core.Kernel.cabinet k site) "TRAIL"
        in
        if trail <> [] then
          Format.fprintf fmt "trail filed at site %d: %s@." site (String.concat " -> " trail))
      (Netsim.Net.sites net);
    let s = Guard.Escort.stats j in
    Format.fprintf fmt "guarded journey: hops 0-%d done, %d relaunch(es), completed=%b@."
      s.Guard.Escort.hops_done s.Guard.Escort.relaunches s.Guard.Escort.completed;
    write_trace_out net trace_out
  in
  let open Cmdliner in
  let trace_out =
    Arg.(value & opt (some string) None
         & info [ "trace-out" ] ~docv:"FILE"
             ~doc:"Also write the run as a Chrome trace-event JSON file.")
  in
  Cmd.v
    (Cmd.info "demo"
       ~doc:"Run a traced 4-site agent journey plus a rear-guarded journey with a crash.")
    Term.(const run $ trace_out)

let () =
  let open Cmdliner in
  let info =
    Cmd.info "tacoma" ~version:"1.0.0"
      ~doc:"TACOMA mobile agents: experiments, agent runner, flight recorder and demos."
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [ exp_cmd; run_script_cmd; trace_cmd; metrics_cmd; chaos_cmd; demo_cmd ]))

(** Itinerary planning for travelling agents.

    An agent that must visit a set of sites (the StormCast collector, an
    auditor, a search agent) should order its stops by network cost rather
    than site number; this module plans tours over the current topology and
    converts between site lists and the name lists that live in folders. *)

val hop_cost : Kernel.t -> Netsim.Site.id -> Netsim.Site.id -> float option
(** Idle-network latency between two sites right now ([None] when
    unreachable). *)

val plan :
  Kernel.t -> from:Netsim.Site.id -> Netsim.Site.id list -> Netsim.Site.id list
(** Greedy nearest-neighbour tour: starting at [from], repeatedly visit the
    cheapest (lowest idle-network latency) unvisited site.  Unreachable
    sites are appended at the end in ascending order so nothing is silently
    dropped.  [from] itself is not included in the result; duplicates are
    visited once. *)

val round_trip :
  Kernel.t -> from:Netsim.Site.id -> Netsim.Site.id list -> Netsim.Site.id list
(** [plan] plus the way home: the tour ends back at [from]. *)

val tour_cost : Kernel.t -> from:Netsim.Site.id -> Netsim.Site.id list -> float
(** Total idle-network latency of visiting the sites in the given order
    (unreachable hops cost [infinity]). *)

val to_folder : Kernel.t -> Folder.t -> Netsim.Site.id list -> unit
(** Replace the folder's contents with the site names, in order — the form
    [rexec]-travelling agents pop from an ITINERARY folder. *)

val of_folder : Kernel.t -> Folder.t -> Netsim.Site.id list
(** Parse a folder of site names (unknown names are skipped). *)

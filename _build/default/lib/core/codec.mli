(** Length-prefixed binary encoding for briefcases on the wire.

    Folders are "uninterpreted sequences of bits", so the codec must be
    8-bit clean; and briefcases are moved constantly, so the format is a
    flat sequence of length-prefixed strings with no index structure
    (paper §2: "elaborate index structures are not suitable"). *)

val encode_u32 : Buffer.t -> int -> unit
(** 4-byte big-endian unsigned integer.
    @raise Malformed on negative values. *)

val encode_string : Buffer.t -> string -> unit
(** 4-byte big-endian length, then the bytes. *)

val encode_strings : Buffer.t -> string list -> unit
(** 4-byte count, then each string. *)

type reader

val reader : string -> reader

exception Malformed of string

val read_u32 : reader -> int
val read_string : reader -> string
(** @raise Malformed on truncated input. *)

val read_strings : reader -> string list
val at_end : reader -> bool

val encoded_size : string -> int
(** Wire size of one encoded string. *)

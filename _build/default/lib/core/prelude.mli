(** The standard agent library: TScript procs evaluated in every script
    activation before the agent's own code (see
    {!Kernel.config}[.prelude]).  They package the idioms the paper's
    examples rely on:

    - [travel SITE ?CONTACT?] — re-ship this agent's source and jump;
    - [visited TAG] / [mark_visited TAG] — the §2 site-local visited-folder
      pattern that bounds flooding;
    - [remember KEY VALUE] / [recall KEY] — durable notes in the site
      cabinet (flushed, so they survive crashes);
    - [carry FOLDER VALUE...] — append several values to a folder;
    - [send_folder SITE AGENT FOLDER] — courier a folder somewhere;
    - [unvisited_neighbors] — neighbours not yet in the briefcase SITES
      folder. *)

val standard : string
(** The prelude source. *)

let standard = {|
# --- TACOMA standard agent library (evaluated before agent code) ---------

# re-ship this agent's own source and move to SITE; the current activation
# continues after the jump and normally just ends
proc travel {site {contact ag_script}} {
  folder set CODE [selfcode]
  jump $site $contact
}

# the flooding pattern of paper section 2: record visits in a site-local
# folder and test it before doing work again
proc visited {tag} { cabinet contains VISITED $tag }
proc mark_visited {tag} { cabinet put VISITED $tag }

# durable site-local notes (flushed: they survive a crash of this site)
proc remember {key value} {
  cabinet kvset NOTES $key $value
  cabinet flush NOTES
}
proc recall {key} { cabinet kvget NOTES $key }

# append several values to a briefcase folder
proc carry {fname args} {
  foreach v $args { folder put $fname $v }
}

# courier a folder of the current briefcase to an agent elsewhere
proc send_folder {site agent fname} {
  folder set HOST $site
  folder set CONTACT $agent
  folder set FOLDER $fname
  meet courier
}

# neighbours of this site not yet recorded in the briefcase SITES folder
proc unvisited_neighbors {} {
  set out {}
  foreach n [neighbors] {
    if {![folder contains SITES $n]} { lappend out $n }
  }
  return $out
}
|}

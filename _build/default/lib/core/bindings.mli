(** TACOMA primitives as TScript commands.

    The kernel hands a {!host} record (its capabilities, already bound to
    one site and one briefcase) and this module registers the agent-visible
    command set on an interpreter.  Keeping the dependency in this
    direction means the script layer knows nothing about kernels — it sees
    only folders, cabinets, meets and time, exactly the surface the paper
    gives to Tcl agents. *)

type host = {
  site_name : unit -> string;
  self : unit -> string;          (** this agent's name *)
  now : unit -> float;
  neighbors : unit -> string list;
  meet : string -> unit;          (** meet named agent with the current briefcase *)
  sleep : float -> unit;          (** simulated compute/wait *)
  log : string -> unit;
  random_int : int -> int;
  cabinet : Cabinet.t;
  code : unit -> string;
  (** the source text of the currently executing agent, so it can re-ship
      itself: [folder set CODE \[selfcode\]; jump $next] *)
  dispatch : host:string -> contact:string -> unit;
  (** fire-and-forget: send a copy of the current briefcase to an agent at
      another site, without shipping code (courier-style messaging) *)
}

val install : host -> Briefcase.t -> Tscript.Interp.t -> unit
(** Registers, on top of the standard TScript commands:

    - [folder SUB ...] — briefcase folder ops
      (put/push/pop/peek/list/set/size/exists/clear/contains/names);
    - [cabinet SUB ...] — the same on the site-local cabinet, plus
      [kvset]/[kvget]/[flush];
    - [meet AGENT] — meet with the current briefcase;
    - [jump SITE ?CONTACT?] — sugar: set HOST/CONTACT and meet [rexec];
    - [dispatch SITE AGENT] — send a copy of the current briefcase (sans
      code shipping) to an agent elsewhere;
    - [host], [self], [now], [neighbors], [work SECONDS], [log MSG],
      [random N], [selfcode]. *)

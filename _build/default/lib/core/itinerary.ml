module Net = Netsim.Net

let hop_cost kernel a b = Net.delivery_delay (Kernel.net kernel) a b ~size:0

let plan kernel ~from sites =
  let remaining = ref (List.sort_uniq compare (List.filter (fun s -> s <> from) sites)) in
  let tour = ref [] in
  let here = ref from in
  let unreachable = ref [] in
  while !remaining <> [] do
    let best =
      List.fold_left
        (fun acc s ->
          match hop_cost kernel !here s with
          | None -> acc
          | Some c -> (
            match acc with
            | Some (_, bc) when bc <= c -> acc
            | Some _ | None -> Some (s, c)))
        None !remaining
    in
    match best with
    | Some (s, _) ->
      tour := s :: !tour;
      here := s;
      remaining := List.filter (fun x -> x <> s) !remaining
    | None ->
      (* nothing reachable from here: park the rest, in order *)
      unreachable := !remaining;
      remaining := []
  done;
  List.rev !tour @ !unreachable

let round_trip kernel ~from sites = plan kernel ~from sites @ [ from ]

let tour_cost kernel ~from sites =
  let rec go acc here = function
    | [] -> acc
    | s :: rest -> (
      match hop_cost kernel here s with
      | Some c -> go (acc +. c) s rest
      | None -> infinity)
  in
  go 0.0 from sites

let to_folder kernel folder sites =
  Folder.replace folder (List.map (Kernel.site_name kernel) sites)

let of_folder kernel folder =
  List.filter_map (Kernel.site_named kernel) (Folder.to_list folder)

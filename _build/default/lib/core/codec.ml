exception Malformed of string

let encode_u32 buf n =
  if n < 0 then raise (Malformed "negative length");
  Buffer.add_char buf (Char.chr ((n lsr 24) land 0xFF));
  Buffer.add_char buf (Char.chr ((n lsr 16) land 0xFF));
  Buffer.add_char buf (Char.chr ((n lsr 8) land 0xFF));
  Buffer.add_char buf (Char.chr (n land 0xFF))

let encode_string buf s =
  encode_u32 buf (String.length s);
  Buffer.add_string buf s

let encode_strings buf l =
  encode_u32 buf (List.length l);
  List.iter (encode_string buf) l

type reader = { src : string; mutable pos : int }

let reader src = { src; pos = 0 }

let read_u32 r =
  if r.pos + 4 > String.length r.src then raise (Malformed "truncated length");
  let b i = Char.code r.src.[r.pos + i] in
  let n = (b 0 lsl 24) lor (b 1 lsl 16) lor (b 2 lsl 8) lor b 3 in
  r.pos <- r.pos + 4;
  n

let read_string r =
  let n = read_u32 r in
  if r.pos + n > String.length r.src then raise (Malformed "truncated string");
  let s = String.sub r.src r.pos n in
  r.pos <- r.pos + n;
  s

let read_strings r =
  let n = read_u32 r in
  if n > String.length r.src - r.pos then raise (Malformed "implausible count");
  List.init n (fun _ -> read_string r)

let at_end r = r.pos >= String.length r.src
let encoded_size s = 4 + String.length s

lib/core/itinerary.mli: Folder Kernel Netsim

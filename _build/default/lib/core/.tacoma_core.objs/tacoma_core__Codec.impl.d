lib/core/codec.ml: Buffer Char List String

lib/core/kernel.ml: Array Bindings Briefcase Cabinet Codec Effect Folder Hashtbl Horus List Netsim Option Prelude Printexc Printf String Tacoma_util Tscript

lib/core/codec.mli: Buffer

lib/core/briefcase.ml: Buffer Codec Folder Format Hashtbl List Option Printf String

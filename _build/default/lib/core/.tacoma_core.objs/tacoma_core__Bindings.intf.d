lib/core/bindings.mli: Briefcase Cabinet Tscript

lib/core/cabinet.mli:

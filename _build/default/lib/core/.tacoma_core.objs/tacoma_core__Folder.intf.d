lib/core/folder.mli:

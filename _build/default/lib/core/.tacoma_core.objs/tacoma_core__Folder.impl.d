lib/core/folder.ml: List String

lib/core/prelude.mli:

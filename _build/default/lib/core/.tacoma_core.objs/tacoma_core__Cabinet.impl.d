lib/core/cabinet.ml: Hashtbl List Option String

lib/core/kernel.mli: Briefcase Cabinet Horus Netsim Tacoma_util

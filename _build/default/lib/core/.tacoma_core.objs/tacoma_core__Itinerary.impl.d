lib/core/itinerary.ml: Folder Kernel List Netsim

lib/core/briefcase.mli: Folder Format

lib/core/prelude.ml:

lib/core/bindings.ml: Briefcase Cabinet Folder Option Printf String Tscript

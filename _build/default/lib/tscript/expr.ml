exception Error of string

type num = Int of int | Float of float | Str of string

let fail msg = raise (Error msg)

(* --- lexer ------------------------------------------------------------ *)

type token =
  | Tnum of num
  | Tstr of string
  | Tvar of string
  | Tcmd of string
  | Tident of string (* function name *)
  | Top of string
  | Tlparen
  | Trparen
  | Tcomma
  | Teof

type lexer = { src : string; mutable pos : int; mutable tok : token }

let is_digit c = c >= '0' && c <= '9'
let is_ident_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || is_digit c || c = '_'

let rec next_token lx =
  let n = String.length lx.src in
  while lx.pos < n && (lx.src.[lx.pos] = ' ' || lx.src.[lx.pos] = '\t' || lx.src.[lx.pos] = '\n') do
    lx.pos <- lx.pos + 1
  done;
  if lx.pos >= n then Teof
  else
    let c = lx.src.[lx.pos] in
    if is_digit c || (c = '.' && lx.pos + 1 < n && is_digit lx.src.[lx.pos + 1]) then begin
      let start = lx.pos in
      let seen_dot = ref false and seen_exp = ref false in
      let continue = ref true in
      while !continue && lx.pos < n do
        let d = lx.src.[lx.pos] in
        if is_digit d then lx.pos <- lx.pos + 1
        else if d = '.' && not !seen_dot && not !seen_exp then begin
          seen_dot := true;
          lx.pos <- lx.pos + 1
        end
        else if (d = 'e' || d = 'E') && not !seen_exp && lx.pos + 1 < n
                && (is_digit lx.src.[lx.pos + 1]
                   || ((lx.src.[lx.pos + 1] = '+' || lx.src.[lx.pos + 1] = '-')
                      && lx.pos + 2 < n && is_digit lx.src.[lx.pos + 2])) then begin
          seen_exp := true;
          lx.pos <- lx.pos + (if is_digit lx.src.[lx.pos + 1] then 1 else 2)
        end
        else continue := false
      done;
      let text = String.sub lx.src start (lx.pos - start) in
      if !seen_dot || !seen_exp then Tnum (Float (float_of_string text))
      else
        match int_of_string_opt text with
        | Some i -> Tnum (Int i)
        | None -> Tnum (Float (float_of_string text))
    end
    else if c = '$' then begin
      lx.pos <- lx.pos + 1;
      if lx.pos < n && lx.src.[lx.pos] = '{' then begin
        let start = lx.pos + 1 in
        let close = String.index_from_opt lx.src start '}' in
        match close with
        | None -> fail "unterminated ${ in expression"
        | Some e ->
          lx.pos <- e + 1;
          Tvar (String.sub lx.src start (e - start))
      end
      else begin
        let start = lx.pos in
        while lx.pos < n && is_ident_char lx.src.[lx.pos] do
          lx.pos <- lx.pos + 1
        done;
        if lx.pos = start then fail "bare $ in expression";
        let name = String.sub lx.src start (lx.pos - start) in
        (* array element: pass "name(raw index)" through to the lookup,
           which substitutes the index in the caller's scope *)
        if lx.pos < n && lx.src.[lx.pos] = '(' then begin
          let istart = lx.pos in
          let depth = ref 0 in
          let continue = ref true in
          while !continue && lx.pos < n do
            (match lx.src.[lx.pos] with
            | '(' -> incr depth
            | ')' -> decr depth
            | _ -> ());
            lx.pos <- lx.pos + 1;
            if !depth = 0 then continue := false
          done;
          if !depth > 0 then fail "unterminated array index in expression";
          Tvar (name ^ String.sub lx.src istart (lx.pos - istart))
        end
        else Tvar name
      end
    end
    else if c = '[' then begin
      (* balanced bracket scan; the interpreter evaluates the inside *)
      let start = lx.pos + 1 in
      let depth = ref 1 in
      lx.pos <- lx.pos + 1;
      while lx.pos < n && !depth > 0 do
        (match lx.src.[lx.pos] with
        | '[' -> incr depth
        | ']' -> decr depth
        | _ -> ());
        lx.pos <- lx.pos + 1
      done;
      if !depth > 0 then fail "unterminated [ in expression";
      Tcmd (String.sub lx.src start (lx.pos - 1 - start))
    end
    else if c = '"' || c = '{' then begin
      let close_char = if c = '"' then '"' else '}' in
      let buf = Buffer.create 16 in
      lx.pos <- lx.pos + 1;
      let depth = ref 1 in
      let finished = ref false in
      while lx.pos < n && not !finished do
        let d = lx.src.[lx.pos] in
        if c = '{' && d = '{' then begin
          incr depth;
          Buffer.add_char buf d;
          lx.pos <- lx.pos + 1
        end
        else if d = close_char then begin
          decr depth;
          if !depth = 0 then begin
            finished := true;
            lx.pos <- lx.pos + 1
          end
          else begin
            Buffer.add_char buf d;
            lx.pos <- lx.pos + 1
          end
        end
        else begin
          Buffer.add_char buf d;
          lx.pos <- lx.pos + 1
        end
      done;
      if not !finished then fail "unterminated string in expression";
      Tstr (Buffer.contents buf)
    end
    else if is_ident_char c then begin
      let start = lx.pos in
      while lx.pos < n && is_ident_char lx.src.[lx.pos] do
        lx.pos <- lx.pos + 1
      done;
      let name = String.sub lx.src start (lx.pos - start) in
      match name with
      | "eq" | "ne" | "in" | "ni" -> Top name
      | _ -> Tident name
    end
    else begin
      let two =
        if lx.pos + 1 < n then Some (String.sub lx.src lx.pos 2) else None
      in
      match two with
      | Some (("==" | "!=" | "<=" | ">=" | "&&" | "||" | "**") as op) ->
        lx.pos <- lx.pos + 2;
        Top op
      | Some _ | None -> (
        match c with
        | '+' | '-' | '*' | '/' | '%' | '<' | '>' | '!' | '~' ->
          lx.pos <- lx.pos + 1;
          Top (String.make 1 c)
        | '(' ->
          lx.pos <- lx.pos + 1;
          Tlparen
        | ')' ->
          lx.pos <- lx.pos + 1;
          Trparen
        | ',' ->
          lx.pos <- lx.pos + 1;
          Tcomma
        | _ -> fail (Printf.sprintf "unexpected character %C in expression" c))
    end

and advance lx = lx.tok <- next_token lx

(* --- numeric coercions ------------------------------------------------- *)

let as_num v =
  match v with
  | Int _ | Float _ -> v
  | Str s -> (
    match Value.int_of s with
    | Some i -> Int i
    | None -> (
      match Value.float_of s with
      | Some f -> Float f
      | None -> fail (Printf.sprintf "expected number, got %S" s)))

let as_float v =
  match as_num v with Int i -> float_of_int i | Float f -> f | Str _ -> assert false

let as_int v =
  match as_num v with
  | Int i -> i
  | Float f -> int_of_float f
  | Str _ -> assert false

let truthy_num v =
  match v with
  | Int i -> i <> 0
  | Float f -> f <> 0.0
  | Str s -> Value.truthy s

let num_to_string = function
  | Int i -> Value.of_int i
  | Float f -> Value.of_float f
  | Str s -> s

(* numeric binop with int preservation *)
let arith name fi ff a b =
  match (as_num a, as_num b) with
  | Int x, Int y -> Int (fi x y)
  | (Int _ | Float _), (Int _ | Float _) -> Float (ff (as_float a) (as_float b))
  | _ -> fail ("bad operands for " ^ name)

let compare_vals a b =
  (* numeric comparison when both sides parse as numbers, else string *)
  let num v =
    match v with
    | Int _ | Float _ -> Some (as_float v)
    | Str s -> Value.float_of s
  in
  match (num a, num b) with
  | Some x, Some y -> compare x y
  | _ ->
    let str = function Str s -> s | other -> num_to_string other in
    compare (str a) (str b)

(* --- parser ------------------------------------------------------------ *)

type ctx = {
  lx : lexer;
  lookup : string -> string;
  eval_cmd : string -> string;
}

let rec parse_primary ctx =
  match ctx.lx.tok with
  | Tnum v ->
    advance ctx.lx;
    v
  | Tstr s ->
    advance ctx.lx;
    Str s
  | Tvar name ->
    advance ctx.lx;
    Str (ctx.lookup name)
  | Tcmd script ->
    advance ctx.lx;
    Str (ctx.eval_cmd script)
  | Tlparen ->
    advance ctx.lx;
    let v = parse_or ctx in
    (match ctx.lx.tok with
    | Trparen -> advance ctx.lx
    | _ -> fail "expected )");
    v
  | Top "-" ->
    advance ctx.lx;
    (match as_num (parse_unary ctx) with
    | Int i -> Int (-i)
    | Float f -> Float (-.f)
    | Str _ -> assert false)
  | Top "+" ->
    advance ctx.lx;
    as_num (parse_unary ctx)
  | Top "!" ->
    advance ctx.lx;
    Int (if truthy_num (parse_unary ctx) then 0 else 1)
  | Top "~" ->
    advance ctx.lx;
    Int (lnot (as_int (parse_unary ctx)))
  | Tident name ->
    advance ctx.lx;
    parse_call ctx name
  | Top op -> fail (Printf.sprintf "unexpected operator %s" op)
  | Trparen -> fail "unexpected )"
  | Tcomma -> fail "unexpected ,"
  | Teof -> fail "unexpected end of expression"

and parse_unary ctx = parse_primary ctx

and parse_call ctx name =
  let args =
    match ctx.lx.tok with
    | Tlparen ->
      advance ctx.lx;
      if ctx.lx.tok = Trparen then begin
        advance ctx.lx;
        []
      end
      else begin
        let rec go acc =
          let v = parse_or ctx in
          match ctx.lx.tok with
          | Tcomma ->
            advance ctx.lx;
            go (v :: acc)
          | Trparen ->
            advance ctx.lx;
            List.rev (v :: acc)
          | _ -> fail "expected , or ) in function call"
        in
        go []
      end
    | _ -> (
      (* bare words: treat true/false specially, otherwise a string *)
      match name with
      | "true" | "yes" | "on" -> [ Int 1 ]
      | "false" | "no" | "off" -> [ Int 0 ]
      | _ -> [])
  in
  match (name, args) with
  | ("true" | "yes" | "on"), _ -> Int 1
  | ("false" | "no" | "off"), _ -> Int 0
  | "abs", [ v ] -> (
    match as_num v with
    | Int i -> Int (abs i)
    | Float f -> Float (Float.abs f)
    | Str _ -> assert false)
  | "int", [ v ] -> Int (as_int v)
  | "round", [ v ] -> Int (int_of_float (Float.round (as_float v)))
  | "floor", [ v ] -> Float (Float.floor (as_float v))
  | "ceil", [ v ] -> Float (Float.ceil (as_float v))
  | "double", [ v ] -> Float (as_float v)
  | "sqrt", [ v ] -> Float (sqrt (as_float v))
  | "exp", [ v ] -> Float (exp (as_float v))
  | "log", [ v ] -> Float (log (as_float v))
  | "log10", [ v ] -> Float (log10 (as_float v))
  | "sin", [ v ] -> Float (sin (as_float v))
  | "cos", [ v ] -> Float (cos (as_float v))
  | "tan", [ v ] -> Float (tan (as_float v))
  | "pow", [ a; b ] -> Float (Float.pow (as_float a) (as_float b))
  | "fmod", [ a; b ] -> Float (Float.rem (as_float a) (as_float b))
  | "min", (_ :: _ as vs) ->
    List.fold_left (fun acc v -> if compare_vals v acc < 0 then v else acc) (List.hd vs) vs
  | "max", (_ :: _ as vs) ->
    List.fold_left (fun acc v -> if compare_vals v acc > 0 then v else acc) (List.hd vs) vs
  | _ -> fail (Printf.sprintf "unknown function %s/%d" name (List.length args))

and parse_pow ctx =
  let base = parse_unary ctx in
  match ctx.lx.tok with
  | Top "**" ->
    advance ctx.lx;
    let expo = parse_pow ctx in
    Float (Float.pow (as_float base) (as_float expo))
  | _ -> base

and parse_mul ctx =
  let rec go acc =
    match ctx.lx.tok with
    | Top "*" ->
      advance ctx.lx;
      go (arith "*" ( * ) ( *. ) acc (parse_pow ctx))
    | Top "/" ->
      advance ctx.lx;
      let b = parse_pow ctx in
      let result =
        match (as_num acc, as_num b) with
        | Int _, Int 0 -> fail "division by zero"
        | Int x, Int y ->
          (* Tcl floors integer division toward negative infinity *)
          let q = if (x < 0) <> (y < 0) && x mod y <> 0 then (x / y) - 1 else x / y in
          Int q
        | (Int _ | Float _), (Int _ | Float _) -> Float (as_float acc /. as_float b)
        | _ -> fail "bad operands for /"
      in
      go result
    | Top "%" ->
      advance ctx.lx;
      let b = parse_pow ctx in
      let x = as_int acc and y = as_int b in
      if y = 0 then fail "modulo by zero";
      let m = x mod y in
      let m = if m <> 0 && (m < 0) <> (y < 0) then m + y else m in
      go (Int m)
    | _ -> acc
  in
  go (parse_pow ctx)

and parse_add ctx =
  let rec go acc =
    match ctx.lx.tok with
    | Top "+" ->
      advance ctx.lx;
      go (arith "+" ( + ) ( +. ) acc (parse_mul ctx))
    | Top "-" ->
      advance ctx.lx;
      go (arith "-" ( - ) ( -. ) acc (parse_mul ctx))
    | _ -> acc
  in
  go (parse_mul ctx)

and parse_cmp ctx =
  let rec go acc =
    match ctx.lx.tok with
    | Top (("<" | "<=" | ">" | ">=") as op) ->
      advance ctx.lx;
      let b = parse_add ctx in
      let c = compare_vals acc b in
      let r =
        match op with
        | "<" -> c < 0
        | "<=" -> c <= 0
        | ">" -> c > 0
        | ">=" -> c >= 0
        | _ -> assert false
      in
      go (Int (if r then 1 else 0))
    | _ -> acc
  in
  go (parse_add ctx)

and parse_eq ctx =
  let rec go acc =
    match ctx.lx.tok with
    | Top (("==" | "!=") as op) ->
      advance ctx.lx;
      let b = parse_cmp ctx in
      let c = compare_vals acc b = 0 in
      go (Int (if c = (op = "==") then 1 else 0))
    | Top (("eq" | "ne") as op) ->
      advance ctx.lx;
      let b = parse_cmp ctx in
      let sa = num_to_string acc and sb = num_to_string b in
      let c = String.equal sa sb in
      go (Int (if c = (op = "eq") then 1 else 0))
    | Top (("in" | "ni") as op) ->
      advance ctx.lx;
      let b = parse_cmp ctx in
      let elem = num_to_string acc in
      let l = Value.to_list_exn (num_to_string b) in
      let mem = List.mem elem l in
      go (Int (if mem = (op = "in") then 1 else 0))
    | _ -> acc
  in
  go (parse_cmp ctx)

and parse_and ctx =
  let acc = parse_eq ctx in
  match ctx.lx.tok with
  | Top "&&" ->
    advance ctx.lx;
    let rhs = parse_and ctx in
    Int (if truthy_num acc && truthy_num rhs then 1 else 0)
  | _ -> acc

and parse_or ctx =
  let acc = parse_and ctx in
  match ctx.lx.tok with
  | Top "||" ->
    advance ctx.lx;
    let rhs = parse_or ctx in
    Int (if truthy_num acc || truthy_num rhs then 1 else 0)
  | _ -> acc

let eval_num ~lookup ~eval_cmd src =
  let lx = { src; pos = 0; tok = Teof } in
  advance lx;
  let ctx = { lx; lookup; eval_cmd } in
  let v = parse_or ctx in
  (match ctx.lx.tok with
  | Teof -> ()
  | _ -> fail "trailing characters in expression");
  v

let eval ~lookup ~eval_cmd src = num_to_string (eval_num ~lookup ~eval_cmd src)
let eval_bool ~lookup ~eval_cmd src = truthy_num (eval_num ~lookup ~eval_cmd src)

(** A compact backtracking regular-expression engine for the [regexp] and
    [regsub] commands.

    Supported syntax: literals, [.], character classes [\[a-z\]] /
    [\[^...\]], anchors [^] and [$], quantifiers [*], [+], [?], [{n}],
    [{n,}], [{n,m}] (all greedy, with backtracking), alternation [|],
    capturing groups [(...)], and the escapes [\d \D \w \W \s \S] plus
    backslash-literal for everything else. *)

type t

val compile : ?nocase:bool -> string -> (t, string) result
val compile_exn : ?nocase:bool -> string -> t
(** @raise Invalid_argument on a malformed pattern. *)

type match_result = {
  whole : string * int * int;       (** matched text, start, end (exclusive) *)
  groups : (string * int * int) option array;
      (** capture groups 1..n; [None] for groups that did not participate *)
}

val search : t -> ?start:int -> string -> match_result option
(** Find the leftmost match at or after [start]. *)

val matches : t -> string -> bool

val replace : t -> ?all:bool -> template:string -> string -> string * int
(** Substitute matches with [template], where [&] (or [\0]) inserts the
    whole match and [\1]..[\9] insert capture groups; returns the new
    string and the number of substitutions.  Empty matches advance by one
    character to guarantee progress. *)

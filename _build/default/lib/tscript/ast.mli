(** Parsed form of a TScript script.

    A script is a list of commands; a command is a list of words; a word is
    either a brace-quoted literal (no substitution — how Tcl defers
    evaluation of bodies) or a sequence of fragments that are substituted
    and concatenated at evaluation time. *)

type fragment =
  | Lit of string        (** literal text *)
  | Var of string        (** [$name] or [${name}] *)
  | VarElem of string * fragment list
      (** [$name(index)] — a Tcl array element; the index is itself a
          fragment sequence, so [$a($i)] works *)
  | Cmd of script        (** [\[...\]] command substitution *)

and word =
  | Braced of string     (** [{...}]: verbatim, one word *)
  | Frags of fragment list

and command = word list

and script = command list

val pp_script : Format.formatter -> script -> unit
(** Debug printer. *)

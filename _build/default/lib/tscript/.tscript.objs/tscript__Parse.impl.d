lib/tscript/parse.ml: Ast Buffer List String

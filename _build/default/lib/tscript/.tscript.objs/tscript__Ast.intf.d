lib/tscript/ast.mli: Format

lib/tscript/regex.mli:

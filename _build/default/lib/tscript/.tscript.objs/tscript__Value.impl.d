lib/tscript/value.ml: Buffer Float List Option Printf String

lib/tscript/expr.ml: Buffer Float List Printf String Value

lib/tscript/parse.mli: Ast

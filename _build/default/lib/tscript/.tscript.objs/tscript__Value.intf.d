lib/tscript/value.mli:

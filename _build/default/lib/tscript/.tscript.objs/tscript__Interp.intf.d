lib/tscript/interp.mli:

lib/tscript/interp.ml: Array Ast Buffer Expr Hashtbl List Option Parse Printf Regex String Strutil Value

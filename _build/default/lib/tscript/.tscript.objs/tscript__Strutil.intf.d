lib/tscript/strutil.mli:

lib/tscript/expr.mli:

lib/tscript/strutil.ml: Buffer Char Hashtbl List Option Printf String Value

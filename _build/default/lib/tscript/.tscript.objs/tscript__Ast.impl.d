lib/tscript/ast.ml: Format

(** String helpers for the TScript builtin commands. *)

val glob_match : pattern:string -> string -> bool
(** Tcl [string match]: [*] any run, [?] any one char, [\[a-z\]] classes,
    backslash escapes the next character. *)

val format : string -> string list -> (string, string) result
(** A subset of Tcl [format]: [%s %d %i %f %e %g %x %X %o %c %%] with
    optional [-] flag, [0] flag, width and precision. *)

val split : string -> on:string -> string list
(** Split at any character present in [on]; [on = ""] splits into
    characters.  Adjacent separators produce empty fields (Tcl semantics). *)

val common_prefix : string -> string -> int

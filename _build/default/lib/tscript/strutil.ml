let glob_match ~pattern s =
  let np = String.length pattern and ns = String.length s in
  (* memoised recursion over (pattern index, string index) *)
  let memo = Hashtbl.create 16 in
  let rec go pi si =
    match Hashtbl.find_opt memo (pi, si) with
    | Some r -> r
    | None ->
      let r = compute pi si in
      Hashtbl.replace memo (pi, si) r;
      r
  and compute pi si =
    if pi >= np then si >= ns
    else
      match pattern.[pi] with
      | '*' -> go (pi + 1) si || (si < ns && go pi (si + 1))
      | '?' -> si < ns && go (pi + 1) (si + 1)
      | '[' ->
        if si >= ns then false
        else begin
          (* character class: [abc], [a-z], [^..] not supported by Tcl *)
          let rec scan_end j = if j < np && pattern.[j] <> ']' then scan_end (j + 1) else j in
          let close = scan_end (pi + 1) in
          if close >= np then (* unterminated class: literal [ *)
            si < ns && s.[si] = '[' && go (pi + 1) (si + 1)
          else begin
            let cls = String.sub pattern (pi + 1) (close - pi - 1) in
            let c = s.[si] in
            let rec matches k =
              if k >= String.length cls then false
              else if k + 2 < String.length cls && cls.[k + 1] = '-' then
                (c >= cls.[k] && c <= cls.[k + 2]) || matches (k + 3)
              else cls.[k] = c || matches (k + 1)
            in
            matches 0 && go (close + 1) (si + 1)
          end
        end
      | '\\' when pi + 1 < np ->
        si < ns && s.[si] = pattern.[pi + 1] && go (pi + 2) (si + 1)
      | c -> si < ns && s.[si] = c && go (pi + 1) (si + 1)
  in
  go 0 0

type spec = {
  minus : bool;
  zero : bool;
  width : int option;
  precision : int option;
  conv : char;
}

let parse_spec fmt i =
  let n = String.length fmt in
  let minus = ref false and zero = ref false in
  let i = ref i in
  let flag_loop () =
    let continue = ref true in
    while !continue && !i < n do
      match fmt.[!i] with
      | '-' ->
        minus := true;
        incr i
      | '0' ->
        zero := true;
        incr i
      | _ -> continue := false
    done
  in
  flag_loop ();
  let read_int () =
    let start = !i in
    while !i < n && fmt.[!i] >= '0' && fmt.[!i] <= '9' do
      incr i
    done;
    if !i = start then None else Some (int_of_string (String.sub fmt start (!i - start)))
  in
  let width = read_int () in
  let precision =
    if !i < n && fmt.[!i] = '.' then begin
      incr i;
      match read_int () with Some p -> Some p | None -> Some 0
    end
    else None
  in
  if !i >= n then Error "truncated format specifier"
  else Ok ({ minus = !minus; zero = !zero; width; precision; conv = fmt.[!i] }, !i + 1)

let pad spec s =
  match spec.width with
  | None -> s
  | Some w when String.length s >= w -> s
  | Some w ->
    let fill = w - String.length s in
    if spec.minus then s ^ String.make fill ' '
    else if spec.zero && String.length s > 0 && (s.[0] = '-' || (s.[0] >= '0' && s.[0] <= '9')) then
      if s.[0] = '-' then "-" ^ String.make fill '0' ^ String.sub s 1 (String.length s - 1)
      else String.make fill '0' ^ s
    else String.make fill ' ' ^ s

let format fmt args =
  let buf = Buffer.create (String.length fmt + 16) in
  let n = String.length fmt in
  let rec go i args =
    if i >= n then
      Ok (Buffer.contents buf)
    else if fmt.[i] = '%' then
      if i + 1 < n && fmt.[i + 1] = '%' then begin
        Buffer.add_char buf '%';
        go (i + 2) args
      end
      else
        match parse_spec fmt (i + 1) with
        | Error e -> Error e
        | Ok (spec, next) -> (
          let take () =
            match args with [] -> Error "not enough arguments for format" | a :: rest -> Ok (a, rest)
          in
          let num_arg conv_fn render =
            match take () with
            | Error e -> Error e
            | Ok (a, rest) -> (
              match conv_fn a with
              | None -> Error (Printf.sprintf "expected number but got %S" a)
              | Some v ->
                Buffer.add_string buf (pad spec (render v));
                go next rest)
          in
          match spec.conv with
          | 's' -> (
            match take () with
            | Error e -> Error e
            | Ok (a, rest) ->
              let a =
                match spec.precision with
                | Some p when p < String.length a -> String.sub a 0 p
                | Some _ | None -> a
              in
              Buffer.add_string buf (pad spec a);
              go next rest)
          | 'd' | 'i' -> num_arg Value.int_of string_of_int
          | 'x' -> num_arg Value.int_of (Printf.sprintf "%x")
          | 'X' -> num_arg Value.int_of (Printf.sprintf "%X")
          | 'o' -> num_arg Value.int_of (Printf.sprintf "%o")
          | 'c' -> num_arg Value.int_of (fun v -> String.make 1 (Char.chr (v land 0xFF)))
          | 'f' ->
            let p = Option.value ~default:6 spec.precision in
            num_arg Value.float_of (fun v -> Printf.sprintf "%.*f" p v)
          | 'e' ->
            let p = Option.value ~default:6 spec.precision in
            num_arg Value.float_of (fun v -> Printf.sprintf "%.*e" p v)
          | 'g' ->
            let p = Option.value ~default:6 spec.precision in
            num_arg Value.float_of (fun v -> Printf.sprintf "%.*g" p v)
          | c -> Error (Printf.sprintf "unsupported format conversion %%%c" c))
    else begin
      Buffer.add_char buf fmt.[i];
      go (i + 1) args
    end
  in
  go 0 args

let split s ~on =
  if on = "" then List.init (String.length s) (fun i -> String.make 1 s.[i])
  else begin
    let is_sep c = String.contains on c in
    let out = ref [] in
    let buf = Buffer.create 16 in
    String.iter
      (fun c ->
        if is_sep c then begin
          out := Buffer.contents buf :: !out;
          Buffer.clear buf
        end
        else Buffer.add_char buf c)
      s;
    out := Buffer.contents buf :: !out;
    List.rev !out
  end

let common_prefix a b =
  let n = min (String.length a) (String.length b) in
  let rec go i = if i < n && a.[i] = b.[i] then go (i + 1) else i in
  go 0

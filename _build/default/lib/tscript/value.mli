(** TScript values.

    Like Tcl — the language the TACOMA prototype used — every value is a
    string; lists and numbers are interpretations.  This is what makes
    folders work: a folder element is an uninterpreted byte string, and an
    agent's code, its data, even a whole serialised agent (paper §4:
    brokers store agents inside folders) are all just strings. *)

val int_of : string -> int option
val float_of : string -> float option

val truthy : string -> bool
(** Tcl boolean: "0"/""/"false"/"no"/"off" are false, numeric zero is false,
    everything else is true. *)

val of_bool : bool -> string
val of_int : int -> string
val of_float : float -> string
(** Renders integral floats without a trailing ["."]; uses shortest
    round-trip formatting otherwise. *)

(** {1 Tcl-style lists}

    A list is a string of whitespace-separated elements; elements containing
    special characters are brace-quoted.  [to_list] and [of_list] are
    inverses for all element values. *)

val of_list : string list -> string

val to_list : string -> (string list, string) result
(** Errors on unbalanced braces/quotes. *)

val to_list_exn : string -> string list
(** @raise Invalid_argument on malformed lists. *)

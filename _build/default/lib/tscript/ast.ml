type fragment =
  | Lit of string
  | Var of string
  | VarElem of string * fragment list
  | Cmd of script
and word = Braced of string | Frags of fragment list
and command = word list
and script = command list

let rec pp_fragment fmt = function
  | Lit s -> Format.fprintf fmt "Lit(%S)" s
  | Var v -> Format.fprintf fmt "Var(%s)" v
  | VarElem (v, idx) ->
    Format.fprintf fmt "VarElem(%s, [%a])" v
      (Format.pp_print_list ~pp_sep:(fun f () -> Format.fprintf f "; ") pp_fragment)
      idx
  | Cmd s -> Format.fprintf fmt "Cmd(%a)" pp_script s

and pp_word fmt = function
  | Braced s -> Format.fprintf fmt "Braced(%S)" s
  | Frags fs ->
    Format.fprintf fmt "Frags[%a]"
      (Format.pp_print_list ~pp_sep:(fun f () -> Format.fprintf f "; ") pp_fragment)
      fs

and pp_command fmt cmd =
  Format.fprintf fmt "(%a)"
    (Format.pp_print_list ~pp_sep:(fun f () -> Format.fprintf f " ") pp_word)
    cmd

and pp_script fmt script =
  Format.pp_print_list ~pp_sep:(fun f () -> Format.fprintf f ";@ ") pp_command fmt script

type node =
  | Char of char
  | Any
  | Class of (char * char) list * bool (* ranges, negated *)
  | Start
  | End
  | Seq of node list
  | Alt of node list
  | Group of int * node
  | Repeat of node * int * int option (* min, max (None = unbounded) *)

type t = { node : node; ngroups : int; nocase : bool }

exception Bad of string

(* --- pattern parser ------------------------------------------------------- *)

type pstate = { src : string; mutable pos : int; mutable groups : int }

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None
let advance st = st.pos <- st.pos + 1

let digit_ranges = [ ('0', '9') ]
let word_ranges = [ ('a', 'z'); ('A', 'Z'); ('0', '9'); ('_', '_') ]
let space_ranges = [ (' ', ' '); ('\t', '\t'); ('\n', '\n'); ('\r', '\r'); ('\012', '\012') ]

let escape_node c =
  match c with
  | 'd' -> Class (digit_ranges, false)
  | 'D' -> Class (digit_ranges, true)
  | 'w' -> Class (word_ranges, false)
  | 'W' -> Class (word_ranges, true)
  | 's' -> Class (space_ranges, false)
  | 'S' -> Class (space_ranges, true)
  | 'n' -> Char '\n'
  | 't' -> Char '\t'
  | 'r' -> Char '\r'
  | other -> Char other

(* character class body: assumes '[' consumed *)
let parse_class st =
  let negated =
    match peek st with
    | Some '^' ->
      advance st;
      true
    | _ -> false
  in
  let ranges = ref [] in
  let add_range a b = ranges := (a, b) :: !ranges in
  let first = ref true in
  let rec go () =
    match peek st with
    | None -> raise (Bad "unterminated character class")
    | Some ']' when not !first -> advance st
    | Some c ->
      first := false;
      advance st;
      let c =
        if c = '\\' then (
          match peek st with
          | None -> raise (Bad "trailing backslash in class")
          | Some e -> (
            advance st;
            match escape_node e with
            | Char ch -> ch
            | Class (rs, false) ->
              List.iter (fun (a, b) -> add_range a b) rs;
              '\000' (* sentinel: ranges already added *)
            | Class (_, true) -> raise (Bad "negated escape inside class")
            | _ -> e))
        else c
      in
      if c <> '\000' then begin
        match peek st with
        | Some '-' when st.pos + 1 < String.length st.src && st.src.[st.pos + 1] <> ']' ->
          advance st;
          (match peek st with
          | Some hi ->
            advance st;
            if hi < c then raise (Bad "inverted range in class");
            add_range c hi
          | None -> raise (Bad "unterminated character class"))
        | _ -> add_range c c
      end;
      go ()
  in
  go ();
  Class (!ranges, negated)

let parse_bound st =
  (* '{' consumed: n | n, | n,m followed by '}' *)
  let read_int () =
    let start = st.pos in
    while (match peek st with Some ('0' .. '9') -> true | _ -> false) do
      advance st
    done;
    if st.pos = start then None
    else Some (int_of_string (String.sub st.src start (st.pos - start)))
  in
  match read_int () with
  | None -> raise (Bad "expected number in {}")
  | Some n -> (
    match peek st with
    | Some '}' ->
      advance st;
      (n, Some n)
    | Some ',' -> (
      advance st;
      let m = read_int () in
      match peek st with
      | Some '}' ->
        advance st;
        (match m with Some m when m < n -> raise (Bad "inverted bound {n,m}") | _ -> ());
        (n, m)
      | _ -> raise (Bad "unterminated {} bound"))
    | _ -> raise (Bad "unterminated {} bound"))

let rec parse_alt st =
  let first = parse_seq st in
  let rec go acc =
    match peek st with
    | Some '|' ->
      advance st;
      go (parse_seq st :: acc)
    | _ -> List.rev acc
  in
  match go [ first ] with [ one ] -> one | many -> Alt many

and parse_seq st =
  let rec go acc =
    match peek st with
    | None | Some '|' | Some ')' -> List.rev acc
    | Some _ -> go (parse_quantified st :: acc)
  in
  match go [] with [ one ] -> one | many -> Seq many

and parse_quantified st =
  let atom = parse_atom st in
  let rec wrap node =
    match peek st with
    | Some '*' ->
      advance st;
      wrap (Repeat (node, 0, None))
    | Some '+' ->
      advance st;
      wrap (Repeat (node, 1, None))
    | Some '?' ->
      advance st;
      wrap (Repeat (node, 0, Some 1))
    | Some '{' ->
      advance st;
      let lo, hi = parse_bound st in
      wrap (Repeat (node, lo, hi))
    | _ -> node
  in
  wrap atom

and parse_atom st =
  match peek st with
  | None -> raise (Bad "unexpected end of pattern")
  | Some '(' ->
    advance st;
    st.groups <- st.groups + 1;
    let idx = st.groups in
    let inner = parse_alt st in
    (match peek st with
    | Some ')' -> advance st
    | _ -> raise (Bad "unbalanced parenthesis"));
    Group (idx, inner)
  | Some '[' ->
    advance st;
    parse_class st
  | Some '.' ->
    advance st;
    Any
  | Some '^' ->
    advance st;
    Start
  | Some '$' ->
    advance st;
    End
  | Some '\\' -> (
    advance st;
    match peek st with
    | None -> raise (Bad "trailing backslash")
    | Some e ->
      advance st;
      escape_node e)
  | Some (('*' | '+' | '?') as c) -> raise (Bad (Printf.sprintf "quantifier %c with nothing to repeat" c))
  | Some ')' -> raise (Bad "unbalanced parenthesis")
  | Some c ->
    advance st;
    Char c

let compile ?(nocase = false) pattern =
  let st = { src = pattern; pos = 0; groups = 0 } in
  match parse_alt st with
  | node ->
    if st.pos < String.length pattern then Error "trailing characters in pattern"
    else Ok { node; ngroups = st.groups; nocase }
  | exception Bad msg -> Error msg

let compile_exn ?nocase pattern =
  match compile ?nocase pattern with
  | Ok t -> t
  | Error msg -> invalid_arg ("Regex.compile_exn: " ^ msg)

(* --- matcher ---------------------------------------------------------------- *)

type match_result = {
  whole : string * int * int;
  groups : (string * int * int) option array;
}

let fold_char nocase c = if nocase then Char.lowercase_ascii c else c

let in_class nocase ranges negated c =
  let c' = fold_char nocase c in
  let hit =
    List.exists
      (fun (a, b) ->
        let a' = fold_char nocase a and b' = fold_char nocase b in
        (c' >= a' && c' <= b') || (c >= a && c <= b))
      ranges
  in
  hit <> negated

(* backtracking CPS matcher; [caps] holds (start, end) per group and is
   restored on failure so alternatives see clean state *)
let match_at t s start =
  let len = String.length s in
  let caps = Array.make (t.ngroups + 1) None in
  let rec m node pos k =
    match node with
    | Char c ->
      pos < len && fold_char t.nocase s.[pos] = fold_char t.nocase c && k (pos + 1)
    | Any -> pos < len && k (pos + 1)
    | Class (ranges, negated) -> pos < len && in_class t.nocase ranges negated s.[pos] && k (pos + 1)
    | Start -> pos = 0 && k pos
    | End -> pos = len && k pos
    | Seq nodes ->
      let rec chain nodes pos =
        match nodes with [] -> k pos | n :: rest -> m n pos (fun p -> chain rest p)
      in
      chain nodes pos
    | Alt alts ->
      List.exists
        (fun a ->
          let saved = Array.copy caps in
          if m a pos k then true
          else begin
            Array.blit saved 0 caps 0 (Array.length caps);
            false
          end)
        alts
    | Group (i, inner) ->
      let saved = caps.(i) in
      let ok =
        m inner pos (fun p ->
            let before = caps.(i) in
            caps.(i) <- Some (pos, p);
            if k p then true
            else begin
              caps.(i) <- before;
              false
            end)
      in
      if not ok then caps.(i) <- saved;
      ok
    | Repeat (inner, min_r, max_r) ->
      let rec go count pos =
        let can_more = match max_r with Some m -> count < m | None -> true in
        let more =
          can_more
          && m inner pos (fun p ->
                 if p = pos then count + 1 >= min_r && k p (* empty match: stop looping *)
                 else go (count + 1) p)
        in
        if more then true else count >= min_r && k pos
      in
      go 0 pos
  in
  if m t.node start (fun p -> caps.(0) <- Some (start, p); true) then
    match caps.(0) with
    | Some (a, b) ->
      Some
        {
          whole = (String.sub s a (b - a), a, b);
          groups =
            Array.init t.ngroups (fun i ->
                match caps.(i + 1) with
                | Some (ga, gb) -> Some (String.sub s ga (gb - ga), ga, gb)
                | None -> None);
        }
    | None -> None
  else None

let search t ?(start = 0) s =
  let len = String.length s in
  let rec go pos = if pos > len then None else
      match match_at t s pos with Some r -> Some r | None -> go (pos + 1)
  in
  go (max 0 start)

let matches t s = Option.is_some (search t s)

(* --- replacement -------------------------------------------------------------- *)

let expand_template template (r : match_result) =
  let buf = Buffer.create (String.length template + 16) in
  let n = String.length template in
  let whole, _, _ = r.whole in
  let rec go i =
    if i < n then begin
      (match template.[i] with
      | '&' ->
        Buffer.add_string buf whole;
        go (i + 1)
      | '\\' when i + 1 < n -> (
        match template.[i + 1] with
        | '0' ->
          Buffer.add_string buf whole;
          go (i + 2)
        | '1' .. '9' as d ->
          let gi = Char.code d - Char.code '1' in
          (if gi < Array.length r.groups then
             match r.groups.(gi) with
             | Some (text, _, _) -> Buffer.add_string buf text
             | None -> ());
          go (i + 2)
        | c ->
          Buffer.add_char buf c;
          go (i + 2))
      | c ->
        Buffer.add_char buf c;
        go (i + 1))
    end
  in
  go 0;
  Buffer.contents buf

let replace t ?(all = false) ~template s =
  let len = String.length s in
  let buf = Buffer.create len in
  let count = ref 0 in
  let rec go pos =
    if pos > len then ()
    else
      match (if (not all) && !count > 0 then None else search t ~start:pos s) with
      | None -> Buffer.add_string buf (String.sub s pos (len - pos))
      | Some r ->
        let _, a, b = r.whole in
        Buffer.add_string buf (String.sub s pos (a - pos));
        Buffer.add_string buf (expand_template template r);
        incr count;
        if b = a then begin
          (* empty match: emit one char and move on to guarantee progress *)
          if b < len then Buffer.add_char buf s.[b];
          go (b + 1)
        end
        else go b
  in
  go 0;
  (Buffer.contents buf, !count)

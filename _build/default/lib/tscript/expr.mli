(** The [expr] sublanguage: arithmetic, comparison and boolean expressions.

    Like Tcl, [expr] performs its own [$var] and [\[cmd\]] substitution —
    that is why [if {$x > 0} ...] works even though braces suppress
    substitution — so the evaluator takes the two substitution callbacks
    from the interpreter. *)

exception Error of string

type num = Int of int | Float of float | Str of string

val eval :
  lookup:(string -> string) ->
  eval_cmd:(string -> string) ->
  string ->
  string
(** Evaluate an expression to its string rendering.
    @raise Error on syntax or type errors (caught by the interpreter and
    turned into a script-level error). *)

val eval_bool :
  lookup:(string -> string) ->
  eval_cmd:(string -> string) ->
  string ->
  bool

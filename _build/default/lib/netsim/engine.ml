type timer = { mutable live : bool; mutable on_cancel : unit -> unit }

type event = { time : float; seq : int; fire : unit -> unit; handle : timer }

type t = {
  mutable clock : float;
  mutable next_seq : int;
  queue : event Tacoma_util.Heap.t;
  mutable live_count : int;
}

let compare_event a b =
  let c = compare a.time b.time in
  if c <> 0 then c else compare a.seq b.seq

let create () =
  {
    clock = 0.0;
    next_seq = 0;
    queue = Tacoma_util.Heap.create ~cmp:compare_event;
    live_count = 0;
  }

let now t = t.clock

let schedule_at t ~at fire =
  let at = max at t.clock in
  let handle = { live = true; on_cancel = (fun () -> ()) } in
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  t.live_count <- t.live_count + 1;
  handle.on_cancel <- (fun () -> t.live_count <- t.live_count - 1);
  Tacoma_util.Heap.push t.queue { time = at; seq; fire; handle };
  handle

let schedule t ~after fire = schedule_at t ~at:(t.clock +. max 0.0 after) fire

let cancel handle =
  if handle.live then begin
    handle.live <- false;
    handle.on_cancel ()
  end

let rec step t =
  match Tacoma_util.Heap.pop t.queue with
  | None -> false
  | Some ev ->
    if ev.handle.live then begin
      ev.handle.live <- false;
      t.live_count <- t.live_count - 1;
      t.clock <- ev.time;
      ev.fire ();
      true
    end
    else step t (* cancelled entry: skip without advancing the clock *)

let run ?until t =
  match until with
  | None -> while step t do () done
  | Some stop ->
    let continue = ref true in
    while !continue do
      match Tacoma_util.Heap.peek t.queue with
      | Some ev when ev.time <= stop -> if not (step t) then continue := false
      | Some _ | None ->
        t.clock <- max t.clock stop;
        continue := false
    done

let pending t = t.live_count

(** Network topologies: sites and bidirectional links with latency and
    bandwidth.  Shortest-path routing (by latency) is computed over this
    graph; multi-hop traffic is charged on every traversed link, which is
    what the bandwidth-conservation experiments measure. *)

type t

type link = { latency : float;  (** one-way, seconds *)
              bandwidth : float (** bytes per second *) }

val create : unit -> t

val add_site : t -> name:string -> Site.id
(** Sites are numbered densely from 0 in creation order. *)

val add_link : t -> Site.id -> Site.id -> latency:float -> bandwidth:float -> unit
(** Bidirectional.  Re-adding an existing link overwrites its parameters. *)

val site_count : t -> int
val site_name : t -> Site.id -> string
val sites : t -> Site.id list
val neighbors : t -> Site.id -> Site.id list
val link : t -> Site.id -> Site.id -> link option
val iter_links : t -> (Site.id -> Site.id -> link -> unit) -> unit
(** Each undirected link is visited once, with [src < dst]. *)

(** {1 Generators}

    All generators use [latency] (default 5 ms) and [bandwidth] (default
    1 MB/s) for every link — a mid-1990s LAN/WAN mix matching the paper's
    Tromsø–Cornell setting. *)

val ring : ?latency:float -> ?bandwidth:float -> int -> t
val star : ?latency:float -> ?bandwidth:float -> int -> t
(** [star n] has a hub (site 0) and [n] spokes. *)

val full_mesh : ?latency:float -> ?bandwidth:float -> int -> t
val grid : ?latency:float -> ?bandwidth:float -> int -> int -> t
(** [grid rows cols]. *)

val line : ?latency:float -> ?bandwidth:float -> int -> t

val random : ?latency:float -> ?bandwidth:float -> rng:Tacoma_util.Rng.t ->
  n:int -> p:float -> unit -> t
(** Erdős–Rényi with edge probability [p]; a spanning ring is always added
    so the graph is connected. *)

val wan_pair :
  ?lan_latency:float ->
  ?lan_bandwidth:float ->
  ?wan_latency:float ->
  ?wan_bandwidth:float ->
  cluster:int ->
  unit ->
  t
(** The paper's own deployment shape (Tromsø and Cornell): two full-mesh
    LAN clusters of [cluster] sites each, joined by a single slow WAN link
    between site 0 (first cluster) and site [cluster] (second cluster).
    Defaults model 1995: 1 ms / 10 MB/s LANs, a 100 ms / 64 KB/s WAN. *)

(** Messages carried by the simulated network.

    The payload is an extensible variant: each layer (TACOMA kernel, Horus,
    client/server baseline) declares its own constructors, so the simulator
    stays ignorant of what it carries — folders are "uninterpreted sequences
    of bits" to the network, exactly as in the paper. *)

type payload = ..

type payload += Ping of string
(** Built-in payload used by tests and diagnostics. *)

type t = {
  src : Site.id;
  dst : Site.id;
  size : int;            (** bytes on the wire *)
  payload : payload;
  sent_at : float;
  hops : int;            (** links traversed from [src] to [dst] *)
}

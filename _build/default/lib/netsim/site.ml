type id = int

let pp fmt id = Format.fprintf fmt "site-%d" id

module Map = Map.Make (Int)
module Set = Set.Make (Int)

(** Byte and message accounting.  These counters are the measured quantity
    in the bandwidth-conservation experiments (paper §1): an agent
    architecture wins precisely when it moves fewer byte-hops than the
    client/server baseline. *)

type t

val create : unit -> t
val reset : t -> unit

(** Recording (called by {!Net}). *)

val record_send : t -> bytes:int -> hops:int -> unit
val record_delivery : t -> unit
val record_drop : t -> unit
val record_link_bytes : t -> Site.id -> Site.id -> int -> unit

(** Reading. *)

val messages_sent : t -> int
val messages_delivered : t -> int
val messages_dropped : t -> int

val bytes_sent : t -> int
(** Total payload bytes handed to the network (counted once per message). *)

val byte_hops : t -> int
(** Sum over messages of [size * hops]: the network-wide bandwidth cost. *)

val link_bytes : t -> Site.id -> Site.id -> int
(** Bytes carried by one undirected link. *)

val busiest_link : t -> (Site.id * Site.id * int) option

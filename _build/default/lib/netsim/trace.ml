type kind = Send | Deliver | Drop | Crash | Restart | Agent | Note

type entry = { time : float; kind : kind; detail : string }

type t = { mutable enabled : bool; mutable entries : entry list (* newest first *) }

let create ?(enabled = false) () = { enabled; entries = [] }
let enable t b = t.enabled <- b
let enabled t = t.enabled

let add t ~time kind detail =
  if t.enabled then t.entries <- { time; kind; detail } :: t.entries

let entries t = List.rev t.entries
let clear t = t.entries <- []

let kind_name = function
  | Send -> "send"
  | Deliver -> "deliver"
  | Drop -> "drop"
  | Crash -> "crash"
  | Restart -> "restart"
  | Agent -> "agent"
  | Note -> "note"

let pp_entry fmt e =
  Format.fprintf fmt "[%10.4f] %-8s %s" e.time (kind_name e.kind) e.detail

let dump fmt t =
  List.iter (fun e -> Format.fprintf fmt "%a@." pp_entry e) (entries t)

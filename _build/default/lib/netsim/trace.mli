(** Chronological event trace.  Optional (off by default); experiments turn
    it on to explain *why* a run behaved as it did — e.g. which crash killed
    which agent and which rear guard relaunched it. *)

type kind =
  | Send
  | Deliver
  | Drop
  | Crash
  | Restart
  | Agent  (** agent-level events recorded by upper layers *)
  | Note

type entry = { time : float; kind : kind; detail : string }

type t

val create : ?enabled:bool -> unit -> t
val enable : t -> bool -> unit
val enabled : t -> bool

val add : t -> time:float -> kind -> string -> unit
(** No-op while disabled. *)

val entries : t -> entry list
(** Oldest first. *)

val clear : t -> unit
val pp_entry : Format.formatter -> entry -> unit
val dump : Format.formatter -> t -> unit

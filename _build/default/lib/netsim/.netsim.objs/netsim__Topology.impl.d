lib/netsim/topology.ml: Array Fun Hashtbl List Option Printf Tacoma_util

lib/netsim/topology.mli: Site Tacoma_util

lib/netsim/site.mli: Format Map Set

lib/netsim/fault.ml: Engine List Net Site Tacoma_util

lib/netsim/site.ml: Format Int Map Set

lib/netsim/fault.mli: Net Site Tacoma_util

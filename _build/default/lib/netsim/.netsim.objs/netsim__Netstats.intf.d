lib/netsim/netstats.mli: Site

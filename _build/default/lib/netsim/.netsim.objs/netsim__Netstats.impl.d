lib/netsim/netstats.ml: Hashtbl Option

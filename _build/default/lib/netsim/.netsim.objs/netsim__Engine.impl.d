lib/netsim/engine.ml: Tacoma_util

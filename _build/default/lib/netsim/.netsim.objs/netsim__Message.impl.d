lib/netsim/message.ml: Site

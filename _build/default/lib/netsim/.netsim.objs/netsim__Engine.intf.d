lib/netsim/engine.mli:

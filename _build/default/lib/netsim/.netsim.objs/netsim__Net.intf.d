lib/netsim/net.mli: Engine Message Netstats Site Tacoma_util Topology Trace

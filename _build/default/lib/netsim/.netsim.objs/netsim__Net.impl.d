lib/netsim/net.ml: Array Engine Float Hashtbl List Message Netstats Option Printf Tacoma_util Topology Trace

lib/netsim/message.mli: Site

(** Site identities.  A site is a machine in the network: it hosts one
    TACOMA place (a script interpreter plus a file cabinet) and can crash
    and restart. *)

type id = int

val pp : Format.formatter -> id -> unit

module Map : Map.S with type key = id
module Set : Set.S with type elt = id

type t = {
  mutable sent : int;
  mutable delivered : int;
  mutable dropped : int;
  mutable bytes : int;
  mutable byte_hops : int;
  per_link : (int * int, int) Hashtbl.t;
}

let create () =
  { sent = 0; delivered = 0; dropped = 0; bytes = 0; byte_hops = 0; per_link = Hashtbl.create 64 }

let reset t =
  t.sent <- 0;
  t.delivered <- 0;
  t.dropped <- 0;
  t.bytes <- 0;
  t.byte_hops <- 0;
  Hashtbl.reset t.per_link

let record_send t ~bytes ~hops =
  t.sent <- t.sent + 1;
  t.bytes <- t.bytes + bytes;
  t.byte_hops <- t.byte_hops + (bytes * hops)

let record_delivery t = t.delivered <- t.delivered + 1
let record_drop t = t.dropped <- t.dropped + 1

let key a b = if a < b then (a, b) else (b, a)

let record_link_bytes t a b n =
  let k = key a b in
  let cur = Option.value ~default:0 (Hashtbl.find_opt t.per_link k) in
  Hashtbl.replace t.per_link k (cur + n)

let messages_sent t = t.sent
let messages_delivered t = t.delivered
let messages_dropped t = t.dropped
let bytes_sent t = t.bytes
let byte_hops t = t.byte_hops
let link_bytes t a b = Option.value ~default:0 (Hashtbl.find_opt t.per_link (key a b))

let busiest_link t =
  Hashtbl.fold
    (fun (a, b) n best ->
      match best with
      | Some (_, _, m) when m >= n -> best
      | Some _ | None -> Some (a, b, n))
    t.per_link None

type link = { latency : float; bandwidth : float }

type t = {
  mutable names : string list; (* reversed *)
  mutable count : int;
  mutable name_arr : string array option; (* cache, invalidated on add *)
  links : (int * int, link) Hashtbl.t; (* key has src < dst *)
  adj : (int, int list) Hashtbl.t;
}

let create () =
  { names = []; count = 0; name_arr = None; links = Hashtbl.create 64; adj = Hashtbl.create 64 }

let add_site t ~name =
  let id = t.count in
  t.names <- name :: t.names;
  t.count <- t.count + 1;
  t.name_arr <- None;
  id

let key a b = if a < b then (a, b) else (b, a)

let add_link t a b ~latency ~bandwidth =
  if a = b then invalid_arg "Topology.add_link: self loop";
  if a < 0 || a >= t.count || b < 0 || b >= t.count then
    invalid_arg "Topology.add_link: unknown site";
  let fresh = not (Hashtbl.mem t.links (key a b)) in
  Hashtbl.replace t.links (key a b) { latency; bandwidth };
  if fresh then begin
    let push x y =
      let cur = Option.value ~default:[] (Hashtbl.find_opt t.adj x) in
      Hashtbl.replace t.adj x (y :: cur)
    in
    push a b;
    push b a
  end

let site_count t = t.count

let names_array t =
  match t.name_arr with
  | Some arr -> arr
  | None ->
    let arr = Array.of_list (List.rev t.names) in
    t.name_arr <- Some arr;
    arr

let site_name t id =
  let arr = names_array t in
  if id < 0 || id >= Array.length arr then invalid_arg "Topology.site_name";
  arr.(id)

let sites t = List.init t.count Fun.id
let neighbors t id = Option.value ~default:[] (Hashtbl.find_opt t.adj id)
let link t a b = Hashtbl.find_opt t.links (key a b)

let iter_links t f = Hashtbl.iter (fun (a, b) l -> f a b l) t.links

let default_latency = 0.005
let default_bandwidth = 1_000_000.0

let mk ?(latency = default_latency) ?(bandwidth = default_bandwidth) n name_of =
  let t = create () in
  for i = 0 to n - 1 do
    ignore (add_site t ~name:(name_of i))
  done;
  (t, fun a b -> add_link t a b ~latency ~bandwidth)

let ring ?latency ?bandwidth n =
  if n < 1 then invalid_arg "Topology.ring";
  let t, connect = mk ?latency ?bandwidth n (Printf.sprintf "ring-%d") in
  if n > 1 then
    for i = 0 to n - 1 do
      let j = (i + 1) mod n in
      if j <> i && not (Option.is_some (link t i j)) then connect i j
    done;
  t

let star ?latency ?bandwidth n =
  if n < 0 then invalid_arg "Topology.star";
  let t, connect =
    mk ?latency ?bandwidth (n + 1) (fun i -> if i = 0 then "hub" else Printf.sprintf "spoke-%d" i)
  in
  for i = 1 to n do
    connect 0 i
  done;
  t

let full_mesh ?latency ?bandwidth n =
  if n < 1 then invalid_arg "Topology.full_mesh";
  let t, connect = mk ?latency ?bandwidth n (Printf.sprintf "mesh-%d") in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      connect i j
    done
  done;
  t

let grid ?latency ?bandwidth rows cols =
  if rows < 1 || cols < 1 then invalid_arg "Topology.grid";
  let t, connect =
    mk ?latency ?bandwidth (rows * cols) (fun i ->
        Printf.sprintf "grid-%d-%d" (i / cols) (i mod cols))
  in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      let i = (r * cols) + c in
      if c + 1 < cols then connect i (i + 1);
      if r + 1 < rows then connect i (i + cols)
    done
  done;
  t

let line ?latency ?bandwidth n =
  if n < 1 then invalid_arg "Topology.line";
  let t, connect = mk ?latency ?bandwidth n (Printf.sprintf "line-%d") in
  for i = 0 to n - 2 do
    connect i (i + 1)
  done;
  t

let wan_pair ?(lan_latency = 0.001) ?(lan_bandwidth = 10_000_000.0) ?(wan_latency = 0.1)
    ?(wan_bandwidth = 64_000.0) ~cluster () =
  if cluster < 1 then invalid_arg "Topology.wan_pair";
  let t = create () in
  for i = 0 to (2 * cluster) - 1 do
    let side = if i < cluster then "tromso" else "cornell" in
    ignore (add_site t ~name:(Printf.sprintf "%s-%d" side (i mod cluster)))
  done;
  let mesh offset =
    for i = 0 to cluster - 1 do
      for j = i + 1 to cluster - 1 do
        add_link t (offset + i) (offset + j) ~latency:lan_latency ~bandwidth:lan_bandwidth
      done
    done
  in
  mesh 0;
  mesh cluster;
  if cluster >= 1 && site_count t >= 2 then
    add_link t 0 cluster ~latency:wan_latency ~bandwidth:wan_bandwidth;
  t

let random ?latency ?bandwidth ~rng ~n ~p () =
  if n < 1 then invalid_arg "Topology.random";
  let t, connect = mk ?latency ?bandwidth n (Printf.sprintf "rand-%d") in
  (* spanning ring first, so the graph is connected regardless of p *)
  if n > 1 then
    for i = 0 to n - 1 do
      let j = (i + 1) mod n in
      if j <> i && not (Option.is_some (link t i j)) then connect i j
    done;
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if (not (Option.is_some (link t i j))) && Tacoma_util.Rng.float rng < p then connect i j
    done
  done;
  t

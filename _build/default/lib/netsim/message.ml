type payload = ..
type payload += Ping of string

type t = {
  src : Site.id;
  dst : Site.id;
  size : int;
  payload : payload;
  sent_at : float;
  hops : int;
}

module Mint = Cash.Mint
module Ecu = Cash.Ecu
module Audit = Cash.Audit
module Validator = Cash.Validator
module Kernel = Tacoma_core.Kernel
module Net = Netsim.Net
module Topology = Netsim.Topology
module Rng = Tacoma_util.Rng

type row_a = {
  attack_rate : float;
  purchases : int;
  validating_loss : int;
  naive_loss : int;
  detected : int;
}

type row_b = {
  customer : string;
  merchant : string;
  trials : int;
  correct_verdicts : int;
  verdict : string;
}

let price = 100

(* E4a: the same purchase stream hits a validating merchant and a naive one.
   An attacking customer presents a copy of a bill that was already spent. *)
let run_one_a ~rng ~purchases ~attack_rate =
  let mint = Mint.create ~secret:"e4" () in
  let validating_loss = ref 0 and naive_loss = ref 0 and detected = ref 0 in
  for _ = 1 to purchases do
    let bill = Mint.issue mint ~amount:price in
    let attacking = Rng.float rng < attack_rate in
    if attacking then begin
      (* the customer spends the bill somewhere else first; the merchant
         will be offered a copy *)
      match Mint.validate_and_reissue mint bill with
      | Ok _ -> ()
      | Error _ -> assert false
    end;
    (* validating merchant: consults the validation agent before serving *)
    (match Mint.validate_and_reissue mint bill with
    | Ok _fresh -> () (* paid in full, service rendered *)
    | Error _ -> incr detected (* refused: no service, no loss *));
    (* naive merchant: serves first, tries to bank the bill afterwards *)
    let banked =
      if attacking then Error Mint.Double_spent
      else Ok ()
    in
    (match banked with
    | Ok () -> ()
    | Error _ -> naive_loss := !naive_loss + price)
  done;
  {
    attack_rate;
    purchases;
    validating_loss = !validating_loss;
    naive_loss = !naive_loss;
    detected = !detected;
  }

let run_a ?(purchases = 500) ?(attack_rates = [ 0.0; 0.05; 0.1; 0.2; 0.4 ]) () =
  let rng = Rng.create 99L in
  List.map (fun attack_rate -> run_one_a ~rng ~purchases ~attack_rate) attack_rates

(* E4b: witnessed purchases over the network, judged by the court. *)
let expected_verdict customer merchant =
  match (customer, merchant) with
  | Audit.Honest, Audit.Honest -> Audit.Clean
  | Audit.Honest, Audit.Cheat -> Audit.Merchant_cheated
  (* a cheating customer bypasses the witness with an already-spent bill:
     the merchant refuses, nothing provable happened, the claim is
     dismissed *)
  | Audit.Cheat, _ -> Audit.No_transaction

let behavior_name = function Audit.Honest -> "honest" | Audit.Cheat -> "cheat"

let run_one_b ~trial ~customer ~merchant =
  let net = Net.create (Topology.full_mesh 4) in
  let k = Kernel.create net in
  let mint = Mint.create ~secret:"e4b" () in
  Validator.install k ~site:3 mint;
  Audit.install_witness k ~site:2;
  let bill = Mint.issue mint ~amount:price in
  (* a cheating customer's bill was already spent elsewhere *)
  (if customer = Audit.Cheat then
     match Mint.validate_and_reissue mint bill with Ok _ -> () | Error _ -> assert false);
  let tx = Printf.sprintf "e4b-%d" trial in
  ignore
    (Audit.purchase k ~tx ~amount:price ~bills:[ bill ]
       ~customer:("alice", "ka", customer) ~merchant:("bob", "kb", merchant)
       ~customer_site:0 ~merchant_site:1 ~witness_site:2 ~bank_site:3);
  Net.run ~until:60.0 net;
  Audit.judge
    ~keys:[ ("alice", "ka"); ("bob", "kb") ]
    ~log:(Audit.read_witness_log k ~site:2)
    ~tx

let run_b ?(trials = 10) () =
  let combos =
    [
      (Audit.Honest, Audit.Honest);
      (Audit.Honest, Audit.Cheat);
      (Audit.Cheat, Audit.Honest);
      (Audit.Cheat, Audit.Cheat);
    ]
  in
  List.map
    (fun (customer, merchant) ->
      let verdicts =
        List.init trials (fun trial -> run_one_b ~trial ~customer ~merchant)
      in
      let expected = expected_verdict customer merchant in
      {
        customer = behavior_name customer;
        merchant = behavior_name merchant;
        trials;
        correct_verdicts = List.length (List.filter (fun v -> v = expected) verdicts);
        verdict =
          (match verdicts with v :: _ -> Audit.verdict_name v | [] -> "-");
      })
    combos

type row_c = { fuel_cents : int; damage : int; survived : bool }

(* E4c: the run-away agent spams the site cabinet until its fuel runs out *)
let run_c ?(fuel_levels = [ 0; 1; 5; 20; 100 ]) () =
  List.map
    (fun fuel_cents ->
      let net = Net.create (Topology.line 2) in
      let k = Kernel.create net in
      let m = Mint.create ~secret:"e4c" () in
      Cash.Fuel.install k m ~steps_per_cent:100 ~courtesy:50;
      let bc = Tacoma_core.Briefcase.create () in
      Tacoma_core.Briefcase.set bc Tacoma_core.Briefcase.code_folder
        "while {1} {cabinet put SPAM x}";
      Cash.Fuel.grant m bc ~cents:fuel_cents;
      Kernel.launch k ~site:0 ~contact:"ag_script" bc;
      Net.run ~until:10.0 net;
      {
        fuel_cents;
        damage = Tacoma_core.Cabinet.size (Kernel.cabinet k 0) "SPAM";
        survived = Kernel.deaths k = 0;
      })
    fuel_levels

let print_table fmt =
  let rows_a = run_a () in
  Table.render fmt
    ~title:"E4a cash: merchant losses with and without the validation agent"
    ~header:[ "attack rate"; "purchases"; "validating loss"; "naive loss"; "detected" ]
    (List.map
       (fun r ->
         [
           Table.F2 r.attack_rate;
           Table.I r.purchases;
           Table.I r.validating_loss;
           Table.I r.naive_loss;
           Table.I r.detected;
         ])
       rows_a);
  let rows_b = run_b () in
  Table.render fmt ~title:"E4b cash: court verdicts vs ground truth (witnessed exchanges)"
    ~header:[ "customer"; "merchant"; "trials"; "correct"; "verdict" ]
    (List.map
       (fun r ->
         [
           Table.S r.customer;
           Table.S r.merchant;
           Table.I r.trials;
           Table.I r.correct_verdicts;
           Table.S r.verdict;
         ])
       rows_b);
  let rows_c = run_c () in
  Table.render fmt
    ~title:"E4c cash as fuel: a run-away agent's damage is bounded by the money it carries"
    ~header:[ "fuel (cents)"; "junk entries written"; "survived" ]
    (List.map
       (fun r ->
         [ Table.I r.fuel_cents; Table.I r.damage; Table.S (if r.survived then "yes" else "no") ])
       rows_c)

(** E1 — bandwidth conservation (paper §1).

    Claim: "by structuring a system in terms of agents, applications can be
    constructed in which communication-network bandwidth is conserved ...
    there is rarely a need to transmit raw data from one site to another";
    versus client/server, where "raw data may have to be sent from one site
    to another if the client obtains its computing cycles from a different
    site than it obtains its data".

    Workload: a dataset of [records] rows of [record_bytes] each at a data
    site several hops from the client; a query whose selectivity is swept.
    The agent travels to the data, filters in place and carries back only
    matches (plus its own code); the client/server baseline ships every row
    to the client, which filters locally.

    Expected shape: the agent wins by ~1/selectivity for selective queries
    and loses slightly when selectivity approaches 1 (it still pays the
    code-shipping overhead); the crossover sits where matched bytes plus
    agent overhead equal the raw transfer. *)

type row = {
  selectivity : float;
  agent_bytes : int;
  cs_bytes : int;
  ratio : float;           (** cs / agent; > 1 means the agent wins *)
  agent_time : float;
  cs_time : float;
}

type params = {
  records : int;
  record_bytes : int;
  hops : int;              (** distance between client and data site *)
  selectivities : float list;
}

val default_params : params
val run : ?params:params -> unit -> row list

val run_wan : ?selectivities:float list -> unit -> row list
(** The same comparison on the paper's own deployment shape
    ({!Netsim.Topology.wan_pair}: two 1995 LANs joined by a 64 KB/s
    trans-Atlantic link).  Here the {e time} gap dominates: the
    client/server pull drags the whole dataset across the WAN. *)

val print_table : Format.formatter -> unit

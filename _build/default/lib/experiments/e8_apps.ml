module Kernel = Tacoma_core.Kernel
module Net = Netsim.Net
module Topology = Netsim.Topology
module Rng = Tacoma_util.Rng
module Weather = Apps.Weather
module Stormcast = Apps.Stormcast
module Agentmail = Apps.Agentmail

type stormcast_row = {
  architecture : string;
  bytes_moved : int;
  readings_moved : int;
  completion_s : float;
  hit_rate : float;
  false_alarm_rate : float;
}

type mail_row = { scenario : string; sent : int; delivered : int; extra : string }

let run_stormcast ?(stations = 8) ?(hours = 168) () =
  let field = Weather.generate ~rng:(Rng.create 4242L) ~stations ~hours ~storm_count:3 () in
  let sensors = List.init stations (fun i -> i + 1) in
  let score o =
    let hit = ref 0.0 and fa = ref 0.0 in
    Stormcast.score field o.Stormcast.predictions ~hit_rate:hit ~false_alarm_rate:fa;
    (!hit, !fa)
  in
  (* agent architecture *)
  let net_a = Net.create (Topology.star stations) in
  let k = Kernel.create net_a in
  Stormcast.load_sensor_data k ~sites:sensors field;
  let agent_out = ref None in
  Stormcast.run_agent_collector k ~sensor_sites:sensors ~centre:0 ~on_done:(fun o ->
      agent_out := Some o);
  Net.run ~until:600.0 net_a;
  (* client/server architecture *)
  let net_c = Net.create (Topology.star stations) in
  let cs_out = ref None in
  Stormcast.run_client_server net_c ~field ~sensor_sites:sensors ~centre:0
    ~on_done:(fun o -> cs_out := Some o);
  Net.run ~until:600.0 net_c;
  match (!agent_out, !cs_out) with
  | Some a, Some c ->
    let mk name (o : Stormcast.outcome) =
      let hit, fa = score o in
      {
        architecture = name;
        bytes_moved = o.Stormcast.bytes_moved;
        readings_moved = o.Stormcast.readings_moved;
        completion_s = o.Stormcast.finished_at;
        hit_rate = hit;
        false_alarm_rate = fa;
      }
    in
    [ mk "agent" a; mk "client/server" c ]
  | _ -> failwith "E8: stormcast run did not finish"

let run_mail () =
  let mk_world () =
    let net = Net.create (Topology.full_mesh 6) in
    let k = Kernel.create net in
    Agentmail.setup k;
    let users = [ "u0"; "u1"; "u2"; "u3"; "u4"; "u5" ] in
    List.iteri (fun i u -> Agentmail.register_user k ~user:u ~home:i) users;
    (net, k, users)
  in
  (* scenario 1: burst on a healthy network *)
  let net, k, users = mk_world () in
  let rng = Rng.create 77L in
  let sent = 40 in
  for _ = 1 to sent do
    let from_user = Rng.pick_list rng users in
    let to_user = Rng.pick_list rng users in
    Agentmail.send k ~src:0 ~from_user ~to_user ~subject:"s" ~body:"b"
  done;
  Net.run ~until:120.0 net;
  let delivered =
    List.fold_left (fun acc u -> acc + List.length (Agentmail.mailbox k ~user:u)) 0 users
  in
  let healthy = { scenario = "healthy burst"; sent; delivered; extra = "exactly-once" } in
  (* scenario 2: same burst with crashing homes *)
  let net, k, users = mk_world () in
  let rng = Rng.create 77L in
  let plans =
    Netsim.Fault.poisson_plan ~rng:(Rng.create 5L) ~sites:(List.init 6 Fun.id) ~rate:0.02
      ~mean_downtime:5.0 ~until:60.0
  in
  Netsim.Fault.apply net plans;
  let t = ref 0.0 in
  for _ = 1 to sent do
    t := !t +. 1.0;
    let from_user = Rng.pick_list rng users in
    let to_user = Rng.pick_list rng users in
    ignore
      (Net.schedule net ~after:!t (fun () ->
           if Net.site_up net 0 then
             Agentmail.send k ~src:0 ~from_user ~to_user ~subject:"s" ~body:"b"))
  done;
  Net.run ~until:300.0 net;
  let delivered2 =
    List.fold_left (fun acc u -> acc + List.length (Agentmail.mailbox k ~user:u)) 0 users
  in
  let crashing =
    {
      scenario = "crashing homes";
      sent;
      delivered = delivered2;
      extra = "losses = agents racing a down home";
    }
  in
  (* scenario 3: list + vacation + forward features *)
  let net, k, _ = mk_world () in
  Agentmail.make_list k ~name:"all" ~members:[ "u1"; "u2"; "u3" ];
  Agentmail.set_forward k ~user:"u2" ~to_user:"u4";
  Agentmail.set_vacation k ~user:"u3" ~note:"away";
  Agentmail.send k ~src:0 ~from_user:"u0" ~to_user:"all" ~subject:"ann" ~body:"x";
  Net.run ~until:120.0 net;
  let got u = List.length (Agentmail.mailbox k ~user:u) in
  let features =
    {
      scenario = "list+forward+vacation";
      sent = 1;
      delivered = got "u1" + got "u4" + got "u3";
      extra =
        Printf.sprintf "u1=%d u4(fwd of u2)=%d u3=%d u0(auto-reply)=%d" (got "u1") (got "u4")
          (got "u3") (got "u0");
    }
  in
  [ healthy; crashing; features ]

type latency_row = {
  l_architecture : string;
  detections : int;
  mean_detection_latency : float;
  l_bytes : int;
}

let run_latency ?(stations = 8) ?(hours = 72) () =
  let hour_scale = 1.0 in
  let field = Weather.generate ~rng:(Rng.create 808L) ~stations ~hours ~storm_count:3 () in
  let sensors = List.init stations (fun i -> i + 1) in
  (* push: resident monitors *)
  let net_p = Net.create (Topology.star stations) in
  let kp = Kernel.create net_p in
  let finish =
    Stormcast.run_monitor_agents kp ~field ~sensor_sites:sensors ~centre:0 ~hour_scale ()
  in
  Net.run ~until:(float_of_int (hours + 10) *. hour_scale) net_p;
  let push = finish () in
  (* tour: the collector sweeps once at the end of the window; an anomalous
     reading produced at hour h has waited since then *)
  let net_t = Net.create (Topology.star stations) in
  let kt = Kernel.create net_t in
  Stormcast.load_sensor_data kt ~sites:sensors field;
  let tour_out = ref None in
  ignore
    (Net.schedule net_t ~after:(float_of_int hours *. hour_scale) (fun () ->
         Stormcast.run_agent_collector kt ~sensor_sites:sensors ~centre:0 ~on_done:(fun o ->
             tour_out := Some o)));
  Net.run ~until:(float_of_int (hours + 100) *. hour_scale) net_t;
  let tour = match !tour_out with Some o -> o | None -> failwith "E8c: tour did not finish" in
  let anomalies =
    Array.to_list field.Weather.readings
    |> List.concat_map Array.to_list
    |> List.filter Stormcast.anomalous
  in
  let tour_latency =
    match anomalies with
    | [] -> 0.0
    | _ ->
      Tacoma_util.Stats.mean
        (List.map
           (fun (r : Weather.reading) ->
             tour.Stormcast.finished_at -. (float_of_int (r.Weather.hour + 1) *. hour_scale))
           anomalies)
  in
  [
    {
      l_architecture = "resident monitors (push)";
      detections = push.Stormcast.alerts;
      mean_detection_latency = push.Stormcast.mean_alert_latency;
      l_bytes = push.Stormcast.push_bytes;
    };
    {
      l_architecture = "roaming collector (tour)";
      detections = tour.Stormcast.readings_moved;
      mean_detection_latency = tour_latency;
      l_bytes = tour.Stormcast.bytes_moved;
    };
  ]

let print_table fmt =
  let sc = run_stormcast () in
  Table.render fmt
    ~title:"E8a StormCast: agent collector vs client/server pull (8 stations x 168h, 3 storms)"
    ~header:
      [ "architecture"; "bytes moved"; "readings moved"; "t (s)"; "hit rate"; "false alarms" ]
    (List.map
       (fun r ->
         [
           Table.S r.architecture;
           Table.I r.bytes_moved;
           Table.I r.readings_moved;
           Table.F2 r.completion_s;
           Table.Pct r.hit_rate;
           Table.Pct r.false_alarm_rate;
         ])
       sc);
  let lat = run_latency () in
  Table.render fmt
    ~title:
      "E8c StormCast detection latency: resident monitor agents vs an end-of-window tour (1s = 1h)"
    ~header:[ "architecture"; "detections"; "mean latency s"; "bytes" ]
    (List.map
       (fun r ->
         [
           Table.S r.l_architecture;
           Table.I r.detections;
           Table.F r.mean_detection_latency;
           Table.I r.l_bytes;
         ])
       lat);
  let mail = run_mail () in
  Table.render fmt ~title:"E8b agent mail: delivery under three scenarios"
    ~header:[ "scenario"; "sent"; "delivered"; "notes" ]
    (List.map
       (fun r -> [ Table.S r.scenario; Table.I r.sent; Table.I r.delivered; Table.S r.extra ])
       mail)

module Kernel = Tacoma_core.Kernel
module Briefcase = Tacoma_core.Briefcase
module Net = Netsim.Net
module Topology = Netsim.Topology
module Fault = Netsim.Fault
module Rng = Tacoma_util.Rng
module Stats = Tacoma_util.Stats
module Escort = Guard.Escort

type row = {
  shape : string;
  lambda : float;
  trials : int;
  guarded_completed : int;
  unguarded_completed : int;
  mean_relaunches : float;
  guarded_time : float;
  unguarded_time : float;
}

type params = {
  trials : int;
  lambdas : float list;
  work_per_hop : float;
  mean_downtime : float;
  horizon : float;
}

let default_params =
  {
    trials = 25;
    lambdas = [ 0.0; 0.002; 0.005; 0.01; 0.02 ];
    work_per_hop = 1.0;
    mean_downtime = 8.0;
    horizon = 600.0;
  }

type shape = { shape_name : string; sites : int; branches : int list list }

let shapes =
  [
    { shape_name = "line-6"; sites = 6; branches = [ [ 0; 1; 2; 3; 4; 5 ] ] };
    { shape_name = "cycle-8"; sites = 4; branches = [ [ 0; 1; 2; 3; 0; 1; 2; 3 ] ] };
    {
      shape_name = "fanout-3x3";
      sites = 7;
      branches = [ [ 0; 1; 2 ]; [ 0; 3; 4 ]; [ 0; 5; 6 ] ];
    };
  ]

let guard_config =
  {
    Escort.ack_timeout = 4.0;
    retry_period = 3.0;
    max_relaunch = 30;
    transport = Tacoma_core.Kernel.Tcp;
    durable = false;
  }

(* one trial: returns (completed, completion_time, relaunches) *)
let run_trial p shape ~plan ~guarded ~trial =
  let net = Net.create (Topology.full_mesh shape.sites) in
  let k = Kernel.create net in
  Fault.apply net plan;
  let work ctx ~hop:_ _ = Kernel.sleep ctx p.work_per_hop in
  let completion_time = ref nan in
  let total = List.length shape.branches in
  let done_count = ref 0 in
  let on_complete _ =
    incr done_count;
    if !done_count = total then completion_time := Net.now net
  in
  let journeys =
    List.mapi
      (fun i branch ->
        let id = Printf.sprintf "%s-%b-%d-%d" shape.shape_name guarded trial i in
        if guarded then
          Escort.guarded_journey k ~config:guard_config ~id ~itinerary:branch ~work
            ~on_complete (Briefcase.create ())
        else
          Escort.unguarded_journey k ~id ~itinerary:branch ~work ~on_complete
            (Briefcase.create ()))
      shape.branches
  in
  Net.run ~until:p.horizon net;
  let completed = !done_count = total in
  let relaunches =
    List.fold_left (fun acc j -> acc + (Escort.stats j).Escort.relaunches) 0 journeys
  in
  (completed, !completion_time, relaunches)

let run_config p shape lambda =
  let rng = Rng.create (Int64.of_int (Hashtbl.hash (shape.shape_name, lambda))) in
  let g_done = ref 0 and u_done = ref 0 in
  let g_times = ref [] and u_times = ref [] in
  let relaunches = ref 0 in
  for trial = 1 to p.trials do
    let plan =
      Fault.poisson_plan ~rng
        ~sites:(List.init shape.sites Fun.id)
        ~rate:lambda ~mean_downtime:p.mean_downtime ~until:p.horizon
    in
    let gc, gt, r = run_trial p shape ~plan ~guarded:true ~trial in
    let uc, ut, _ = run_trial p shape ~plan ~guarded:false ~trial in
    if gc then begin
      incr g_done;
      g_times := gt :: !g_times
    end;
    if uc then begin
      incr u_done;
      u_times := ut :: !u_times
    end;
    relaunches := !relaunches + r
  done;
  {
    shape = shape.shape_name;
    lambda;
    trials = p.trials;
    guarded_completed = !g_done;
    unguarded_completed = !u_done;
    mean_relaunches = float_of_int !relaunches /. float_of_int p.trials;
    guarded_time = Stats.mean !g_times;
    unguarded_time = Stats.mean !u_times;
  }

let run ?(params = default_params) () =
  List.concat_map
    (fun shape -> List.map (run_config params shape) params.lambdas)
    shapes

let print_table fmt =
  let rows = run () in
  Table.render fmt
    ~title:
      (Printf.sprintf
         "E6 rear guards: completion under site crashes (%d trials/config, identical fault schedules)"
         default_params.trials)
    ~header:
      [
        "shape"; "lambda"; "guarded done"; "unguarded done"; "relaunches/trial";
        "guarded t"; "unguarded t";
      ]
    (List.map
       (fun r ->
         [
           Table.S r.shape;
           Table.F r.lambda;
           Table.S (Printf.sprintf "%d/%d" r.guarded_completed r.trials);
           Table.S (Printf.sprintf "%d/%d" r.unguarded_completed r.trials);
           Table.F2 r.mean_relaunches;
           Table.F2 r.guarded_time;
           Table.F2 r.unguarded_time;
         ])
       rows)

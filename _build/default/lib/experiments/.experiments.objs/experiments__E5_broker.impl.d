lib/experiments/e5_broker.ml: Broker Hashtbl List Netsim Printf Table Tacoma_core Tacoma_util

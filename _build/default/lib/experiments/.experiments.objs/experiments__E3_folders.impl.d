lib/experiments/e3_folders.ml: Float List Printf String Sys Table Tacoma_core

lib/experiments/e8_apps.ml: Apps Array Fun List Netsim Printf Table Tacoma_core Tacoma_util

lib/experiments/e4_cash.ml: Cash List Netsim Printf Table Tacoma_core Tacoma_util

lib/experiments/e8_apps.mli: Format

lib/experiments/e7_transports.mli: Format

lib/experiments/e7_transports.ml: List Netsim Option Printf String Table Tacoma_core

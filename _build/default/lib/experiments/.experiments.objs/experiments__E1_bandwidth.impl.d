lib/experiments/e1_bandwidth.ml: Baseline Float List Netsim Printf String Table Tacoma_core

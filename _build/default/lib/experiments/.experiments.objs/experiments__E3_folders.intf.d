lib/experiments/e3_folders.mli: Format

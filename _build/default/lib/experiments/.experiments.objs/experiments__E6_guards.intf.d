lib/experiments/e6_guards.mli: Format

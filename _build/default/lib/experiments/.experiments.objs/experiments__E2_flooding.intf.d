lib/experiments/e2_flooding.mli: Format

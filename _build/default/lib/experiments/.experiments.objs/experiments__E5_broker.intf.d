lib/experiments/e5_broker.mli: Format

lib/experiments/e2_flooding.ml: Array Hashtbl List Netsim Queue Table Tacoma_core Tacoma_util

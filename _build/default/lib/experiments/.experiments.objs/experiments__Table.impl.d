lib/experiments/table.ml: Array Format List Printf String

lib/experiments/e4_cash.mli: Format

lib/experiments/ablations.ml: Broker E1_bandwidth E5_broker Float Fun Guard List Netsim Printf String Table Tacoma_core Tacoma_util

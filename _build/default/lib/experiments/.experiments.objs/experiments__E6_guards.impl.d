lib/experiments/e6_guards.ml: Fun Guard Hashtbl Int64 List Netsim Printf Table Tacoma_core Tacoma_util

lib/experiments/registry.ml: Ablations E1_bandwidth E2_flooding E3_folders E4_cash E5_broker E6_guards E7_transports E8_apps Format List String

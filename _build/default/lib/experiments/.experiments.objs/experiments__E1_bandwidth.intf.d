lib/experiments/e1_bandwidth.mli: Format

module Folder = Tacoma_core.Folder
module Briefcase = Tacoma_core.Briefcase
module Cabinet = Tacoma_core.Cabinet

type row = {
  elements : int;
  folder_lookup_ns : float;
  cabinet_lookup_ns : float;
  lookup_speedup : float;
  folder_move_us : float;
  cabinet_move_us : float;
  move_penalty : float;
}

(* wall-clock micro timing; repetitions scale down with op cost so each
   measurement takes a few milliseconds *)
let time_ns reps f =
  let t0 = Sys.time () in
  for _ = 1 to reps do
    f ()
  done;
  (Sys.time () -. t0) *. 1e9 /. float_of_int reps

let element i = Printf.sprintf "element-%08d-%s" i (String.make 16 'x')

let measure n =
  let elems = List.init n element in
  let folder = Folder.of_list elems in
  let bc = Briefcase.create () in
  Folder.replace (Briefcase.folder bc "F") elems;
  let cab = Cabinet.create () in
  Cabinet.replace cab "F" elems;
  (* look for elements spread across the folder, including misses *)
  let probes =
    [ element 0; element (n / 2); element (n - 1); "absent-element" ]
  in
  let lookup_reps = max 200 (200_000 / n) in
  let folder_lookup_ns =
    time_ns lookup_reps (fun () ->
        List.iter (fun p -> ignore (Folder.contains folder p)) probes)
    /. float_of_int (List.length probes)
  in
  let cabinet_lookup_ns =
    time_ns (lookup_reps * 16) (fun () ->
        List.iter (fun p -> ignore (Cabinet.contains cab "F" p)) probes)
    /. float_of_int (List.length probes)
  in
  let move_reps = max 20 (20_000 / n) in
  (* moving a folder: serialise the briefcase that carries it *)
  let folder_move_us = time_ns move_reps (fun () -> ignore (Briefcase.serialize bc)) /. 1e3 in
  (* moving a cabinet: serialise the same contents AND rebuild the index at
     the destination *)
  let cabinet_move_us =
    time_ns move_reps (fun () ->
        let wire = Briefcase.serialize bc in
        let arrived = Briefcase.deserialize wire in
        let rebuilt = Cabinet.create () in
        Cabinet.replace rebuilt "F" (Folder.to_list (Briefcase.folder arrived "F")))
    /. 1e3
  in
  {
    elements = n;
    folder_lookup_ns;
    cabinet_lookup_ns;
    lookup_speedup = folder_lookup_ns /. Float.max 1.0 cabinet_lookup_ns;
    folder_move_us;
    cabinet_move_us;
    move_penalty = cabinet_move_us /. Float.max 0.001 folder_move_us;
  }

let default_sizes = [ 256; 1024; 4096; 16384 ]

let run ?(sizes = default_sizes) () = List.map measure sizes

let print_table fmt =
  let rows = run () in
  Table.render fmt
    ~title:"E3 folders vs cabinets: the mobility/access-time trade (host time)"
    ~header:
      [
        "elements"; "folder lookup ns"; "cabinet lookup ns"; "lookup speedup";
        "folder move us"; "cabinet move us"; "move penalty";
      ]
    (List.map
       (fun r ->
         [
           Table.I r.elements;
           Table.F2 r.folder_lookup_ns;
           Table.F2 r.cabinet_lookup_ns;
           Table.F2 r.lookup_speedup;
           Table.F2 r.folder_move_us;
           Table.F2 r.cabinet_move_us;
           Table.F2 r.move_penalty;
         ])
       rows)

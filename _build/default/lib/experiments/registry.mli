(** The experiment index: every table the harness can regenerate, keyed by
    the experiment ids used in DESIGN.md and EXPERIMENTS.md. *)

type entry = {
  id : string;           (** e.g. ["e1"] *)
  title : string;
  paper_claim : string;  (** the paper section and claim it reproduces *)
  print : Format.formatter -> unit;
}

val all : entry list
val find : string -> entry option
val run_all : Format.formatter -> unit

(** E6 — rear-guard fault tolerance (paper §5).

    Claim: rear guards "ensure that a computation can proceed, even though
    one or more of its agents is the victim of a site failure", with cycles
    and fan-out called out as the hard cases.

    Workload: agent computations over three itinerary shapes — a line, a
    cycle (sites revisited) and a fan-out tree — with one simulated second
    of work per stop, under Poisson site crashes of rate lambda per site per
    second.  Guarded and unguarded runs replay the {e same} fault schedule.

    Expected shape: without guards the completion probability decays
    rapidly with lambda (roughly the probability that no visited site fails
    under the agent); with guards it stays near 1 until simultaneous
    guard+agent failures become likely, at the price of relaunches and
    added latency. *)

type row = {
  shape : string;
  lambda : float;          (** crashes per site per second *)
  trials : int;
  guarded_completed : int;
  unguarded_completed : int;
  mean_relaunches : float;
  guarded_time : float;    (** mean completion time of completed runs *)
  unguarded_time : float;
}

type params = {
  trials : int;
  lambdas : float list;
  work_per_hop : float;
  mean_downtime : float;
  horizon : float;
}

val default_params : params
val run : ?params:params -> unit -> row list
val print_table : Format.formatter -> unit

(** E8 — the paper's applications (§6): StormCast and agent mail.

    {b E8a StormCast}: identical synthetic weather over a sensor network;
    the collector-agent architecture versus the client/server pull.
    Expected shape: identical predictions and accuracy, with the agent
    moving a small fraction of the bytes — the motivating claim of §1
    realised on the paper's own application.

    {b E8b agent mail}: a message burst between users on a crashing
    network, with a forwarding rule, a vacation auto-responder and a
    mailing list in play.  Expected shape: mail to healthy homes is
    delivered exactly once per recipient; messages racing a crashed home
    are the only losses (and are quantified). *)

type stormcast_row = {
  architecture : string;
  bytes_moved : int;
  readings_moved : int;
  completion_s : float;
  hit_rate : float;
  false_alarm_rate : float;
}

type mail_row = {
  scenario : string;
  sent : int;
  delivered : int;
  extra : string; (** scenario-specific note *)
}

type latency_row = {
  l_architecture : string;
  detections : int;
  mean_detection_latency : float; (** production of an anomalous reading to
                                      its arrival at the centre, seconds *)
  l_bytes : int;
}

val run_stormcast : ?stations:int -> ?hours:int -> unit -> stormcast_row list
val run_mail : unit -> mail_row list

val run_latency : ?stations:int -> ?hours:int -> unit -> latency_row list
(** {b E8c}: resident monitor agents (push) versus the roaming collector
    touring at the end of the observation window — same anomalies, but the
    push architecture detects them within a network round-trip while the
    tour waits for the collector. *)

val print_table : Format.formatter -> unit

(** E5 — broker scheduling by load and capacity (paper §4).

    Claim: "Brokers are expected to communicate among themselves and with
    the service providers, so that requests can be distributed amongst
    service providers based on load and capacity."

    Workload: a Poisson stream of jobs arrives at a client site; for each
    job the client consults the broker (whose view of provider load comes
    from the load-monitor agents' periodic, hence slightly stale, reports)
    and submits the job to the chosen provider's queue.  Providers are
    heterogeneous: capacities differ by 4x.

    Expected shape: load/capacity-aware policies (least-loaded, weighted)
    beat random and round-robin on makespan and mean response time, with
    the gap widening as utilisation grows; weighted also equalises
    busy-time per unit capacity (lowest imbalance). *)

type row = {
  policy : string;
  jobs : int;
  makespan : float;        (** last completion, seconds *)
  mean_response : float;   (** submission to completion *)
  p95_response : float;
  imbalance : float;       (** coefficient of variation of busy/capacity *)
}

type params = {
  providers : float list;  (** capacities *)
  jobs : int;
  mean_interarrival : float;
  work_per_job : float;
  report_period : float;
}

val default_params : params
val run : ?params:params -> unit -> row list
val print_table : Format.formatter -> unit

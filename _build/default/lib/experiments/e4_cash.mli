(** E4 — electronic cash: validation foils double spending; audits identify
    cheaters (paper §3).

    Two sub-tables:

    {b E4a}: a population of purchases in which a fraction of customers try
    to spend copies of already-spent bills.  A {e validating} merchant
    consults the validation agent before serving ("an attempt to spend
    retired or copied ECUs will be foiled if a validation agent is always
    consulted"); a {e naive} merchant accepts bills at face value.  Expected
    shape: the validating merchant's loss is zero at every attack rate,
    while the naive merchant's loss grows linearly with the attack rate.

    {b E4b}: witnessed purchases with honest/cheating customers and
    merchants in all four combinations; the court's verdict is compared to
    ground truth.  Expected shape: verdict accuracy 100%. *)

type row_a = {
  attack_rate : float;
  purchases : int;
  validating_loss : int;   (** cents lost by merchants who validate *)
  naive_loss : int;        (** cents lost by merchants who trust bills *)
  detected : int;          (** double-spends caught by the validator *)
}

type row_b = {
  customer : string;
  merchant : string;
  trials : int;
  correct_verdicts : int;
  verdict : string;        (** the (uniform) verdict the court returned *)
}

type row_c = {
  fuel_cents : int;
  damage : int;   (** junk cabinet entries a run-away wrote before dying *)
  survived : bool;
}

val run_a : ?purchases:int -> ?attack_rates:float list -> unit -> row_a list
val run_b : ?trials:int -> unit -> row_b list

val run_c : ?fuel_levels:int list -> unit -> row_c list
(** {b E4c}: "charging for services would limit possible damage by a
    run-away agent" — a spamming agent is launched with varying amounts of
    fuel; its damage must be proportional to the money it carried, and it
    must never survive. *)

val print_table : Format.formatter -> unit

module Kernel = Tacoma_core.Kernel
module Briefcase = Tacoma_core.Briefcase
module Net = Netsim.Net
module Topology = Netsim.Topology

type row = {
  topology : string;
  sites : int;
  method_ : string;
  executions : int;
  coverage : int;
  byte_hops : int;
  finished_at : float;
}

(* the message payload: meet [mark] delivers the flooded message *)
let naive_script = {|
  meet mark
  set ttl [folder peek TTL]
  if {$ttl > 0} {
    folder set TTL [expr {$ttl - 1}]
    foreach n [neighbors] {
      folder set CODE [selfcode]
      folder set HOST $n
      folder set CONTACT ag_script
      meet rexec
    }
  }
|}

let diameter topo =
  (* BFS from every site; graphs here are small *)
  let n = Topology.site_count topo in
  let worst = ref 0 in
  for src = 0 to n - 1 do
    let dist = Array.make n (-1) in
    dist.(src) <- 0;
    let q = Queue.create () in
    Queue.add src q;
    while not (Queue.is_empty q) do
      let u = Queue.pop q in
      List.iter
        (fun v ->
          if dist.(v) < 0 then begin
            dist.(v) <- dist.(u) + 1;
            Queue.add v q
          end)
        (Topology.neighbors topo u)
    done;
    Array.iter (fun d -> if d > !worst then worst := d) dist
  done;
  !worst

let instrumented_world topo =
  let net = Net.create topo in
  let k = Kernel.create net in
  let executions = ref 0 in
  let covered = Hashtbl.create 16 in
  let last_mark = ref 0.0 in
  Kernel.register_native k "mark" (fun ctx _ ->
      incr executions;
      last_mark := Kernel.now ctx.Kernel.kernel;
      Hashtbl.replace covered ctx.Kernel.site ());
  (net, k, executions, covered, last_mark)

let run_naive topo =
  let net, k, executions, covered, last_mark = instrumented_world topo in
  let bc = Briefcase.create () in
  Briefcase.set bc Briefcase.code_folder naive_script;
  Briefcase.set bc "TTL" (string_of_int (diameter topo));
  Kernel.launch k ~site:0 ~contact:"ag_script" bc;
  Net.run ~until:86_400.0 net;
  (!executions, Hashtbl.length covered, Netsim.Netstats.byte_hops (Net.stats net), !last_mark)

let run_diffusion topo =
  let net, k, executions, covered, last_mark = instrumented_world topo in
  let bc = Briefcase.create () in
  Briefcase.set bc Briefcase.contact_folder "mark";
  Kernel.launch k ~site:0 ~contact:"diffusion" bc;
  Net.run ~until:86_400.0 net;
  (!executions, Hashtbl.length covered, Netsim.Netstats.byte_hops (Net.stats net), !last_mark)

let topologies () =
  let rng = Tacoma_util.Rng.create 1234L in
  [
    ("ring-16", Topology.ring 16);
    ("grid-4x4", Topology.grid 4 4);
    ("random-12", Topology.random ~rng ~n:12 ~p:0.25 ());
  ]

let run () =
  List.concat_map
    (fun (tname, topo) ->
      let sites = Topology.site_count topo in
      let mk method_ (executions, coverage, byte_hops, finished_at) =
        { topology = tname; sites; method_; executions; coverage; byte_hops; finished_at }
      in
      [ mk "naive" (run_naive topo); mk "diffusion" (run_diffusion topo) ])
    (topologies ())

let print_table fmt =
  let rows = run () in
  Table.render fmt
    ~title:"E2 flooding: naive cloning vs diffusion with site-local visited folders"
    ~header:[ "topology"; "sites"; "method"; "agent runs"; "coverage"; "byte-hops"; "last delivery (s)" ]
    (List.map
       (fun r ->
         [
           Table.S r.topology;
           Table.I r.sites;
           Table.S r.method_;
           Table.I r.executions;
           Table.I r.coverage;
           Table.I r.byte_hops;
           Table.F2 r.finished_at;
         ])
       rows)

(** E2 — bounded flooding via site-local folders (paper §2).

    Claim: delivering a message at all sites by having each agent "create a
    clone of itself at every adjacent site" makes "the number of agents
    increase without bound"; recording visits in a site-local folder lets a
    clone "simply terminate — rather than clone — when it finds itself at a
    site that has already been visited".

    Both strategies run as real agents: the naive flooder is a TScript agent
    that re-ships its own source to every neighbour (with a TTL equal to the
    graph diameter so it terminates at full coverage); the bounded flooder
    is the [diffusion] system agent.  Expected shape: naive executions grow
    roughly like degree^diameter, diffusion stays at ~n, both reach every
    site. *)

type row = {
  topology : string;
  sites : int;
  method_ : string;        (** "naive" or "diffusion" *)
  executions : int;        (** times the payload agent ran *)
  coverage : int;          (** distinct sites reached *)
  byte_hops : int;
  finished_at : float;
}

val run : unit -> row list
val print_table : Format.formatter -> unit

(** E3 — folders move cheaply, cabinets access cheaply (paper §2).

    Claim: "elaborate index structures are not suitable for implementing the
    folders that accompany agents", while "file cabinets can be implemented
    using techniques that optimize access times even if this increases the
    cost of moving the file cabinet from one site to another."

    We measure both sides of the trade at several sizes, in host
    nanoseconds: membership lookups (folder scan vs cabinet hash index) and
    moves (folder serialisation vs cabinet serialisation + index rebuild).
    Expected shape: cabinet lookups are O(1) and folder lookups O(n), so the
    lookup ratio grows with n; cabinet moves cost strictly more than folder
    moves at every size. *)

type row = {
  elements : int;
  folder_lookup_ns : float;
  cabinet_lookup_ns : float;
  lookup_speedup : float;   (** folder / cabinet; grows with n *)
  folder_move_us : float;
  cabinet_move_us : float;
  move_penalty : float;     (** cabinet / folder; > 1 *)
}

val run : ?sizes:int list -> unit -> row list
val print_table : Format.formatter -> unit

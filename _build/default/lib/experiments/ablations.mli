(** Ablations over the design choices the reproduction makes, each isolating
    one mechanism:

    - {b A1} load-report staleness: how much of the broker's E5 win comes
      from fresh load information (report period swept up to "never");
    - {b A2} rear-guard tuning: guard patience (ack timeout) against wasted
      duplicate relaunches, and what durable (checkpointed) guards add;
    - {b A3} the kernel-wide Horus group: its background heartbeat cost
      versus what it buys — fast abort of retransmissions to dead sites;
    - {b A4} agent code size: how big the shipped CODE folder can get
      before the E1 bandwidth advantage evaporates. *)

type a1_row = { period : string; mean_response : float; p95_response : float }

type a2_row = {
  ack_timeout : float;
  durable : bool;
  completed : int;
  trials : int;
  relaunches : float;   (** per trial *)
  mean_time : float;
}

type a3_row = {
  group_on : bool;
  idle_bytes_per_s : float;  (** background cost on an idle 8-site mesh *)
  abort_latency : float;     (** giving up on a permanently dead target *)
}

type a4_row = { code_bytes : int; ratio : float (** c-s/agent at 5% selectivity *) }

type a5_row = {
  chain_length : int;     (** brokers between the client and the provider *)
  broker_hops : int;      (** hops the query actually travelled *)
  lookup_latency : float; (** request to reply, seconds *)
}

val run_a1 : unit -> a1_row list
val run_a2 : unit -> a2_row list
val run_a3 : unit -> a3_row list
val run_a4 : unit -> a4_row list

val run_a5 : ?chain_lengths:int list -> unit -> a5_row list
(** {b A5} the broker routing overlay (paper §4: "equivalent to routing in
    a wide-area network"): resolve a service registered [L] brokers away;
    hops equal the overlay distance and latency grows linearly. *)

val print_table : Format.formatter -> unit

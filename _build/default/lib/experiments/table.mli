(** Plain-text table rendering shared by the experiment harnesses: every
    experiment prints rows in the same aligned format so EXPERIMENTS.md can
    quote them directly. *)

type cell = S of string | I of int | F of float | F2 of float | Pct of float

val render : Format.formatter -> title:string -> header:string list -> cell list list -> unit
(** Column widths are computed from the contents; [F] prints with 4
    significant decimals, [F2] with 2, [Pct] as a percentage. *)

val cell_to_string : cell -> string

type cell = S of string | I of int | F of float | F2 of float | Pct of float

let cell_to_string = function
  | S s -> s
  | I i -> string_of_int i
  | F f -> Printf.sprintf "%.4f" f
  | F2 f -> Printf.sprintf "%.2f" f
  | Pct f -> Printf.sprintf "%.1f%%" (100.0 *. f)

let render fmt ~title ~header rows =
  let srows = List.map (List.map cell_to_string) rows in
  let ncols = List.length header in
  let widths = Array.of_list (List.map String.length header) in
  List.iter
    (fun row ->
      List.iteri (fun i c -> if i < ncols then widths.(i) <- max widths.(i) (String.length c)) row)
    srows;
  let pad i s = Printf.sprintf "%*s" widths.(i) s in
  let line = String.concat "-+-" (Array.to_list (Array.map (fun w -> String.make w '-') widths)) in
  Format.fprintf fmt "@.== %s ==@." title;
  Format.fprintf fmt "%s@." (String.concat " | " (List.mapi pad header));
  Format.fprintf fmt "%s@." line;
  List.iter
    (fun row -> Format.fprintf fmt "%s@." (String.concat " | " (List.mapi pad row)))
    srows

(** E7 — the three rexec transports (paper §6).

    Claim: the prototype has three [rexec] implementations — UNIX [rsh]
    (spawn a remote interpreter per hop), Tcl-TCP (direct connections) and
    Tcl/Horus (group communication with failure handling).  They trade
    startup cost, bytes and reliability differently.

    {b E7a} — cost: a 4-hop journey at several briefcase payload sizes;
    per-transport total time and bytes.  Expected shape: rsh is slowest
    (per-hop spawn dominates) and heaviest; tcp is lightest and fastest
    (handshake amortised over hops); horus sits between on bytes (acks) with
    near-tcp latency.

    {b E7b} — reliability: the destination site is down exactly when the
    migration is sent and restarts shortly after.  Expected shape: rsh and
    tcp lose the agent; horus retransmits until the site returns and the
    journey completes. *)

type cost_row = {
  transport : string;
  payload : int;
  journey_time : float;
  bytes : int;
}

type reliability_row = {
  r_transport : string;
  trials : int;
  delivered : int;
}

type loss_row = {
  l_transport : string;
  loss_rate : float;
  sent : int;
  arrived : int;
  extra_bytes : float; (** bytes per delivered agent, relative to tcp at 0 loss *)
}

val run_cost : ?hops:int -> ?payloads:int list -> unit -> cost_row list
val run_reliability : ?trials:int -> unit -> reliability_row list

val run_loss : ?agents:int -> ?loss_rates:float list -> unit -> loss_row list
(** {b E7c}: message loss instead of site crashes — horus retransmits to
    100% delivery at growing byte cost; rsh/tcp deliveries decay like
    [(1-p)]. *)

val print_table : Format.formatter -> unit

lib/baseline/rpc.mli: Netsim

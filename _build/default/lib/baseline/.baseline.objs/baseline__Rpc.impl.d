lib/baseline/rpc.ml: Hashtbl List Netsim String

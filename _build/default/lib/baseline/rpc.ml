module Net = Netsim.Net

type Netsim.Message.payload +=
  | Request of { rid : int; service : string; query : string; reply_to : Netsim.Site.id }
  | Response of { rid : int; data : string list }

let request_overhead = 96
let response_overhead = 96

type stats = { mutable requests : int; mutable response_bytes : int }

let rid_counter = ref 0
let pending : (int, string list -> unit) Hashtbl.t = Hashtbl.create 64

let data_bytes rows = List.fold_left (fun acc r -> acc + String.length r) 0 rows

let serve net ~site ~service handler =
  let stats = { requests = 0; response_bytes = 0 } in
  Net.set_handler net site ~key:("rpc:" ^ service) (fun msg ->
      match msg.Netsim.Message.payload with
      | Request { rid; service = s; query; reply_to } when s = service ->
        stats.requests <- stats.requests + 1;
        let rows = handler ~query in
        let size = response_overhead + data_bytes rows in
        stats.response_bytes <- stats.response_bytes + size;
        Net.send net ~src:site ~dst:reply_to ~size (Response { rid; data = rows })
      | Request _ | Response _ | _ -> ());
  stats

let ensure_client net src =
  Net.set_handler net src ~key:"rpc-client" (fun msg ->
      match msg.Netsim.Message.payload with
      | Response { rid; data } -> (
        match Hashtbl.find_opt pending rid with
        | Some k ->
          Hashtbl.remove pending rid;
          k data
        | None -> ())
      | Request _ | _ -> ())

let call net ~src ~dst ~service ~query ~on_reply =
  ensure_client net src;
  incr rid_counter;
  let rid = !rid_counter in
  Hashtbl.replace pending rid on_reply;
  Net.send net ~src ~dst
    ~size:(request_overhead + String.length query)
    (Request { rid; service; query; reply_to = src })

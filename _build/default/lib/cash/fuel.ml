module Kernel = Tacoma_core.Kernel
module Briefcase = Tacoma_core.Briefcase
module Folder = Tacoma_core.Folder

let fuel_folder = "FUEL"

let grant mint bc ~cents =
  if cents > 0 then
    Folder.enqueue (Briefcase.folder bc fuel_folder) (Ecu.wire (Mint.issue mint ~amount:cents))

let balance bc =
  Folder.fold
    (fun acc w -> match Ecu.of_wire w with Ok e -> acc + e.Ecu.amount | Error _ -> acc)
    0
    (Briefcase.folder bc fuel_folder)

let install kernel mint ~steps_per_cent ~courtesy =
  Kernel.set_step_policy kernel
    (Some
       (fun bc ->
         (* drain and redeem: fuel is burned on admission, whether or not
            the agent uses all of it (cycles are a service, not a loan) *)
         let folder = Briefcase.folder bc fuel_folder in
         let rec redeem_all acc =
           match Folder.pop folder with
           | None -> acc
           | Some wire -> (
             match Ecu.of_wire wire with
             | Error _ -> redeem_all acc (* junk element: worthless *)
             | Ok bill -> (
               match Mint.redeem mint bill with
               | Ok cents -> redeem_all (acc + cents)
               | Error _ -> redeem_all acc (* forged or copied: worthless *)))
         in
         let cents = redeem_all 0 in
         Some (courtesy + (cents * steps_per_cent))))

let uninstall kernel = Kernel.set_step_policy kernel None

type t = { amount : int; serial : string; signature : string }

let wire e = Printf.sprintf "%d:%s:%s" e.amount e.serial e.signature

let of_wire s =
  match String.split_on_char ':' s with
  | [ amount; serial; signature ] -> (
    match int_of_string_opt amount with
    | Some amount when amount > 0 ->
      if Tacoma_util.Hexutil.is_hex serial && Tacoma_util.Hexutil.is_hex signature then
        Ok { amount; serial; signature }
      else Error "serial/signature not hex"
    | Some _ -> Error "non-positive amount"
    | None -> Error "bad amount")
  | _ -> Error "expected amount:serial:signature"

let of_wire_exn s =
  match of_wire s with
  | Ok e -> e
  | Error msg -> invalid_arg ("Ecu.of_wire_exn: " ^ msg)

let wire_list es = List.map wire es
let total es = List.fold_left (fun acc e -> acc + e.amount) 0 es
let pp fmt e = Format.fprintf fmt "ECU(%d, %s...)" e.amount (String.sub e.serial 0 8)

(** An agent's money: the set of ECU records it carries (paper §3: "each
    agent stores records for the ECUs it owns"; funds transfer is placing
    those records in a briefcase). *)

type t

val create : unit -> t
val add : t -> Ecu.t -> unit
val add_all : t -> Ecu.t list -> unit
val balance : t -> int
val bills : t -> Ecu.t list
val count : t -> int

val take_exact : t -> amount:int -> Ecu.t list option
(** Remove a subset of bills summing exactly to [amount], if one exists
    (largest-first greedy with backtracking — bill counts are small). *)

val take_at_least : t -> amount:int -> Ecu.t list option
(** Remove a minimal-overshoot subset covering [amount]. *)

val remove_serials : t -> string list -> unit

(** {1 Briefcase plumbing}

    Money moves between agents by placing ECU records in a folder. *)

val to_folder : t -> Tacoma_core.Folder.t -> unit
(** Append every bill (wire form) to the folder, emptying the wallet. *)

val of_folder : Tacoma_core.Folder.t -> t
(** Drain a folder of ECU records (malformed elements are skipped). *)

(** The audit scheme of paper §3.

    The paper rejects transactional exchange of money for services and
    instead has participants {e document their actions} so that a third
    party can audit: "Documenting actions sometimes requires the presence of
    a third agent" — here a {e witness} agent through which both the payment
    and the service handoff are routed.  The witness logs signed statements
    (but never cash serials or account identities — untraceability is
    preserved); a {e court} examines the log when an aggrieved agent
    requests an audit, and the cheating party is identified. *)

(** {1 Signed statements} *)

type statement = {
  tx : string;      (** transaction id *)
  action : string;  (** ["pay"] or ["serve"] *)
  actor : string;   (** party name *)
  amount : int;
  at : float;
  signature : string;
}

val sign :
  key:string -> tx:string -> action:string -> actor:string -> amount:int -> at:float ->
  statement

val statement_valid : key:string -> statement -> bool
val statement_wire : statement -> string
val statement_of_wire : string -> (statement, string) result

(** {1 The court} *)

type verdict =
  | Clean             (** both actions documented *)
  | Merchant_cheated  (** payment witnessed, no service by the deadline *)
  | Customer_cheated  (** service witnessed, no (valid) payment *)
  | No_transaction    (** nothing witnessed for this tx *)

val verdict_name : verdict -> string

val judge :
  keys:(string * string) list ->
  log:statement list ->
  tx:string ->
  verdict
(** Pure decision over a witness log.  Statements whose signatures do not
    verify under the registered party keys are ignored — a forged claim
    cannot sway the court. *)

(** {1 Agents} *)

val witness_log_folder : string

val install_witness : Tacoma_core.Kernel.t -> site:Netsim.Site.id -> unit
(** Registers the [witness] agent: it appends the briefcase's [STMT] to its
    site cabinet log and forwards the briefcase to [FORWARD-HOST] /
    [FORWARD-AGENT]. *)

val install_court :
  Tacoma_core.Kernel.t -> site:Netsim.Site.id -> keys:(string * string) list -> unit
(** Registers the [court] agent at the witness's site.  Meet protocol: [TX]
    names the transaction; on return [VERDICT] holds the verdict name. *)

val read_witness_log : Tacoma_core.Kernel.t -> site:Netsim.Site.id -> statement list

(** {1 A complete purchase choreography}

    Used by the E4 experiment and the marketplace example: a customer pays a
    merchant through the witness; the merchant validates the cash with the
    bank's validator before serving. *)

type behavior = Honest | Cheat

type purchase = {
  p_tx : string;
  mutable merchant_accepted : bool; (** validator said the cash was good *)
  mutable merchant_rejected : bool; (** validator refused the cash *)
  mutable customer_served : bool;   (** service reached the customer *)
  mutable merchant_bills : Ecu.t list; (** fresh bills the merchant now owns *)
}

val purchase :
  Tacoma_core.Kernel.t ->
  tx:string ->
  amount:int ->
  bills:Ecu.t list ->
  customer:string * string * behavior ->
  merchant:string * string * behavior ->
  customer_site:Netsim.Site.id ->
  merchant_site:Netsim.Site.id ->
  witness_site:Netsim.Site.id ->
  bank_site:Netsim.Site.id ->
  purchase
(** Starts the choreography (asynchronous; drive the network to a quiescent
    point, then inspect the returned record and ask the court).  A cheating
    customer sends the payment {e around} the witness (unlogged) hoping to
    repudiate it; a cheating merchant banks the cash but never serves. *)

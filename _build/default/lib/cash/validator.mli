(** The trusted validation agent (paper §3).

    Installed at a bank site; other agents meet it (after travelling there —
    the agent metaphor at work) or call it remotely through the kernel's
    briefcase messaging.  "An attempt by an agent to spend retired or copied
    ECUs will be foiled if a validation agent is always consulted before any
    service is rendered."

    Meet protocol (briefcase folders):
    - [OP]: ["validate"] | ["split"] | ["merge"]
    - [ECUS]: input bills in wire form
    - [PARTS] (split only): the amounts to produce
    - on return, [STATUS] is ["ok"] (with [ECUS] holding fresh bills) or a
      failure name with [ECUS] emptied. *)

val agent_name : string
(** ["validator"]. *)

val install : Tacoma_core.Kernel.t -> site:Netsim.Site.id -> Mint.t -> unit
(** Registers the [validator] meet agent and the [validator_rpc] remote
    endpoint at the bank site. *)

val remote_validate :
  Tacoma_core.Kernel.t ->
  src:Netsim.Site.id ->
  bank:Netsim.Site.id ->
  Ecu.t list ->
  on_reply:((Ecu.t list, string) result -> unit) ->
  unit
(** Round-trip validation over the network: bills travel to the bank in a
    briefcase, fresh bills (or a failure name) come back.  [on_reply] fires
    at most once; if the bank is unreachable it never fires — callers
    needing a timeout arm one on the engine. *)

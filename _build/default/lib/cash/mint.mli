(** The mint: issuing authority and live-serial registry.

    The paper's validation-agent scheme in one mechanism: a valid ECU is one
    whose signature verifies {e and} whose serial is still live in the
    registry.  Validation {e retires} the old serial and issues an
    equivalent fresh ECU ("effectively retiring an old bill and replacing it
    by a new one"), so a copied bill spends at most once.  The registry maps
    serials to nothing but amounts — no owners — preserving untraceability. *)

type t

type failure =
  | Forged       (** signature does not verify *)
  | Double_spent (** signature fine, but the serial was already retired *)

val failure_name : failure -> string

val create : ?seed:int64 -> secret:string -> unit -> t

val issue : t -> amount:int -> Ecu.t
(** Mint new money (registers a fresh live serial).
    @raise Invalid_argument on non-positive amounts. *)

val signature_valid : t -> Ecu.t -> bool
val live : t -> Ecu.t -> bool

val validate_and_reissue : t -> Ecu.t -> (Ecu.t, failure) result
(** The §3 validation: check, retire, replace.  On failure nothing is
    retired. *)

val split : t -> Ecu.t -> parts:int list -> (Ecu.t list, failure) result
(** Retire one bill, issue several summing to the same amount (exact-change
    making).  @raise Invalid_argument if [parts] are non-positive or do not
    sum to the bill's amount. *)

val merge : t -> Ecu.t list -> (Ecu.t, failure) result
(** Retire several bills, issue one for the total.  Fails atomically: if any
    input is bad, none are retired. *)

val redeem : t -> Ecu.t -> (int, failure) result
(** Retire a bill for good (no reissue) and return its value — burning fuel,
    settling a payment into an external account, etc.  Money leaves
    circulation: [outstanding] decreases. *)

val outstanding : t -> int
(** Total value of live serials — conservation checks in tests. *)

val retired_count : t -> int

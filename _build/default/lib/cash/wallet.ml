type t = { mutable bills : Ecu.t list }

let create () = { bills = [] }
let add t e = t.bills <- e :: t.bills
let add_all t es = List.iter (add t) es
let balance t = Ecu.total t.bills
let bills t = t.bills
let count t = List.length t.bills

(* exact-subset-sum with largest-first ordering; bill counts in agent
   wallets are small, so exponential worst case is irrelevant in practice *)
let find_exact bills amount =
  let sorted = List.sort (fun a b -> compare b.Ecu.amount a.Ecu.amount) bills in
  let rec go chosen remaining target =
    if target = 0 then Some chosen
    else
      match remaining with
      | [] -> None
      | b :: rest ->
        if b.Ecu.amount > target then go chosen rest target
        else (
          match go (b :: chosen) rest (target - b.Ecu.amount) with
          | Some r -> Some r
          | None -> go chosen rest target)
  in
  go [] sorted amount

let remove_serials t serials =
  t.bills <- List.filter (fun b -> not (List.mem b.Ecu.serial serials)) t.bills

let take_exact t ~amount =
  if amount <= 0 then None
  else
    match find_exact t.bills amount with
    | None -> None
    | Some chosen ->
      remove_serials t (List.map (fun b -> b.Ecu.serial) chosen);
      Some chosen

let take_at_least t ~amount =
  if amount <= 0 then None
  else if balance t < amount then None
  else
    match find_exact t.bills amount with
    | Some chosen ->
      remove_serials t (List.map (fun b -> b.Ecu.serial) chosen);
      Some chosen
    | None ->
      (* no exact subset: take smallest bills until covered, which keeps the
         overshoot at most one bill *)
      let sorted = List.sort (fun a b -> compare a.Ecu.amount b.Ecu.amount) t.bills in
      let rec cover acc sum = function
        | [] -> acc
        | b :: rest -> if sum >= amount then acc else cover (b :: acc) (sum + b.Ecu.amount) rest
      in
      let chosen = cover [] 0 sorted in
      remove_serials t (List.map (fun b -> b.Ecu.serial) chosen);
      Some chosen

let to_folder t folder =
  List.iter (fun b -> Tacoma_core.Folder.enqueue folder (Ecu.wire b)) (List.rev t.bills);
  t.bills <- []

let of_folder folder =
  let t = create () in
  let rec drain () =
    match Tacoma_core.Folder.pop folder with
    | None -> ()
    | Some elem ->
      (match Ecu.of_wire elem with Ok e -> add t e | Error _ -> ());
      drain ()
  in
  drain ();
  t

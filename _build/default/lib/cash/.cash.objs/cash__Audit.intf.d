lib/cash/audit.mli: Ecu Netsim Tacoma_core

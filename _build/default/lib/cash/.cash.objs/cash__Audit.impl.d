lib/cash/audit.ml: Ecu List Printf Result String Tacoma_core Tacoma_util Validator

lib/cash/mint.mli: Ecu

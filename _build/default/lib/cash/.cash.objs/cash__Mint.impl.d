lib/cash/mint.ml: Ecu Hashtbl List Printf String Tacoma_util

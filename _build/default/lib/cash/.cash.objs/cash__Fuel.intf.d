lib/cash/fuel.mli: Mint Tacoma_core

lib/cash/ecu.ml: Format List Printf String Tacoma_util

lib/cash/wallet.ml: Ecu List Tacoma_core

lib/cash/ecu.mli: Format

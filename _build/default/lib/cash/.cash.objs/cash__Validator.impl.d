lib/cash/validator.ml: Ecu List Mint Option Printf Tacoma_core

lib/cash/validator.mli: Ecu Mint Netsim Tacoma_core

lib/cash/wallet.mli: Ecu Tacoma_core

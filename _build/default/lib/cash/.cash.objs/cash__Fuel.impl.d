lib/cash/fuel.ml: Ecu Mint Tacoma_core

(** Electronic currency units (paper §3).

    Following [C92] (Chaum), each unit is "a record containing an amount and
    a large random number"; only certain random numbers correspond to valid
    ECUs.  We realise "certain numbers" with a mint signature: an HMAC over
    amount and serial under the mint's secret key — unforgeable without the
    key, and carrying no payer/payee information (untraceability). *)

type t = {
  amount : int;      (** in cents; positive *)
  serial : string;   (** 32 hex chars, drawn at mint *)
  signature : string (** 64 hex chars, HMAC-SHA-256 by the mint *)
}

val wire : t -> string
(** One-line encoding ["amount:serial:signature"] — what lives in folders
    and briefcases when money moves between agents. *)

val of_wire : string -> (t, string) result

val of_wire_exn : string -> t
(** @raise Invalid_argument on malformed input. *)

val wire_list : t list -> string list
val total : t list -> int
val pp : Format.formatter -> t -> unit

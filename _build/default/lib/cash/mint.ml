module Sha256 = Tacoma_util.Sha256
module Hexutil = Tacoma_util.Hexutil
module Rng = Tacoma_util.Rng

type failure = Forged | Double_spent

let failure_name = function Forged -> "forged" | Double_spent -> "double-spent"

type t = {
  secret : string;
  rng : Rng.t;
  live : (string, int) Hashtbl.t; (* serial -> amount *)
  mutable retired : int;
}

let create ?(seed = 7321L) ~secret () =
  { secret; rng = Rng.create seed; live = Hashtbl.create 64; retired = 0 }

let sign t ~amount ~serial =
  Sha256.hmac_hex ~key:t.secret (Printf.sprintf "ecu|%d|%s" amount serial)

let issue t ~amount =
  if amount <= 0 then invalid_arg "Mint.issue: non-positive amount";
  let serial = Hexutil.encode (Rng.bytes t.rng 16) in
  Hashtbl.replace t.live serial amount;
  { Ecu.amount; serial; signature = sign t ~amount ~serial }

let signature_valid t (e : Ecu.t) =
  String.equal (sign t ~amount:e.Ecu.amount ~serial:e.Ecu.serial) e.Ecu.signature

let live t (e : Ecu.t) =
  match Hashtbl.find_opt t.live e.Ecu.serial with
  | Some amount -> amount = e.Ecu.amount
  | None -> false

let check t e = if not (signature_valid t e) then Some Forged
  else if not (live t e) then Some Double_spent
  else None

let retire t (e : Ecu.t) =
  Hashtbl.remove t.live e.Ecu.serial;
  t.retired <- t.retired + 1

let validate_and_reissue t e =
  match check t e with
  | Some f -> Error f
  | None ->
    retire t e;
    Ok (issue t ~amount:e.Ecu.amount)

let split t e ~parts =
  if parts = [] || List.exists (fun p -> p <= 0) parts then
    invalid_arg "Mint.split: parts must be positive";
  if List.fold_left ( + ) 0 parts <> e.Ecu.amount then
    invalid_arg "Mint.split: parts must sum to the bill amount";
  match check t e with
  | Some f -> Error f
  | None ->
    retire t e;
    Ok (List.map (fun amount -> issue t ~amount) parts)

let merge t es =
  match es with
  | [] -> invalid_arg "Mint.merge: no bills"
  | _ -> (
    (* atomic: verify everything before retiring anything; also reject
       duplicate serials within the batch (spending a copy against itself) *)
    let serials = List.map (fun e -> e.Ecu.serial) es in
    let distinct = List.sort_uniq compare serials in
    if List.length distinct <> List.length serials then Error Double_spent
    else
      match List.find_map (check t) es with
      | Some f -> Error f
      | None ->
        List.iter (retire t) es;
        Ok (issue t ~amount:(Ecu.total es)))

let redeem t e =
  match check t e with
  | Some f -> Error f
  | None ->
    retire t e;
    Ok e.Ecu.amount

let outstanding t = Hashtbl.fold (fun _ amount acc -> acc + amount) t.live 0
let retired_count t = t.retired

(** Fuel: execution metered by electronic cash (paper §3).

    "We also hoped that electronic cash would provide a mechanism for
    controlling run-away agents.  Specifically, charging for services would
    limit possible damage by a run-away agent."

    An agent carries ECUs in its [FUEL] folder.  When a script activation
    starts, the place drains that folder, redeems the bills at the mint
    (they leave circulation — cycles were bought), and grants an
    interpreter step budget of [courtesy + cents * steps_per_cent].
    Forged, copied or absent fuel buys only the courtesy budget; a run-away
    agent dies when its budget runs out, and the damage it can do is
    proportional to the money it carried. *)

val install :
  Tacoma_core.Kernel.t -> Mint.t -> steps_per_cent:int -> courtesy:int -> unit
(** Set the kernel's step policy to the mint-backed fuel scheme. *)

val uninstall : Tacoma_core.Kernel.t -> unit

val fuel_folder : string
(** ["FUEL"]. *)

val grant : Mint.t -> Tacoma_core.Briefcase.t -> cents:int -> unit
(** Mint fresh bills straight into the briefcase's fuel folder. *)

val balance : Tacoma_core.Briefcase.t -> int
(** Face value of the bills currently in the fuel folder (unverified). *)

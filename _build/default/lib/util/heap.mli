(** Array-backed binary min-heap, the spine of the simulator's event queue. *)

type 'a t

val create : cmp:('a -> 'a -> int) -> 'a t
(** [create ~cmp] is an empty heap ordered by [cmp] (smallest first). *)

val length : 'a t -> int
val is_empty : 'a t -> bool

val push : 'a t -> 'a -> unit

val pop : 'a t -> 'a option
(** Remove and return the smallest element. *)

val peek : 'a t -> 'a option

val clear : 'a t -> unit

val to_list : 'a t -> 'a list
(** Snapshot of the contents in no particular order. *)

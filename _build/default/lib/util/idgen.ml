type t = { prefix : string; mutable counter : int }

let create ?(prefix = "id") () = { prefix; counter = 0 }

let next_int t =
  let n = t.counter in
  t.counter <- n + 1;
  n

let next t = Printf.sprintf "%s-%d" t.prefix (next_int t)

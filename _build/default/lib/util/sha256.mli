(** From-scratch SHA-256 and HMAC-SHA-256.

    The electronic-cash substrate (paper §3) needs an unforgeable mint
    signature and unguessable serial numbers; the sealed environment has no
    crypto library, so we implement FIPS 180-4 SHA-256 directly.  This is a
    reference implementation tuned for clarity, not side-channel safety —
    the adversaries here are simulated agents, not hardware probes. *)

val digest : string -> string
(** [digest msg] is the 32-byte (raw) SHA-256 digest of [msg]. *)

val hex_digest : string -> string
(** [hex_digest msg] is the 64-character lowercase-hex digest. *)

val hmac : key:string -> string -> string
(** [hmac ~key msg] is the 32-byte raw HMAC-SHA-256 (RFC 2104). *)

val hmac_hex : key:string -> string -> string

let hex_chars = "0123456789abcdef"

let encode s =
  let n = String.length s in
  let b = Bytes.create (2 * n) in
  for i = 0 to n - 1 do
    let c = Char.code s.[i] in
    Bytes.set b (2 * i) hex_chars.[c lsr 4];
    Bytes.set b ((2 * i) + 1) hex_chars.[c land 0xF]
  done;
  Bytes.unsafe_to_string b

let nibble c =
  match c with
  | '0' .. '9' -> Char.code c - Char.code '0'
  | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
  | _ -> invalid_arg "Hexutil.decode: not a hex digit"

let decode s =
  let n = String.length s in
  if n mod 2 <> 0 then invalid_arg "Hexutil.decode: odd length";
  String.init (n / 2) (fun i -> Char.chr ((nibble s.[2 * i] lsl 4) lor nibble s.[(2 * i) + 1]))

let is_hex s =
  String.length s mod 2 = 0
  && String.for_all
       (fun c ->
         match c with '0' .. '9' | 'a' .. 'f' | 'A' .. 'F' -> true | _ -> false)
       s

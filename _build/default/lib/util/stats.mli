(** Small numerical summaries used by experiment harnesses. *)

val mean : float list -> float
(** Mean; 0.0 on the empty list. *)

val stddev : float list -> float
(** Population standard deviation; 0.0 on lists shorter than 2. *)

val percentile : float -> float list -> float
(** [percentile p xs] with [p] in [\[0,100\]], nearest-rank on the sorted
    data; 0.0 on the empty list. *)

val min_max : float list -> float * float
(** (0., 0.) on the empty list. *)

val sum : float list -> float

type accumulator
(** Streaming accumulator (Welford) for long-running collections. *)

val acc_create : unit -> accumulator
val acc_add : accumulator -> float -> unit
val acc_count : accumulator -> int
val acc_mean : accumulator -> float
val acc_stddev : accumulator -> float

(** Monotonic id generators.  Each subsystem keeps its own generator so that
    ids are stable under changes elsewhere in the system. *)

type t

val create : ?prefix:string -> unit -> t

val next : t -> string
(** [next t] is a fresh id such as ["agent-17"]. *)

val next_int : t -> int
(** Fresh integer id, starting at 0. *)

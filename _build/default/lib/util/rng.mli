(** Deterministic splittable pseudo-random number generator (splitmix64).

    Every stochastic component of the simulator draws from one of these
    streams.  Streams are split, never shared, so adding a new consumer
    does not perturb the draws seen by existing ones — experiments stay
    reproducible as the system grows. *)

type t

val create : int64 -> t
(** [create seed] makes a fresh stream.  Equal seeds give equal streams. *)

val split : t -> t
(** [split t] derives an independent stream and advances [t]. *)

val int64 : t -> int64
(** Next raw 64-bit draw. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  [bound] must be positive. *)

val float : t -> float
(** Uniform in [\[0, 1)]. *)

val bool : t -> bool

val range_float : t -> float -> float -> float
(** [range_float t lo hi] is uniform in [\[lo, hi)]. *)

val exponential : t -> mean:float -> float
(** Exponentially distributed draw with the given mean; used for failure
    inter-arrival times. *)

val gaussian : t -> mu:float -> sigma:float -> float
(** Normally distributed draw (Box–Muller). *)

val pick : t -> 'a array -> 'a
(** Uniform choice from a non-empty array. *)

val pick_list : t -> 'a list -> 'a
(** Uniform choice from a non-empty list. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val bytes : t -> int -> string
(** [bytes t n] is an [n]-byte uniformly random string. *)

let sum = List.fold_left ( +. ) 0.0

let mean xs =
  match xs with [] -> 0.0 | _ -> sum xs /. float_of_int (List.length xs)

let stddev xs =
  match xs with
  | [] | [ _ ] -> 0.0
  | _ ->
    let m = mean xs in
    let var = mean (List.map (fun x -> (x -. m) ** 2.0) xs) in
    sqrt var

let percentile p xs =
  match xs with
  | [] -> 0.0
  | _ ->
    let arr = Array.of_list xs in
    Array.sort compare arr;
    let n = Array.length arr in
    let rank = int_of_float (ceil (p /. 100.0 *. float_of_int n)) in
    let idx = max 0 (min (n - 1) (rank - 1)) in
    arr.(idx)

let min_max xs =
  match xs with
  | [] -> (0.0, 0.0)
  | x :: rest ->
    List.fold_left (fun (lo, hi) v -> (min lo v, max hi v)) (x, x) rest

type accumulator = {
  mutable count : int;
  mutable m : float; (* running mean *)
  mutable s : float; (* running sum of squared deviations *)
}

let acc_create () = { count = 0; m = 0.0; s = 0.0 }

let acc_add a x =
  a.count <- a.count + 1;
  let delta = x -. a.m in
  a.m <- a.m +. (delta /. float_of_int a.count);
  a.s <- a.s +. (delta *. (x -. a.m))

let acc_count a = a.count
let acc_mean a = a.m
let acc_stddev a = if a.count < 2 then 0.0 else sqrt (a.s /. float_of_int a.count)

lib/util/idgen.ml: Printf

lib/util/hexutil.mli:

lib/util/heap.mli:

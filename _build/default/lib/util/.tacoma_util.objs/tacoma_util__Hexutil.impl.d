lib/util/hexutil.ml: Bytes Char String

lib/util/sha256.ml: Array Bytes Char Hexutil Int32 Int64 String

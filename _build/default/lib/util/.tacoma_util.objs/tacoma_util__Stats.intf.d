lib/util/stats.mli:

lib/util/rng.mli:

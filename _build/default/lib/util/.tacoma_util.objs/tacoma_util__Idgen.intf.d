lib/util/idgen.mli:

(** Hex encoding for binary folder contents, digests and serial numbers. *)

val encode : string -> string
(** Lowercase hex of every byte. *)

val decode : string -> string
(** Inverse of [encode].  @raise Invalid_argument on malformed input. *)

val is_hex : string -> bool

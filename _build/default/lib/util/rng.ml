type t = { mutable state : int64 }

let create seed = { state = seed }

(* splitmix64: Steele, Lea & Flood, "Fast splittable pseudorandom number
   generators" (OOPSLA 2014).  Chosen because split streams are cheap and
   statistically independent, which is what keeps experiments stable when
   new consumers are added. *)
let int64 t =
  t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L
  in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL
  in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t = create (int64 t)

let int t bound =
  assert (bound > 0);
  let mask = Int64.shift_right_logical (int64 t) 1 in
  Int64.to_int (Int64.rem mask (Int64.of_int bound))

let float t =
  (* 53 random bits scaled into [0, 1). *)
  let bits = Int64.shift_right_logical (int64 t) 11 in
  Int64.to_float bits *. (1.0 /. 9007199254740992.0)

let bool t = Int64.logand (int64 t) 1L = 1L
let range_float t lo hi = lo +. ((hi -. lo) *. float t)

let exponential t ~mean =
  let u = float t in
  -.mean *. log (1.0 -. u)

let gaussian t ~mu ~sigma =
  let u1 = max epsilon_float (float t) in
  let u2 = float t in
  let z = sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2) in
  mu +. (sigma *. z)

let pick t arr =
  assert (Array.length arr > 0);
  arr.(int t (Array.length arr))

let pick_list t l =
  match l with
  | [] -> invalid_arg "Rng.pick_list: empty list"
  | _ -> List.nth l (int t (List.length l))

let shuffle t arr =
  let n = Array.length arr in
  for i = n - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let bytes t n =
  String.init n (fun _ -> Char.chr (int t 256))

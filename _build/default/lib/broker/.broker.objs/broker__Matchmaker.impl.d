lib/broker/matchmaker.ml: Hashtbl List Netsim Option Policy Printf Provider Tacoma_core Tacoma_util

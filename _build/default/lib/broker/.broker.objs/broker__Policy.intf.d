lib/broker/policy.mli: Tacoma_util

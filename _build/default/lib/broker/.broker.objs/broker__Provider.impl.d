lib/broker/provider.ml: Float List Netsim Option Queue Tacoma_core Ticket

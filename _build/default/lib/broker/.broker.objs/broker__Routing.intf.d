lib/broker/routing.mli: Matchmaker Policy Tacoma_core

lib/broker/matchmaker.mli: Netsim Policy Provider Tacoma_core

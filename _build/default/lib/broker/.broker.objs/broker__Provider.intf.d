lib/broker/provider.mli: Netsim Tacoma_core

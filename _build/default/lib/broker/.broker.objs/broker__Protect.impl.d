lib/broker/protect.ml: List Netsim Option Tacoma_core

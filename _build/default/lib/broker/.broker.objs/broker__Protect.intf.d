lib/broker/protect.mli: Netsim Tacoma_core

lib/broker/policy.ml: Float List String Tacoma_util

lib/broker/ticket.ml: Printf String Tacoma_core Tacoma_util

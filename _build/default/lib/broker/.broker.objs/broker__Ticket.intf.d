lib/broker/ticket.mli: Netsim Tacoma_core

lib/broker/routing.ml: Hashtbl List Matchmaker Netsim Option Policy Printf String Tacoma_core

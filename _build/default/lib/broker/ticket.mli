(** Access tickets.  The TACOMA prototype's scheduling service uses an agent
    that "issues tickets to allow access to the service" (paper §6): a
    ticket is a signed capability with an expiry; providers refuse jobs
    whose ticket does not verify. *)

type t = { service : string; job : string; expires : float; signature : string }

val issue : key:string -> service:string -> job:string -> now:float -> ttl:float -> t
val valid : key:string -> now:float -> t -> bool
val wire : t -> string
val of_wire : string -> (t, string) result

val install_agent :
  Tacoma_core.Kernel.t -> site:Netsim.Site.id -> key:string -> ttl:float -> unit
(** Registers the [ticket] agent: meet with [SERVICE] and [JOB] folders set;
    it writes the [TICKET] folder. *)

(** Request-distribution policies (paper §4: "requests can be distributed
    amongst service providers based on load and capacity"). *)

type t =
  | Random
  | Round_robin
  | Least_loaded   (** lowest queue-length report wins *)
  | Weighted       (** lowest load/capacity ratio wins *)

val of_string : string -> t option
val name : t -> string
val all : t list

type candidate = {
  provider : string;        (** provider agent name *)
  host : string;            (** site name *)
  capacity : float;         (** nominal service rate multiplier *)
  load : float;             (** last reported queue length *)
  report_age : float;       (** seconds since that report *)
}

val choose :
  t -> rng:Tacoma_util.Rng.t -> rr_counter:int ref -> candidate list -> candidate option
(** Pick a provider.  Deterministic given the RNG stream and counter. *)

(** Service providers: single-server FIFO queues over the kernel.

    A provider with capacity [c] serves a job of nominal [WORK] seconds in
    [WORK / c] simulated seconds, one job at a time.  Queue length is kept
    in the site cabinet under ["LOAD"] (key ["queue"]) so the load-monitor
    agent (paper §6's "agent responsible for monitoring the status of a
    site") can report it to brokers.

    Job briefcase protocol: [SERVICE], [JOB], [WORK], optional [TICKET], and
    [REPLY-HOST]/[REPLY-AGENT] for the completion notice. *)

type t

val install :
  Tacoma_core.Kernel.t ->
  site:Netsim.Site.id ->
  name:string ->
  service:string ->
  capacity:float ->
  ?ticket_key:string ->
  unit ->
  t
(** Registers the provider agent under [name].  When [ticket_key] is given,
    jobs without a currently-valid ticket are rejected (counted, replied
    with [STATUS] ["rejected"]). *)

val name : t -> string
val service : t -> string
val capacity : t -> float
val site : t -> Netsim.Site.id
val queue_length : t -> int
val completed : t -> int
val rejected : t -> int
val busy_time : t -> float
(** Total simulated seconds spent serving — utilisation measurements. *)

val start_load_monitor :
  Tacoma_core.Kernel.t ->
  t ->
  brokers:(Netsim.Site.id * string) list ->
  period:float ->
  unit
(** The monitoring agent: every [period] seconds, courier the provider's
    current queue length and capacity to each broker. *)

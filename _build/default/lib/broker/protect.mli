(** Protected-agent brokering (paper §4).

    "Another use of broker agents is to enforce some protected agent's
    policies with regard to meeting other agents.  This is accomplished by
    keeping the name of the protected agent secret from all but its broker
    ...  the broker maintains a folder for each agent that has requested a
    meeting ...  This folder contains the agent that has requested the
    meeting (along with its briefcase).  Notice that this scheme is possible
    only because folders are uninterpreted and typeless and, therefore, can
    themselves store agents and sets of folders."

    The broker queues each request — the requester's whole serialised
    briefcase, stored inside a folder — and releases them to the protected
    agent according to a policy (here: a rate limit and an allow-list). *)

type t

type policy = {
  allowed : string list option; (** requester names; [None] = anyone *)
  min_interval : float;         (** seconds between forwarded meetings *)
}

val install :
  Tacoma_core.Kernel.t ->
  site:Netsim.Site.id ->
  public_name:string ->
  secret_name:string ->
  policy:policy ->
  unit ->
  t
(** [public_name] is the broker clients meet (with a [REQUESTER] folder and
    whatever folders the protected agent expects); [secret_name] is the
    protected agent, which must be installed at the same site. *)

val pending : t -> int
(** Requests queued but not yet forwarded. *)

val forwarded : t -> int
val denied : t -> int

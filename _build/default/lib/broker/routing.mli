(** Service routing between brokers — the paper's §4 closing question made
    concrete: "The problem of maintaining the requisite state information
    and intelligently distributing service requests seems to be equivalent
    to that of routing in a wide-area network."

    Brokers form an overlay graph.  Each broker periodically advertises to
    its peers the services it can reach and at what hop distance (distance-
    vector, Bellman-Ford style, with a hop horizon and report expiry so
    crashed brokers age out).  A lookup that misses locally is forwarded
    along the gradient toward the nearest broker that knows a provider, and
    the answer travels straight back to the requester. *)

type t

type route = { service : string; cost : int; via : string (** peer broker name *) }

val create :
  Tacoma_core.Kernel.t ->
  ?advert_period:float ->
  ?max_cost:int ->
  ?expiry:float ->
  unit ->
  t
(** Defaults: advertise every 1 s, horizon 16 hops, entries expire after 3
    advertisement periods without refresh. *)

val add_broker : t -> Matchmaker.t -> unit
(** Registers the routing agent ["route:<broker-name>"] at the broker's
    site and starts its advertisement loop. *)

val connect : t -> Matchmaker.t -> Matchmaker.t -> unit
(** Bidirectional overlay link between two registered brokers. *)

val routes : t -> Matchmaker.t -> route list
(** The broker's current remote-service routing table (local services are
    not listed — they resolve directly). *)

val routed_lookup :
  t ->
  from:Matchmaker.t ->
  service:string ->
  on_reply:((Policy.candidate * int, string) result -> unit) ->
  unit
(** Resolve a service starting at [from], forwarding across the overlay.
    On success the reply carries the chosen candidate and the number of
    broker hops the query travelled.  [Error] carries ["no-provider"] (or a
    TTL exhaustion note).  The callback fires at most once; lost messages
    (crashed brokers) mean it may never fire. *)

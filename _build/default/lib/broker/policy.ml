type t = Random | Round_robin | Least_loaded | Weighted

let of_string s =
  match String.lowercase_ascii s with
  | "random" -> Some Random
  | "round-robin" | "rr" -> Some Round_robin
  | "least-loaded" | "ll" -> Some Least_loaded
  | "weighted" -> Some Weighted
  | _ -> None

let name = function
  | Random -> "random"
  | Round_robin -> "round-robin"
  | Least_loaded -> "least-loaded"
  | Weighted -> "weighted"

let all = [ Random; Round_robin; Least_loaded; Weighted ]

type candidate = {
  provider : string;
  host : string;
  capacity : float;
  load : float;
  report_age : float;
}

let min_by score = function
  | [] -> None
  | c :: rest ->
    Some
      (List.fold_left (fun best x -> if score x < score best then x else best) c rest)

let choose t ~rng ~rr_counter candidates =
  match candidates with
  | [] -> None
  | _ -> (
    match t with
    | Random -> Some (List.nth candidates (Tacoma_util.Rng.int rng (List.length candidates)))
    | Round_robin ->
      let i = !rr_counter in
      rr_counter := i + 1;
      Some (List.nth candidates (i mod List.length candidates))
    | Least_loaded -> min_by (fun c -> c.load) candidates
    | Weighted -> min_by (fun c -> c.load /. Float.max 0.001 c.capacity) candidates)

module Rng = Tacoma_util.Rng

type reading = {
  station : int;
  hour : int;
  temp_c : float;
  pressure_hpa : float;
  wind_ms : float;
}

let wire r =
  Printf.sprintf "%d,%d,%.2f,%.2f,%.2f" r.station r.hour r.temp_c r.pressure_hpa r.wind_ms

let of_wire s =
  match String.split_on_char ',' s with
  | [ station; hour; temp; pressure; wind ] -> (
    match
      ( int_of_string_opt station,
        int_of_string_opt hour,
        float_of_string_opt temp,
        float_of_string_opt pressure,
        float_of_string_opt wind )
    with
    | Some station, Some hour, Some temp_c, Some pressure_hpa, Some wind_ms ->
      Ok { station; hour; temp_c; pressure_hpa; wind_ms }
    | _ -> Error "bad numeric field")
  | _ -> Error "expected five fields"

type field = { readings : reading array array; storm_hours : (int * int) list }

let is_storm_truth field ~station ~hour = List.mem (station, hour) field.storm_hours

(* Calm Arctic baseline with diurnal swing; storms overlay a pressure trough
   and wind surge that travels one station per hour. *)
let generate ~rng ~stations ~hours ?(storm_count = 2) () =
  if stations < 1 || hours < 1 then invalid_arg "Weather.generate";
  let storm_hours = ref [] in
  let storm_effect = Array.make_matrix stations hours 0.0 in
  for _ = 1 to storm_count do
    let onset = Rng.int rng (max 1 (hours / 2)) in
    let origin = Rng.int rng stations in
    let span = 2 + Rng.int rng (max 1 (stations / 2)) in
    let duration = 4 + Rng.int rng 6 in
    for s = origin to min (stations - 1) (origin + span) do
      let arrival = onset + (s - origin) in
      for h = arrival to min (hours - 1) (arrival + duration) do
        (* intensity ramps in and out over the storm's local duration *)
        let phase = float_of_int (h - arrival) /. float_of_int duration in
        let intensity = sin (phase *. Float.pi) in
        if intensity > 0.35 then begin
          storm_effect.(s).(h) <- Float.max storm_effect.(s).(h) intensity;
          if not (List.mem (s, h) !storm_hours) then storm_hours := (s, h) :: !storm_hours
        end
      done
    done
  done;
  let readings =
    Array.init stations (fun s ->
        Array.init hours (fun h ->
            let diurnal = 3.0 *. sin (float_of_int h /. 24.0 *. 2.0 *. Float.pi) in
            let storm = storm_effect.(s).(h) in
            {
              station = s;
              hour = h;
              temp_c = -8.0 +. diurnal +. Rng.gaussian rng ~mu:0.0 ~sigma:0.8 +. (2.0 *. storm);
              pressure_hpa =
                1008.0 -. (35.0 *. storm) +. Rng.gaussian rng ~mu:0.0 ~sigma:1.5;
              wind_ms = 4.0 +. (18.0 *. storm) +. Float.abs (Rng.gaussian rng ~mu:0.0 ~sigma:1.2);
            }))
  in
  { readings; storm_hours = !storm_hours }

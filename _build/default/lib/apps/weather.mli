(** Synthetic Arctic weather for the StormCast reimplementation (paper §6).

    The real StormCast [J93] predicted severe storms from "weather data
    obtained from a distributed network of sensors"; we have no Arctic
    sensor network, so this module generates a field of hourly readings
    with injected storm fronts.  A front passes over consecutive stations
    with a lag, depressing pressure and raising wind — giving the expert
    rules (pressure drop, wind surge, multi-station corroboration) something
    real to detect, and giving ground truth to score predictions against. *)

type reading = {
  station : int;   (** sensor site index, 0-based *)
  hour : int;
  temp_c : float;
  pressure_hpa : float;
  wind_ms : float;
}

val wire : reading -> string
(** ["station,hour,temp,pressure,wind"] — the folder element format. *)

val of_wire : string -> (reading, string) result

type field = {
  readings : reading array array; (** [station].(hour) *)
  storm_hours : (int * int) list; (** (station, hour) under a storm front *)
}

val generate :
  rng:Tacoma_util.Rng.t ->
  stations:int ->
  hours:int ->
  ?storm_count:int ->
  unit ->
  field
(** Deterministic for a given stream.  [storm_count] fronts (default 2)
    sweep across station ranges at random onset times. *)

val is_storm_truth : field -> station:int -> hour:int -> bool

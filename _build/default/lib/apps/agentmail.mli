(** The interactive mail system of paper §6, "where messages are implemented
    by agents".

    A message is an agent: it travels to the recipient's home site and
    deposits itself in the mailbox (a cabinet folder); because it is code
    running at the destination, features that a store-and-forward system
    needs servers for come free — forwarding (the agent re-sends itself),
    vacation auto-replies (the agent mails the sender back), and mailing
    lists (the agent fans out with [diffusion]-style cloning). *)

type message = {
  from_user : string;
  to_user : string;
  subject : string;
  body : string;
  sent_at : float;
}

val wire : message -> string
val of_wire : string -> (message, string) result

val setup : Tacoma_core.Kernel.t -> unit
(** Install the [mail] agent at every site. *)

val register_user : Tacoma_core.Kernel.t -> user:string -> home:Netsim.Site.id -> unit
(** Record the user's home site in the (replicated) directory — every site's
    cabinet gets the binding, as a real deployment's DNS/passwd map would. *)

val send :
  Tacoma_core.Kernel.t ->
  src:Netsim.Site.id ->
  from_user:string ->
  to_user:string ->
  subject:string ->
  body:string ->
  unit
(** Launch the message agent from [src].  Unknown recipients bounce back to
    the sender's mailbox with a ["bounced:"] subject prefix. *)

val mailbox : Tacoma_core.Kernel.t -> user:string -> message list
(** Read a user's mailbox at their home site (oldest first). *)

val set_forward : Tacoma_core.Kernel.t -> user:string -> to_user:string -> unit
(** Forward [user]'s mail to [to_user] (applied at delivery; forwarding
    chains are followed up to a hop bound to break cycles). *)

val set_vacation : Tacoma_core.Kernel.t -> user:string -> note:string -> unit
(** Auto-reply with [note] to each sender (at most once per sender). *)

val make_list :
  Tacoma_core.Kernel.t -> name:string -> members:string list -> unit
(** Create a mailing list address: mail to [name] clones to every member. *)

(** StormCast reimplemented with agents (paper §6): "a set of expert systems
    to predict severe storms in the Arctic based on weather data obtained
    from a distributed network of sensors".

    Two architectures over identical data:
    - {e agent}: a collector agent tours the sensor sites, filters readings
      against the anomaly rules {e at the data} and carries only suspicious
      readings to the prediction centre — the paper's bandwidth-conservation
      design;
    - {e client/server}: the centre pulls every site's full readings over
      {!Baseline.Rpc} and filters centrally.

    Both feed the same rule-based expert system, so predictions agree and
    only the network cost differs. *)

type prediction = { p_station : int; p_hour : int; severity : float }

(** {1 The expert system} *)

val anomalous : Weather.reading -> bool
(** The in-field filter rule (pressure trough or wind surge). *)

val predict : Weather.reading list -> prediction list
(** Rule-based storm detection over (filtered or raw) readings:
    pressure depth, wind strength, pressure fall rate, and neighbouring-
    station corroboration combine into a severity score. *)

val score :
  Weather.field -> prediction list -> hit_rate:float ref -> false_alarm_rate:float ref -> unit
(** Compare predictions against injected ground truth. *)

(** {1 Deployments} *)

type outcome = {
  predictions : prediction list;
  bytes_moved : int;      (** network bytes attributable to this run *)
  finished_at : float;    (** simulated completion time *)
  readings_moved : int;   (** readings that crossed the network *)
}

val load_sensor_data : Tacoma_core.Kernel.t -> sites:Netsim.Site.id list -> Weather.field -> unit
(** Deposit each station's readings into its site cabinet (folder
    ["READINGS"]), as the sensor network would have. *)

val run_agent_collector :
  Tacoma_core.Kernel.t ->
  sensor_sites:Netsim.Site.id list ->
  centre:Netsim.Site.id ->
  on_done:(outcome -> unit) ->
  unit
(** Launch the collector agent; it visits every sensor site in order and
    delivers filtered findings to the centre, where the expert system runs. *)

val run_script_collector :
  Tacoma_core.Kernel.t ->
  sensor_sites:Netsim.Site.id list ->
  centre:Netsim.Site.id ->
  on_done:(outcome -> unit) ->
  unit
(** The same journey with the collector written in TScript — the agent's
    source really travels in its CODE folder, as the prototype's Tcl agents
    did.  Findings and predictions are identical to the native collector;
    only the code-shipping bytes differ. *)

val collector_script : string
(** The TScript source of the script collector (for inspection/docs). *)

val run_client_server :
  Netsim.Net.t ->
  field:Weather.field ->
  sensor_sites:Netsim.Site.id list ->
  centre:Netsim.Site.id ->
  on_done:(outcome -> unit) ->
  unit
(** The pull architecture over the same network (servers are installed by
    this call). *)

(** {1 Resident monitor agents (push)}

    The real StormCast was event-driven: instead of a roaming collector
    that picks findings up at tour time, a {e resident} agent at each
    sensor site watches readings as they are produced and couriers
    anomalies to the centre immediately.  Same filter-at-the-data
    bandwidth story, radically lower detection latency. *)

type push_outcome = {
  alerts : int;                (** anomalous readings pushed to the centre *)
  mean_alert_latency : float;  (** reading production to centre arrival, s *)
  push_bytes : int;
  push_predictions : prediction list;
}

val run_monitor_agents :
  Tacoma_core.Kernel.t ->
  field:Weather.field ->
  sensor_sites:Netsim.Site.id list ->
  centre:Netsim.Site.id ->
  hour_scale:float ->
  unit ->
  unit ->
  push_outcome
(** Install a monitor agent at every sensor site; hour [h]'s reading is
    produced at simulated time [(h+1) * hour_scale].  Drive the network
    past the last hour, then call the returned thunk for the outcome. *)

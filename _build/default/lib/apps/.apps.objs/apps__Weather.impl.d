lib/apps/weather.ml: Array Float List Printf String Tacoma_util

lib/apps/agentmail.mli: Netsim Tacoma_core

lib/apps/weather.mli: Tacoma_util

lib/apps/agentmail.ml: List Netsim Option Printf Result String Tacoma_core Tscript

lib/apps/stormcast.mli: Netsim Tacoma_core Weather

lib/apps/stormcast.ml: Array Baseline Hashtbl List Netsim Option Printf Result Tacoma_core Weather

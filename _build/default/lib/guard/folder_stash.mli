(** Serialise a whole briefcase into a folder of another briefcase (the
    paper's "folders can themselves store agents").  Used by rear guards to
    carry their relaunch snapshot. *)

val folder_name : string

val put : Tacoma_core.Briefcase.t -> Tacoma_core.Briefcase.t -> unit
(** [put carrier snapshot]. *)

val take : Tacoma_core.Briefcase.t -> Tacoma_core.Briefcase.t
(** @raise Tacoma_core.Kernel.Agent_error when absent,
    @raise Tacoma_core.Codec.Malformed when corrupt. *)

lib/guard/folder_stash.ml: Tacoma_core

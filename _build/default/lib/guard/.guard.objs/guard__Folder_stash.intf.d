lib/guard/folder_stash.mli: Tacoma_core

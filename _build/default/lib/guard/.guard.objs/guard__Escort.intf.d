lib/guard/escort.mli: Netsim Tacoma_core

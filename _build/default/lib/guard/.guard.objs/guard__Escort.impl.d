lib/guard/escort.ml: Array Folder_stash Hashtbl List Netsim Option Printf String Tacoma_core

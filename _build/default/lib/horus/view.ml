type t = { id : int; members : Netsim.Site.id list }

let make ~id ~members = { id; members = List.sort_uniq compare members }
let coordinator t = match t.members with [] -> None | m :: _ -> Some m
let mem t s = List.mem s t.members
let size t = List.length t.members
let without t s = { id = t.id + 1; members = List.filter (fun m -> m <> s) t.members }
let with_member t s = { id = t.id + 1; members = List.sort_uniq compare (s :: t.members) }

let pp fmt t =
  Format.fprintf fmt "view %d {%s}" t.id
    (String.concat "," (List.map string_of_int t.members))

lib/horus/view.mli: Format Netsim

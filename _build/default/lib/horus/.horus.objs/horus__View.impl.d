lib/horus/view.ml: Format List Netsim String

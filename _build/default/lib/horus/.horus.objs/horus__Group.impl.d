lib/horus/group.ml: Hashtbl List Netsim Option Printf String View

lib/horus/group.mli: Netsim View

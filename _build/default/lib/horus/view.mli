(** Group views, after Horus/ISIS: an agreed, numbered snapshot of the
    membership.  The member with the smallest site id is the coordinator;
    it sequences totally-ordered traffic and drives membership changes. *)

type t = { id : int; members : Netsim.Site.id list (* sorted ascending *) }

val make : id:int -> members:Netsim.Site.id list -> t
val coordinator : t -> Netsim.Site.id option
val mem : t -> Netsim.Site.id -> bool
val size : t -> int
val without : t -> Netsim.Site.id -> t
(** Next view (id incremented) with the site removed. *)

val with_member : t -> Netsim.Site.id -> t
val pp : Format.formatter -> t -> unit

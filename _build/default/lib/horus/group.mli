(** Group communication in the style of Horus [vRHB94]: process groups with
    agreed views, heartbeat failure detection, and FIFO- or totally-ordered
    multicast.

    The TACOMA prototype's third [rexec] implementation runs over Horus
    (paper §6); rear guards (§5) and load-reporting brokers also want a
    failure-detecting, reliably-ordered channel.  This is a from-scratch
    implementation over {!Netsim}:

    - every member heartbeats the coordinator; the coordinator heartbeats
      the group; staleness beyond [fail_timeout] triggers a view change
      installed by the coordinator (or by the next-ranked member when the
      coordinator itself is suspected);
    - FIFO multicast unicasts to each member with per-sender sequence
      numbers and a hold-back queue;
    - total order routes through the coordinator, which stamps a global
      sequence number;
    - a crashed member that restarts can [rejoin]; the coordinator runs the
      state-transfer hook so the joiner catches up. *)

type t

type config = {
  hb_interval : float;   (** heartbeat period, seconds *)
  fail_timeout : float;  (** silence before a member is suspected *)
  payload_overhead : int (** header bytes charged per protocol message *)
}

val default_config : config

val create :
  ?config:config -> Netsim.Net.t -> name:string -> members:Netsim.Site.id list -> t
(** Installs an endpoint on every member site and starts heartbeating.
    All members must currently be up. *)

val name : t -> string
val view_at : t -> Netsim.Site.id -> View.t option
(** The view currently installed at one member ([None] if that site is not
    an active member, e.g. crashed or removed). *)

(** {1 Callbacks} — registered per member site. *)

val on_deliver : t -> Netsim.Site.id -> (sender:Netsim.Site.id -> string -> unit) -> unit
val on_view : t -> Netsim.Site.id -> (View.t -> unit) -> unit

val set_state_provider : t -> Netsim.Site.id -> (unit -> string) -> unit
(** Called at the coordinator when a joiner needs to catch up. *)

val on_state : t -> Netsim.Site.id -> (string -> unit) -> unit
(** Called at a joiner with the coordinator's state snapshot. *)

(** {1 Operations} *)

val mcast : t -> from:Netsim.Site.id -> ?total:bool -> string -> unit
(** Multicast [data] to the sender's current view.  [total] (default false)
    routes through the coordinator for a global delivery order.  A sender
    that is not an active member is ignored. *)

val rejoin : t -> Netsim.Site.id -> unit
(** Ask the current coordinator to re-admit this (restarted) site. *)

val member_sites : t -> Netsim.Site.id list
(** Sites holding an active endpoint right now. *)

(* Tests for the Horus-like group communication substrate: views, FIFO and
   total ordering, failure detection, coordinator succession, rejoin and
   state transfer. *)

module Net = Netsim.Net
module Topology = Netsim.Topology
module Group = Horus.Group
module View = Horus.View

let check = Alcotest.check

let mk ?(n = 5) ?config () =
  let net = Net.create (Topology.full_mesh n) in
  let members = List.init n Fun.id in
  let g = Group.create ?config net ~name:"g" ~members in
  (net, g, members)

let collect g members =
  let log = Array.make (List.length members + 16) [] in
  List.iter
    (fun s -> Group.on_deliver g s (fun ~sender data -> log.(s) <- (sender, data) :: log.(s)))
    members;
  fun s -> List.rev log.(s)

(* --- views --- *)

let test_view_module () =
  let v = View.make ~id:1 ~members:[ 3; 1; 2 ] in
  check Alcotest.(list int) "sorted" [ 1; 2; 3 ] v.View.members;
  check Alcotest.(option int) "coordinator is lowest" (Some 1) (View.coordinator v);
  let v2 = View.without v 1 in
  check Alcotest.int "id bumped" 2 v2.View.id;
  check Alcotest.(option int) "new coordinator" (Some 2) (View.coordinator v2);
  let v3 = View.with_member v2 0 in
  Alcotest.(check bool) "member added" true (View.mem v3 0);
  check Alcotest.int "size" 3 (View.size v3)

let test_initial_view_everywhere () =
  let _, g, members = mk () in
  List.iter
    (fun s ->
      match Group.view_at g s with
      | Some v -> check Alcotest.int "all members" 5 (View.size v)
      | None -> Alcotest.fail "no view")
    members

(* --- multicast --- *)

let test_fifo_delivery_to_all () =
  let net, g, members = mk () in
  let got = collect g members in
  ignore
    (Net.schedule net ~after:0.01 (fun () ->
         Group.mcast g ~from:2 "m1";
         Group.mcast g ~from:2 "m2";
         Group.mcast g ~from:2 "m3"));
  Net.run ~until:1.0 net;
  List.iter
    (fun s ->
      check
        Alcotest.(list (pair int string))
        "fifo order everywhere"
        [ (2, "m1"); (2, "m2"); (2, "m3") ]
        (got s))
    members

let test_self_delivery () =
  let net, g, members = mk ~n:3 () in
  let got = collect g members in
  ignore (Net.schedule net ~after:0.01 (fun () -> Group.mcast g ~from:0 "x"));
  Net.run ~until:1.0 net;
  check Alcotest.(list (pair int string)) "sender delivers to itself" [ (0, "x") ] (got 0)

let test_total_order_agreement () =
  let net, g, members = mk () in
  let got = collect g members in
  (* two senders race; total order must agree at every member *)
  ignore
    (Net.schedule net ~after:0.01 (fun () ->
         Group.mcast g ~from:3 ~total:true "a";
         Group.mcast g ~from:4 ~total:true "b"));
  ignore
    (Net.schedule net ~after:0.011 (fun () -> Group.mcast g ~from:1 ~total:true "c"));
  Net.run ~until:2.0 net;
  let reference = got 0 in
  check Alcotest.int "all delivered" 3 (List.length reference);
  List.iter
    (fun s ->
      check Alcotest.(list (pair int string)) "same total order" reference (got s))
    members

let test_mcast_from_non_member_ignored () =
  let net = Net.create (Topology.full_mesh 4) in
  let g = Group.create net ~name:"g" ~members:[ 0; 1 ] in
  let got = ref [] in
  Group.on_deliver g 0 (fun ~sender:_ data -> got := data :: !got);
  Group.mcast g ~from:3 "ghost";
  Net.run ~until:1.0 net;
  check Alcotest.(list string) "ignored" [] !got

(* --- failure handling --- *)

let test_member_crash_view_change () =
  let net, g, _ = mk () in
  ignore (Net.schedule net ~after:1.0 (fun () -> Net.crash net 3));
  Net.run ~until:10.0 net;
  List.iter
    (fun s ->
      match Group.view_at g s with
      | Some v ->
        Alcotest.(check bool) "3 removed" false (View.mem v 3);
        check Alcotest.int "others stay" 4 (View.size v)
      | None -> Alcotest.fail "no view")
    [ 0; 1; 2; 4 ]

let test_coordinator_crash_succession () =
  let net, g, _ = mk () in
  ignore (Net.schedule net ~after:1.0 (fun () -> Net.crash net 0));
  Net.run ~until:15.0 net;
  List.iter
    (fun s ->
      match Group.view_at g s with
      | Some v ->
        check Alcotest.(option int) "site 1 takes over" (Some 1) (View.coordinator v);
        Alcotest.(check bool) "0 removed" false (View.mem v 0)
      | None -> Alcotest.fail "no view")
    [ 1; 2; 3; 4 ]

let test_total_order_works_after_succession () =
  let net, g, members = mk () in
  let got = collect g members in
  ignore (Net.schedule net ~after:1.0 (fun () -> Net.crash net 0));
  ignore (Net.schedule net ~after:10.0 (fun () -> Group.mcast g ~from:2 ~total:true "post"));
  Net.run ~until:15.0 net;
  List.iter
    (fun s ->
      check Alcotest.(list (pair int string)) "delivered via new sequencer" [ (2, "post") ]
        (got s))
    [ 1; 2; 3; 4 ]

let test_mcast_excludes_departed () =
  let net, g, members = mk () in
  let got = collect g members in
  ignore (Net.schedule net ~after:1.0 (fun () -> Net.crash net 3));
  ignore (Net.schedule net ~after:9.0 (fun () -> Net.restart net 3));
  (* after restart but without rejoin, 3 must not receive traffic *)
  ignore (Net.schedule net ~after:10.0 (fun () -> Group.mcast g ~from:0 "late"));
  Net.run ~until:12.0 net;
  check Alcotest.(list (pair int string)) "restarted non-member gets nothing" [] (got 3);
  check Alcotest.(list (pair int string)) "member gets it" [ (0, "late") ] (got 1)

let test_rejoin_state_transfer () =
  let net, g, _ = mk () in
  Group.set_state_provider g 0 (fun () -> "snapshot-from-coordinator");
  let state_seen = ref None in
  ignore (Net.schedule net ~after:1.0 (fun () -> Net.crash net 3));
  ignore
    (Net.schedule net ~after:9.0 (fun () ->
         Net.restart net 3;
         Group.on_state g 3 (fun s -> state_seen := Some s);
         Group.rejoin g 3));
  Net.run ~until:20.0 net;
  check Alcotest.(option string) "state transferred" (Some "snapshot-from-coordinator")
    !state_seen;
  List.iter
    (fun s ->
      match Group.view_at g s with
      | Some v -> Alcotest.(check bool) "3 back in view" true (View.mem v 3)
      | None -> Alcotest.fail "no view")
    [ 0; 1; 2; 3; 4 ]

let test_rejoined_member_receives () =
  let net, g, members = mk () in
  let got = collect g members in
  ignore (Net.schedule net ~after:1.0 (fun () -> Net.crash net 3));
  ignore
    (Net.schedule net ~after:9.0 (fun () ->
         Net.restart net 3;
         Group.rejoin g 3));
  ignore (Net.schedule net ~after:15.0 (fun () -> Group.mcast g ~from:0 "back"));
  Net.run ~until:20.0 net;
  check Alcotest.(list (pair int string)) "rejoined member receives" [ (0, "back") ] (got 3)

let test_sole_survivor () =
  let net, g, _ = mk ~n:3 () in
  ignore (Net.schedule net ~after:1.0 (fun () -> Net.crash net 0));
  ignore (Net.schedule net ~after:1.0 (fun () -> Net.crash net 1));
  Net.run ~until:20.0 net;
  match Group.view_at g 2 with
  | Some v ->
    check Alcotest.int "singleton view" 1 (View.size v);
    check Alcotest.(option int) "self coordinator" (Some 2) (View.coordinator v)
  | None -> Alcotest.fail "survivor lost its view"

let test_crash_storm_convergence () =
  (* a storm of crashes and restarts+rejoins; after it calms down, every
     member that is up and rejoined must agree on one view containing all
     of them, and multicast must work again *)
  let net = Net.create (Topology.full_mesh 6) in
  let members = [ 0; 1; 2; 3; 4; 5 ] in
  let g = Group.create net ~name:"g" ~members in
  let rng = Tacoma_util.Rng.create 99L in
  (* 12 staggered crash/restart/rejoin cycles over 60 s *)
  for _ = 1 to 12 do
    let site = Tacoma_util.Rng.int rng 6 in
    let at = Tacoma_util.Rng.range_float rng 1.0 60.0 in
    let downtime = Tacoma_util.Rng.range_float rng 3.0 8.0 in
    ignore (Net.schedule net ~after:at (fun () -> Net.crash net site));
    ignore
      (Net.schedule net ~after:(at +. downtime) (fun () ->
           Net.restart net site;
           Group.rejoin g site))
  done;
  Net.run ~until:120.0 net;
  (* quiesce achieved by 120 s: compare surviving members' views *)
  let live = List.filter (fun s -> Net.site_up net s) members in
  Alcotest.(check bool) "some survivors" true (live <> []);
  let views = List.filter_map (fun s -> Group.view_at g s) live in
  (match views with
  | [] -> Alcotest.fail "no views among survivors"
  | v :: rest ->
    List.iter
      (fun v' ->
        check Alcotest.int "same view id" v.View.id v'.View.id;
        check Alcotest.(list int) "same membership" v.View.members v'.View.members)
      rest;
    List.iter
      (fun s -> Alcotest.(check bool) "every live member in the view" true (View.mem v s))
      live);
  (* multicast still works for everyone *)
  let got = Array.make 6 0 in
  List.iter (fun s -> Group.on_deliver g s (fun ~sender:_ _ -> got.(s) <- got.(s) + 1)) live;
  ignore (Net.schedule net ~after:1.0 (fun () -> Group.mcast g ~from:(List.hd live) "post-storm"));
  Net.run ~until:130.0 net;
  List.iter (fun s -> check Alcotest.int "delivered post-storm" 1 got.(s)) live

let test_total_order_random_interleavings =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:25 ~name:"total order agrees under random concurrent senders"
       QCheck2.Gen.(list_size (1 -- 12) (pair (int_range 0 4) (float_bound_inclusive 0.2)))
       (fun sends ->
         let net = Net.create (Topology.full_mesh 5) in
         let members = [ 0; 1; 2; 3; 4 ] in
         let g = Group.create net ~name:"g" ~members in
         let logs = Array.make 5 [] in
         List.iter
           (fun s -> Group.on_deliver g s (fun ~sender data -> logs.(s) <- (sender, data) :: logs.(s)))
           members;
         List.iteri
           (fun i (sender, delay) ->
             ignore
               (Net.schedule net ~after:(0.01 +. delay) (fun () ->
                    Group.mcast g ~from:sender ~total:true (Printf.sprintf "m%d" i))))
           sends;
         Net.run ~until:5.0 net;
         let reference = logs.(0) in
         List.length reference = List.length sends
         && List.for_all (fun s -> logs.(s) = reference) members))

let test_heartbeat_traffic_accounted () =
  let net, _, _ = mk ~n:3 () in
  Net.run ~until:10.0 net;
  Alcotest.(check bool) "heartbeats cost bytes" true
    (Netsim.Netstats.bytes_sent (Net.stats net) > 0)

let () =
  Alcotest.run "horus"
    [
      ( "views",
        [
          Alcotest.test_case "view module" `Quick test_view_module;
          Alcotest.test_case "initial views" `Quick test_initial_view_everywhere;
        ] );
      ( "multicast",
        [
          Alcotest.test_case "fifo to all" `Quick test_fifo_delivery_to_all;
          Alcotest.test_case "self delivery" `Quick test_self_delivery;
          Alcotest.test_case "total order agreement" `Quick test_total_order_agreement;
          test_total_order_random_interleavings;
          Alcotest.test_case "non-member ignored" `Quick test_mcast_from_non_member_ignored;
        ] );
      ( "failures",
        [
          Alcotest.test_case "member crash view change" `Quick test_member_crash_view_change;
          Alcotest.test_case "coordinator succession" `Quick test_coordinator_crash_succession;
          Alcotest.test_case "total order after succession" `Quick
            test_total_order_works_after_succession;
          Alcotest.test_case "departed excluded" `Quick test_mcast_excludes_departed;
          Alcotest.test_case "rejoin + state transfer" `Quick test_rejoin_state_transfer;
          Alcotest.test_case "rejoined member receives" `Quick test_rejoined_member_receives;
          Alcotest.test_case "sole survivor" `Quick test_sole_survivor;
          Alcotest.test_case "crash storm convergence" `Quick test_crash_storm_convergence;
          Alcotest.test_case "heartbeat bytes" `Quick test_heartbeat_traffic_accounted;
        ] );
    ]

test/test_util.ml: Alcotest Array Float Fun List QCheck2 QCheck_alcotest String Tacoma_util

test/test_apps.ml: Alcotest Apps Array Baseline List Netsim Option String Tacoma_core Tacoma_util

test/test_cash.mli:

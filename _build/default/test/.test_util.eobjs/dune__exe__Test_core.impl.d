test/test_core.ml: Alcotest Fun Guard Hashtbl Horus Int64 List Netsim Option Printf QCheck2 QCheck_alcotest String Tacoma_core Tacoma_util

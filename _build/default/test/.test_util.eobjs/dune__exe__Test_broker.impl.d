test/test_broker.ml: Alcotest Broker List Netsim Option Tacoma_core Tacoma_util

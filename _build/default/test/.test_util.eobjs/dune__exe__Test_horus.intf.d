test/test_horus.mli:

test/test_netsim.ml: Alcotest Array Int64 List Netsim Option QCheck2 QCheck_alcotest Queue Tacoma_util

test/test_tscript.mli:

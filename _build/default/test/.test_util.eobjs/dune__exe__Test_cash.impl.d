test/test_cash.ml: Alcotest Cash List Netsim Option QCheck2 QCheck_alcotest Result String Tacoma_core

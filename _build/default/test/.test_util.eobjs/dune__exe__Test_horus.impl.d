test/test_horus.ml: Alcotest Array Fun Horus List Netsim Printf QCheck2 QCheck_alcotest Tacoma_util

test/test_tscript.ml: Alcotest Array Buffer List Option Printf QCheck2 QCheck_alcotest Result String Tscript

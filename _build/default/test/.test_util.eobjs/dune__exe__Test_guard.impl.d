test/test_guard.ml: Alcotest Guard List Netsim Printf Tacoma_core

(* Rear-guard fault tolerance (paper §5), narrated.

   An auditing agent must visit five data centres in order, spending two
   seconds at each.  Two of the sites will crash mid-journey — one of them
   while the agent is working on it, and later the site holding the active
   rear guard crashes too.  With durable (checkpointed) guards the journey
   still completes.

   Run with: dune exec examples/resilient_journey.exe *)

module Net = Netsim.Net
module Topology = Netsim.Topology
module Kernel = Tacoma_core.Kernel
module Briefcase = Tacoma_core.Briefcase
module Folder = Tacoma_core.Folder
module Fault = Netsim.Fault
module Escort = Guard.Escort

let () =
  let net = Net.create (Topology.full_mesh 5) in
  let kernel = Kernel.create net in

  (* the failure schedule: site 2 dies while the agent audits it; site 1
     (which by then holds the rear guard) dies shortly after *)
  Fault.crash_for net ~site:2 ~at:5.0 ~downtime:6.0;
  Fault.crash_for net ~site:1 ~at:5.5 ~downtime:6.0;

  let config =
    {
      Escort.ack_timeout = 4.0;
      retry_period = 2.0;
      max_relaunch = 10;
      transport = Kernel.Tcp;
      durable = true;
    }
  in
  let journey =
    Escort.guarded_journey kernel ~config ~id:"audit"
      ~itinerary:[ 0; 1; 2; 3; 4 ]
      ~work:(fun ctx ~hop bc ->
        let k = ctx.Kernel.kernel in
        Printf.printf "[%6.2fs] auditing %s (stop %d)\n" (Kernel.now k)
          (Kernel.site_name k ctx.Kernel.site)
          hop;
        Kernel.sleep ctx 2.0;
        Folder.enqueue (Briefcase.folder bc "AUDITED") (Kernel.site_name k ctx.Kernel.site))
      ~on_complete:(fun bc ->
        Printf.printf "[%6.2fs] journey complete; audited: %s\n" (Net.now net)
          (String.concat ", " (Folder.to_list (Briefcase.folder bc "AUDITED"))))
      (Briefcase.create ())
  in
  Net.run ~until:300.0 net;

  let s = Escort.stats journey in
  Printf.printf "\ncompleted: %b\n" s.Escort.completed;
  Printf.printf "rear guards installed: %d\n" s.Escort.guards_installed;
  Printf.printf "relaunches from snapshots: %d\n" s.Escort.relaunches;
  Printf.printf
    "\n(site mesh-2 crashed at t=5.0 while the agent was working there, and\n\
    \ mesh-1 — holding the covering rear guard — crashed at t=5.5.  The\n\
    \ guard's checkpoint survived on mesh-1's disk; after restart it was\n\
    \ resurrected, timed out waiting for a release, and relaunched the agent\n\
    \ from its snapshot.  Without durable guards this double failure loses\n\
    \ the computation — see test/test_guard.ml.)\n"

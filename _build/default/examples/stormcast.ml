(* StormCast (paper §6): storm prediction over a distributed sensor network,
   in both the agent and the client/server architecture, on identical
   synthetic Arctic weather.

   Run with: dune exec examples/stormcast.exe *)

module Net = Netsim.Net
module Topology = Netsim.Topology
module Kernel = Tacoma_core.Kernel
module Weather = Apps.Weather
module Stormcast = Apps.Stormcast

let stations = 6
let hours = 96

let describe name (o : Stormcast.outcome) field =
  let hit = ref 0.0 and fa = ref 0.0 in
  Stormcast.score field o.Stormcast.predictions ~hit_rate:hit ~false_alarm_rate:fa;
  Printf.printf "%-14s: %5d bytes moved, %4d readings on the wire, %.2fs, hit %.0f%%, false alarms %.0f%%\n"
    name o.Stormcast.bytes_moved o.Stormcast.readings_moved o.Stormcast.finished_at
    (100.0 *. !hit) (100.0 *. !fa);
  o.Stormcast.predictions

let () =
  let field =
    Weather.generate ~rng:(Tacoma_util.Rng.create 2026L) ~stations ~hours ~storm_count:2 ()
  in
  Printf.printf "generated %d stations x %dh; ground truth has %d storm station-hours\n"
    stations hours
    (List.length field.Weather.storm_hours);

  (* hub-and-spoke network: prediction centre at the hub, sensors on spokes *)
  let sensors = List.init stations (fun i -> i + 1) in

  (* agent architecture: the collector visits each sensor and filters there *)
  let net_a = Net.create (Topology.star stations) in
  let kernel = Kernel.create net_a in
  Stormcast.load_sensor_data kernel ~sites:sensors field;
  let agent_preds = ref [] in
  Stormcast.run_agent_collector kernel ~sensor_sites:sensors ~centre:0 ~on_done:(fun o ->
      agent_preds := describe "agent" o field);
  Net.run ~until:600.0 net_a;

  (* client/server: the centre pulls all raw readings *)
  let net_c = Net.create (Topology.star stations) in
  Stormcast.run_client_server net_c ~field ~sensor_sites:sensors ~centre:0
    ~on_done:(fun o -> ignore (describe "client/server" o field));
  Net.run ~until:600.0 net_c;

  Printf.printf "\npredicted storm cells (agent architecture):\n";
  List.iter
    (fun p ->
      Printf.printf "  station %d, hour %3d  (severity %.2f)\n" p.Stormcast.p_station
        p.Stormcast.p_hour p.Stormcast.severity)
    (List.sort compare !agent_preds)

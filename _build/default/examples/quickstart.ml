(* Quickstart: the TACOMA metaphor in one page.

   An agent is code carried in a CODE folder.  It executes at a place (one
   per site), keeps its state in briefcase folders, moves by meeting the
   rexec system agent, and leaves site-local state in file cabinets.

   Run with: dune exec examples/quickstart.exe *)

module Net = Netsim.Net
module Topology = Netsim.Topology
module Kernel = Tacoma_core.Kernel
module Briefcase = Tacoma_core.Briefcase
module Cabinet = Tacoma_core.Cabinet

(* The travelling agent, in TScript (the stand-in for the paper's Tcl).
   At each site it appends the host name to its TRAIL folder and signs the
   site's GUESTBOOK cabinet folder; after visiting four sites it files its
   trail with the [filer] system agent and stops. *)
let traveller = {|
  log "arrived, trail so far: [folder list TRAIL]"
  folder put TRAIL [host]
  cabinet put GUESTBOOK "visited by [self] at [now]"
  if {[folder size TRAIL] < 4} {
    set next ""
    foreach n [neighbors] {
      if {![folder contains TRAIL $n]} { set next $n; break }
    }
    folder set CODE [selfcode]
    jump $next
  } else {
    meet filer
  }
|}

let () =
  (* a 4-site ring with 5 ms / 1 MB/s links *)
  let net = Net.create (Topology.ring 4) in
  let kernel = Kernel.create net in

  (* pack the briefcase and launch the agent at site 0 *)
  let bc = Briefcase.create () in
  Briefcase.set bc Briefcase.code_folder traveller;
  Kernel.launch kernel ~site:0 ~contact:"ag_script" bc;

  (* run the world *)
  Net.run ~until:60.0 net;

  Printf.printf "journey finished at t=%.4fs with %d migrations\n" (Net.now net)
    (Kernel.migrations kernel);
  List.iter
    (fun site ->
      let cab = Kernel.cabinet kernel site in
      List.iter
        (fun entry -> Printf.printf "site %d guestbook: %s\n" site entry)
        (Cabinet.elements cab "GUESTBOOK");
      match Cabinet.elements cab "TRAIL" with
      | [] -> ()
      | trail -> Printf.printf "trail filed at site %d: %s\n" site (String.concat " -> " trail))
    (Net.sites net);
  Printf.printf "network moved %d bytes in %d messages\n"
    (Netsim.Netstats.bytes_sent (Net.stats net))
    (Netsim.Netstats.messages_sent (Net.stats net))

(* The agent-based mail system (paper §6): "an interactive mail system where
   messages are implemented by agents".  Messages travel to their
   recipient's home site and deposit themselves; forwarding, vacation
   replies and mailing lists are agent behaviours, not server features.

   Run with: dune exec examples/mailsystem.exe *)

module Net = Netsim.Net
module Topology = Netsim.Topology
module Kernel = Tacoma_core.Kernel
module Mail = Apps.Agentmail

let show kernel user =
  Printf.printf "%s's mailbox:\n" user;
  match Mail.mailbox kernel ~user with
  | [] -> Printf.printf "  (empty)\n"
  | msgs ->
    List.iter
      (fun m ->
        Printf.printf "  [%.2fs] from %-8s %s: %s\n" m.Mail.sent_at m.Mail.from_user
          m.Mail.subject m.Mail.body)
      msgs

let () =
  let net = Net.create (Topology.full_mesh 5) in
  let kernel = Kernel.create net in
  Mail.setup kernel;

  (* users live at their home sites *)
  Mail.register_user kernel ~user:"dag" ~home:0;
  Mail.register_user kernel ~user:"robbert" ~home:1;
  Mail.register_user kernel ~user:"fred" ~home:2;
  Mail.register_user kernel ~user:"ken" ~home:3;

  (* robbert forwards to ken; fred is on vacation *)
  Mail.set_forward kernel ~user:"robbert" ~to_user:"ken";
  Mail.set_vacation kernel ~user:"fred" ~note:"at HotOS, back next week";

  (* and there is a project mailing list *)
  Mail.make_list kernel ~name:"tacoma-dev" ~members:[ "dag"; "robbert"; "fred" ];

  Mail.send kernel ~src:0 ~from_user:"dag" ~to_user:"robbert" ~subject:"prototype"
    ~body:"the rexec agent works!";
  Mail.send kernel ~src:3 ~from_user:"ken" ~to_user:"fred" ~subject:"horus"
    ~body:"group comms are in";
  Mail.send kernel ~src:0 ~from_user:"dag" ~to_user:"tacoma-dev" ~subject:"meeting"
    ~body:"friday 10am";
  Mail.send kernel ~src:2 ~from_user:"fred" ~to_user:"nosuchuser" ~subject:"typo"
    ~body:"this will bounce";

  Net.run ~until:120.0 net;

  List.iter (show kernel) [ "dag"; "robbert"; "fred"; "ken" ];
  Printf.printf "\n(note: robbert's copy of the list mail was forwarded to ken,\n";
  Printf.printf " fred's vacation agent answered ken and dag once each,\n";
  Printf.printf " and the typo bounced back to fred via the postmaster)\n"

examples/mailsystem.ml: Apps List Netsim Printf Tacoma_core

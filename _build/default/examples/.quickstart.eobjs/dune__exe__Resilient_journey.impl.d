examples/resilient_journey.ml: Guard Netsim Printf String Tacoma_core

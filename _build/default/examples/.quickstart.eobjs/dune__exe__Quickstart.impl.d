examples/quickstart.ml: List Netsim Printf String Tacoma_core

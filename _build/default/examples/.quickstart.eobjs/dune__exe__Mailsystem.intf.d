examples/mailsystem.mli:

examples/marketplace.mli:

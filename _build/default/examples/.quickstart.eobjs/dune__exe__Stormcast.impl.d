examples/stormcast.ml: Apps List Netsim Printf Tacoma_core Tacoma_util

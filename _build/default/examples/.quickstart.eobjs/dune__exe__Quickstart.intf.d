examples/quickstart.mli:

examples/marketplace.ml: Broker Cash List Netsim Option Printf Tacoma_core

examples/stormcast.mli:

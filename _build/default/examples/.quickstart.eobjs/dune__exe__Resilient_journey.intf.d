examples/resilient_journey.mli:

(* The tacoma command-line tool: run experiments, run ad-hoc agent scripts
   on a simulated network, and show a traced demo journey. *)

let fmt = Format.std_formatter

(* --- exp: regenerate experiment tables ------------------------------------ *)

let exp_cmd =
  let run ids =
    match ids with
    | [] ->
      Format.fprintf fmt "Available experiments:@.";
      List.iter
        (fun e ->
          Format.fprintf fmt "  %-4s %s@.       claim: %s@." e.Experiments.Registry.id
            e.Experiments.Registry.title e.Experiments.Registry.paper_claim)
        Experiments.Registry.all;
      `Ok ()
    | [ "all" ] ->
      Experiments.Registry.run_all fmt;
      `Ok ()
    | ids -> (
      match
        List.find_opt (fun id -> Experiments.Registry.find id = None) ids
      with
      | Some bad -> `Error (false, Printf.sprintf "unknown experiment %S (try `tacoma exp')" bad)
      | None ->
        List.iter
          (fun id ->
            match Experiments.Registry.find id with
            | Some e -> e.Experiments.Registry.print fmt
            | None -> ())
          ids;
        `Ok ())
  in
  let open Cmdliner in
  let ids = Arg.(value & pos_all string [] & info [] ~docv:"ID" ~doc:"Experiment ids (e1..e8) or 'all'.") in
  Cmd.v
    (Cmd.info "exp" ~doc:"Regenerate experiment tables (no arguments lists them).")
    Term.(ret (const run $ ids))

(* --- run: execute a TScript agent on a simulated network ------------------- *)

let run_script_cmd =
  let run topology n code_file trace =
    let code =
      let ic = open_in_bin code_file in
      let len = in_channel_length ic in
      let s = really_input_string ic len in
      close_in ic;
      s
    in
    let topo =
      match topology with
      | "ring" -> Netsim.Topology.ring n
      | "line" -> Netsim.Topology.line n
      | "star" -> Netsim.Topology.star n
      | "mesh" -> Netsim.Topology.full_mesh n
      | "grid" ->
        let side = max 1 (int_of_float (sqrt (float_of_int n))) in
        Netsim.Topology.grid side side
      | other -> failwith (Printf.sprintf "unknown topology %S" other)
    in
    let net = Netsim.Net.create ~trace topo in
    let k = Tacoma_core.Kernel.create net in
    let bc = Tacoma_core.Briefcase.create () in
    Tacoma_core.Briefcase.set bc Tacoma_core.Briefcase.code_folder code;
    Tacoma_core.Kernel.launch k ~site:0 ~contact:"ag_script" bc;
    Netsim.Net.run ~until:3600.0 net;
    Format.fprintf fmt
      "done at t=%.4fs: %d activations, %d migrations, %d completions, %d deaths@."
      (Netsim.Net.now net)
      (Tacoma_core.Kernel.activations k)
      (Tacoma_core.Kernel.migrations k)
      (Tacoma_core.Kernel.completions k)
      (Tacoma_core.Kernel.deaths k);
    Format.fprintf fmt "network: %d messages, %d bytes, %d byte-hops@."
      (Netsim.Netstats.messages_sent (Netsim.Net.stats net))
      (Netsim.Netstats.bytes_sent (Netsim.Net.stats net))
      (Netsim.Netstats.byte_hops (Netsim.Net.stats net));
    List.iter
      (fun (name, a) ->
        Format.fprintf fmt "agent %-24s activations=%d completions=%d deaths=%d@." name
          a.Tacoma_core.Kernel.a_activations a.Tacoma_core.Kernel.a_completions
          a.Tacoma_core.Kernel.a_deaths)
      (Tacoma_core.Kernel.activity k);
    if trace then Netsim.Trace.dump fmt (Netsim.Net.trace net)
  in
  let open Cmdliner in
  let topology =
    Arg.(value & opt string "ring" & info [ "t"; "topology" ] ~doc:"ring|line|star|mesh|grid")
  in
  let n = Arg.(value & opt int 8 & info [ "n"; "sites" ] ~doc:"Number of sites.") in
  let code = Arg.(required & pos 0 (some file) None & info [] ~docv:"SCRIPT") in
  let trace = Arg.(value & flag & info [ "trace" ] ~doc:"Dump the event trace.") in
  Cmd.v
    (Cmd.info "run"
       ~doc:"Launch a TScript agent (from a file) at site 0 of a simulated network.")
    Term.(const run $ topology $ n $ code $ trace)

(* --- demo: a traced journey ------------------------------------------------ *)

let demo_cmd =
  let run () =
    let code = {|
      log "hello from [host]"
      folder put TRAIL [host]
      if {[folder size TRAIL] < 4} {
        set next ""
        foreach n [neighbors] {
          if {![folder contains TRAIL $n]} { set next $n; break }
        }
        folder set CODE [selfcode]
        jump $next
      } else {
        log "journey complete, filing trail"
        meet filer
      }
    |} in
    let net = Netsim.Net.create ~trace:true (Netsim.Topology.ring 4) in
    let k = Tacoma_core.Kernel.create net in
    let bc = Tacoma_core.Briefcase.create () in
    Tacoma_core.Briefcase.set bc Tacoma_core.Briefcase.code_folder code;
    Tacoma_core.Kernel.launch k ~site:0 ~contact:"ag_script" bc;
    Netsim.Net.run ~until:60.0 net;
    Netsim.Trace.dump fmt (Netsim.Net.trace net);
    List.iter
      (fun site ->
        let trail =
          Tacoma_core.Cabinet.elements (Tacoma_core.Kernel.cabinet k site) "TRAIL"
        in
        if trail <> [] then
          Format.fprintf fmt "trail filed at site %d: %s@." site (String.concat " -> " trail))
      (Netsim.Net.sites net)
  in
  let open Cmdliner in
  Cmd.v (Cmd.info "demo" ~doc:"Run a traced 4-site agent journey.") Term.(const run $ const ())

let () =
  let open Cmdliner in
  let info =
    Cmd.info "tacoma" ~version:"1.0.0"
      ~doc:"TACOMA mobile agents: experiments, agent runner and demos."
  in
  exit (Cmd.eval (Cmd.group info [ exp_cmd; run_script_cmd; demo_cmd ]))

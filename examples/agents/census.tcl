# census.tcl — a depth-first walk of the ENTIRE network by one agent.
#
# The agent carries its visited set in the SITES folder and its return path
# in the PATH folder (used as a stack).  At each site it either descends to
# an unvisited neighbour or backtracks; when it is back at the origin with
# nothing left to visit, the census is complete.
#
# Run with:
#   dune exec bin/tacoma.exe -- run examples/agents/census.tcl -t grid -n 16
#
# Uses the standard prelude: travel, unvisited_neighbors.

if {![folder contains SITES [host]]} {
  folder put SITES [host]
}

set unv [unvisited_neighbors]
if {[llength $unv] > 0} {
  # descend: remember where to come back to
  folder push PATH [host]
  travel [lindex $unv 0]
} elseif {[folder size PATH] > 0} {
  # dead end: backtrack one step
  travel [folder pop PATH]
} else {
  log "census complete: visited [folder size SITES] sites"
  log "sites: [lsort [folder list SITES]]"
  meet filer
}

# loadreport.tcl — tour the network and deliver a per-site inventory of the
# cabinets back to the origin, using the courier pattern from the prelude.
#
# Run with:
#   dune exec bin/tacoma.exe -- run examples/agents/loadreport.tcl -t ring -n 6

if {![folder exists ORIGIN]} { folder set ORIGIN [host] }
folder put SITES [host]
carry REPORT "[host]: folders=[llength [cabinet names]] at t=[now]"

set unv [unvisited_neighbors]
if {[llength $unv] > 0} {
  travel [lindex $unv 0]
} else {
  log "tour done, couriering the report home to [folder peek ORIGIN]"
  send_folder [folder peek ORIGIN] filer REPORT
}

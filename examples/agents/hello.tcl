# The smallest possible agent: announce yourself and sign the site's
# guestbook.  Run with:
#   dune exec bin/tacoma.exe -- run examples/agents/hello.tcl --trace
log "hello from [host]; my neighbors are: [neighbors]"
cabinet put GUESTBOOK "[self] was here at t=[now]"

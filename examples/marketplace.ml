(* Electronic commerce with agents (paper §3 and §4): a customer agent uses
   a broker to find a translation provider, pays with electronic cash
   through a witness, and the merchant validates the cash with the bank
   before serving.  A second, dishonest merchant is then exposed by the
   court.

   Run with: dune exec examples/marketplace.exe *)

module Net = Netsim.Net
module Topology = Netsim.Topology
module Kernel = Tacoma_core.Kernel
module Briefcase = Tacoma_core.Briefcase
module Mint = Cash.Mint
module Ecu = Cash.Ecu
module Wallet = Cash.Wallet
module Validator = Cash.Validator
module Audit = Cash.Audit
module Matchmaker = Broker.Matchmaker
module Provider = Broker.Provider

(* sites: 0 customer, 1 honest merchant, 2 crooked merchant, 3 witness+court,
   4 bank, 5 broker *)
let customer_site = 0
let honest_site = 1
let crooked_site = 2
let witness_site = 3
let bank_site = 4
let broker_site = 5

let () =
  let net = Net.create (Topology.full_mesh 6) in
  let kernel = Kernel.create net in

  (* the bank issues cash and runs the validation agent *)
  let mint = Mint.create ~secret:"bank-of-tromso" () in
  Validator.install kernel ~site:bank_site mint;

  (* witness and court live together *)
  Audit.install_witness kernel ~site:witness_site;
  let keys = [ ("alice", "ka"); ("honest-bob", "kb"); ("crooked-carl", "kc") ] in
  Audit.install_court kernel ~site:witness_site ~keys;

  (* two merchants register with the broker *)
  let broker = Matchmaker.install kernel ~site:broker_site ~name:"broker" () in
  let p1 =
    Provider.install kernel ~site:honest_site ~name:"honest-bob" ~service:"translate"
      ~capacity:1.0 ()
  in
  let p2 =
    Provider.install kernel ~site:crooked_site ~name:"crooked-carl" ~service:"translate"
      ~capacity:1.0 ()
  in
  Matchmaker.register_provider broker p1;
  Matchmaker.register_provider broker p2;

  (* alice's wallet *)
  let wallet = Wallet.create () in
  Wallet.add_all wallet (List.init 4 (fun _ -> Mint.issue mint ~amount:50));
  Printf.printf "alice's balance: %d cents in %d bills\n" (Wallet.balance wallet)
    (Wallet.count wallet);

  (* she consults the broker for the service *)
  (match Matchmaker.lookup broker ~service:"translate" () with
  | Some c -> Printf.printf "broker suggests provider %S at %s\n" c.Broker.Policy.provider c.Broker.Policy.host
  | None -> Printf.printf "no provider found\n");

  (* purchase 1: honest merchant *)
  let bills = Option.get (Wallet.take_exact wallet ~amount:100) in
  let tx1 =
    Audit.purchase kernel ~tx:"tx-1" ~amount:100 ~bills
      ~customer:("alice", "ka", Audit.Honest)
      ~merchant:("honest-bob", "kb", Audit.Honest)
      ~customer_site ~merchant_site:honest_site ~witness_site ~bank_site
  in
  (* purchase 2: crooked merchant banks the money and never serves *)
  let bills2 = Option.get (Wallet.take_exact wallet ~amount:100) in
  let tx2 =
    Audit.purchase kernel ~tx:"tx-2" ~amount:100 ~bills:bills2
      ~customer:("alice", "ka", Audit.Honest)
      ~merchant:("crooked-carl", "kc", Audit.Cheat)
      ~customer_site ~merchant_site:crooked_site ~witness_site ~bank_site
  in
  Net.run ~until:60.0 net;

  Printf.printf "\ntx-1 (honest-bob): paid=%b served=%b\n" tx1.Audit.merchant_accepted
    tx1.Audit.customer_served;
  Printf.printf "tx-2 (crooked-carl): paid=%b served=%b\n" tx2.Audit.merchant_accepted
    tx2.Audit.customer_served;
  Printf.printf "merchant bob now holds %d cents of fresh bills\n"
    (Ecu.total tx1.Audit.merchant_bills);

  (* alice, aggrieved over tx-2, requests an audit *)
  let bc = Briefcase.create () in
  Briefcase.set bc "TX" "tx-2";
  Kernel.launch kernel ~site:witness_site ~contact:"court" bc;
  Net.run net;
  Printf.printf "court verdict on tx-2: %s\n"
    (Option.value ~default:"?" (Briefcase.find_opt bc "VERDICT"));

  (* and a thief who copies bills gets nothing: validation rejects copies *)
  let bill = Mint.issue mint ~amount:25 in
  (match Mint.validate_and_reissue mint bill with Ok _ -> () | Error _ -> ());
  Validator.remote_validate kernel ~src:customer_site ~bank:bank_site [ bill ]
    ~on_reply:(fun result ->
      match result with
      | Ok _ -> Printf.printf "!!! copied bill accepted\n"
      | Error e -> Printf.printf "copied bill rejected by the validator: %s\n" e);
  Net.run net;
  Printf.printf "money outstanding at the mint is conserved: %d cents\n"
    (Mint.outstanding mint)
